#!/usr/bin/env bash
# Single-command static-analysis gate. Stages, in order:
#
#   1. readduo_lint repo scan + fixture self-test (determinism, units,
#      env-registry, and the concurrency-discipline rules: no-bare-mutex,
#      guarded-field, atomic-order, no-detach — DESIGN.md §8).
#   2. clang-tidy (bugprone-*, performance-*, plus concurrency-* for the
#      service/stats TUs via subdirectory .clang-tidy files). Configures
#      its own build-tidy/ tree so the user's main build cache is never
#      mutated under them.
#   3. Clang thread-safety annotation build: the whole tree compiled with
#      clang++ -DREADDUO_THREAD_SAFETY=ON (-Werror=thread-safety), plus
#      two probe TUs — tests/annotation_probes/ok_guarded.cpp must
#      compile and bad_guarded.cpp must FAIL, proving the analysis is
#      armed, not silently inert. Skipped (with a notice) when the host
#      has no clang++; the annotations themselves still compile under GCC
#      as no-ops in every other stage.
#   4. Sanitizer matrix: the fixed-seed readduo_load service soak under
#      TSan (100k requests), with its virtual-time metrics diffed
#      bit-for-bit against the plain build's run — instrumentation must
#      not change results. READDUO_TSAN_SOAK=0 skips just this soak
#      (e.g. on hosts where TSan is unavailable); the UBSan bench smoke
#      then still runs.
#
# CI and the verify skill both run exactly this.
#
# Usage: ./run_static_analysis.sh [build-dir]          (default: build)
#   SKIP_SANITIZER_SMOKE=1   skip the whole sanitizer matrix (e.g. when
#                            the caller already ran a sanitized suite)
#   READDUO_TSAN_SOAK=0      skip only the TSan service soak
set -u
cd "$(dirname "$0")"
BUILD=${1:-build}
failures=0

step() { printf '\n== %s\n' "$*"; }

step "readduo_lint: repo-wide invariant scan"
if [ ! -x "$BUILD/tools/readduo_lint" ]; then
  cmake -B "$BUILD" -S . && cmake --build "$BUILD" --target readduo_lint -j || exit 1
fi
"$BUILD/tools/readduo_lint" . || failures=$((failures + 1))

step "readduo_lint: fixture self-test"
"$BUILD/tools/readduo_lint" --selftest tests/lint_fixtures \
  || failures=$((failures + 1))

step "clang-tidy (bugprone-*, performance-*; warnings-as-errors)"
TIDY=$(command -v clang-tidy || true)
if [ -n "$TIDY" ]; then
  # A dedicated configure: exporting compile commands must not rewrite
  # the cache of whatever build tree the user is working in.
  cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null \
    || failures=$((failures + 1))
  # Library + harness sources only; tests inherit their quality from these.
  if ! find src bench/harness.cpp tools -name '*.cpp' -print0 \
      | xargs -0 -n 8 "$TIDY" -p build-tidy --quiet; then
    failures=$((failures + 1))
  fi
else
  echo "clang-tidy not installed — skipping (lint + annotations still run)"
fi

step "clang thread-safety analysis (-Werror=thread-safety)"
CLANGXX=$(command -v clang++ || true)
if [ -n "$CLANGXX" ]; then
  if cmake -B build-annotate -S . -DCMAKE_CXX_COMPILER="$CLANGXX" \
       -DREADDUO_THREAD_SAFETY=ON > /dev/null \
     && cmake --build build-annotate -j; then
    echo "-- annotated tree compiles clean under -Werror=thread-safety"
  else
    echo "thread-safety: annotated build failed"
    failures=$((failures + 1))
  fi
  probe_flags=(-fsyntax-only -std=c++20 -Isrc
               -Wthread-safety -Werror=thread-safety)
  if "$CLANGXX" "${probe_flags[@]}" tests/annotation_probes/ok_guarded.cpp
  then
    echo "-- positive probe ok_guarded.cpp compiles"
  else
    echo "thread-safety: positive probe failed to compile"
    failures=$((failures + 1))
  fi
  if "$CLANGXX" "${probe_flags[@]}" tests/annotation_probes/bad_guarded.cpp \
       2> /dev/null; then
    echo "thread-safety: negative probe bad_guarded.cpp COMPILED — the"
    echo "analysis is not armed (annotations ignored?)"
    failures=$((failures + 1))
  else
    echo "-- negative probe bad_guarded.cpp rejected, as it must be"
  fi
else
  echo "clang++ not installed — skipping (annotations compile as no-ops"
  echo "under GCC; the TSan soak below still checks the locking at runtime)"
fi

if [ "${SKIP_SANITIZER_SMOKE:-0}" != "1" ]; then
  if [ "${READDUO_TSAN_SOAK:-1}" != "0" ]; then
    step "sanitizer matrix: TSan service soak (readduo_load, fixed seed)"
    soak_dir=$(mktemp -d)
    if [ ! -x "$BUILD/tools/readduo_load" ]; then
      cmake --build "$BUILD" --target readduo_load -j || exit 1
    fi
    cmake -B build-tsan -S . -DREADDUO_SANITIZE=thread > /dev/null \
      && cmake --build build-tsan --target readduo_load -j \
      || failures=$((failures + 1))
    for run in plain:"$BUILD" tsan:build-tsan; do
      name=${run%%:*}; tree=${run#*:}
      echo "-- readduo_load 100k requests ($name build)"
      READDUO_THREADS=4 "$tree/tools/readduo_load" --requests=100000 \
        --report-every=0 --seed=7 --summary="$soak_dir/soak_$name.json" \
        > /dev/null || failures=$((failures + 1))
    done
    # Virtual-time metrics must be bit-identical with TSan on: the
    # instrumentation may only change wall-clock and backpressure fields.
    if ! diff \
        <(grep -Ev 'wall|spins|rejected|threads' "$soak_dir/soak_plain.json") \
        <(grep -Ev 'wall|spins|rejected|threads' "$soak_dir/soak_tsan.json")
    then
      echo "TSan soak: instrumented metrics diverge from plain build"
      failures=$((failures + 1))
    fi
    rm -rf "$soak_dir"
  else
    echo "READDUO_TSAN_SOAK=0 — skipping the TSan service soak"
  fi

  step "sanitizer smoke: UBSan bench_fig9 at a small instruction budget"
  cmake -B build-ubsan -S . -DREADDUO_SANITIZE=undefined > /dev/null \
    && cmake --build build-ubsan --target bench_fig9 -j \
    && READDUO_INSTR=50000 READDUO_CACHE=0 ./build-ubsan/bench/bench_fig9 \
       > /dev/null \
    || failures=$((failures + 1))

  # The wire codec parses attacker-shaped bytes (length fields, offsets,
  # CRCs), so its round-trip + malformed-frame corpus runs under UBSan
  # too: any shift/overflow/OOB in the framing layer trips here.
  step "sanitizer smoke: UBSan test_wire (frame codec corpus)"
  cmake --build build-ubsan --target test_wire -j \
    && ./build-ubsan/tests/test_wire --gtest_brief=1 \
    || failures=$((failures + 1))
fi

step "static analysis: $failures failing stage(s)"
exit "$((failures > 0))"
