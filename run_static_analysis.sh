#!/usr/bin/env bash
# Single-command static-analysis gate: readduo_lint (+ its fixture
# self-test), clang-tidy when the host has it, and one sanitizer bench
# smoke. CI and the verify skill both run exactly this.
#
# Usage: ./run_static_analysis.sh [build-dir]          (default: build)
#   SKIP_SANITIZER_SMOKE=1   skip the UBSan bench smoke (e.g. when the
#                            caller already ran a full sanitized suite)
set -u
cd "$(dirname "$0")"
BUILD=${1:-build}
failures=0

step() { printf '\n== %s\n' "$*"; }

step "readduo_lint: repo-wide invariant scan"
if [ ! -x "$BUILD/tools/readduo_lint" ]; then
  cmake -B "$BUILD" -S . && cmake --build "$BUILD" --target readduo_lint -j || exit 1
fi
"$BUILD/tools/readduo_lint" . || failures=$((failures + 1))

step "readduo_lint: fixture self-test"
"$BUILD/tools/readduo_lint" --selftest tests/lint_fixtures \
  || failures=$((failures + 1))

step "clang-tidy (bugprone-*, performance-*; warnings-as-errors)"
TIDY=$(command -v clang-tidy || true)
if [ -n "$TIDY" ]; then
  # compile_commands.json comes from the main build configure.
  cmake -B "$BUILD" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  # Library + harness sources only; tests inherit their quality from these.
  if ! find src bench/harness.cpp tools -name '*.cpp' -print0 \
      | xargs -0 -n 8 "$TIDY" -p "$BUILD" --quiet; then
    failures=$((failures + 1))
  fi
else
  echo "clang-tidy not installed — skipping (lint + sanitizers still ran)"
fi

if [ "${SKIP_SANITIZER_SMOKE:-0}" != "1" ]; then
  step "sanitizer smoke: UBSan bench_fig9 at a small instruction budget"
  cmake -B build-ubsan -S . -DREADDUO_SANITIZE=undefined > /dev/null \
    && cmake --build build-ubsan --target bench_fig9 -j \
    && READDUO_INSTR=50000 READDUO_CACHE=0 ./build-ubsan/bench/bench_fig9 \
       > /dev/null \
    || failures=$((failures + 1))
fi

step "static analysis: $failures failing stage(s)"
exit "$((failures > 0))"
