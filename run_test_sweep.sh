#!/usr/bin/env bash
# Flaky/determinism sweep: the lane CI runs on top of the plain suite.
#
#   1. `ctest --repeat until-fail:3` — every test runs three times, so a
#      test that only fails one run in three is caught here instead of
#      landing as intermittent CI noise.
#   2. A READDUO_THREADS ∈ {1, 4} re-run of the suites that pin the
#      bit-identity contract (test_parallel, test_metrics, test_faults):
#      the pool-sized path and the legacy serial path must agree on every
#      assertion, including with a live fault plan (test_faults runs its
#      FaultDeterminism case under both widths internally, and this lane
#      additionally re-runs the whole binary under each width).
#   3. A READDUO_KERNELS=reference re-run of the golden suite plus the
#      kernel-equivalence suite: clean-run outputs must stay bit-identical
#      when every optimized hot-path kernel (DESIGN.md §10) is swapped for
#      its straight-line reference implementation.
#   4. The same pair under READDUO_KERNELS=vector, twice: once with native
#      SIMD dispatch and once forced to the scalar fallback
#      (READDUO_SIMD=scalar), so the vectorized tier's decisions stay
#      bit-identical whatever the host CPU offers (DESIGN.md §10.5).
#   5. A READDUO_BENCH_FAST=1 smoke run of bench_micro: every registered
#      microbench (including the _vec rows) must still execute; the
#      numbers are sampled for milliseconds and thrown away.
#   6. A service soak: a short fixed-seed readduo_load run under 1 and 4
#      worker threads. The tool itself rc-checks that every submitted
#      request completed; the lane additionally pins the two runs'
#      virtual-time metrics against each other (the service determinism
#      contract, DESIGN.md §11).
#   7. Concurrency discipline: the readduo_lint fixture self-test (the
#      lock/atomic rules of DESIGN.md §8 must keep firing on their seeded
#      violations) and the same fixed-seed service soak under TSan, with
#      its virtual-time metrics pinned against the plain run.
#      READDUO_TSAN_SOAK=0 skips just the TSan half of this lane.
#   8. A socket soak: readduo_serve (--oneshot) with three readduo_load
#      --connect clients pushing the same fixed-seed 100k-request stream
#      over the wire, under 1 and 4 server worker threads. Both runs'
#      virtual-time metrics must be bit-identical to each other AND to
#      the in-process run of the same seed — the sequence-merge contract
#      (DESIGN.md §12): socket interleaving must not be observable. The
#      THREADS=4 run repeats with a TSan-built server unless
#      READDUO_TSAN_SOAK=0.
#   9. Device-config equivalence: the golden suite and the fixed-seed
#      service soak re-run under READDUO_DEVICE=configs/pcm_readduo_t1.cfg.
#      The file is the builtin device written down (DESIGN.md §13), so the
#      goldens must pass unchanged and the soak's virtual-time metrics
#      must be bit-identical to the default-device run.
#
# Usage: ./run_test_sweep.sh [build-dir] [ctest -R regex]
#   (default: build, all tests)
set -u
cd "$(dirname "$0")"
BUILD=${1:-build}
FILTER=${2:-}
failures=0

step() { printf '\n== %s\n' "$*"; }

if [ ! -f "$BUILD/CTestTestfile.cmake" ]; then
  cmake -B "$BUILD" -S . && cmake --build "$BUILD" -j || exit 1
fi

step "ctest --repeat until-fail:3 (flakiness lane)"
ctest_args=(--test-dir "$BUILD" --repeat until-fail:3 --output-on-failure
            -j "$(nproc)")
if [ -n "$FILTER" ]; then ctest_args+=(-R "$FILTER"); fi
ctest "${ctest_args[@]}" || failures=$((failures + 1))

step "thread-count bit-identity: READDUO_THREADS=1 vs =4"
for bin in test_parallel test_metrics test_faults; do
  if [ ! -x "$BUILD/tests/$bin" ]; then
    cmake --build "$BUILD" --target "$bin" -j || exit 1
  fi
  for t in 1 4; do
    echo "-- $bin (READDUO_THREADS=$t)"
    READDUO_THREADS=$t "$BUILD/tests/$bin" --gtest_brief=1 \
      || failures=$((failures + 1))
  done
done

step "kernel bit-identity: golden suite under READDUO_KERNELS=reference"
for bin in test_golden test_kernels; do
  if [ ! -x "$BUILD/tests/$bin" ]; then
    cmake --build "$BUILD" --target "$bin" -j || exit 1
  fi
  echo "-- $bin (READDUO_KERNELS=reference)"
  READDUO_KERNELS=reference "$BUILD/tests/$bin" --gtest_brief=1 \
    || failures=$((failures + 1))
done

step "vector tier bit-identity: READDUO_KERNELS=vector, native and scalar"
for bin in test_golden test_kernels; do
  echo "-- $bin (READDUO_KERNELS=vector)"
  READDUO_KERNELS=vector "$BUILD/tests/$bin" --gtest_brief=1 \
    || failures=$((failures + 1))
  echo "-- $bin (READDUO_KERNELS=vector READDUO_SIMD=scalar)"
  READDUO_KERNELS=vector READDUO_SIMD=scalar "$BUILD/tests/$bin" \
    --gtest_brief=1 || failures=$((failures + 1))
done

step "microbench smoke: bench_micro under READDUO_BENCH_FAST=1"
if [ ! -x "$BUILD/bench/bench_micro" ]; then
  cmake --build "$BUILD" --target bench_micro -j || exit 1
fi
READDUO_BENCH_FAST=1 "$BUILD/bench/bench_micro" > /dev/null \
  || failures=$((failures + 1))

step "service soak: readduo_load fixed-seed, THREADS=1 vs =4"
if [ ! -x "$BUILD/tools/readduo_load" ]; then
  cmake --build "$BUILD" --target readduo_load -j || exit 1
fi
soak_dir=$(mktemp -d)
for t in 1 4; do
  echo "-- readduo_load 100k requests (READDUO_THREADS=$t)"
  READDUO_THREADS=$t "$BUILD/tools/readduo_load" --requests=100000 \
    --report-every=0 --seed=7 --summary="$soak_dir/soak_$t.json" \
    > /dev/null || failures=$((failures + 1))
done
# Virtual-time metrics must be bit-identical across thread counts; only
# the wall-clock and backpressure fields may differ.
if ! diff <(grep -Ev 'wall|spins|rejected|threads' "$soak_dir/soak_1.json") \
          <(grep -Ev 'wall|spins|rejected|threads' "$soak_dir/soak_4.json")
then
  echo "service soak: THREADS=1 and =4 metrics diverge"
  failures=$((failures + 1))
fi
rm -rf "$soak_dir"

step "concurrency discipline: lint self-test + TSan service soak"
if [ ! -x "$BUILD/tools/readduo_lint" ]; then
  cmake --build "$BUILD" --target readduo_lint -j || exit 1
fi
"$BUILD/tools/readduo_lint" --selftest tests/lint_fixtures \
  || failures=$((failures + 1))
if [ "${READDUO_TSAN_SOAK:-1}" != "0" ]; then
  tsan_dir=$(mktemp -d)
  cmake -B build-tsan -S . -DREADDUO_SANITIZE=thread > /dev/null \
    && cmake --build build-tsan --target readduo_load -j \
    || failures=$((failures + 1))
  for run in plain:"$BUILD" tsan:build-tsan; do
    name=${run%%:*}; tree=${run#*:}
    echo "-- readduo_load 100k requests ($name build, READDUO_THREADS=4)"
    READDUO_THREADS=4 "$tree/tools/readduo_load" --requests=100000 \
      --report-every=0 --seed=7 --summary="$tsan_dir/soak_$name.json" \
      > /dev/null || failures=$((failures + 1))
  done
  # TSan reschedules threads aggressively; the virtual-time metrics must
  # not notice (the service determinism contract, DESIGN.md §11).
  if ! diff \
      <(grep -Ev 'wall|spins|rejected|threads' "$tsan_dir/soak_plain.json") \
      <(grep -Ev 'wall|spins|rejected|threads' "$tsan_dir/soak_tsan.json")
  then
    echo "TSan soak: instrumented metrics diverge from plain build"
    failures=$((failures + 1))
  fi
  rm -rf "$tsan_dir"
else
  echo "READDUO_TSAN_SOAK=0 — skipping the TSan service soak"
fi

step "socket soak: readduo_serve + readduo_load --connect, THREADS=1 vs =4"
for bin in readduo_serve readduo_load; do
  if [ ! -x "$BUILD/tools/$bin" ]; then
    cmake --build "$BUILD" --target "$bin" -j || exit 1
  fi
done
net_dir=$(mktemp -d)

# Start a oneshot server on $2, wait for readiness, push 100k requests
# through 3 wire clients with the load generator from $3, reap the server.
wire_soak() {
  local threads=$1 sock=$2 load_tree=$3 tag=$4
  READDUO_THREADS=$threads "$load_tree/tools/readduo_serve" --oneshot \
    --seed=7 --listen="$sock" > "$net_dir/serve_$tag.log" 2>&1 &
  local serve_pid=$!
  for _ in $(seq 1 100); do
    grep -q "READDUO_SERVE listening" "$net_dir/serve_$tag.log" 2>/dev/null \
      && break
    sleep 0.1
  done
  "$BUILD/tools/readduo_load" --connect="$sock" --clients=3 \
    --requests=100000 --report-every=0 --seed=7 \
    --summary="$net_dir/wire_$tag.json" > /dev/null \
    || failures=$((failures + 1))
  wait "$serve_pid" || failures=$((failures + 1))
}

echo "-- readduo_load 100k requests (in-process reference)"
"$BUILD/tools/readduo_load" --requests=100000 --report-every=0 --seed=7 \
  --summary="$net_dir/inproc.json" > /dev/null || failures=$((failures + 1))
for t in 1 4; do
  echo "-- readduo_serve + 3 wire clients, 100k requests (READDUO_THREADS=$t)"
  wire_soak "$t" "unix:$net_dir/serve_$t.sock" "$BUILD" "$t"
done
# Virtual-time metrics must be bit-identical across server thread counts
# AND against the in-process path: only wall-clock, backpressure, and the
# wire transport counters may differ (DESIGN.md §12).
wire_filter='wall|spins|rejected|threads|wire'
for pair in "wire_1:wire_4" "inproc:wire_1"; do
  a=${pair%%:*}; b=${pair#*:}
  if ! diff <(grep -Ev "$wire_filter" "$net_dir/$a.json") \
            <(grep -Ev "$wire_filter" "$net_dir/$b.json"); then
    echo "socket soak: $a and $b metrics diverge"
    failures=$((failures + 1))
  fi
done
if [ "${READDUO_TSAN_SOAK:-1}" != "0" ]; then
  cmake -B build-tsan -S . -DREADDUO_SANITIZE=thread > /dev/null \
    && cmake --build build-tsan --target readduo_serve -j \
    || failures=$((failures + 1))
  echo "-- readduo_serve (TSan build) + 3 wire clients (READDUO_THREADS=4)"
  wire_soak 4 "unix:$net_dir/serve_tsan.sock" build-tsan tsan
  if ! diff <(grep -Ev "$wire_filter" "$net_dir/wire_4.json") \
            <(grep -Ev "$wire_filter" "$net_dir/wire_tsan.json"); then
    echo "socket soak: TSan server metrics diverge from plain build"
    failures=$((failures + 1))
  fi
else
  echo "READDUO_TSAN_SOAK=0 — skipping the TSan socket soak"
fi
rm -rf "$net_dir"

step "device-config equivalence: READDUO_DEVICE=configs/pcm_readduo_t1.cfg"
# The golden config is the builtin device externalized; goldens and the
# service soak must not be able to tell the difference (DESIGN.md §13).
dev_cfg=configs/pcm_readduo_t1.cfg
for bin in test_golden test_config; do
  if [ ! -x "$BUILD/tests/$bin" ]; then
    cmake --build "$BUILD" --target "$bin" -j || exit 1
  fi
  echo "-- $bin (READDUO_DEVICE=$dev_cfg)"
  READDUO_DEVICE=$dev_cfg "$BUILD/tests/$bin" --gtest_brief=1 \
    || failures=$((failures + 1))
done
dev_dir=$(mktemp -d)
echo "-- readduo_load 100k requests (default device)"
"$BUILD/tools/readduo_load" --requests=100000 --report-every=0 --seed=7 \
  --summary="$dev_dir/default.json" > /dev/null || failures=$((failures + 1))
echo "-- readduo_load 100k requests (READDUO_DEVICE=$dev_cfg)"
READDUO_DEVICE=$dev_cfg "$BUILD/tools/readduo_load" --requests=100000 \
  --report-every=0 --seed=7 --summary="$dev_dir/golden_cfg.json" \
  > /dev/null || failures=$((failures + 1))
# builtin and t1 share one device name, so even the summaries' device
# fields agree: the runs must be bit-identical outside host weather.
if ! diff <(grep -Ev 'wall|spins|rejected|threads' "$dev_dir/default.json") \
          <(grep -Ev 'wall|spins|rejected|threads' "$dev_dir/golden_cfg.json")
then
  echo "device equivalence: $dev_cfg diverges from the builtin device"
  failures=$((failures + 1))
fi
rm -rf "$dev_dir"

step "test sweep: $failures failing stage(s)"
exit "$((failures > 0))"
