file(REMOVE_RECURSE
  "CMakeFiles/device_demo.dir/device_demo.cpp.o"
  "CMakeFiles/device_demo.dir/device_demo.cpp.o.d"
  "device_demo"
  "device_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
