# Empty dependencies file for device_demo.
# This may be replaced when dependencies are built.
