# Empty dependencies file for inmemory_db.
# This may be replaced when dependencies are built.
