file(REMOVE_RECURSE
  "CMakeFiles/lwt_walkthrough.dir/lwt_walkthrough.cpp.o"
  "CMakeFiles/lwt_walkthrough.dir/lwt_walkthrough.cpp.o.d"
  "lwt_walkthrough"
  "lwt_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwt_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
