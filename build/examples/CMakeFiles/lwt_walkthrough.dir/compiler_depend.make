# Empty compiler generated dependencies file for lwt_walkthrough.
# This may be replaced when dependencies are built.
