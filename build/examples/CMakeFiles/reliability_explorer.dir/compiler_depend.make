# Empty compiler generated dependencies file for reliability_explorer.
# This may be replaced when dependencies are built.
