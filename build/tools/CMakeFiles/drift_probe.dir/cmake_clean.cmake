file(REMOVE_RECURSE
  "CMakeFiles/drift_probe.dir/drift_probe.cpp.o"
  "CMakeFiles/drift_probe.dir/drift_probe.cpp.o.d"
  "drift_probe"
  "drift_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
