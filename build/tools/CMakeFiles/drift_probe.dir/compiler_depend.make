# Empty compiler generated dependencies file for drift_probe.
# This may be replaced when dependencies are built.
