file(REMOVE_RECURSE
  "CMakeFiles/readduo_sim.dir/readduo_sim.cpp.o"
  "CMakeFiles/readduo_sim.dir/readduo_sim.cpp.o.d"
  "readduo_sim"
  "readduo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/readduo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
