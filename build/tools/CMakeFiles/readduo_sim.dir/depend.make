# Empty dependencies file for readduo_sim.
# This may be replaced when dependencies are built.
