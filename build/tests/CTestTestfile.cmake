# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_math[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_bitvec[1]_include.cmake")
include("/root/repo/build/tests/test_gf[1]_include.cmake")
include("/root/repo/build/tests/test_bch[1]_include.cmake")
include("/root/repo/build/tests/test_secded[1]_include.cmake")
include("/root/repo/build/tests/test_drift[1]_include.cmake")
include("/root/repo/build/tests/test_pcm[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_lwt_flags[1]_include.cmake")
include("/root/repo/build/tests/test_readduo[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_wear_ecp[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_rowbuffer[1]_include.cmake")
include("/root/repo/build/tests/test_chip[1]_include.cmake")
include("/root/repo/build/tests/test_mc_ler[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
