file(REMOVE_RECURSE
  "CMakeFiles/test_rowbuffer.dir/test_rowbuffer.cpp.o"
  "CMakeFiles/test_rowbuffer.dir/test_rowbuffer.cpp.o.d"
  "test_rowbuffer"
  "test_rowbuffer.pdb"
  "test_rowbuffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rowbuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
