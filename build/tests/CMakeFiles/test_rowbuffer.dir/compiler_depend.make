# Empty compiler generated dependencies file for test_rowbuffer.
# This may be replaced when dependencies are built.
