file(REMOVE_RECURSE
  "CMakeFiles/test_readduo.dir/test_readduo.cpp.o"
  "CMakeFiles/test_readduo.dir/test_readduo.cpp.o.d"
  "test_readduo"
  "test_readduo.pdb"
  "test_readduo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_readduo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
