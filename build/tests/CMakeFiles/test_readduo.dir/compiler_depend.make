# Empty compiler generated dependencies file for test_readduo.
# This may be replaced when dependencies are built.
