file(REMOVE_RECURSE
  "CMakeFiles/test_lwt_flags.dir/test_lwt_flags.cpp.o"
  "CMakeFiles/test_lwt_flags.dir/test_lwt_flags.cpp.o.d"
  "test_lwt_flags"
  "test_lwt_flags.pdb"
  "test_lwt_flags[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lwt_flags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
