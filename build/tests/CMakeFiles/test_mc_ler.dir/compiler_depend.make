# Empty compiler generated dependencies file for test_mc_ler.
# This may be replaced when dependencies are built.
