file(REMOVE_RECURSE
  "CMakeFiles/test_mc_ler.dir/test_mc_ler.cpp.o"
  "CMakeFiles/test_mc_ler.dir/test_mc_ler.cpp.o.d"
  "test_mc_ler"
  "test_mc_ler.pdb"
  "test_mc_ler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mc_ler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
