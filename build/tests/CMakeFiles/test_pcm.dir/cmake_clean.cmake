file(REMOVE_RECURSE
  "CMakeFiles/test_pcm.dir/test_pcm.cpp.o"
  "CMakeFiles/test_pcm.dir/test_pcm.cpp.o.d"
  "test_pcm"
  "test_pcm.pdb"
  "test_pcm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
