file(REMOVE_RECURSE
  "CMakeFiles/test_wear_ecp.dir/test_wear_ecp.cpp.o"
  "CMakeFiles/test_wear_ecp.dir/test_wear_ecp.cpp.o.d"
  "test_wear_ecp"
  "test_wear_ecp.pdb"
  "test_wear_ecp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wear_ecp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
