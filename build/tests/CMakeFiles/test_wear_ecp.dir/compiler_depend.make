# Empty compiler generated dependencies file for test_wear_ecp.
# This may be replaced when dependencies are built.
