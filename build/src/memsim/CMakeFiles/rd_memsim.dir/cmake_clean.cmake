file(REMOVE_RECURSE
  "CMakeFiles/rd_memsim.dir/simulator.cpp.o"
  "CMakeFiles/rd_memsim.dir/simulator.cpp.o.d"
  "librd_memsim.a"
  "librd_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rd_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
