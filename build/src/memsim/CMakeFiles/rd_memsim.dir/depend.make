# Empty dependencies file for rd_memsim.
# This may be replaced when dependencies are built.
