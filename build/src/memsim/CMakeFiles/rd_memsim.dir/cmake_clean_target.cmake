file(REMOVE_RECURSE
  "librd_memsim.a"
)
