file(REMOVE_RECURSE
  "librd_gf.a"
)
