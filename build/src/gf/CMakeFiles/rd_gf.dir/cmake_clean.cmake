file(REMOVE_RECURSE
  "CMakeFiles/rd_gf.dir/gf2m.cpp.o"
  "CMakeFiles/rd_gf.dir/gf2m.cpp.o.d"
  "CMakeFiles/rd_gf.dir/poly.cpp.o"
  "CMakeFiles/rd_gf.dir/poly.cpp.o.d"
  "librd_gf.a"
  "librd_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rd_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
