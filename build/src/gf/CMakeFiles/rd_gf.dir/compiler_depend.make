# Empty compiler generated dependencies file for rd_gf.
# This may be replaced when dependencies are built.
