file(REMOVE_RECURSE
  "librd_common.a"
)
