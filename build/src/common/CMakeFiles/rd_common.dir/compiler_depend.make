# Empty compiler generated dependencies file for rd_common.
# This may be replaced when dependencies are built.
