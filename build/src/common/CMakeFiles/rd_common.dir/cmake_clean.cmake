file(REMOVE_RECURSE
  "CMakeFiles/rd_common.dir/config.cpp.o"
  "CMakeFiles/rd_common.dir/config.cpp.o.d"
  "CMakeFiles/rd_common.dir/math.cpp.o"
  "CMakeFiles/rd_common.dir/math.cpp.o.d"
  "CMakeFiles/rd_common.dir/rng.cpp.o"
  "CMakeFiles/rd_common.dir/rng.cpp.o.d"
  "librd_common.a"
  "librd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
