file(REMOVE_RECURSE
  "CMakeFiles/rd_pcm.dir/area.cpp.o"
  "CMakeFiles/rd_pcm.dir/area.cpp.o.d"
  "CMakeFiles/rd_pcm.dir/cell.cpp.o"
  "CMakeFiles/rd_pcm.dir/cell.cpp.o.d"
  "CMakeFiles/rd_pcm.dir/chip.cpp.o"
  "CMakeFiles/rd_pcm.dir/chip.cpp.o.d"
  "CMakeFiles/rd_pcm.dir/ecp.cpp.o"
  "CMakeFiles/rd_pcm.dir/ecp.cpp.o.d"
  "CMakeFiles/rd_pcm.dir/line.cpp.o"
  "CMakeFiles/rd_pcm.dir/line.cpp.o.d"
  "CMakeFiles/rd_pcm.dir/mc_ler.cpp.o"
  "CMakeFiles/rd_pcm.dir/mc_ler.cpp.o.d"
  "CMakeFiles/rd_pcm.dir/tlc.cpp.o"
  "CMakeFiles/rd_pcm.dir/tlc.cpp.o.d"
  "CMakeFiles/rd_pcm.dir/wear_level.cpp.o"
  "CMakeFiles/rd_pcm.dir/wear_level.cpp.o.d"
  "CMakeFiles/rd_pcm.dir/write.cpp.o"
  "CMakeFiles/rd_pcm.dir/write.cpp.o.d"
  "librd_pcm.a"
  "librd_pcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rd_pcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
