
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcm/area.cpp" "src/pcm/CMakeFiles/rd_pcm.dir/area.cpp.o" "gcc" "src/pcm/CMakeFiles/rd_pcm.dir/area.cpp.o.d"
  "/root/repo/src/pcm/cell.cpp" "src/pcm/CMakeFiles/rd_pcm.dir/cell.cpp.o" "gcc" "src/pcm/CMakeFiles/rd_pcm.dir/cell.cpp.o.d"
  "/root/repo/src/pcm/chip.cpp" "src/pcm/CMakeFiles/rd_pcm.dir/chip.cpp.o" "gcc" "src/pcm/CMakeFiles/rd_pcm.dir/chip.cpp.o.d"
  "/root/repo/src/pcm/ecp.cpp" "src/pcm/CMakeFiles/rd_pcm.dir/ecp.cpp.o" "gcc" "src/pcm/CMakeFiles/rd_pcm.dir/ecp.cpp.o.d"
  "/root/repo/src/pcm/line.cpp" "src/pcm/CMakeFiles/rd_pcm.dir/line.cpp.o" "gcc" "src/pcm/CMakeFiles/rd_pcm.dir/line.cpp.o.d"
  "/root/repo/src/pcm/mc_ler.cpp" "src/pcm/CMakeFiles/rd_pcm.dir/mc_ler.cpp.o" "gcc" "src/pcm/CMakeFiles/rd_pcm.dir/mc_ler.cpp.o.d"
  "/root/repo/src/pcm/tlc.cpp" "src/pcm/CMakeFiles/rd_pcm.dir/tlc.cpp.o" "gcc" "src/pcm/CMakeFiles/rd_pcm.dir/tlc.cpp.o.d"
  "/root/repo/src/pcm/wear_level.cpp" "src/pcm/CMakeFiles/rd_pcm.dir/wear_level.cpp.o" "gcc" "src/pcm/CMakeFiles/rd_pcm.dir/wear_level.cpp.o.d"
  "/root/repo/src/pcm/write.cpp" "src/pcm/CMakeFiles/rd_pcm.dir/write.cpp.o" "gcc" "src/pcm/CMakeFiles/rd_pcm.dir/write.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/drift/CMakeFiles/rd_drift.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/rd_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/rd_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
