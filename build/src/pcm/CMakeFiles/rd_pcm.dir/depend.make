# Empty dependencies file for rd_pcm.
# This may be replaced when dependencies are built.
