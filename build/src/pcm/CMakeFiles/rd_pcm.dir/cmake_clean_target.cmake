file(REMOVE_RECURSE
  "librd_pcm.a"
)
