# CMake generated Testfile for 
# Source directory: /root/repo/src/pcm
# Build directory: /root/repo/build/src/pcm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
