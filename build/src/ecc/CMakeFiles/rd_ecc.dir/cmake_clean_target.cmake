file(REMOVE_RECURSE
  "librd_ecc.a"
)
