# Empty dependencies file for rd_ecc.
# This may be replaced when dependencies are built.
