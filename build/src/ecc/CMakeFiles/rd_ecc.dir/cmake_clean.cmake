file(REMOVE_RECURSE
  "CMakeFiles/rd_ecc.dir/bch.cpp.o"
  "CMakeFiles/rd_ecc.dir/bch.cpp.o.d"
  "CMakeFiles/rd_ecc.dir/secded.cpp.o"
  "CMakeFiles/rd_ecc.dir/secded.cpp.o.d"
  "librd_ecc.a"
  "librd_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rd_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
