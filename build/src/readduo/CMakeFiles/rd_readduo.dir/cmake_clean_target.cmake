file(REMOVE_RECURSE
  "librd_readduo.a"
)
