# Empty dependencies file for rd_readduo.
# This may be replaced when dependencies are built.
