file(REMOVE_RECURSE
  "CMakeFiles/rd_readduo.dir/conversion.cpp.o"
  "CMakeFiles/rd_readduo.dir/conversion.cpp.o.d"
  "CMakeFiles/rd_readduo.dir/lwt_flags.cpp.o"
  "CMakeFiles/rd_readduo.dir/lwt_flags.cpp.o.d"
  "CMakeFiles/rd_readduo.dir/scheme_base.cpp.o"
  "CMakeFiles/rd_readduo.dir/scheme_base.cpp.o.d"
  "CMakeFiles/rd_readduo.dir/schemes.cpp.o"
  "CMakeFiles/rd_readduo.dir/schemes.cpp.o.d"
  "CMakeFiles/rd_readduo.dir/steady_state.cpp.o"
  "CMakeFiles/rd_readduo.dir/steady_state.cpp.o.d"
  "librd_readduo.a"
  "librd_readduo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rd_readduo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
