
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/readduo/conversion.cpp" "src/readduo/CMakeFiles/rd_readduo.dir/conversion.cpp.o" "gcc" "src/readduo/CMakeFiles/rd_readduo.dir/conversion.cpp.o.d"
  "/root/repo/src/readduo/lwt_flags.cpp" "src/readduo/CMakeFiles/rd_readduo.dir/lwt_flags.cpp.o" "gcc" "src/readduo/CMakeFiles/rd_readduo.dir/lwt_flags.cpp.o.d"
  "/root/repo/src/readduo/scheme_base.cpp" "src/readduo/CMakeFiles/rd_readduo.dir/scheme_base.cpp.o" "gcc" "src/readduo/CMakeFiles/rd_readduo.dir/scheme_base.cpp.o.d"
  "/root/repo/src/readduo/schemes.cpp" "src/readduo/CMakeFiles/rd_readduo.dir/schemes.cpp.o" "gcc" "src/readduo/CMakeFiles/rd_readduo.dir/schemes.cpp.o.d"
  "/root/repo/src/readduo/steady_state.cpp" "src/readduo/CMakeFiles/rd_readduo.dir/steady_state.cpp.o" "gcc" "src/readduo/CMakeFiles/rd_readduo.dir/steady_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/drift/CMakeFiles/rd_drift.dir/DependInfo.cmake"
  "/root/repo/build/src/pcm/CMakeFiles/rd_pcm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/rd_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/rd_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
