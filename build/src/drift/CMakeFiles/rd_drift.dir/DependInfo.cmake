
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drift/error_model.cpp" "src/drift/CMakeFiles/rd_drift.dir/error_model.cpp.o" "gcc" "src/drift/CMakeFiles/rd_drift.dir/error_model.cpp.o.d"
  "/root/repo/src/drift/metric.cpp" "src/drift/CMakeFiles/rd_drift.dir/metric.cpp.o" "gcc" "src/drift/CMakeFiles/rd_drift.dir/metric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
