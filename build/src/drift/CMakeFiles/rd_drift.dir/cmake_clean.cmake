file(REMOVE_RECURSE
  "CMakeFiles/rd_drift.dir/error_model.cpp.o"
  "CMakeFiles/rd_drift.dir/error_model.cpp.o.d"
  "CMakeFiles/rd_drift.dir/metric.cpp.o"
  "CMakeFiles/rd_drift.dir/metric.cpp.o.d"
  "librd_drift.a"
  "librd_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rd_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
