file(REMOVE_RECURSE
  "librd_drift.a"
)
