# Empty compiler generated dependencies file for rd_drift.
# This may be replaced when dependencies are built.
