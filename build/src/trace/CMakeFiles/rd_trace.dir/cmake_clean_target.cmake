file(REMOVE_RECURSE
  "librd_trace.a"
)
