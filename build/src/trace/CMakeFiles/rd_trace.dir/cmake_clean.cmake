file(REMOVE_RECURSE
  "CMakeFiles/rd_trace.dir/generator.cpp.o"
  "CMakeFiles/rd_trace.dir/generator.cpp.o.d"
  "CMakeFiles/rd_trace.dir/trace_io.cpp.o"
  "CMakeFiles/rd_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/rd_trace.dir/workload.cpp.o"
  "CMakeFiles/rd_trace.dir/workload.cpp.o.d"
  "librd_trace.a"
  "librd_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rd_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
