# Empty dependencies file for rd_trace.
# This may be replaced when dependencies are built.
