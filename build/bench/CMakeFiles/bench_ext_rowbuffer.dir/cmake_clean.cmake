file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_rowbuffer.dir/bench_ext_rowbuffer.cpp.o"
  "CMakeFiles/bench_ext_rowbuffer.dir/bench_ext_rowbuffer.cpp.o.d"
  "bench_ext_rowbuffer"
  "bench_ext_rowbuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_rowbuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
