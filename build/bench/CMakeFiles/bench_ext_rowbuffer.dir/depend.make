# Empty dependencies file for bench_ext_rowbuffer.
# This may be replaced when dependencies are built.
