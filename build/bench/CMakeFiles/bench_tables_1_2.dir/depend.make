# Empty dependencies file for bench_tables_1_2.
# This may be replaced when dependencies are built.
