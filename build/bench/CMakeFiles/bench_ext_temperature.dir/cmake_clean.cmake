file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_temperature.dir/bench_ext_temperature.cpp.o"
  "CMakeFiles/bench_ext_temperature.dir/bench_ext_temperature.cpp.o.d"
  "bench_ext_temperature"
  "bench_ext_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
