# Empty dependencies file for bench_ext_temperature.
# This may be replaced when dependencies are built.
