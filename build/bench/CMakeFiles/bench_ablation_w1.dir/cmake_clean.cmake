file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_w1.dir/bench_ablation_w1.cpp.o"
  "CMakeFiles/bench_ablation_w1.dir/bench_ablation_w1.cpp.o.d"
  "bench_ablation_w1"
  "bench_ablation_w1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_w1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
