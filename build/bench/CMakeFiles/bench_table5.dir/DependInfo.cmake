
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table5.cpp" "bench/CMakeFiles/bench_table5.dir/bench_table5.cpp.o" "gcc" "bench/CMakeFiles/bench_table5.dir/bench_table5.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/rd_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/rd_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/readduo/CMakeFiles/rd_readduo.dir/DependInfo.cmake"
  "/root/repo/build/src/pcm/CMakeFiles/rd_pcm.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/rd_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/rd_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/drift/CMakeFiles/rd_drift.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
