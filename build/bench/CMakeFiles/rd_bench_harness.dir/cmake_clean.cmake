file(REMOVE_RECURSE
  "CMakeFiles/rd_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/rd_bench_harness.dir/harness.cpp.o.d"
  "librd_bench_harness.a"
  "librd_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rd_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
