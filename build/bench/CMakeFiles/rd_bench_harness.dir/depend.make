# Empty dependencies file for rd_bench_harness.
# This may be replaced when dependencies are built.
