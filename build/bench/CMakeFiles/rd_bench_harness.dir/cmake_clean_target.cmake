file(REMOVE_RECURSE
  "librd_bench_harness.a"
)
