file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_wear.dir/bench_ext_wear.cpp.o"
  "CMakeFiles/bench_ext_wear.dir/bench_ext_wear.cpp.o.d"
  "bench_ext_wear"
  "bench_ext_wear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
