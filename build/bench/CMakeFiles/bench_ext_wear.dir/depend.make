# Empty dependencies file for bench_ext_wear.
# This may be replaced when dependencies are built.
