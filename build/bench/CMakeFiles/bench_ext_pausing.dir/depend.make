# Empty dependencies file for bench_ext_pausing.
# This may be replaced when dependencies are built.
