file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_pausing.dir/bench_ext_pausing.cpp.o"
  "CMakeFiles/bench_ext_pausing.dir/bench_ext_pausing.cpp.o.d"
  "bench_ext_pausing"
  "bench_ext_pausing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_pausing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
