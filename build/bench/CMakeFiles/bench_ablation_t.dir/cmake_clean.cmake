file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_t.dir/bench_ablation_t.cpp.o"
  "CMakeFiles/bench_ablation_t.dir/bench_ablation_t.cpp.o.d"
  "bench_ablation_t"
  "bench_ablation_t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
