# Empty compiler generated dependencies file for bench_ablation_t.
# This may be replaced when dependencies are built.
