// Figure 11: storage density and EDAP (Energy-Delay-Area Product),
// normalized to the TLC baseline. Paper: with dynamic energy, LWT-4 and
// Select-4:2 beat TLC by 7.5% and 37%; with system energy, by 11% and 23%.
#include <cstdio>

#include "harness.h"
#include "stats/report.h"

using namespace rd;
using namespace rd::bench;

int main() {
  bench::set_bench_name("fig11");
  std::printf("== Figure 11: density and EDAP vs the TLC baseline (budget "
              "%llu instructions/core)\n\n",
              static_cast<unsigned long long>(instruction_budget()));

  // Cells needed to store one 64 B line (the area axis of EDAP).
  readduo::ReadDuoOptions opts;
  std::vector<readduo::SchemeKind> kinds = {readduo::SchemeKind::kTlc};
  for (auto k : paper_schemes()) kinds.push_back(k);

  std::printf("Cells per 64 B line (normalized to TLC = 384):\n");
  stats::Table dt({"Scheme", "cells/line", "vs TLC"});
  {
    readduo::SchemeEnv env;
    for (auto kind : kinds) {
      auto s = readduo::make_scheme(kind, env, opts);
      dt.add_row({s->name(), stats::fmt("%.0f", s->cells_per_line()),
                  stats::fmt("%.3f", s->cells_per_line() / 384.0)});
    }
  }
  dt.print();

  // EDAP per scheme, geomean over the 14 workloads, TLC = 1. `kinds`
  // already leads with TLC, so one flat concurrent batch covers all runs.
  std::vector<RunSpec> specs;
  for (const auto& w : trace::spec2006_workloads()) {
    for (auto kind : kinds) specs.push_back({kind, w});
  }
  const std::vector<RunResult> results = run_schemes(specs);

  std::vector<std::vector<double>> ed(kinds.size()), es(kinds.size());
  std::size_t idx = 0;
  for ([[maybe_unused]] const auto& w : trace::spec2006_workloads()) {
    const RunResult& tlc = results[idx];
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      const RunResult& r = results[idx++];
      ed[i].push_back(stats::edap_dynamic(r.summary, tlc.summary));
      es[i].push_back(stats::edap_system(r.summary, tlc.summary));
    }
  }

  std::printf("\nEDAP normalized to TLC (lower is better):\n");
  stats::Table t({"Scheme", "Product-D (dynamic)", "Product-S (system)"});
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    t.add_row({readduo::scheme_name(kinds[i], opts),
               stats::fmt("%.3f", geomean(ed[i])),
               stats::fmt("%.3f", geomean(es[i]))});
  }
  t.print();

  std::printf("\nPaper: LWT-4 beats TLC by 7.5%% (dynamic) / 11%% (system); "
              "Select-4:2 by 37%% / 23%%\n");
  return 0;
}
