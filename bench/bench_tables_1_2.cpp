// Tables I, II, VIII, IX: the model configurations the rest of the
// reproduction is built on. Printing them from the live structs keeps the
// documentation honest — what you see here is what every bench uses.
#include <cstdio>

#include "drift/metric.h"
#include "pcm/params.h"
#include "pcm/write.h"
#include "stats/report.h"

using namespace rd;

namespace {

void print_metric(const drift::MetricConfig& c) {
  std::printf("\n%s configuration (t0 = %.0fs, programmed range +/-%.3f "
              "sigma, read boundary +/-%.2f sigma):\n",
              c.name.c_str(), c.t0_seconds, c.program_halfwidth,
              c.boundary_halfwidth);
  stats::Table t({"Level", "Data", "log10(X)", "sigma", "mu_alpha",
                  "sigma_alpha"});
  for (std::size_t i = 0; i < drift::kNumStates; ++i) {
    const auto& s = c.states[i];
    t.add_row({std::to_string(i),
               std::string(1, '0' + ((drift::kLevelData[i] >> 1) & 1)) +
                   std::string(1, '0' + (drift::kLevelData[i] & 1)),
               stats::fmt("%.0f", s.mu), stats::fmt("%.4f", s.sigma),
               stats::fmt("%.5f", s.mu_alpha),
               stats::fmt("%.5f", s.sigma_alpha)});
  }
  t.print();
}

}  // namespace

int main() {
  std::printf("== Table I / Table II: readout-metric drift configurations\n");
  print_metric(drift::r_metric());
  print_metric(drift::m_metric());

  std::printf("\n== Table VIII: system configuration\n");
  pcm::CpuParams cpu;
  pcm::MemoryOrg org;
  pcm::TimingParams tm;
  std::printf("  CPU: %u in-order cores @ %.1f GHz (read stall fraction "
              "%.2f)\n",
              cpu.num_cores, cpu.clock_ghz, cpu.read_stall_fraction);
  std::printf("  Memory: %llu GB MLC PCM, %u banks, %u B lines, %u cells "
              "per line, %u lines per scrub row\n",
              static_cast<unsigned long long>(org.capacity_bytes >> 30),
              org.num_banks, org.line_bytes, org.cells_per_line,
              org.lines_per_scrub);
  std::printf("  Timing: R-read %lld ns, M-read %lld ns, R-M-read %lld ns, "
              "write %lld ns, bus %lld ns\n",
              static_cast<long long>(tm.r_read.v),
              static_cast<long long>(tm.m_read.v),
              static_cast<long long>(tm.rm_read.v),
              static_cast<long long>(tm.write.v),
              static_cast<long long>(tm.bus_transfer.v));

  std::printf("\n== Table IX: energy parameters (literature-typical; see "
              "DESIGN.md substitutions)\n");
  pcm::EnergyParams e;
  std::printf("  R-read: %.0f pJ/line, M-read: %.0f pJ/line, cell write: "
              "%.0f pJ/cell, static: %.2f W\n",
              e.r_read.v, e.m_read.v, e.cell_write.v, e.static_watts);
  pcm::PnvParams pnv;
  std::printf("  P&V pulses per cell write (avg over levels): %.2f\n",
              pcm::average_write_pulses(pnv));
  return 0;
}
