// Figure 13: sensitivity to the selective-rewrite window s in
// Select-(4:s). Larger s converts more full-line writes to differential
// ones. Paper: s=2 saves 1.2% energy over s=1.
#include <cstdio>

#include "harness.h"
#include "stats/report.h"

using namespace rd;
using namespace rd::bench;

int main() {
  bench::set_bench_name("fig13");
  std::printf("== Figure 13: impact of selective-rewrite window s "
              "(Select-4:s dynamic energy normalized to Ideal)\n\n");

  const unsigned ss[] = {1, 2, 4};
  std::vector<std::string> header = {"Workload"};
  for (unsigned s : ss) header.push_back("Select-4:" + std::to_string(s));
  header.push_back("s=2 vs s=1");
  stats::Table t(header);

  std::vector<double> gain;
  for (const auto& w : trace::spec2006_workloads()) {
    const RunResult ideal = run_scheme(readduo::SchemeKind::kIdeal, w);
    std::vector<std::string> row = {w.name};
    double e1 = 0.0, e2 = 0.0;
    for (unsigned s : ss) {
      readduo::ReadDuoOptions opts;
      opts.select_s = s;
      const RunResult r = run_scheme(readduo::SchemeKind::kSelect, w, opts);
      const double ratio =
          r.summary.dynamic_energy_pj / ideal.summary.dynamic_energy_pj;
      if (s == 1) e1 = ratio;
      if (s == 2) e2 = ratio;
      row.push_back(stats::fmt("%.3f", ratio));
    }
    const double g = e1 / e2;
    gain.push_back(g);
    row.push_back(stats::fmt("%+.2f%%", 100.0 * (g - 1.0)));
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\nAverage s=2-over-s=1 energy saving: %+.2f%%  (paper: "
              "+1.2%%)\n",
              100.0 * (geomean(gain) - 1.0));
  return 0;
}
