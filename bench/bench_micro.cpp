// Micro-benchmarks (google-benchmark) for the performance-critical
// substrate: BCH codec, drift analytics, device Monte-Carlo, and the
// event-driven simulator core.
//
// The BM_Kernel_* benchmarks time each rewritten hot-path kernel in all
// its implementations — `_ref` (straight-line reference), `_opt`
// (table-driven / memoized / batched) and `_vec` (SoA + SIMD lanes,
// dispatched at the level READDUO_SIMD / the host allows) — in one
// binary, so every run is a self-contained before/after measurement.
// run_all_benches.sh extracts the triples into BENCH_pr6.json (see README
// "Profiling the hot paths").
//
// READDUO_BENCH_FAST=1 caps every benchmark's sampling time at a few
// milliseconds — a smoke-run mode for run_test_sweep.sh that checks the
// benchmarks still execute without paying the full measurement cost. The
// numbers it prints are NOT stable; never record them.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/env.h"
#include "common/kernels.h"
#include "common/rng.h"
#include "drift/error_model.h"
#include "ecc/bch.h"
#include "ecc/secded.h"
#include "memsim/env.h"
#include "memsim/simulator.h"
#include "pcm/line.h"
#include "pcm/mc_ler.h"
#include "readduo/schemes.h"
#include "trace/generator.h"

using namespace rd;

namespace {

const ecc::BchCode& bch8() {
  static const ecc::BchCode code(10, 8, 512);
  return code;
}

const ecc::BchCode& bch8_mode(KernelMode mode) {
  static const ecc::BchCode ref(10, 8, 512, KernelMode::kReference);
  static const ecc::BchCode opt(10, 8, 512, KernelMode::kOptimized);
  static const ecc::BchCode vec(10, 8, 512, KernelMode::kVectorized);
  switch (mode) {
    case KernelMode::kReference: return ref;
    case KernelMode::kVectorized: return vec;
    default: return opt;
  }
}

BitVec random_payload(Rng& rng, std::size_t n) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

void BM_BchEncode(benchmark::State& state) {
  Rng rng(1);
  const BitVec data = random_payload(rng, 512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bch8().encode(data));
  }
}
BENCHMARK(BM_BchEncode);

void BM_BchSyndromeClean(benchmark::State& state) {
  Rng rng(2);
  const BitVec cw = bch8().encode(random_payload(rng, 512));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bch8().is_codeword(cw));
  }
}
BENCHMARK(BM_BchSyndromeClean);

void BM_BchDecode(benchmark::State& state) {
  const unsigned nerr = static_cast<unsigned>(state.range(0));
  Rng rng(3);
  const BitVec clean = bch8().encode(random_payload(rng, 512));
  for (auto _ : state) {
    state.PauseTiming();
    BitVec cw = clean;
    for (unsigned i = 0; i < nerr; ++i) {
      cw.flip(rng.uniform_below(cw.size()));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(bch8().decode(cw));
  }
}
BENCHMARK(BM_BchDecode)->Arg(0)->Arg(1)->Arg(4)->Arg(8);

void BM_Secded(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    std::uint64_t d = rng.next();
    std::uint8_t c = ecc::Secded7264::encode_checks(d);
    d ^= 1ull << (rng.next() % 64);
    benchmark::DoNotOptimize(ecc::Secded7264::decode(d, c));
  }
}
BENCHMARK(BM_Secded);

void BM_DriftCellErrorProb(benchmark::State& state) {
  const drift::ErrorModel model(drift::r_metric());
  double t = 1.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.avg_cell_error_prob(t));
    t = t < 1e6 ? t * 1.37 : 1.5;
  }
}
BENCHMARK(BM_DriftCellErrorProb);

void BM_DriftLerTail(benchmark::State& state) {
  const drift::LerCalculator calc{drift::ErrorModel(drift::r_metric())};
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.ler(8, 640.0));
  }
}
BENCHMARK(BM_DriftLerTail);

void BM_CellErrorTableLookup(benchmark::State& state) {
  const drift::ErrorModel model(drift::r_metric());
  const drift::CellErrorTable table(model);
  double t = 2.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.prob(t));
    t = t < 1e6 ? t * 1.01 : 2.0;
  }
}
BENCHMARK(BM_CellErrorTableLookup);

void BM_MlcLineWriteRead(benchmark::State& state) {
  Rng rng(5);
  const drift::MetricConfig cfg = drift::r_metric();
  pcm::MlcLine line(592);
  const BitVec data = random_payload(rng, 592);
  for (auto _ : state) {
    line.write_full(data, 0.0, rng, cfg);
    benchmark::DoNotOptimize(line.read(640.0, cfg));
  }
}
BENCHMARK(BM_MlcLineWriteRead);

void BM_ZipfDraw(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.zipf(1u << 20, 0.7));
  }
}
BENCHMARK(BM_ZipfDraw);

void BM_TraceGen(benchmark::State& state) {
  trace::TraceGen gen(trace::workload_by_name("mcf"), 0, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
}
BENCHMARK(BM_TraceGen);

// --- Kernel before/after triples (DESIGN.md §10, §10.5) ------------------
//
// Each triple runs the identical workload through the reference, the
// optimized and the vectorized implementation; the ratios are the serial
// speedups of that kernel on this host. Registered with
// Kernel_<name>_{ref,opt,vec} names so run_all_benches.sh can group them
// mechanically. The _vec entries measure whatever SIMD level dispatch
// lands on (run_all_benches.sh records rd::simd_level() next to them);
// under READDUO_SIMD=scalar they measure the fallback-to-optimized
// routing overhead instead.

void BM_KernelBchSyndrome(benchmark::State& state, KernelMode mode) {
  Rng rng(21);
  const ecc::BchCode& code = bch8_mode(mode);
  BitVec cw = code.encode(random_payload(rng, 512));
  // 8 errors: the syndrome pass always scans the full word either way;
  // errors keep the decode-representative bit mix.
  for (int i = 0; i < 8; ++i) cw.flip(rng.uniform_below(cw.size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.compute_syndromes(cw));
  }
}
BENCHMARK_CAPTURE(BM_KernelBchSyndrome, ref, KernelMode::kReference)
    ->Name("Kernel_bch_syndrome_ref");
BENCHMARK_CAPTURE(BM_KernelBchSyndrome, opt, KernelMode::kOptimized)
    ->Name("Kernel_bch_syndrome_opt");
BENCHMARK_CAPTURE(BM_KernelBchSyndrome, vec, KernelMode::kVectorized)
    ->Name("Kernel_bch_syndrome_vec");

void BM_KernelBchDecode8(benchmark::State& state, KernelMode mode) {
  Rng rng(22);
  const ecc::BchCode& code = bch8_mode(mode);
  const BitVec clean = code.encode(random_payload(rng, 512));
  for (auto _ : state) {
    state.PauseTiming();
    BitVec cw = clean;
    for (int i = 0; i < 8; ++i) cw.flip(rng.uniform_below(cw.size()));
    state.ResumeTiming();
    benchmark::DoNotOptimize(code.decode(cw));
  }
}
BENCHMARK_CAPTURE(BM_KernelBchDecode8, ref, KernelMode::kReference)
    ->Name("Kernel_bch_decode8_ref");
BENCHMARK_CAPTURE(BM_KernelBchDecode8, opt, KernelMode::kOptimized)
    ->Name("Kernel_bch_decode8_opt");
BENCHMARK_CAPTURE(BM_KernelBchDecode8, vec, KernelMode::kVectorized)
    ->Name("Kernel_bch_decode8_vec");

void BM_KernelDriftLerTail(benchmark::State& state, KernelMode mode) {
  // Re-evaluating a Table III point, the access pattern of the (E, S, W)
  // grids: the memoized model pays the quadrature once per distinct
  // (state, t), the reference pays it on every call.
  const drift::LerCalculator calc{
      drift::ErrorModel(drift::r_metric(), mode)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.ler(8, 640.0));
  }
}
BENCHMARK_CAPTURE(BM_KernelDriftLerTail, ref, KernelMode::kReference)
    ->Name("Kernel_drift_ler_tail_ref");
BENCHMARK_CAPTURE(BM_KernelDriftLerTail, opt, KernelMode::kOptimized)
    ->Name("Kernel_drift_ler_tail_opt");
// No SIMD lanes in the closed-form LER model — _vec pins the contract
// that kVectorized keeps the memoized path (≈ _opt, never ≈ _ref).
BENCHMARK_CAPTURE(BM_KernelDriftLerTail, vec, KernelMode::kVectorized)
    ->Name("Kernel_drift_ler_tail_vec");

void BM_KernelMlcLineRead(benchmark::State& state, KernelMode mode) {
  Rng rng(23);
  const drift::MetricConfig cfg = drift::r_metric();
  pcm::MlcLine line(592);
  line.write_full(random_payload(rng, 592), 0.0, rng, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(line.read(640.0, cfg, mode));
  }
}
BENCHMARK_CAPTURE(BM_KernelMlcLineRead, ref, KernelMode::kReference)
    ->Name("Kernel_mlc_line_read_ref");
BENCHMARK_CAPTURE(BM_KernelMlcLineRead, opt, KernelMode::kOptimized)
    ->Name("Kernel_mlc_line_read_opt");
BENCHMARK_CAPTURE(BM_KernelMlcLineRead, vec, KernelMode::kVectorized)
    ->Name("Kernel_mlc_line_read_vec");

void BM_KernelDriftErrorScan(benchmark::State& state, KernelMode mode) {
  // The Monte-Carlo LER / Figure 6 inner loop: count misread cells of a
  // written line at many ages. One log10 per age in the batched kernel,
  // one per (age, cell) in the reference.
  Rng rng(23);
  const drift::MetricConfig cfg = drift::r_metric();
  pcm::MlcLine line(592);
  line.write_full(random_payload(rng, 592), 0.0, rng, cfg);
  for (auto _ : state) {
    std::size_t errors = 0;
    for (int i = 0; i < 64; ++i) {
      errors += line.count_drift_errors(64.0 * (i + 1), cfg, mode);
    }
    benchmark::DoNotOptimize(errors);
  }
}
BENCHMARK_CAPTURE(BM_KernelDriftErrorScan, ref, KernelMode::kReference)
    ->Name("Kernel_drift_error_scan_ref");
BENCHMARK_CAPTURE(BM_KernelDriftErrorScan, opt, KernelMode::kOptimized)
    ->Name("Kernel_drift_error_scan_opt");
BENCHMARK_CAPTURE(BM_KernelDriftErrorScan, vec, KernelMode::kVectorized)
    ->Name("Kernel_drift_error_scan_vec");

void BM_SimulatorRun(benchmark::State& state) {
  const auto& w = trace::workload_by_name("bzip2");
  for (auto _ : state) {
    memsim::SimConfig cfg;
    cfg.instructions_per_core = 200'000;
    readduo::SchemeEnv env = memsim::make_scheme_env(w, cfg.cpu, 1);
    auto scheme =
        readduo::make_scheme(readduo::SchemeKind::kHybrid, env);
    memsim::Simulator sim(cfg, *scheme, w);
    benchmark::DoNotOptimize(sim.run());
  }
}
BENCHMARK(BM_SimulatorRun)->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN() plus the READDUO_BENCH_FAST smoke mode: when the knob
// is 1, inject a tiny --benchmark_min_time before the real argv so every
// benchmark samples for milliseconds instead of seconds. An explicit
// --benchmark_min_time on the command line still wins (later flags
// override earlier ones in google-benchmark). Strict parse: only "1"
// (on) and "0" (off) are meaningful values.
int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  args.push_back(argv[0]);
  char fast_flag[] = "--benchmark_min_time=0.003";
  const char* fast = env_cstr("READDUO_BENCH_FAST");
  if (fast != nullptr) {
    RD_CHECK_MSG(std::strcmp(fast, "0") == 0 || std::strcmp(fast, "1") == 0,
                 "READDUO_BENCH_FAST must be '0' or '1', got '" << fast
                                                                << "'");
    if (std::strcmp(fast, "1") == 0) args.push_back(fast_flag);
  }
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  // Record the active kernel tier and SIMD dispatch level in the report
  // context, so a BENCH_*.json states what the _vec rows actually ran
  // (run_all_benches.sh copies both into its summary).
  const KernelMode resolved = resolve_kernel_mode(KernelMode::kAuto);
  benchmark::AddCustomContext(
      "readduo_kernels", resolved == KernelMode::kReference  ? "reference"
                         : resolved == KernelMode::kOptimized ? "optimized"
                                                              : "vector");
  benchmark::AddCustomContext("readduo_simd", simd_level_name(simd_level()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
