// Micro-benchmarks (google-benchmark) for the performance-critical
// substrate: BCH codec, drift analytics, device Monte-Carlo, and the
// event-driven simulator core.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "drift/error_model.h"
#include "ecc/bch.h"
#include "ecc/secded.h"
#include "memsim/env.h"
#include "memsim/simulator.h"
#include "pcm/line.h"
#include "readduo/schemes.h"
#include "trace/generator.h"

using namespace rd;

namespace {

const ecc::BchCode& bch8() {
  static const ecc::BchCode code(10, 8, 512);
  return code;
}

BitVec random_payload(Rng& rng, std::size_t n) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

void BM_BchEncode(benchmark::State& state) {
  Rng rng(1);
  const BitVec data = random_payload(rng, 512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bch8().encode(data));
  }
}
BENCHMARK(BM_BchEncode);

void BM_BchSyndromeClean(benchmark::State& state) {
  Rng rng(2);
  const BitVec cw = bch8().encode(random_payload(rng, 512));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bch8().is_codeword(cw));
  }
}
BENCHMARK(BM_BchSyndromeClean);

void BM_BchDecode(benchmark::State& state) {
  const unsigned nerr = static_cast<unsigned>(state.range(0));
  Rng rng(3);
  const BitVec clean = bch8().encode(random_payload(rng, 512));
  for (auto _ : state) {
    state.PauseTiming();
    BitVec cw = clean;
    for (unsigned i = 0; i < nerr; ++i) {
      cw.flip(rng.uniform_below(cw.size()));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(bch8().decode(cw));
  }
}
BENCHMARK(BM_BchDecode)->Arg(0)->Arg(1)->Arg(4)->Arg(8);

void BM_Secded(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    std::uint64_t d = rng.next();
    std::uint8_t c = ecc::Secded7264::encode_checks(d);
    d ^= 1ull << (rng.next() % 64);
    benchmark::DoNotOptimize(ecc::Secded7264::decode(d, c));
  }
}
BENCHMARK(BM_Secded);

void BM_DriftCellErrorProb(benchmark::State& state) {
  const drift::ErrorModel model(drift::r_metric());
  double t = 1.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.avg_cell_error_prob(t));
    t = t < 1e6 ? t * 1.37 : 1.5;
  }
}
BENCHMARK(BM_DriftCellErrorProb);

void BM_DriftLerTail(benchmark::State& state) {
  const drift::LerCalculator calc{drift::ErrorModel(drift::r_metric())};
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.ler(8, 640.0));
  }
}
BENCHMARK(BM_DriftLerTail);

void BM_CellErrorTableLookup(benchmark::State& state) {
  const drift::ErrorModel model(drift::r_metric());
  const drift::CellErrorTable table(model);
  double t = 2.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.prob(t));
    t = t < 1e6 ? t * 1.01 : 2.0;
  }
}
BENCHMARK(BM_CellErrorTableLookup);

void BM_MlcLineWriteRead(benchmark::State& state) {
  Rng rng(5);
  const drift::MetricConfig cfg = drift::r_metric();
  pcm::MlcLine line(592);
  const BitVec data = random_payload(rng, 592);
  for (auto _ : state) {
    line.write_full(data, 0.0, rng, cfg);
    benchmark::DoNotOptimize(line.read(640.0, cfg));
  }
}
BENCHMARK(BM_MlcLineWriteRead);

void BM_ZipfDraw(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.zipf(1u << 20, 0.7));
  }
}
BENCHMARK(BM_ZipfDraw);

void BM_TraceGen(benchmark::State& state) {
  trace::TraceGen gen(trace::workload_by_name("mcf"), 0, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
}
BENCHMARK(BM_TraceGen);

void BM_SimulatorRun(benchmark::State& state) {
  const auto& w = trace::workload_by_name("bzip2");
  for (auto _ : state) {
    memsim::SimConfig cfg;
    cfg.instructions_per_core = 200'000;
    readduo::SchemeEnv env = memsim::make_scheme_env(w, cfg.cpu, 1);
    auto scheme =
        readduo::make_scheme(readduo::SchemeKind::kHybrid, env);
    memsim::Simulator sim(cfg, *scheme, w);
    benchmark::DoNotOptimize(sim.run());
  }
}
BENCHMARK(BM_SimulatorRun)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
