// Table III: line error rate (LER) within the first scrub interval under
// R-metric sensing, for BCH strength E and interval S, against the
// DRAM-equivalent target. The paper's pivotal feasibility points:
// (BCH=8, S=8) meets the target, and 17-error detection stays below the
// target out to S = 640 s (what makes ReadDuo-Hybrid safe).
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "drift/error_model.h"
#include "stats/report.h"

using namespace rd;

namespace {

std::string cell(double ler, double target) {
  if (ler < 1e-18) return "too small";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2E%s", ler, ler <= target ? " *" : "");
  return buf;
}

}  // namespace

int main() {
  drift::LerCalculator calc{drift::ErrorModel(drift::r_metric())};
  const unsigned es[] = {0, 1, 7, 8, 9, 16, 17, 18};
  const double times[] = {4, 8, 16, 32, 64, 128, 256, 512, 640, 1024};

  std::printf("== Table III: LER vs (E, S), R-metric sensing\n");
  std::printf("   ('*' marks entries meeting the DRAM target; paper anchor: "
              "(E=8, S=8) feasible, (E=17, S=640) feasible)\n\n");
  std::vector<std::string> header = {"S(s)"};
  for (unsigned e : es) header.push_back("E=" + std::to_string(e));
  header.push_back("LER_DRAM");

  // The (E, S) grid is a pure function per cell; evaluate it over the
  // READDUO_THREADS pool, then format serially.
  constexpr std::size_t kE = std::size(es);
  constexpr std::size_t kS = std::size(times);
  std::vector<double> lers(kS * kE);
  parallel_for_shards(lers.size(), [&](std::size_t i) {
    lers[i] = calc.ler(es[i % kE], times[i / kE]);
  });

  stats::Table t(header);
  for (std::size_t si = 0; si < kS; ++si) {
    const double s = times[si];
    const double target = drift::LerCalculator::ler_dram_target(s);
    std::vector<std::string> row = {stats::fmt("%.0f", s)};
    for (std::size_t ei = 0; ei < kE; ++ei) {
      row.push_back(cell(lers[si * kE + ei], target));
    }
    row.push_back(stats::fmt("%.2E", target));
    t.add_row(std::move(row));
  }
  t.print();

  const double t640 = drift::LerCalculator::ler_dram_target(640);
  std::printf("\nPivotal checks:\n");
  std::printf("  LER(E=8,  S=8)   = %.2E  (target %.2E)  %s\n",
              calc.ler(8, 8), drift::LerCalculator::ler_dram_target(8),
              calc.ler(8, 8) <= drift::LerCalculator::ler_dram_target(8)
                  ? "MEETS"
                  : "fails");
  std::printf("  LER(E=17, S=640) = %.2E  (target %.2E)  %s\n",
              calc.ler(17, 640), t640,
              calc.ler(17, 640) <= t640 ? "MEETS" : "fails");
  return 0;
}
