// Figure 4: read modes under the three sensing strategies — R-read
// (150 ns), M-read (450 ns), R-M-read (600 ns) — plus the decoupled
// detect/correct analysis that makes the hybrid safe: the probability a
// read falls in each BCH-8 bucket (correctable <= 8, detectable 9..17,
// silent > 17) as a function of line age.
#include <cstdio>

#include "drift/error_model.h"
#include "harness.h"
#include "stats/report.h"

using namespace rd;
using namespace rd::bench;

int main() {
  bench::set_bench_name("fig4");
  std::printf("== Figure 4: read service modes\n\n");

  // Analytic bucket probabilities under R-sensing vs line age.
  std::printf("R-sensing error-count buckets vs age (BCH-8, 296 cells):\n");
  drift::LerCalculator calc{drift::ErrorModel(drift::r_metric())};
  stats::Table b({"Age (s)", "P(<=8: R-read ok)", "P(9..17: R-M-read)",
                  "P(>17: silent)"});
  for (double age : {1.0, 8.0, 64.0, 320.0, 640.0, 1280.0, 4096.0}) {
    const double p_gt8 = calc.ler(8, age);
    const double p_gt17 = calc.ler(17, age);
    b.add_row({stats::fmt("%.0f", age), stats::fmt("%.3E", 1.0 - p_gt8),
               stats::fmt("%.3E", p_gt8 - p_gt17),
               stats::fmt("%.3E", p_gt17)});
  }
  b.print();
  std::printf("(decoupling detect from correct keeps P(silent) below the "
              "DRAM target out to 640 s — Section III-B)\n\n");

  // Measured mode mix and latency per scheme.
  std::printf("Measured read-mode mix (geomean-relevant workloads):\n");
  stats::Table t({"Workload", "Scheme", "R-read", "M-read", "R-M-read",
                  "avg latency (ns)"});
  for (const char* name : {"bzip2", "mcf", "sphinx3"}) {
    const auto& w = trace::workload_by_name(name);
    for (auto kind : {readduo::SchemeKind::kScrubbing,
                      readduo::SchemeKind::kMMetric,
                      readduo::SchemeKind::kHybrid,
                      readduo::SchemeKind::kLwt}) {
      const RunResult r = run_scheme(kind, w);
      t.add_row({w.name, r.summary.scheme,
                 std::to_string(r.counters.r_reads),
                 std::to_string(r.counters.m_reads),
                 std::to_string(r.counters.rm_reads),
                 stats::fmt("%.0f", r.sim.avg_read_latency_ns())});
    }
  }
  t.print();
  return 0;
}
