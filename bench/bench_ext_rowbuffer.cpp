// Extension bench: the open-page row-buffer model. The paper's baseline is
// closed-page; this quantifies what an open-page policy would add on top
// of each readout scheme (row hits skip sensing entirely, so they also
// bypass the R/M latency gap).
#include <cstdio>

#include "memsim/env.h"
#include "memsim/simulator.h"
#include "readduo/schemes.h"
#include "stats/report.h"
#include "trace/workload.h"

using namespace rd;

namespace {

struct Row {
  double exec_ms;
  double latency;
  double hit_rate;
};

Row run(readduo::SchemeKind kind, const trace::Workload& w, bool open_page) {
  memsim::SimConfig cfg;
  cfg.instructions_per_core = 2'000'000;
  cfg.seed = 77;
  cfg.row_buffer.enabled = open_page;
  // An open-page policy pairs with row-interleaved address mapping so
  // sequential lines land in the same latched row.
  if (open_page) cfg.address_map = memsim::AddressMap::kRowInterleave;
  readduo::SchemeEnv env = memsim::make_scheme_env(w, cfg.cpu, 77);
  auto scheme = readduo::make_scheme(kind, env);
  memsim::Simulator sim(cfg, *scheme, w);
  const memsim::SimResult r = sim.run();
  return Row{static_cast<double>(r.exec_time.v) * 1e-6,
             r.avg_read_latency_ns(),
             r.reads_serviced
                 ? static_cast<double>(r.row_hits) /
                       static_cast<double>(r.reads_serviced)
                 : 0.0};
}

}  // namespace

int main() {
  std::printf("== Extension: open-page row buffer vs the closed-page "
              "baseline\n\n");
  stats::Table t({"Workload", "Scheme", "closed (ms / ns)",
                  "open (ms / ns)", "hit rate", "speedup"});
  for (const char* name : {"gcc", "omnetpp", "mcf", "sphinx3"}) {
    const auto& w = trace::workload_by_name(name);
    for (auto kind :
         {readduo::SchemeKind::kIdeal, readduo::SchemeKind::kMMetric,
          readduo::SchemeKind::kLwt}) {
      const Row closed = run(kind, w, false);
      const Row open = run(kind, w, true);
      readduo::SchemeEnv env;
      t.add_row({w.name, readduo::make_scheme(kind, env)->name(),
                 stats::fmt("%.2f", closed.exec_ms) + " / " +
                     stats::fmt("%.0f", closed.latency),
                 stats::fmt("%.2f", open.exec_ms) + " / " +
                     stats::fmt("%.0f", open.latency),
                 stats::fmt("%.1f%%", 100.0 * open.hit_rate),
                 stats::fmt("%+.1f%%",
                            100.0 * (closed.exec_ms / open.exec_ms - 1.0))});
    }
  }
  t.print();
  std::printf("\nReading: open-page + row-interleave is a locality-vs-"
              "parallelism trade. Sequential streams (sphinx3's scan) hit "
              "the latched row ~1/3 of the time and skip sensing entirely "
              "— which shrinks the M/R-M latency gap, hence LWT-4's gain. "
              "Hot-lined workloads (gcc) lose badly: row-interleaving "
              "concentrates their traffic in few banks and queueing "
              "swamps the hit savings. The paper's closed-page, "
              "line-interleaved baseline is the right default for MLC "
              "PCM.\n");
  return 0;
}
