// Extension bench: write cancellation [18] vs write pausing. The paper's
// baseline cancels in-flight writes when a read arrives (restart from
// scratch); pausing resumes with the remaining P&V iterations, recovering
// the wasted work. Matters most for write-heavy workloads under the slow
// 1000 ns MLC write.
#include <cstdio>

#include "memsim/env.h"
#include "memsim/simulator.h"
#include "readduo/schemes.h"
#include "stats/report.h"
#include "trace/workload.h"

using namespace rd;

namespace {

memsim::SimResult run(const trace::Workload& w,
                      memsim::WritePreemption policy, bool cancellation) {
  memsim::SimConfig cfg;
  cfg.instructions_per_core = 2'000'000;
  cfg.seed = 55;
  cfg.write_preemption = policy;
  cfg.write_cancellation = cancellation;
  readduo::SchemeEnv env = memsim::make_scheme_env(w, cfg.cpu, 55);
  auto scheme = readduo::make_scheme(readduo::SchemeKind::kIdeal, env);
  memsim::Simulator sim(cfg, *scheme, w);
  return sim.run();
}

}  // namespace

int main() {
  std::printf("== Extension: read-over-write preemption policies "
              "(Ideal scheme; exec ms / avg read ns)\n\n");
  stats::Table t({"Workload", "no preemption", "cancel (paper)", "pause",
                  "preemptions", "bank-busy saved by pausing"});
  for (const char* name : {"lbm", "mcf", "milc", "omnetpp"}) {
    const auto& w = trace::workload_by_name(name);
    const memsim::SimResult none =
        run(w, memsim::WritePreemption::kCancel, false);
    const memsim::SimResult cancel =
        run(w, memsim::WritePreemption::kCancel, true);
    const memsim::SimResult pause =
        run(w, memsim::WritePreemption::kPause, true);
    auto cell = [](const memsim::SimResult& r) {
      return stats::fmt("%.2f", static_cast<double>(r.exec_time.v) * 1e-6) +
             " / " + stats::fmt("%.0f", r.avg_read_latency_ns());
    };
    t.add_row({w.name, cell(none), cell(cancel), cell(pause),
               std::to_string(cancel.write_cancellations),
               stats::fmt("%.1f%%",
                          100.0 * (1.0 - static_cast<double>(pause.bank_busy_ns) /
                                             static_cast<double>(
                                                 cancel.bank_busy_ns)))});
  }
  t.print();
  std::printf("\nReading: preemption (either flavour) buys read latency by "
              "keeping reads ahead of 1000 ns writes; pausing additionally "
              "recovers the cancelled writes' completed iterations, "
              "trimming bank occupancy at identical read latency.\n");
  return 0;
}
