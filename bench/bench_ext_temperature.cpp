// Extension bench: drift vs operating temperature. Hotter chips drift
// faster, which tightens every (E, S) feasibility point of Tables III/IV:
// this prints the maximum safe scrub interval for (BCH-8) R-sensing and
// the silent-corruption window (E=17) across the operating range — the
// numbers a deployment would derate by.
#include <cmath>
#include <cstdio>

#include "drift/error_model.h"
#include "stats/report.h"

using namespace rd;

namespace {

/// Largest S (seconds) with LER(e, S) <= target(S); bisection over log S.
double max_safe_interval(const drift::LerCalculator& calc, unsigned e) {
  double lo = 1.5, hi = 1e7;
  if (calc.ler(e, lo) > drift::LerCalculator::ler_dram_target(lo)) return 0.0;
  for (int i = 0; i < 64; ++i) {
    const double mid = std::sqrt(lo * hi);
    if (calc.ler(e, mid) <= drift::LerCalculator::ler_dram_target(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

int main() {
  std::printf("== Extension: temperature derating of the drift-reliability "
              "envelope\n\n");
  stats::Table t({"Temp (C)", "p_cell(640s), R", "max S for R(BCH-8)",
                  "E=17 safe to (Hybrid window)", "max S for M(BCH-8)"});
  for (double celsius : {0.0, 27.0, 45.0, 60.0, 85.0}) {
    const drift::ErrorModel r(
        drift::at_temperature(drift::r_metric(), celsius));
    const drift::ErrorModel m(
        drift::at_temperature(drift::m_metric(), celsius));
    drift::LerCalculator cr{r};
    drift::LerCalculator cm{m};
    t.add_row({stats::fmt("%.0f", celsius),
               stats::fmt("%.2E", r.avg_cell_error_prob(640.0)),
               stats::fmt("%.0f s", max_safe_interval(cr, 8)),
               stats::fmt("%.0f s", max_safe_interval(cr, 17)),
               stats::fmt("%.0f s", max_safe_interval(cm, 8))});
  }
  t.print();
  std::printf("\nReading: at the reference 27 C this reproduces the "
              "paper's working points (S=8 s for R-sensing, 640 s for the "
              "hybrid's 17-error detection window, >> 640 s for "
              "M-sensing); hotter parts must scrub harder, colder parts "
              "earn slack.\n");
  return 0;
}
