// Figure 12: sensitivity to the sub-interval count k in LWT-k. More
// sub-intervals track writes over a longer window (the vector flag retires
// less aggressively), enabling more fast R-reads — at the cost of more
// flag bits. Paper: k=4 is 0.7% faster than k=2 on average, 2.3% on mcf.
#include <cstdio>

#include "harness.h"
#include "stats/report.h"

using namespace rd;
using namespace rd::bench;

int main() {
  bench::set_bench_name("fig12");
  std::printf("== Figure 12: impact of sub-interval count k (LWT-k "
              "execution time normalized to Ideal)\n\n");

  const unsigned ks[] = {2, 4, 8};
  std::vector<std::string> header = {"Workload"};
  for (unsigned k : ks) header.push_back("LWT-" + std::to_string(k));
  header.push_back("k=4 vs k=2");
  stats::Table t(header);

  std::vector<double> gain;
  for (const auto& w : trace::spec2006_workloads()) {
    const RunResult ideal = run_scheme(readduo::SchemeKind::kIdeal, w);
    std::vector<std::string> row = {w.name};
    double t2 = 0.0, t4 = 0.0;
    for (unsigned k : ks) {
      readduo::ReadDuoOptions opts;
      opts.k = k;
      const RunResult r = run_scheme(readduo::SchemeKind::kLwt, w, opts);
      const double ratio = static_cast<double>(r.summary.exec_time.v) /
                           static_cast<double>(ideal.summary.exec_time.v);
      if (k == 2) t2 = ratio;
      if (k == 4) t4 = ratio;
      row.push_back(stats::fmt("%.3f", ratio));
    }
    const double g = t2 / t4;
    gain.push_back(g);
    row.push_back(stats::fmt("%+.2f%%", 100.0 * (g - 1.0)));
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\nAverage k=4-over-k=2 speedup: %+.2f%%  (paper: +0.7%% "
              "average, +2.3%% for mcf)\n",
              100.0 * (geomean(gain) - 1.0));
  std::printf("Flag-bit cost: k + log2(k) SLC bits per line (k=2: 3, k=4: "
              "6, k=8: 11)\n");
  return 0;
}
