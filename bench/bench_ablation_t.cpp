// Ablation (extension): adaptive vs static conversion percentage T.
// The Section III-C controller adjusts T in [0,100]; this bench pins T to
// fixed values on the two extreme workloads — sphinx3 (cyclic re-reads of
// old data: conversion pays) and mcf (near-uniform archive reads:
// conversion wastes writes) — and shows the adaptive controller tracking
// the better static point on both.
#include <cstdio>

#include "harness.h"
#include "stats/report.h"

using namespace rd;
using namespace rd::bench;

namespace {

readduo::ReadDuoOptions static_t(unsigned t) {
  readduo::ReadDuoOptions opts;
  opts.conversion = t > 0;
  opts.controller.initial_t = t;
  opts.controller.floor_t = t;
  // An epoch larger than any run freezes the controller.
  opts.controller.epoch_reads = 1ull << 62;
  return opts;
}

}  // namespace

int main() {
  bench::set_bench_name("ablation_t");
  std::printf("== Ablation: conversion percentage T — static vs adaptive "
              "(LWT-4 normalized to Ideal)\n\n");

  const char* names[] = {"sphinx3", "mcf", "soplex", "omnetpp"};
  const unsigned static_ts[] = {0u, 30u, 60u, 100u};

  // Per workload: Ideal, the four static-T pins, then adaptive — one flat
  // concurrent batch.
  std::vector<RunSpec> specs;
  for (const char* name : names) {
    const auto& w = trace::workload_by_name(name);
    specs.push_back({readduo::SchemeKind::kIdeal, w});
    for (unsigned tv : static_ts) {
      specs.push_back({readduo::SchemeKind::kLwt, w, static_t(tv)});
    }
    specs.push_back({readduo::SchemeKind::kLwt, w});
  }
  const std::vector<RunResult> results = run_schemes(specs);

  stats::Table t({"Workload", "T=0", "T=30", "T=60", "T=100", "adaptive",
                  "adaptive conv-writes"});
  std::size_t idx = 0;
  for (const char* name : names) {
    const auto& w = trace::workload_by_name(name);
    const RunResult& ideal = results[idx++];
    const double base = static_cast<double>(ideal.summary.exec_time.v);
    std::vector<std::string> row = {w.name};
    for ([[maybe_unused]] unsigned tv : static_ts) {
      const RunResult& r = results[idx++];
      row.push_back(
          stats::fmt("%.3f", static_cast<double>(r.summary.exec_time.v) /
                                 base));
    }
    const RunResult& adaptive = results[idx++];
    row.push_back(stats::fmt(
        "%.3f", static_cast<double>(adaptive.summary.exec_time.v) / base));
    row.push_back(std::to_string(adaptive.counters.conversion_writes));
    t.add_row(std::move(row));
  }
  t.print();

  std::printf("\nReading: sphinx3 wants high T (each converted line is "
              "re-read every scan cycle); mcf wants low T (archive reads "
              "barely repeat, conversions only burn endurance). The "
              "adaptive controller should sit near each workload's best "
              "static column.\n");
  return 0;
}
