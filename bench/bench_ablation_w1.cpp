// Ablation (extension): the three ways to make R-only scrubbing reliable,
// head to head. Table V leaves Scrubbing two honest options — rewrite
// everything every 8 s (W=0) or upgrade to BCH-10 — and ReadDuo-Hybrid's
// thesis is that both lose to hybrid sensing. This bench quantifies that
// claim across performance, energy, endurance, and density.
#include <cstdio>

#include "harness.h"
#include "stats/report.h"

using namespace rd;
using namespace rd::bench;

int main() {
  bench::set_bench_name("ablation_w1");
  std::printf("== Ablation: reliable drift mitigation alternatives "
              "(geomean over the 14 workloads, normalized to Ideal)\n\n");

  const readduo::SchemeKind kinds[] = {
      readduo::SchemeKind::kScrubbingW0,
      readduo::SchemeKind::kScrubbingBch10,
      readduo::SchemeKind::kHybrid,
      readduo::SchemeKind::kLwt,
      readduo::SchemeKind::kSelect,
  };
  constexpr std::size_t kN = std::size(kinds);

  // One flat concurrent batch: Ideal followed by the five alternatives,
  // per workload.
  std::vector<RunSpec> specs;
  for (const auto& w : trace::spec2006_workloads()) {
    specs.push_back({readduo::SchemeKind::kIdeal, w});
    for (auto kind : kinds) specs.push_back({kind, w});
  }
  const std::vector<RunResult> results = run_schemes(specs);

  std::vector<std::vector<double>> time(kN), energy(kN), life(kN);
  std::size_t idx = 0;
  for ([[maybe_unused]] const auto& w : trace::spec2006_workloads()) {
    const RunResult& ideal = results[idx++];
    for (std::size_t i = 0; i < kN; ++i) {
      const RunResult& r = results[idx++];
      time[i].push_back(static_cast<double>(r.summary.exec_time.v) /
                        static_cast<double>(ideal.summary.exec_time.v));
      energy[i].push_back(r.summary.dynamic_energy_pj /
                          ideal.summary.dynamic_energy_pj);
      life[i].push_back(
          stats::relative_lifetime(r.summary, ideal.summary));
    }
  }

  readduo::SchemeEnv env;
  stats::Table t({"Scheme", "exec time", "dyn energy", "lifetime",
                  "cells/line"});
  t.add_row({"Ideal", "1.000", "1.000", "1.000", "296"});
  for (std::size_t i = 0; i < kN; ++i) {
    auto s = readduo::make_scheme(kinds[i], env);
    t.add_row({s->name(), stats::fmt("%.3f", geomean(time[i])),
               stats::fmt("%.3f", geomean(energy[i])),
               stats::fmt("%.3f", geomean(life[i])),
               stats::fmt("%.0f", s->cells_per_line())});
  }
  t.print();

  std::printf("\nReading: W=0 scrubbing pays endurance and energy to make "
              "R-sensing safe; BCH-10 pays density and still scrubs every "
              "8 s; the ReadDuo family gets reliability from the M-metric "
              "safety net at a fraction of every cost.\n");
  return 0;
}
