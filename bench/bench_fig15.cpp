// Figure 15: PCM lifetime impact. Lifetime is inversely proportional to
// the cell-write rate. Paper: Scrubbing -12.4%, M-metric ~0, Hybrid -6%,
// LWT-4 -10%, Select-4:2 +42% relative to Ideal.
#include <cstdio>

#include "harness.h"
#include "stats/report.h"

using namespace rd;
using namespace rd::bench;

int main() {
  bench::set_bench_name("fig15");
  std::printf("== Figure 15: relative PCM lifetime (1/cell-write rate), "
              "Ideal = 1.0 (budget %llu instructions/core)\n\n",
              static_cast<unsigned long long>(instruction_budget()));

  std::vector<std::string> header = {"Workload"};
  readduo::ReadDuoOptions opts;
  for (auto kind : paper_schemes()) {
    header.push_back(readduo::scheme_name(kind, opts));
  }
  // One flat batch over (workload x scheme), executed concurrently.
  std::vector<RunSpec> specs;
  for (const auto& w : trace::spec2006_workloads()) {
    for (auto kind : paper_schemes()) specs.push_back({kind, w});
  }
  const std::vector<RunResult> results = run_schemes(specs);

  std::vector<std::vector<double>> ratios(paper_schemes().size());
  stats::Table t(header);
  std::size_t idx = 0;
  for (const auto& w : trace::spec2006_workloads()) {
    std::vector<std::string> row = {w.name};
    RunResult ideal;
    std::size_t i = 0;
    for (auto kind : paper_schemes()) {
      const RunResult& r = results[idx++];
      if (kind == readduo::SchemeKind::kIdeal) ideal = r;
      const double life = stats::relative_lifetime(r.summary, ideal.summary);
      ratios[i++].push_back(life);
      row.push_back(stats::fmt("%.3f", life));
    }
    t.add_row(std::move(row));
  }
  std::vector<std::string> avg = {"geomean"};
  for (const auto& rs : ratios) avg.push_back(stats::fmt("%.3f", geomean(rs)));
  t.add_row(std::move(avg));
  t.print();

  std::printf("\nWrite-mix detail (full vs differential demand writes):\n");
  stats::Table d({"Workload", "full", "diff", "scrub-rw", "conv", "diff%"});
  for (const char* name : {"bzip2", "mcf", "lbm"}) {
    const auto& w = trace::workload_by_name(name);
    const RunResult r = run_scheme(readduo::SchemeKind::kSelect, w);
    const auto& c = r.counters;
    const double tot = static_cast<double>(c.total_demand_writes());
    d.add_row({w.name, std::to_string(c.demand_full_writes),
               std::to_string(c.demand_diff_writes),
               std::to_string(c.scrub_rewrites),
               std::to_string(c.conversion_writes),
               stats::fmt("%.1f%%",
                          100.0 * static_cast<double>(c.demand_diff_writes) /
                              (tot > 0 ? tot : 1.0))});
  }
  d.print();

  std::printf("\nPaper: Scrubbing 0.876, M-metric ~1.0, Hybrid 0.94, LWT-4 "
              "0.90, Select-4:2 1.42\n");
  return 0;
}
