// Figure 3: motivation — the state-of-the-art mitigation schemes each
// sacrifice something: Scrubbing and M-metric lose performance, TLC loses
// storage density. (ReadDuo's point is refusing that trade.)
#include <cstdio>

#include "harness.h"
#include "stats/report.h"

using namespace rd;
using namespace rd::bench;

int main() {
  bench::set_bench_name("fig3");
  std::printf("== Figure 3: prior schemes' performance degradation and "
              "density penalty (vs drift-free Ideal)\n\n");

  const readduo::SchemeKind kinds[] = {
      readduo::SchemeKind::kScrubbing,
      readduo::SchemeKind::kScrubbingW0,
      readduo::SchemeKind::kMMetric,
      readduo::SchemeKind::kTlc,
  };
  constexpr std::size_t kN = 4;

  std::vector<std::vector<double>> slow(kN);
  for (const auto& w : trace::spec2006_workloads()) {
    const RunResult ideal = run_scheme(readduo::SchemeKind::kIdeal, w);
    for (std::size_t i = 0; i < kN; ++i) {
      const RunResult r = run_scheme(kinds[i], w);
      slow[i].push_back(static_cast<double>(r.summary.exec_time.v) /
                        static_cast<double>(ideal.summary.exec_time.v));
    }
  }

  stats::Table t({"Scheme", "Perf degradation", "Density penalty",
                  "Trade-off"});
  readduo::SchemeEnv env;
  const double ideal_cells =
      readduo::make_scheme(readduo::SchemeKind::kIdeal, env)->cells_per_line();
  const char* notes[] = {
      "wastes bandwidth on 8 s scrubs (W=1: not DRAM-reliable)",
      "W=0 rewrite-at-every-scrub: the reliable R-only setting",
      "every read pays 450 ns",
      "needs 384 cells per 64 B line",
  };
  for (std::size_t i = 0; i < kN; ++i) {
    auto s = readduo::make_scheme(kinds[i], env);
    t.add_row({s->name(),
               stats::fmt("%+.1f%%", 100.0 * (geomean(slow[i]) - 1.0)),
               stats::fmt("%+.1f%%",
                          100.0 * (s->cells_per_line() / ideal_cells - 1.0)),
               notes[i]});
  }
  t.print();
  std::printf("\nPaper's qualitative claim (Table VI): Scrubbing and "
              "M-metric lose performance/energy, TLC loses density; "
              "ReadDuo aims for '+' on all four axes.\n");
  return 0;
}
