// Figure 10: normalized dynamic energy, per workload and scheme,
// normalized to Ideal. Paper averages: Scrubbing +17%, M-metric +5%,
// Hybrid +8.7%, LWT-4 +1.33%, Select-4:2 = 77.8% of Ideal. The paper also
// notes sphinx's LWT energy rises sharply from R-M-read conversions —
// check that row.
#include <cstdio>

#include "harness.h"
#include "stats/report.h"

using namespace rd;
using namespace rd::bench;

int main() {
  bench::set_bench_name("fig10");
  std::printf("== Figure 10: normalized dynamic energy (budget %llu "
              "instructions/core)\n\n",
              static_cast<unsigned long long>(instruction_budget()));

  std::vector<std::string> header = {"Workload"};
  {
    readduo::ReadDuoOptions opts;
    for (auto kind : paper_schemes()) {
      header.push_back(readduo::scheme_name(kind, opts));
    }
  }
  // One flat batch over (workload x scheme), executed concurrently.
  std::vector<RunSpec> specs;
  for (const auto& w : trace::spec2006_workloads()) {
    for (auto kind : paper_schemes()) specs.push_back({kind, w});
  }
  const std::vector<RunResult> results = run_schemes(specs);

  std::vector<std::vector<double>> ratios(paper_schemes().size());
  stats::Table t(header);
  std::size_t idx = 0;
  for (const auto& w : trace::spec2006_workloads()) {
    std::vector<std::string> row = {w.name};
    double ideal = 0.0;
    std::size_t i = 0;
    for (auto kind : paper_schemes()) {
      const RunResult& r = results[idx++];
      const double e = r.summary.dynamic_energy_pj;
      if (kind == readduo::SchemeKind::kIdeal) ideal = e;
      const double ratio = e / ideal;
      ratios[i++].push_back(ratio);
      row.push_back(stats::fmt("%.3f", ratio));
    }
    t.add_row(std::move(row));
  }
  std::vector<std::string> avg = {"geomean"};
  for (const auto& rs : ratios) avg.push_back(stats::fmt("%.3f", geomean(rs)));
  t.add_row(std::move(avg));
  t.print();

  // Energy decomposition for the average-defining categories.
  std::printf("\nEnergy decomposition (read / write / scrub shares):\n");
  stats::Table d({"Workload", "Scheme", "read%", "write%", "scrub%"});
  for (const char* name : {"sphinx3", "mcf"}) {
    const auto& w = trace::workload_by_name(name);
    for (auto kind : paper_schemes()) {
      const RunResult r = run_scheme(kind, w);
      const double tot = r.counters.dynamic_energy_pj();
      d.add_row({w.name, r.summary.scheme,
                 stats::fmt("%.1f", 100.0 * r.counters.read_energy_pj / tot),
                 stats::fmt("%.1f", 100.0 * r.counters.write_energy_pj / tot),
                 stats::fmt("%.1f", 100.0 * r.counters.scrub_energy_pj / tot)});
    }
  }
  d.print();

  std::printf("\nPaper averages: Scrubbing 1.17, M-metric 1.05, Hybrid "
              "1.087, LWT-4 1.013, Select-4:2 0.778\n");
  return 0;
}
