// Table IV: LER under M-metric sensing. The paper's point: the M-metric's
// 7x smaller drift coefficient lets (BCH=8) meet the DRAM target with a
// 640 s scrub interval (indeed out to 2^14 s), versus 8 s for R-sensing.
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "drift/error_model.h"
#include "stats/report.h"

using namespace rd;

namespace {

std::string cell(double ler, double target) {
  if (ler < 1e-18) return "too small";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2E%s", ler, ler <= target ? " *" : "");
  return buf;
}

}  // namespace

int main() {
  drift::LerCalculator calc{drift::ErrorModel(drift::m_metric())};
  const unsigned es[] = {0, 1, 7, 8};
  const double times[] = {128, 256, 512, 640, 1024, 2048, 4096, 8192, 16384};

  std::printf("== Table IV: LER vs (E, S), M-metric sensing\n");
  std::printf("   ('*' marks entries meeting the DRAM target)\n\n");
  std::vector<std::string> header = {"S(s)"};
  for (unsigned e : es) header.push_back("E=" + std::to_string(e));
  header.push_back("LER_DRAM");

  // The (E, S) grid is a pure function per cell; evaluate it over the
  // READDUO_THREADS pool, then format serially.
  constexpr std::size_t kE = std::size(es);
  constexpr std::size_t kS = std::size(times);
  std::vector<double> lers(kS * kE);
  parallel_for_shards(lers.size(), [&](std::size_t i) {
    lers[i] = calc.ler(es[i % kE], times[i / kE]);
  });

  stats::Table t(header);
  for (std::size_t si = 0; si < kS; ++si) {
    const double s = times[si];
    const double target = drift::LerCalculator::ler_dram_target(s);
    std::vector<std::string> row = {stats::fmt("%.0f", s)};
    for (std::size_t ei = 0; ei < kE; ++ei) {
      row.push_back(cell(lers[si * kE + ei], target));
    }
    row.push_back(stats::fmt("%.2E", target));
    t.add_row(std::move(row));
  }
  t.print();

  std::printf("\nPivotal checks:\n");
  for (double s : {640.0, 16384.0}) {
    const double target = drift::LerCalculator::ler_dram_target(s);
    std::printf("  LER(E=8, S=%-6.0f) = %.2E  (target %.2E)  %s\n", s,
                calc.ler(8, s), target,
                calc.ler(8, s) <= target ? "MEETS" : "fails");
  }
  return 0;
}
