// Table VII: subarray area occupancy with and without the ReadDuo hybrid
// sense amplifier. The paper (via a revised NVSim) reports a 0.27% total
// area increment for adding the voltage-mode sense path.
#include <cstdio>

#include "pcm/area.h"
#include "stats/report.h"

using namespace rd;

namespace {

void print_breakdown(const char* title, const pcm::SubarrayArea& a) {
  std::printf("\n%s (total %.3e F^2):\n", title, a.total());
  stats::Table t({"Component", "Area (F^2)", "Share"});
  auto row = [&](const char* name, double v) {
    t.add_row({name, stats::fmt("%.3e", v),
               stats::fmt("%.3f%%", 100.0 * v / a.total())});
  };
  row("data array", a.data_array);
  row("row decoder", a.row_decoder);
  row("column mux + precharge", a.column_periphery);
  row("current-mode sense (I-V conv)", a.current_sense);
  row("voltage-mode sense (ReadDuo)", a.voltage_sense);
  t.print();
}

}  // namespace

int main() {
  pcm::AreaParams p;
  std::printf("== Table VII: subarray area model (%zux%zu cells, %zu:1 "
              "column mux, %zu sense amps)\n",
              p.rows, p.cols, p.column_mux_ratio, p.num_sense_amps());
  const pcm::SubarrayArea base = pcm::subarray_area(p, false);
  const pcm::SubarrayArea enhanced = pcm::subarray_area(p, true);
  print_breakdown("Conventional subarray (current-mode only)", base);
  print_breakdown("ReadDuo subarray (hybrid S/A)", enhanced);
  std::printf("\nOverall area increment: %.3f%%  (paper: 0.27%%)\n",
              100.0 * pcm::readduo_area_increase(p));
  return 0;
}
