// Figure 9: normalized execution time, 14 SPEC2006-like workloads x the
// six evaluated schemes, normalized to Ideal (drift-free MLC). Paper
// averages: Scrubbing +21%, M-metric +25%, Hybrid +5.8%, LWT-4 +2.9%,
// Select-4:2 +3.4%.
#include <cstdio>

#include "harness.h"
#include "stats/report.h"

using namespace rd;
using namespace rd::bench;

int main() {
  bench::set_bench_name("fig9");
  std::printf("== Figure 9: normalized execution time (budget %llu "
              "instructions/core)\n",
              static_cast<unsigned long long>(instruction_budget()));
  std::printf("== Table X: workload characterization (RPKI / WPKI per "
              "kilo-instruction, post-LLC)\n\n");

  stats::Table tx({"Workload", "RPKI", "WPKI", "Footprint(MB)",
                   "Zipf", "Archive reads", "Archive age(s)"});
  for (const auto& w : trace::spec2006_workloads()) {
    tx.add_row({w.name, stats::fmt("%.2f", w.rpki), stats::fmt("%.2f", w.wpki),
                stats::fmt("%.0f", static_cast<double>(w.footprint_lines) *
                                       64.0 / 1048576.0),
                stats::fmt("%.2f", w.zipf_s),
                stats::fmt("%.0f%%", 100.0 * w.archive_read_fraction),
                stats::fmt("%.0f", w.archive_age_scale)});
  }
  tx.print();
  std::printf("\n");

  std::vector<std::string> header = {"Workload"};
  std::vector<std::vector<double>> ratios(paper_schemes().size());
  {
    readduo::ReadDuoOptions opts;
    for (auto kind : paper_schemes()) {
      header.push_back(readduo::scheme_name(kind, opts));
    }
  }
  // One flat batch over (workload x scheme), executed concurrently.
  std::vector<RunSpec> specs;
  for (const auto& w : trace::spec2006_workloads()) {
    for (auto kind : paper_schemes()) specs.push_back({kind, w});
  }
  const std::vector<RunResult> results = run_schemes(specs);

  stats::Table t(header);
  std::size_t idx = 0;
  for (const auto& w : trace::spec2006_workloads()) {
    std::vector<std::string> row = {w.name};
    double ideal = 0.0;
    std::size_t i = 0;
    for (auto kind : paper_schemes()) {
      const RunResult& r = results[idx++];
      const double time = static_cast<double>(r.summary.exec_time.v);
      if (kind == readduo::SchemeKind::kIdeal) ideal = time;
      const double ratio = time / ideal;
      ratios[i++].push_back(ratio);
      row.push_back(stats::fmt("%.3f", ratio));
    }
    t.add_row(std::move(row));
  }
  std::vector<std::string> avg = {"geomean"};
  for (const auto& rs : ratios) avg.push_back(stats::fmt("%.3f", geomean(rs)));
  t.add_row(std::move(avg));
  t.print();

  std::printf("\nPaper averages: Scrubbing 1.21, M-metric 1.25, Hybrid "
              "1.058, LWT-4 1.029, Select-4:2 1.034\n");
  return 0;
}
