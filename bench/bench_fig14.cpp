// Figure 14: the R-M-read -> write conversion ablation in LWT-4. Without
// conversion, read-mostly workloads over old data (sphinx3) pay 600 ns
// R-M-reads forever; with it, converted lines regain 150 ns R-reads.
// Paper: +22% for sphinx, +2.9% overall.
#include <cstdio>

#include "harness.h"
#include "stats/report.h"

using namespace rd;
using namespace rd::bench;

int main() {
  bench::set_bench_name("fig14");
  std::printf("== Figure 14: R-M-read conversion in LWT-4 (execution time "
              "normalized to Ideal)\n\n");

  stats::Table t({"Workload", "no conversion", "with conversion",
                  "improvement", "conv writes", "untracked reads"});
  std::vector<double> gain;
  for (const auto& w : trace::spec2006_workloads()) {
    const RunResult ideal = run_scheme(readduo::SchemeKind::kIdeal, w);
    readduo::ReadDuoOptions off;
    off.conversion = false;
    readduo::ReadDuoOptions on;
    on.conversion = true;
    const RunResult roff = run_scheme(readduo::SchemeKind::kLwt, w, off);
    const RunResult ron = run_scheme(readduo::SchemeKind::kLwt, w, on);
    const double toff = static_cast<double>(roff.summary.exec_time.v) /
                        static_cast<double>(ideal.summary.exec_time.v);
    const double ton = static_cast<double>(ron.summary.exec_time.v) /
                       static_cast<double>(ideal.summary.exec_time.v);
    gain.push_back(toff / ton);
    t.add_row({w.name, stats::fmt("%.3f", toff), stats::fmt("%.3f", ton),
               stats::fmt("%+.1f%%", 100.0 * (toff / ton - 1.0)),
               std::to_string(ron.counters.conversion_writes),
               std::to_string(ron.counters.untracked_reads)});
  }
  t.print();
  std::printf("\nAverage improvement from conversion: %+.2f%%  (paper: "
              "+2.9%% overall, +22%% for sphinx)\n",
              100.0 * (geomean(gain) - 1.0));
  return 0;
}
