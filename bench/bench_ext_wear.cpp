// Extension bench: Start-Gap wear leveling under skewed write streams.
//
// The paper reports scheme-level endurance as total cell writes (Figure
// 15) and defers wear leveling to related work [19]. This bench supplies
// that substrate's numbers: how much a rotating gap flattens per-line
// wear for Zipf write skews, and what it costs in extra line writes.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "pcm/wear_level.h"
#include "stats/report.h"

using namespace rd;

int main() {
  const std::uint64_t kLines = 1u << 14;
  const std::uint64_t kWrites = 4'000'000;
  const std::uint64_t kInterval = 100;  // psi: 1% write overhead

  std::printf("== Extension: Start-Gap wear leveling (%llu lines, %llu "
              "writes, gap interval %llu)\n\n",
              static_cast<unsigned long long>(kLines),
              static_cast<unsigned long long>(kWrites),
              static_cast<unsigned long long>(kInterval));

  stats::Table t({"Write skew (zipf s)", "no WL: max/mean wear",
                  "Start-Gap: max/mean wear", "lifetime gain",
                  "gap-move overhead"});
  for (double s : {0.0, 0.5, 0.8, 0.95}) {
    Rng rng(101);
    std::vector<std::uint64_t> raw(kLines, 0);
    std::vector<std::uint64_t> leveled(kLines + 1, 0);
    pcm::StartGap sg(kLines, kInterval);
    std::uint64_t gap_moves = 0;
    for (std::uint64_t i = 0; i < kWrites; ++i) {
      const std::uint64_t logical = rng.zipf(kLines, s);
      ++raw[logical];
      ++leveled[sg.to_physical(logical)];
      gap_moves += sg.on_write() ? 1 : 0;
    }
    const double mean_raw =
        static_cast<double>(kWrites) / static_cast<double>(kLines);
    const double mean_lvl =
        static_cast<double>(kWrites) / static_cast<double>(kLines + 1);
    const double max_raw = static_cast<double>(
        *std::max_element(raw.begin(), raw.end()));
    const double max_lvl = static_cast<double>(
        *std::max_element(leveled.begin(), leveled.end()));
    // PCM lifetime is set by the most-worn line.
    t.add_row({stats::fmt("%.2f", s), stats::fmt("%.1fx", max_raw / mean_raw),
               stats::fmt("%.1fx", max_lvl / mean_lvl),
               stats::fmt("%.1fx", max_raw / max_lvl),
               stats::fmt("%.2f%%", 100.0 * static_cast<double>(gap_moves) /
                                        static_cast<double>(kWrites))});
  }
  t.print();

  std::printf("\nReading: without leveling, lifetime is set by the hottest "
              "line (tens of times the mean under heavy skew); Start-Gap "
              "bounds the hottest physical slot to a small multiple of the "
              "mean for ~1%% extra writes.\n");
  return 0;
}
