// Shared harness for the per-figure/table bench binaries.
//
// Each bench binary regenerates one table or figure of the paper. The
// expensive full-system sweeps (Figures 9, 10, 11, 15 share the same runs)
// are memoized to an on-disk cache under bench_cache/, keyed by the full
// run configuration. Set READDUO_CACHE=0 to disable, READDUO_INSTR=<n>
// to change the per-core instruction budget (default 6,000,000). A
// READDUO_FAULTS plan that perturbs the simulation disables the cache for
// the whole process: perturbed results are never stored, and stale clean
// entries are never served in their place.
//
// Independent (scheme x workload) simulations are embarrassingly parallel
// — every Simulator owns its whole state — so sweep binaries batch their
// runs through run_schemes(), which fans the batch out over the
// READDUO_THREADS pool (see common/parallel.h). Cache files are written
// via tmp-file + rename, so concurrent runs (threads or whole processes)
// never observe a torn cache entry.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "memsim/simulator.h"
#include "readduo/schemes.h"
#include "stats/counters.h"
#include "stats/edap.h"
#include "trace/workload.h"

namespace rd::bench {

/// Everything a figure needs from one (workload, scheme) run.
struct RunResult {
  stats::RunSummary summary;
  stats::Counters counters;
  memsim::SimResult sim;
};

/// Per-core instruction budget: READDUO_INSTR or the 6M default. A set but
/// malformed READDUO_INSTR (e.g. "6e6") throws instead of silently running
/// the default budget.
std::uint64_t instruction_budget();

/// Name the running bench binary ("fig9", "table3", ...). Used to label
/// the READDUO_METRICS export; optional (default "bench").
void set_bench_name(const std::string& name);

namespace detail {

/// On-disk cache entry schema. Bump whenever RunResult (or anything it
/// embeds) gains, loses, or reorders a serialized field; load_cached
/// treats every other version as a miss instead of misparsing old bytes
/// into new fields.
inline constexpr int kCacheSchemaVersion = 3;

/// Serialize one cache entry (schema tag + every RunResult field +
/// metrics).
void write_cache_entry(std::ostream& out, const RunResult& r);

/// Strict inverse of write_cache_entry: false on wrong schema tag, short
/// read, malformed or non-finite fields, or trailing tokens. The caller
/// (load_cached) treats any failure behind a valid schema tag as a
/// corrupt entry: warn, count it, and recompute — never abort, never
/// trust partial bytes.
bool parse_cache_entry(std::istream& in, RunResult& out);

/// Render one run record exactly as it appears in the READDUO_METRICS
/// "runs" array. Exposed for the golden tests, which render in-process
/// and compare field-by-field against a committed file.
std::string render_run_json(const std::string& workload, std::uint64_t seed,
                            bool cached, double wall_ms, const RunResult& r);

/// Render the full READDUO_METRICS document from the harness state
/// accumulated so far (runs recorded only while READDUO_METRICS is set).
/// Exposed for the golden tests.
std::string render_metrics_json();

}  // namespace detail

/// Run `kind` on `workload` (cached unless READDUO_CACHE=0).
RunResult run_scheme(readduo::SchemeKind kind, const trace::Workload& w,
                     const readduo::ReadDuoOptions& opts = {},
                     std::uint64_t seed = 42);

/// One (scheme, workload) run request for the batch API.
struct RunSpec {
  readduo::SchemeKind kind;
  trace::Workload workload;
  readduo::ReadDuoOptions opts = {};
  std::uint64_t seed = 42;
};

/// Execute every spec — concurrently over the READDUO_THREADS pool, since
/// each simulation is independent — and return the results in spec order.
/// Each run hits the same on-disk cache as run_scheme(), so a batch mixes
/// cached and fresh runs freely; results are identical to calling
/// run_scheme() serially for each spec.
std::vector<RunResult> run_schemes(const std::vector<RunSpec>& specs);

/// The paper's six evaluated schemes, in Figure 9 order.
const std::vector<readduo::SchemeKind>& paper_schemes();

/// Geometric mean of a vector of ratios (the "average" of Figures 9-15;
/// robust to the ratio scale).
double geomean(const std::vector<double>& xs);

}  // namespace rd::bench
