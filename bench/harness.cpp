#include "harness.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string_view>
#include <system_error>

#include <unistd.h>

#include "common/env.h"
#include "common/parallel.h"
#include "common/thread_annotations.h"
#include "config/apply.h"
#include "config/loader.h"
#include "faults/injector.h"
#include "memsim/env.h"
#include "stats/json.h"

namespace rd::bench {

std::uint64_t instruction_budget() {
  if (const char* e = env_cstr("READDUO_INSTR")) {
    const std::uint64_t v = parse_env_u64("READDUO_INSTR", e);
    RD_CHECK_MSG(v > 0, "READDUO_INSTR must be a positive instruction "
                        "count, got '" << e << "'");
    return v;
  }
  return 6'000'000;
}

namespace {

bool cache_enabled() {
  const char* e = env_cstr("READDUO_CACHE");
  if (e != nullptr && std::string(e) == "0") return false;
  // A fault plan that perturbs the simulation poisons memoization both
  // ways: perturbed results must not be stored as clean, and stale clean
  // entries must not stand in for perturbed runs. Disable the cache for
  // the whole process. Harness-only classes (cache/trace) keep it on —
  // the cache-corruption injector specifically needs a live cache.
  const faults::FaultEngine* fe = faults::engine();
  return fe == nullptr || !fe->plan().affects_simulation();
}

/// READDUO_METRICS destination: nullptr = disabled, "1" = stdout,
/// anything else = file (or directory) path.
const char* metrics_dest() {
  const char* e = env_cstr("READDUO_METRICS");
  if (e == nullptr || *e == '\0' || std::string_view(e) == "0") {
    return nullptr;
  }
  return e;
}

std::string cache_key(readduo::SchemeKind kind, const trace::Workload& w,
                      const readduo::ReadDuoOptions& opts,
                      std::uint64_t budget, std::uint64_t seed) {
  std::ostringstream os;
  // Full round-trip precision: the default 6 significant digits would
  // collide configs that differ only in a fine-grained float knob.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << scheme_name(kind, opts) << "_" << w.name << "_b" << budget << "_s"
     << seed << "_k" << opts.k << "_sw" << opts.select_s << "_c"
     << (opts.conversion ? 1 : 0) << "_f" << opts.changed_cell_fraction
     << "_t" << opts.controller.initial_t << "_wr" << w.rpki << "-"
     << w.wpki << "-" << w.footprint_lines << "-"
     << w.archive_read_fraction << "-" << w.archive_lines << "-"
     << (w.archive_scan ? 1 : 0)
     // Device zoo: runs under different device configs must never share
     // cache entries. The builtin device and its externalized twin
     // (configs/pcm_readduo_t1.cfg) carry the same name on purpose —
     // they are bit-identical by the default-equivalence guarantee.
     << "_dev" << config::active_device().name;
  std::string key = os.str();
  for (char& c : key) {
    if (c == ':' || c == '/' || c == ' ') c = '-';
  }
  return key;
}

std::filesystem::path cache_path(const std::string& key) {
  return std::filesystem::path("bench_cache") / (key + ".txt");
}

void store_cached(const std::string& key, const RunResult& r) {
  std::filesystem::create_directories("bench_cache");
  // Write-to-tmp + atomic rename: concurrent writers (pool threads of one
  // batch, or separate bench processes sharing bench_cache/) either leave
  // the old entry or publish a complete new one — never a torn file. The
  // tmp name is unique per (process, write) so writers cannot clobber each
  // other mid-write; duplicate writers of one key store identical bytes
  // anyway (runs are deterministic), so last-rename-wins is benign.
  static std::atomic<std::uint64_t> write_id{0};
  const std::filesystem::path final_path = cache_path(key);
  std::filesystem::path tmp_path = final_path;
  tmp_path += ".tmp." + std::to_string(::getpid()) + "." +
              std::to_string(write_id.fetch_add(1, std::memory_order_relaxed));
  std::ofstream out(tmp_path);
  detail::write_cache_entry(out, r);
  out.close();
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) std::filesystem::remove(tmp_path, ec);
}

// ------------------------------------------------- metrics registry ---

/// One executed (or cache-served) run, retained for the metrics export.
struct RunRecord {
  std::string workload;
  std::uint64_t seed = 0;
  bool cached = false;
  double wall_ms = 0.0;
  RunResult result;
};

/// Process-wide harness self-metrics + per-run records. The run registry
/// and export path are mu's to guard; the counters are relaxed atomics
/// (monotonic tallies, no ordering needed).
struct Harness {
  Mutex mu;
  /// Populated only when metrics_dest().
  std::vector<RunRecord> runs RD_GUARDED_BY(mu);
  std::string bench_name RD_GUARDED_BY(mu) = "bench";
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  /// Entries that carried a current schema tag but failed to parse —
  /// damaged on disk (or by the cache-corruption injector). Each one is
  /// recomputed, never trusted or fatal.
  std::atomic<std::uint64_t> cache_corrupt{0};
  std::atomic<std::uint64_t> wall_us{0};      ///< summed across runs
  std::atomic<std::uint64_t> max_run_us{0};
};

Harness& harness() {
  static Harness h;
  return h;
}

bool load_cached(const std::string& key, RunResult& out) {
  std::ifstream in(cache_path(key));
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string bytes = buf.str();
  if (const faults::FaultEngine* fe = faults::engine()) {
    fe->corrupt_cache_entry(key, bytes);
  }
  std::istringstream entry(bytes);
  if (detail::parse_cache_entry(entry, out)) return true;
  // A stale or foreign schema tag is an ordinary miss (old entries age
  // out silently). Damage *behind* a current tag is a corrupt entry:
  // report it, count it, and fall through to recompute.
  std::istringstream tagged(bytes);
  std::string tag;
  if ((tagged >> tag) &&
      tag == "v" + std::to_string(detail::kCacheSchemaVersion)) {
    harness().cache_corrupt.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr,
                 "readduo: warning: corrupt bench_cache entry '%s' — "
                 "recomputing\n",
                 key.c_str());
  }
  return false;
}

/// Strip the trailing newline JsonWriter::str() emits, so nested raw
/// values compose without blank lines before commas.
std::string chomp(std::string s) {
  while (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}

std::string hist_json(const stats::LatencyHistogram& h) {
  stats::JsonWriter jw;
  jw.add("count", h.count())
      .add("mean_ns", h.mean())
      .add("p50_ns", h.p50())
      .add("p95_ns", h.p95())
      .add("p99_ns", h.p99())
      .add("max_ns", h.max());
  return chomp(jw.str());
}

template <typename T, typename Fn>
std::string json_array(const std::vector<T>& xs, Fn&& render) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) os << ", ";
    os << render(xs[i]);
  }
  os << "]";
  return os.str();
}

/// atexit hook: print the harness self-metrics line (always) and write the
/// JSON metrics export (when READDUO_METRICS is set).
void emit_metrics() {
  Harness& h = harness();
  const std::uint64_t hits = h.cache_hits.load(std::memory_order_relaxed);
  const std::uint64_t misses = h.cache_misses.load(std::memory_order_relaxed);
  std::printf("== harness: runs=%llu cache_hits=%llu cache_misses=%llu "
              "threads=%u sim_wall_ms=%llu max_run_ms=%llu\n",
              static_cast<unsigned long long>(hits + misses),
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses),
              parallel_thread_count(),
              static_cast<unsigned long long>(
                  h.wall_us.load(std::memory_order_relaxed) / 1000),
              static_cast<unsigned long long>(
                  h.max_run_us.load(std::memory_order_relaxed) / 1000));

  const char* dest = metrics_dest();
  if (dest == nullptr) return;

  const std::string body = detail::render_metrics_json();

  MutexLock g(h.mu);
  if (std::string_view(dest) == "1") {
    std::fputs(body.c_str(), stdout);
    return;
  }
  std::filesystem::path path(dest);
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    path /= h.bench_name + "_metrics.json";
  }
  std::ofstream out(path);
  out << body;
}

void ensure_exit_hook() {
  static std::once_flag once;
  std::call_once(once, [] { std::atexit(emit_metrics); });
}

RunResult run_fresh(readduo::SchemeKind kind, const trace::Workload& w,
                    const readduo::ReadDuoOptions& opts, std::uint64_t seed,
                    std::uint64_t budget) {
  RunResult result;
  memsim::SimConfig cfg;
  config::apply_device(config::active_device(), cfg);
  cfg.instructions_per_core = budget;
  cfg.seed = seed;
  cfg.trace_events = stats::trace_ring_capacity_from_env();
  readduo::SchemeEnv env = memsim::make_scheme_env(w, cfg.cpu, seed);
  auto scheme = readduo::make_scheme(kind, env, opts);
  memsim::Simulator sim(cfg, *scheme, w);
  result.sim = sim.run();
  result.counters = scheme->counters();
  result.summary.scheme = scheme->name();
  result.summary.exec_time = result.sim.exec_time;
  result.summary.dynamic_energy_pj = result.counters.dynamic_energy_pj();
  result.summary.static_watts = env.energy.static_watts;
  result.summary.cells_per_line = scheme->cells_per_line();
  result.summary.cell_writes =
      static_cast<double>(result.counters.cell_writes);
  return result;
}

/// The single run path behind both public entry points. Fills `rec` (when
/// the metrics export is on) but does NOT register it — the caller owns
/// registration order, so batch exports list runs in spec order no matter
/// how the pool interleaved them.
RunResult run_one(readduo::SchemeKind kind, const trace::Workload& w,
                  const readduo::ReadDuoOptions& opts, std::uint64_t seed,
                  RunRecord* rec) {
  ensure_exit_hook();
  const std::uint64_t budget = instruction_budget();
  const std::string key = cache_key(kind, w, opts, budget, seed);
  const auto t0 = std::chrono::steady_clock::now();
  RunResult result;
  bool cached = true;
  if (!(cache_enabled() && load_cached(key, result))) {
    cached = false;
    result = run_fresh(kind, w, opts, seed, budget);
    if (cache_enabled()) store_cached(key, result);
  }
  const auto us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());

  Harness& h = harness();
  (cached ? h.cache_hits : h.cache_misses)
      .fetch_add(1, std::memory_order_relaxed);
  h.wall_us.fetch_add(us, std::memory_order_relaxed);
  std::uint64_t prev = h.max_run_us.load(std::memory_order_relaxed);
  while (us > prev && !h.max_run_us.compare_exchange_weak(
                          prev, us, std::memory_order_relaxed)) {
  }

  if (rec != nullptr && metrics_dest() != nullptr) {
    rec->workload = w.name;
    rec->seed = seed;
    rec->cached = cached;
    rec->wall_ms = static_cast<double>(us) / 1000.0;
    rec->result = result;
  }
  return result;
}

}  // namespace

namespace detail {

void write_cache_entry(std::ostream& out, const RunResult& r) {
  // Round-trip doubles exactly, so a cache hit reproduces the fresh run.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  const auto& c = r.counters;
  const auto& s = r.sim;
  out << "v" << kCacheSchemaVersion << "\n";
  out << r.summary.scheme << " " << r.summary.exec_time.v << " "
      << r.summary.dynamic_energy_pj << " " << r.summary.static_watts << " "
      << r.summary.cells_per_line << " " << r.summary.cell_writes << " "
      << c.r_reads << " " << c.m_reads << " " << c.rm_reads << " "
      << c.untracked_reads << " " << c.converted_reads << " "
      << c.demand_full_writes << " " << c.demand_diff_writes << " "
      << c.conversion_writes << " " << c.scrub_senses << " "
      << c.scrub_rewrites << " " << c.detected_uncorrectable << " "
      << c.silent_corruptions << " " << c.cell_writes << " "
      << c.read_energy_pj << " " << c.write_energy_pj << " "
      << c.scrub_energy_pj << " " << s.reads_serviced << " "
      << s.writes_serviced << " " << s.scrubs_serviced << " "
      << s.write_cancellations << " " << s.read_latency_sum_ns << " "
      << s.bank_busy_ns << " " << s.scrub_backlog_end << " "
      << s.instructions << " " << s.scrub_rewrites_dropped << " "
      << s.row_hits << "\n";
  // Metrics: histograms stored sparsely (only occupied buckets).
  const stats::SimMetrics& m = s.metrics;
  out << "M " << stats::kNumReqClasses << " "
      << stats::LatencyHistogram::kNumBuckets << "\n";
  for (const stats::LatencyHistogram& h : m.latency) {
    std::size_t nnz = 0;
    for (std::uint64_t b : h.buckets()) nnz += b != 0;
    out << h.sum() << " " << h.max() << " " << nnz;
    for (std::size_t i = 0; i < stats::LatencyHistogram::kNumBuckets; ++i) {
      if (h.buckets()[i] != 0) out << " " << i << " " << h.buckets()[i];
    }
    out << "\n";
  }
  out << "B " << m.banks.size() << "\n";
  for (const stats::BankGauge& g : m.banks) {
    out << g.busy_ns << " " << g.depth_samples << " " << g.depth_sum << " "
        << g.depth_max << "\n";
  }
}

bool parse_cache_entry(std::istream& in, RunResult& out) {
  std::string tag;
  if (!(in >> tag) || tag != "v" + std::to_string(kCacheSchemaVersion)) {
    return false;  // unknown / stale schema: treat as a miss
  }
  std::string name;
  std::int64_t exec = 0;
  auto& c = out.counters;
  auto& s = out.sim;
  in >> name >> exec >> out.summary.dynamic_energy_pj >>
      out.summary.static_watts >> out.summary.cells_per_line >>
      out.summary.cell_writes >> c.r_reads >> c.m_reads >> c.rm_reads >>
      c.untracked_reads >> c.converted_reads >> c.demand_full_writes >>
      c.demand_diff_writes >> c.conversion_writes >> c.scrub_senses >>
      c.scrub_rewrites >> c.detected_uncorrectable >> c.silent_corruptions >>
      c.cell_writes >> c.read_energy_pj >> c.write_energy_pj >>
      c.scrub_energy_pj >> s.reads_serviced >> s.writes_serviced >>
      s.scrubs_serviced >> s.write_cancellations >> s.read_latency_sum_ns >>
      s.bank_busy_ns >> s.scrub_backlog_end >> s.instructions >>
      s.scrub_rewrites_dropped >> s.row_hits;
  if (!in) return false;
  // Damaged numeric fields can still parse lexically (a garbled exponent
  // reads as inf, a '?' in the mantissa splits into two tokens that land
  // in the wrong fields). Reject non-finite floats so a corrupt entry is
  // recomputed instead of silently trusted.
  for (double v : {out.summary.dynamic_energy_pj, out.summary.static_watts,
                   out.summary.cell_writes, c.read_energy_pj,
                   c.write_energy_pj, c.scrub_energy_pj}) {
    if (!std::isfinite(v)) return false;
  }

  std::string mtag;
  std::size_t nclasses = 0, nbuckets = 0;
  if (!(in >> mtag >> nclasses >> nbuckets) || mtag != "M" ||
      nclasses != stats::kNumReqClasses ||
      nbuckets != stats::LatencyHistogram::kNumBuckets) {
    return false;
  }
  for (stats::LatencyHistogram& h : s.metrics.latency) {
    std::int64_t sum = 0, max = 0;
    std::size_t nnz = 0;
    if (!(in >> sum >> max >> nnz) || nnz > nbuckets) return false;
    std::array<std::uint64_t, stats::LatencyHistogram::kNumBuckets>
        buckets{};
    for (std::size_t k = 0; k < nnz; ++k) {
      std::size_t idx = 0;
      std::uint64_t count = 0;
      if (!(in >> idx >> count) || idx >= nbuckets) return false;
      buckets[idx] = count;
    }
    h.restore(buckets, sum, max);
  }
  std::string btag;
  std::size_t nbanks = 0;
  if (!(in >> btag >> nbanks) || btag != "B" || nbanks > 4096) return false;
  s.metrics.banks.assign(nbanks, {});
  for (stats::BankGauge& g : s.metrics.banks) {
    if (!(in >> g.busy_ns >> g.depth_samples >> g.depth_sum >>
          g.depth_max)) {
      return false;
    }
  }
  // Schema discipline: a well-formed entry ends exactly here. Leftover
  // tokens mean the writer and reader disagree about the layout.
  std::string extra;
  if (in >> extra) return false;

  out.summary.scheme = name;
  out.summary.exec_time = Ns{exec};
  out.sim.exec_time = Ns{exec};
  return true;
}

std::string render_run_json(const std::string& workload, std::uint64_t seed,
                            bool cached, double wall_ms, const RunResult& r) {
  const stats::SimMetrics& m = r.sim.metrics;
  stats::JsonWriter jw;
  jw.add("scheme", r.summary.scheme)
      .add("workload", workload)
      .add("seed", seed)
      .add("cached", std::uint64_t{cached ? 1u : 0u})
      .add("wall_ms", wall_ms)
      .add("exec_time_ns", static_cast<std::uint64_t>(r.sim.exec_time.v))
      .add("instructions", r.sim.instructions)
      .add("reads", r.sim.reads_serviced)
      .add("writes", r.sim.writes_serviced)
      .add("avg_read_latency_ns", r.sim.avg_read_latency_ns())
      .add("detected_uncorrectable", r.counters.detected_uncorrectable)
      .add("silent_corruptions", r.counters.silent_corruptions)
      .add("injected_faults", r.counters.injected_faults);
  const stats::LatencyHistogram all_reads = m.demand_reads();
  jw.add("read_p50_ns", all_reads.p50())
      .add("read_p95_ns", all_reads.p95())
      .add("read_p99_ns", all_reads.p99())
      .add("read_max_ns", all_reads.max());
  stats::JsonWriter classes;
  for (std::size_t c = 0; c < stats::kNumReqClasses; ++c) {
    classes.add_raw(stats::req_class_name(static_cast<stats::ReqClass>(c)),
                    hist_json(m.latency[c]));
  }
  jw.add_raw("latency", chomp(classes.str()));
  const double exec =
      r.sim.exec_time.v > 0 ? static_cast<double>(r.sim.exec_time.v) : 1.0;
  jw.add_raw("bank_utilization",
             json_array(m.banks, [&](const stats::BankGauge& g) {
               std::ostringstream os;
               os << static_cast<double>(g.busy_ns) / exec;
               return os.str();
             }));
  jw.add_raw("bank_avg_queue_depth",
             json_array(m.banks, [](const stats::BankGauge& g) {
               std::ostringstream os;
               os << g.avg_depth();
               return os.str();
             }));
  jw.add_raw("bank_max_queue_depth",
             json_array(m.banks, [](const stats::BankGauge& g) {
               return std::to_string(g.depth_max);
             }));
  return chomp(jw.str());
}

std::string render_metrics_json() {
  Harness& h = harness();
  MutexLock g(h.mu);
  stats::JsonWriter doc;
  doc.add("bench", h.bench_name)
      .add("device", config::active_device().name)
      .add("schema_version",
           static_cast<std::uint64_t>(detail::kCacheSchemaVersion))
      .add("threads", std::uint64_t{parallel_thread_count()})
      .add("cache_hits", h.cache_hits.load(std::memory_order_relaxed))
      .add("cache_misses", h.cache_misses.load(std::memory_order_relaxed))
      .add("cache_corrupt", h.cache_corrupt.load(std::memory_order_relaxed))
      .add("sim_wall_ms",
           static_cast<std::uint64_t>(
               h.wall_us.load(std::memory_order_relaxed) / 1000))
      .add("max_run_ms",
           static_cast<std::uint64_t>(
               h.max_run_us.load(std::memory_order_relaxed) / 1000));
  // Fault-injection provenance: a metrics document produced under
  // READDUO_FAULTS says so, carrying the canonical plan and the per-class
  // injection counts. Absent entirely when faults are off, so clean
  // documents are byte-compatible with the pre-fault schema.
  if (const faults::FaultEngine* fe = faults::engine()) {
    stats::JsonWriter counts;
    for (unsigned c = 0; c < faults::kNumFaultClasses; ++c) {
      counts.add(faults::fault_class_name(static_cast<faults::FaultClass>(c)),
                 fe->count(static_cast<faults::FaultClass>(c)));
    }
    stats::JsonWriter fj;
    fj.add("plan", fe->plan().canonical());
    fj.add_raw("injected", chomp(counts.str()));
    doc.add_raw("faults", chomp(fj.str()));
  }
  std::string runs = "[\n";
  for (std::size_t i = 0; i < h.runs.size(); ++i) {
    const RunRecord& rec = h.runs[i];
    runs += render_run_json(rec.workload, rec.seed, rec.cached, rec.wall_ms,
                            rec.result);
    if (i + 1 < h.runs.size()) runs += ',';
    runs += '\n';
  }
  runs += "]";
  doc.add_raw("runs", runs);
  return doc.str();
}

}  // namespace detail

void set_bench_name(const std::string& name) {
  Harness& h = harness();
  MutexLock g(h.mu);
  h.bench_name = name;
}

RunResult run_scheme(readduo::SchemeKind kind, const trace::Workload& w,
                     const readduo::ReadDuoOptions& opts,
                     std::uint64_t seed) {
  RunRecord rec;
  RunResult result = run_one(kind, w, opts, seed, &rec);
  if (metrics_dest() != nullptr) {
    Harness& h = harness();
    MutexLock g(h.mu);
    h.runs.push_back(std::move(rec));
  }
  return result;
}

std::vector<RunResult> run_schemes(const std::vector<RunSpec>& specs) {
  std::vector<RunResult> results(specs.size());
  std::vector<RunRecord> recs(specs.size());
  parallel_for_shards(specs.size(), [&](std::size_t i) {
    const RunSpec& s = specs[i];
    results[i] = run_one(s.kind, s.workload, s.opts, s.seed, &recs[i]);
  });
  // Register in spec order so the export is deterministic regardless of
  // how the pool interleaved the runs.
  if (metrics_dest() != nullptr) {
    Harness& h = harness();
    MutexLock g(h.mu);
    for (RunRecord& rec : recs) h.runs.push_back(std::move(rec));
  }
  return results;
}

const std::vector<readduo::SchemeKind>& paper_schemes() {
  static const std::vector<readduo::SchemeKind> kSchemes = {
      readduo::SchemeKind::kIdeal,   readduo::SchemeKind::kScrubbing,
      readduo::SchemeKind::kMMetric, readduo::SchemeKind::kHybrid,
      readduo::SchemeKind::kLwt,     readduo::SchemeKind::kSelect,
  };
  return kSchemes;
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace rd::bench
