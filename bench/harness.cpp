#include "harness.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iomanip>
#include <limits>
#include <sstream>
#include <system_error>

#include <unistd.h>

#include "common/parallel.h"
#include "memsim/env.h"

namespace rd::bench {

std::uint64_t instruction_budget() {
  if (const char* e = std::getenv("READDUO_INSTR")) {
    const std::uint64_t v = std::strtoull(e, nullptr, 10);
    if (v > 0) return v;
  }
  return 6'000'000;
}

namespace {

bool cache_enabled() {
  const char* e = std::getenv("READDUO_CACHE");
  return e == nullptr || std::string(e) != "0";
}

std::string cache_key(readduo::SchemeKind kind, const trace::Workload& w,
                      const readduo::ReadDuoOptions& opts,
                      std::uint64_t budget, std::uint64_t seed) {
  std::ostringstream os;
  // Full round-trip precision: the default 6 significant digits would
  // collide configs that differ only in a fine-grained float knob.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << scheme_name(kind, opts) << "_" << w.name << "_b" << budget << "_s"
     << seed << "_k" << opts.k << "_sw" << opts.select_s << "_c"
     << (opts.conversion ? 1 : 0) << "_f" << opts.changed_cell_fraction
     << "_t" << opts.controller.initial_t << "_wr" << w.rpki << "-"
     << w.wpki << "-" << w.footprint_lines << "-"
     << w.archive_read_fraction << "-" << w.archive_lines << "-"
     << (w.archive_scan ? 1 : 0);
  std::string key = os.str();
  for (char& c : key) {
    if (c == ':' || c == '/' || c == ' ') c = '-';
  }
  return key;
}

std::filesystem::path cache_path(const std::string& key) {
  return std::filesystem::path("bench_cache") / (key + ".txt");
}

bool load_cached(const std::string& key, RunResult& out) {
  std::ifstream in(cache_path(key));
  if (!in) return false;
  std::string name;
  std::int64_t exec = 0;
  auto& c = out.counters;
  auto& s = out.sim;
  in >> name >> exec >> out.summary.dynamic_energy_pj >>
      out.summary.static_watts >> out.summary.cells_per_line >>
      out.summary.cell_writes >> c.r_reads >> c.m_reads >> c.rm_reads >>
      c.untracked_reads >> c.converted_reads >> c.demand_full_writes >>
      c.demand_diff_writes >> c.conversion_writes >> c.scrub_senses >>
      c.scrub_rewrites >> c.detected_uncorrectable >> c.silent_corruptions >>
      c.cell_writes >> c.read_energy_pj >> c.write_energy_pj >>
      c.scrub_energy_pj >> s.reads_serviced >> s.writes_serviced >>
      s.scrubs_serviced >> s.write_cancellations >> s.read_latency_sum_ns >>
      s.bank_busy_ns >> s.scrub_backlog_end >> s.instructions;
  if (!in) return false;
  out.summary.scheme = name;
  out.summary.exec_time = Ns{exec};
  out.sim.exec_time = Ns{exec};
  return true;
}

void store_cached(const std::string& key, const RunResult& r) {
  std::filesystem::create_directories("bench_cache");
  // Write-to-tmp + atomic rename: concurrent writers (pool threads of one
  // batch, or separate bench processes sharing bench_cache/) either leave
  // the old entry or publish a complete new one — never a torn file. The
  // tmp name is unique per (process, write) so writers cannot clobber each
  // other mid-write; duplicate writers of one key store identical bytes
  // anyway (runs are deterministic), so last-rename-wins is benign.
  static std::atomic<std::uint64_t> write_id{0};
  const std::filesystem::path final_path = cache_path(key);
  std::filesystem::path tmp_path = final_path;
  tmp_path += ".tmp." + std::to_string(::getpid()) + "." +
              std::to_string(write_id.fetch_add(1));
  std::ofstream out(tmp_path);
  // Round-trip doubles exactly, so a cache hit reproduces the fresh run.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  const auto& c = r.counters;
  const auto& s = r.sim;
  out << r.summary.scheme << " " << r.summary.exec_time.v << " "
      << r.summary.dynamic_energy_pj << " " << r.summary.static_watts << " "
      << r.summary.cells_per_line << " " << r.summary.cell_writes << " "
      << c.r_reads << " " << c.m_reads << " " << c.rm_reads << " "
      << c.untracked_reads << " " << c.converted_reads << " "
      << c.demand_full_writes << " " << c.demand_diff_writes << " "
      << c.conversion_writes << " " << c.scrub_senses << " "
      << c.scrub_rewrites << " " << c.detected_uncorrectable << " "
      << c.silent_corruptions << " " << c.cell_writes << " "
      << c.read_energy_pj << " " << c.write_energy_pj << " "
      << c.scrub_energy_pj << " " << s.reads_serviced << " "
      << s.writes_serviced << " " << s.scrubs_serviced << " "
      << s.write_cancellations << " " << s.read_latency_sum_ns << " "
      << s.bank_busy_ns << " " << s.scrub_backlog_end << " "
      << s.instructions << "\n";
  out.close();
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) std::filesystem::remove(tmp_path, ec);
}

}  // namespace

RunResult run_scheme(readduo::SchemeKind kind, const trace::Workload& w,
                     const readduo::ReadDuoOptions& opts,
                     std::uint64_t seed) {
  const std::uint64_t budget = instruction_budget();
  const std::string key = cache_key(kind, w, opts, budget, seed);
  RunResult result;
  if (cache_enabled() && load_cached(key, result)) return result;

  memsim::SimConfig cfg;
  cfg.instructions_per_core = budget;
  cfg.seed = seed;
  readduo::SchemeEnv env = memsim::make_scheme_env(w, cfg.cpu, seed);
  auto scheme = readduo::make_scheme(kind, env, opts);
  memsim::Simulator sim(cfg, *scheme, w);
  result.sim = sim.run();
  result.counters = scheme->counters();
  result.summary.scheme = scheme->name();
  result.summary.exec_time = result.sim.exec_time;
  result.summary.dynamic_energy_pj = result.counters.dynamic_energy_pj();
  result.summary.static_watts = env.energy.static_watts;
  result.summary.cells_per_line = scheme->cells_per_line();
  result.summary.cell_writes =
      static_cast<double>(result.counters.cell_writes);
  if (cache_enabled()) store_cached(key, result);
  return result;
}

std::vector<RunResult> run_schemes(const std::vector<RunSpec>& specs) {
  std::vector<RunResult> results(specs.size());
  parallel_for_shards(specs.size(), [&](std::size_t i) {
    const RunSpec& s = specs[i];
    results[i] = run_scheme(s.kind, s.workload, s.opts, s.seed);
  });
  return results;
}

const std::vector<readduo::SchemeKind>& paper_schemes() {
  static const std::vector<readduo::SchemeKind> kSchemes = {
      readduo::SchemeKind::kIdeal,   readduo::SchemeKind::kScrubbing,
      readduo::SchemeKind::kMMetric, readduo::SchemeKind::kHybrid,
      readduo::SchemeKind::kLwt,     readduo::SchemeKind::kSelect,
  };
  return kSchemes;
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace rd::bench
