// Table V: can a scheme skip rewriting clean lines (W=1)? Conditions (ii)
// and (iii) of the efficient-scrubbing definition: the probability that a
// line looks clean at one scrub yet accumulates more than E-W errors in
// the next interval must stay under the DRAM target. The paper's
// conclusion: R(BCH=8, S=8) fails with W=1 (hence W=0 or BCH-10);
// M(BCH=8, S=640) is safe with W=1 — which is exactly what ReadDuo-LWT
// exploits.
#include <cmath>
#include <cstdio>
#include <iterator>
#include <vector>

#include "common/math.h"
#include "common/parallel.h"
#include "drift/error_model.h"
#include "stats/report.h"

using namespace rd;

namespace {

std::string cell(double log_p, double target) {
  if (log_p <= kNegInf || std::exp(log_p) < 1e-18) return "too small";
  const double p = std::exp(log_p);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2E%s", p, p <= target ? " *" : "");
  return buf;
}

}  // namespace

int main() {
  drift::LerCalculator r{drift::ErrorModel(drift::r_metric())};
  drift::LerCalculator m{drift::ErrorModel(drift::m_metric())};

  struct Config {
    const char* name;
    drift::LerCalculator* calc;
    unsigned e;
    double s;
  };
  Config configs[] = {
      {"R(BCH=8,  S=8)", &r, 8, 8.0},
      {"R(BCH=10, S=8)", &r, 10, 8.0},
      {"M(BCH=8,  S=640)", &m, 8, 640.0},
  };

  std::printf("== Table V: W=1 feasibility — conditions (ii) and (iii)\n");
  std::printf("   ('*' marks probabilities meeting the DRAM target)\n\n");

  // Every (config, method) cell pair is independent; evaluate the whole
  // 2x3x2 grid over the READDUO_THREADS pool, then format serially.
  constexpr std::size_t kConfigs = std::size(configs);
  std::vector<double> probs(2 * kConfigs * 2);
  parallel_for_shards(probs.size(), [&](std::size_t i) {
    const bool exact = i >= kConfigs * 2;
    const Config& c = configs[(i / 2) % kConfigs];
    const bool third = (i % 2) != 0;
    if (exact) {
      probs[i] = third ? c.calc->log_prob_third_interval(c.e, 1, c.s)
                       : c.calc->log_prob_second_interval(c.e, 1, c.s);
    } else {
      probs[i] = third ? c.calc->log_prob_third_interval_indep(c.e, 1, c.s)
                       : c.calc->log_prob_second_interval_indep(c.e, 1, c.s);
    }
  });

  std::printf("Paper's method (independence approximation, Section III-A):\n");
  stats::Table t({"Config", "P(ii)", "P(iii)", "LER_DRAM", "W=1 verdict"});
  for (std::size_t ci = 0; ci < kConfigs; ++ci) {
    const Config& c = configs[ci];
    const double target = drift::LerCalculator::ler_dram_target(c.s);
    const double p2 = probs[ci * 2];
    const double p3 = probs[ci * 2 + 1];
    const bool ok = std::exp(p2) <= target && std::exp(p3) <= target;
    t.add_row({c.name, cell(p2, target), cell(p3, target),
               stats::fmt("%.2E", target), ok ? "SAFE" : "UNSAFE"});
  }
  t.print();

  std::printf("\nExact interval-increment computation (drift is monotone, "
              "so a line clean at S can only\naccumulate p(2S)-p(S) error "
              "mass in the second interval):\n");
  stats::Table x({"Config", "P(ii)", "P(iii)", "LER_DRAM", "W=1 verdict"});
  for (std::size_t ci = 0; ci < kConfigs; ++ci) {
    const Config& c = configs[ci];
    const double target = drift::LerCalculator::ler_dram_target(c.s);
    const double p2 = probs[kConfigs * 2 + ci * 2];
    const double p3 = probs[kConfigs * 2 + ci * 2 + 1];
    const bool ok = std::exp(p2) <= target && std::exp(p3) <= target;
    x.add_row({c.name, cell(p2, target), cell(p3, target),
               stats::fmt("%.2E", target), ok ? "SAFE" : "UNSAFE"});
  }
  x.print();

  std::printf("\nConclusion (paper's method): R(BCH=8, S=8) cannot use "
              "W=1 — it must rewrite every line at scrub time (W=0) or "
              "upgrade to BCH-10;\nM(BCH=8, S=640) safely uses W=1 — "
              "ReadDuo-LWT's scrub setting. The exact computation is less "
              "pessimistic (see EXPERIMENTS.md).\n");
  return 0;
}
