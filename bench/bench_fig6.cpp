// Figure 6: what differential rewriting does to the drifting cell
// population. A Monte-Carlo device experiment compares three scrub
// policies over repeated 640 s intervals:
//   full     — rewrite every cell (what the paper requires of MLC writes);
//   refresh  — reprogram only the currently-misreading cells (naive
//              differential scrub);
//   none     — never rewrite (what a differentially-written cell
//              population experiences between full writes).
//
// Model note (documented in EXPERIMENTS.md): under the literal power-law
// drift of Eq. (1) — the clock runs from each cell's own write — old
// unwritten cells drift ever more slowly in wall-clock terms, so the
// `none` column accumulates errors monotonically while `refresh` declines.
// The accumulation in `none` is exactly why ReadDuo-Select measures
// R-sensing reliability from the last FULL write (Section III-D): cells
// skipped by differential writes keep their old drift budget.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "drift/metric.h"
#include "pcm/line.h"
#include "stats/report.h"

using namespace rd;

int main() {
  const drift::MetricConfig cfg = drift::r_metric();
  const std::size_t kLines = 2000;
  const std::size_t kBits = 592;
  const double kInterval = 640.0;
  const int kEpochs = 6;
  Rng rng(2024);

  auto random_bits = [&](BitVec& v) {
    for (std::size_t i = 0; i < v.size(); ++i) v.set(i, rng.bernoulli(0.5));
  };

  std::printf("== Figure 6: scrub rewrite policy vs drift-error "
              "accumulation (%zu lines x %zu bits, scrub every %.0f s)\n\n",
              kLines, kBits, kInterval);

  stats::Table t({"Epoch", "full: errors/line", "refresh: errors/line",
                  "none: errors/line", "none: P(>8)",
                  "refreshed cells/line"});

  std::vector<pcm::MlcLine> full(kLines, pcm::MlcLine(kBits));
  std::vector<pcm::MlcLine> refresh(kLines, pcm::MlcLine(kBits));
  std::vector<pcm::MlcLine> none(kLines, pcm::MlcLine(kBits));
  std::vector<BitVec> payload(kLines, BitVec(kBits));
  for (std::size_t i = 0; i < kLines; ++i) {
    random_bits(payload[i]);
    full[i].write_full(payload[i], 0.0, rng, cfg);
    refresh[i].write_full(payload[i], 0.0, rng, cfg);
    none[i].write_full(payload[i], 0.0, rng, cfg);
  }

  for (int epoch = 1; epoch <= kEpochs; ++epoch) {
    const double now = kInterval * epoch;
    double full_err = 0.0, refresh_err = 0.0, none_err = 0.0;
    double refreshed = 0.0;
    std::size_t none_gt8 = 0;
    for (std::size_t i = 0; i < kLines; ++i) {
      full_err += static_cast<double>(full[i].count_drift_errors(now, cfg));
      refresh_err +=
          static_cast<double>(refresh[i].count_drift_errors(now, cfg));
      const std::size_t ne = none[i].count_drift_errors(now, cfg);
      none_err += static_cast<double>(ne);
      if (ne > 8) ++none_gt8;
      full[i].write_full(payload[i], now, rng, cfg);
      refreshed +=
          static_cast<double>(refresh[i].refresh_drifted(now, rng, cfg));
    }
    t.add_row({std::to_string(epoch), stats::fmt("%.3f", full_err / kLines),
               stats::fmt("%.3f", refresh_err / kLines),
               stats::fmt("%.3f", none_err / kLines),
               stats::fmt("%.4f", static_cast<double>(none_gt8) / kLines),
               stats::fmt("%.2f", refreshed / kLines)});
  }
  t.print();

  std::printf("\nShapes: 'full' is flat (every scrub resets all drift "
              "clocks); 'none' accumulates monotonically toward the BCH-8 "
              "limit — the population a differential write leaves behind, "
              "and the reason Select tracks the last full write.\n");
  return 0;
}
