#!/bin/sh
# Regenerate every table and figure of the paper, in order. The heavy
# full-system sweeps share runs through bench_cache/ and fan out over the
# READDUO_THREADS pool (default: all cores; =1 forces serial execution).
# Per-bench and total wall-clock are printed so perf changes have a
# trajectory to cite, and the per-bench "== harness:" self-metrics lines
# (runs, cache hits/misses, simulated wall-clock) are aggregated into a
# final summary.
#
# READDUO_BENCH_JSON=path additionally writes a machine-readable summary:
# per-bench wall-clock, the Kernel_*_{ref,opt,vec} triples bench_micro
# times for every rewritten hot-path kernel (DESIGN.md §10) with their
# serial speedups, the kernel tier and SIMD level the _vec rows actually
# dispatched to, host core count, whether bench_cache/ was warm, and a
# thread-scaling curve (bench_fig6 wall-clock at READDUO_THREADS in
# {1,2,4,8}, capped at the host core count, cache disabled so every point
# recomputes), and a "service" section: the READDUO_METRICS summary of one
# fixed-seed readduo_load run (service-level p50/p95/p99, DESIGN.md §11).
# BENCH_pr6.json was produced this way.
#
# READDUO_BENCH_COMPARE=<baseline.json> gates the run on the perf budget:
# after writing READDUO_BENCH_JSON (required), the kernels_ns sections of
# baseline and fresh summary are diffed with tools/bench_compare, and any
# kernel metric more than 10% slower fails the script.
set -e
cd "$(dirname "$0")"

now_ms() { echo $(( $(date +%s%N) / 1000000 )); }

json_out=${READDUO_BENCH_JSON:-}
compare_base=${READDUO_BENCH_COMPARE:-}
if [ -n "$compare_base" ]; then
  if [ -z "$json_out" ]; then
    echo "READDUO_BENCH_COMPARE needs READDUO_BENCH_JSON=<path> set too" >&2
    exit 1
  fi
  if [ ! -f "$compare_base" ]; then
    echo "READDUO_BENCH_COMPARE baseline not found: $compare_base" >&2
    exit 1
  fi
fi

harness_log=$(mktemp)
bench_times=$(mktemp)
kernel_json=$(mktemp)
scaling_times=$(mktemp)
service_json=$(mktemp)
service_net_json=$(mktemp)
trap 'rm -f "$harness_log" "$bench_times" "$kernel_json" "$scaling_times" \
            "$service_json" "$service_net_json"' EXIT

# Record the cache state before the sweep touches it: a warm bench_cache/
# replays the heavy sims, so the per-bench numbers mean something different.
if [ -n "$(ls bench_cache 2>/dev/null)" ]; then
  cache_state=warm
else
  cache_state=cold
fi

total_start=$(now_ms)
for b in \
    bench_tables_1_2 bench_table3 bench_table4 bench_table5 bench_table7 \
    bench_fig3 bench_fig4 bench_fig6 bench_fig9 bench_fig10 bench_fig11 \
    bench_fig12 bench_fig13 bench_fig14 bench_fig15 \
    bench_ablation_w1 bench_ablation_t bench_ext_wear \
    bench_ext_rowbuffer bench_ext_temperature bench_ext_pausing \
    bench_micro; do
  echo "##### $b #####"
  bench_start=$(now_ms)
  if [ "$b" = bench_micro ] && [ -n "$json_out" ]; then
    # Ask google-benchmark for its JSON report so the kernel ref/opt
    # pairs can be extracted mechanically below.
    "./build/bench/$b" --benchmark_out="$kernel_json" \
        --benchmark_out_format=json | tee -a "$harness_log"
  else
    "./build/bench/$b" | tee -a "$harness_log"
  fi
  bench_end=$(now_ms)
  echo "----- $b: $(( bench_end - bench_start )) ms"
  echo "$b $(( bench_end - bench_start ))" >> "$bench_times"
  echo
done
total_end=$(now_ms)
echo "===== total wall-clock: $(( total_end - total_start )) ms" \
     "(READDUO_THREADS=${READDUO_THREADS:-auto})"

# Thread-scaling curve for the JSON summary: re-run one representative
# full-system sweep at fixed widths. The cache is disabled so every point
# pays the whole simulation; widths above the core count are skipped
# (they would measure oversubscription noise, not scaling).
if [ -n "$json_out" ]; then
  scaling_bench=bench_fig6
  for t in 1 2 4 8; do
    if [ "$t" -gt "$(nproc)" ]; then continue; fi
    echo "##### thread scaling: $scaling_bench READDUO_THREADS=$t #####"
    scale_start=$(now_ms)
    READDUO_CACHE=0 READDUO_THREADS=$t "./build/bench/$scaling_bench" \
        > /dev/null
    scale_end=$(now_ms)
    echo "----- $scaling_bench threads=$t: $(( scale_end - scale_start )) ms"
    echo "$t $(( scale_end - scale_start ))" >> "$scaling_times"
  done
fi

# Service-level latency sample for the JSON summary: one fixed-seed
# readduo_load run. The virtual-time percentiles are deterministic for
# the (seed, flags) pair; only the wall-clock fields vary per host.
if [ -n "$json_out" ]; then
  if [ ! -x ./build/tools/readduo_load ]; then
    cmake --build build --target readduo_load -j
  fi
  echo "##### service: readduo_load #####"
  svc_start=$(now_ms)
  ./build/tools/readduo_load --requests=200000 --report-every=0 --seed=7 \
      --summary="$service_json" > /dev/null
  svc_end=$(now_ms)
  echo "----- readduo_load: $(( svc_end - svc_start )) ms"
fi

# Wire-path latency sample: the same fixed-seed run served over a socket
# (readduo_serve --oneshot, three readduo_load --connect clients). Its
# virtual-time percentiles must match the in-process "service" section
# bit-for-bit (DESIGN.md §12); only wall-clock and the wire transport
# counters differ.
if [ -n "$json_out" ]; then
  if [ ! -x ./build/tools/readduo_serve ]; then
    cmake --build build --target readduo_serve -j
  fi
  echo "##### service_net: readduo_serve + readduo_load --connect #####"
  net_start=$(now_ms)
  serve_sock="unix:$(mktemp -u)"
  serve_log=$(mktemp)
  ./build/tools/readduo_serve --oneshot --seed=7 \
      --listen="$serve_sock" > "$serve_log" 2>&1 &
  serve_pid=$!
  for _ in $(seq 1 100); do
    grep -q "READDUO_SERVE listening" "$serve_log" 2>/dev/null && break
    sleep 0.1
  done
  ./build/tools/readduo_load --connect="$serve_sock" --clients=3 \
      --requests=200000 --report-every=0 --seed=7 \
      --summary="$service_net_json" > /dev/null
  wait "$serve_pid"
  rm -f "$serve_log"
  net_end=$(now_ms)
  echo "----- readduo_serve + readduo_load --connect:" \
       "$(( net_end - net_start )) ms"
fi

# Roll up the harness self-metrics every bench printed at exit.
awk '
  /^== harness:/ {
    for (i = 3; i <= NF; ++i) {
      split($i, kv, "=")
      if (kv[1] == "runs")         runs   += kv[2]
      if (kv[1] == "cache_hits")   hits   += kv[2]
      if (kv[1] == "cache_misses") misses += kv[2]
      if (kv[1] == "sim_wall_ms")  simms  += kv[2]
      if (kv[1] == "threads")      threads = kv[2]
    }
    benches += 1
  }
  END {
    printf "===== harness totals: benches=%d runs=%d cache_hits=%d cache_misses=%d sim_wall_ms=%d threads=%d\n", \
           benches, runs, hits, misses, simms, threads
  }
' "$harness_log"

# Optional machine-readable summary (see header).
if [ -n "$json_out" ]; then
  # The active device name: read from the READDUO_DEVICE config when the
  # sweep ran against one, else the builtin (DESIGN.md §13). Every run in
  # the summary used this device — the bench cache keys guarantee it.
  if [ -n "${READDUO_DEVICE:-}" ]; then
    device_name=$(sed -n 's/^name[[:space:]]*=[[:space:]]*//p' \
                  "$READDUO_DEVICE" | head -1)
    device_name=${device_name:-unknown}
  else
    device_name=pcm-readduo-t1
  fi
  awk -v total_ms="$(( total_end - total_start ))" \
      -v cores="$(nproc)" \
      -v device="$device_name" \
      -v cache="$cache_state" \
      -v threads="${READDUO_THREADS:-auto}" \
      -v instr="${READDUO_INSTR:-default}" \
      -v date="$(date +%Y-%m-%d)" \
      -v benchfile="$bench_times" \
      -v kernelfile="$kernel_json" \
      -v scalingfile="$scaling_times" \
      -v scalingbench="bench_fig6" \
      -v servicefile="$service_json" \
      -v servicenetfile="$service_net_json" '
  BEGIN {
    # Per-bench wall-clock, in run order.
    npb = 0
    while ((getline line < benchfile) > 0) {
      split(line, a, " ")
      pb[++npb] = a[1]
      pbms[a[1]] = a[2]
    }
    # Thread-scaling wall-clock points (threads, ms), in run order.
    nsc = 0
    while ((getline line < scalingfile) > 0) {
      split(line, a, " ")
      sct[++nsc] = a[1]
      scms[a[1]] = a[2]
    }
    # The readduo_load summary is already a JSON object (one key per
    # line); it is inlined verbatim under "service" with re-indentation.
    nsv = 0
    while ((getline line < servicefile) > 0) svc[++nsv] = line
    # Same for the wire-path run ("service_net").
    nsn = 0
    while ((getline line < servicenetfile) > 0) svn[++nsn] = line
    # Kernel_<name>_{ref,opt,vec} real_time entries plus the custom
    # context keys (active tier / SIMD level) from the google-benchmark
    # JSON report. bench_micro registers one triple per rewritten kernel.
    name = ""; nk = 0; tier = "unknown"; simd = "unknown"
    while ((getline line < kernelfile) > 0) {
      if (line ~ /"readduo_kernels":/) {
        gsub(/.*"readduo_kernels": "/, "", line); gsub(/".*/, "", line)
        tier = line
      } else if (line ~ /"readduo_simd":/) {
        gsub(/.*"readduo_simd": "/, "", line); gsub(/".*/, "", line)
        simd = line
      } else if (line ~ /^ *"name":/) {
        gsub(/.*"name": "/, "", line); gsub(/".*/, "", line)
        name = line
      } else if (line ~ /^ *"real_time":/ && name ~ /^Kernel_/) {
        gsub(/.*"real_time": /, "", line); gsub(/,.*/, "", line)
        k = substr(name, 8, length(name) - 11)
        if (name ~ /_ref$/) { ref[k] = line + 0 }
        else if (name ~ /_opt$/) {
          opt[k] = line + 0
          if (!(k in seen)) { seen[k] = 1; order[++nk] = k }
        }
        else if (name ~ /_vec$/) { vec[k] = line + 0; hasvec[k] = 1 }
        name = ""
      }
    }
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"device\": \"%s\",\n", device
    printf "  \"host\": {\"cores\": %d, \"os\": \"linux\"},\n", cores
    printf "  \"env\": {\"READDUO_THREADS\": \"%s\", \"READDUO_INSTR\": \"%s\"},\n", threads, instr
    printf "  \"cache\": \"%s\",\n", cache
    printf "  \"total_wall_ms\": %d,\n", total_ms
    printf "  \"per_bench_ms\": {\n"
    for (i = 1; i <= npb; ++i) {
      printf "    \"%s\": %d%s\n", pb[i], pbms[pb[i]], i < npb ? "," : ""
    }
    printf "  },\n"
    printf "  \"thread_scaling\": {\n"
    printf "    \"bench\": \"%s\",\n", scalingbench
    printf "    \"wall_ms\": {"
    for (i = 1; i <= nsc; ++i) {
      printf "\"%s\": %d%s", sct[i], scms[sct[i]], i < nsc ? ", " : ""
    }
    printf "}\n"
    printf "  },\n"
    if (nsv > 0) {
      printf "  \"service\": "
      for (i = 1; i <= nsv; ++i) {
        line = svc[i]
        if (i == 1)        printf "%s\n", line          # "{"
        else if (i == nsv) printf "  %s,\n", line       # "}" -> "  },"
        else               printf "  %s\n", line
      }
    }
    if (nsn > 0) {
      printf "  \"service_net\": "
      for (i = 1; i <= nsn; ++i) {
        line = svn[i]
        if (i == 1)        printf "%s\n", line          # "{"
        else if (i == nsn) printf "  %s,\n", line       # "}" -> "  },"
        else               printf "  %s\n", line
      }
    }
    printf "  \"kernel_env\": {\"tier\": \"%s\", \"simd\": \"%s\"},\n", \
           tier, simd
    printf "  \"kernels_ns\": {\n"
    for (i = 1; i <= nk; ++i) {
      k = order[i]
      printf "    \"%s\": {\"ref\": %.0f, \"opt\": %.0f", k, ref[k], opt[k]
      if (k in hasvec) printf ", \"vec\": %.0f", vec[k]
      printf ", \"speedup\": %.2f", ref[k] / opt[k]
      if (k in hasvec) printf ", \"speedup_vec\": %.2f", ref[k] / vec[k]
      printf "}%s\n", i < nk ? "," : ""
    }
    printf "  }\n"
    printf "}\n"
  }' > "$json_out"
  echo "===== wrote $json_out"
fi

# Opt-in perf gate: fail the sweep if any kernel metric regressed by more
# than 10% against the named baseline summary.
if [ -n "$compare_base" ]; then
  echo "===== perf gate: comparing $json_out against $compare_base"
  if ! ./build/tools/bench_compare "$compare_base" "$json_out"; then
    echo "===== perf gate FAILED (see bench_compare output above)" >&2
    exit 1
  fi
fi
