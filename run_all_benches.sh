#!/bin/sh
# Regenerate every table and figure of the paper, in order. The heavy
# full-system sweeps share runs through bench_cache/ and fan out over the
# READDUO_THREADS pool (default: all cores; =1 forces serial execution).
# Per-bench and total wall-clock are printed so perf changes have a
# trajectory to cite.
set -e
cd "$(dirname "$0")"

now_ms() { echo $(( $(date +%s%N) / 1000000 )); }

total_start=$(now_ms)
for b in \
    bench_tables_1_2 bench_table3 bench_table4 bench_table5 bench_table7 \
    bench_fig3 bench_fig4 bench_fig6 bench_fig9 bench_fig10 bench_fig11 \
    bench_fig12 bench_fig13 bench_fig14 bench_fig15 \
    bench_ablation_w1 bench_ablation_t bench_ext_wear \
    bench_ext_rowbuffer bench_ext_temperature bench_ext_pausing \
    bench_micro; do
  echo "##### $b #####"
  bench_start=$(now_ms)
  "./build/bench/$b"
  bench_end=$(now_ms)
  echo "----- $b: $(( bench_end - bench_start )) ms"
  echo
done
total_end=$(now_ms)
echo "===== total wall-clock: $(( total_end - total_start )) ms" \
     "(READDUO_THREADS=${READDUO_THREADS:-auto})"
