#!/bin/sh
# Regenerate every table and figure of the paper, in order. The heavy
# full-system sweeps share runs through bench_cache/ and fan out over the
# READDUO_THREADS pool (default: all cores; =1 forces serial execution).
# Per-bench and total wall-clock are printed so perf changes have a
# trajectory to cite, and the per-bench "== harness:" self-metrics lines
# (runs, cache hits/misses, simulated wall-clock) are aggregated into a
# final summary.
set -e
cd "$(dirname "$0")"

now_ms() { echo $(( $(date +%s%N) / 1000000 )); }

harness_log=$(mktemp)
trap 'rm -f "$harness_log"' EXIT

total_start=$(now_ms)
for b in \
    bench_tables_1_2 bench_table3 bench_table4 bench_table5 bench_table7 \
    bench_fig3 bench_fig4 bench_fig6 bench_fig9 bench_fig10 bench_fig11 \
    bench_fig12 bench_fig13 bench_fig14 bench_fig15 \
    bench_ablation_w1 bench_ablation_t bench_ext_wear \
    bench_ext_rowbuffer bench_ext_temperature bench_ext_pausing \
    bench_micro; do
  echo "##### $b #####"
  bench_start=$(now_ms)
  "./build/bench/$b" | tee -a "$harness_log"
  bench_end=$(now_ms)
  echo "----- $b: $(( bench_end - bench_start )) ms"
  echo
done
total_end=$(now_ms)
echo "===== total wall-clock: $(( total_end - total_start )) ms" \
     "(READDUO_THREADS=${READDUO_THREADS:-auto})"

# Roll up the harness self-metrics every bench printed at exit.
awk '
  /^== harness:/ {
    for (i = 3; i <= NF; ++i) {
      split($i, kv, "=")
      if (kv[1] == "runs")         runs   += kv[2]
      if (kv[1] == "cache_hits")   hits   += kv[2]
      if (kv[1] == "cache_misses") misses += kv[2]
      if (kv[1] == "sim_wall_ms")  simms  += kv[2]
      if (kv[1] == "threads")      threads = kv[2]
    }
    benches += 1
  }
  END {
    printf "===== harness totals: benches=%d runs=%d cache_hits=%d cache_misses=%d sim_wall_ms=%d threads=%d\n", \
           benches, runs, hits, misses, simms, threads
  }
' "$harness_log"
