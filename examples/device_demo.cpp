// Device demo: the Figure 7 architecture working on real bytes.
//
// Writes a page of text into a functional MLC PCM chip, wears out a few
// cells, lets a day of resistance drift pass under ReadDuo's 640 s W=1
// M-metric scrubbing, and reads everything back — watching which reads
// used the fast R path, which fell back to M-sensing, and what ECP and
// BCH quietly repaired along the way.
//
//   $ ./device_demo [hours]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "pcm/chip.h"

using namespace rd;

namespace {

std::vector<std::uint8_t> to_line(const std::string& text) {
  std::vector<std::uint8_t> data(64, ' ');
  std::memcpy(data.data(), text.data(), std::min<std::size_t>(64, text.size()));
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  const double hours = argc > 1 ? std::strtod(argv[1], nullptr) : 24.0;

  const char* lines[] = {
      "Phase change memory stores bits as resistance states.",
      "Middle states drift upward over time: soft errors.",
      "ReadDuo senses fast (R) and falls back to robust (M).",
      "BCH-8 corrects 8 errors and detects up to 17.",
      "ECP pointers patch worn-out stuck cells for good.",
      "Scrubbing every 640 s keeps R-sensing trustworthy.",
  };
  const std::size_t n = std::size(lines);

  pcm::ChipConfig cfg;
  cfg.num_lines = n;
  cfg.readout = pcm::ReadoutPolicy::kHybrid;
  cfg.scrub_interval_s = 640.0;
  cfg.scrub_w = 1;
  pcm::MlcChip chip(cfg);

  // A couple of cells have worn out before we ever use the chip.
  chip.inject_stuck_cell(0, 17, 0);
  chip.inject_stuck_cell(3, 200, 3);

  std::printf("writing %zu lines at t = 0...\n", n);
  for (std::size_t l = 0; l < n; ++l) chip.write(l, to_line(lines[l]));

  std::printf("advancing %.1f hours under (BCH-8, S=640 s, W=1) M-metric "
              "scrubbing...\n\n",
              hours);
  chip.advance_time(hours * 3600.0);

  bool all_ok = true;
  for (std::size_t l = 0; l < n; ++l) {
    const pcm::ChipReadResult r = chip.read(l);
    const std::string text(reinterpret_cast<const char*>(r.data.data()), 54);
    const bool ok =
        r.corrected &&
        std::memcmp(r.data.data(), lines[l], std::strlen(lines[l])) == 0;
    all_ok = all_ok && ok;
    std::printf("line %zu [%s, %u bit(s) corrected, age %5.0f s]: %s\n", l,
                r.used_m_sense ? "R->M" : "R   ", r.errors_corrected,
                chip.line_age(l), text.c_str());
  }

  const pcm::ChipStats& st = chip.stats();
  std::printf("\nchip stats: %llu reads (%llu M-fallbacks), %llu writes, "
              "%llu scrub passes, %llu scrub rewrites, %llu cells retired "
              "by ECP, %llu uncorrectable\n",
              static_cast<unsigned long long>(st.reads),
              static_cast<unsigned long long>(st.m_fallbacks),
              static_cast<unsigned long long>(st.writes),
              static_cast<unsigned long long>(st.scrub_passes),
              static_cast<unsigned long long>(st.scrub_rewrites),
              static_cast<unsigned long long>(st.cells_retired),
              static_cast<unsigned long long>(st.uncorrectable));
  std::printf("%s\n", all_ok ? "all data intact." : "DATA LOSS!");
  return all_ok ? 0 : 1;
}
