// Walkthrough of the Figure 5 last-writes-tracking scenario: one memory
// line under ReadDuo-LWT-4 (vector-flag + index-flag) as writes, scrubs
// and reads arrive across sub-intervals. Prints the flag state after each
// event with the paper's case analysis.
#include <cstdio>
#include <string>

#include "readduo/lwt_flags.h"

using namespace rd;

namespace {

std::string bits(const readduo::LwtFlags& f) {
  std::string s;
  for (unsigned i = f.k(); i-- > 0;) {
    s += (f.vector_flag() >> i) & 1 ? '1' : '0';
  }
  return s;
}

void show(const char* event, const readduo::LwtFlags& f) {
  std::printf("  %-44s vector=%s index=%u\n", event, bits(f).c_str(),
              f.index_flag());
}

}  // namespace

int main() {
  std::printf("ReadDuo-LWT-4: one 640 s scrub interval = 4 sub-intervals "
              "of 160 s, labels 0..3.\n");
  std::printf("Flags: 4-bit vector-flag (bit x = write tracked in "
              "sub-interval x) + 2-bit index-flag.\n\n");

  readduo::LwtFlags f(4);
  std::printf("Scrub cycle 1:\n");
  show("initial state", f);
  f.on_write(2);
  show("W1: write in sub-interval #2 (sets bit 2)", f);

  std::printf("\nScrub cycle 2 (scrub1 finds no errors, W=1 -> no "
              "rewrite):\n");
  f.on_scrub(false);
  show("scrub1: clears bits [0, ind-1], ind := 0", f);
  std::printf("  read R1 in sub-interval 2: tracked_for_read(2) = %s\n",
              f.tracked_for_read(2) ? "R-sensing" : "M-sensing");
  std::printf("    (case iii: index = 0, so bits [1,2] are from the "
              "previous cycle -> stale;\n     bit 2 discarded, vector "
              "becomes 0 -> switch to M-sensing, as in the paper)\n");

  std::printf("\nScrub cycle 3:\n");
  f.on_scrub(false);
  show("scrub2: ind == 0, clears everything", f);
  std::printf("  read in sub-interval 1: %s (case ii: vector zero)\n",
              f.tracked_for_read(1) ? "R-sensing" : "M-sensing");
  f.on_write(1);
  show("W2: write in sub-interval #1", f);
  std::printf("  read in sub-interval 3: %s (case i: both flags "
              "non-zero)\n",
              f.tracked_for_read(3) ? "R-sensing" : "M-sensing");
  f.on_write(3);
  show("W3: write in sub-interval #3 (retires gap bits)", f);

  std::printf("\nScrub cycle 4 (scrub3 rewrote the line after finding an "
              "error):\n");
  f.on_scrub(true);
  show("scrub3: rewrite recorded in bit 0", f);
  std::printf("  read in sub-interval 2: %s (bit 0 = fresh scrub rewrite "
              "is still tracked)\n",
              f.tracked_for_read(2) ? "R-sensing" : "M-sensing");

  std::printf("\nStorage cost: %u SLC flag bits per line (stored in the "
              "ECC chip; drift-free).\n",
              f.flag_bits());
  return 0;
}
