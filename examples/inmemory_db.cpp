// The Section III-C motivating scenario: an in-memory database is built
// once, then queried for a long time. Query reads hit data written far
// more than 640 s ago, so plain last-writes tracking would pay the 600 ns
// R-M-read on every access — this is exactly what the R-M-read -> write
// conversion fixes. We run the query phase under four schemes and compare.
//
//   $ ./inmemory_db [instructions_per_core]
#include <cstdio>
#include <cstdlib>

#include "memsim/env.h"
#include "memsim/simulator.h"
#include "readduo/schemes.h"
#include "stats/report.h"
#include "trace/workload.h"

using namespace rd;

int main(int argc, char** argv) {
  const std::uint64_t budget =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 6'000'000;

  // A query-phase workload: read-dominated, 70% of reads against a compact
  // table space written hours ago and scanned cyclically.
  trace::Workload db;
  db.name = "querydb";
  db.rpki = 2.5;
  db.wpki = 0.15;
  db.footprint_lines = 1u << 19;
  db.zipf_s = 0.6;
  db.archive_read_fraction = 0.70;
  db.archive_age_scale = 3600.0 * 24;  // built yesterday
  db.archive_lines = 1u << 12;
  db.archive_scan = true;

  std::printf("In-memory DB query phase: %.1f RPKI / %.2f WPKI, %.0f%% of "
              "reads on day-old tables\n\n",
              db.rpki, db.wpki, 100.0 * db.archive_read_fraction);

  struct Variant {
    const char* label;
    readduo::SchemeKind kind;
    bool conversion;
  };
  const Variant variants[] = {
      {"M-metric (always 450ns)", readduo::SchemeKind::kMMetric, false},
      {"Hybrid (W=0 scrub)", readduo::SchemeKind::kHybrid, false},
      {"LWT-4, no conversion", readduo::SchemeKind::kLwt, false},
      {"LWT-4, with conversion", readduo::SchemeKind::kLwt, true},
  };

  stats::Table t({"Scheme", "exec (ms)", "avg read (ns)", "R-reads",
                  "R-M-reads", "conversions", "final T%"});
  for (const Variant& v : variants) {
    memsim::SimConfig cfg;
    cfg.instructions_per_core = budget;
    readduo::SchemeEnv env = memsim::make_scheme_env(db, cfg.cpu, 99);
    readduo::ReadDuoOptions opts;
    opts.conversion = v.conversion;
    auto scheme = readduo::make_scheme(v.kind, env, opts);
    memsim::Simulator sim(cfg, *scheme, db);
    const memsim::SimResult r = sim.run();
    const auto& c = scheme->counters();
    t.add_row({v.label,
               stats::fmt("%.2f", static_cast<double>(r.exec_time.v) * 1e-6),
               stats::fmt("%.0f", r.avg_read_latency_ns()),
               std::to_string(c.r_reads), std::to_string(c.rm_reads),
               std::to_string(c.conversion_writes), "-"});
  }
  t.print();

  std::printf("\nExpected shape: LWT without conversion is the slowest "
              "variant on this access pattern\n(every table read is an "
              "untracked 600 ns R-M-read); enabling conversion recovers "
              "fast\nR-reads after the first scan of each table line.\n");
  return 0;
}
