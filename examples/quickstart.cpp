// Quickstart: the ReadDuo device stack in ~80 lines.
//
// Encodes a 64 B payload with BCH-8, programs it into a 296-cell MLC PCM
// line, lets resistance drift act for ten minutes, and reads it back twice:
// with fast current sensing (R-metric) and with drift-resilient voltage
// sensing (M-metric). The BCH decoder cleans up whatever drift corrupted.
//
//   $ ./quickstart [seconds]
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "drift/metric.h"
#include "ecc/bch.h"
#include "pcm/line.h"

using namespace rd;

int main(int argc, char** argv) {
  const double age = argc > 1 ? std::strtod(argv[1], nullptr) : 600.0;

  // 1. A payload: 512 bits of "application data".
  Rng rng(7);
  BitVec payload(512);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload.set(i, rng.bernoulli(0.5));
  }

  // 2. Attach the BCH-8 code the paper puts on every memory line.
  const ecc::BchCode bch(/*m=*/10, /*t=*/8, /*data_bits=*/512);
  const BitVec codeword = bch.encode(payload);
  std::printf("codeword: %u data bits + %u parity bits = %u bits "
              "(%u MLC cells)\n",
              bch.data_bits(), bch.parity_bits(), bch.codeword_bits(),
              bch.codeword_bits() / 2);

  // 3. Program a fresh MLC line at t = 0.
  const drift::MetricConfig r_cfg = drift::r_metric();
  const drift::MetricConfig m_cfg = drift::m_metric();
  pcm::MlcLine line(codeword.size());
  line.write_full(codeword, /*t_seconds=*/0.0, rng, r_cfg);

  // 4. Let the cells drift, then sense with both metrics.
  const std::size_t r_errors = line.count_drift_errors(age, r_cfg);
  const std::size_t m_errors = line.count_drift_errors(age, m_cfg);
  std::printf("after %.0f s: %zu cells misread under R-sensing, %zu under "
              "M-sensing\n",
              age, r_errors, m_errors);

  // 5. R-read (150 ns in hardware) + BCH correction — the ReadDuo fast
  //    path when the error count is within the code's power.
  BitVec r_image = line.read(age, r_cfg);
  const ecc::BchDecodeResult res = bch.decode(r_image);
  if (res.corrected) {
    bool ok = true;
    for (std::size_t i = 0; i < payload.size(); ++i) {
      ok = ok && r_image.get(i) == payload.get(i);
    }
    std::printf("R-read + BCH-8: corrected %u cells, payload %s\n",
                res.num_corrected, ok ? "intact" : "CORRUPT");
  } else {
    // 6. The ReadDuo fallback: re-sense with the M-metric (450 ns),
    //    which drifts 7x slower and reads the line cleanly.
    std::printf("R-read failed (BCH detected more errors than it can "
                "correct) -> falling back to M-read\n");
    BitVec m_image = line.read(age, m_cfg);
    const ecc::BchDecodeResult res2 = bch.decode(m_image);
    std::printf("M-read + BCH-8: %s (%u corrected)\n",
                res2.corrected ? "recovered" : "failed", res2.num_corrected);
  }
  return 0;
}
