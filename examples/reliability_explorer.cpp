// Reliability explorer: interactive front end to the analytic drift
// model. Given a readout metric, BCH strength E and scrub interval S, it
// reports whether the configuration meets DRAM-equivalent reliability —
// the computation behind Tables III-V.
//
//   $ ./reliability_explorer <R|M> <E> <S_seconds> [W]
//   $ ./reliability_explorer R 8 8 1
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/math.h"
#include "drift/error_model.h"

using namespace rd;

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <R|M> <E> <S_seconds> [W]\n"
                 "  R|M        readout metric (current / voltage sensing)\n"
                 "  E          BCH correction strength (errors per line)\n"
                 "  S_seconds  scrub interval\n"
                 "  W          rewrite threshold (default 1; 0 = always)\n",
                 argv[0]);
    return 2;
  }
  const bool use_m = std::strcmp(argv[1], "M") == 0 ||
                     std::strcmp(argv[1], "m") == 0;
  const unsigned e = static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10));
  const double s = std::strtod(argv[3], nullptr);
  const unsigned w =
      argc > 4 ? static_cast<unsigned>(std::strtoul(argv[4], nullptr, 10)) : 1;

  const drift::MetricConfig cfg =
      use_m ? drift::m_metric() : drift::r_metric();
  drift::LerCalculator calc{drift::ErrorModel(cfg)};
  const double target = drift::LerCalculator::ler_dram_target(s);

  std::printf("Configuration: %s, BCH-%u, S = %.0f s, W = %u\n",
              cfg.name.c_str(), e, s, w);
  std::printf("Per-cell drift error probability at S: %.3E\n",
              calc.model().avg_cell_error_prob(s));

  const double ler = calc.ler(e, s);
  std::printf("\nCondition (i)  — P(> %u errors within S):        %.3E  %s\n",
              e, ler, ler <= target ? "MEETS target" : "FAILS target");
  if (w >= 1) {
    const double p2 =
        std::exp(calc.log_prob_second_interval_indep(e, w, s));
    const double p3 = std::exp(calc.log_prob_third_interval_indep(e, w, s));
    std::printf("Condition (ii) — clean 1st, overflow 2nd interval: %.3E  "
                "%s\n",
                p2, p2 <= target ? "MEETS target" : "FAILS target");
    std::printf("Condition (iii)— clean 1st+2nd, overflow 3rd:      %.3E  "
                "%s\n",
                p3, p3 <= target ? "MEETS target" : "FAILS target");
    if (p2 > target || p3 > target) {
      std::printf("\nVerdict: W=%u scrubbing is UNSAFE here — use W=0 "
                  "(rewrite every scrub) or a stronger code.\n",
                  w);
    } else if (ler <= target) {
      std::printf("\nVerdict: SAFE — this configuration matches DRAM "
                  "reliability (target %.3E per line-interval).\n",
                  target);
    }
  }
  if (ler > target) {
    // Find the largest S that works for this E.
    double lo = 1.0, hi = s;
    for (int i = 0; i < 60; ++i) {
      const double mid = std::sqrt(lo * hi);
      if (calc.ler(e, mid) <=
          drift::LerCalculator::ler_dram_target(mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    std::printf("\nHint: with BCH-%u under %s, the scrub interval must be "
                "at most ~%.0f s.\n",
                e, cfg.name.c_str(), lo);
  }
  return 0;
}
