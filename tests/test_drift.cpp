// Tests for the analytic drift-error model: metric configurations,
// per-cell probabilities, LER tails, the paper's feasibility anchors, and
// Monte-Carlo cross-validation against the device model.
#include "drift/error_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math.h"
#include "common/rng.h"
#include "pcm/cell.h"

namespace rd::drift {
namespace {

TEST(MetricConfig, TableIGeometry) {
  const MetricConfig r = r_metric();
  EXPECT_EQ(r.states[0].mu, 3.0);
  EXPECT_EQ(r.states[3].mu, 6.0);
  EXPECT_NEAR(r.states[0].mu_alpha, 0.001, 1e-12);
  EXPECT_NEAR(r.states[1].mu_alpha, 0.02, 1e-12);
  EXPECT_NEAR(r.states[2].mu_alpha, 0.06, 1e-12);
  EXPECT_NEAR(r.states[3].mu_alpha, 0.10, 1e-12);
  for (const auto& s : r.states) {
    EXPECT_NEAR(s.sigma_alpha, 0.4 * s.mu_alpha, 1e-12);
    EXPECT_NEAR(s.sigma, 1.0 / 6.0, 1e-12);
  }
}

TEST(MetricConfig, TableIIMMetricIsSeventhOfR) {
  const MetricConfig r = r_metric();
  const MetricConfig m = m_metric();
  for (std::size_t i = 0; i < kNumStates; ++i) {
    EXPECT_NEAR(m.states[i].mu, r.states[i].mu - 4.0, 1e-12);
    EXPECT_NEAR(m.states[i].mu_alpha, r.states[i].mu_alpha / 7.0, 1e-12);
  }
}

TEST(MetricConfig, GrayCodeAdjacency) {
  // Adjacent storage levels differ in exactly one data bit, so one drift
  // error corrupts one bit.
  for (std::size_t i = 0; i + 1 < kNumStates; ++i) {
    const unsigned diff = kLevelData[i] ^ kLevelData[i + 1];
    EXPECT_EQ(__builtin_popcount(diff), 1) << "levels " << i;
  }
}

TEST(MetricConfig, BoundariesBetweenStates) {
  const MetricConfig r = r_metric();
  for (std::size_t i = 0; i + 1 < kNumStates; ++i) {
    EXPECT_GT(r.upper_boundary(i), r.states[i].mu);
    EXPECT_LT(r.upper_boundary(i), r.states[i + 1].mu);
  }
}

class DriftState : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DriftState, ErrorProbabilityMonotoneInTime) {
  const ErrorModel model(r_metric());
  const std::size_t state = GetParam();
  double prev = 0.0;
  for (double t = 2.0; t < 1e6; t *= 4.0) {
    const double p = model.cell_error_prob(state, t);
    EXPECT_GE(p, prev) << "state=" << state << " t=" << t;
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(States, DriftState,
                         ::testing::Values(0u, 1u, 2u, 3u));

TEST(ErrorModel, TopStateNeverErrs) {
  const ErrorModel model(r_metric());
  EXPECT_EQ(model.cell_error_prob(3, 1e6), 0.0);
}

TEST(ErrorModel, NoErrorBeforeT0) {
  const ErrorModel model(r_metric());
  for (std::size_t s = 0; s < kNumStates; ++s) {
    EXPECT_EQ(model.cell_error_prob(s, 0.5), 0.0);
    EXPECT_EQ(model.cell_error_prob(s, 1.0), 0.0);
  }
}

TEST(ErrorModel, MiddleStatesDriftMost) {
  const ErrorModel model(r_metric());
  const double t = 64.0;
  // State 2 (highest drift coefficient among error-capable states)
  // dominates; full-crystalline state 0 is essentially immune.
  EXPECT_GT(model.cell_error_prob(2, t), model.cell_error_prob(1, t));
  EXPECT_GT(model.cell_error_prob(1, t), model.cell_error_prob(0, t));
  EXPECT_LT(model.cell_error_prob(0, t), 1e-12);
}

TEST(ErrorModel, MMetricFarMoreReliableThanR) {
  const ErrorModel r(r_metric()), m(m_metric());
  for (double t : {8.0, 64.0, 640.0}) {
    EXPECT_LT(m.avg_cell_error_prob(t), r.avg_cell_error_prob(t) * 1e-2)
        << t;
  }
}

TEST(ErrorModel, LogAndLinearAgree) {
  const ErrorModel model(r_metric());
  for (double t : {8.0, 640.0}) {
    EXPECT_NEAR(std::exp(model.log_avg_cell_error_prob(t)),
                model.avg_cell_error_prob(t), 1e-15);
  }
}

// --- The paper's feasibility anchors (Tables III-V) --------------------

TEST(LerAnchors, Bch8At8SecondsMeetsDramTarget) {
  LerCalculator calc{ErrorModel(r_metric())};
  EXPECT_LE(calc.ler(8, 8.0), LerCalculator::ler_dram_target(8.0));
}

TEST(LerAnchors, SeventeenErrorDetectionSafeTo640) {
  // The decoupled detect/correct argument of Section III-B: silent
  // corruption (> 17 errors) stays under the DRAM target out to 640 s.
  LerCalculator calc{ErrorModel(r_metric())};
  EXPECT_LE(calc.ler(17, 640.0), LerCalculator::ler_dram_target(640.0));
  // ... but not forever (sanity that the test is non-vacuous).
  EXPECT_GT(calc.ler(17, 4096.0), LerCalculator::ler_dram_target(4096.0));
}

TEST(LerAnchors, UnprotectedLinesFailQuickly) {
  LerCalculator calc{ErrorModel(r_metric())};
  EXPECT_GT(calc.ler(0, 8.0), 1e-2);  // Table III, E=0 column
}

TEST(LerAnchors, MMetricBch8SafeAt640AndBeyond) {
  LerCalculator calc{ErrorModel(m_metric())};
  EXPECT_LE(calc.ler(8, 640.0), LerCalculator::ler_dram_target(640.0));
  EXPECT_LE(calc.ler(8, 16384.0), LerCalculator::ler_dram_target(16384.0));
}

TEST(LerAnchors, TableVVerdictsUnderPaperMethod) {
  LerCalculator r{ErrorModel(r_metric())};
  LerCalculator m{ErrorModel(m_metric())};
  const double target8 = LerCalculator::ler_dram_target(8.0);
  const double target640 = LerCalculator::ler_dram_target(640.0);
  // R(BCH=8, S=8, W=1): UNSAFE -> ReadDuo-Hybrid must use W=0.
  EXPECT_GT(std::exp(r.log_prob_second_interval_indep(8, 1, 8.0)), target8);
  // R(BCH=10, S=8, W=1): SAFE.
  EXPECT_LE(std::exp(r.log_prob_second_interval_indep(10, 1, 8.0)), target8);
  EXPECT_LE(std::exp(r.log_prob_third_interval_indep(10, 1, 8.0)), target8);
  // M(BCH=8, S=640, W=1): SAFE -> ReadDuo-LWT's setting.
  EXPECT_LE(std::exp(m.log_prob_second_interval_indep(8, 1, 640.0)),
            target640);
  EXPECT_LE(std::exp(m.log_prob_third_interval_indep(8, 1, 640.0)),
            target640);
}

TEST(LerCalculator, ExactIntervalBoundedByIndependent) {
  // The exact interval computation can only be smaller than the paper's
  // independence approximation (it removes double-counted error mass).
  LerCalculator r{ErrorModel(r_metric())};
  for (double s : {8.0, 64.0}) {
    EXPECT_LE(r.log_prob_second_interval(8, 1, s),
              r.log_prob_second_interval_indep(8, 1, s) + 1e-9)
        << s;
  }
}

TEST(LerCalculator, TailMonotoneInE) {
  LerCalculator calc{ErrorModel(r_metric())};
  double prev = 1.0;
  for (unsigned e = 0; e <= 18; e += 2) {
    const double v = calc.ler(e, 640.0);
    EXPECT_LE(v, prev) << e;
    prev = v;
  }
}

TEST(LerCalculator, DramTargetScalesLinearly) {
  EXPECT_NEAR(LerCalculator::ler_dram_target(8.0) /
                  LerCalculator::ler_dram_target(4.0),
              2.0, 1e-12);
  EXPECT_NEAR(LerCalculator::ler_dram_target(1.0), 3.56e-15, 1e-20);
}

TEST(Temperature, ReferenceIsIdentity) {
  const MetricConfig base = r_metric();
  const MetricConfig same = at_temperature(base, 26.85);  // 300 K
  for (std::size_t i = 0; i < kNumStates; ++i) {
    EXPECT_NEAR(same.states[i].mu_alpha, base.states[i].mu_alpha, 1e-9);
  }
}

TEST(Temperature, HotterDriftsFaster) {
  const ErrorModel cold(at_temperature(r_metric(), 0.0));
  const ErrorModel ref(r_metric());
  const ErrorModel hot(at_temperature(r_metric(), 85.0));
  for (double t : {8.0, 640.0}) {
    EXPECT_LT(cold.avg_cell_error_prob(t), ref.avg_cell_error_prob(t)) << t;
    EXPECT_GT(hot.avg_cell_error_prob(t), ref.avg_cell_error_prob(t)) << t;
  }
}

TEST(Temperature, ScaleNeverGoesNegative) {
  const MetricConfig frozen = at_temperature(r_metric(), -300.0);
  for (const auto& st : frozen.states) {
    EXPECT_GE(st.mu_alpha, 0.0);
    EXPECT_GE(st.sigma_alpha, 0.0);
  }
}

// --- CellErrorTable interpolation ----------------------------------------

TEST(CellErrorTable, MatchesDirectEvaluation) {
  const ErrorModel model(r_metric());
  const CellErrorTable table(model);
  for (double t : {0.01, 2.0, 8.0, 37.5, 640.0, 123456.0}) {
    const double direct = model.avg_cell_error_prob(t);
    const double interp = table.prob(t);
    if (direct > 1e-5) {
      EXPECT_NEAR(interp / direct, 1.0, 0.05) << t;
    } else if (direct > 1e-12) {
      // Steep drift onset: log-space interpolation is within ~10%.
      EXPECT_NEAR(interp / direct, 1.0, 0.15) << t;
    } else {
      EXPECT_LT(interp, 1e-10) << t;
    }
  }
}

TEST(CellErrorTable, ClampsOutOfRange) {
  const ErrorModel model(r_metric());
  const CellErrorTable table(model, 1.0, 1e6);
  EXPECT_EQ(table.prob(0.0), 0.0);
  EXPECT_EQ(table.prob(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(table.prob(1e9), table.prob(1e6));
}

// --- Monte-Carlo cross-validation ----------------------------------------

class McValidation : public ::testing::TestWithParam<double> {};

TEST_P(McValidation, DeviceModelMatchesAnalyticProbability) {
  // The pcm::Cell Monte-Carlo device model and the analytic ErrorModel
  // must describe the same physics: program many cells per state, drift
  // them to time t, and compare the empirical error rate.
  const double t = GetParam();
  const MetricConfig cfg = r_metric();
  const ErrorModel model(cfg);
  Rng rng(static_cast<std::uint64_t>(t * 1000));
  const int kCells = 400000;
  for (std::size_t state : {1u, 2u}) {
    const double p = model.cell_error_prob(state, t);
    if (p < 30.0 / kCells) continue;  // not enough statistics
    int errors = 0;
    for (int i = 0; i < kCells; ++i) {
      pcm::Cell cell;
      cell.program(state, 0.0, rng, cfg);
      errors += cell.drift_error(t, cfg) ? 1 : 0;
    }
    const double emp = static_cast<double>(errors) / kCells;
    const double sd = std::sqrt(p * (1.0 - p) / kCells);
    EXPECT_NEAR(emp, p, 6.0 * sd + 0.1 * p)
        << "state=" << state << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Times, McValidation,
                         ::testing::Values(16.0, 64.0, 640.0, 4096.0));

}  // namespace
}  // namespace rd::drift
