// Tests for the ReadDuo policy layer: steady-state sampler, conversion
// controller, and the six schemes' decision logic.
#include <gtest/gtest.h>

#include "readduo/conversion.h"
#include "readduo/scheme_base.h"
#include "readduo/schemes.h"
#include "readduo/steady_state.h"

namespace rd::readduo {
namespace {

// ----------------------------------------------------- ScrubAgeSampler ---

TEST(ScrubAgeSampler, W0AgesUniformWithinInterval) {
  const drift::ErrorModel model(drift::r_metric());
  ScrubAgeSampler sampler(model, 296, 640.0, /*nu=*/0);
  EXPECT_DOUBLE_EQ(sampler.rewrite_probability(), 1.0);
  EXPECT_NEAR(sampler.mean_rewrite_interval(), 640.0, 1e-6);
  Rng rng(1);
  double mx = 0.0, sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double a = sampler.sample(rng);
    ASSERT_GE(a, 0.0);
    ASSERT_LT(a, 640.0);
    mx = std::max(mx, a);
    sum += a;
  }
  EXPECT_GT(mx, 600.0);
  EXPECT_NEAR(sum / n, 320.0, 10.0);
}

TEST(ScrubAgeSampler, RMetricW1HasModerateRewriteRate) {
  const drift::ErrorModel model(drift::r_metric());
  ScrubAgeSampler sampler(model, 296, 8.0, /*nu=*/1);
  // Conditional hazards of a few percent per scrub.
  EXPECT_GT(sampler.rewrite_probability(), 0.001);
  EXPECT_LT(sampler.rewrite_probability(), 0.2);
  EXPECT_GT(sampler.mean_rewrite_interval(), 8.0);
}

TEST(ScrubAgeSampler, MMetricW1AlmostNeverRewrites) {
  const drift::ErrorModel model(drift::m_metric());
  ScrubAgeSampler sampler(model, 296, 640.0, /*nu=*/1);
  EXPECT_LT(sampler.rewrite_probability(), 0.01);
  // Ages routinely reach far beyond the scrub interval.
  Rng rng(2);
  double mx = 0.0;
  for (int i = 0; i < 5000; ++i) mx = std::max(mx, sampler.sample(rng));
  EXPECT_GT(mx, 10.0 * 640.0);
}

TEST(ScrubAgeSampler, Nu0MeanIntervalIsExactlyOneScrubPeriod) {
  // Analytic pin for the tail-truncation bookkeeping in the constructor:
  // with nu=0 every line fails its first post-scrub check, so q(1) = 1,
  // the survival loop stops after one step, and the residual term
  // (credited at survival.size() * interval) contributes zero mass.
  // mean_interval_ must equal the scrub interval *exactly* — any
  // off-by-one in the truncation shows up here as interval*2 or 0.
  const drift::ErrorModel model(drift::r_metric());
  for (const double interval : {1.0, 8.0, 640.0}) {
    ScrubAgeSampler sampler(model, 296, interval, /*nu=*/0);
    EXPECT_DOUBLE_EQ(sampler.rewrite_probability(), 1.0) << interval;
    EXPECT_DOUBLE_EQ(sampler.mean_rewrite_interval(), interval) << interval;
  }
}

TEST(ScrubAgeSampler, MeanIntervalNeverExceedsModelledHorizon) {
  // The residual survival mass is credited at the earliest un-modelled
  // scrub, so the estimate is conservative: it can never exceed the
  // modelled horizon even for metrics that almost never rewrite.
  const drift::ErrorModel model(drift::m_metric());
  ScrubAgeSampler sampler(model, 296, 640.0, /*nu=*/1);
  EXPECT_GT(sampler.mean_rewrite_interval(), 640.0);
  // The default max_age caps the modelled hazard at 1e6 seconds; the
  // residual is credited one interval past the last modelled scrub.
  EXPECT_LE(sampler.mean_rewrite_interval(), 1.0e6 + 640.0);
}

TEST(ScrubAgeSampler, StrongerThresholdRewritesLess) {
  const drift::ErrorModel model(drift::r_metric());
  ScrubAgeSampler nu1(model, 296, 8.0, 1);
  ScrubAgeSampler nu3(model, 296, 8.0, 3);
  EXPECT_LT(nu3.rewrite_probability(), nu1.rewrite_probability());
}

// ------------------------------------------------ ConversionController ---

TEST(ConversionController, DisabledNeverConverts) {
  ConversionController::Config cfg;
  cfg.enabled = false;
  ConversionController c(cfg);
  for (int i = 0; i < 100; ++i) {
    c.record_read(true, false);
    EXPECT_FALSE(c.should_convert());
  }
  EXPECT_EQ(c.t_percent(), 0u);
}

TEST(ConversionController, ConvertsExactlyTPercent) {
  ConversionController::Config cfg;
  cfg.initial_t = 30;
  ConversionController c(cfg);
  int converted = 0;
  for (int i = 0; i < 1000; ++i) converted += c.should_convert() ? 1 : 0;
  EXPECT_EQ(converted, 300);
}

TEST(ConversionController, HighWatermarkBacksOffToFloor) {
  ConversionController::Config cfg;
  cfg.initial_t = 50;
  cfg.epoch_reads = 100;
  cfg.floor_t = 10;
  ConversionController c(cfg);
  // Ten epochs of 90% untracked reads with no benefit.
  for (int epoch = 0; epoch < 10; ++epoch) {
    for (int i = 0; i < 100; ++i) c.record_read(i % 10 != 0, false);
  }
  EXPECT_EQ(c.t_percent(), 10u);  // floored, still probing
}

TEST(ConversionController, BenefitRampsUp) {
  ConversionController::Config cfg;
  cfg.initial_t = 10;
  cfg.epoch_reads = 100;
  ConversionController c(cfg);
  // Epochs where conversions happen and converted lines are re-read a lot.
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (int i = 0; i < 100; ++i) {
      const bool untracked = i % 4 == 0;
      c.record_read(untracked, !untracked && i % 2 == 0);
      if (untracked && c.should_convert()) c.record_conversion();
    }
  }
  EXPECT_GT(c.t_percent(), 10u);
}

TEST(ConversionController, NoBenefitDecays) {
  ConversionController::Config cfg;
  cfg.initial_t = 50;
  cfg.epoch_reads = 100;
  cfg.floor_t = 10;
  ConversionController c(cfg);
  for (int epoch = 0; epoch < 10; ++epoch) {
    for (int i = 0; i < 100; ++i) {
      const bool untracked = i % 3 == 0;  // 33% < watermark
      c.record_read(untracked, false);    // no benefit ever
      if (untracked && c.should_convert()) c.record_conversion();
    }
  }
  EXPECT_EQ(c.t_percent(), 10u);
}

// ------------------------------------------------------------ Schemes ----

SchemeEnv test_env(std::uint64_t seed = 7) {
  SchemeEnv env;
  env.seed = seed;
  env.footprint_lines = 1u << 16;
  env.archive_lines = 1u << 14;
  env.zipf_s = 0.6;
  env.per_core_write_rate = 1e5;
  return env;
}

TEST(Schemes, FactoryNames) {
  const SchemeEnv env = test_env();
  ReadDuoOptions opts;
  EXPECT_EQ(make_scheme(SchemeKind::kIdeal, env)->name(), "Ideal");
  EXPECT_EQ(make_scheme(SchemeKind::kTlc, env)->name(), "TLC");
  EXPECT_EQ(make_scheme(SchemeKind::kScrubbing, env)->name(), "Scrubbing");
  EXPECT_EQ(make_scheme(SchemeKind::kMMetric, env)->name(), "M-metric");
  EXPECT_EQ(make_scheme(SchemeKind::kHybrid, env)->name(), "Hybrid");
  EXPECT_EQ(make_scheme(SchemeKind::kLwt, env, opts)->name(), "LWT-4");
  opts.k = 2;
  opts.select_s = 3;
  EXPECT_EQ(make_scheme(SchemeKind::kSelect, env, opts)->name(),
            "Select-2:3");
}

TEST(Schemes, DensitiesMatchPaper) {
  const SchemeEnv env = test_env();
  ReadDuoOptions opts;
  EXPECT_DOUBLE_EQ(make_scheme(SchemeKind::kIdeal, env)->cells_per_line(),
                   296.0);
  EXPECT_DOUBLE_EQ(make_scheme(SchemeKind::kTlc, env)->cells_per_line(),
                   384.0);
  // LWT-4 adds 6 SLC flag bits.
  EXPECT_DOUBLE_EQ(
      make_scheme(SchemeKind::kLwt, env, opts)->cells_per_line(), 302.0);
  EXPECT_DOUBLE_EQ(
      make_scheme(SchemeKind::kSelect, env, opts)->cells_per_line(), 302.0);
}

TEST(Schemes, ScrubIntervalsMatchPaperSettings) {
  const SchemeEnv env = test_env();
  EXPECT_EQ(make_scheme(SchemeKind::kIdeal, env)->scrub_interval_seconds(),
            0.0);
  EXPECT_EQ(
      make_scheme(SchemeKind::kScrubbing, env)->scrub_interval_seconds(),
      8.0);
  EXPECT_EQ(make_scheme(SchemeKind::kMMetric, env)->scrub_interval_seconds(),
            640.0);
  EXPECT_EQ(make_scheme(SchemeKind::kHybrid, env)->scrub_interval_seconds(),
            640.0);
}

TEST(Schemes, IdealReadIs150ns) {
  const SchemeEnv env = test_env();
  auto s = make_scheme(SchemeKind::kIdeal, env);
  const ReadOutcome r = s->on_read(123, Ns{1000}, false);
  EXPECT_EQ(r.mode, ReadMode::kRRead);
  EXPECT_EQ(r.latency.v, 150);
  EXPECT_FALSE(r.convert_to_write);
  EXPECT_EQ(s->counters().r_reads, 1u);
}

TEST(Schemes, MMetricReadIs450ns) {
  const SchemeEnv env = test_env();
  auto s = make_scheme(SchemeKind::kMMetric, env);
  const ReadOutcome r = s->on_read(123, Ns{1000}, false);
  EXPECT_EQ(r.mode, ReadMode::kMRead);
  EXPECT_EQ(r.latency.v, 450);
}

TEST(Schemes, HybridYoungLinesUseRRead) {
  const SchemeEnv env = test_env();
  auto s = make_scheme(SchemeKind::kHybrid, env);
  // Write then read immediately: no drift, fast path.
  s->on_write(5, Ns{0});
  const ReadOutcome r = s->on_read(5, Ns{1000}, false);
  EXPECT_EQ(r.mode, ReadMode::kRRead);
  EXPECT_EQ(r.latency.v, 150);
}

TEST(Schemes, LwtUntrackedArchiveReadsAreRMReads) {
  SchemeEnv env = test_env();
  env.archive_age_scale_s = 1e5;  // archive written ages ago
  ReadDuoOptions opts;
  opts.conversion = false;
  auto s = make_scheme(SchemeKind::kLwt, env, opts);
  int rm = 0;
  for (std::uint64_t line = 1u << 16; line < (1u << 16) + 200; ++line) {
    const ReadOutcome r = s->on_read(line, Ns{1000}, /*archive=*/true);
    rm += r.mode == ReadMode::kRMRead ? 1 : 0;
  }
  // Essentially all day-old archive lines are untracked.
  EXPECT_GT(rm, 190);
  EXPECT_EQ(s->counters().untracked_reads, s->counters().rm_reads);
}

TEST(Schemes, LwtFreshWritesEnableRRead) {
  const SchemeEnv env = test_env();
  auto s = make_scheme(SchemeKind::kLwt, env);
  for (std::uint64_t line = 0; line < 100; ++line) {
    s->on_write(line, Ns{0});
    const ReadOutcome r = s->on_read(line, Ns{500}, false);
    EXPECT_EQ(r.mode, ReadMode::kRRead) << line;
  }
}

TEST(Schemes, LwtConversionEmitsWriteRequests) {
  SchemeEnv env = test_env();
  env.archive_age_scale_s = 1e5;
  ReadDuoOptions opts;
  opts.conversion = true;
  opts.controller.initial_t = 100;  // convert everything
  auto s = make_scheme(SchemeKind::kLwt, env, opts);
  int conversions = 0;
  for (std::uint64_t line = 1u << 16; line < (1u << 16) + 100; ++line) {
    const ReadOutcome r = s->on_read(line, Ns{1000}, true);
    if (r.convert_to_write) {
      ++conversions;
      s->on_converted_write(line, Ns{2000});
      // Next read of the same line is tracked and fast.
      const ReadOutcome again = s->on_read(line, Ns{3000}, true);
      EXPECT_EQ(again.mode, ReadMode::kRRead);
    }
  }
  EXPECT_GT(conversions, 90);
  EXPECT_EQ(s->counters().conversion_writes,
            static_cast<std::uint64_t>(conversions));
}

TEST(Schemes, SelectDifferentialWithinWindowFullBeyond) {
  const SchemeEnv env = test_env();
  ReadDuoOptions opts;  // k=4, s=2 -> window = 2 * 160 s = 320 s
  auto s = make_scheme(SchemeKind::kSelect, env, opts);
  // First write: the line's sampled pre-window age decides; write again
  // immediately — within the window — must be differential.
  s->on_write(9, Ns{0});
  const WriteOutcome w2 = s->on_write(9, from_seconds(10.0));
  EXPECT_FALSE(w2.full_line);
  EXPECT_LT(w2.cells_written, 296u);
  EXPECT_GT(w2.cells_written, 0u);
  // Beyond the 320 s window: full-line write again.
  const WriteOutcome w3 = s->on_write(9, from_seconds(400.0));
  EXPECT_TRUE(w3.full_line);
  EXPECT_EQ(w3.cells_written, 296u);
}

TEST(Schemes, SelectConvertedWritesAreAlwaysFull) {
  const SchemeEnv env = test_env();
  auto s = make_scheme(SchemeKind::kSelect, env);
  s->on_write(11, Ns{0});
  const WriteOutcome w = s->on_converted_write(11, from_seconds(1.0));
  EXPECT_TRUE(w.full_line);
  EXPECT_EQ(w.cells_written, 296u);
}

TEST(Schemes, SelectDiffWriteDoesNotResetTrackingClock) {
  const SchemeEnv env = test_env();
  ReadDuoOptions opts;
  auto s = make_scheme(SchemeKind::kSelect, env, opts);
  s->on_write(13, Ns{0});                           // full at t=0
  s->on_write(13, from_seconds(100.0));             // diff at t=100
  const WriteOutcome w = s->on_write(13, from_seconds(350.0));
  // 350 s is beyond the 320 s window measured from the last FULL write
  // (t=0), even though a differential write happened at t=100.
  EXPECT_TRUE(w.full_line);
}

TEST(Schemes, EnergyAccountingIsConsistent) {
  const SchemeEnv env = test_env();
  auto s = make_scheme(SchemeKind::kHybrid, env);
  s->on_write(1, Ns{0});
  s->on_read(1, Ns{1000}, false);
  const auto& c = s->counters();
  EXPECT_DOUBLE_EQ(
      c.dynamic_energy_pj(),
      c.read_energy_pj + c.write_energy_pj + c.scrub_energy_pj);
  EXPECT_DOUBLE_EQ(c.write_energy_pj, 296.0 * env.energy.cell_write.v);
  EXPECT_DOUBLE_EQ(c.read_energy_pj, env.energy.r_read.v);
}

TEST(Schemes, ScrubbingW0RewritesEveryRowLine) {
  const SchemeEnv env = test_env();
  auto s = make_scheme(SchemeKind::kScrubbingW0, env);
  EXPECT_EQ(s->name(), "Scrubbing-W0");
  const ScrubOutcome out = s->on_scrub(Ns{0}, 16);
  EXPECT_EQ(out.rewrites, 16u);
  EXPECT_EQ(out.sense_latency.v, 150);  // still R-sensing
}

TEST(Schemes, ScrubOutcomesFollowPolicy) {
  const SchemeEnv env = test_env();
  // W=0 Hybrid rewrites every line of the row.
  auto hybrid = make_scheme(SchemeKind::kHybrid, env);
  const ScrubOutcome h = hybrid->on_scrub(Ns{0}, 16);
  EXPECT_EQ(h.rewrites, 16u);
  EXPECT_EQ(h.sense_latency.v, 450);  // M sense
  // Ideal never scrubs.
  auto ideal = make_scheme(SchemeKind::kIdeal, env);
  const ScrubOutcome i = ideal->on_scrub(Ns{0}, 16);
  EXPECT_EQ(i.rewrites, 0u);
  // W=1 M-metric scrub almost never rewrites.
  auto m = make_scheme(SchemeKind::kMMetric, env);
  unsigned rewrites = 0;
  for (int j = 0; j < 200; ++j) rewrites += m->on_scrub(Ns{0}, 16).rewrites;
  EXPECT_LT(rewrites, 40u);
}

TEST(Schemes, TlcWritesCost384Cells) {
  const SchemeEnv env = test_env();
  auto s = make_scheme(SchemeKind::kTlc, env);
  const WriteOutcome w = s->on_write(3, Ns{0});
  EXPECT_EQ(w.cells_written, 384u);
  EXPECT_EQ(s->counters().cell_writes, 384u);
}

}  // namespace
}  // namespace rd::readduo
