// Property-based and failure-injection tests across modules.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "drift/error_model.h"
#include "ecc/bch.h"
#include "ecc/secded.h"
#include "faults/injector.h"
#include "memsim/env.h"
#include "memsim/simulator.h"
#include "readduo/schemes.h"
#include "readduo/steady_state.h"
#include "trace/generator.h"

namespace rd {
namespace {

// --- BCH code properties ---------------------------------------------------

BitVec random_bits(Rng& rng, std::size_t n) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

TEST(BchProperties, CodeIsLinear) {
  // encode(a) XOR encode(b) == encode(a XOR b): parity is GF(2)-linear.
  const ecc::BchCode code(10, 8, 512);
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVec a = random_bits(rng, 512);
    const BitVec b = random_bits(rng, 512);
    const BitVec lhs = code.encode(a) ^ code.encode(b);
    const BitVec rhs = code.encode(a ^ b);
    EXPECT_TRUE(lhs == rhs) << "trial " << trial;
  }
}

TEST(BchProperties, ZeroPayloadIsZeroCodeword) {
  const ecc::BchCode code(10, 8, 512);
  const BitVec cw = code.encode(BitVec(512));
  EXPECT_FALSE(cw.any());
  EXPECT_TRUE(code.is_codeword(cw));
}

TEST(BchProperties, MinimumWeightAtLeastDesignDistance) {
  // Random nonzero codewords must weigh at least 2t + 1 = 17.
  const ecc::BchCode code(10, 8, 512);
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    BitVec data = random_bits(rng, 512);
    if (!data.any()) data.set(0, true);
    const BitVec cw = code.encode(data);
    EXPECT_GE(cw.popcount(), code.design_distance()) << trial;
  }
}

TEST(BchProperties, XorOfCodewordsIsCodeword) {
  const ecc::BchCode code(10, 8, 512);
  Rng rng(3);
  const BitVec c1 = code.encode(random_bits(rng, 512));
  const BitVec c2 = code.encode(random_bits(rng, 512));
  EXPECT_TRUE(code.is_codeword(c1 ^ c2));
}

/// e distinct flip positions drawn through the fault injector, so the
/// property tests exercise exactly the burst generator the READDUO_FAULTS
/// "bch" class uses at runtime.
std::vector<unsigned> injected_burst(unsigned e, std::uint64_t key,
                                     unsigned nbits) {
  const faults::FaultEngine engine(faults::FaultPlan::parse(
      "seed=31;bch:p=1,e=" + std::to_string(e)));
  return engine.bch_error_positions(key, key * 7 + 1, nbits);
}

TEST(BchProperties, CorrectsEveryWeightUpToT) {
  // e <= t = 8 errors anywhere in the codeword must decode back to the
  // original word with exactly e corrections.
  const ecc::BchCode code(10, 8, 512);
  Rng rng(11);
  for (unsigned e = 1; e <= 8; ++e) {
    for (int trial = 0; trial < 5; ++trial) {
      const BitVec original = code.encode(random_bits(rng, 512));
      BitVec noisy = original;
      // Random distinct positions per (e, trial).
      std::vector<unsigned> flips;
      while (flips.size() < e) {
        const unsigned p = static_cast<unsigned>(
            rng.uniform_below(code.codeword_bits()));
        bool dup = false;
        for (unsigned q : flips) dup = dup || q == p;
        if (!dup) flips.push_back(p);
      }
      for (unsigned p : flips) noisy.set(p, !noisy.get(p));
      const ecc::BchDecodeResult dec = code.decode(noisy);
      EXPECT_TRUE(dec.corrected) << "e=" << e << " trial " << trial;
      EXPECT_EQ(dec.num_corrected, e) << "e=" << e << " trial " << trial;
      EXPECT_TRUE(noisy == original) << "e=" << e << " trial " << trial;
    }
  }
}

TEST(BchProperties, BoundaryWeightsDetectNeverMiscorrect) {
  // 9 <= e <= 17 errors are past the correction radius: the original
  // codeword is unreachable (distance e > t), so a "corrected" outcome
  // would be a miscorrection to a *different* codeword — silent
  // corruption. For these injector-generated bursts the decoder must
  // report detected-uncorrectable, and decode_verified must agree.
  const ecc::BchCode code(10, 8, 512);
  Rng rng(12);
  for (unsigned e = 9; e <= 17; ++e) {
    for (int trial = 0; trial < 5; ++trial) {
      const BitVec original = code.encode(random_bits(rng, 512));
      const std::vector<unsigned> flips =
          injected_burst(e, e * 100 + static_cast<unsigned>(trial),
                         code.codeword_bits());
      ASSERT_EQ(flips.size(), e);
      BitVec noisy = original;
      for (unsigned p : flips) noisy.set(p, !noisy.get(p));

      BitVec plain = noisy;
      const ecc::BchDecodeResult dec = code.decode(plain);
      EXPECT_FALSE(dec.corrected) << "e=" << e << " trial " << trial;
      EXPECT_TRUE(dec.detected_uncorrectable)
          << "e=" << e << " trial " << trial;

      BitVec verified = noisy;
      const ecc::BchDecodeResult vdec = code.decode_verified(verified);
      EXPECT_FALSE(vdec.corrected) << "e=" << e << " trial " << trial;
      EXPECT_TRUE(vdec.detected_uncorrectable)
          << "e=" << e << " trial " << trial;
    }
  }
}

TEST(SecdedProperties, InjectedSingleAndDoubleErrorsCrossCheck) {
  // The TLC baseline's (72, 64) SECDED, cross-checked with flip positions
  // drawn through the same injector: 1 flip corrects, 2 flips are
  // detected as a double error (never silently accepted).
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t data = rng.next();
    const std::uint8_t checks = ecc::Secded7264::encode_checks(data);
    const std::vector<unsigned> pos = injected_burst(
        /*e=*/9, /*key=*/static_cast<std::uint64_t>(trial),
        ecc::Secded7264::kCodeBits);

    {  // single error in the data half
      std::uint64_t d = data ^ (1ull << (pos[0] % 64));
      std::uint8_t c = checks;
      const ecc::SecdedResult r = ecc::Secded7264::decode(d, c);
      EXPECT_TRUE(r.ok) << trial;
      EXPECT_EQ(r.num_corrected, 1u) << trial;
      EXPECT_EQ(d, data) << trial;
    }
    {  // double error: two distinct data bits
      const unsigned b0 = pos[0] % 64;
      unsigned b1 = pos[1] % 64;
      if (b1 == b0) b1 = (b1 + 1) % 64;
      std::uint64_t d = data ^ (1ull << b0) ^ (1ull << b1);
      std::uint8_t c = checks;
      const ecc::SecdedResult r = ecc::Secded7264::decode(d, c);
      EXPECT_FALSE(r.ok) << trial;
      EXPECT_TRUE(r.double_error) << trial;
    }
  }
}

// --- Drift model properties -------------------------------------------------

class LerMonotone : public ::testing::TestWithParam<unsigned> {};

TEST_P(LerMonotone, LerNondecreasingInTime) {
  const unsigned e = GetParam();
  drift::LerCalculator calc{drift::ErrorModel(drift::r_metric())};
  double prev = 0.0;
  for (double t = 2.0; t <= 1e5; t *= 3.0) {
    const double v = calc.ler(e, t);
    EXPECT_GE(v, prev - 1e-18) << "E=" << e << " t=" << t;
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Es, LerMonotone,
                         ::testing::Values(0u, 1u, 4u, 8u, 17u));

TEST(DriftProperties, StrongerCodeAlwaysHelps) {
  drift::LerCalculator calc{drift::ErrorModel(drift::r_metric())};
  for (double t : {8.0, 64.0, 640.0}) {
    for (unsigned e = 0; e < 17; ++e) {
      EXPECT_GE(calc.ler(e, t), calc.ler(e + 1, t)) << t << " " << e;
    }
  }
}

TEST(DriftProperties, MoreCellsMoreErrors) {
  const drift::ErrorModel model(drift::r_metric());
  drift::LineGeometry small{256, 0};
  drift::LineGeometry big{512, 80};
  drift::LerCalculator a{model, small};
  drift::LerCalculator b{model, big};
  EXPECT_LT(a.ler(8, 640.0), b.ler(8, 640.0));
}

// --- Renewal identities -----------------------------------------------------

TEST(ScrubAgeProperties, RewriteProbabilityIsRenewalRate) {
  // One rewrite per renewal interval, one scrub per S:
  // rewrite_probability == S / mean_rewrite_interval.
  const drift::ErrorModel model(drift::r_metric());
  for (double s : {8.0, 64.0}) {
    readduo::ScrubAgeSampler sampler(model, 296, s, 1);
    EXPECT_NEAR(sampler.rewrite_probability(),
                s / sampler.mean_rewrite_interval(), 1e-9);
  }
}

TEST(ScrubAgeProperties, SampledAgesRespectRenewalMean) {
  // Steady-state mean age <= mean interval (ages live inside intervals).
  const drift::ErrorModel model(drift::r_metric());
  readduo::ScrubAgeSampler sampler(model, 296, 8.0, 1);
  Rng rng(4);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += sampler.sample(rng);
  EXPECT_GT(sum / n, 8.0);  // intervals span many scrubs
}

// --- Simulator failure injection / edge configs ------------------------------

memsim::SimResult run_cfg(const trace::Workload& w, memsim::SimConfig cfg,
                          readduo::SchemeKind kind) {
  readduo::SchemeEnv env = memsim::make_scheme_env(w, cfg.cpu, cfg.seed);
  auto scheme = readduo::make_scheme(kind, env);
  memsim::Simulator sim(cfg, *scheme, w);
  return sim.run();
}

TEST(SimulatorEdge, TinyWriteQueueStillMakesProgress) {
  const auto& w = trace::workload_by_name("lbm");
  memsim::SimConfig cfg;
  cfg.instructions_per_core = 100'000;
  cfg.write_queue_depth = 1;
  const memsim::SimResult r = run_cfg(w, cfg, readduo::SchemeKind::kIdeal);
  EXPECT_EQ(r.instructions, 400'000u);
  EXPECT_GT(r.writes_serviced, 0u);
}

TEST(SimulatorEdge, SingleCoreRuns) {
  const auto& w = trace::workload_by_name("mcf");
  memsim::SimConfig cfg;
  cfg.instructions_per_core = 100'000;
  cfg.cpu.num_cores = 1;
  const memsim::SimResult r = run_cfg(w, cfg, readduo::SchemeKind::kHybrid);
  EXPECT_EQ(r.instructions, 100'000u);
}

TEST(SimulatorEdge, ReadOnlyWorkload) {
  trace::Workload w = trace::workload_by_name("sphinx3");
  w.wpki = 1e-9;  // effectively read-only
  memsim::SimConfig cfg;
  cfg.instructions_per_core = 100'000;
  const memsim::SimResult r = run_cfg(w, cfg, readduo::SchemeKind::kMMetric);
  EXPECT_GT(r.reads_serviced, 0u);
}

TEST(SimulatorEdge, AlwaysStallingCoreIsStrictlyOrdered) {
  const auto& w = trace::workload_by_name("bzip2");
  memsim::SimConfig cfg;
  cfg.instructions_per_core = 100'000;
  cfg.cpu.read_stall_fraction = 1.0;
  const memsim::SimResult r = run_cfg(w, cfg, readduo::SchemeKind::kIdeal);
  EXPECT_EQ(r.instructions, 400'000u);
}

TEST(SimulatorEdge, NeverCancellingWritesCompletes) {
  const auto& w = trace::workload_by_name("lbm");
  memsim::SimConfig cfg;
  cfg.instructions_per_core = 100'000;
  cfg.max_write_cancellations = 0;
  const memsim::SimResult r = run_cfg(w, cfg, readduo::SchemeKind::kIdeal);
  EXPECT_EQ(r.write_cancellations, 0u);
  EXPECT_EQ(r.instructions, 400'000u);
}

// --- All 14 workloads, all schemes, smoke determinism ------------------------

class WorkloadSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSweep, AllSchemesRunDeterministically) {
  const auto& w = trace::workload_by_name(GetParam());
  for (auto kind : {readduo::SchemeKind::kIdeal, readduo::SchemeKind::kTlc,
                    readduo::SchemeKind::kScrubbing,
                    readduo::SchemeKind::kScrubbingW0,
                    readduo::SchemeKind::kMMetric,
                    readduo::SchemeKind::kHybrid, readduo::SchemeKind::kLwt,
                    readduo::SchemeKind::kSelect}) {
    memsim::SimConfig cfg;
    cfg.instructions_per_core = 50'000;
    const memsim::SimResult a = run_cfg(w, cfg, kind);
    const memsim::SimResult b = run_cfg(w, cfg, kind);
    ASSERT_GT(a.exec_time.v, 0);
    ASSERT_EQ(a.exec_time.v, b.exec_time.v);
    ASSERT_EQ(a.reads_serviced, b.reads_serviced);
  }
}

INSTANTIATE_TEST_SUITE_P(
    All14, WorkloadSweep,
    ::testing::Values("astar", "bwaves", "bzip2", "gcc", "GemsFDTD", "lbm",
                      "leslie3d", "libquantum", "mcf", "milc", "omnetpp",
                      "soplex", "sphinx3", "xalancbmk"));

// --- Scheme interplay -------------------------------------------------------

TEST(SchemeInterplay, ConvertedWriteResetsSelectWindow) {
  readduo::SchemeEnv env;
  env.seed = 5;
  env.footprint_lines = 1u << 16;
  env.archive_lines = 1u << 14;
  env.zipf_s = 0.5;
  env.per_core_write_rate = 1e5;
  auto s = readduo::make_scheme(readduo::SchemeKind::kSelect, env);
  // Conversion writes are full-line; a demand write soon after must be
  // differential (within the 320 s window of that full write).
  s->on_converted_write(77, Ns{0});
  const readduo::WriteOutcome w = s->on_write(77, from_seconds(5.0));
  EXPECT_FALSE(w.full_line);
}

TEST(SchemeInterplay, ScrubbingW0CostsMoreThanW1) {
  const auto& w = trace::workload_by_name("bzip2");
  memsim::SimConfig cfg;
  cfg.instructions_per_core = 300'000;
  readduo::SchemeEnv env = memsim::make_scheme_env(w, cfg.cpu, 9);

  auto w1 = readduo::make_scheme(readduo::SchemeKind::kScrubbing, env);
  memsim::Simulator sim1(cfg, *w1, w);
  const memsim::SimResult r1 = sim1.run();

  auto w0 = readduo::make_scheme(readduo::SchemeKind::kScrubbingW0, env);
  memsim::Simulator sim0(cfg, *w0, w);
  const memsim::SimResult r0 = sim0.run();

  // W=0 rewrites every line at every scrub: far more endurance and energy.
  EXPECT_GT(w0->counters().cell_writes, 2 * w1->counters().cell_writes);
  EXPECT_GT(w0->counters().scrub_energy_pj, w1->counters().scrub_energy_pj);
  EXPECT_GE(r0.exec_time.v, r1.exec_time.v);
}

}  // namespace
}  // namespace rd
