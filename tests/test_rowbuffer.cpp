// Tests for the optional open-page row-buffer model (extension).
#include <gtest/gtest.h>

#include "memsim/env.h"
#include "memsim/simulator.h"
#include "readduo/schemes.h"
#include "trace/workload.h"

namespace rd::memsim {
namespace {

SimResult run(const trace::Workload& w, SimConfig cfg) {
  readduo::SchemeEnv env = make_scheme_env(w, cfg.cpu, cfg.seed);
  auto scheme = readduo::make_scheme(readduo::SchemeKind::kIdeal, env);
  Simulator sim(cfg, *scheme, w);
  return sim.run();
}

SimConfig base_config() {
  SimConfig cfg;
  cfg.instructions_per_core = 200'000;
  cfg.seed = 31;
  return cfg;
}

TEST(RowBuffer, DisabledByDefaultNoHits) {
  const auto& w = trace::workload_by_name("gcc");
  const SimResult r = run(w, base_config());
  EXPECT_EQ(r.row_hits, 0u);
}

TEST(RowBuffer, LocalWorkloadsGetHits) {
  // gcc's zipf 0.9 concentrates accesses: the same hot rows re-open.
  const auto& w = trace::workload_by_name("gcc");
  SimConfig cfg = base_config();
  cfg.row_buffer.enabled = true;
  const SimResult r = run(w, cfg);
  EXPECT_GT(r.row_hits, 0u);
}

TEST(RowBuffer, HitsReduceReadLatency) {
  // (Execution time can wobble either way — faster reads reshuffle the
  // event schedule — but the served read latency must drop.)
  const auto& w = trace::workload_by_name("gcc");
  SimConfig off = base_config();
  SimConfig on = base_config();
  on.row_buffer.enabled = true;
  const SimResult r_off = run(w, off);
  const SimResult r_on = run(w, on);
  EXPECT_LT(r_on.avg_read_latency_ns(), r_off.avg_read_latency_ns());
}

TEST(RowBuffer, StreamingWorkloadHitsSequentialRows) {
  // A nearly pure sequential scan: consecutive lines of a bank share a
  // row. Note line%banks interleaving spreads neighbours across banks, so
  // a single-bank config makes the spatial locality visible.
  trace::Workload w = trace::workload_by_name("sphinx3");
  w.archive_read_fraction = 0.95;
  w.wpki = 0.01;
  SimConfig cfg = base_config();
  // One core, one bank: otherwise the four cores' independent scan
  // streams (and bank interleaving) evict each other's rows.
  cfg.cpu.num_cores = 1;
  cfg.org.num_banks = 1;
  cfg.row_buffer.enabled = true;
  const SimResult r = run(w, cfg);
  EXPECT_GT(r.row_hits, r.reads_serviced / 2);
}

TEST(RowBuffer, HitLatencyBoundsRespected) {
  // With hits, average read latency can approach but not go below
  // hit_latency + bus transfer.
  const auto& w = trace::workload_by_name("gcc");
  SimConfig cfg = base_config();
  cfg.row_buffer.enabled = true;
  const SimResult r = run(w, cfg);
  EXPECT_GE(r.avg_read_latency_ns(),
            static_cast<double>(cfg.row_buffer.hit_latency.v));
}

TEST(RowBuffer, WiderRowsMoreHits) {
  const auto& w = trace::workload_by_name("sphinx3");
  SimConfig narrow = base_config();
  narrow.row_buffer.enabled = true;
  narrow.row_buffer.lines_per_row = 4;
  SimConfig wide = base_config();
  wide.row_buffer.enabled = true;
  wide.row_buffer.lines_per_row = 64;
  EXPECT_GT(run(w, wide).row_hits, run(w, narrow).row_hits);
}

}  // namespace
}  // namespace rd::memsim
