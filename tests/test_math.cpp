// Unit tests for the numerical substrate (common/math.h).
#include "common/math.h"

#include "common/check.h"

#include <cmath>
#include <gtest/gtest.h>

namespace rd {
namespace {

TEST(LogAdd, BasicIdentities) {
  EXPECT_NEAR(log_add(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  EXPECT_NEAR(log_add(0.0, 0.0), std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(log_add(kNegInf, std::log(7.0)), std::log(7.0));
  EXPECT_DOUBLE_EQ(log_add(std::log(7.0), kNegInf), std::log(7.0));
  EXPECT_DOUBLE_EQ(log_add(kNegInf, kNegInf), kNegInf);
}

TEST(LogAdd, Commutative) {
  EXPECT_DOUBLE_EQ(log_add(-3.0, -700.0), log_add(-700.0, -3.0));
}

TEST(LogAdd, ExtremeScaleDifference) {
  // Adding something 1e300 times smaller must not change the result.
  EXPECT_DOUBLE_EQ(log_add(0.0, -800.0), 0.0);
}

TEST(LogChoose, SmallValues) {
  EXPECT_NEAR(log_choose(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(log_choose(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(log_choose(10, 10), 0.0, 1e-12);
  EXPECT_NEAR(log_choose(52, 5), std::log(2598960.0), 1e-9);
}

TEST(LogChoose, Symmetry) {
  for (std::uint64_t k = 0; k <= 296; k += 7) {
    EXPECT_NEAR(log_choose(296, k), log_choose(296, 296 - k), 1e-9);
  }
}

TEST(LogChoose, PascalIdentity) {
  // C(n, k) = C(n-1, k-1) + C(n-1, k) in log space.
  for (std::uint64_t k = 1; k < 64; k += 5) {
    const double lhs = log_choose(64, k);
    const double rhs = log_add(log_choose(63, k - 1), log_choose(63, k));
    EXPECT_NEAR(lhs, rhs, 1e-9) << "k=" << k;
  }
}

TEST(LogChoose, RejectsBadArgs) {
  EXPECT_THROW(log_choose(3, 4), CheckFailure);
}

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalSf, ComplementOfCdf) {
  for (double x : {-4.0, -1.5, 0.0, 0.7, 2.5, 5.0}) {
    EXPECT_NEAR(normal_sf(x) + normal_cdf(x), 1.0, 1e-12) << x;
  }
}

TEST(LogNormalSf, MatchesDirectInBulk) {
  for (double x : {-3.0, 0.0, 1.0, 5.0, 10.0, 20.0}) {
    EXPECT_NEAR(log_normal_sf(x), std::log(normal_sf(x)), 1e-9) << x;
  }
}

TEST(LogNormalSf, DeepTailIsFiniteAndMonotone) {
  double prev = log_normal_sf(30.0);
  for (double x = 31.0; x <= 60.0; x += 1.0) {
    const double cur = log_normal_sf(x);
    EXPECT_TRUE(std::isfinite(cur)) << x;
    EXPECT_LT(cur, prev) << x;
    prev = cur;
  }
  // Asymptotic check at x = 40: log Q(x) ~ -x^2/2 - log(x sqrt(2 pi)).
  const double x = 40.0;
  const double approx = -0.5 * x * x - std::log(x * std::sqrt(2.0 * M_PI));
  EXPECT_NEAR(log_normal_sf(x), approx, 0.01);
}

TEST(TruncatedNormalTail, EndpointsClamp) {
  // Beyond the truncation the tail is exactly 0 / 1.
  EXPECT_DOUBLE_EQ(truncated_normal_tail(0.0, 1.0, 2.746, 2.746), 0.0);
  EXPECT_DOUBLE_EQ(truncated_normal_tail(0.0, 1.0, 2.746, 3.5), 0.0);
  EXPECT_DOUBLE_EQ(truncated_normal_tail(0.0, 1.0, 2.746, -2.746), 1.0);
  EXPECT_DOUBLE_EQ(truncated_normal_tail(0.0, 1.0, 2.746, -5.0), 1.0);
}

TEST(TruncatedNormalTail, MedianIsHalf) {
  EXPECT_NEAR(truncated_normal_tail(3.0, 0.5, 2.0, 3.0), 0.5, 1e-12);
}

TEST(TruncatedNormalTail, MonotoneDecreasingInThreshold) {
  double prev = 1.0;
  for (double t = -2.7; t <= 2.7; t += 0.1) {
    const double p = truncated_normal_tail(0.0, 1.0, 2.746, t);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(TruncatedNormalTail, MatchesClosedForm) {
  // (sf(z) - sf(c)) / (1 - 2 sf(c)) for standardized arguments.
  const double c = 2.746;
  for (double t : {-2.0, -0.5, 0.5, 1.0, 2.0, 2.7}) {
    const double expect =
        (normal_sf(t) - normal_sf(c)) / (1.0 - 2.0 * normal_sf(c));
    EXPECT_NEAR(truncated_normal_tail(0.0, 1.0, c, t), expect, 1e-12) << t;
  }
  // Scale/shift invariance: tail(mu + z*sigma) is independent of mu, sigma.
  EXPECT_NEAR(truncated_normal_tail(5.0, 0.25, c, 5.0 + 1.3 * 0.25),
              truncated_normal_tail(0.0, 1.0, c, 1.3), 1e-12);
}

TEST(BinomialPmf, SumsToOne) {
  const double log_p = std::log(0.3);
  double acc = kNegInf;
  for (std::uint64_t k = 0; k <= 20; ++k) {
    acc = log_add(acc, log_binomial_pmf(20, k, log_p));
  }
  EXPECT_NEAR(acc, 0.0, 1e-10);
}

TEST(BinomialPmf, MatchesClosedForm) {
  // Bin(4, 0.5): pmf = {1,4,6,4,1}/16.
  const double log_p = std::log(0.5);
  const double expected[] = {1, 4, 6, 4, 1};
  for (std::uint64_t k = 0; k <= 4; ++k) {
    EXPECT_NEAR(std::exp(log_binomial_pmf(4, k, log_p)), expected[k] / 16.0,
                1e-12);
  }
}

TEST(BinomialTail, MatchesDirectSummation) {
  const double p = 1e-3;
  const double log_p = std::log(p);
  // Direct: P(X > 2) = 1 - pmf(0) - pmf(1) - pmf(2).
  double head = 0.0;
  for (std::uint64_t k = 0; k <= 2; ++k) {
    head += std::exp(log_binomial_pmf(296, k, log_p));
  }
  EXPECT_NEAR(std::exp(log_binomial_tail_gt(296, 2, log_p)), 1.0 - head,
              1e-12);
}

TEST(BinomialTail, TinyProbabilityAccuracy) {
  // P(Bin(296, 1e-6) > 3) ~ C(296,4) p^4: a value near 1e-16 that plain
  // double summation of (1 - ...) could never resolve.
  const double log_p = std::log(1e-6);
  const double expected = std::exp(log_choose(296, 4) + 4 * log_p);
  const double got = std::exp(log_binomial_tail_gt(296, 3, log_p));
  EXPECT_NEAR(got / expected, 1.0, 1e-2);
}

TEST(BinomialTail, EdgeCases) {
  EXPECT_DOUBLE_EQ(log_binomial_tail_gt(10, 10, std::log(0.5)), kNegInf);
  EXPECT_DOUBLE_EQ(log_binomial_tail_gt(10, 12, std::log(0.5)), kNegInf);
  EXPECT_DOUBLE_EQ(log_binomial_tail_gt(10, 0, kNegInf), kNegInf);
  // P(X > 0) = 1 - (1-p)^n.
  const double p = 0.01;
  EXPECT_NEAR(std::exp(log_binomial_tail_gt(100, 0, std::log(p))),
              1.0 - std::pow(1.0 - p, 100), 1e-10);
}

class QuadratureOrder : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuadratureOrder, IntegratesPolynomialsExactly) {
  // n-point Gauss-Legendre is exact for degree 2n-1.
  const std::size_t n = GetParam();
  const std::size_t degree = 2 * n - 1;
  auto f = [degree](double x) { return std::pow(x, degree); };
  // Integral of x^d over [0, 1] = 1/(d+1).
  EXPECT_NEAR(integrate(f, 0.0, 1.0, n),
              1.0 / static_cast<double>(degree + 1), 1e-10)
      << "n=" << n;
}

TEST_P(QuadratureOrder, WeightsSumToTwo) {
  const QuadratureRule& rule = gauss_legendre(GetParam());
  double sum = 0.0;
  for (double w : rule.weights) sum += w;
  EXPECT_NEAR(sum, 2.0, 1e-12);
}

TEST_P(QuadratureOrder, NodesSymmetricAndSorted) {
  const QuadratureRule& rule = gauss_legendre(GetParam());
  const std::size_t n = rule.nodes.size();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    EXPECT_LT(rule.nodes[i], rule.nodes[i + 1]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(rule.nodes[i], -rule.nodes[n - 1 - i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, QuadratureOrder,
                         ::testing::Values(2, 3, 4, 8, 16, 32, 64, 128));

TEST(Integrate, GaussianMass) {
  auto pdf = [](double z) {
    return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
  };
  EXPECT_NEAR(integrate(pdf, -8.0, 8.0, 64), 1.0, 1e-10);
}

TEST(Quadrature, RejectsBadOrder) {
  EXPECT_THROW(gauss_legendre(1), CheckFailure);
  EXPECT_THROW(gauss_legendre(500), CheckFailure);
}

}  // namespace
}  // namespace rd
