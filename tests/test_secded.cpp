// Tests for the (72,64) SECDED code used by the TLC baseline.
#include "ecc/secded.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rd::ecc {
namespace {

TEST(Secded, CleanWordPasses) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    std::uint64_t d = rng.next();
    std::uint8_t c = Secded7264::encode_checks(d);
    const std::uint64_t orig = d;
    const SecdedResult r = Secded7264::decode(d, c);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.num_corrected, 0u);
    EXPECT_FALSE(r.double_error);
    EXPECT_EQ(d, orig);
  }
}

class SecdedDataBit : public ::testing::TestWithParam<unsigned> {};

TEST_P(SecdedDataBit, SingleDataErrorCorrected) {
  const unsigned bit = GetParam();
  Rng rng(2 + bit);
  for (int i = 0; i < 10; ++i) {
    std::uint64_t d = rng.next();
    std::uint8_t c = Secded7264::encode_checks(d);
    const std::uint64_t orig = d;
    d ^= 1ull << bit;
    const SecdedResult r = Secded7264::decode(d, c);
    ASSERT_TRUE(r.ok) << "bit " << bit;
    EXPECT_EQ(r.num_corrected, 1u);
    EXPECT_EQ(d, orig);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBits, SecdedDataBit, ::testing::Range(0u, 64u));

class SecdedCheckBit : public ::testing::TestWithParam<unsigned> {};

TEST_P(SecdedCheckBit, SingleCheckErrorCorrected) {
  const unsigned bit = GetParam();
  Rng rng(100 + bit);
  std::uint64_t d = rng.next();
  std::uint8_t c = Secded7264::encode_checks(d);
  const std::uint64_t orig = d;
  c = static_cast<std::uint8_t>(c ^ (1u << bit));
  const SecdedResult r = Secded7264::decode(d, c);
  ASSERT_TRUE(r.ok) << "check bit " << bit;
  EXPECT_EQ(r.num_corrected, 1u);
  EXPECT_EQ(d, orig);
  // Check bits restored too.
  EXPECT_EQ(c, Secded7264::encode_checks(d));
}

INSTANTIATE_TEST_SUITE_P(AllChecks, SecdedCheckBit, ::testing::Range(0u, 8u));

TEST(Secded, DoubleDataErrorsDetected) {
  Rng rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    std::uint64_t d = rng.next();
    std::uint8_t c = Secded7264::encode_checks(d);
    const unsigned b1 = static_cast<unsigned>(rng.uniform_below(64));
    unsigned b2 = static_cast<unsigned>(rng.uniform_below(64));
    while (b2 == b1) b2 = static_cast<unsigned>(rng.uniform_below(64));
    d ^= (1ull << b1) ^ (1ull << b2);
    const SecdedResult r = Secded7264::decode(d, c);
    EXPECT_FALSE(r.ok) << b1 << "," << b2;
    EXPECT_TRUE(r.double_error);
  }
}

TEST(Secded, DataPlusCheckDoubleErrorDetected) {
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    std::uint64_t d = rng.next();
    std::uint8_t c = Secded7264::encode_checks(d);
    d ^= 1ull << rng.uniform_below(64);
    c = static_cast<std::uint8_t>(c ^ (1u << rng.uniform_below(7)));
    const SecdedResult r = Secded7264::decode(d, c);
    EXPECT_TRUE(r.double_error || (r.ok && r.num_corrected == 1));
    // With one data + one Hamming-check error, parity sees two flips:
    // must not report a clean pass.
    EXPECT_FALSE(r.ok && r.num_corrected == 0);
  }
}

TEST(Secded, ChecksDependOnData) {
  EXPECT_NE(Secded7264::encode_checks(0x1ull),
            Secded7264::encode_checks(0x2ull));
  EXPECT_EQ(Secded7264::encode_checks(0ull), 0u);
}

}  // namespace
}  // namespace rd::ecc
