// Unit tests for the deterministic RNG and its distributions.
#include "common/rng.h"

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"

namespace rd {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedResetsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, UniformInRange) {
  Rng r(3);
  for (int i = 0; i < 100000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMoments) {
  Rng r(4);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    sum += u;
    sq += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
  EXPECT_NEAR(sq / n - 0.25, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformBelowBounds) {
  Rng r(5);
  for (std::uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(r.uniform_below(n), n);
  }
  EXPECT_THROW(r.uniform_below(0), CheckFailure);
}

TEST(Rng, UniformBelowUnbiased) {
  Rng r(6);
  std::vector<int> counts(7, 0);
  const int n = 140000;
  for (int i = 0; i < n; ++i) ++counts[r.uniform_below(7)];
  for (int c : counts) EXPECT_NEAR(c, n / 7.0, 5.0 * std::sqrt(n / 7.0));
}

TEST(Rng, NormalMoments) {
  Rng r(8);
  double sum = 0.0, sq = 0.0, cube = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = r.normal();
    sum += z;
    sq += z * z;
    cube += z * z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
  EXPECT_NEAR(cube / n, 0.0, 0.05);
}

TEST(Rng, NormalScaled) {
  Rng r(9);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(5.0, 0.25);
    sum += x;
    sq += (x - 5.0) * (x - 5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.01);
  EXPECT_NEAR(std::sqrt(sq / n), 0.25, 0.01);
  EXPECT_THROW(r.normal(0.0, -1.0), CheckFailure);
}

TEST(Rng, TruncatedNormalRespectsBounds) {
  Rng r(10);
  for (int i = 0; i < 100000; ++i) {
    const double x = r.truncated_normal(2.0, 0.5, 2.746);
    ASSERT_GE(x, 2.0 - 2.746 * 0.5);
    ASSERT_LE(x, 2.0 + 2.746 * 0.5);
  }
}

TEST(Rng, TruncatedNormalZeroSigma) {
  Rng r(11);
  EXPECT_DOUBLE_EQ(r.truncated_normal(3.0, 0.0, 2.0), 3.0);
}

class BinomialParams
    : public ::testing::TestWithParam<std::pair<std::uint32_t, double>> {};

TEST_P(BinomialParams, MeanAndVarianceMatch) {
  const auto [n, p] = GetParam();
  Rng r(12);
  const int trials = 40000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < trials; ++i) {
    const double x = r.binomial(n, p);
    ASSERT_LE(x, static_cast<double>(n));
    sum += x;
    sq += x * x;
  }
  const double mean = sum / trials;
  const double var = sq / trials - mean * mean;
  const double want_mean = n * p;
  const double want_var = n * p * (1.0 - p);
  const double tol = 6.0 * std::sqrt(want_var / trials + 1e-12) + 1e-3;
  EXPECT_NEAR(mean, want_mean, std::max(tol, 0.02 * want_mean + 1e-3));
  if (want_var > 0.01) {
    EXPECT_NEAR(var, want_var, 0.1 * want_var + 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BinomialParams,
    ::testing::Values(std::pair<std::uint32_t, double>{296, 1e-4},
                      std::pair<std::uint32_t, double>{296, 5e-3},
                      std::pair<std::uint32_t, double>{296, 0.25},
                      std::pair<std::uint32_t, double>{296, 0.9},
                      std::pair<std::uint32_t, double>{16, 0.5},
                      std::pair<std::uint32_t, double>{1000, 0.2},
                      std::pair<std::uint32_t, double>{4, 0.01}));

TEST(Rng, BinomialEdges) {
  Rng r(13);
  EXPECT_EQ(r.binomial(0, 0.5), 0u);
  EXPECT_EQ(r.binomial(100, 0.0), 0u);
  EXPECT_EQ(r.binomial(100, 1.0), 100u);
  EXPECT_THROW(r.binomial(10, 1.5), CheckFailure);
}

TEST(Rng, GeometricMean) {
  Rng r(14);
  const double p = 0.2;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.geometric(p));
  // Mean of failures-before-success = (1-p)/p = 4.
  EXPECT_NEAR(sum / n, (1.0 - p) / p, 0.1);
  EXPECT_EQ(r.geometric(1.0), 0u);
  EXPECT_THROW(r.geometric(0.0), CheckFailure);
}

TEST(Rng, ZipfUniformWhenSZero) {
  Rng r(15);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.zipf(10, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, n / 10.0, 6.0 * std::sqrt(n / 10.0));
}

class ZipfExponent : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponent, FrequenciesFollowPowerLaw) {
  const double s = GetParam();
  Rng r(16);
  const std::uint64_t universe = 10000;
  std::map<std::uint64_t, int> counts;
  const int n = 300000;
  for (int i = 0; i < n; ++i) ++counts[r.zipf(universe, s)];
  // Rank-1 over rank-10 frequency ratio should be ~10^s.
  const double c1 = counts[0];
  const double c10 = std::max(counts[9], 1);
  const double expected = std::pow(10.0, s);
  EXPECT_NEAR(c1 / c10, expected, 0.5 * expected + 1.5) << "s=" << s;
  // All draws inside the universe.
  EXPECT_LT(counts.rbegin()->first, universe);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ZipfExponent,
                         ::testing::Values(0.3, 0.5, 0.8, 1.0, 1.3));

TEST(Rng, ZipfSingleton) {
  Rng r(17);
  EXPECT_EQ(r.zipf(1, 0.9), 0u);
}

}  // namespace
}  // namespace rd
