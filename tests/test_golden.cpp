// Golden-file tests: the READDUO_METRICS document and one fig9-class run
// record are rendered in-process and compared field-by-field against
// committed JSON files (float fields with tolerance, counters exactly).
// They pin two contracts at once: the export schema (a renamed or dropped
// field fails loudly) and zero-overhead-when-off (the goldens were
// produced with faults off, so any fault-machinery leakage into clean
// runs shows up as a value drift).
//
// Regenerate with READDUO_REGEN_GOLDEN=1 (the test then writes the file
// and skips); goldens live in tests/golden/ (RD_GOLDEN_DIR).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "common/env.h"
#include "harness.h"
#include "readduo/schemes.h"
#include "trace/workload.h"

namespace rd {
namespace {

/// Scoped environment-variable override; restores the old value on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = env_cstr(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

// --- a minimal JSON flattener ----------------------------------------------
// Good enough for the repo's own JsonWriter output: objects, arrays,
// strings, and bare number tokens. Produces path -> raw-token pairs like
// "runs[0].latency.r_read.p99_ns" -> "1234".

using FlatJson = std::map<std::string, std::string>;

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

std::string parse_string(const std::string& s, std::size_t& i) {
  std::string out;
  if (i >= s.size() || s[i] != '"') {
    ADD_FAILURE() << "expected string at offset " << i;
    return out;
  }
  ++i;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\' && i + 1 < s.size()) {
      out += s[i];
      ++i;
    }
    out += s[i];
    ++i;
  }
  if (i >= s.size()) {
    ADD_FAILURE() << "unterminated string";
    return out;
  }
  ++i;  // closing quote
  return out;
}

void parse_value(const std::string& s, std::size_t& i, const std::string& path,
                 FlatJson& out);

void parse_object(const std::string& s, std::size_t& i,
                  const std::string& path, FlatJson& out) {
  ++i;  // '{'
  skip_ws(s, i);
  if (i < s.size() && s[i] == '}') {
    ++i;
    return;
  }
  while (i < s.size()) {
    skip_ws(s, i);
    std::string key = parse_string(s, i);
    skip_ws(s, i);
    ASSERT_TRUE(i < s.size() && s[i] == ':') << "expected ':' at " << i;
    ++i;
    parse_value(s, i, path.empty() ? key : path + "." + key, out);
    skip_ws(s, i);
    ASSERT_TRUE(i < s.size()) << "unterminated object";
    if (s[i] == ',') {
      ++i;
      continue;
    }
    ASSERT_EQ(s[i], '}') << "expected '}' at " << i;
    ++i;
    return;
  }
}

void parse_array(const std::string& s, std::size_t& i, const std::string& path,
                 FlatJson& out) {
  ++i;  // '['
  skip_ws(s, i);
  if (i < s.size() && s[i] == ']') {
    ++i;
    return;
  }
  std::size_t index = 0;
  while (i < s.size()) {
    parse_value(s, i, path + "[" + std::to_string(index++) + "]", out);
    skip_ws(s, i);
    ASSERT_TRUE(i < s.size()) << "unterminated array";
    if (s[i] == ',') {
      ++i;
      skip_ws(s, i);
      continue;
    }
    ASSERT_EQ(s[i], ']') << "expected ']' at " << i;
    ++i;
    return;
  }
}

void parse_value(const std::string& s, std::size_t& i, const std::string& path,
                 FlatJson& out) {
  skip_ws(s, i);
  ASSERT_TRUE(i < s.size()) << "missing value for " << path;
  if (s[i] == '{') {
    parse_object(s, i, path, out);
  } else if (s[i] == '[') {
    parse_array(s, i, path, out);
  } else if (s[i] == '"') {
    out[path] = "\"" + parse_string(s, i) + "\"";
  } else {
    std::size_t start = i;
    while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']' &&
           !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    out[path] = s.substr(start, i - start);
  }
}

FlatJson flatten(const std::string& text) {
  FlatJson out;
  std::size_t i = 0;
  parse_value(text, i, "", out);
  return out;
}

/// Leaf key of a path ("runs[0].wall_ms" -> "wall_ms").
std::string leaf_of(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  std::string leaf = dot == std::string::npos ? path : path.substr(dot + 1);
  const std::size_t bracket = leaf.find('[');
  if (bracket != std::string::npos) leaf.resize(bracket);
  return leaf;
}

bool parse_number(const std::string& t, double& v) {
  char* end = nullptr;
  v = std::strtod(t.c_str(), &end);
  return end != nullptr && *end == '\0' && end != t.c_str();
}

bool looks_float(const std::string& t) {
  return t.find('.') != std::string::npos ||
         t.find('e') != std::string::npos || t.find('E') != std::string::npos;
}

/// Field-by-field comparison: identical key sets (minus ignored leaves),
/// exact match for strings and integer counters, small relative tolerance
/// for float fields (they round-trip through text).
void expect_json_matches(const std::string& golden_text,
                         const std::string& actual_text,
                         const std::set<std::string>& ignored_leaves) {
  const FlatJson golden = flatten(golden_text);
  const FlatJson actual = flatten(actual_text);
  for (const auto& [path, gval] : golden) {
    if (ignored_leaves.count(leaf_of(path)) != 0) continue;
    const auto it = actual.find(path);
    if (it == actual.end()) {
      ADD_FAILURE() << "field missing from actual output: " << path;
      continue;
    }
    const std::string& aval = it->second;
    double g = 0.0, a = 0.0;
    if (parse_number(gval, g) && parse_number(aval, a) &&
        (looks_float(gval) || looks_float(aval))) {
      const double tol = 1e-9 * std::max({1.0, std::abs(g), std::abs(a)});
      EXPECT_NEAR(a, g, tol) << path;
    } else {
      EXPECT_EQ(aval, gval) << path;
    }
  }
  for (const auto& [path, aval] : actual) {
    if (ignored_leaves.count(leaf_of(path)) != 0) continue;
    EXPECT_NE(golden.find(path), golden.end())
        << "unexpected new field in actual output: " << path
        << " (regenerate goldens with READDUO_REGEN_GOLDEN=1 if the schema "
           "grew on purpose)";
  }
}

std::string golden_path(const char* name) {
  return std::string(RD_GOLDEN_DIR) + "/" + name;
}

/// Regen mode: overwrite the golden and skip. Returns true when handled.
bool maybe_regen(const char* name, const std::string& body) {
  const char* e = env_cstr("READDUO_REGEN_GOLDEN");
  if (e == nullptr || std::string(e) != "1") return false;
  std::ofstream out(golden_path(name));
  out << body;
  return true;
}

std::string read_golden(const char* name) {
  std::ifstream in(golden_path(name));
  EXPECT_TRUE(static_cast<bool>(in))
      << "missing golden " << golden_path(name)
      << " — regenerate with READDUO_REGEN_GOLDEN=1";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Wall-clock fields are the only nondeterministic part of the export once
// the cache is off and THREADS is pinned.
const std::set<std::string>& time_fields() {
  static const std::set<std::string> kIgnore = {"wall_ms", "sim_wall_ms",
                                                "max_run_ms"};
  return kIgnore;
}

// --- the goldens ------------------------------------------------------------

TEST(Golden, Fig9ClassRunRecord) {
  ScopedEnv cache("READDUO_CACHE", "0");
  ScopedEnv instr("READDUO_INSTR", "60000");
  ScopedEnv threads("READDUO_THREADS", "1");
  const trace::Workload& w = trace::workload_by_name("mcf");
  const bench::RunResult r =
      bench::run_scheme(readduo::SchemeKind::kHybrid, w, {}, /*seed=*/42);
  const std::string body =
      bench::detail::render_run_json(w.name, 42, /*cached=*/false,
                                     /*wall_ms=*/0.0, r) +
      "\n";
  if (maybe_regen("fig9_hybrid_mcf.json", body)) {
    GTEST_SKIP() << "regenerated fig9_hybrid_mcf.json";
  }
  expect_json_matches(read_golden("fig9_hybrid_mcf.json"), body,
                      time_fields());
}

TEST(Golden, MetricsDocumentV2) {
  ScopedEnv cache("READDUO_CACHE", "0");
  ScopedEnv instr("READDUO_INSTR", "20000");
  ScopedEnv threads("READDUO_THREADS", "1");
  ScopedEnv metrics("READDUO_METRICS", "1");  // record runs for the export
  bench::set_bench_name("golden");
  bench::run_scheme(readduo::SchemeKind::kScrubbing,
                    trace::workload_by_name("mcf"), {}, /*seed=*/42);
  bench::run_scheme(readduo::SchemeKind::kLwt,
                    trace::workload_by_name("lbm"), {}, /*seed=*/7);
  const std::string body = bench::detail::render_metrics_json();
  if (maybe_regen("metrics_golden.json", body)) {
    GTEST_SKIP() << "regenerated metrics_golden.json";
  }
  // cache_hits/cache_misses are process-global harness counters: their
  // values depend on which other tests ran in this process (ctest runs
  // one test per process, a bare ./test_golden runs both), so only the
  // per-run simulation counters are pinned exactly.
  std::set<std::string> ignored = time_fields();
  ignored.insert("cache_hits");
  ignored.insert("cache_misses");
  expect_json_matches(read_golden("metrics_golden.json"), body, ignored);
}

}  // namespace
}  // namespace rd
