// Compile-and-run probe for common/thread_annotations.h: the annotated
// rd::Mutex / rd::MutexLock / rd::CondVar must behave exactly like the
// std primitives they wrap, under Clang (where the RD_* macros feed the
// -Wthread-safety analysis) and under GCC (where they expand to nothing).
// The negative side — that -Werror=thread-safety really rejects an
// unguarded access — is proven by tests/annotation_probes/bad_guarded.cpp
// in the run_static_analysis.sh Clang stage.
#include "common/thread_annotations.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace {

// The canonical guarded-counter shape: field annotated with its
// capability, accessors annotated with what they acquire or require.
class Counter {
 public:
  void bump() RD_EXCLUDES(mu_) {
    rd::MutexLock g(mu_);
    ++value_;
  }

  std::int64_t read() RD_EXCLUDES(mu_) {
    rd::MutexLock g(mu_);
    return value_;
  }

 private:
  rd::Mutex mu_;
  std::int64_t value_ RD_GUARDED_BY(mu_) = 0;
};

TEST(ThreadAnnotations, MutexLockExcludesRaces) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kBumps = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kBumps; ++i) c.bump();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.read(), static_cast<std::int64_t>(kThreads) * kBumps);
}

TEST(ThreadAnnotations, TryLockReportsContention) {
  rd::Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock());  // non-recursive: second attempt fails
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

// The service/pool signal protocol in miniature: a producer publishes
// under the mutex and notifies; the consumer open-codes the predicate
// loop exactly as memory_service.cpp and parallel.cpp do (predicate
// lambdas would be analyzed as unannotated functions).
class Mailbox {
 public:
  void post(int v) RD_EXCLUDES(mu_) {
    {
      rd::MutexLock g(mu_);
      value_ = v;
      posted_ = true;
    }
    cv_.notify_one();
  }

  int take() RD_EXCLUDES(mu_) {
    rd::MutexLock g(mu_);
    while (!posted_) cv_.wait(mu_);
    posted_ = false;
    return value_;
  }

 private:
  rd::Mutex mu_;
  rd::CondVar cv_;
  bool posted_ RD_GUARDED_BY(mu_) = false;
  int value_ RD_GUARDED_BY(mu_) = 0;
};

TEST(ThreadAnnotations, CondVarWaitsForPredicate) {
  Mailbox box;
  std::thread producer([&box] { box.post(42); });
  EXPECT_EQ(box.take(), 42);
  producer.join();
}

TEST(ThreadAnnotations, CondVarRoundTrips) {
  Mailbox box;
  std::thread producer([&box] {
    for (int i = 0; i < 100; ++i) box.post(i);
  });
  // The consumer can observe fewer posts than sent (posts coalesce when
  // the consumer lags), but values it does see arrive in order and the
  // final value always lands.
  int last = -1;
  while (last != 99) {
    const int got = box.take();
    EXPECT_GT(got, last);
    last = got;
  }
  producer.join();
}

}  // namespace
