// Optimized-vs-reference kernel equivalence (DESIGN.md §10).
//
// Every rewritten hot-path kernel keeps its straight-line reference
// implementation selectable, and the contract is strict value equality:
// not "close", but the same bits. These tests pin that contract — each
// one runs the identical workload through both implementations and
// EXPECT_EQs the results. A failure here means an optimization changed
// observable behavior and must be fixed before anything else.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/kernels.h"
#include "common/rng.h"
#include "drift/error_model.h"
#include "ecc/bch.h"
#include "faults/injector.h"
#include "pcm/chip.h"
#include "pcm/line.h"
#include "pcm/mc_ler.h"
#include "gf/gf2m.h"

namespace rd {
namespace {

BitVec random_bits(Rng& rng, std::size_t n) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

/// e distinct flip positions. Weights 9..17 come through the fault
/// injector's burst generator (the same sampler the runtime "bch" fault
/// class uses — its plan grammar only accepts the detect-only band);
/// other weights fall back to rejection sampling on a keyed Rng.
std::vector<unsigned> distinct_positions(unsigned e, std::uint64_t key,
                                         unsigned nbits) {
  if (e >= 9 && e <= 17) {
    const faults::FaultEngine engine(faults::FaultPlan::parse(
        "seed=47;bch:p=1,e=" + std::to_string(e)));
    return engine.bch_error_positions(key, key * 5 + 3, nbits);
  }
  Rng rng(47, key);
  std::vector<unsigned> flips;
  while (flips.size() < e) {
    const unsigned p = static_cast<unsigned>(rng.uniform_below(nbits));
    bool dup = false;
    for (unsigned q : flips) dup = dup || q == p;
    if (!dup) flips.push_back(p);
  }
  return flips;
}

// --- BCH: table-driven syndromes + incremental Chien search ---------------

class BchKernelEquivalence : public ::testing::Test {
 protected:
  const ecc::BchCode ref_{10, 8, 512, KernelMode::kReference};
  const ecc::BchCode opt_{10, 8, 512, KernelMode::kOptimized};
};

TEST_F(BchKernelEquivalence, ModesResolved) {
  EXPECT_EQ(ref_.kernel_mode(), KernelMode::kReference);
  EXPECT_EQ(opt_.kernel_mode(), KernelMode::kOptimized);
}

TEST_F(BchKernelEquivalence, SyndromesMatchForEveryWeightThroughDetection) {
  // Weights 0..17 cover correctable (<= 8), detect-only (9..16), and the
  // design distance boundary (17) on random codewords.
  Rng rng(101);
  for (unsigned e = 0; e <= 17; ++e) {
    for (unsigned trial = 0; trial < 4; ++trial) {
      BitVec cw = ref_.encode(random_bits(rng, 512));
      for (unsigned p :
           distinct_positions(e, e * 31 + trial, ref_.codeword_bits())) {
        cw.set(p, !cw.get(p));
      }
      const std::vector<gf::Elem> sr = ref_.compute_syndromes(cw);
      const std::vector<gf::Elem> so = opt_.compute_syndromes(cw);
      ASSERT_EQ(sr.size(), so.size());
      for (std::size_t k = 0; k < sr.size(); ++k) {
        EXPECT_EQ(sr[k], so[k]) << "e=" << e << " trial=" << trial
                                << " syndrome " << k;
      }
    }
  }
}

TEST_F(BchKernelEquivalence, SyndromesMatchOnRandomNoise) {
  // Not just codeword + burst: arbitrary words (dense, sparse, all-ones)
  // must produce identical syndromes too.
  Rng rng(102);
  const unsigned n = ref_.codeword_bits();
  std::vector<BitVec> words;
  words.push_back(BitVec(n));  // all zero
  BitVec ones(n);
  for (unsigned i = 0; i < n; ++i) ones.set(i, true);
  words.push_back(ones);
  for (int i = 0; i < 8; ++i) words.push_back(random_bits(rng, n));
  for (const BitVec& w : words) {
    EXPECT_EQ(ref_.compute_syndromes(w), opt_.compute_syndromes(w));
  }
}

TEST_F(BchKernelEquivalence, DecodeOutcomesMatchForEveryWeight) {
  // Full decode equivalence: flags, correction count, and the corrected
  // word itself, from clean through past-detection weights.
  Rng rng(103);
  for (unsigned e = 0; e <= 20; ++e) {
    for (unsigned trial = 0; trial < 3; ++trial) {
      const BitVec clean = ref_.encode(random_bits(rng, 512));
      BitVec noisy = clean;
      for (unsigned p :
           distinct_positions(e, e * 17 + trial, ref_.codeword_bits())) {
        noisy.set(p, !noisy.get(p));
      }
      BitVec wr = noisy;
      BitVec wo = noisy;
      const ecc::BchDecodeResult dr = ref_.decode(wr);
      const ecc::BchDecodeResult d_opt = opt_.decode(wo);
      EXPECT_EQ(dr.corrected, d_opt.corrected) << "e=" << e << " t=" << trial;
      EXPECT_EQ(dr.num_corrected, d_opt.num_corrected)
          << "e=" << e << " t=" << trial;
      EXPECT_EQ(dr.detected_uncorrectable, d_opt.detected_uncorrectable)
          << "e=" << e << " t=" << trial;
      EXPECT_TRUE(wr == wo) << "e=" << e << " t=" << trial;
      if (e <= 8) {
        EXPECT_TRUE(wr == clean) << "e=" << e << " t=" << trial;
      }
    }
  }
}

// --- Drift model: memoized quadrature ------------------------------------

TEST(DriftKernelEquivalence, MemoMatchesDirectAcrossPaperGrids) {
  // The (state, t) points the Tables III-V style grids actually touch:
  // every programmable state crossed with scrub-relevant ages, for both
  // readout metrics and a heated variant. Exact double equality — the
  // memo must be value-transparent.
  const std::vector<drift::MetricConfig> configs = {
      drift::r_metric(), drift::m_metric(),
      drift::at_temperature(drift::r_metric(), 55.0)};
  const std::vector<double> ages = {1e-3, 0.1,   1.0,    64.0,  640.0,
                                    1280.0, 6400.0, 86400.0, 2.6e6};
  for (const auto& cfg : configs) {
    const drift::ErrorModel direct(cfg, KernelMode::kReference);
    const drift::ErrorModel memo(cfg, KernelMode::kOptimized);
    ASSERT_EQ(direct.kernel_mode(), KernelMode::kReference);
    ASSERT_EQ(memo.kernel_mode(), KernelMode::kOptimized);
    for (std::size_t s = 0; s < drift::kNumStates; ++s) {
      for (double t : ages) {
        const double want = direct.log_cell_error_prob(s, t);
        // Twice: the second call is a guaranteed cache hit and must
        // return the stored — identical — value.
        EXPECT_EQ(want, memo.log_cell_error_prob(s, t)) << s << " " << t;
        EXPECT_EQ(want, memo.log_cell_error_prob(s, t)) << s << " " << t;
      }
    }
  }
}

TEST(DriftKernelEquivalence, DerivedQuantitiesMatch) {
  // The aggregates built on the memoized primitive (averages and LER
  // tails) inherit exact equality.
  const drift::ErrorModel direct(drift::r_metric(), KernelMode::kReference);
  const drift::ErrorModel memo(drift::r_metric(), KernelMode::kOptimized);
  const drift::LerCalculator calc_d(direct);
  const drift::LerCalculator calc_m(memo);
  for (double t : {64.0, 640.0, 6400.0}) {
    EXPECT_EQ(direct.log_avg_cell_error_prob(t),
              memo.log_avg_cell_error_prob(t));
    EXPECT_EQ(direct.avg_cell_error_prob(t), memo.avg_cell_error_prob(t));
    for (unsigned e : {0u, 4u, 8u}) {
      EXPECT_EQ(calc_d.log_ler(e, t), calc_m.log_ler(e, t));
    }
  }
}

TEST(DriftKernelEquivalence, CopiesShareTheMemo) {
  // Copying a memoized model must keep the warm cache (shared_ptr), and
  // copies must agree with the original exactly.
  const drift::ErrorModel a(drift::m_metric(), KernelMode::kOptimized);
  const double want = a.log_cell_error_prob(1, 640.0);
  const drift::ErrorModel b = a;  // shares a's memo
  EXPECT_EQ(want, b.log_cell_error_prob(1, 640.0));
}

// --- MLC line: batched per-line readout ----------------------------------

TEST(LineKernelEquivalence, ReadMatchesAfterFullWrite) {
  Rng rng(104);
  const drift::MetricConfig cfg = drift::r_metric();
  pcm::MlcLine line(592);
  line.write_full(random_bits(rng, 592), 0.0, rng, cfg);
  for (double t : {0.5, 64.0, 640.0, 6400.0, 1e6}) {
    const BitVec r = line.read(t, cfg, KernelMode::kReference);
    const BitVec o = line.read(t, cfg, KernelMode::kOptimized);
    EXPECT_TRUE(r == o) << "t=" << t;
    EXPECT_EQ(line.count_drift_errors(t, cfg, KernelMode::kReference),
              line.count_drift_errors(t, cfg, KernelMode::kOptimized))
        << "t=" << t;
  }
}

TEST(LineKernelEquivalence, ReadMatchesWithMixedWriteTimes) {
  // Differential writes leave cells with different ages — exactly the
  // case where the batched kernel must recompute log10 at every
  // write-time boundary instead of hoisting one value.
  Rng rng(105);
  const drift::MetricConfig cfg = drift::r_metric();
  pcm::MlcLine line(592);
  line.write_full(random_bits(rng, 592), 0.0, rng, cfg);
  line.write_differential(random_bits(rng, 592), 100.0, rng, cfg);
  line.write_differential(random_bits(rng, 592), 300.0, rng, cfg);
  for (double t : {301.0, 640.0, 6400.0}) {
    const BitVec r = line.read(t, cfg, KernelMode::kReference);
    const BitVec o = line.read(t, cfg, KernelMode::kOptimized);
    EXPECT_TRUE(r == o) << "t=" << t;
    EXPECT_EQ(line.count_drift_errors(t, cfg, KernelMode::kReference),
              line.count_drift_errors(t, cfg, KernelMode::kOptimized))
        << "t=" << t;
  }
}

TEST(LineKernelEquivalence, ReadLevelsMatchesPerCellWithOffsetsAndStuck) {
  // The raw batched kernel against a hand-rolled per-cell loop, with
  // sense offsets on every cell and one stuck cell (which must ignore
  // its offset), for both metrics.
  Rng rng(106);
  pcm::MlcLine line(592);
  line.write_full(random_bits(rng, 592), 0.0, rng, drift::r_metric());
  line.cell_at(17).set_stuck(2);
  std::vector<double> offsets(line.num_cells());
  for (double& o : offsets) o = rng.normal(0.0, 0.02);
  for (const drift::MetricConfig& cfg :
       {drift::r_metric(), drift::m_metric()}) {
    std::vector<std::uint8_t> batched(line.num_cells());
    line.read_levels(640.0, cfg, offsets.data(), batched.data());
    for (std::size_t c = 0; c < line.num_cells(); ++c) {
      EXPECT_EQ(line.cells()[c].read_level(640.0, cfg, offsets[c]),
                batched[c])
          << "cell " << c;
    }
  }
}

// --- Monte-Carlo LER: hoisted drift law ----------------------------------

TEST(McLerKernelEquivalence, CountsMatchBitIdentically) {
  const drift::MetricConfig cfg = drift::r_metric();
  const drift::LineGeometry geom;
  for (double t : {64.0, 640.0}) {
    const pcm::McLerResult r =
        pcm::mc_ler(cfg, geom, 2, t, 20000, 9, KernelMode::kReference);
    const pcm::McLerResult o =
        pcm::mc_ler(cfg, geom, 2, t, 20000, 9, KernelMode::kOptimized);
    EXPECT_EQ(r.lines, o.lines);
    EXPECT_EQ(r.failures, o.failures) << "t=" << t;
  }
}

// --- Whole chip: everything composed -------------------------------------

TEST(ChipKernelEquivalence, FullLifetimeIsIdentical) {
  // Two chips, same seed, opposite kernels; write, age across scrub
  // boundaries, read back. Data, readout flags, and every counter must
  // agree — this composes the BCH, line, and sensing kernels under the
  // real fault serials.
  pcm::ChipConfig base;
  base.num_lines = 8;
  base.seed = 77;
  pcm::ChipConfig ref_cfg = base;
  ref_cfg.kernels = KernelMode::kReference;
  pcm::ChipConfig opt_cfg = base;
  opt_cfg.kernels = KernelMode::kOptimized;
  pcm::MlcChip ref_chip(ref_cfg);
  pcm::MlcChip opt_chip(opt_cfg);

  Rng data_rng(107);
  std::vector<std::vector<std::uint8_t>> payloads;
  for (std::size_t l = 0; l < base.num_lines; ++l) {
    std::vector<std::uint8_t> p(base.data_bytes);
    for (auto& b : p) b = static_cast<std::uint8_t>(data_rng.next());
    payloads.push_back(p);
    ref_chip.write(l, p);
    opt_chip.write(l, p);
  }
  ref_chip.inject_stuck_cell(3, 11, 1);
  opt_chip.inject_stuck_cell(3, 11, 1);

  for (double dt : {100.0, 600.0, 1200.0}) {
    ref_chip.advance_time(dt);
    opt_chip.advance_time(dt);
    for (std::size_t l = 0; l < base.num_lines; ++l) {
      const pcm::ChipReadResult r = ref_chip.read(l);
      const pcm::ChipReadResult o = opt_chip.read(l);
      EXPECT_EQ(r.data, o.data) << "line " << l;
      EXPECT_EQ(r.used_m_sense, o.used_m_sense) << "line " << l;
      EXPECT_EQ(r.corrected, o.corrected) << "line " << l;
      EXPECT_EQ(r.errors_corrected, o.errors_corrected) << "line " << l;
    }
  }
  const pcm::ChipStats& rs = ref_chip.stats();
  const pcm::ChipStats& os = opt_chip.stats();
  EXPECT_EQ(rs.reads, os.reads);
  EXPECT_EQ(rs.m_fallbacks, os.m_fallbacks);
  EXPECT_EQ(rs.writes, os.writes);
  EXPECT_EQ(rs.scrub_passes, os.scrub_passes);
  EXPECT_EQ(rs.scrub_rewrites, os.scrub_rewrites);
  EXPECT_EQ(rs.uncorrectable, os.uncorrectable);
}

// --- GF(2^m) helper identities -------------------------------------------

TEST(GfKernelIdentities, SqrAndReducedPowerAgreeWithMul) {
  // The table tricks the optimized kernels lean on: sqr(a) == mul(a, a)
  // for every element, and alpha_pow_reduced(k) == alpha_pow(k) for every
  // in-range exponent.
  const gf::Field f(10);
  for (std::uint32_t a = 0; a < f.size(); ++a) {
    EXPECT_EQ(f.sqr(static_cast<gf::Elem>(a)),
              f.mul(static_cast<gf::Elem>(a), static_cast<gf::Elem>(a)))
        << a;
  }
  for (std::uint32_t k = 0; k < f.order(); ++k) {
    EXPECT_EQ(f.alpha_pow_reduced(k), f.alpha_pow(k)) << k;
  }
}

}  // namespace
}  // namespace rd
