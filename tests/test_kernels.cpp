// Optimized-vs-reference kernel equivalence (DESIGN.md §10).
//
// Every rewritten hot-path kernel keeps its straight-line reference
// implementation selectable, and the contract is strict value equality:
// not "close", but the same bits. These tests pin that contract — each
// one runs the identical workload through both implementations and
// EXPECT_EQs the results. A failure here means an optimization changed
// observable behavior and must be fixed before anything else.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/kernels.h"
#include "common/rng.h"
#include "drift/error_model.h"
#include "ecc/bch.h"
#include "faults/injector.h"
#include "pcm/chip.h"
#include "pcm/line.h"
#include "pcm/mc_ler.h"
#include "gf/gf2m.h"

namespace rd {
namespace {

BitVec random_bits(Rng& rng, std::size_t n) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

/// e distinct flip positions. Weights 9..17 come through the fault
/// injector's burst generator (the same sampler the runtime "bch" fault
/// class uses — its plan grammar only accepts the detect-only band);
/// other weights fall back to rejection sampling on a keyed Rng.
std::vector<unsigned> distinct_positions(unsigned e, std::uint64_t key,
                                         unsigned nbits) {
  if (e >= 9 && e <= 17) {
    const faults::FaultEngine engine(faults::FaultPlan::parse(
        "seed=47;bch:p=1,e=" + std::to_string(e)));
    return engine.bch_error_positions(key, key * 5 + 3, nbits);
  }
  Rng rng(47, key);
  std::vector<unsigned> flips;
  while (flips.size() < e) {
    const unsigned p = static_cast<unsigned>(rng.uniform_below(nbits));
    bool dup = false;
    for (unsigned q : flips) dup = dup || q == p;
    if (!dup) flips.push_back(p);
  }
  return flips;
}

// --- BCH: table-driven syndromes + incremental Chien search ---------------

class BchKernelEquivalence : public ::testing::Test {
 protected:
  const ecc::BchCode ref_{10, 8, 512, KernelMode::kReference};
  const ecc::BchCode opt_{10, 8, 512, KernelMode::kOptimized};
};

TEST_F(BchKernelEquivalence, ModesResolved) {
  EXPECT_EQ(ref_.kernel_mode(), KernelMode::kReference);
  EXPECT_EQ(opt_.kernel_mode(), KernelMode::kOptimized);
}

TEST_F(BchKernelEquivalence, SyndromesMatchForEveryWeightThroughDetection) {
  // Weights 0..17 cover correctable (<= 8), detect-only (9..16), and the
  // design distance boundary (17) on random codewords.
  Rng rng(101);
  for (unsigned e = 0; e <= 17; ++e) {
    for (unsigned trial = 0; trial < 4; ++trial) {
      BitVec cw = ref_.encode(random_bits(rng, 512));
      for (unsigned p :
           distinct_positions(e, e * 31 + trial, ref_.codeword_bits())) {
        cw.set(p, !cw.get(p));
      }
      const std::vector<gf::Elem> sr = ref_.compute_syndromes(cw);
      const std::vector<gf::Elem> so = opt_.compute_syndromes(cw);
      ASSERT_EQ(sr.size(), so.size());
      for (std::size_t k = 0; k < sr.size(); ++k) {
        EXPECT_EQ(sr[k], so[k]) << "e=" << e << " trial=" << trial
                                << " syndrome " << k;
      }
    }
  }
}

TEST_F(BchKernelEquivalence, SyndromesMatchOnRandomNoise) {
  // Not just codeword + burst: arbitrary words (dense, sparse, all-ones)
  // must produce identical syndromes too.
  Rng rng(102);
  const unsigned n = ref_.codeword_bits();
  std::vector<BitVec> words;
  words.push_back(BitVec(n));  // all zero
  BitVec ones(n);
  for (unsigned i = 0; i < n; ++i) ones.set(i, true);
  words.push_back(ones);
  for (int i = 0; i < 8; ++i) words.push_back(random_bits(rng, n));
  for (const BitVec& w : words) {
    EXPECT_EQ(ref_.compute_syndromes(w), opt_.compute_syndromes(w));
  }
}

TEST_F(BchKernelEquivalence, DecodeOutcomesMatchForEveryWeight) {
  // Full decode equivalence: flags, correction count, and the corrected
  // word itself, from clean through past-detection weights.
  Rng rng(103);
  for (unsigned e = 0; e <= 20; ++e) {
    for (unsigned trial = 0; trial < 3; ++trial) {
      const BitVec clean = ref_.encode(random_bits(rng, 512));
      BitVec noisy = clean;
      for (unsigned p :
           distinct_positions(e, e * 17 + trial, ref_.codeword_bits())) {
        noisy.set(p, !noisy.get(p));
      }
      BitVec wr = noisy;
      BitVec wo = noisy;
      const ecc::BchDecodeResult dr = ref_.decode(wr);
      const ecc::BchDecodeResult d_opt = opt_.decode(wo);
      EXPECT_EQ(dr.corrected, d_opt.corrected) << "e=" << e << " t=" << trial;
      EXPECT_EQ(dr.num_corrected, d_opt.num_corrected)
          << "e=" << e << " t=" << trial;
      EXPECT_EQ(dr.detected_uncorrectable, d_opt.detected_uncorrectable)
          << "e=" << e << " t=" << trial;
      EXPECT_TRUE(wr == wo) << "e=" << e << " t=" << trial;
      if (e <= 8) {
        EXPECT_TRUE(wr == clean) << "e=" << e << " t=" << trial;
      }
    }
  }
}

// --- Drift model: memoized quadrature ------------------------------------

TEST(DriftKernelEquivalence, MemoMatchesDirectAcrossPaperGrids) {
  // The (state, t) points the Tables III-V style grids actually touch:
  // every programmable state crossed with scrub-relevant ages, for both
  // readout metrics and a heated variant. Exact double equality — the
  // memo must be value-transparent.
  const std::vector<drift::MetricConfig> configs = {
      drift::r_metric(), drift::m_metric(),
      drift::at_temperature(drift::r_metric(), 55.0)};
  const std::vector<double> ages = {1e-3, 0.1,   1.0,    64.0,  640.0,
                                    1280.0, 6400.0, 86400.0, 2.6e6};
  for (const auto& cfg : configs) {
    const drift::ErrorModel direct(cfg, KernelMode::kReference);
    const drift::ErrorModel memo(cfg, KernelMode::kOptimized);
    ASSERT_EQ(direct.kernel_mode(), KernelMode::kReference);
    ASSERT_EQ(memo.kernel_mode(), KernelMode::kOptimized);
    for (std::size_t s = 0; s < drift::kNumStates; ++s) {
      for (double t : ages) {
        const double want = direct.log_cell_error_prob(s, t);
        // Twice: the second call is a guaranteed cache hit and must
        // return the stored — identical — value.
        EXPECT_EQ(want, memo.log_cell_error_prob(s, t)) << s << " " << t;
        EXPECT_EQ(want, memo.log_cell_error_prob(s, t)) << s << " " << t;
      }
    }
  }
}

TEST(DriftKernelEquivalence, DerivedQuantitiesMatch) {
  // The aggregates built on the memoized primitive (averages and LER
  // tails) inherit exact equality.
  const drift::ErrorModel direct(drift::r_metric(), KernelMode::kReference);
  const drift::ErrorModel memo(drift::r_metric(), KernelMode::kOptimized);
  const drift::LerCalculator calc_d(direct);
  const drift::LerCalculator calc_m(memo);
  for (double t : {64.0, 640.0, 6400.0}) {
    EXPECT_EQ(direct.log_avg_cell_error_prob(t),
              memo.log_avg_cell_error_prob(t));
    EXPECT_EQ(direct.avg_cell_error_prob(t), memo.avg_cell_error_prob(t));
    for (unsigned e : {0u, 4u, 8u}) {
      EXPECT_EQ(calc_d.log_ler(e, t), calc_m.log_ler(e, t));
    }
  }
}

TEST(DriftKernelEquivalence, CopiesShareTheMemo) {
  // Copying a memoized model must keep the warm cache (shared_ptr), and
  // copies must agree with the original exactly.
  const drift::ErrorModel a(drift::m_metric(), KernelMode::kOptimized);
  const double want = a.log_cell_error_prob(1, 640.0);
  const drift::ErrorModel b = a;  // shares a's memo
  EXPECT_EQ(want, b.log_cell_error_prob(1, 640.0));
}

// --- MLC line: batched per-line readout ----------------------------------

TEST(LineKernelEquivalence, ReadMatchesAfterFullWrite) {
  Rng rng(104);
  const drift::MetricConfig cfg = drift::r_metric();
  pcm::MlcLine line(592);
  line.write_full(random_bits(rng, 592), 0.0, rng, cfg);
  for (double t : {0.5, 64.0, 640.0, 6400.0, 1e6}) {
    const BitVec r = line.read(t, cfg, KernelMode::kReference);
    const BitVec o = line.read(t, cfg, KernelMode::kOptimized);
    EXPECT_TRUE(r == o) << "t=" << t;
    EXPECT_EQ(line.count_drift_errors(t, cfg, KernelMode::kReference),
              line.count_drift_errors(t, cfg, KernelMode::kOptimized))
        << "t=" << t;
  }
}

TEST(LineKernelEquivalence, ReadMatchesWithMixedWriteTimes) {
  // Differential writes leave cells with different ages — exactly the
  // case where the batched kernel must recompute log10 at every
  // write-time boundary instead of hoisting one value.
  Rng rng(105);
  const drift::MetricConfig cfg = drift::r_metric();
  pcm::MlcLine line(592);
  line.write_full(random_bits(rng, 592), 0.0, rng, cfg);
  line.write_differential(random_bits(rng, 592), 100.0, rng, cfg);
  line.write_differential(random_bits(rng, 592), 300.0, rng, cfg);
  for (double t : {301.0, 640.0, 6400.0}) {
    const BitVec r = line.read(t, cfg, KernelMode::kReference);
    const BitVec o = line.read(t, cfg, KernelMode::kOptimized);
    EXPECT_TRUE(r == o) << "t=" << t;
    EXPECT_EQ(line.count_drift_errors(t, cfg, KernelMode::kReference),
              line.count_drift_errors(t, cfg, KernelMode::kOptimized))
        << "t=" << t;
  }
}

TEST(LineKernelEquivalence, ReadLevelsMatchesPerCellWithOffsetsAndStuck) {
  // The raw batched kernel against a hand-rolled per-cell loop, with
  // sense offsets on every cell and one stuck cell (which must ignore
  // its offset), for both metrics.
  Rng rng(106);
  pcm::MlcLine line(592);
  line.write_full(random_bits(rng, 592), 0.0, rng, drift::r_metric());
  line.cell_at(17).set_stuck(2);
  std::vector<double> offsets(line.num_cells());
  for (double& o : offsets) o = rng.normal(0.0, 0.02);
  for (const drift::MetricConfig& cfg :
       {drift::r_metric(), drift::m_metric()}) {
    std::vector<std::uint8_t> batched(line.num_cells());
    line.read_levels(640.0, cfg, offsets.data(), batched.data());
    for (std::size_t c = 0; c < line.num_cells(); ++c) {
      EXPECT_EQ(line.cells()[c].read_level(640.0, cfg, offsets[c]),
                batched[c])
          << "cell " << c;
    }
  }
}

// --- Monte-Carlo LER: hoisted drift law ----------------------------------

TEST(McLerKernelEquivalence, CountsMatchBitIdentically) {
  const drift::MetricConfig cfg = drift::r_metric();
  const drift::LineGeometry geom;
  for (double t : {64.0, 640.0}) {
    const pcm::McLerResult r =
        pcm::mc_ler(cfg, geom, 2, t, 20000, 9, KernelMode::kReference);
    const pcm::McLerResult o =
        pcm::mc_ler(cfg, geom, 2, t, 20000, 9, KernelMode::kOptimized);
    EXPECT_EQ(r.lines, o.lines);
    EXPECT_EQ(r.failures, o.failures) << "t=" << t;
  }
}

// --- Whole chip: everything composed -------------------------------------

TEST(ChipKernelEquivalence, FullLifetimeIsIdentical) {
  // Two chips, same seed, opposite kernels; write, age across scrub
  // boundaries, read back. Data, readout flags, and every counter must
  // agree — this composes the BCH, line, and sensing kernels under the
  // real fault serials.
  pcm::ChipConfig base;
  base.num_lines = 8;
  base.seed = 77;
  pcm::ChipConfig ref_cfg = base;
  ref_cfg.kernels = KernelMode::kReference;
  pcm::ChipConfig opt_cfg = base;
  opt_cfg.kernels = KernelMode::kOptimized;
  pcm::MlcChip ref_chip(ref_cfg);
  pcm::MlcChip opt_chip(opt_cfg);

  Rng data_rng(107);
  std::vector<std::vector<std::uint8_t>> payloads;
  for (std::size_t l = 0; l < base.num_lines; ++l) {
    std::vector<std::uint8_t> p(base.data_bytes);
    for (auto& b : p) b = static_cast<std::uint8_t>(data_rng.next());
    payloads.push_back(p);
    ref_chip.write(l, p);
    opt_chip.write(l, p);
  }
  ref_chip.inject_stuck_cell(3, 11, 1);
  opt_chip.inject_stuck_cell(3, 11, 1);

  for (double dt : {100.0, 600.0, 1200.0}) {
    ref_chip.advance_time(dt);
    opt_chip.advance_time(dt);
    for (std::size_t l = 0; l < base.num_lines; ++l) {
      const pcm::ChipReadResult r = ref_chip.read(l);
      const pcm::ChipReadResult o = opt_chip.read(l);
      EXPECT_EQ(r.data, o.data) << "line " << l;
      EXPECT_EQ(r.used_m_sense, o.used_m_sense) << "line " << l;
      EXPECT_EQ(r.corrected, o.corrected) << "line " << l;
      EXPECT_EQ(r.errors_corrected, o.errors_corrected) << "line " << l;
    }
  }
  const pcm::ChipStats& rs = ref_chip.stats();
  const pcm::ChipStats& os = opt_chip.stats();
  EXPECT_EQ(rs.reads, os.reads);
  EXPECT_EQ(rs.m_fallbacks, os.m_fallbacks);
  EXPECT_EQ(rs.writes, os.writes);
  EXPECT_EQ(rs.scrub_passes, os.scrub_passes);
  EXPECT_EQ(rs.scrub_rewrites, os.scrub_rewrites);
  EXPECT_EQ(rs.uncorrectable, os.uncorrectable);
}

// --- Vectorized tier (DESIGN.md §10.5) -----------------------------------
//
// The kVectorized lanes must match the reference bit for bit at every
// dispatch level this host can reach. Each check therefore runs twice:
// once under native dispatch (whatever simd_level() detected — AVX2,
// SSE4.2, or already scalar) and once with the dispatch forced to the
// scalar fallback, which must route through the optimized kernels. On a
// scalar-only host the two passes coincide and both still run.

/// Force simd_level() for a scope, restoring the previous level after.
/// The restore is always legal: the previous level was at or below what
/// detection allows by construction.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : prev_(simd_level()) {
    set_simd_level_for_testing(level);
  }
  ~ScopedSimdLevel() { set_simd_level_for_testing(prev_); }

 private:
  SimdLevel prev_;
};

class VectorBchEquivalence : public ::testing::Test {
 protected:
  const ecc::BchCode ref_{10, 8, 512, KernelMode::kReference};
  const ecc::BchCode vec_{10, 8, 512, KernelMode::kVectorized};
};

TEST_F(VectorBchEquivalence, ModeResolvesAndLevelHasAName) {
  EXPECT_EQ(vec_.kernel_mode(), KernelMode::kVectorized);
  const std::string name = simd_level_name(simd_level());
  EXPECT_TRUE(name == "scalar" || name == "sse42" || name == "avx2") << name;
}

TEST_F(VectorBchEquivalence, SyndromesMatchForEveryWeightThroughDetection) {
  for (SimdLevel level : {simd_level(), SimdLevel::kScalar}) {
    ScopedSimdLevel scoped(level);
    Rng rng(201);
    for (unsigned e = 0; e <= 17; ++e) {
      for (unsigned trial = 0; trial < 3; ++trial) {
        BitVec cw = ref_.encode(random_bits(rng, 512));
        for (unsigned p :
             distinct_positions(e, e * 13 + trial, ref_.codeword_bits())) {
          cw.set(p, !cw.get(p));
        }
        EXPECT_EQ(ref_.compute_syndromes(cw), vec_.compute_syndromes(cw))
            << "e=" << e << " trial=" << trial << " level="
            << simd_level_name(level);
      }
    }
  }
}

TEST_F(VectorBchEquivalence, SyndromesMatchOnRandomNoise) {
  for (SimdLevel level : {simd_level(), SimdLevel::kScalar}) {
    ScopedSimdLevel scoped(level);
    Rng rng(202);
    const unsigned n = ref_.codeword_bits();
    std::vector<BitVec> words;
    words.push_back(BitVec(n));  // all zero
    BitVec ones(n);
    for (unsigned i = 0; i < n; ++i) ones.set(i, true);
    words.push_back(ones);
    for (int i = 0; i < 6; ++i) words.push_back(random_bits(rng, n));
    for (const BitVec& w : words) {
      EXPECT_EQ(ref_.compute_syndromes(w), vec_.compute_syndromes(w))
          << simd_level_name(level);
    }
  }
}

TEST_F(VectorBchEquivalence, DecodeOutcomesMatchForEveryWeight) {
  for (SimdLevel level : {simd_level(), SimdLevel::kScalar}) {
    ScopedSimdLevel scoped(level);
    Rng rng(203);
    for (unsigned e = 0; e <= 20; ++e) {
      for (unsigned trial = 0; trial < 3; ++trial) {
        const BitVec clean = ref_.encode(random_bits(rng, 512));
        BitVec noisy = clean;
        for (unsigned p :
             distinct_positions(e, e * 19 + trial, ref_.codeword_bits())) {
          noisy.set(p, !noisy.get(p));
        }
        BitVec wr = noisy;
        BitVec wv = noisy;
        const ecc::BchDecodeResult dr = ref_.decode(wr);
        const ecc::BchDecodeResult dv = vec_.decode(wv);
        EXPECT_EQ(dr.corrected, dv.corrected)
            << "e=" << e << " t=" << trial << " " << simd_level_name(level);
        EXPECT_EQ(dr.num_corrected, dv.num_corrected)
            << "e=" << e << " t=" << trial << " " << simd_level_name(level);
        EXPECT_EQ(dr.detected_uncorrectable, dv.detected_uncorrectable)
            << "e=" << e << " t=" << trial << " " << simd_level_name(level);
        EXPECT_TRUE(wr == wv)
            << "e=" << e << " t=" << trial << " " << simd_level_name(level);
        if (e <= 8) {
          EXPECT_TRUE(wv == clean) << "e=" << e << " t=" << trial;
        }
      }
    }
  }
}

TEST(VectorLineEquivalence, ReadMatchesMixedAgesOffsetsAndStuck) {
  // The hardest line shape at once: three write generations (so the
  // log_t SoA fill hits its run boundaries), per-cell sense offsets, and
  // stuck cells (which must ignore both metric and offset), against the
  // per-cell reference — at native dispatch and through the scalar
  // fallback.
  for (SimdLevel level : {simd_level(), SimdLevel::kScalar}) {
    ScopedSimdLevel scoped(level);
    Rng rng(204);
    pcm::MlcLine line(592);
    line.write_full(random_bits(rng, 592), 0.0, rng, drift::r_metric());
    line.write_differential(random_bits(rng, 592), 100.0, rng,
                            drift::r_metric());
    line.write_differential(random_bits(rng, 592), 300.0, rng,
                            drift::r_metric());
    line.cell_at(17).set_stuck(2);
    line.cell_at(0).set_stuck(0);
    line.cell_at(295).set_stuck(3);
    std::vector<double> offsets(line.num_cells());
    for (double& o : offsets) o = rng.normal(0.0, 0.02);
    for (const drift::MetricConfig& cfg :
         {drift::r_metric(), drift::m_metric()}) {
      for (double t : {301.0, 640.0, 6400.0, 1e6}) {
        std::vector<std::uint8_t> lanes(line.num_cells());
        line.read_levels(t, cfg, offsets.data(), lanes.data(),
                         KernelMode::kVectorized);
        for (std::size_t c = 0; c < line.num_cells(); ++c) {
          ASSERT_EQ(line.cells()[c].read_level(t, cfg, offsets[c]), lanes[c])
              << "cell " << c << " t=" << t << " "
              << simd_level_name(level);
        }
        const BitVec r = line.read(t, cfg, KernelMode::kReference);
        const BitVec v = line.read(t, cfg, KernelMode::kVectorized);
        EXPECT_TRUE(r == v) << "t=" << t << " " << simd_level_name(level);
        EXPECT_EQ(line.count_drift_errors(t, cfg, KernelMode::kReference),
                  line.count_drift_errors(t, cfg, KernelMode::kVectorized))
            << "t=" << t << " " << simd_level_name(level);
      }
    }
  }
}

TEST(VectorLineEquivalence, SoaCacheInvalidatesOnEveryMutator) {
  // Read (building the SoA mirror), mutate through each mutator in turn,
  // read again: the vectorized image must track the reference image
  // across every rebuild.
  for (SimdLevel level : {simd_level(), SimdLevel::kScalar}) {
    ScopedSimdLevel scoped(level);
    Rng rng(205);
    const drift::MetricConfig cfg = drift::r_metric();
    pcm::MlcLine line(592);
    line.write_full(random_bits(rng, 592), 0.0, rng, cfg);
    auto check = [&](double t, const char* what) {
      const BitVec r = line.read(t, cfg, KernelMode::kReference);
      const BitVec v = line.read(t, cfg, KernelMode::kVectorized);
      EXPECT_TRUE(r == v) << what << " " << simd_level_name(level);
    };
    check(64.0, "after write_full");
    line.write_differential(random_bits(rng, 592), 100.0, rng, cfg);
    check(164.0, "after write_differential");
    line.refresh_drifted(1e5, rng, cfg);
    check(1e5 + 64.0, "after refresh_drifted");
    line.cell_at(42).set_stuck(1);
    check(1e5 + 128.0, "after cell_at().set_stuck");
  }
}

TEST(VectorMcLerEquivalence, CountsMatchBitIdentically) {
  // The population scan with its RNG-stream replication on failing lines
  // (the early-exit contract): failure counts must equal the reference
  // count exactly, not statistically. e=0 at a late age maximizes
  // failing lines, stressing the snapshot/replay path; e=2 exercises
  // mid-line exits.
  const drift::MetricConfig cfg = drift::r_metric();
  const drift::LineGeometry geom;
  for (SimdLevel level : {simd_level(), SimdLevel::kScalar}) {
    ScopedSimdLevel scoped(level);
    for (unsigned e : {0u, 2u}) {
      for (double t : {64.0, 640.0}) {
        const pcm::McLerResult r =
            pcm::mc_ler(cfg, geom, e, t, 20000, 9, KernelMode::kReference);
        const pcm::McLerResult v =
            pcm::mc_ler(cfg, geom, e, t, 20000, 9, KernelMode::kVectorized);
        EXPECT_EQ(r.lines, v.lines);
        EXPECT_EQ(r.failures, v.failures)
            << "e=" << e << " t=" << t << " " << simd_level_name(level);
      }
    }
  }
}

TEST(VectorChipEquivalence, FullLifetimeIsIdentical) {
  // The composed system under kVectorized: same seed, same faults, same
  // scrub schedule as a reference chip — data, flags, and counters must
  // all agree (this routes the SIMD lanes through sense(), ECP patching,
  // and the BCH decode path together).
  pcm::ChipConfig base;
  base.num_lines = 8;
  base.seed = 77;
  pcm::ChipConfig ref_cfg = base;
  ref_cfg.kernels = KernelMode::kReference;
  pcm::ChipConfig vec_cfg = base;
  vec_cfg.kernels = KernelMode::kVectorized;
  pcm::MlcChip ref_chip(ref_cfg);
  pcm::MlcChip vec_chip(vec_cfg);

  Rng data_rng(206);
  for (std::size_t l = 0; l < base.num_lines; ++l) {
    std::vector<std::uint8_t> p(base.data_bytes);
    for (auto& b : p) b = static_cast<std::uint8_t>(data_rng.next());
    ref_chip.write(l, p);
    vec_chip.write(l, p);
  }
  ref_chip.inject_stuck_cell(3, 11, 1);
  vec_chip.inject_stuck_cell(3, 11, 1);

  for (double dt : {100.0, 600.0, 1200.0}) {
    ref_chip.advance_time(dt);
    vec_chip.advance_time(dt);
    for (std::size_t l = 0; l < base.num_lines; ++l) {
      const pcm::ChipReadResult r = ref_chip.read(l);
      const pcm::ChipReadResult v = vec_chip.read(l);
      EXPECT_EQ(r.data, v.data) << "line " << l;
      EXPECT_EQ(r.used_m_sense, v.used_m_sense) << "line " << l;
      EXPECT_EQ(r.corrected, v.corrected) << "line " << l;
      EXPECT_EQ(r.errors_corrected, v.errors_corrected) << "line " << l;
    }
  }
  const pcm::ChipStats& rs = ref_chip.stats();
  const pcm::ChipStats& vs = vec_chip.stats();
  EXPECT_EQ(rs.reads, vs.reads);
  EXPECT_EQ(rs.m_fallbacks, vs.m_fallbacks);
  EXPECT_EQ(rs.writes, vs.writes);
  EXPECT_EQ(rs.scrub_passes, vs.scrub_passes);
  EXPECT_EQ(rs.scrub_rewrites, vs.scrub_rewrites);
  EXPECT_EQ(rs.uncorrectable, vs.uncorrectable);
}

TEST(VectorDispatchContract, ForcingAboveDetectionThrows) {
  // The test seam only narrows: asking for a level the build/host cannot
  // run must fail loudly (a silent downgrade would mislabel benchmarks).
  // The cap is raw detection, not the current (possibly READDUO_SIMD-
  // lowered) level, so probe by attempting the top level directly.
  const SimdLevel prev = simd_level();
  bool threw = false;
  try {
    set_simd_level_for_testing(SimdLevel::kAvx2);
  } catch (const CheckFailure&) {
    threw = true;
  }
  set_simd_level_for_testing(prev);  // a restore never exceeds detection
  if (!threw) {
    GTEST_SKIP() << "build/host can dispatch AVX2; nothing above it to ask";
  }
}

// --- GF(2^m) helper identities -------------------------------------------

TEST(GfKernelIdentities, SqrAndReducedPowerAgreeWithMul) {
  // The table tricks the optimized kernels lean on: sqr(a) == mul(a, a)
  // for every element, and alpha_pow_reduced(k) == alpha_pow(k) for every
  // in-range exponent.
  const gf::Field f(10);
  for (std::uint32_t a = 0; a < f.size(); ++a) {
    EXPECT_EQ(f.sqr(static_cast<gf::Elem>(a)),
              f.mul(static_cast<gf::Elem>(a), static_cast<gf::Elem>(a)))
        << a;
  }
  for (std::uint32_t k = 0; k < f.order(); ++k) {
    EXPECT_EQ(f.alpha_pow_reduced(k), f.alpha_pow(k)) << k;
  }
}

}  // namespace
}  // namespace rd
