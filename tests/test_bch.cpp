// Tests for the BCH encoder/decoder — the line ECC of the paper
// ((m=10, t=8) over 512-bit payloads) plus a parameter sweep.
#include "ecc/bch.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rd::ecc {
namespace {

BitVec random_bits(Rng& rng, std::size_t n) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

/// Flip `k` distinct random bits.
void inject_errors(BitVec& v, unsigned k, Rng& rng) {
  std::vector<std::size_t> picked;
  while (picked.size() < k) {
    const std::size_t i = rng.uniform_below(v.size());
    bool dup = false;
    for (std::size_t p : picked) dup = dup || p == i;
    if (!dup) {
      picked.push_back(i);
      v.flip(i);
    }
  }
}

const BchCode& paper_code() {
  static const BchCode code(10, 8, 512);
  return code;
}

TEST(Bch8, GeometryMatchesPaper) {
  const BchCode& c = paper_code();
  EXPECT_EQ(c.data_bits(), 512u);
  EXPECT_EQ(c.parity_bits(), 80u);  // 8 errors x 10 bits
  EXPECT_EQ(c.codeword_bits(), 592u);
  EXPECT_EQ(c.design_distance(), 17u);
}

TEST(Bch8, EncodeProducesCodeword) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const BitVec cw = paper_code().encode(random_bits(rng, 512));
    EXPECT_TRUE(paper_code().is_codeword(cw));
  }
}

TEST(Bch8, SystematicLayout) {
  Rng rng(2);
  const BitVec data = random_bits(rng, 512);
  const BitVec cw = paper_code().encode(data);
  for (std::size_t i = 0; i < 512; ++i) {
    EXPECT_EQ(cw.get(i), data.get(i));
  }
}

TEST(Bch8, GeneratorDividesEveryCodeword) {
  // The generator has binary coefficients and degree = parity bits.
  const gf::Poly& g = paper_code().generator();
  EXPECT_EQ(g.degree(), 80);
  EXPECT_EQ(g.coeff(0), 1u);   // x does not divide g
  EXPECT_EQ(g.coeff(80), 1u);  // monic
}

class Bch8Errors : public ::testing::TestWithParam<unsigned> {};

TEST_P(Bch8Errors, CorrectsUpToT) {
  const unsigned nerr = GetParam();
  Rng rng(100 + nerr);
  for (int trial = 0; trial < 10; ++trial) {
    const BitVec data = random_bits(rng, 512);
    BitVec cw = paper_code().encode(data);
    inject_errors(cw, nerr, rng);
    const BchDecodeResult res = paper_code().decode(cw);
    ASSERT_TRUE(res.corrected) << "errors=" << nerr;
    EXPECT_EQ(res.num_corrected, nerr);
    EXPECT_FALSE(res.detected_uncorrectable);
    for (std::size_t i = 0; i < 512; ++i) {
      ASSERT_EQ(cw.get(i), data.get(i)) << "bit " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ZeroToEight, Bch8Errors,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

class Bch8Detection : public ::testing::TestWithParam<unsigned> {};

TEST_P(Bch8Detection, NineToSeventeenErrorsNeverSilentlyPass) {
  // Beyond t the decoder must not return "corrected" with wrong data.
  // (Random >t patterns occasionally land within distance t of another
  // codeword — a miscorrection — but then the result is a codeword that
  // differs from the original; what must NEVER happen is the decoder
  // reporting success with the original data intact but errors remaining.)
  const unsigned nerr = GetParam();
  Rng rng(200 + nerr);
  unsigned detected = 0, miscorrected = 0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    const BitVec data = random_bits(rng, 512);
    BitVec cw = paper_code().encode(data);
    inject_errors(cw, nerr, rng);
    const BchDecodeResult res = paper_code().decode(cw);
    if (res.detected_uncorrectable) {
      ++detected;
    } else {
      ASSERT_TRUE(res.corrected);
      // If the decoder claims success, the output must be a codeword.
      EXPECT_TRUE(paper_code().is_codeword(cw));
      bool matches = true;
      for (std::size_t i = 0; i < 512; ++i) {
        matches = matches && cw.get(i) == data.get(i);
      }
      if (!matches) ++miscorrected;
    }
  }
  // Random patterns this far beyond t are overwhelmingly detected.
  EXPECT_GE(detected + miscorrected, 1u);
  EXPECT_GE(detected, static_cast<unsigned>(trials) - 1);
}

INSTANTIATE_TEST_SUITE_P(BeyondT, Bch8Detection,
                         ::testing::Values(9u, 10u, 12u, 14u, 16u, 17u));

TEST(Bch8, ErrorsInParityRegionCorrected) {
  Rng rng(3);
  const BitVec data = random_bits(rng, 512);
  BitVec cw = paper_code().encode(data);
  cw.flip(512);  // first parity bit
  cw.flip(591);  // last parity bit
  const BchDecodeResult res = paper_code().decode(cw);
  ASSERT_TRUE(res.corrected);
  EXPECT_EQ(res.num_corrected, 2u);
  EXPECT_TRUE(paper_code().is_codeword(cw));
}

TEST(Bch8, BurstErrorsCorrected) {
  // 8 adjacent bit errors (one fully corrupted MLC cell region).
  Rng rng(4);
  const BitVec data = random_bits(rng, 512);
  BitVec cw = paper_code().encode(data);
  for (std::size_t i = 100; i < 108; ++i) cw.flip(i);
  const BchDecodeResult res = paper_code().decode(cw);
  ASSERT_TRUE(res.corrected);
  EXPECT_EQ(res.num_corrected, 8u);
  for (std::size_t i = 0; i < 512; ++i) EXPECT_EQ(cw.get(i), data.get(i));
}

struct CodeParams {
  unsigned m, t, data_bits;
};

class BchSweep : public ::testing::TestWithParam<CodeParams> {};

TEST_P(BchSweep, RoundTripAtFullCorrectionPower) {
  const auto [m, t, data_bits] = GetParam();
  const BchCode code(m, t, data_bits);
  EXPECT_LE(code.parity_bits(), m * t);
  Rng rng(m * 1000 + t);
  for (int trial = 0; trial < 5; ++trial) {
    const BitVec data = random_bits(rng, data_bits);
    BitVec cw = code.encode(data);
    inject_errors(cw, t, rng);
    const BchDecodeResult res = code.decode(cw);
    ASSERT_TRUE(res.corrected) << "m=" << m << " t=" << t;
    for (std::size_t i = 0; i < data_bits; ++i) {
      ASSERT_EQ(cw.get(i), data.get(i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Codes, BchSweep,
    ::testing::Values(CodeParams{4, 1, 7}, CodeParams{5, 2, 16},
                      CodeParams{6, 3, 32}, CodeParams{8, 4, 128},
                      CodeParams{10, 2, 512}, CodeParams{10, 8, 512},
                      CodeParams{10, 10, 512}, CodeParams{12, 8, 2048}));

TEST(Bch, ShorteningRejectsOversizedPayload) {
  EXPECT_THROW(BchCode(4, 2, 64), CheckFailure);  // 64 + 8 > 15
}

TEST(Bch, FuzzClassificationInvariants) {
  // For any random error count 0..25, the decoder must satisfy:
  //  - <= 8 errors: corrected, exact count reported, data restored;
  //  - > 8 errors: either flagged uncorrectable, or "miscorrected" to a
  //    different valid codeword (never success-with-garbage).
  Rng rng(600);
  for (int trial = 0; trial < 150; ++trial) {
    const BitVec data = random_bits(rng, 512);
    const BitVec clean = paper_code().encode(data);
    const unsigned nerr = static_cast<unsigned>(rng.uniform_below(26));
    BitVec cw = clean;
    inject_errors(cw, nerr, rng);
    const BitVec received = cw;
    const BchDecodeResult res = paper_code().decode(cw);
    if (nerr <= 8) {
      ASSERT_TRUE(res.corrected) << "nerr=" << nerr;
      ASSERT_EQ(res.num_corrected, nerr);
      ASSERT_TRUE(cw == clean);
    } else if (res.corrected) {
      // Possible miscorrection: the output must still be a codeword and
      // at most t flips away from the received word.
      ASSERT_TRUE(paper_code().is_codeword(cw));
      ASSERT_LE((cw ^ received).popcount(), 8u);
    } else {
      ASSERT_TRUE(res.detected_uncorrectable);
      ASSERT_TRUE(cw == received);  // untouched on failure
    }
  }
}

TEST(Bch, DecodePreservesCleanWord) {
  Rng rng(5);
  const BitVec data = random_bits(rng, 512);
  BitVec cw = paper_code().encode(data);
  const BitVec before = cw;
  const BchDecodeResult res = paper_code().decode(cw);
  EXPECT_TRUE(res.corrected);
  EXPECT_EQ(res.num_corrected, 0u);
  EXPECT_TRUE(cw == before);
}

}  // namespace
}  // namespace rd::ecc
