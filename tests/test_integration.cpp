// Cross-module integration tests: device + ECC end-to-end, full-system
// scheme orderings, and the EDAP metric layer.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "drift/error_model.h"
#include "ecc/bch.h"
#include "memsim/env.h"
#include "memsim/simulator.h"
#include "pcm/line.h"
#include "readduo/schemes.h"
#include "stats/edap.h"
#include "trace/workload.h"

namespace rd {
namespace {

// --- Device + ECC: the full data path of one memory line -----------------

TEST(DeviceEccIntegration, HybridReadoutRecoversAfterLongDrift) {
  // End-to-end ReadDuo data path: encode -> program -> drift -> R-sense ->
  // BCH decode; on failure, M-sense retry. Over many lines and a long
  // age, data must always come back intact via one of the two paths.
  Rng rng(77);
  const ecc::BchCode bch(10, 8, 512);
  const drift::MetricConfig r_cfg = drift::r_metric();
  const drift::MetricConfig m_cfg = drift::m_metric();
  const double age = 2048.0;  // way beyond the R-safe window

  int r_path = 0, m_path = 0;
  for (int trial = 0; trial < 60; ++trial) {
    BitVec payload(512);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload.set(i, rng.bernoulli(0.5));
    }
    pcm::MlcLine line(592);
    line.write_full(bch.encode(payload), 0.0, rng, r_cfg);

    BitVec image = line.read(age, r_cfg);
    ecc::BchDecodeResult res = bch.decode(image);
    if (!res.corrected) {
      image = line.read(age, m_cfg);
      res = bch.decode(image);
      ++m_path;
    } else {
      ++r_path;
    }
    ASSERT_TRUE(res.corrected);
    for (std::size_t i = 0; i < 512; ++i) {
      ASSERT_EQ(image.get(i), payload.get(i)) << "trial " << trial;
    }
  }
  // At 2048 s some lines exceed 8 R errors; both paths must be exercised.
  EXPECT_GT(r_path, 0);
}

TEST(DeviceEccIntegration, MSensingAloneSufficesAtExtremeAges) {
  Rng rng(78);
  const ecc::BchCode bch(10, 8, 512);
  const drift::MetricConfig m_cfg = drift::m_metric();
  for (int trial = 0; trial < 20; ++trial) {
    BitVec payload(512);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload.set(i, rng.bernoulli(0.5));
    }
    pcm::MlcLine line(592);
    line.write_full(bch.encode(payload), 0.0, rng, m_cfg);
    BitVec image = line.read(1e5, m_cfg);
    const ecc::BchDecodeResult res = bch.decode(image);
    ASSERT_TRUE(res.corrected);
    EXPECT_LE(res.num_corrected, 8u);
  }
}

// --- Full-system orderings (the qualitative claims of Figures 9/10/15) ---

struct SystemRun {
  memsim::SimResult sim;
  stats::Counters counters;
  double cells_per_line;
};

SystemRun run_system(readduo::SchemeKind kind, const trace::Workload& w,
                     std::uint64_t budget,
                     const readduo::ReadDuoOptions& opts = {}) {
  memsim::SimConfig cfg;
  cfg.instructions_per_core = budget;
  cfg.seed = 21;
  readduo::SchemeEnv env = memsim::make_scheme_env(w, cfg.cpu, 21);
  auto scheme = readduo::make_scheme(kind, env, opts);
  memsim::Simulator sim(cfg, *scheme, w);
  SystemRun out;
  out.sim = sim.run();
  out.counters = scheme->counters();
  out.cells_per_line = scheme->cells_per_line();
  return out;
}

TEST(SystemOrdering, MMetricIsTheSlowestReadPath) {
  const auto& w = trace::workload_by_name("mcf");
  const auto ideal = run_system(readduo::SchemeKind::kIdeal, w, 400'000);
  const auto m = run_system(readduo::SchemeKind::kMMetric, w, 400'000);
  const auto hybrid = run_system(readduo::SchemeKind::kHybrid, w, 400'000);
  EXPECT_GT(m.sim.exec_time.v, hybrid.sim.exec_time.v);
  EXPECT_GT(m.sim.exec_time.v, ideal.sim.exec_time.v);
}

TEST(SystemOrdering, HybridServicesMostReadsFast) {
  const auto& w = trace::workload_by_name("bzip2");
  const auto hybrid = run_system(readduo::SchemeKind::kHybrid, w, 400'000);
  // Fresh-ish working sets: nearly everything via 150 ns R-reads.
  EXPECT_GT(hybrid.counters.r_reads, 50 * hybrid.counters.rm_reads + 100);
  EXPECT_EQ(hybrid.counters.m_reads, 0u);
}

TEST(SystemOrdering, SelectWritesFewestCells) {
  const auto& w = trace::workload_by_name("lbm");
  const auto ideal = run_system(readduo::SchemeKind::kIdeal, w, 400'000);
  const auto select = run_system(readduo::SchemeKind::kSelect, w, 400'000);
  EXPECT_LT(select.counters.cell_writes, ideal.counters.cell_writes);
  EXPECT_GT(select.counters.demand_diff_writes, 0u);
}

TEST(SystemOrdering, ScrubbingPaysEnergyAndEndurance) {
  const auto& w = trace::workload_by_name("milc");
  const auto ideal = run_system(readduo::SchemeKind::kIdeal, w, 400'000);
  const auto scrub = run_system(readduo::SchemeKind::kScrubbing, w, 400'000);
  EXPECT_GT(scrub.counters.dynamic_energy_pj(),
            ideal.counters.dynamic_energy_pj());
  EXPECT_GT(scrub.counters.cell_writes, ideal.counters.cell_writes);
  EXPECT_GT(scrub.counters.scrub_senses, 0u);
}

TEST(SystemOrdering, HybridScrubRewritesEveryLineLwtDoesNot) {
  const auto& w = trace::workload_by_name("bwaves");
  const auto hybrid = run_system(readduo::SchemeKind::kHybrid, w, 400'000);
  const auto lwt = run_system(readduo::SchemeKind::kLwt, w, 400'000);
  // W=0 vs W=1: Hybrid's scrub rewrites vastly outnumber LWT's.
  EXPECT_GT(hybrid.counters.scrub_rewrites,
            10 * lwt.counters.scrub_rewrites + 10);
}

TEST(SystemOrdering, NoSilentCorruptionUnderReadDuoSchemes) {
  for (const char* name : {"bzip2", "sphinx3", "mcf"}) {
    const auto& w = trace::workload_by_name(name);
    for (auto kind : {readduo::SchemeKind::kHybrid, readduo::SchemeKind::kLwt,
                      readduo::SchemeKind::kSelect}) {
      const auto r = run_system(kind, w, 200'000);
      EXPECT_EQ(r.counters.silent_corruptions, 0u) << name;
    }
  }
}

// --- Stats layer ----------------------------------------------------------

TEST(Edap, IdentityWhenEqual) {
  stats::RunSummary a;
  a.exec_time = Ns{1000};
  a.dynamic_energy_pj = 500.0;
  a.static_watts = 0.35;
  a.cells_per_line = 296.0;
  a.cell_writes = 100.0;
  EXPECT_DOUBLE_EQ(stats::edap_dynamic(a, a), 1.0);
  EXPECT_DOUBLE_EQ(stats::edap_system(a, a), 1.0);
  EXPECT_DOUBLE_EQ(stats::relative_lifetime(a, a), 1.0);
}

TEST(Edap, FactorsMultiply) {
  stats::RunSummary base, run;
  base.exec_time = Ns{1000};
  base.dynamic_energy_pj = 100.0;
  base.cells_per_line = 384.0;
  run.exec_time = Ns{2000};       // 2x
  run.dynamic_energy_pj = 50.0;   // 0.5x
  run.cells_per_line = 192.0;     // 0.5x
  EXPECT_DOUBLE_EQ(stats::edap_dynamic(run, base), 0.5);
}

TEST(Edap, SystemEnergyAddsStaticPower) {
  stats::RunSummary r;
  r.exec_time = Ns{1'000'000};  // 1 ms
  r.dynamic_energy_pj = 0.0;
  r.static_watts = 1.0;
  // 1 W over 1 ms = 1 mJ = 1e9 pJ.
  EXPECT_NEAR(r.system_energy_pj(), 1e9, 1.0);
}

TEST(Edap, LifetimeInverseOfCellWrites) {
  stats::RunSummary base, run;
  base.cell_writes = 1000.0;
  run.cell_writes = 500.0;
  EXPECT_DOUBLE_EQ(stats::relative_lifetime(run, base), 2.0);
}

}  // namespace
}  // namespace rd
