// Tests for trace recording / replay / characterization.
#include "trace/trace_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "common/check.h"
#include "trace/workload.h"

namespace rd::trace {
namespace {

TEST(TraceIo, RecordLoadRoundTrip) {
  TraceGen gen(workload_by_name("mcf"), 0, 11);
  std::ostringstream out;
  record_trace(gen, 500, out);

  std::istringstream in(out.str());
  const std::vector<MemOp> ops = load_trace(in);
  ASSERT_EQ(ops.size(), 500u);

  // Replay the generator with the same seed and compare op by op.
  TraceGen gen2(workload_by_name("mcf"), 0, 11);
  for (const MemOp& op : ops) {
    const MemOp want = gen2.next();
    EXPECT_EQ(op.gap_instructions, want.gap_instructions);
    EXPECT_EQ(op.is_write, want.is_write);
    EXPECT_EQ(op.line, want.line);
    EXPECT_EQ(op.archive, want.archive);
  }
}

TEST(TraceIo, LoadsHandWrittenTrace) {
  std::istringstream in(
      "# a comment\n"
      "10 R 42\n"
      "\n"
      "0 W 7\n"
      "3 R 100 A   # archive read\n");
  const auto ops = load_trace(in);
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].gap_instructions, 10u);
  EXPECT_FALSE(ops[0].is_write);
  EXPECT_EQ(ops[0].line, 42u);
  EXPECT_TRUE(ops[1].is_write);
  EXPECT_TRUE(ops[2].archive);
}

TEST(TraceIo, RejectsMalformedInput) {
  {
    std::istringstream in("5 X 3\n");
    EXPECT_THROW(load_trace(in), CheckFailure);
  }
  {
    std::istringstream in("5 R\n");
    EXPECT_THROW(load_trace(in), CheckFailure);
  }
  {
    std::istringstream in("5 W 3 A\n");  // archive lines are never written
    EXPECT_THROW(load_trace(in), CheckFailure);
  }
  {
    std::istringstream in("5 R 3 Z\n");
    EXPECT_THROW(load_trace(in), CheckFailure);
  }
}

TEST(TraceIo, RejectsTrailingGarbageAfterArchiveFlag) {
  // Everything after the optional A flag is part of no grammar rule and
  // must fail loudly, not load as a shorter line.
  {
    std::istringstream in("5 R 7 A junk\n");
    EXPECT_THROW(load_trace(in), CheckFailure);
  }
  {
    std::istringstream in("5 R 7 A A\n");
    EXPECT_THROW(load_trace(in), CheckFailure);
  }
  {
    std::istringstream in("5 R 7 A 12\n");
    EXPECT_THROW(load_trace(in), CheckFailure);
  }
  // The comment form of trailing text is still fine.
  {
    std::istringstream in("5 R 7 A # trailing comment\n");
    const auto ops = load_trace(in);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_TRUE(ops[0].archive);
  }
}

TEST(TraceReplayer, WrapsAround) {
  std::vector<MemOp> ops(3);
  ops[0].line = 10;
  ops[1].line = 11;
  ops[2].line = 12;
  TraceReplayer r(ops);
  EXPECT_FALSE(r.wrapped());
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(r.next().line, 10u + static_cast<std::uint64_t>(i % 3));
  }
  EXPECT_TRUE(r.wrapped());
}

TEST(TraceReplayer, RejectsEmpty) {
  EXPECT_THROW(TraceReplayer({}), CheckFailure);
}

TEST(Characterize, MatchesWorkloadParameters) {
  const Workload& w = workload_by_name("lbm");
  TraceGen gen(w, 0, 3);
  std::ostringstream out;
  record_trace(gen, 50000, out);
  std::istringstream in(out.str());
  const TraceStats st = characterize(load_trace(in));

  EXPECT_EQ(st.ops, 50000u);
  EXPECT_EQ(st.reads + st.writes, st.ops);
  EXPECT_NEAR(st.rpki(), w.rpki, 0.15 * w.rpki);
  EXPECT_NEAR(st.wpki(), w.wpki, 0.15 * w.wpki);
  EXPECT_GT(st.distinct_lines, 1000u);
}

TEST(Characterize, EmptyTrace) {
  const TraceStats st = characterize({});
  EXPECT_EQ(st.ops, 0u);
  EXPECT_EQ(st.rpki(), 0.0);
  EXPECT_EQ(st.footprint_mb(), 0.0);
}

}  // namespace
}  // namespace rd::trace
