// Tests for the INI configuration loader.
#include "common/config.h"

#include <sstream>

#include <gtest/gtest.h>

#include "common/check.h"

namespace rd {
namespace {

Config parse(const std::string& text) {
  std::istringstream in(text);
  return Config::parse(in);
}

TEST(Config, ParsesSectionsAndKeys) {
  const Config c = parse(
      "top = 1\n"
      "[cpu]\n"
      "cores = 4\n"
      "clock_ghz = 2.0\n"
      "[memory]\n"
      "banks = 8\n");
  EXPECT_TRUE(c.has("top"));
  EXPECT_EQ(c.get_int("cpu.cores", 0), 4);
  EXPECT_DOUBLE_EQ(c.get_double("cpu.clock_ghz", 0.0), 2.0);
  EXPECT_EQ(c.get_int("memory.banks", 0), 8);
}

TEST(Config, CommentsAndWhitespace) {
  const Config c = parse(
      "  # full-line comment\n"
      "  key =   spaced value   ; trailing comment\n"
      "\n"
      "[ sec ]\n"
      "k=v\n");
  EXPECT_EQ(c.get_string("key"), "spaced value");
  EXPECT_EQ(c.get_string("sec.k"), "v");
}

TEST(Config, DefaultsWhenAbsent) {
  const Config c = parse("");
  EXPECT_EQ(c.get_int("nope", 7), 7);
  EXPECT_DOUBLE_EQ(c.get_double("nope", 1.5), 1.5);
  EXPECT_TRUE(c.get_bool("nope", true));
  EXPECT_EQ(c.get_string("nope", "d"), "d");
  EXPECT_FALSE(c.has("nope"));
}

TEST(Config, BooleanSpellings) {
  const Config c = parse(
      "a = true\nb = FALSE\nc = 1\nd = off\ne = Yes\n");
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_FALSE(c.get_bool("b", true));
  EXPECT_TRUE(c.get_bool("c", false));
  EXPECT_FALSE(c.get_bool("d", true));
  EXPECT_TRUE(c.get_bool("e", false));
}

TEST(Config, IntegerBases) {
  const Config c = parse("hex = 0x10\ndec = 42\nneg = -3\n");
  EXPECT_EQ(c.get_int("hex", 0), 16);
  EXPECT_EQ(c.get_int("dec", 0), 42);
  EXPECT_EQ(c.get_int("neg", 0), -3);
}

TEST(Config, MalformedInputThrows) {
  EXPECT_THROW(parse("[unterminated\n"), CheckFailure);
  EXPECT_THROW(parse("[]\n"), CheckFailure);
  EXPECT_THROW(parse("no equals sign\n"), CheckFailure);
  EXPECT_THROW(parse("= value\n"), CheckFailure);
}

TEST(Config, TypeErrorsThrow) {
  const Config c = parse("k = notanumber\nj = 12abc\n");
  EXPECT_THROW(c.get_int("k", 0), CheckFailure);
  EXPECT_THROW(c.get_int("j", 0), CheckFailure);
  EXPECT_THROW(c.get_double("k", 0.0), CheckFailure);
  EXPECT_THROW(c.get_bool("k", false), CheckFailure);
}

TEST(Config, LastValueWins) {
  const Config c = parse("k = 1\nk = 2\n");
  EXPECT_EQ(c.get_int("k", 0), 2);
}

TEST(Config, MissingFileThrows) {
  EXPECT_THROW(Config::load("/nonexistent/readduo.ini"), CheckFailure);
}

}  // namespace
}  // namespace rd
