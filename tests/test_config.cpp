// Tests for the permissive INI loader (common/config.h) and the strict
// device-config subsystem (src/config/): parser grammar, schema
// validation diagnostics, unit suffixes, and the golden paper configs —
// including the default-equivalence guarantee that
// configs/pcm_readduo_t1.cfg reproduces builtin_device() bit-for-bit.
#include "common/config.h"

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "common/check.h"
#include "config/apply.h"
#include "config/device_config.h"
#include "config/loader.h"
#include "config/parser.h"
#include "config/schema.h"

namespace rd {
namespace {

Config parse(const std::string& text) {
  std::istringstream in(text);
  return Config::parse(in);
}

TEST(Config, ParsesSectionsAndKeys) {
  const Config c = parse(
      "top = 1\n"
      "[cpu]\n"
      "cores = 4\n"
      "clock_ghz = 2.0\n"
      "[memory]\n"
      "banks = 8\n");
  EXPECT_TRUE(c.has("top"));
  EXPECT_EQ(c.get_int("cpu.cores", 0), 4);
  EXPECT_DOUBLE_EQ(c.get_double("cpu.clock_ghz", 0.0), 2.0);
  EXPECT_EQ(c.get_int("memory.banks", 0), 8);
}

TEST(Config, CommentsAndWhitespace) {
  const Config c = parse(
      "  # full-line comment\n"
      "  key =   spaced value   ; trailing comment\n"
      "\n"
      "[ sec ]\n"
      "k=v\n");
  EXPECT_EQ(c.get_string("key"), "spaced value");
  EXPECT_EQ(c.get_string("sec.k"), "v");
}

TEST(Config, DefaultsWhenAbsent) {
  const Config c = parse("");
  EXPECT_EQ(c.get_int("nope", 7), 7);
  EXPECT_DOUBLE_EQ(c.get_double("nope", 1.5), 1.5);
  EXPECT_TRUE(c.get_bool("nope", true));
  EXPECT_EQ(c.get_string("nope", "d"), "d");
  EXPECT_FALSE(c.has("nope"));
}

TEST(Config, BooleanSpellings) {
  const Config c = parse(
      "a = true\nb = FALSE\nc = 1\nd = off\ne = Yes\n");
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_FALSE(c.get_bool("b", true));
  EXPECT_TRUE(c.get_bool("c", false));
  EXPECT_FALSE(c.get_bool("d", true));
  EXPECT_TRUE(c.get_bool("e", false));
}

TEST(Config, IntegerBases) {
  const Config c = parse("hex = 0x10\ndec = 42\nneg = -3\n");
  EXPECT_EQ(c.get_int("hex", 0), 16);
  EXPECT_EQ(c.get_int("dec", 0), 42);
  EXPECT_EQ(c.get_int("neg", 0), -3);
}

TEST(Config, MalformedInputThrows) {
  EXPECT_THROW(parse("[unterminated\n"), CheckFailure);
  EXPECT_THROW(parse("[]\n"), CheckFailure);
  EXPECT_THROW(parse("no equals sign\n"), CheckFailure);
  EXPECT_THROW(parse("= value\n"), CheckFailure);
}

TEST(Config, TypeErrorsThrow) {
  const Config c = parse("k = notanumber\nj = 12abc\n");
  EXPECT_THROW(c.get_int("k", 0), CheckFailure);
  EXPECT_THROW(c.get_int("j", 0), CheckFailure);
  EXPECT_THROW(c.get_double("k", 0.0), CheckFailure);
  EXPECT_THROW(c.get_bool("k", false), CheckFailure);
}

TEST(Config, LastValueWins) {
  const Config c = parse("k = 1\nk = 2\n");
  EXPECT_EQ(c.get_int("k", 0), 2);
}

TEST(Config, MissingFileThrows) {
  EXPECT_THROW(Config::load("/nonexistent/readduo.ini"), CheckFailure);
}

// =====================================================================
// Strict device-config subsystem (src/config/).

using config::DeviceConfig;

/// Parse `text` as a device config named "test.cfg" and return the
/// ConfigError message (failing the test if nothing throws).
std::string device_error(const std::string& text) {
  std::istringstream in(text);
  try {
    config::parse_device(in, "test.cfg");
  } catch (const config::ConfigError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected ConfigError for:\n" << text;
  return "";
}

/// Grammar-level error message from RawConfig::parse.
std::string grammar_error(const std::string& text) {
  std::istringstream in(text);
  try {
    config::RawConfig::parse(in, "test.cfg");
  } catch (const config::ConfigError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected ConfigError for:\n" << text;
  return "";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string t1_path() {
  return std::string(RD_CONFIGS_DIR) + "/pcm_readduo_t1.cfg";
}

/// t1 text with the line holding `key` (e.g. "levels = 4") replaced.
std::string t1_with(const std::string& key_line,
                    const std::string& replacement) {
  std::string text = read_file(t1_path());
  const std::size_t pos = text.find("\n" + key_line + "\n");
  EXPECT_NE(pos, std::string::npos) << key_line;
  text.replace(pos + 1, key_line.size(), replacement);
  return text;
}

DeviceConfig parse_text(const std::string& text) {
  std::istringstream in(text);
  return config::parse_device(in, "test.cfg");
}

// ------------------------------------------------------------- grammar --

TEST(RawConfigGrammar, StructuralErrorsCarryFileAndLine) {
  EXPECT_EQ(grammar_error("[device\n"),
            "test.cfg:1: unterminated section header (missing ']')");
  EXPECT_EQ(grammar_error("\n[device] junk\n"),
            "test.cfg:2: unexpected text after ']' in section header: "
            "' junk'");
  EXPECT_EQ(grammar_error("[]\n"), "test.cfg:1: empty section name");
  EXPECT_EQ(grammar_error("[dev ice]\n"),
            "test.cfg:1: invalid section name 'dev ice'");
  EXPECT_EQ(grammar_error("[device]\nno equals sign\n"),
            "test.cfg:2: expected 'key = value', got 'no equals sign'");
  EXPECT_EQ(grammar_error("[device]\n= pcm\n"), "test.cfg:2: empty key");
  EXPECT_EQ(grammar_error("[device]\nbad key = pcm\n"),
            "test.cfg:2: invalid key name 'bad key'");
  EXPECT_EQ(grammar_error("[device]\nkind =\n"),
            "test.cfg:2: empty value for key 'kind'");
  EXPECT_EQ(grammar_error("kind = pcm\n"),
            "test.cfg:1: key 'kind' appears before any [section] header");
  EXPECT_EQ(grammar_error("[device]\nkind = pcm\n\nkind = rram\n"),
            "test.cfg:4: duplicate key 'device.kind' (first set on "
            "line 2)");
}

TEST(RawConfigGrammar, CommentsSectionsAndLinesRetained) {
  std::istringstream in(
      "# leading comment\n"
      "[device]\n"
      "kind = pcm  ; trailing comment\n"
      "; full-line\n"
      "[memory]\n"
      "banks = 8\n");
  const config::RawConfig raw = config::RawConfig::parse(in, "x.cfg");
  ASSERT_TRUE(raw.has("device.kind"));
  EXPECT_EQ(raw.at("device.kind").value, "pcm");
  EXPECT_EQ(raw.at("device.kind").line, 3u);
  EXPECT_EQ(raw.at("memory.banks").line, 6u);
  EXPECT_EQ(raw.source(), "x.cfg");
}

TEST(RawConfigGrammar, MissingFileNamesThePath) {
  try {
    config::RawConfig::load("/nonexistent/dev.cfg");
    ADD_FAILURE() << "expected ConfigError";
  } catch (const config::ConfigError& e) {
    EXPECT_STREQ(e.what(),
                 "/nonexistent/dev.cfg: cannot open device config file");
  }
}

// -------------------------------------------------- schema validation --

TEST(DeviceSchema, EveryKeyHasDocAndUniqueName) {
  std::set<std::string> seen;
  for (const config::KeySpec& k : config::device_schema()) {
    EXPECT_TRUE(seen.insert(k.key).second) << "duplicate key " << k.key;
    EXPECT_FALSE(k.doc.empty()) << k.key << " has no doc string";
    EXPECT_NE(k.key.find('.'), std::string::npos) << k.key;
    EXPECT_EQ(config::find_key(k.key), &k);
  }
  EXPECT_GE(seen.size(), 60u);
  EXPECT_EQ(config::find_key("device.bogus"), nullptr);
  EXPECT_TRUE(config::known_section("r_metric"));
  EXPECT_FALSE(config::known_section("cpu"));
}

TEST(DeviceSchema, GoldenConfigExercisesEveryKey) {
  // Schema round-trip: t1 sets every schema key (required and optional),
  // and the loader accepted each one — so schema and golden config can
  // never drift apart silently.
  std::istringstream in(read_file(t1_path()));
  const config::RawConfig raw = config::RawConfig::parse(in, "t1");
  for (const config::KeySpec& k : config::device_schema()) {
    EXPECT_TRUE(raw.has(k.key)) << "t1 missing schema key " << k.key;
  }
  for (const auto& [key, entry] : raw.entries()) {
    EXPECT_NE(config::find_key(key), nullptr) << "unknown key " << key;
  }
}

TEST(DeviceLoader, UnknownSectionAndKeyDiagnostics) {
  EXPECT_EQ(device_error("[cpu]\ncores = 4\n"),
            "test.cfg:2: unknown section [cpu] (see docs/DEVICE_CONFIGS.md "
            "for the schema)");
  const std::string msg =
      device_error(t1_with("banks = 8", "banks_count = 8"));
  EXPECT_NE(msg.find("unknown key 'memory.banks_count'"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("[memory] section"), std::string::npos) << msg;
}

TEST(DeviceLoader, MissingRequiredKeysReportedTogether) {
  const std::string msg = device_error(
      "[device]\nname = x\nkind = pcm\nlevels = 4\n");
  EXPECT_NE(msg.find("test.cfg: missing required key(s):"),
            std::string::npos)
      << msg;
  // All absences in one message, not just the first.
  EXPECT_NE(msg.find(" memory.capacity"), std::string::npos) << msg;
  EXPECT_NE(msg.find(" m_metric.state3.sigma_alpha"), std::string::npos)
      << msg;
}

TEST(DeviceLoader, TypedValueDiagnostics) {
  // Non-numeric where a number is required.
  EXPECT_NE(device_error(t1_with("banks = 8", "banks = eight"))
                .find("key 'memory.banks': expected a number, got 'eight'"),
            std::string::npos);
  // Unknown unit suffix, naming the expected family.
  EXPECT_NE(device_error(t1_with("r_read = 150 ns", "r_read = 150 furlongs"))
                .find("unknown unit suffix 'furlongs' — expected a time in "
                      "ns/us/ms/s (base: nanoseconds)"),
            std::string::npos);
  // A suffix on a dimensionless key is an error, not ignored.
  EXPECT_NE(device_error(t1_with("bch_t = 8", "bch_t = 8 ns"))
                .find("key 'ecc.bch_t': unknown unit suffix 'ns' — expected "
                      "a dimensionless number (no unit suffix)"),
            std::string::npos);
  // Range violation.
  EXPECT_NE(device_error(t1_with("bch_t = 8", "bch_t = 99"))
                .find("key 'ecc.bch_t': value 99 out of range [1, 32]"),
            std::string::npos);
  // Fractional value for an integral key (in base units).
  EXPECT_NE(device_error(t1_with("write = 1000 ns", "write = 1.5 ns"))
                .find("key 'timing.write': expected an integral value"),
            std::string::npos);
  // Malformed boolean.
  EXPECT_NE(device_error(t1_with("use_m_sense = true",
                                 "use_m_sense = maybe"))
                .find("key 'scrub.use_m_sense': not a boolean: 'maybe'"),
            std::string::npos);
}

TEST(DeviceLoader, CrossFieldDiagnostics) {
  EXPECT_NE(device_error(t1_with("kind = pcm", "kind = dram"))
                .find("key 'device.kind': expected pcm, rram, or nand"),
            std::string::npos);
  // A non-4-level device points at the mapping documentation.
  EXPECT_NE(device_error(t1_with("levels = 4", "levels = 8"))
                .find("this build models 4-level cells"),
            std::string::npos);
  EXPECT_NE(device_error(t1_with("data_cells = 256", "data_cells = 128"))
                .find("key 'geometry.data_cells': must equal 4 * "
                      "memory.line_bytes"),
            std::string::npos);
  EXPECT_NE(device_error(t1_with("capacity = 16 GB", "capacity = 1000000001"))
                .find("key 'memory.capacity': must divide evenly"),
            std::string::npos);
  EXPECT_NE(device_error(t1_with("state1.mu = 4", "state1.mu = 2"))
                .find("state means must be strictly increasing"),
            std::string::npos);
}

TEST(DeviceLoader, UnitSuffixesConvertToBaseUnits) {
  DeviceConfig d = parse_text(
      t1_with("interval = 640 s", "interval = 2 min"));
  EXPECT_DOUBLE_EQ(d.scrub.interval_s, 120.0);
  d = parse_text(t1_with("r_read = 150 ns", "r_read = 1 us"));
  EXPECT_EQ(d.timing.r_read.v, 1000);
  d = parse_text(t1_with("capacity = 16 GB", "capacity = 2048 MB"));
  EXPECT_EQ(d.org.capacity_bytes, 2048ull << 20);
  d = parse_text(t1_with("r_read = 1000 pJ", "r_read = 1 nJ"));
  EXPECT_DOUBLE_EQ(d.energy.r_read.v, 1000.0);
  d = parse_text(t1_with("static_power = 0.35 W", "static_power = 350 mW"));
  EXPECT_DOUBLE_EQ(d.energy.static_watts, 0.35);
}

// ------------------------------------------------------ golden configs --

void expect_metric_eq(const drift::MetricConfig& a,
                      const drift::MetricConfig& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.t0_seconds, b.t0_seconds);
  EXPECT_EQ(a.program_halfwidth, b.program_halfwidth);
  EXPECT_EQ(a.boundary_halfwidth, b.boundary_halfwidth);
  for (std::size_t i = 0; i < drift::kNumStates; ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.states[i].mu, b.states[i].mu);
    EXPECT_EQ(a.states[i].sigma, b.states[i].sigma);
    EXPECT_EQ(a.states[i].mu_alpha, b.states[i].mu_alpha);
    EXPECT_EQ(a.states[i].sigma_alpha, b.states[i].sigma_alpha);
  }
}

TEST(GoldenConfigs, T1ReproducesBuiltinBitForBit) {
  // The default-equivalence guarantee (DESIGN.md §13): every double
  // compared with EXPECT_EQ, not a tolerance — the externalized device
  // must be indistinguishable from the compiled-in one.
  const DeviceConfig t1 = config::load_device(t1_path());
  const DeviceConfig& b = config::builtin_device();
  EXPECT_EQ(t1.name, b.name);
  EXPECT_EQ(t1.kind, b.kind);
  EXPECT_EQ(t1.description, b.description);
  expect_metric_eq(t1.r_metric, b.r_metric);
  expect_metric_eq(t1.m_metric, b.m_metric);
  EXPECT_EQ(t1.geometry.data_cells, b.geometry.data_cells);
  EXPECT_EQ(t1.geometry.ecc_cells, b.geometry.ecc_cells);
  EXPECT_EQ(t1.org.capacity_bytes, b.org.capacity_bytes);
  EXPECT_EQ(t1.org.num_banks, b.org.num_banks);
  EXPECT_EQ(t1.org.line_bytes, b.org.line_bytes);
  EXPECT_EQ(t1.org.cells_per_line, b.org.cells_per_line);
  EXPECT_EQ(t1.org.lines_per_scrub, b.org.lines_per_scrub);
  EXPECT_EQ(t1.timing.r_read.v, b.timing.r_read.v);
  EXPECT_EQ(t1.timing.m_read.v, b.timing.m_read.v);
  EXPECT_EQ(t1.timing.rm_read.v, b.timing.rm_read.v);
  EXPECT_EQ(t1.timing.write.v, b.timing.write.v);
  EXPECT_EQ(t1.timing.bus_transfer.v, b.timing.bus_transfer.v);
  EXPECT_EQ(t1.energy.r_read.v, b.energy.r_read.v);
  EXPECT_EQ(t1.energy.m_read.v, b.energy.m_read.v);
  EXPECT_EQ(t1.energy.cell_write.v, b.energy.cell_write.v);
  EXPECT_EQ(t1.energy.internal_sense_scale, b.energy.internal_sense_scale);
  EXPECT_EQ(t1.energy.tlc_write_scale, b.energy.tlc_write_scale);
  EXPECT_EQ(t1.energy.static_watts, b.energy.static_watts);
  EXPECT_EQ(t1.ecc.bch_t, b.ecc.bch_t);
  EXPECT_EQ(t1.ecc.ecp_pointers, b.ecc.ecp_pointers);
  EXPECT_EQ(t1.scrub.interval_s, b.scrub.interval_s);
  EXPECT_EQ(t1.scrub.w, b.scrub.w);
  EXPECT_EQ(t1.scrub.use_m_sense, b.scrub.use_m_sense);
}

TEST(GoldenConfigs, BuiltinMatchesLegacyCompiledConstants) {
  // builtin_device() is the old hard-coded stack, verbatim.
  const DeviceConfig& b = config::builtin_device();
  expect_metric_eq(b.r_metric, drift::r_metric());
  expect_metric_eq(b.m_metric, drift::m_metric());
  EXPECT_EQ(b.org.capacity_bytes, pcm::MemoryOrg{}.capacity_bytes);
  EXPECT_EQ(b.timing.write.v, pcm::TimingParams{}.write.v);
  EXPECT_EQ(b.energy.cell_write.v, pcm::EnergyParams{}.cell_write.v);
}

TEST(GoldenConfigs, T2DiffersFromT1OnlyInBoundaries) {
  const DeviceConfig t1 = config::load_device(t1_path());
  const DeviceConfig t2 = config::load_device(
      std::string(RD_CONFIGS_DIR) + "/pcm_readduo_t2.cfg");
  EXPECT_EQ(t2.name, "pcm-readduo-t2");
  EXPECT_EQ(t2.r_metric.boundary_halfwidth, 3.0);
  EXPECT_EQ(t2.m_metric.boundary_halfwidth, 3.0);
  // Everything else is t1, bit-for-bit.
  DeviceConfig patched = t2;
  patched.name = t1.name;
  patched.description = t1.description;
  patched.r_metric.boundary_halfwidth = t1.r_metric.boundary_halfwidth;
  patched.m_metric.boundary_halfwidth = t1.m_metric.boundary_halfwidth;
  expect_metric_eq(patched.r_metric, t1.r_metric);
  expect_metric_eq(patched.m_metric, t1.m_metric);
  EXPECT_EQ(patched.org.capacity_bytes, t1.org.capacity_bytes);
  EXPECT_EQ(patched.scrub.interval_s, t1.scrub.interval_s);
}

TEST(GoldenConfigs, CrossTechnologyConfigsValidate) {
  const DeviceConfig rram = config::load_device(
      std::string(RD_CONFIGS_DIR) + "/rram_iss2012.cfg");
  EXPECT_EQ(rram.kind, "rram");
  EXPECT_LT(rram.r_metric.states[3].mu_alpha,
            drift::r_metric().states[3].mu_alpha);
  const DeviceConfig nand = config::load_device(
      std::string(RD_CONFIGS_DIR) + "/nand_tlc_retention.cfg");
  EXPECT_EQ(nand.kind, "nand");
  EXPECT_EQ(nand.r_metric.t0_seconds, 3600.0);
  // Higher-charged NAND states leak faster: alphas increase with index.
  for (std::size_t i = 1; i < drift::kNumStates; ++i) {
    EXPECT_GT(nand.r_metric.states[i].mu_alpha,
              nand.r_metric.states[i - 1].mu_alpha);
  }
}

TEST(GoldenConfigs, AdaptersDeriveChipAndSimParameters) {
  const DeviceConfig& b = config::builtin_device();
  const pcm::ChipConfig chip = config::make_chip_config(b);
  EXPECT_EQ(chip.data_bytes, 64u);
  EXPECT_EQ(chip.bch_t, 8u);
  EXPECT_EQ(chip.ecp_pointers, 6u);
  EXPECT_DOUBLE_EQ(chip.scrub_interval_s, 640.0);
  EXPECT_TRUE(chip.scrub_with_m);
  memsim::SimConfig sim;
  config::apply_device(b, sim);
  EXPECT_EQ(sim.org.capacity_bytes, b.org.capacity_bytes);
  EXPECT_EQ(sim.timing.write.v, b.timing.write.v);
}

// -------------------------------------------------- doc consistency ----

TEST(DeviceDocs, EveryRegisteredKeyIsDocumented) {
  // docs/DEVICE_CONFIGS.md is the config reference; a schema key that is
  // not documented there fails this test. Per-state keys are documented
  // once as stateN.<field>.
  const std::string doc =
      read_file(std::string(RD_DOCS_DIR) + "/DEVICE_CONFIGS.md");
  for (const config::KeySpec& k : config::device_schema()) {
    std::string pattern = k.key;
    const std::size_t st = pattern.find("state");
    if (st != std::string::npos &&
        std::isdigit(static_cast<unsigned char>(pattern[st + 5]))) {
      pattern.replace(st, 6, "stateN");
    }
    // The section prefix is implied by the doc's section headings; look
    // for the bare key (e.g. "`boundary_halfwidth`" or "stateN.mu").
    const std::string bare = pattern.substr(pattern.find('.') + 1);
    EXPECT_NE(doc.find("`" + bare + "`"), std::string::npos)
        << "schema key " << k.key << " (as `" << bare
        << "`) is not documented in docs/DEVICE_CONFIGS.md";
  }
}

TEST(ActiveDevice, PinningAfterResolutionIsAnError) {
  // Whatever this test process resolved first (builtin unless the suite
  // ran under READDUO_DEVICE), a later set_active_device must refuse:
  // singletons have already latched the metrics.
  (void)config::active_device();
  EXPECT_FALSE(config::active_device_source().empty());
  EXPECT_THROW(
      config::set_active_device(config::builtin_device(), "late.cfg"),
      config::ConfigError);
}

}  // namespace
}  // namespace rd
