// Wire-codec tests: CRC pin, frame round trips, and the malformed-frame
// corpus (DESIGN.md §12). Every bad input must map to the documented
// DecodeStatus — never a crash, hang, or desynchronized parse — and the
// whole file runs under the UBSan stage of run_static_analysis.sh, so
// the byte-wise codec is also checked for undefined behavior.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "net/wire_stats.h"
#include "service/memory_service.h"
#include "stats/histogram.h"

namespace rd::net {
namespace {

std::string encode(std::uint8_t type, std::uint64_t id,
                   std::string_view payload) {
  std::string out;
  encode_frame(type, id, payload, out);
  return out;
}

TEST(Crc32, KnownAnswer) {
  // The IEEE check value: any implementation of this polynomial must
  // produce it. A codec change that breaks cross-version interop fails
  // here before any socket test runs.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_NE(crc32(std::string("\0", 1)), crc32(""));
}

TEST(Frame, RoundTripBasic) {
  const std::string payload("hello \0 wire", 12);  // embedded NUL
  std::string buf = encode(type_of(Op::kRead), 77, payload);
  EXPECT_EQ(buf.size(), kHeaderSize + payload.size());

  Frame f;
  ASSERT_EQ(decode_frame(buf, kDefaultMaxPayload, f), DecodeStatus::kFrame);
  EXPECT_EQ(f.type, type_of(Op::kRead));
  EXPECT_EQ(f.id, 77u);
  EXPECT_EQ(f.payload, payload);
  EXPECT_TRUE(buf.empty());  // consumed exactly
}

TEST(Frame, RoundTripEmptyPayloadAndIdEdges) {
  for (const std::uint64_t id :
       {std::uint64_t{0}, std::uint64_t{1}, ~std::uint64_t{0}}) {
    std::string buf = encode(type_of(Status::kOk), id, "");
    Frame f;
    ASSERT_EQ(decode_frame(buf, kDefaultMaxPayload, f),
              DecodeStatus::kFrame);
    EXPECT_EQ(f.id, id);
    EXPECT_TRUE(f.payload.empty());
  }
}

TEST(Frame, RoundTripMaxPayload) {
  const std::size_t max = 4096;
  std::string big(max, '\xa5');
  std::string buf = encode(type_of(Op::kWrite), 1, big);
  Frame f;
  ASSERT_EQ(decode_frame(buf, max, f), DecodeStatus::kFrame);
  EXPECT_EQ(f.payload, big);

  // One byte over the bound: fatal, buffer untouched.
  std::string over = encode(type_of(Op::kWrite), 1, big + 'x');
  const std::string before = over;
  EXPECT_EQ(decode_frame(over, max, f), DecodeStatus::kOversize);
  EXPECT_EQ(over, before);
}

TEST(Frame, EveryPrefixNeedsMore) {
  const std::string whole = encode(type_of(Op::kScrub), 9, "payload");
  for (std::size_t n = 0; n < whole.size(); ++n) {
    std::string buf = whole.substr(0, n);
    const std::string before = buf;
    Frame f;
    EXPECT_EQ(decode_frame(buf, kDefaultMaxPayload, f),
              DecodeStatus::kNeedMore)
        << "prefix length " << n;
    EXPECT_EQ(buf, before);  // kNeedMore never consumes
  }
}

TEST(Frame, TruncatedHeaderCorpus) {
  // Truncations of a valid header are kNeedMore; truncations that already
  // contradict the magic are rejected without waiting for more bytes.
  std::string bad = "GET / HTTP/1.1\r\n";
  std::size_t total = 0;
  EXPECT_EQ(frame_extent(bad, kDefaultMaxPayload, total),
            DecodeStatus::kBadMagic);
  std::string two = "GE";
  EXPECT_EQ(frame_extent(two, kDefaultMaxPayload, total),
            DecodeStatus::kBadMagic);
}

TEST(Frame, BadMagic) {
  std::string buf = encode(type_of(Op::kRead), 1, "x");
  buf[0] = 'X';
  const std::string before = buf;
  Frame f;
  EXPECT_EQ(decode_frame(buf, kDefaultMaxPayload, f),
            DecodeStatus::kBadMagic);
  EXPECT_EQ(buf, before);
}

TEST(Frame, BadVersion) {
  std::string buf = encode(type_of(Op::kRead), 1, "x");
  buf[2] = static_cast<char>(kVersion + 1);
  Frame f;
  EXPECT_EQ(decode_frame(buf, kDefaultMaxPayload, f),
            DecodeStatus::kBadVersion);
}

TEST(Frame, BadReserved) {
  std::string buf = encode(type_of(Op::kRead), 1, "x");
  buf[21] = 1;  // reserved word must be zero
  Frame f;
  EXPECT_EQ(decode_frame(buf, kDefaultMaxPayload, f),
            DecodeStatus::kBadReserved);
}

TEST(Frame, CrcMismatchConsumesAndContinues) {
  std::string buf = encode(type_of(Op::kWrite), 5, "abcdef");
  buf[kHeaderSize + 2] ^= 0x40;  // corrupt the payload, not the header
  buf += encode(type_of(Op::kRead), 6, "next");

  Frame f;
  ASSERT_EQ(decode_frame(buf, kDefaultMaxPayload, f), DecodeStatus::kBadCrc);
  // The id survives (the reply needs it); the payload does not.
  EXPECT_EQ(f.id, 5u);
  EXPECT_TRUE(f.payload.empty());
  // The stream resynchronizes on the very next frame.
  ASSERT_EQ(decode_frame(buf, kDefaultMaxPayload, f), DecodeStatus::kFrame);
  EXPECT_EQ(f.id, 6u);
  EXPECT_EQ(f.payload, "next");
  EXPECT_TRUE(buf.empty());
}

TEST(Frame, CorruptHeaderCrcFieldIsBadCrc) {
  std::string buf = encode(type_of(Op::kWrite), 5, "abcdef");
  buf[16] ^= 0x01;  // the CRC field itself
  Frame f;
  EXPECT_EQ(decode_frame(buf, kDefaultMaxPayload, f), DecodeStatus::kBadCrc);
  EXPECT_TRUE(buf.empty());
}

TEST(Frame, TrailingGarbageAfterValidFrame) {
  std::string buf = encode(type_of(Op::kBye), 2, "");
  buf += "trailing garbage that is not a frame";
  Frame f;
  ASSERT_EQ(decode_frame(buf, kDefaultMaxPayload, f), DecodeStatus::kFrame);
  EXPECT_EQ(f.id, 2u);
  EXPECT_EQ(decode_frame(buf, kDefaultMaxPayload, f),
            DecodeStatus::kBadMagic);
}

TEST(Frame, ExtentAgreesWithDecode) {
  const std::string payload = "sixteen byte pay";
  std::string buf = encode(type_of(Op::kStats), 3, payload);
  std::size_t total = 0;
  ASSERT_EQ(frame_extent(buf, kDefaultMaxPayload, total),
            DecodeStatus::kFrame);
  EXPECT_EQ(total, kHeaderSize + payload.size());
}

// Deterministic fuzz: random byte soup and mutated valid frames through
// the decode loop. The parser must always terminate with a documented
// status and never read out of bounds (UBSan/ASan enforce the latter).
TEST(Frame, DeterministicFuzzNeverCrashes) {
  Rng rng(0xF00D, /*stream=*/1);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string buf;
    if (iter % 2 == 0) {
      // Pure noise.
      const std::size_t n = static_cast<std::size_t>(rng.uniform_below(96));
      for (std::size_t i = 0; i < n; ++i) {
        buf.push_back(static_cast<char>(rng.uniform_below(256)));
      }
    } else {
      // A valid frame with one mutated byte.
      std::string payload(static_cast<std::size_t>(rng.uniform_below(32)),
                          'p');
      buf = encode(static_cast<std::uint8_t>(rng.uniform_below(256)),
                   rng.next(), payload);
      const std::size_t at =
          static_cast<std::size_t>(rng.uniform_below(buf.size()));
      buf[at] = static_cast<char>(buf[at] ^
                                  (1 + rng.uniform_below(255)));
    }
    // Drain the buffer like the server does; bounded by construction.
    for (int guard = 0; guard < 64; ++guard) {
      Frame f;
      const DecodeStatus st = decode_frame(buf, 4096, f);
      if (st == DecodeStatus::kFrame || st == DecodeStatus::kBadCrc) {
        continue;  // consumed; keep parsing
      }
      EXPECT_TRUE(st == DecodeStatus::kNeedMore || decode_is_fatal(st));
      break;
    }
  }
}

TEST(PayloadReader, ReadsAndDone) {
  std::string p;
  put_u8(p, 7);
  put_u32(p, 0xDEADBEEFu);
  put_u64(p, ~std::uint64_t{0});
  put_i64(p, -42);
  PayloadReader r(p);
  EXPECT_EQ(r.u8(), 7u);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), ~std::uint64_t{0});
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.done());
}

TEST(PayloadReader, ShortPayloadFailsClosed) {
  std::string p;
  put_u32(p, 1);
  PayloadReader r(p);
  (void)r.u64();  // reads past the end
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
  EXPECT_EQ(r.u8(), 0u);  // sticky failure returns zeros
}

TEST(PayloadReader, TrailingBytesAreNotDone) {
  std::string p;
  put_u64(p, 1);
  put_u8(p, 9);
  PayloadReader r(p);
  (void)r.u64();
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.done());  // one unread byte left
}

TEST(Body, RequestRoundTrip) {
  const RequestBody b{123, 456, Ns{789}};
  RequestBody out;
  ASSERT_TRUE(decode_request_body(encode_request_body(b), out));
  EXPECT_EQ(out.seq, 123u);
  EXPECT_EQ(out.line, 456u);
  EXPECT_EQ(out.arrival.v, 789);
}

TEST(Body, RequestRejectsWrongSize) {
  RequestBody out;
  EXPECT_FALSE(decode_request_body("", out));
  EXPECT_FALSE(decode_request_body("short", out));
  std::string long_p = encode_request_body(RequestBody{});
  long_p += 'x';
  EXPECT_FALSE(decode_request_body(long_p, out));
}

TEST(Body, CompletionRoundTrip) {
  const CompletionBody b{3, Ns{1000}, Ns{2500}};
  CompletionBody out;
  ASSERT_TRUE(decode_completion_body(encode_completion_body(b), out));
  EXPECT_EQ(out.cls, 3u);
  EXPECT_EQ(out.enqueue.v, 1000);
  EXPECT_EQ(out.complete.v, 2500);
}

TEST(Body, CompletionRejectsWrongSize) {
  CompletionBody out;
  EXPECT_FALSE(decode_completion_body("", out));
  std::string long_p = encode_completion_body(CompletionBody{});
  long_p += 'x';
  EXPECT_FALSE(decode_completion_body(long_p, out));
}

TEST(StatsBlob, RoundTrip) {
  service::ServiceStats st;
  st.submitted = 10;
  st.rejected = 1;
  st.admitted = 9;
  st.completed = 8;
  st.scrubs = 7;
  st.write_cancellations = 6;
  st.scrub_rewrites_dropped = 5;
  st.seq_held = 4;
  st.virtual_time = Ns{123456789};
  st.metrics.lat(stats::ReqClass::kRRead).record(Ns{100});
  st.metrics.lat(stats::ReqClass::kDemandWrite).record(Ns{900});
  const WireServiceInfo info{4, 4096, 256, 2};

  service::ServiceStats back;
  WireServiceInfo binfo;
  ASSERT_TRUE(decode_stats(encode_stats(st, info), back, binfo));
  EXPECT_EQ(back.submitted, 10u);
  EXPECT_EQ(back.rejected, 1u);
  EXPECT_EQ(back.completed, 8u);
  EXPECT_EQ(back.seq_held, 4u);
  EXPECT_EQ(back.virtual_time.v, 123456789);
  EXPECT_EQ(binfo.shards, 4u);
  EXPECT_EQ(binfo.threads, 2u);
  // Histograms restore bit-exactly — this is what the distributed
  // cross-check in readduo_load relies on.
  EXPECT_TRUE(back.metrics.lat(stats::ReqClass::kRRead) ==
              st.metrics.lat(stats::ReqClass::kRRead));
  EXPECT_TRUE(back.metrics.lat(stats::ReqClass::kDemandWrite) ==
              st.metrics.lat(stats::ReqClass::kDemandWrite));
}

TEST(StatsBlob, RejectsTruncationAndGarbage) {
  service::ServiceStats st;
  const WireServiceInfo info{1, 1, 1, 1};
  const std::string blob = encode_stats(st, info);
  service::ServiceStats back;
  WireServiceInfo binfo;
  EXPECT_FALSE(decode_stats("", back, binfo));
  EXPECT_FALSE(decode_stats(blob.substr(0, blob.size() / 2), back, binfo));
  EXPECT_FALSE(decode_stats(blob + "x", back, binfo));
}

}  // namespace
}  // namespace rd::net
