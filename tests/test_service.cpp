// Determinism and liveness tests for the memory-service front end.
//
// The contract under test (DESIGN.md §11): a shard's final state is a
// pure function of (its seed, its admitted request sequence) — never of
// worker threads, batch timing, or wall clock. With one submitting
// client the per-shard request sequences are deterministic, so whole
// service runs are bit-identical across repeats and per-shard results
// are bit-identical across thread counts.
#include "service/memory_service.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "stats/metrics.h"
#include "trace/workload.h"

namespace rd::service {
namespace {

ServiceConfig small_config(unsigned threads) {
  ServiceConfig cfg;
  cfg.num_shards = 4;
  cfg.queue_capacity = 1024;
  cfg.batch_size = 64;
  cfg.worker_threads = threads;
  cfg.sim.seed = 7;
  cfg.scheme = readduo::SchemeKind::kHybrid;
  cfg.workload = trace::workload_by_name("bzip2");
  return cfg;
}

/// Deterministic client: `n` requests with the workload's locality and
/// write mix, arrivals 500 ns apart. Returns the number accepted
/// (retrying on backpressure until every request lands).
std::uint64_t replay(MemoryService& svc, const trace::Workload& w,
                     std::uint64_t n, std::uint64_t seed) {
  Rng rng(seed, /*stream=*/0xC11E47);
  const double write_fraction = w.wpki / (w.rpki + w.wpki);
  Ns t{0};
  for (std::uint64_t i = 1; i <= n; ++i) {
    Request r;
    r.id = i;
    r.arrival = t;
    t += Ns{500};
    r.is_write = rng.bernoulli(write_fraction);
    r.line = rng.zipf(w.footprint_lines, w.zipf_s);
    while (!svc.submit(r)) {
    }
  }
  return n;
}

struct RunResult {
  ServiceStats totals;
  std::vector<stats::SimMetrics> shard_metrics;
  std::vector<std::uint64_t> shard_reads, shard_writes, shard_scrubs;
};

RunResult run_service(unsigned threads, std::uint64_t n) {
  const ServiceConfig cfg = small_config(threads);
  MemoryService svc(cfg);
  replay(svc, cfg.workload, n, cfg.sim.seed);
  svc.drain();
  svc.stop();
  RunResult out;
  out.totals = svc.stats();
  for (unsigned s = 0; s < svc.num_shards(); ++s) {
    const memsim::SimResult& r = svc.shard_result(s);
    out.shard_metrics.push_back(r.metrics);
    out.shard_reads.push_back(r.reads_serviced);
    out.shard_writes.push_back(r.writes_serviced);
    out.shard_scrubs.push_back(r.scrubs_serviced);
  }
  return out;
}

TEST(Service, CompletesEverySubmittedRequest) {
  const std::uint64_t n = 20'000;
  const RunResult r = run_service(/*threads=*/2, n);
  EXPECT_EQ(r.totals.submitted, n);
  EXPECT_EQ(r.totals.admitted, n);
  EXPECT_EQ(r.totals.completed, n);
  // Every completion was recorded into exactly one latency class.
  std::uint64_t recorded = 0;
  recorded += r.totals.metrics.demand_reads().count();
  recorded += r.totals.metrics.lat(stats::ReqClass::kDemandWrite).count();
  EXPECT_GE(recorded, n);
}

TEST(Service, ScrubEngineTicksBetweenBatches) {
  // 20k requests * 500 ns = 10 ms of virtual time; the per-bank scrub
  // period is ~3.8 us, so thousands of background senses must have run
  // without any explicit scrub driving by the client.
  const RunResult r = run_service(/*threads=*/2, 20'000);
  EXPECT_GT(r.totals.scrubs, 1000u);
  EXPECT_GT(
      r.totals.metrics.lat(stats::ReqClass::kScrubRewrite).count(), 0u);
}

TEST(Service, FixedSeedRepeatIdentity) {
  const RunResult a = run_service(/*threads=*/1, 10'000);
  const RunResult b = run_service(/*threads=*/1, 10'000);
  ASSERT_EQ(a.shard_metrics.size(), b.shard_metrics.size());
  for (std::size_t s = 0; s < a.shard_metrics.size(); ++s) {
    EXPECT_TRUE(a.shard_metrics[s] == b.shard_metrics[s]) << "shard " << s;
    EXPECT_EQ(a.shard_reads[s], b.shard_reads[s]);
    EXPECT_EQ(a.shard_writes[s], b.shard_writes[s]);
    EXPECT_EQ(a.shard_scrubs[s], b.shard_scrubs[s]);
  }
  EXPECT_TRUE(a.totals.metrics == b.totals.metrics);
  EXPECT_EQ(a.totals.virtual_time.v, b.totals.virtual_time.v);
}

TEST(Service, ShardsIdenticalAcrossThreadCounts) {
  // The PR 1 mc_ler rule applied to the service: per-shard results are a
  // function of (seed, shard request sequence) only, so THREADS=1 and
  // THREADS=4 runs agree shard by shard, bit for bit.
  const RunResult one = run_service(/*threads=*/1, 10'000);
  const RunResult four = run_service(/*threads=*/4, 10'000);
  ASSERT_EQ(one.shard_metrics.size(), four.shard_metrics.size());
  for (std::size_t s = 0; s < one.shard_metrics.size(); ++s) {
    EXPECT_TRUE(one.shard_metrics[s] == four.shard_metrics[s])
        << "shard " << s;
    EXPECT_EQ(one.shard_reads[s], four.shard_reads[s]);
    EXPECT_EQ(one.shard_writes[s], four.shard_writes[s]);
    EXPECT_EQ(one.shard_scrubs[s], four.shard_scrubs[s]);
  }
  EXPECT_TRUE(one.totals.metrics == four.totals.metrics);
}

TEST(Service, BoundedQueueRejectsWhenFull) {
  // A tiny queue with a paused consumer must bounce submissions rather
  // than grow without bound; after the backlog drains the rejected
  // request is accepted and completes.
  ServiceConfig cfg = small_config(/*threads=*/1);
  cfg.queue_capacity = 8;
  MemoryService svc(cfg);
  // Race the single worker: saturate one shard until a rejection is
  // observed (the worker drains 64-batches, so keep the pressure up).
  std::uint64_t id = 0;
  bool saw_reject = false;
  Ns t{0};
  for (int burst = 0; burst < 10'000 && !saw_reject; ++burst) {
    Request r;
    r.id = ++id;
    r.line = 0;  // all on shard 0
    r.arrival = t;
    t += Ns{1};
    if (!svc.submit(r)) {
      saw_reject = true;
      while (!svc.submit(r)) {
      }
    }
  }
  svc.drain();
  svc.stop();
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.completed, id);
  EXPECT_TRUE(saw_reject);
  EXPECT_GE(st.rejected, 1u);
}

TEST(Service, StatsSnapshotSafeWhileRunning) {
  ServiceConfig cfg = small_config(/*threads=*/2);
  MemoryService svc(cfg);
  Rng rng(3, 5);
  Ns t{0};
  std::uint64_t submitted = 0;
  for (int i = 1; i <= 5'000; ++i) {
    Request r;
    r.id = static_cast<std::uint64_t>(i);
    r.line = rng.uniform_below(4096);
    r.is_write = (i % 5 == 0);
    r.arrival = t;
    t += Ns{200};
    while (!svc.submit(r)) {
    }
    ++submitted;
    if (i % 500 == 0) {
      const ServiceStats st = svc.stats();  // live, workers running
      EXPECT_LE(st.completed, st.admitted);
      EXPECT_LE(st.admitted, st.submitted);
      EXPECT_EQ(st.submitted, submitted);
    }
  }
  svc.stop();  // stop() without explicit drain() must still quiesce
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.completed, submitted);
}

}  // namespace
}  // namespace rd::service
