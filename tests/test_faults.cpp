// The fault-injection subsystem (READDUO_FAULTS): spec parsing, decision
// determinism, the chip / ECC / LWT / harness seams, and the PR's
// acceptance criteria — (a) identical plan + seed gives bit-identical
// results across thread counts, (b) harness-only plans leave simulation
// outputs bit-identical to faults-off, (c) corrupted cache entries and
// truncated trace files are absorbed with a report, never an abort.
#include "faults/injector.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/env.h"
#include "common/units.h"
#include "faults/fault_plan.h"
#include "harness.h"
#include "net/frame.h"
#include "pcm/chip.h"
#include "readduo/schemes.h"
#include "trace/trace_io.h"
#include "trace/workload.h"

namespace rd {
namespace {

using faults::FaultClass;
using faults::FaultEngine;
using faults::FaultPlan;

/// Scoped environment-variable override; restores the old value on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = env_cstr(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

/// Scoped process fault engine built from a spec; restores "off" on exit.
class ScopedFaultEngine {
 public:
  explicit ScopedFaultEngine(const std::string& spec) {
    faults::set_engine_for_test(
        std::make_unique<FaultEngine>(FaultPlan::parse(spec)));
  }
  ~ScopedFaultEngine() { faults::set_engine_for_test(nullptr); }

  const FaultEngine* get() const { return faults::engine(); }
};

// --- FaultPlan parsing ------------------------------------------------------

TEST(FaultPlanParse, DefaultsAndSingleClass) {
  const FaultPlan p = FaultPlan::parse("stuck:p=0.25");
  EXPECT_EQ(p.seed, 1u);
  EXPECT_DOUBLE_EQ(p.stuck_p, 0.25);
  EXPECT_EQ(p.stuck_level, 3u);
  EXPECT_TRUE(p.stuck_cells.empty());
  EXPECT_DOUBLE_EQ(p.sense_p, 0.0);
  EXPECT_TRUE(p.any());
  EXPECT_TRUE(p.affects_simulation());
}

TEST(FaultPlanParse, AllClassesAndSeed) {
  const FaultPlan p = FaultPlan::parse(
      "seed=99;stuck:p=0.1,level=0;sense:p=0.2,mag=0.75;lwt-vec:p=0.3;"
      "lwt-ind:p=0.4;bch:p=0.5,e=17;cache:p=0.6,mode=truncate;"
      "trace:p=0.7,n=2;wire:p=0.8");
  EXPECT_EQ(p.seed, 99u);
  EXPECT_DOUBLE_EQ(p.stuck_p, 0.1);
  EXPECT_EQ(p.stuck_level, 0u);
  EXPECT_DOUBLE_EQ(p.sense_p, 0.2);
  EXPECT_DOUBLE_EQ(p.sense_mag, 0.75);
  EXPECT_DOUBLE_EQ(p.lwt_vec_p, 0.3);
  EXPECT_DOUBLE_EQ(p.lwt_ind_p, 0.4);
  EXPECT_DOUBLE_EQ(p.bch_p, 0.5);
  EXPECT_EQ(p.bch_e, 17u);
  EXPECT_DOUBLE_EQ(p.cache_p, 0.6);
  EXPECT_TRUE(p.cache_truncate);
  EXPECT_DOUBLE_EQ(p.trace_p, 0.7);
  EXPECT_EQ(p.trace_fail_reads, 2u);
  EXPECT_DOUBLE_EQ(p.wire_p, 0.8);
}

TEST(FaultPlanParse, ExplicitStuckAddresses) {
  const FaultPlan p =
      FaultPlan::parse("stuck:line=2,cell=5,level=1;stuck:line=3,cell=0");
  ASSERT_EQ(p.stuck_cells.size(), 2u);
  EXPECT_EQ(p.stuck_cells[0], (faults::StuckAddress{2, 5, 1}));
  EXPECT_EQ(p.stuck_cells[1], (faults::StuckAddress{3, 0, 3}));
  EXPECT_DOUBLE_EQ(p.stuck_p, 0.0);
  EXPECT_TRUE(p.affects_simulation());
}

TEST(FaultPlanParse, FileFormCommentsAndNewlines) {
  const FaultPlan p = FaultPlan::parse(
      "# fault plan for the nightly sweep\n"
      "seed=3\n"
      "bch:p=0.5,e=9   # boundary bursts\n"
      "\n"
      "trace:n=1\n");
  EXPECT_EQ(p.seed, 3u);
  EXPECT_DOUBLE_EQ(p.bch_p, 0.5);
  EXPECT_EQ(p.bch_e, 9u);
  EXPECT_EQ(p.trace_fail_reads, 1u);
  EXPECT_TRUE(p.affects_simulation());
}

TEST(FaultPlanParse, CanonicalRoundTrips) {
  const char* specs[] = {
      "seed=7;stuck:p=0.125,level=2",
      "stuck:line=1,cell=2,level=0;stuck:line=4,cell=9",
      "seed=42;sense:p=0.001,mag=0.5;bch:p=0.25,e=12",
      "lwt-vec:p=0.5;lwt-ind:p=0.25;cache:p=1,mode=truncate;trace:p=0.5,n=3",
      "seed=11;wire:p=0.01",
      "cache:p=0.5;trace:n=1;wire:p=0.125",
  };
  for (const char* s : specs) {
    const FaultPlan p = FaultPlan::parse(s);
    EXPECT_TRUE(FaultPlan::parse(p.canonical()) == p)
        << s << " canonical='" << p.canonical() << "'";
  }
}

TEST(FaultPlanParse, RejectsMalformedSpecsLoudly) {
  const char* bad[] = {
      "bogus:p=1",              // unknown class
      "stuck:p=1.5",            // probability out of range
      "stuck:p=-0.1",           // probability out of range
      "stuck:p=0.1,level=4",    // MLC has levels 0..3
      "sense:p=0.1,mag=-1",     // magnitude must be positive
      "bch:p=0.1,e=8",          // below the detection boundary
      "bch:p=0.1,e=18",         // above the design distance
      "cache:p=0.1,mode=weird", // unknown mode
      "seed=abc",               // malformed integer
      "seed=1x",                // trailing garbage in value
      "stuck:p=0.1;stuck:p=0.2",  // duplicate probabilistic clause
      "sense:p=0.1,p=0.2",      // duplicate key
      "sense:p=0.1,foo=2",      // unknown key
      "stuck:line=1",           // explicit address needs line and cell
      "wire",                   // wire needs p=
      "wire:p=2",               // probability out of range
      "wire:p=0.1,n=3",         // unknown key for wire
      "wire:p=0.1;wire:p=0.2",  // duplicate clause
  };
  for (const char* s : bad) {
    EXPECT_THROW(FaultPlan::parse(s), CheckFailure) << s;
  }
}

TEST(FaultPlanParse, HarnessOnlyClassesDoNotAffectSimulation) {
  const FaultPlan p = FaultPlan::parse("cache:p=1;trace:p=1,n=2;wire:p=1");
  EXPECT_TRUE(p.any());
  EXPECT_FALSE(p.affects_simulation());
}

// --- decision determinism ---------------------------------------------------

TEST(FaultEngineDeterminism, DecisionsArePureFunctionsOfKeys) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=7;stuck:p=0.01;sense:p=0.02,mag=0.4;lwt-vec:p=0.5;"
      "lwt-ind:p=0.5;bch:p=0.3,e=11");
  const FaultEngine a(plan);
  const FaultEngine b(plan);
  for (std::uint64_t line = 0; line < 32; ++line) {
    for (std::uint64_t cell = 0; cell < 8; ++cell) {
      EXPECT_EQ(a.stuck_level(line, cell), b.stuck_level(line, cell));
      // Repeated queries of one engine agree too (no hidden stream state).
      EXPECT_EQ(a.stuck_level(line, cell), a.stuck_level(line, cell));
      for (std::uint64_t serial = 0; serial < 4; ++serial) {
        EXPECT_DOUBLE_EQ(a.sense_offset(line, cell, serial),
                         b.sense_offset(line, cell, serial));
      }
    }
    const Ns now{static_cast<std::int64_t>(1000 + line * 7919)};
    EXPECT_EQ(a.lwt_vector_flip(line, now, 4), b.lwt_vector_flip(line, now, 4));
    EXPECT_EQ(a.lwt_index_overwrite(line, now, 4),
              b.lwt_index_overwrite(line, now, 4));
    EXPECT_EQ(a.extra_r_errors(line, now, 296),
              b.extra_r_errors(line, now, 296));
    EXPECT_EQ(a.bch_error_positions(line, line, 592),
              b.bch_error_positions(line, line, 592));
  }
}

TEST(FaultEngineDeterminism, DifferentSeedsDecorrelate) {
  FaultPlan p1 = FaultPlan::parse("seed=1;sense:p=0.5,mag=0.4");
  FaultPlan p2 = FaultPlan::parse("seed=2;sense:p=0.5,mag=0.4");
  const FaultEngine a(p1);
  const FaultEngine b(p2);
  unsigned differing = 0;
  for (std::uint64_t line = 0; line < 64; ++line) {
    for (std::uint64_t serial = 0; serial < 8; ++serial) {
      differing += a.sense_offset(line, 0, serial) !=
                   b.sense_offset(line, 0, serial);
    }
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultEngineDeterminism, BurstPositionsDistinctAndInRange) {
  const FaultEngine e(FaultPlan::parse("bch:p=1,e=17"));
  const std::vector<unsigned> burst = e.bch_error_positions(5, 0, 592);
  ASSERT_EQ(burst.size(), 17u);
  for (std::size_t i = 0; i < burst.size(); ++i) {
    EXPECT_LT(burst[i], 592u);
    for (std::size_t j = i + 1; j < burst.size(); ++j) {
      EXPECT_NE(burst[i], burst[j]);
    }
  }
  EXPECT_GE(e.count(FaultClass::kBchError), 1u);
}

// --- wire-frame corruption (the socket front end's fault seam) --------------

TEST(WireFaults, CorruptionIsDeterministicAndAlwaysChangesBytes) {
  const FaultPlan plan = FaultPlan::parse("seed=7;wire:p=0.3");
  const FaultEngine a(plan);
  const FaultEngine b(plan);
  unsigned fired = 0;
  for (std::uint64_t serial = 0; serial < 256; ++serial) {
    std::string pa = "payload bytes for frame corruption";
    std::string pb = pa;
    const std::string orig = pa;
    const bool hit_a = a.wire_corrupt(pa.data(), pa.size(), serial);
    const bool hit_b = b.wire_corrupt(pb.data(), pb.size(), serial);
    // Decision and mutation are pure functions of (bytes, serial).
    EXPECT_EQ(hit_a, hit_b);
    EXPECT_EQ(pa, pb);
    if (hit_a) {
      ++fired;
      // The XOR mask is nonzero by construction: a fired fault always
      // changes the payload, so the CRC check always catches it.
      EXPECT_NE(pa, orig);
    } else {
      EXPECT_EQ(pa, orig);
    }
  }
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, 256u);  // p=0.3 fires on some serials, not all
  EXPECT_EQ(a.count(FaultClass::kWireCorrupt), fired);
}

TEST(WireFaults, DisabledPlanAndEmptyPayloadNeverFire) {
  const FaultEngine off(FaultPlan::parse("cache:p=1"));
  std::string bytes = "abc";
  EXPECT_FALSE(off.wire_corrupt(bytes.data(), bytes.size(), 1));
  EXPECT_EQ(bytes, "abc");

  const FaultEngine on(FaultPlan::parse("wire:p=1"));
  EXPECT_FALSE(on.wire_corrupt(bytes.data(), 0, 1));
  EXPECT_EQ(on.count(FaultClass::kWireCorrupt), 0u);
}

TEST(WireFaults, CorruptedFrameAlwaysFailsCrc) {
  // End-to-end over the codec: corrupt the payload region of a valid
  // frame (exactly what the server seam does) and the decoder must
  // report kBadCrc — the fault can never pass as a clean frame.
  const FaultEngine e(FaultPlan::parse("wire:p=1"));
  for (std::uint64_t serial = 0; serial < 64; ++serial) {
    std::string buf;
    net::encode_frame(net::Op::kRead, serial + 1, "0123456789abcdef", buf);
    ASSERT_TRUE(e.wire_corrupt(buf.data() + net::kHeaderSize,
                               buf.size() - net::kHeaderSize, serial));
    net::Frame f;
    EXPECT_EQ(net::decode_frame(buf, net::kDefaultMaxPayload, f),
              net::DecodeStatus::kBadCrc);
  }
}

// --- functional-chip seams --------------------------------------------------

std::vector<std::uint8_t> test_payload(unsigned bytes, unsigned salt) {
  std::vector<std::uint8_t> data(bytes);
  for (unsigned i = 0; i < bytes; ++i) {
    data[i] = static_cast<std::uint8_t>((i * 131 + salt) & 0xff);
  }
  return data;
}

TEST(ChipFaults, PlannedStuckCellsAreRetiredByEcp) {
  const FaultEngine fe(FaultPlan::parse(
      "stuck:line=0,cell=3,level=0;stuck:line=0,cell=7,level=2;"
      "stuck:line=1,cell=0,level=3"));
  pcm::ChipConfig cfg;
  cfg.num_lines = 2;
  cfg.scrub_interval_s = 0.0;
  cfg.faults = &fe;
  pcm::MlcChip chip(cfg);
  EXPECT_EQ(chip.stats().injected_faults, 3u);

  const auto d0 = test_payload(cfg.data_bytes, 1);
  const auto d1 = test_payload(cfg.data_bytes, 2);
  chip.write(0, d0);
  chip.write(1, d1);
  const pcm::ChipReadResult r0 = chip.read(0);
  const pcm::ChipReadResult r1 = chip.read(1);
  EXPECT_EQ(r0.data, d0);
  EXPECT_EQ(r1.data, d1);
  EXPECT_EQ(fe.count(FaultClass::kStuckCell), 3u);
}

TEST(ChipFaults, SenseTransientsForceMFallbackWithCorrectData) {
  // p=1, mag=2 decades: every R-sensed cell lands decades high, so R-sense
  // is garbage; the M path is the robust reference and stays clean. The
  // hybrid readout must detect and fall back, returning correct data.
  const FaultEngine fe(FaultPlan::parse("seed=5;sense:p=1,mag=2"));
  pcm::ChipConfig cfg;
  cfg.num_lines = 2;
  cfg.scrub_interval_s = 0.0;
  cfg.faults = &fe;
  pcm::MlcChip chip(cfg);

  const auto data = test_payload(cfg.data_bytes, 3);
  chip.write(0, data);
  const pcm::ChipReadResult r = chip.read(0);
  EXPECT_TRUE(r.used_m_sense);
  EXPECT_EQ(r.data, data);
  EXPECT_GT(chip.stats().injected_faults, 0u);
  EXPECT_GT(fe.count(FaultClass::kSenseOffset), 0u);
}

TEST(ChipFaults, AdversarialBchBurstsDetectNeverMiscorrect) {
  // Bursts of 9..17 flips sit past the correction radius t=8; the decoder
  // must report detected-uncorrectable (falling back to M-sense), never
  // "correct" to a wrong codeword. Exercised at both boundary weights.
  for (const char* spec : {"seed=2;bch:p=1,e=9", "seed=2;bch:p=1,e=17"}) {
    const FaultEngine fe(FaultPlan::parse(spec));
    pcm::ChipConfig cfg;
    cfg.num_lines = 4;
    cfg.scrub_interval_s = 0.0;
    cfg.faults = &fe;
    pcm::MlcChip chip(cfg);
    for (std::size_t line = 0; line < cfg.num_lines; ++line) {
      const auto data = test_payload(cfg.data_bytes,
                                     static_cast<unsigned>(line) + 10);
      chip.write(line, data);
      const pcm::ChipReadResult r = chip.read(line);
      EXPECT_TRUE(r.used_m_sense) << spec << " line " << line;
      EXPECT_EQ(r.data, data) << spec << " line " << line;
    }
    EXPECT_GE(fe.count(FaultClass::kBchError), cfg.num_lines);
  }
}

// --- scheme-layer determinism (acceptance criterion a) ----------------------

void expect_runs_equal(const bench::RunResult& a, const bench::RunResult& b,
                       const char* label) {
  EXPECT_EQ(a.sim.exec_time.v, b.sim.exec_time.v) << label;
  EXPECT_EQ(a.sim.reads_serviced, b.sim.reads_serviced) << label;
  EXPECT_EQ(a.sim.writes_serviced, b.sim.writes_serviced) << label;
  EXPECT_EQ(a.counters.r_reads, b.counters.r_reads) << label;
  EXPECT_EQ(a.counters.m_reads, b.counters.m_reads) << label;
  EXPECT_EQ(a.counters.rm_reads, b.counters.rm_reads) << label;
  EXPECT_EQ(a.counters.detected_uncorrectable,
            b.counters.detected_uncorrectable)
      << label;
  EXPECT_EQ(a.counters.silent_corruptions, b.counters.silent_corruptions)
      << label;
  EXPECT_EQ(a.counters.cell_writes, b.counters.cell_writes) << label;
  EXPECT_EQ(a.counters.injected_faults, b.counters.injected_faults) << label;
  EXPECT_TRUE(a.sim.metrics == b.sim.metrics) << label;
}

TEST(FaultDeterminism, BitIdenticalAcrossThreadCounts) {
  ScopedEnv instr("READDUO_INSTR", "20000");
  // No READDUO_CACHE override: the sim-affecting plan must disable the
  // cache by itself (a cached clean result would break the comparison).
  ScopedFaultEngine fe(
      "seed=11;sense:p=0.0005;lwt-vec:p=0.02;lwt-ind:p=0.01");

  auto batch_under = [&](const char* threads) {
    ScopedEnv t("READDUO_THREADS", threads);
    std::vector<bench::RunSpec> specs;
    for (const char* wname : {"mcf", "lbm"}) {
      const trace::Workload& w = trace::workload_by_name(wname);
      specs.push_back({readduo::SchemeKind::kHybrid, w});
      specs.push_back({readduo::SchemeKind::kLwt, w});
    }
    return bench::run_schemes(specs);
  };

  const std::vector<bench::RunResult> serial = batch_under("1");
  const std::vector<bench::RunResult> pooled = batch_under("4");
  ASSERT_EQ(serial.size(), pooled.size());
  std::uint64_t total_faults = 0;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_runs_equal(serial[i], pooled[i],
                      ("spec " + std::to_string(i)).c_str());
    total_faults += serial[i].counters.injected_faults;
  }
  // The comparison is only meaningful if faults actually fired.
  EXPECT_GT(total_faults, 0u);
  // The LWT flag corruptions the plan injected were absorbed safely.
  for (const bench::RunResult& r : serial) {
    EXPECT_EQ(r.counters.silent_corruptions, 0u);
  }
}

// --- zero overhead when off (acceptance criterion b) ------------------------

TEST(FaultsOff, HarnessOnlyPlanLeavesSimulationBitIdentical) {
  ScopedEnv cache("READDUO_CACHE", "0");
  ScopedEnv instr("READDUO_INSTR", "20000");
  ScopedEnv threads("READDUO_THREADS", "1");
  const trace::Workload& w = trace::workload_by_name("mcf");

  const bench::RunResult base =
      bench::run_scheme(readduo::SchemeKind::kHybrid, w, {}, /*seed=*/77);
  {
    ScopedFaultEngine fe("cache:p=1;trace:p=1,n=2");
    const bench::RunResult faulted =
        bench::run_scheme(readduo::SchemeKind::kHybrid, w, {}, 77);
    expect_runs_equal(base, faulted, "harness-only plan");
    EXPECT_EQ(faulted.counters.injected_faults, 0u);
  }
}

// --- harness cache corruption (acceptance criterion c) ----------------------

TEST(CacheFaults, CorruptEntryWarnsAndRecomputes) {
  ScopedEnv instr("READDUO_INSTR", "20000");
  ScopedEnv cache("READDUO_CACHE", nullptr);  // cache on
  ScopedEnv threads("READDUO_THREADS", "1");
  const trace::Workload& w = trace::workload_by_name("astar");

  // Seed the on-disk cache with a clean entry.
  const bench::RunResult clean =
      bench::run_scheme(readduo::SchemeKind::kHybrid, w, {}, /*seed=*/4242);

  for (const char* spec : {"seed=9;cache:p=1", "seed=9;cache:p=1,mode=truncate"}) {
    ScopedFaultEngine fe(spec);
    const std::uint64_t before = fe.get()->count(FaultClass::kCacheCorrupt);
    const bench::RunResult again =
        bench::run_scheme(readduo::SchemeKind::kHybrid, w, {}, 4242);
    // The damaged entry was detected and the run recomputed — results are
    // bit-identical to the clean run, and the corruption was recorded.
    EXPECT_GE(fe.get()->count(FaultClass::kCacheCorrupt), before + 1) << spec;
    expect_runs_equal(clean, again, spec);
  }
}

TEST(CacheFaults, MetricsDocumentCarriesFaultProvenance) {
  ScopedFaultEngine fe("seed=9;cache:p=1");
  const std::string doc = bench::detail::render_metrics_json();
  EXPECT_NE(doc.find("\"cache_corrupt\""), std::string::npos);
  EXPECT_NE(doc.find("\"faults\""), std::string::npos);
  EXPECT_NE(doc.find("\"plan\""), std::string::npos);
  EXPECT_NE(doc.find("\"injected\""), std::string::npos);
}

TEST(CacheFaults, CleanMetricsDocumentOmitsFaultBlock) {
  const std::string doc = bench::detail::render_metrics_json();
  EXPECT_EQ(doc.find("\"faults\""), std::string::npos);
  EXPECT_NE(doc.find("\"cache_corrupt\""), std::string::npos);
}

// --- trace short reads (acceptance criterion c) -----------------------------

std::string write_test_trace(const char* name, std::size_t ops) {
  const std::string path = std::string("faults_") + name + ".trace";
  std::ofstream out(path);
  out << "# readduo trace v1: <gap_instructions> R|W <line> [A]\n";
  for (std::size_t i = 0; i < ops; ++i) {
    out << (i % 7) << ' ' << (i % 3 == 0 ? 'W' : 'R') << ' ' << (100 + i)
        << '\n';
  }
  return path;
}

TEST(TraceFaults, CleanLoadSucceedsFirstAttempt) {
  const std::string path = write_test_trace("clean", 40);
  const trace::TraceFileResult r = trace::load_trace_file(path);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_EQ(r.ops.size(), 40u);
  std::remove(path.c_str());
}

TEST(TraceFaults, TransientShortReadRecoversOnRetry) {
  const std::string path = write_test_trace("transient", 40);
  ScopedFaultEngine fe("trace:n=1");
  const trace::TraceFileResult r = trace::load_trace_file(path);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_EQ(r.ops.size(), 40u);
  EXPECT_NE(r.message.find("recovered"), std::string::npos);
  EXPECT_GE(fe.get()->count(FaultClass::kTraceShortRead), 1u);
  std::remove(path.c_str());
}

TEST(TraceFaults, PersistentShortReadSkipsWithReport) {
  const std::string path = write_test_trace("persistent", 40);
  ScopedFaultEngine fe("trace:n=99");
  const trace::TraceFileResult r = trace::load_trace_file(path);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_TRUE(r.ops.empty());
  EXPECT_FALSE(r.message.empty());
  std::remove(path.c_str());
}

TEST(TraceFaults, MissingFileFailsWithoutRetry) {
  const trace::TraceFileResult r =
      trace::load_trace_file("does_not_exist.trace");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_NE(r.message.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace rd
