// Tests for the functional MLC PCM chip (Figure 7 end to end): real data
// through BCH + hybrid readout + scrubbing + ECP.
#include "pcm/chip.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rd::pcm {
namespace {

std::vector<std::uint8_t> payload(Rng& rng, unsigned n = 64) {
  std::vector<std::uint8_t> data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_below(256));
  return data;
}

TEST(Chip, WriteReadRoundTripFresh) {
  ChipConfig cfg;
  cfg.num_lines = 8;
  MlcChip chip(cfg);
  Rng rng(1);
  for (std::size_t l = 0; l < 8; ++l) {
    const auto data = payload(rng);
    chip.write(l, data);
    const ChipReadResult r = chip.read(l);
    EXPECT_TRUE(r.corrected);
    EXPECT_FALSE(r.used_m_sense);
    EXPECT_EQ(r.data, data);
  }
  EXPECT_EQ(chip.stats().reads, 8u);
  EXPECT_EQ(chip.stats().writes, 8u);
}

TEST(Chip, DataSurvivesLongDriftViaHybridReadout) {
  ChipConfig cfg;
  cfg.num_lines = 24;
  cfg.scrub_interval_s = 0.0;  // no scrubbing: drift unchecked
  MlcChip chip(cfg);
  Rng rng(2);
  std::vector<std::vector<std::uint8_t>> wrote;
  for (std::size_t l = 0; l < 24; ++l) {
    wrote.push_back(payload(rng));
    chip.write(l, wrote.back());
  }
  chip.advance_time(4096.0);  // far beyond the R-safe window
  unsigned fallbacks = 0;
  for (std::size_t l = 0; l < 24; ++l) {
    const ChipReadResult r = chip.read(l);
    ASSERT_TRUE(r.corrected) << "line " << l;
    EXPECT_EQ(r.data, wrote[l]) << "line " << l;
    fallbacks += r.used_m_sense ? 1 : 0;
  }
  // At 4096 s some lines exceed BCH-8 under R-sensing; the M fallback
  // must have fired at least once and saved them.
  EXPECT_GT(fallbacks, 0u);
  EXPECT_EQ(chip.stats().m_fallbacks, fallbacks);
}

TEST(Chip, RSenseOnlyChipCorruptsWhereHybridSurvives) {
  Rng rng(3);
  const auto data = payload(rng);
  unsigned r_failures = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    ChipConfig cfg;
    cfg.num_lines = 1;
    cfg.readout = ReadoutPolicy::kRSense;
    cfg.scrub_interval_s = 0.0;
    cfg.seed = seed;
    MlcChip chip(cfg);
    chip.write(0, data);
    chip.advance_time(8192.0);
    const ChipReadResult r = chip.read(0);
    if (!r.corrected || r.data != data) ++r_failures;
  }
  EXPECT_GT(r_failures, 0u);  // R-only really does lose data at this age
}

TEST(Chip, ScrubbingKeepsRSensingFast) {
  // With W=0 scrubbing every 640 s, even week-old data stays within the
  // R-sensing window (the ReadDuo-Hybrid guarantee).
  ChipConfig cfg;
  cfg.num_lines = 12;
  cfg.scrub_interval_s = 640.0;
  cfg.scrub_w = 0;
  MlcChip chip(cfg);
  Rng rng(4);
  std::vector<std::vector<std::uint8_t>> wrote;
  for (std::size_t l = 0; l < 12; ++l) {
    wrote.push_back(payload(rng));
    chip.write(l, wrote.back());
  }
  chip.advance_time(7 * 86400.0);  // one week
  EXPECT_GT(chip.stats().scrub_passes, 900u);
  EXPECT_GT(chip.stats().scrub_rewrites, 900u * 12u / 2u);
  for (std::size_t l = 0; l < 12; ++l) {
    // Age is bounded by the scrub interval.
    EXPECT_LE(chip.line_age(l), 640.0 + 1e-6);
    const ChipReadResult r = chip.read(l);
    EXPECT_TRUE(r.corrected);
    EXPECT_FALSE(r.used_m_sense) << "line " << l;
    EXPECT_EQ(r.data, wrote[l]);
  }
}

TEST(Chip, W1ScrubbingRewritesOnlyErroredLines) {
  ChipConfig cfg;
  cfg.num_lines = 16;
  cfg.scrub_interval_s = 640.0;
  cfg.scrub_w = 1;
  cfg.scrub_with_m = true;
  MlcChip chip(cfg);
  Rng rng(5);
  for (std::size_t l = 0; l < 16; ++l) chip.write(l, payload(rng));
  chip.advance_time(10 * 640.0);
  EXPECT_EQ(chip.stats().scrub_passes, 10u);
  // M-metric sees essentially no drift at 640 s: rewrites must be rare.
  EXPECT_LT(chip.stats().scrub_rewrites, 8u);
}

TEST(Chip, EcpPatchesStuckCellsTransparently) {
  ChipConfig cfg;
  cfg.num_lines = 2;
  cfg.scrub_interval_s = 0.0;
  MlcChip chip(cfg);
  Rng rng(6);
  // Wear out five cells before the line is ever written.
  for (unsigned c : {3u, 50u, 77u, 120u, 250u}) {
    chip.inject_stuck_cell(0, c, /*level=*/0);
  }
  const auto data = payload(rng);
  chip.write(0, data);
  EXPECT_GT(chip.stats().cells_retired, 0u);
  const ChipReadResult r = chip.read(0);
  EXPECT_TRUE(r.corrected);
  EXPECT_EQ(r.data, data);
  // The patch is durable across rewrites and time.
  chip.advance_time(100.0);
  chip.write(0, payload(rng));
  chip.advance_time(100.0);
  EXPECT_TRUE(chip.read(0).corrected);
}

TEST(Chip, StuckCellsBeyondEcpStillCaughtByBch) {
  // More stuck cells than ECP pointers: the overflow lands on BCH-8,
  // which still corrects a few extra bit errors.
  ChipConfig cfg;
  cfg.num_lines = 1;
  cfg.ecp_pointers = 2;
  cfg.scrub_interval_s = 0.0;
  MlcChip chip(cfg);
  Rng rng(7);
  for (unsigned c : {10u, 20u}) chip.inject_stuck_cell(0, c, 0);
  const auto data = payload(rng);
  chip.write(0, data);  // retires the two
  // Two more stuck cells appear after the write (no pointers left; they
  // are only visible as read errors now).
  chip.inject_stuck_cell(0, 30, 0);
  chip.inject_stuck_cell(0, 40, 0);
  const ChipReadResult r = chip.read(0);
  EXPECT_TRUE(r.corrected);
  EXPECT_EQ(r.data, data);
}

TEST(Chip, AdvanceTimeRunsDueScrubsInOrder) {
  ChipConfig cfg;
  cfg.num_lines = 1;
  cfg.scrub_interval_s = 100.0;
  MlcChip chip(cfg);
  Rng rng(8);
  chip.write(0, payload(rng));
  chip.advance_time(50.0);
  EXPECT_EQ(chip.stats().scrub_passes, 0u);
  chip.advance_time(60.0);  // crosses t = 100
  EXPECT_EQ(chip.stats().scrub_passes, 1u);
  chip.advance_time(1000.0);  // crosses 200..1100
  EXPECT_EQ(chip.stats().scrub_passes, 11u);
  EXPECT_DOUBLE_EQ(chip.now(), 1110.0);
}

TEST(Chip, ApiMisuseThrows) {
  ChipConfig cfg;
  cfg.num_lines = 2;
  MlcChip chip(cfg);
  Rng rng(9);
  EXPECT_THROW(chip.read(0), CheckFailure);  // never written
  EXPECT_THROW(chip.write(2, payload(rng)), CheckFailure);
  EXPECT_THROW(chip.write(0, std::vector<std::uint8_t>(63)), CheckFailure);
  EXPECT_THROW(chip.advance_time(-1.0), CheckFailure);
  EXPECT_THROW(chip.inject_stuck_cell(0, 100000, 0), CheckFailure);
}

}  // namespace
}  // namespace rd::pcm
