// Loopback tests for the wire front end (DESIGN.md §12): determinism of
// the multi-client sequence merge over real sockets, and the robustness
// corpus — disconnects, half frames, slow readers, protocol-state abuse.
// Every abuse case must end in an error reply or a clean close, never a
// crash, hang, or desynchronized server.
#include "net/server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/wire_stats.h"
#include "service/memory_service.h"
#include "stats/metrics.h"
#include "trace/workload.h"

namespace rd::net {
namespace {

std::string unique_sock() {
  static std::atomic<unsigned> counter{0};
  return "unix:/tmp/rd_nettest_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

service::ServiceConfig small_service(unsigned threads) {
  service::ServiceConfig cfg;
  cfg.num_shards = 4;
  cfg.queue_capacity = 1024;
  cfg.batch_size = 64;
  cfg.worker_threads = threads;
  cfg.sim.seed = 7;
  cfg.scheme = readduo::SchemeKind::kHybrid;
  cfg.workload = trace::workload_by_name("bzip2");
  return cfg;
}

/// A Server plus the thread running its poll loop.
struct TestServer {
  explicit TestServer(ServerConfig cfg) : server(std::move(cfg)) {
    server.start();
    thread = std::thread([this] { server.run(); });
  }
  ~TestServer() { stop(); }
  void stop() {
    if (thread.joinable()) {
      server.stop();
      thread.join();
    }
  }
  Client connect() { return Client::connect_to(server.address()); }

  Server server;
  std::thread thread;
};

TestServer make_server(unsigned threads, const std::string& listen = "") {
  ServerConfig cfg;
  cfg.service = small_service(threads);
  cfg.listen = listen.empty() ? unique_sock() : listen;
  return TestServer(std::move(cfg));
}

struct Gen {
  std::uint64_t line = 0;
  Ns arrival{0};
  bool is_write = false;
  bool archive = false;
};

/// Deterministic request stream with strictly increasing arrivals — the
/// precondition for the round-robin split to reassemble identically.
std::vector<Gen> make_stream(std::uint64_t n, std::uint64_t seed,
                             const trace::Workload& w) {
  Rng rng(seed, /*stream=*/0xC11E47);
  const double wf = w.wpki / (w.rpki + w.wpki);
  std::vector<Gen> out;
  out.reserve(n);
  Ns t{0};
  for (std::uint64_t i = 0; i < n; ++i) {
    Gen g;
    g.arrival = t;
    t += Ns{500};
    g.is_write = rng.bernoulli(wf);
    if (!g.is_write && rng.bernoulli(0.05)) {
      g.archive = true;
      g.line = w.footprint_lines + rng.uniform_below(1024);
    } else {
      g.line = rng.zipf(w.footprint_lines, w.zipf_s);
    }
    out.push_back(g);
  }
  return out;
}

void hello(Client& cli, std::uint64_t id) {
  std::string body;
  put_u64(body, id);
  cli.send_frame(Op::kHello, 0, body);
  const Frame f = cli.recv_frame();
  ASSERT_EQ(f.type, type_of(Status::kOk));
}

/// The readduo_load client loop in miniature: windowed pipelining,
/// kRetry resends, early drain. Returns the number of completions.
std::uint64_t drive_client(Client& cli, const std::vector<Gen>& stream,
                           std::size_t offset, std::size_t stride,
                           std::size_t window) {
  std::map<std::uint64_t, std::pair<Op, RequestBody>> inflight;
  std::uint64_t completions = 0;
  const auto handle = [&](const Frame& f) {
    if (f.type == type_of(Status::kDone)) {
      ++completions;
      ASSERT_EQ(inflight.erase(f.id), 1u);
      return;
    }
    ASSERT_TRUE(f.type == type_of(Status::kRetry) ||
                f.type == type_of(Status::kBadFrame));
    const auto it = inflight.find(f.id);
    ASSERT_NE(it, inflight.end());
    cli.send_frame(it->second.first, f.id,
                   encode_request_body(it->second.second));
  };

  std::uint64_t seq = 0;
  for (std::size_t i = offset; i < stream.size(); i += stride) {
    const Gen& g = stream[i];
    ++seq;
    const Op op = g.is_write ? Op::kWrite : g.archive ? Op::kScrub : Op::kRead;
    const RequestBody body{seq, g.line, g.arrival};
    cli.send_frame(op, seq, encode_request_body(body));
    inflight.emplace(seq, std::make_pair(op, body));
    while (inflight.size() >= window) handle(cli.recv_frame());
    Frame f;
    while (cli.try_recv(f)) handle(f);
  }
  const std::uint64_t drain_id = seq + 1;
  std::string drain_body;
  put_u64(drain_body, seq);
  cli.send_frame(Op::kDrain, drain_id, drain_body);
  bool drained = false;
  while (!drained || !inflight.empty()) {
    const Frame f = cli.recv_frame();
    if (f.id == drain_id && f.type == type_of(Status::kOk)) {
      drained = true;
      continue;
    }
    handle(f);
  }
  return completions;
}

/// Run `clients` wire clients over `stream` against a fresh server with
/// `threads` service workers; return the quiesced service stats.
service::ServiceStats wire_run(unsigned threads, std::size_t clients,
                               const std::vector<Gen>& stream,
                               const std::vector<std::size_t>& windows) {
  TestServer ts = make_server(threads);
  std::vector<Client> conns(clients);
  for (std::size_t k = 0; k < clients; ++k) {
    conns[k] = ts.connect();
    hello(conns[k], k + 1);
  }
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> total{0};
  for (std::size_t k = 0; k < clients; ++k) {
    workers.emplace_back([&, k] {
      total += drive_client(conns[k], stream, k, clients,
                            windows[k % windows.size()]);
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_EQ(total.load(), stream.size());
  for (auto& c : conns) {
    c.send_frame(Op::kBye, 0, "");
    while (c.recv_opt().has_value()) {
    }
  }
  const service::ServiceStats st = ts.server.service().stats();
  ts.stop();
  return st;
}

// --- determinism ------------------------------------------------------

TEST(NetService, WireMatchesInProcess) {
  const service::ServiceConfig cfg = small_service(1);
  const std::vector<Gen> stream = make_stream(4000, 11, cfg.workload);

  // In-process baseline: same stream through plain submit().
  service::MemoryService svc(cfg);
  std::uint64_t id = 0;
  for (const Gen& g : stream) {
    service::Request r;
    r.id = ++id;
    r.line = g.line;
    r.arrival = g.arrival;
    r.is_write = g.is_write;
    r.archive = g.archive;
    while (!svc.submit(r)) {
    }
  }
  svc.drain();
  svc.stop();
  const service::ServiceStats direct = svc.stats();

  const service::ServiceStats wired =
      wire_run(/*threads=*/1, /*clients=*/1, stream, {64});
  EXPECT_EQ(wired.completed, direct.completed);
  EXPECT_EQ(wired.virtual_time.v, direct.virtual_time.v);
  EXPECT_TRUE(wired.metrics == direct.metrics);
}

TEST(NetService, FixedSeedRepeatIdentity) {
  const std::vector<Gen> stream =
      make_stream(3000, 13, trace::workload_by_name("bzip2"));
  const service::ServiceStats a = wire_run(1, 2, stream, {32});
  const service::ServiceStats b = wire_run(1, 2, stream, {32});
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.virtual_time.v, b.virtual_time.v);
  EXPECT_TRUE(a.metrics == b.metrics);
}

TEST(NetService, ServerThreadCountIdentity) {
  const std::vector<Gen> stream =
      make_stream(3000, 17, trace::workload_by_name("bzip2"));
  const service::ServiceStats one = wire_run(1, 2, stream, {32});
  const service::ServiceStats four = wire_run(4, 2, stream, {32});
  EXPECT_EQ(one.completed, four.completed);
  EXPECT_EQ(one.virtual_time.v, four.virtual_time.v);
  EXPECT_TRUE(one.metrics == four.metrics);
}

TEST(NetService, ThreeClientArrivalScheduleIdentity) {
  // Same stream, three clients, two very different socket interleavings
  // (mismatched per-client windows flip which client runs ahead). The
  // sequence merge must reassemble the identical admission order.
  //
  // Windows stay well above the liveness floor: the merge only releases
  // work up to the slowest client's watermark, so a client whose whole
  // window spans less virtual time than the worst completion latency
  // (~24us observed; window x 3 clients x 500ns gap here) would wedge
  // the run waiting on a completion the clock can never reach.
  const std::vector<Gen> stream =
      make_stream(3000, 19, trace::workload_by_name("bzip2"));
  const service::ServiceStats a = wire_run(2, 3, stream, {32, 128, 48});
  const service::ServiceStats b = wire_run(2, 3, stream, {128, 32, 96});
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.virtual_time.v, b.virtual_time.v);
  EXPECT_TRUE(a.metrics == b.metrics);
}

TEST(NetService, StatsBlobMatchesDirectStats) {
  TestServer ts = make_server(1);
  Client cli = ts.connect();
  hello(cli, 1);
  const std::vector<Gen> stream =
      make_stream(500, 23, trace::workload_by_name("bzip2"));
  EXPECT_EQ(drive_client(cli, stream, 0, 1, 32), stream.size());

  cli.send_frame(Op::kStats, 99, "");
  const Frame f = cli.recv_frame();
  ASSERT_EQ(f.type, type_of(Status::kStats));
  EXPECT_EQ(f.id, 99u);
  service::ServiceStats wire_st;
  WireServiceInfo info;
  ASSERT_TRUE(decode_stats(f.payload, wire_st, info));
  const service::ServiceStats direct = ts.server.service().stats();
  EXPECT_EQ(wire_st.completed, direct.completed);
  EXPECT_EQ(wire_st.virtual_time.v, direct.virtual_time.v);
  EXPECT_TRUE(wire_st.metrics == direct.metrics);
  EXPECT_EQ(info.shards, 4u);
}

TEST(NetService, TcpLoopback) {
  TestServer ts = make_server(1, "tcp:127.0.0.1:0");
  // Port 0 resolves to the kernel-assigned port in address().
  EXPECT_NE(ts.server.address().find("tcp:127.0.0.1:"), std::string::npos);
  Client cli = ts.connect();
  hello(cli, 1);
  const std::vector<Gen> stream =
      make_stream(300, 29, trace::workload_by_name("bzip2"));
  EXPECT_EQ(drive_client(cli, stream, 0, 1, 16), stream.size());
}

// --- protocol-state abuse ---------------------------------------------

TEST(NetService, SubmitBeforeHelloRejected) {
  TestServer ts = make_server(1);
  Client cli = ts.connect();
  cli.send_frame(Op::kRead, 1, encode_request_body(RequestBody{1, 0, Ns{0}}));
  const Frame f = cli.recv_frame();
  EXPECT_EQ(f.type, type_of(Status::kBadState));
  EXPECT_FALSE(cli.recv_opt().has_value());  // server closed
}

TEST(NetService, DuplicateClientIdRejected) {
  TestServer ts = make_server(1);
  Client a = ts.connect();
  hello(a, 42);
  Client b = ts.connect();
  std::string body;
  put_u64(body, 42);
  b.send_frame(Op::kHello, 0, body);
  const Frame f = b.recv_frame();
  EXPECT_EQ(f.type, type_of(Status::kBadState));
  EXPECT_FALSE(b.recv_opt().has_value());
  // The first connection is unaffected.
  a.send_frame(Op::kStats, 1, "");
  EXPECT_EQ(a.recv_frame().type, type_of(Status::kStats));
}

TEST(NetService, ReplayedSeqIsFatal) {
  TestServer ts = make_server(1);
  Client cli = ts.connect();
  hello(cli, 1);
  cli.send_frame(Op::kRead, 1, encode_request_body(RequestBody{1, 0, Ns{0}}));
  cli.send_frame(Op::kRead, 2, encode_request_body(RequestBody{1, 0, Ns{0}}));
  // First completes eventually; the replay is a protocol error that
  // closes the connection.
  bool saw_bad_seq = false;
  for (;;) {
    const std::optional<Frame> f = cli.recv_opt();
    if (!f.has_value()) break;
    if (f->type == type_of(Status::kBadSeq)) saw_bad_seq = true;
  }
  EXPECT_TRUE(saw_bad_seq);
}

TEST(NetService, SeqGapGetsRetryThenRecovers) {
  TestServer ts = make_server(1);
  Client cli = ts.connect();
  hello(cli, 1);
  // seq 2 before seq 1: a gap, answered kRetry (not fatal).
  const RequestBody two{2, 7, Ns{500}};
  cli.send_frame(Op::kRead, 2, encode_request_body(two));
  const Frame r = cli.recv_frame();
  EXPECT_EQ(r.type, type_of(Status::kRetry));
  EXPECT_EQ(r.id, 2u);
  // Close the gap, then resend; both complete and drain acks.
  cli.send_frame(Op::kRead, 1, encode_request_body(RequestBody{1, 3, Ns{0}}));
  cli.send_frame(Op::kRead, 2, encode_request_body(two));
  std::string drain_body;
  put_u64(drain_body, 2);
  cli.send_frame(Op::kDrain, 9, drain_body);
  std::uint64_t dones = 0;
  for (;;) {
    const Frame f = cli.recv_frame();
    if (f.type == type_of(Status::kOk) && f.id == 9) break;
    ASSERT_EQ(f.type, type_of(Status::kDone));
    ++dones;
  }
  EXPECT_EQ(dones, 2u);
}

TEST(NetService, ResponseTypeFromClientRejected) {
  TestServer ts = make_server(1);
  Client cli = ts.connect();
  cli.send_frame(Status::kOk, 1, "");
  const Frame f = cli.recv_frame();
  EXPECT_EQ(f.type, type_of(Status::kBadState));
  EXPECT_FALSE(cli.recv_opt().has_value());
}

// --- malformed input & disconnects ------------------------------------

TEST(NetService, GarbageBytesGetErrorAndClose) {
  TestServer ts = make_server(1);
  Client cli = ts.connect();
  cli.send_raw("this is not a frame at all, not even close");
  const Frame f = cli.recv_frame();
  EXPECT_EQ(f.type, type_of(Status::kBadFrame));
  EXPECT_FALSE(cli.recv_opt().has_value());
}

TEST(NetService, CorruptCrcIsRecoverable) {
  TestServer ts = make_server(1);
  Client cli = ts.connect();
  // A structurally valid hello frame with a flipped payload byte: the
  // server must answer kBadFrame and keep the connection usable.
  std::string body;
  put_u64(body, 1);
  std::string frame;
  encode_frame(Op::kHello, 0, body, frame);
  frame[kHeaderSize] ^= 0x01;
  cli.send_raw(frame);
  const Frame f = cli.recv_frame();
  EXPECT_EQ(f.type, type_of(Status::kBadFrame));
  hello(cli, 1);  // same connection, clean retry
}

TEST(NetService, HalfFrameThenCloseIsClean) {
  TestServer ts = make_server(1);
  {
    Client cli = ts.connect();
    std::string frame;
    encode_frame(Op::kHello, 0, "12345678", frame);
    cli.send_raw(frame.substr(0, kHeaderSize + 3));
    cli.close();  // mid-frame EOF
  }
  // The server survives; a new connection works end to end.
  Client cli = ts.connect();
  hello(cli, 1);
}

TEST(NetService, MidRequestDisconnectDoesNotStrandOthers) {
  TestServer ts = make_server(2);
  // Client A submits and vanishes without draining — its watermark must
  // not gate client B's admissions forever (close implies client_done).
  Client a = ts.connect();
  hello(a, 1);
  Client b = ts.connect();
  hello(b, 2);
  a.send_frame(Op::kRead, 1, encode_request_body(RequestBody{1, 5, Ns{0}}));
  a.close();
  const std::vector<Gen> stream =
      make_stream(1000, 31, trace::workload_by_name("bzip2"));
  EXPECT_EQ(drive_client(b, stream, 0, 1, 32), stream.size());
}

TEST(NetService, SlowReaderIsShedNotBlocking) {
  ServerConfig cfg;
  cfg.service = small_service(2);
  cfg.listen = unique_sock();
  cfg.write_buf_limit = 4096;  // tiny: a few hundred completions overflow
  cfg.sock_sndbuf = 4096;      // keep the kernel from absorbing the backlog
  TestServer ts(std::move(cfg));

  Client slow = ts.connect();
  hello(slow, 1);
  Client live = ts.connect();
  hello(live, 2);

  // The slow reader submits the first slice of the stream and never
  // reads a byte back. Its completions overflow the 4 KiB write-buffer
  // bound, so the server sheds the connection instead of blocking the
  // loop — and the shed implies client_done, unsticking the merge for
  // the live client.
  const std::vector<Gen> stream =
      make_stream(4000, 37, trace::workload_by_name("bzip2"));
  const std::size_t slice = 600;
  for (std::size_t i = 0; i < slice; ++i) {
    const RequestBody body{i + 1, stream[i].line, stream[i].arrival};
    slow.send_frame(stream[i].is_write ? Op::kWrite : Op::kRead, i + 1,
                    encode_request_body(body));
  }
  // The live client drives the rest of the stream to completion even
  // though the slow reader never drains its side.
  const std::vector<Gen> rest(stream.begin() + slice, stream.end());
  EXPECT_EQ(drive_client(live, rest, 0, 1, 64), rest.size());
  EXPECT_EQ(ts.server.counters().conns_shed, 1u);
  // The shed client's socket eventually reports EOF.
  while (slow.recv_opt().has_value()) {
  }
}

TEST(NetService, StopDuringActiveConnections) {
  Client cli;
  {
    TestServer ts = make_server(2);
    cli = ts.connect();
    hello(cli, 1);
    for (std::uint64_t s = 1; s <= 200; ++s) {
      cli.send_frame(
          Op::kRead, s,
          encode_request_body(
              RequestBody{s, s % 97, Ns{500 * static_cast<std::int64_t>(s)}}));
    }
    // Hard stop with requests in flight: the server (and its service,
    // with a still-gated merge buffer) must tear down without hanging.
  }
  // Whatever the server managed to send is well-framed; then EOF.
  while (cli.recv_opt().has_value()) {
  }
}

TEST(NetService, DrainAckArrivesAfterAllCompletions) {
  TestServer ts = make_server(1);
  Client cli = ts.connect();
  hello(cli, 1);
  const std::uint64_t n = 100;
  for (std::uint64_t s = 1; s <= n; ++s) {
    cli.send_frame(Op::kRead, s,
                   encode_request_body(RequestBody{s, s % 53, Ns{500 * static_cast<std::int64_t>(s)}}));
  }
  std::string drain_body;
  put_u64(drain_body, n);
  cli.send_frame(Op::kDrain, n + 1, drain_body);
  std::uint64_t dones = 0;
  for (;;) {
    const Frame f = cli.recv_frame();
    if (f.type == type_of(Status::kOk) && f.id == n + 1) break;
    if (f.type == type_of(Status::kDone)) ++dones;
  }
  EXPECT_EQ(dones, n);  // every completion precedes the ack
}

}  // namespace
}  // namespace rd::net
