# Default-equivalence gate for the device zoo (DESIGN.md §13): the same
# short simulation run three ways — builtin device, READDUO_DEVICE env
# knob, positional <device.cfg> — must produce byte-identical JSON
# reports. Driven by ctest as `config_device_cli_equivalence`; expects
# -DSIM=<readduo_sim> -DCFG=<pcm_readduo_t1.cfg> -DOUT=<scratch dir>.
file(MAKE_DIRECTORY ${OUT})
set(ARGS --scheme=Hybrid --workload=mcf --instructions=200000 --seed=42
         --json)

execute_process(COMMAND ${SIM} ${ARGS}
                OUTPUT_FILE ${OUT}/builtin.json RESULT_VARIABLE r1)
if(NOT r1 EQUAL 0)
  message(FATAL_ERROR "builtin-device run failed (${r1})")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E env READDUO_DEVICE=${CFG}
                        ${SIM} ${ARGS}
                OUTPUT_FILE ${OUT}/env.json RESULT_VARIABLE r2)
if(NOT r2 EQUAL 0)
  message(FATAL_ERROR "READDUO_DEVICE run failed (${r2})")
endif()

execute_process(COMMAND ${SIM} ${CFG} ${ARGS}
                OUTPUT_FILE ${OUT}/positional.json RESULT_VARIABLE r3)
if(NOT r3 EQUAL 0)
  message(FATAL_ERROR "positional-config run failed (${r3})")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${OUT}/builtin.json ${OUT}/env.json
                RESULT_VARIABLE d1)
if(NOT d1 EQUAL 0)
  message(FATAL_ERROR "READDUO_DEVICE=${CFG} diverged from the builtin "
                      "device — the default-equivalence guarantee is "
                      "broken (compare ${OUT}/builtin.json and "
                      "${OUT}/env.json)")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${OUT}/builtin.json ${OUT}/positional.json
                RESULT_VARIABLE d2)
if(NOT d2 EQUAL 0)
  message(FATAL_ERROR "positional ${CFG} diverged from the builtin device "
                      "(compare ${OUT}/builtin.json and "
                      "${OUT}/positional.json)")
endif()
