// Unit tests for GF(2^m) arithmetic and polynomials — the BCH substrate.
#include "gf/gf2m.h"
#include "gf/poly.h"

#include <set>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"

namespace rd::gf {
namespace {

class FieldM : public ::testing::TestWithParam<unsigned> {
 protected:
  Field f{GetParam()};
};

TEST_P(FieldM, ExpLogRoundTrip) {
  for (Elem a = 1; a < f.size(); ++a) {
    EXPECT_EQ(f.alpha_pow(f.log(a)), a);
  }
}

TEST_P(FieldM, MultiplicativeInverse) {
  for (Elem a = 1; a < f.size(); ++a) {
    EXPECT_EQ(f.mul(a, f.inv(a)), 1u) << "a=" << a;
  }
}

TEST_P(FieldM, AlphaIsPrimitive) {
  // alpha^k hits every nonzero element exactly once over a full period.
  std::set<Elem> seen;
  for (std::uint32_t k = 0; k < f.order(); ++k) {
    seen.insert(f.alpha_pow(k));
  }
  EXPECT_EQ(seen.size(), f.order());
  EXPECT_EQ(f.alpha_pow(f.order()), 1u);
}

TEST_P(FieldM, MulCommutativeAssociativeSampled) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Elem a = static_cast<Elem>(rng.uniform_below(f.size()));
    const Elem b = static_cast<Elem>(rng.uniform_below(f.size()));
    const Elem c = static_cast<Elem>(rng.uniform_below(f.size()));
    EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
    // Distributivity over XOR addition.
    EXPECT_EQ(f.mul(a, Field::add(b, c)),
              Field::add(f.mul(a, b), f.mul(a, c)));
  }
}

TEST_P(FieldM, DivisionInvertsMultiplication) {
  Rng rng(GetParam() + 100);
  for (int i = 0; i < 200; ++i) {
    const Elem a = static_cast<Elem>(rng.uniform_below(f.size()));
    const Elem b = 1 + static_cast<Elem>(rng.uniform_below(f.order()));
    EXPECT_EQ(f.div(f.mul(a, b), b), a);
  }
}

TEST_P(FieldM, PowMatchesRepeatedMul) {
  const Elem a = f.alpha_pow(3);
  Elem acc = 1;
  for (int k = 0; k <= 20; ++k) {
    EXPECT_EQ(f.pow(a, k), acc) << k;
    acc = f.mul(acc, a);
  }
  // Negative exponent = inverse power.
  EXPECT_EQ(f.pow(a, -1), f.inv(a));
  EXPECT_EQ(f.mul(f.pow(a, -5), f.pow(a, 5)), 1u);
}

TEST_P(FieldM, FermatLittleTheorem) {
  Rng rng(GetParam() + 200);
  for (int i = 0; i < 50; ++i) {
    const Elem a = 1 + static_cast<Elem>(rng.uniform_below(f.order()));
    EXPECT_EQ(f.pow(a, f.order()), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Fields, FieldM,
                         ::testing::Values(3u, 4u, 5u, 6u, 8u, 10u, 12u));

TEST(Field, RejectsBadM) {
  EXPECT_THROW(Field(2), CheckFailure);
  EXPECT_THROW(Field(15), CheckFailure);
}

TEST(Field, ZeroHandling) {
  Field f(10);
  EXPECT_EQ(f.mul(0, 123), 0u);
  EXPECT_EQ(f.mul(123, 0), 0u);
  EXPECT_EQ(f.div(0, 5), 0u);
  EXPECT_THROW(f.div(5, 0), CheckFailure);
  EXPECT_THROW(f.inv(0), CheckFailure);
  EXPECT_THROW(f.log(0), CheckFailure);
}

// ------------------------------------------------------------- Poly ------

TEST(Poly, DegreeAndZero) {
  EXPECT_EQ(Poly().degree(), -1);
  EXPECT_TRUE(Poly().is_zero());
  EXPECT_EQ(Poly::constant(0).degree(), -1);
  EXPECT_EQ(Poly::constant(5).degree(), 0);
  EXPECT_EQ(Poly::monomial(1, 7).degree(), 7);
  // Trailing zeros are trimmed.
  EXPECT_EQ(Poly(std::vector<Elem>{1, 2, 0, 0}).degree(), 1);
}

TEST(Poly, AddIsXorAndSelfInverse) {
  Poly a(std::vector<Elem>{1, 2, 3});
  Poly b(std::vector<Elem>{0, 2, 3, 4});
  Poly sum = Poly::add(a, b);
  EXPECT_EQ(sum.coeff(0), 1u);
  EXPECT_EQ(sum.coeff(1), 0u);
  EXPECT_EQ(sum.coeff(2), 0u);
  EXPECT_EQ(sum.coeff(3), 4u);
  EXPECT_TRUE(Poly::add(a, a).is_zero());
}

TEST(Poly, MulDegreesAdd) {
  Field f(10);
  Poly a = Poly::monomial(3, 4);
  Poly b = Poly::monomial(7, 5);
  Poly p = Poly::mul(f, a, b);
  EXPECT_EQ(p.degree(), 9);
  EXPECT_EQ(p.coeff(9), f.mul(3, 7));
}

TEST(Poly, EvalHorner) {
  Field f(10);
  // p(x) = x^2 + x + 1 over GF(2^10); p(alpha) via direct arithmetic.
  Poly p(std::vector<Elem>{1, 1, 1});
  const Elem a = f.alpha();
  const Elem direct = Field::add(Field::add(f.mul(a, a), a), 1);
  EXPECT_EQ(p.eval(f, a), direct);
  EXPECT_EQ(p.eval(f, 0), 1u);
}

TEST(Poly, ModRemainderDegreeAndIdentity) {
  Field f(10);
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Elem> ac(12), bc(5);
    for (auto& c : ac) c = static_cast<Elem>(rng.uniform_below(f.size()));
    for (auto& c : bc) c = static_cast<Elem>(rng.uniform_below(f.size()));
    bc.back() = 1 + static_cast<Elem>(rng.uniform_below(f.order()));
    Poly a(ac), b(bc);
    Poly r = Poly::mod(f, a, b);
    EXPECT_LT(r.degree(), b.degree());
    // (a - r) must be divisible by b: mod again gives zero.
    EXPECT_TRUE(Poly::mod(f, Poly::add(a, r), b).is_zero());
  }
}

TEST(Poly, DerivativeChar2) {
  // d/dx (x^3 + x^2 + x + 1) = 3x^2 + 2x + 1 = x^2 + 1 in char 2.
  Poly p(std::vector<Elem>{1, 1, 1, 1});
  Poly d = p.derivative();
  EXPECT_EQ(d.degree(), 2);
  EXPECT_EQ(d.coeff(0), 1u);
  EXPECT_EQ(d.coeff(1), 0u);
  EXPECT_EQ(d.coeff(2), 1u);
}

TEST(CyclotomicCoset, ClosedUnderDoubling) {
  Field f(10);
  for (std::uint32_t s : {1u, 3u, 5u, 9u, 100u}) {
    auto coset = cyclotomic_coset(f, s);
    std::set<std::uint32_t> set(coset.begin(), coset.end());
    EXPECT_EQ(set.size(), coset.size());  // no duplicates
    for (std::uint32_t x : coset) {
      EXPECT_TRUE(set.count((2u * x) % f.order())) << "x=" << x;
    }
  }
}

TEST(MinimalPolynomial, HasAlphaSAsRootAndBinaryCoeffs) {
  Field f(10);
  for (std::uint32_t s : {1u, 2u, 3u, 5u, 7u, 11u}) {
    Poly m = minimal_polynomial(f, s);
    EXPECT_EQ(m.eval(f, f.alpha_pow(s)), 0u) << "s=" << s;
    for (Elem c : m.coeffs()) EXPECT_TRUE(c == 0 || c == 1);
    // Degree equals the coset size.
    EXPECT_EQ(static_cast<std::size_t>(m.degree()),
              cyclotomic_coset(f, s).size());
  }
}

TEST(MinimalPolynomial, ConjugatesShareMinimalPolynomial) {
  Field f(8);
  // alpha^3 and alpha^6 are conjugates (same coset).
  EXPECT_TRUE(minimal_polynomial(f, 3) == minimal_polynomial(f, 6));
}

TEST(MinimalPolynomial, DegreeOneForM3Coset) {
  // In GF(2^3), the coset of 1 is {1, 2, 4}: degree 3; x (s=0) -> {0}.
  Field f(3);
  EXPECT_EQ(minimal_polynomial(f, 1).degree(), 3);
}

}  // namespace
}  // namespace rd::gf
