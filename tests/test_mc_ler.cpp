// Cross-validation of the analytic LER against the device Monte-Carlo,
// in the empirically measurable regime of Tables III/IV.
#include "pcm/mc_ler.h"

#include <gtest/gtest.h>

namespace rd::pcm {
namespace {

struct Point {
  unsigned e;
  double s;
};

class McVsAnalytic : public ::testing::TestWithParam<Point> {};

TEST_P(McVsAnalytic, RMetricTableIIIEntriesReproduce) {
  const auto [e, s] = GetParam();
  const drift::MetricConfig cfg = drift::r_metric();
  const drift::LineGeometry geom;
  drift::LerCalculator calc{drift::ErrorModel(cfg), geom};
  const double analytic = calc.ler(e, s);
  ASSERT_GT(analytic, 5e-4);  // measurable with 20k lines

  const McLerResult mc = mc_ler(cfg, geom, e, s, /*lines=*/20000,
                                /*seed=*/1234 + e);
  const double tolerance = 6.0 * mc.stderr_() + 0.15 * analytic;
  EXPECT_NEAR(mc.ler(), analytic, tolerance)
      << "E=" << e << " S=" << s << " (mc=" << mc.ler()
      << " analytic=" << analytic << ")";
}

INSTANTIATE_TEST_SUITE_P(Points, McVsAnalytic,
                         ::testing::Values(Point{0, 8.0}, Point{0, 64.0},
                                           Point{1, 64.0}, Point{1, 640.0},
                                           Point{2, 1024.0}));

TEST(McLer, FailureCountsAreDeterministic) {
  const drift::MetricConfig cfg = drift::r_metric();
  const drift::LineGeometry geom;
  const McLerResult a = mc_ler(cfg, geom, 0, 64.0, 2000, 77);
  const McLerResult b = mc_ler(cfg, geom, 0, 64.0, 2000, 77);
  EXPECT_EQ(a.failures, b.failures);
}

TEST(McLer, ZeroLines) {
  const McLerResult r =
      mc_ler(drift::r_metric(), drift::LineGeometry{}, 0, 8.0, 0, 1);
  EXPECT_EQ(r.ler(), 0.0);
  EXPECT_EQ(r.stderr_(), 0.0);
}

TEST(McLer, MMetricEssentiallyErrorFreeAt640) {
  const McLerResult r = mc_ler(drift::m_metric(), drift::LineGeometry{},
                               /*e=*/0, 640.0, 5000, 3);
  // Analytic: ~5e-6 per line; 5000 lines should see ~0 failures.
  EXPECT_LE(r.failures, 2u);
}

}  // namespace
}  // namespace rd::pcm
