// Tests for the BitVec payload type.
#include "common/bitvec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rd {
namespace {

TEST(BitVec, DefaultEmpty) {
  BitVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_FALSE(v.any());
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, SetGetFlip) {
  BitVec v(130);  // crosses word boundaries
  for (std::size_t i : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    EXPECT_FALSE(v.get(i));
    v.set(i, true);
    EXPECT_TRUE(v.get(i));
    v.flip(i);
    EXPECT_FALSE(v.get(i));
  }
}

TEST(BitVec, PopcountAndAny) {
  BitVec v(200);
  EXPECT_FALSE(v.any());
  v.set(3, true);
  v.set(77, true);
  v.set(199, true);
  EXPECT_TRUE(v.any());
  EXPECT_EQ(v.popcount(), 3u);
  v.set(77, false);
  EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVec, XorComputesHammingDistance) {
  Rng rng(1);
  BitVec a(592), b(592);
  for (std::size_t i = 0; i < 592; ++i) {
    a.set(i, rng.bernoulli(0.5));
  }
  b = a;
  for (std::size_t i : {5u, 100u, 591u}) b.flip(i);
  EXPECT_EQ((a ^ b).popcount(), 3u);
}

TEST(BitVec, XorSelfIsZero) {
  Rng rng(2);
  BitVec a(100);
  for (std::size_t i = 0; i < 100; ++i) a.set(i, rng.bernoulli(0.5));
  EXPECT_FALSE((a ^ a).any());
}

TEST(BitVec, EqualityRequiresSameSize) {
  BitVec a(10), b(11);
  EXPECT_FALSE(a == b);
  BitVec c(10);
  EXPECT_TRUE(a == c);
  a.set(5, true);
  EXPECT_FALSE(a == c);
}

TEST(BitVec, BoundsChecked) {
  BitVec v(10);
  EXPECT_THROW(v.get(10), CheckFailure);
  EXPECT_THROW(v.set(11, true), CheckFailure);
  EXPECT_THROW(v.flip(99), CheckFailure);
  BitVec w(20);
  EXPECT_THROW(v ^= w, CheckFailure);
}

TEST(BitVec, HighWordBitsStayClean) {
  // Setting bits must not leak past size within the last word.
  BitVec v(65);
  v.set(64, true);
  EXPECT_EQ(v.popcount(), 1u);
  EXPECT_EQ(v.words().size(), 2u);
  EXPECT_EQ(v.words()[1], 1u);
}

}  // namespace
}  // namespace rd
