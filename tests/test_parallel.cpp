// The parallel substrate's contract: every shard runs exactly once,
// exceptions propagate, READDUO_THREADS=1 is the in-order serial path, and
// sharded consumers (mc_ler) are bit-identical for every thread count.
#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "pcm/mc_ler.h"

namespace rd {
namespace {

/// Scoped READDUO_THREADS override; restores the previous value on exit.
class ScopedThreads {
 public:
  explicit ScopedThreads(const char* value) {
    const char* old = std::getenv("READDUO_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value) {
      ::setenv("READDUO_THREADS", value, 1);
    } else {
      ::unsetenv("READDUO_THREADS");
    }
  }
  ~ScopedThreads() {
    if (had_old_) {
      ::setenv("READDUO_THREADS", old_.c_str(), 1);
    } else {
      ::unsetenv("READDUO_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(ThreadCount, ParsesEnvAndClamps) {
  {
    ScopedThreads t("7");
    EXPECT_EQ(parallel_thread_count(), 7u);
  }
  {
    ScopedThreads t("1");
    EXPECT_EQ(parallel_thread_count(), 1u);
  }
  {
    ScopedThreads t("100000");
    EXPECT_EQ(parallel_thread_count(), 512u);
  }
  {
    // Garbage falls back to hardware concurrency (>= 1).
    ScopedThreads t("banana");
    EXPECT_GE(parallel_thread_count(), 1u);
  }
}

TEST(ThreadPool, ExecutesEveryShardExactlyOnce) {
  constexpr std::size_t kShards = 1000;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(kShards);
  pool.parallel_for(kShards, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "shard " << i;
  }
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::vector<int> out(64, 0);
    pool.parallel_for(out.size(),
                      [&](std::size_t i) { out[i] = static_cast<int>(i); });
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i));
    }
  }
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("shard 37");
                        }),
      std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> ran{0};
  pool.parallel_for(10, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, SerialPoolRunsInIndexOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(50, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 50u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(16 * 8);
  pool.parallel_for(16, [&](std::size_t outer) {
    // Nested loops must not deadlock on the busy pool; they run inline.
    parallel_for_shards(8, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ParallelForShards, SerialEnvForcesLegacyInOrderPath) {
  ScopedThreads t("1");
  std::vector<std::size_t> order;
  // Not thread-safe push_back — correct only if the serial path is taken.
  parallel_for_shards(100, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForShards, SameSumForAnyThreadCount) {
  auto sum_under = [](const char* threads) {
    ScopedThreads t(threads);
    std::vector<std::uint64_t> parts(257, 0);
    parallel_for_shards(parts.size(),
                        [&](std::size_t i) { parts[i] = i * i; });
    return std::accumulate(parts.begin(), parts.end(), std::uint64_t{0});
  };
  const std::uint64_t serial = sum_under("1");
  EXPECT_EQ(sum_under("2"), serial);
  EXPECT_EQ(sum_under("8"), serial);
}

// The tentpole acceptance criterion: the sharded Monte-Carlo LER is a pure
// function of its arguments — bit-identical failures for thread counts
// 1, 2, and 8 at the same seed.
TEST(McLerParallel, BitIdenticalAcrossThreadCounts) {
  const drift::MetricConfig cfg = drift::r_metric();
  const drift::LineGeometry geom;
  // > 2 shards at the 8192-line shard size, so the decomposition is real.
  constexpr std::uint64_t kLines = 20000;
  constexpr std::uint64_t kSeed = 20160628;

  auto run_with = [&](const char* threads) {
    ScopedThreads t(threads);
    return pcm::mc_ler(cfg, geom, /*e=*/0, /*t_seconds=*/64.0, kLines, kSeed);
  };
  const pcm::McLerResult one = run_with("1");
  const pcm::McLerResult two = run_with("2");
  const pcm::McLerResult eight = run_with("8");

  EXPECT_GT(one.failures, 0u);  // the point is non-trivial
  EXPECT_EQ(one.lines, kLines);
  EXPECT_EQ(two.failures, one.failures);
  EXPECT_EQ(eight.failures, one.failures);
}

}  // namespace
}  // namespace rd
