// The parallel substrate's contract: every shard runs exactly once,
// exceptions propagate, READDUO_THREADS=1 is the in-order serial path, and
// sharded consumers (mc_ler, run_schemes metrics) are bit-identical for
// every thread count.
#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/env.h"
#include "harness.h"
#include "pcm/mc_ler.h"

namespace rd {
namespace {

/// Scoped environment-variable override; restores the old value on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = env_cstr(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

/// Scoped READDUO_THREADS override; restores the previous value on exit.
class ScopedThreads : public ScopedEnv {
 public:
  explicit ScopedThreads(const char* value)
      : ScopedEnv("READDUO_THREADS", value) {}
};

TEST(ThreadCount, ParsesEnvAndClamps) {
  {
    ScopedThreads t("7");
    EXPECT_EQ(parallel_thread_count(), 7u);
  }
  {
    ScopedThreads t("1");
    EXPECT_EQ(parallel_thread_count(), 1u);
  }
  {
    ScopedThreads t("100000");
    EXPECT_EQ(parallel_thread_count(), 512u);
  }
}

TEST(ThreadCount, RejectsMalformedEnvLoudly) {
  // A typo must not silently run at hardware concurrency: the whole point
  // of the knob is labelling measurements with the real thread count.
  {
    ScopedThreads t("banana");
    EXPECT_THROW(parallel_thread_count(), CheckFailure);
  }
  {
    ScopedThreads t("0");
    EXPECT_THROW(parallel_thread_count(), CheckFailure);
  }
  {
    ScopedThreads t("4x");
    EXPECT_THROW(parallel_thread_count(), CheckFailure);
  }
  {
    ScopedThreads t("");
    EXPECT_THROW(parallel_thread_count(), CheckFailure);
  }
}

TEST(InstructionBudget, RejectsMalformedEnvLoudly) {
  {
    ScopedEnv e("READDUO_INSTR", "6e6");
    EXPECT_THROW(bench::instruction_budget(), CheckFailure);
  }
  {
    ScopedEnv e("READDUO_INSTR", "abc");
    EXPECT_THROW(bench::instruction_budget(), CheckFailure);
  }
  {
    ScopedEnv e("READDUO_INSTR", "0");
    EXPECT_THROW(bench::instruction_budget(), CheckFailure);
  }
  {
    ScopedEnv e("READDUO_INSTR", "120000");
    EXPECT_EQ(bench::instruction_budget(), 120000u);
  }
  {
    ScopedEnv e("READDUO_INSTR", nullptr);
    EXPECT_EQ(bench::instruction_budget(), 6'000'000u);
  }
}

TEST(ThreadPool, ExecutesEveryShardExactlyOnce) {
  constexpr std::size_t kShards = 1000;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(kShards);
  pool.parallel_for(kShards, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "shard " << i;
  }
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::vector<int> out(64, 0);
    pool.parallel_for(out.size(),
                      [&](std::size_t i) { out[i] = static_cast<int>(i); });
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i));
    }
  }
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("shard 37");
                        }),
      std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> ran{0};
  pool.parallel_for(10, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, SerialPoolRunsInIndexOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(50, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 50u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(16 * 8);
  pool.parallel_for(16, [&](std::size_t outer) {
    // Nested loops must not deadlock on the busy pool; they run inline.
    parallel_for_shards(8, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ParallelForShards, SerialEnvForcesLegacyInOrderPath) {
  ScopedThreads t("1");
  std::vector<std::size_t> order;
  // Not thread-safe push_back — correct only if the serial path is taken.
  parallel_for_shards(100, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForShards, SameSumForAnyThreadCount) {
  auto sum_under = [](const char* threads) {
    ScopedThreads t(threads);
    std::vector<std::uint64_t> parts(257, 0);
    parallel_for_shards(parts.size(),
                        [&](std::size_t i) { parts[i] = i * i; });
    return std::accumulate(parts.begin(), parts.end(), std::uint64_t{0});
  };
  const std::uint64_t serial = sum_under("1");
  EXPECT_EQ(sum_under("2"), serial);
  EXPECT_EQ(sum_under("8"), serial);
}

// The tentpole acceptance criterion: the sharded Monte-Carlo LER is a pure
// function of its arguments — bit-identical failures for thread counts
// 1, 2, and 8 at the same seed.
TEST(McLerParallel, BitIdenticalAcrossThreadCounts) {
  const drift::MetricConfig cfg = drift::r_metric();
  const drift::LineGeometry geom;
  // > 2 shards at the 8192-line shard size, so the decomposition is real.
  constexpr std::uint64_t kLines = 20000;
  constexpr std::uint64_t kSeed = 20160628;

  auto run_with = [&](const char* threads) {
    ScopedThreads t(threads);
    return pcm::mc_ler(cfg, geom, /*e=*/0, /*t_seconds=*/64.0, kLines, kSeed);
  };
  const pcm::McLerResult one = run_with("1");
  const pcm::McLerResult two = run_with("2");
  const pcm::McLerResult eight = run_with("8");

  EXPECT_GT(one.failures, 0u);  // the point is non-trivial
  EXPECT_EQ(one.lines, kLines);
  EXPECT_EQ(two.failures, one.failures);
  EXPECT_EQ(eight.failures, one.failures);
}

// The PR 2 acceptance criterion: the latency histograms and bank gauges a
// batch produces are bit-identical across thread counts. Each simulation
// is sequential and owns its metrics, so the only way this fails is
// cross-run state leaking through the harness.
TEST(MetricsParallel, HistogramsBitIdenticalAcrossThreadCounts) {
  ScopedEnv cache("READDUO_CACHE", "0");   // force fresh runs
  ScopedEnv instr("READDUO_INSTR", "60000");

  auto batch_under = [&](const char* threads) {
    ScopedThreads t(threads);
    std::vector<bench::RunSpec> specs;
    for (const char* wname : {"mcf", "lbm", "astar"}) {
      const trace::Workload& w = trace::workload_by_name(wname);
      specs.push_back({readduo::SchemeKind::kHybrid, w});
      specs.push_back({readduo::SchemeKind::kScrubbing, w});
    }
    return bench::run_schemes(specs);
  };

  const std::vector<bench::RunResult> serial = batch_under("1");
  const std::vector<bench::RunResult> pooled = batch_under("4");
  ASSERT_EQ(serial.size(), pooled.size());

  stats::SimMetrics merged_serial, merged_pooled;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_GT(serial[i].sim.metrics.demand_reads().count(), 0u)
        << "run " << i;
    // Per-run metrics identical, bucket for bucket.
    EXPECT_TRUE(serial[i].sim.metrics == pooled[i].sim.metrics)
        << "run " << i;
    merged_serial.merge(serial[i].sim.metrics);
    merged_pooled.merge(pooled[i].sim.metrics);
  }
  // And so is the batch-level aggregate.
  EXPECT_TRUE(merged_serial == merged_pooled);
  EXPECT_DOUBLE_EQ(merged_serial.demand_reads().p99(),
                   merged_pooled.demand_reads().p99());
}

}  // namespace
}  // namespace rd
