// Seeded violations for the no-bare-mutex rule: raw standard-library
// locking primitives outside common/thread_annotations.h. The annotated
// rd::Mutex / rd::MutexLock / rd::CondVar wrappers are mandatory so
// Clang's -Wthread-safety analysis can see every acquisition.
#include <mutex>

namespace fixture {

std::mutex plain;                           // expect: no-bare-mutex
std::recursive_mutex nested;                // expect: no-bare-mutex
std::timed_mutex timed;                     // expect: no-bare-mutex
std::condition_variable_any signal_cv;      // expect: no-bare-mutex

int locked_read(int* p) {
  std::lock_guard<std::mutex> g(plain);     // expect: no-bare-mutex
  return *p;
}

int adopted_read(int* p) {
  std::unique_lock<std::mutex> g(plain);    // expect: no-bare-mutex
  return *p;
}

// A reasoned suppression is honored: interop with a vendor API that hands
// us a std::mutex directly.
int vendor_read(int* p) {
  std::lock_guard<std::mutex> g(plain);  // lint: allow(no-bare-mutex) vendor API interop
  return *p;
}

}  // namespace fixture
