// Seeded violations for the guarded-field rule: a `_mu`-suffixed mutex
// member that no RD_GUARDED_BY / RD_REQUIRES / RD_ACQUIRE annotation in
// the file ever names guards nothing the analysis can check.
#include <cstdint>

#define RD_GUARDED_BY(x)

namespace rd {
class Mutex {};
}  // namespace rd

namespace fixture {

struct OrphanCache {
  rd::Mutex cache_mu;  // expect: guarded-field
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

struct AnnotatedCache {
  rd::Mutex table_mu;  // clean: referenced by the annotation below
  std::uint64_t entries RD_GUARDED_BY(table_mu) = 0;
};

struct SignalOnly {
  // lint: allow(guarded-field) condition-protocol mutex; orders atomics only
  rd::Mutex wake_mu;
};

}  // namespace fixture
