// Seeded violation: raw environment read bypassing the audited gateway.
#include <cstdlib>

const char* knob() {
  return std::getenv("READDUO_THREADS");  // expect: no-getenv
}
