// Seeded violations: malformed suppressions are themselves findings, and
// a rejected suppression does not silence the underlying rule.
#include <cstdlib>

// expect-next: lint-allow no-rand
int a() { return std::rand(); }  // lint: allow(no-rand)

// expect-next: lint-allow
int b() { return 1; }  // lint: allow(not-a-rule) plausible-looking reason
