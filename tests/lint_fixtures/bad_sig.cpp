// Seeded violations: raw-unit function parameters instead of rd::Ns.
#include <cstdint>

void record_latency(std::int64_t latency_ns);  // expect: sig-ns
void wait_for(std::uint64_t ns);               // expect: sig-ns
void advance(double seconds);                  // expect: sig-seconds
void scrub_every(double interval_s, int nu);   // expect: sig-seconds
// Members with initializers are state, not an API boundary: no finding.
struct Acc {
  std::int64_t busy_ns = 0;
  double window_s = 1.0;
};
// Unrelated identifiers must not fire.
void resize(std::int64_t columns);
void weight(double mass);
