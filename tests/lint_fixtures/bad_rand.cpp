// Seeded violations: nondeterministic random sources. Never compiled —
// scanned by `readduo_lint --selftest` only.
#include <cstdlib>
#include <random>

int noise() {
  std::srand(42);                    // expect: no-rand
  int a = std::rand() % 7;           // expect: no-rand
  std::random_device rd;             // expect: no-rand
  return a + static_cast<int>(rd());
}
