// Seeded violations for the device-zoo knob: near-miss names that look
// like the real READDUO_DEVICE knob but are not in the registry must be
// flagged — a typo in a device selection would otherwise silently run
// the builtin device and report its (identical-looking) metrics.
const char* kTypoDev = "READDUO_DEVICE_CFG";  // expect: env-registry
const char* kTypoDev2 = "READDUO_DEV";  // expect: env-registry
// The real knob is registered: no finding.
const char* kDev = "READDUO_DEVICE";
