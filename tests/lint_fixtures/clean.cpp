// Clean fixture: every seeded violation carries a well-formed
// suppression, so the whole file must produce zero findings.
#include <cstdlib>
#include <unordered_map>  // lint: allow(no-unordered) fixture exercises the same-line suppression path

int seeded() {
  std::srand(7);  // lint: allow(no-rand) reproducing a libc consumer under test
  return std::rand();  // lint: allow(no-rand) reproducing a libc consumer under test
}

// lint: allow(no-getenv) standalone-comment suppression covers the next line
const char* raw = std::getenv("READDUO_CACHE");

double tolerance_check(double x) {
  // lint: allow(unit-conv) convergence epsilon, not a time conversion
  return x < 1e-9 ? 0.0 : x;
}

// Plain deterministic code: no suppressions needed, no findings expected.
long long scaled(long long v) { return v * 3; }
