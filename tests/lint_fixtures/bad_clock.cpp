// Seeded violations: wall-clock reads in simulated-time code.
#include <chrono>
#include <ctime>

long now_ms() {
  auto t = std::chrono::steady_clock::now();          // expect: no-wallclock
  auto u = std::chrono::system_clock::now();          // expect: no-wallclock
  auto v = std::chrono::high_resolution_clock::now(); // expect: no-wallclock
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);                // expect: no-wallclock
  (void)t; (void)u; (void)v;
  return ts.tv_nsec;
}
