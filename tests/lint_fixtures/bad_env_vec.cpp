// Seeded violations for the vectorized-tier knobs: near-miss names that
// look like the real READDUO_SIMD / READDUO_BENCH_FAST knobs but are not
// in the registry must still be flagged — a typo in a dispatch override
// would otherwise silently run the default SIMD level.
const char* kTypoSimd = "READDUO_SIMD_LEVEL";  // expect: env-registry
const char* kTypoFast = "READDUO_BENCHFAST";  // expect: env-registry
// The real knobs are registered: no findings.
const char* kSimd = "READDUO_SIMD";
const char* kFast = "READDUO_BENCH_FAST";
const char* kGate = "READDUO_BENCH_COMPARE";
