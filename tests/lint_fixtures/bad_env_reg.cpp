// Seeded violation: an undocumented READDUO_* knob literal.
const char* kKnob = "READDUO_BOGUS_KNOB";  // expect: env-registry
const char* kOk = "READDUO_THREADS";  // registered: no finding
// Near-miss: one character off a registered serve knob must still fire
// (the registry is exact-match, not prefix-match).
const char* kNear = "READDUO_SERVE_WBUFS";  // expect: env-registry
const char* kOkServe = "READDUO_SERVE_MAX_FRAME";  // registered: no finding
