// Seeded violation: an undocumented READDUO_* knob literal.
const char* kKnob = "READDUO_BOGUS_KNOB";  // expect: env-registry
const char* kOk = "READDUO_THREADS";  // registered: no finding
