// Seeded violations for the no-detach rule: detached threads and raw
// `new std::thread` escape their owner's join discipline — every thread
// in this repo lives in a joining container.
#include <thread>

namespace fixture {

void fire_and_forget() {
  std::thread t([] {});
  t.detach();  // expect: no-detach
}

void leak_via_pointer() {
  auto* t = new std::thread([] {});  // expect: no-detach
  t->detach();                       // expect: no-detach
}

// Identifier boundaries: detach as part of a longer name is clean.
void undetached_cleanup();
int detach_count();

// A reasoned suppression is honored.
void daemonize() {
  std::thread t([] {});
  t.detach();  // lint: allow(no-detach) fixture: simulating daemon handoff
}

}  // namespace fixture
