// Seeded violations for the atomic-order rule: atomic operations that
// rely on the seq-cst default instead of stating the intended ordering.
#include <atomic>
#include <cstdint>

namespace fixture {

std::atomic<std::uint64_t> counter{0};
std::atomic<bool> stop_flag{false};

void bump() {
  counter.fetch_add(1);  // expect: atomic-order
}

std::uint64_t peek() {
  return counter.load();  // expect: atomic-order
}

void halt() {
  stop_flag.store(true);  // expect: atomic-order
}

bool swap_in(std::uint64_t want) {
  std::uint64_t seen = 0;
  return counter.compare_exchange_weak(seen, want);  // expect: atomic-order
}

std::uint64_t spread(std::uint64_t a, std::uint64_t b, std::uint64_t c);
void multiline_no_order() {
  counter.store(spread(1,  // expect: atomic-order
                       2,
                       3));
}

// Explicit orders are clean.
void bump_relaxed() {
  counter.fetch_add(1, std::memory_order_relaxed);
}
std::uint64_t peek_acquire() {
  return counter.load(std::memory_order_acquire);
}
void multiline_with_order() {
  counter.store(spread(4,
                       5,
                       6),
                std::memory_order_release);
}

// A reasoned suppression is honored.
void bump_suppressed() {
  counter.fetch_add(1);  // lint: allow(atomic-order) fixture: deliberate seq-cst
}

}  // namespace fixture
