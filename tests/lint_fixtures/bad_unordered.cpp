// Seeded violations: unordered containers in result-producing code.
#include <unordered_map>  // expect: no-unordered
#include <unordered_set>  // expect: no-unordered
#include <cstdint>

std::size_t distinct(const std::uint64_t* xs, std::size_t n) {
  std::unordered_set<std::uint64_t> seen;  // expect: no-unordered
  for (std::size_t i = 0; i < n; ++i) seen.insert(xs[i]);
  std::unordered_map<std::uint64_t, int> counts;  // expect: no-unordered
  (void)counts;
  return seen.size();
}
