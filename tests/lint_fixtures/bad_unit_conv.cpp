// Seeded violations: raw ns<->s conversion factors outside units.h.
long long to_ns(double s) { return static_cast<long long>(s * 1e9); }  // expect: unit-conv
double to_s(long long ns) { return static_cast<double>(ns) * 1e-9; }   // expect: unit-conv
double to_s2(long long ns) { return static_cast<double>(ns) * 1.0e-9; }  // expect: unit-conv
// Not conversions: different exponents and mantissas must not fire.
double big = 1e10;
double frac = 1.5e9;
double micro = 1e-6;
