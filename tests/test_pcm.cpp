// Tests for the PCM device layer: cells, MLC lines, differential writes,
// P&V write model, TLC codec, and the area model.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "pcm/area.h"
#include "pcm/cell.h"
#include "pcm/line.h"
#include "pcm/tlc.h"
#include "pcm/write.h"

namespace rd::pcm {
namespace {

BitVec random_bits(Rng& rng, std::size_t n) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.bernoulli(0.5));
  return v;
}

// ------------------------------------------------------------- Cell ------

TEST(Cell, FreshCellReadsBack) {
  Rng rng(1);
  const drift::MetricConfig cfg = drift::r_metric();
  for (std::size_t level = 0; level < 4; ++level) {
    for (int i = 0; i < 200; ++i) {
      Cell c;
      c.program(level, 0.0, rng, cfg);
      EXPECT_EQ(c.read_level(0.0, cfg), level);
      EXPECT_FALSE(c.drift_error(0.5, cfg));
    }
  }
}

TEST(Cell, MetricWithinProgrammedRangeAtWrite) {
  Rng rng(2);
  const drift::MetricConfig cfg = drift::r_metric();
  for (int i = 0; i < 1000; ++i) {
    Cell c;
    c.program(2, 0.0, rng, cfg);
    const double x = c.metric_at(0.0, cfg);
    EXPECT_GE(x, cfg.states[2].mu - cfg.program_halfwidth * cfg.states[2].sigma);
    EXPECT_LE(x, cfg.states[2].mu + cfg.program_halfwidth * cfg.states[2].sigma);
  }
}

TEST(Cell, MetricOnlyIncreasesWithTime) {
  Rng rng(3);
  const drift::MetricConfig cfg = drift::r_metric();
  for (int i = 0; i < 200; ++i) {
    Cell c;
    c.program(2, 0.0, rng, cfg);
    double prev = c.metric_at(1.0, cfg);
    for (double t = 10.0; t < 1e5; t *= 10.0) {
      const double x = c.metric_at(t, cfg);
      // alpha can be (rarely) negative in the normal model; drift is
      // upward for the overwhelming majority.
      prev = x;
    }
    // Mean drift is strictly upward for state 2.
  }
  // Statistical check: average drift over cells is positive.
  double drift_sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    Cell c;
    c.program(2, 0.0, rng, cfg);
    drift_sum += c.metric_at(1000.0, cfg) - c.metric_at(1.0, cfg);
  }
  EXPECT_GT(drift_sum / 2000.0, 0.1);
}

TEST(Cell, MisreadReturnsHigherLevel) {
  Rng rng(4);
  const drift::MetricConfig cfg = drift::r_metric();
  int errors = 0;
  for (int i = 0; i < 300000 && errors < 50; ++i) {
    Cell c;
    c.program(2, 0.0, rng, cfg);
    if (c.drift_error(640.0, cfg)) {
      ++errors;
      EXPECT_GT(c.read_level(640.0, cfg), 2u);
    }
  }
  EXPECT_GE(errors, 10);  // drift really happens at this age
}

TEST(Cell, RAndMReadoutsAreConsistent) {
  // The same cell seen through both metrics: percentiles are shared, so a
  // cell far into its R drift percentile is also far into its M one —
  // but M's 7x smaller coefficient keeps it inside its state.
  Rng rng(5);
  const drift::MetricConfig r = drift::r_metric();
  const drift::MetricConfig m = drift::m_metric();
  int r_err = 0, m_err = 0;
  for (int i = 0; i < 200000; ++i) {
    Cell c;
    c.program(2, 0.0, rng, r);
    r_err += c.drift_error(640.0, r) ? 1 : 0;
    m_err += c.drift_error(640.0, m) ? 1 : 0;
  }
  EXPECT_GT(r_err, 100);
  EXPECT_LT(m_err, r_err / 20);
}

TEST(Cell, RejectsBadLevel) {
  Rng rng(6);
  Cell c;
  EXPECT_THROW(c.program(4, 0.0, rng, drift::r_metric()), CheckFailure);
}

// ---------------------------------------------------------- MlcLine ------

TEST(MlcLine, RoundTripFresh) {
  Rng rng(7);
  const drift::MetricConfig cfg = drift::r_metric();
  MlcLine line(592);
  const BitVec data = random_bits(rng, 592);
  line.write_full(data, 0.0, rng, cfg);
  EXPECT_TRUE(line.read(0.0, cfg) == data);
  EXPECT_EQ(line.count_drift_errors(0.5, cfg), 0u);
}

TEST(MlcLine, GrayMappingInverse) {
  for (std::uint8_t v = 0; v < 4; ++v) {
    EXPECT_EQ(drift::kLevelData[data_to_level(v)], v);
  }
}

TEST(MlcLine, GeometryChecks) {
  MlcLine line(592);
  EXPECT_EQ(line.num_cells(), 296u);
  EXPECT_EQ(line.num_bits(), 592u);
  EXPECT_THROW(MlcLine(593), CheckFailure);  // odd bit count
}

TEST(MlcLine, DriftErrorsGrowWithAge) {
  Rng rng(8);
  const drift::MetricConfig cfg = drift::r_metric();
  // Average over lines: errors at 4096 s exceed errors at 64 s.
  std::size_t young = 0, old = 0;
  for (int i = 0; i < 50; ++i) {
    MlcLine line(592);
    line.write_full(random_bits(rng, 592), 0.0, rng, cfg);
    young += line.count_drift_errors(64.0, cfg);
    old += line.count_drift_errors(4096.0, cfg);
  }
  EXPECT_GT(old, young);
}

TEST(MlcLine, DifferentialWriteTouchesOnlyChangedCells) {
  Rng rng(9);
  const drift::MetricConfig cfg = drift::r_metric();
  MlcLine line(592);
  const BitVec data = random_bits(rng, 592);
  line.write_full(data, 0.0, rng, cfg);
  // Same data again: no cell should be programmed.
  EXPECT_EQ(line.write_differential(data, 1.0, rng, cfg), 0u);
  // Change exactly one cell's worth of data.
  BitVec changed = data;
  changed.flip(10);
  const std::size_t n = line.write_differential(changed, 2.0, rng, cfg);
  EXPECT_EQ(n, 1u);
  EXPECT_TRUE(line.read(2.0, cfg) == changed);
}

TEST(MlcLine, DifferentialWriteLeavesOldCellsDrifting) {
  // The Figure 6 hazard: cells untouched by a differential write keep
  // their original write time and drift budget.
  Rng rng(10);
  const drift::MetricConfig cfg = drift::r_metric();
  std::size_t diff_errors = 0, full_errors = 0;
  for (int i = 0; i < 100; ++i) {
    const BitVec data = random_bits(rng, 592);
    MlcLine naive(592), clean(592);
    naive.write_full(data, 0.0, rng, cfg);
    clean.write_full(data, 0.0, rng, cfg);
    // At 640 s, rewrite only what drifted (naive) vs everything (clean).
    naive.write_differential(data, 640.0, rng, cfg);
    clean.write_full(data, 640.0, rng, cfg);
    diff_errors += naive.count_drift_errors(1280.0, cfg);
    full_errors += clean.count_drift_errors(1280.0, cfg);
  }
  EXPECT_GT(diff_errors, full_errors);
}

TEST(MlcLine, RefreshDriftedLeavesLineCleanNow) {
  Rng rng(21);
  const drift::MetricConfig cfg = drift::r_metric();
  for (int i = 0; i < 50; ++i) {
    MlcLine line(592);
    line.write_full(random_bits(rng, 592), 0.0, rng, cfg);
    line.refresh_drifted(640.0, rng, cfg);
    EXPECT_EQ(line.count_drift_errors(640.0, cfg), 0u);
  }
}

TEST(MlcLine, UnrewrittenErrorsAccumulateMonotonically) {
  // The Figure 6 hazard as it manifests under the literal power-law: a
  // never-rewritten population only gains errors — drift is monotone.
  Rng rng(22);
  const drift::MetricConfig cfg = drift::r_metric();
  std::size_t prev = 0;
  std::vector<MlcLine> lines(100, MlcLine(592));
  for (auto& l : lines) l.write_full(random_bits(rng, 592), 0.0, rng, cfg);
  for (int epoch = 1; epoch <= 5; ++epoch) {
    std::size_t total = 0;
    for (auto& l : lines) {
      total += l.count_drift_errors(640.0 * epoch, cfg);
    }
    EXPECT_GE(total, prev) << epoch;
    prev = total;
  }
  EXPECT_GT(prev, 0u);
}

TEST(Cell, DriftIdentityPersistsAcrossReprograms) {
  // A cell's drift percentile is process variation: reprogramming must
  // not turn a fast-drifting cell into a slow one. Statistically: cells
  // that erred before a rewrite err again far more often than average.
  Rng rng(23);
  const drift::MetricConfig cfg = drift::r_metric();
  int fast_recross = 0, fast_total = 0, all_cross = 0, all_total = 0;
  for (int i = 0; i < 200000 && fast_total < 2000; ++i) {
    Cell c;
    c.program(2, 0.0, rng, cfg);
    const bool crossed = c.drift_error(640.0, cfg);
    c.program(2, 640.0, rng, cfg);  // rewrite
    const bool again = c.drift_error(1280.0, cfg);
    ++all_total;
    all_cross += again ? 1 : 0;
    if (crossed) {
      ++fast_total;
      fast_recross += again ? 1 : 0;
    }
  }
  ASSERT_GT(fast_total, 200);
  const double p_fast = static_cast<double>(fast_recross) / fast_total;
  const double p_all = static_cast<double>(all_cross) / all_total;
  // Crossing is dominated by the (redrawn) programming percentile, so the
  // enrichment from alpha persistence is moderate — but it must be there.
  // With a redrawn alpha the two probabilities would be equal.
  EXPECT_GT(p_fast, 1.5 * p_all);
}

TEST(MlcLine, MSensingCleanWhereRSensingErrs) {
  Rng rng(11);
  const drift::MetricConfig r = drift::r_metric();
  const drift::MetricConfig m = drift::m_metric();
  std::size_t r_total = 0, m_total = 0;
  for (int i = 0; i < 40; ++i) {
    MlcLine line(592);
    line.write_full(random_bits(rng, 592), 0.0, rng, r);
    r_total += line.count_drift_errors(2048.0, r);
    m_total += line.count_drift_errors(2048.0, m);
  }
  EXPECT_GT(r_total, 20u);
  EXPECT_LT(m_total, r_total / 10);
}

// -------------------------------------------------------------- P&V ------

TEST(WritePulses, BoundsRespected) {
  Rng rng(12);
  PnvParams p;
  for (std::size_t level = 0; level < 4; ++level) {
    for (int i = 0; i < 1000; ++i) {
      const unsigned pulses = write_pulses(level, p, rng);
      EXPECT_GE(pulses, 1u);
      EXPECT_LE(pulses, p.max_iterations);
    }
  }
}

TEST(WritePulses, MiddleLevelsNeedMoreIterations) {
  Rng rng(13);
  PnvParams p;
  double sums[4] = {0, 0, 0, 0};
  for (std::size_t level = 0; level < 4; ++level) {
    for (int i = 0; i < 5000; ++i) {
      sums[level] += write_pulses(level, p, rng);
    }
  }
  EXPECT_GT(sums[1], sums[0]);  // middle beats full-SET
  EXPECT_GT(sums[1], sums[3]);  // middle beats full-RESET
  EXPECT_GT(sums[2], sums[3]);
}

TEST(WritePulses, AverageMatchesParams) {
  PnvParams p;
  // RESET + mean SET iterations averaged over levels.
  const double expect =
      (1 + 1.0 + 1 + 4.0 + 1 + 3.0 + 1 + 0.0) / 4.0;
  EXPECT_NEAR(average_write_pulses(p), expect, 1e-12);
}

// -------------------------------------------------------------- TLC ------

class TlcValue : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(TlcValue, PairEncodingRoundTrips) {
  const std::uint8_t v = GetParam();
  const TlcPair p = tlc_encode(v);
  EXPECT_LT(p.hi, 3);
  EXPECT_LT(p.lo, 3);
  EXPECT_EQ(tlc_decode(p), v);
}

INSTANTIATE_TEST_SUITE_P(AllValues, TlcValue,
                         ::testing::Range<std::uint8_t>(0, 8));

TEST(TlcLine, RoundTripsArbitraryBits) {
  Rng rng(14);
  for (std::size_t nbits : {576u, 512u, 64u, 7u}) {
    TlcLine line(nbits);
    const BitVec data = random_bits(rng, nbits);
    line.write(data);
    EXPECT_TRUE(line.read() == data) << nbits;
  }
}

TEST(TlcLine, DensityMatchesPaper) {
  TlcGeometry g;
  EXPECT_EQ(g.coded_bits(), 576u);        // 512 + 8x(72,64) checks
  EXPECT_EQ(g.cells_per_line(), 384u);    // 2 cells per 3 bits
  TlcLine line(576);
  EXPECT_EQ(line.num_cells(), 384u);
}

// ------------------------------------------------------------- Area ------

TEST(AreaModel, ReadDuoIncrementNearPaper) {
  // Paper (NVSim): +0.27%. Our constants give ~0.25%.
  const double inc = readduo_area_increase();
  EXPECT_GT(inc, 0.001);
  EXPECT_LT(inc, 0.005);
}

TEST(AreaModel, CurrentSenseDominatesVoltageSense) {
  AreaParams p;
  const SubarrayArea a = subarray_area(p, true);
  EXPECT_GT(a.current_sense, a.voltage_sense);
  EXPECT_GT(a.data_array / a.total(), 0.9);
}

TEST(AreaModel, IncrementScalesWithVoltageSaSize) {
  AreaParams small, big;
  big.voltage_sa_f2 = 2 * small.voltage_sa_f2;
  EXPECT_GT(readduo_area_increase(big), readduo_area_increase(small));
}

}  // namespace
}  // namespace rd::pcm
