// Tests for the JSON stats writer.
#include "stats/json.h"

#include <gtest/gtest.h>

namespace rd::stats {
namespace {

TEST(Json, EmptyObject) {
  JsonWriter jw;
  EXPECT_EQ(jw.str(), "{\n}\n");
}

TEST(Json, TypesAndOrder) {
  JsonWriter jw;
  jw.add("name", std::string("mcf"))
      .add("count", std::uint64_t{42})
      .add("ratio", 1.5);
  const std::string s = jw.str();
  EXPECT_NE(s.find("\"name\": \"mcf\","), std::string::npos);
  EXPECT_NE(s.find("\"count\": 42,"), std::string::npos);
  EXPECT_NE(s.find("\"ratio\": 1.5\n"), std::string::npos);
  // name comes before count comes before ratio
  EXPECT_LT(s.find("name"), s.find("count"));
  EXPECT_LT(s.find("count"), s.find("ratio"));
}

TEST(Json, NoTrailingCommaOnLast) {
  JsonWriter jw;
  jw.add("a", std::uint64_t{1}).add("b", std::uint64_t{2});
  const std::string s = jw.str();
  EXPECT_NE(s.find("\"a\": 1,\n"), std::string::npos);
  EXPECT_NE(s.find("\"b\": 2\n"), std::string::npos);
}

TEST(Json, EscapesSpecialCharacters) {
  JsonWriter jw;
  jw.add("path", std::string("a\"b\\c\nd\te"));
  const std::string s = jw.str();
  EXPECT_NE(s.find("a\\\"b\\\\c\\nd\\te"), std::string::npos);
}

TEST(Json, ControlCharactersEscapedAsUnicode) {
  JsonWriter jw;
  jw.add("ctrl", std::string("x\x01y"));
  EXPECT_NE(jw.str().find("\\u0001"), std::string::npos);
}

}  // namespace
}  // namespace rd::stats
