// Unit-type invariants: the integral-nanosecond clock round-trips through
// seconds, conversion rounds to nearest, and overflow is a loud error.
#include "common/units.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/check.h"

namespace rd {
namespace {

TEST(Units, FromSecondsRoundsToNearest) {
  // 0.1 s is not exactly representable; truncation would yield 99999999.
  EXPECT_EQ(from_seconds(0.1).v, 100000000);
  EXPECT_EQ(from_seconds(0.3).v, 300000000);
  EXPECT_EQ(from_seconds(1.0).v, 1000000000);
  EXPECT_EQ(from_seconds(0.0).v, 0);
  EXPECT_EQ(from_seconds(-0.1).v, -100000000);
  // Sub-ns magnitudes round to the nearest tick, not toward zero.
  EXPECT_EQ(from_seconds(0.6e-9).v, 1);
  EXPECT_EQ(from_seconds(-0.6e-9).v, -1);
}

TEST(Units, SecondsRoundTripsThroughNs) {
  for (const double s : {0.0, 1e-9, 0.05, 8.0, 640.0, 20000.0, 1.0e6}) {
    const Ns ns = from_seconds(s);
    EXPECT_NEAR(ns.seconds(), s, 1e-9) << "s=" << s;
    // ns -> seconds -> ns is exact for every representable tick count.
    EXPECT_EQ(from_seconds(ns.seconds()).v, ns.v) << "s=" << s;
  }
}

TEST(Units, NsToSecondsToNsIsIdentityAtScale) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{999999999},
        std::int64_t{1} << 40, std::int64_t{1} << 52}) {
    EXPECT_EQ(from_seconds(Ns{v}.seconds()).v, v) << "v=" << v;
    EXPECT_EQ(from_seconds(Ns{-v}.seconds()).v, -v) << "v=" << v;
  }
}

TEST(Units, FromSecondsOverflowThrows) {
  // int64 ns covers about +/-292 years; 1e10 s * 1e9 overflows.
  EXPECT_THROW(from_seconds(1e10), CheckFailure);
  EXPECT_THROW(from_seconds(-1e10), CheckFailure);
  EXPECT_THROW(from_seconds(std::numeric_limits<double>::infinity()),
               CheckFailure);
  EXPECT_THROW(from_seconds(std::numeric_limits<double>::quiet_NaN()),
               CheckFailure);
  // The last representable magnitudes convert cleanly.
  EXPECT_NO_THROW(from_seconds(9.2e9));
  EXPECT_NO_THROW(from_seconds(-9.2e9));
}

TEST(Units, ArithmeticStaysIntegral) {
  const Ns a{3}, b{5};
  EXPECT_EQ((a + b).v, 8);
  EXPECT_EQ((b - a).v, 2);
  EXPECT_EQ((a * 4).v, 12);
  EXPECT_EQ((4 * a).v, 12);
  EXPECT_LT(a, b);
}

}  // namespace
}  // namespace rd
