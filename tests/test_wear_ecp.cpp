// Tests for the endurance substrates: Start-Gap wear leveling and ECP
// hard-error pointers.
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "pcm/ecp.h"
#include "pcm/wear_level.h"

namespace rd::pcm {
namespace {

// ----------------------------------------------------------- StartGap ----

TEST(StartGap, InitialMappingIsIdentity) {
  StartGap sg(16);
  for (std::uint64_t l = 0; l < 16; ++l) {
    EXPECT_EQ(sg.to_physical(l), l);
  }
  EXPECT_EQ(sg.gap_position(), 16u);
  EXPECT_EQ(sg.physical_lines(), 17u);
}

class StartGapState : public ::testing::TestWithParam<int> {};

TEST_P(StartGapState, MappingIsAlwaysInjective) {
  // Property: after any number of gap movements the logical->physical map
  // is a bijection into [0, lines] minus the gap slot.
  const int moves = GetParam();
  StartGap sg(12, /*gap_write_interval=*/1);
  for (int m = 0; m < moves; ++m) sg.on_write();
  std::set<std::uint64_t> seen;
  for (std::uint64_t l = 0; l < 12; ++l) {
    const std::uint64_t p = sg.to_physical(l);
    EXPECT_LT(p, sg.physical_lines());
    EXPECT_NE(p, sg.gap_position()) << "logical " << l;
    EXPECT_TRUE(seen.insert(p).second) << "collision at logical " << l;
  }
}

INSTANTIATE_TEST_SUITE_P(Moves, StartGapState,
                         ::testing::Values(0, 1, 5, 11, 12, 13, 25, 144,
                                           157));

TEST(StartGap, GapMovesEveryInterval) {
  StartGap sg(8, /*gap_write_interval=*/4);
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(sg.on_write());
  EXPECT_TRUE(sg.on_write());  // 4th write moves the gap
  EXPECT_EQ(sg.gap_position(), 7u);
}

TEST(StartGap, FullRotationAdvancesStart) {
  StartGap sg(8, 1);
  // Gap starts at 8; 9 movements return it to 8 with start advanced.
  for (int i = 0; i < 9; ++i) sg.on_write();
  EXPECT_EQ(sg.gap_position(), 8u);
  EXPECT_EQ(sg.rotations(), 1u);
  // Mapping is now shifted by one.
  EXPECT_EQ(sg.to_physical(0), 1u);
}

TEST(StartGap, EveryLogicalLineVisitsEveryPhysicalSlot) {
  // The wear-leveling property itself: across full rotations a hot
  // logical line's writes spread over all physical slots.
  StartGap sg(6, 1);
  std::set<std::uint64_t> slots;
  // 7 gap moves per rotation; 7 rotations visit everything.
  for (int i = 0; i < 7 * 7; ++i) {
    slots.insert(sg.to_physical(3));
    sg.on_write();
  }
  EXPECT_EQ(slots.size(), sg.physical_lines());
}

TEST(StartGap, HotLineWearFlattens) {
  // Monte-Carlo: a 90%-hot single line, with Start-Gap rotating under a
  // realistic gap interval, spreads its writes over many physical slots.
  StartGap sg(64, /*gap_write_interval=*/16);
  Rng rng(5);
  std::map<std::uint64_t, int> wear;
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t logical = rng.bernoulli(0.9) ? 7 : rng.uniform_below(64);
    ++wear[sg.to_physical(logical)];
    sg.on_write();
  }
  // Without leveling one slot would take ~180k writes; with it the peak
  // slot takes a small multiple of the mean.
  int peak = 0;
  for (const auto& [slot, count] : wear) peak = std::max(peak, count);
  const double mean = 200000.0 / static_cast<double>(sg.physical_lines());
  EXPECT_LT(peak, 3.0 * mean);
}

TEST(StartGap, RejectsBadArgs) {
  EXPECT_THROW(StartGap(0), CheckFailure);
  EXPECT_THROW(StartGap(4, 0), CheckFailure);
  StartGap sg(4);
  EXPECT_THROW(sg.to_physical(4), CheckFailure);
}

// ---------------------------------------------------------------- ECP ----

TEST(Ecp, FreshLineHasNoRetirements) {
  EcpLine ecp(296, 6);
  EXPECT_EQ(ecp.capacity(), 6u);
  EXPECT_EQ(ecp.used(), 0u);
  EXPECT_FALSE(ecp.exhausted());
  EXPECT_FALSE(ecp.is_retired(0));
}

TEST(Ecp, RetireAndPatch) {
  EcpLine ecp(8, 2);
  ASSERT_TRUE(ecp.retire_cell(3));
  ASSERT_TRUE(ecp.retire_cell(5));
  EXPECT_TRUE(ecp.exhausted());

  // Write path stores the true values for retired cells...
  std::vector<std::uint8_t> values = {0, 1, 2, 3, 0, 1, 2, 3};
  ecp.store(values);
  // ...then the stuck cells corrupt themselves...
  values[3] = 0;
  values[5] = 2;
  // ...and patch() restores them on read.
  ecp.patch(values);
  EXPECT_EQ(values[3], 3);
  EXPECT_EQ(values[5], 1);
}

TEST(Ecp, RetireIsIdempotent) {
  EcpLine ecp(16, 2);
  EXPECT_TRUE(ecp.retire_cell(9));
  EXPECT_TRUE(ecp.retire_cell(9));
  EXPECT_EQ(ecp.used(), 1u);
}

TEST(Ecp, ExhaustionReported) {
  EcpLine ecp(16, 2);
  EXPECT_TRUE(ecp.retire_cell(1));
  EXPECT_TRUE(ecp.retire_cell(2));
  EXPECT_FALSE(ecp.retire_cell(3));
  EXPECT_EQ(ecp.used(), 2u);
}

TEST(Ecp, PatchOnlyTouchesRetiredCells) {
  EcpLine ecp(6, 3);
  ecp.retire_cell(0);
  std::vector<std::uint8_t> values = {3, 2, 1, 0, 1, 2};
  ecp.store(values);
  std::vector<std::uint8_t> corrupted = {0, 9, 9, 9, 9, 9};
  ecp.patch(corrupted);
  EXPECT_EQ(corrupted[0], 3);  // patched
  for (int i = 1; i < 6; ++i) EXPECT_EQ(corrupted[i], 9);
}

TEST(Ecp, OverheadBitsForPaperGeometry) {
  // 296 cells -> 9 pointer bits; ECP-6: 6 * (9 + 2 + 1) = 72 bits.
  EcpLine ecp(296, 6);
  EXPECT_EQ(ecp.overhead_bits(), 72u);
}

TEST(Ecp, EndToEndStuckCellLifecycle) {
  // A stuck-at cell discovered by a verify-after-write: retire it, then
  // every subsequent read round-trips despite the cell lying.
  Rng rng(9);
  EcpLine ecp(296, 6);
  std::vector<std::uint8_t> stored(296);
  for (auto& v : stored) v = static_cast<std::uint8_t>(rng.uniform_below(4));
  const unsigned stuck = 123;
  const std::uint8_t stuck_value = 0;
  ASSERT_TRUE(ecp.retire_cell(stuck));
  ecp.store(stored);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::uint8_t> read = stored;
    read[stuck] = stuck_value;  // the cell is stuck
    ecp.patch(read);
    EXPECT_EQ(read, stored);
  }
}

TEST(Ecp, RejectsBadArgs) {
  EXPECT_THROW(EcpLine(0, 6), CheckFailure);
  EXPECT_THROW(EcpLine(296, 0), CheckFailure);
  EcpLine ecp(296, 6);
  EXPECT_THROW(ecp.retire_cell(296), CheckFailure);
  std::vector<std::uint8_t> wrong(10);
  EXPECT_THROW(ecp.patch(wrong), CheckFailure);
}

}  // namespace
}  // namespace rd::pcm
