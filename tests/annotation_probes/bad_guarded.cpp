// Negative thread-safety probe: reads and writes a guarded field without
// holding its mutex. Under
//   clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety
// this TU MUST FAIL to compile — run_static_analysis.sh asserts the
// failure, proving the analysis is actually armed (a probe that silently
// compiled would mean the annotations were being ignored).
#include "common/thread_annotations.h"

namespace probe {

class Counter {
 public:
  void bump_unlocked() {
    ++value_;  // error: writing value_ requires holding mu_
  }

  int read_unlocked() const {
    return value_;  // error: reading value_ requires holding mu_
  }

 private:
  rd::Mutex mu_;
  int value_ RD_GUARDED_BY(mu_) = 0;
};

}  // namespace probe

int main() {
  probe::Counter c;
  c.bump_unlocked();
  return c.read_unlocked();
}
