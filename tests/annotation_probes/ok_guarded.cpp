// Positive thread-safety probe: every guarded access holds the right
// capability, so this TU must compile cleanly under
//   clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety
// (and under any compiler without the analysis, where the annotations
// expand to nothing). run_static_analysis.sh compiles it in the Clang
// annotation stage; bad_guarded.cpp is the matching negative probe.
#include "common/thread_annotations.h"

namespace probe {

class Counter {
 public:
  void bump() RD_EXCLUDES(mu_) {
    rd::MutexLock g(mu_);
    ++value_;
  }

  int wait_nonzero() RD_EXCLUDES(mu_) {
    rd::MutexLock g(mu_);
    while (value_ == 0) cv_.wait(mu_);
    return value_;
  }

  void bump_locked() RD_REQUIRES(mu_) { ++value_; }

  void bump_twice() RD_EXCLUDES(mu_) {
    mu_.lock();
    bump_locked();
    bump_locked();
    mu_.unlock();
    cv_.notify_all();
  }

 private:
  rd::Mutex mu_;
  rd::CondVar cv_;
  int value_ RD_GUARDED_BY(mu_) = 0;
};

}  // namespace probe

int main() {
  probe::Counter c;
  c.bump();
  c.bump_twice();
  return c.wait_nonzero() == 3 ? 0 : 1;
}
