// Tests for the LWT flag protocol (Figure 5) — the hardware bits that let
// ReadDuo-LWT decide between R-sensing and M-sensing.
#include "readduo/lwt_flags.h"

#include <gtest/gtest.h>

namespace rd::readduo {
namespace {

TEST(LwtFlags, Construction) {
  for (unsigned k : {2u, 4u, 8u, 16u, 32u}) {
    LwtFlags f(k);
    EXPECT_EQ(f.k(), k);
    EXPECT_EQ(f.vector_flag(), 0u);
    EXPECT_EQ(f.index_flag(), 0u);
  }
  EXPECT_THROW(LwtFlags(3), CheckFailure);
  EXPECT_THROW(LwtFlags(0), CheckFailure);
  EXPECT_THROW(LwtFlags(64), CheckFailure);
}

TEST(LwtFlags, FlagBitCost) {
  EXPECT_EQ(LwtFlags(2).flag_bits(), 3u);   // 2 + 1
  EXPECT_EQ(LwtFlags(4).flag_bits(), 6u);   // 4 + 2
  EXPECT_EQ(LwtFlags(8).flag_bits(), 11u);  // 8 + 3
}

TEST(LwtFlags, WriteSetsBitAndIndex) {
  LwtFlags f(4);
  f.on_write(2);
  EXPECT_EQ(f.vector_flag(), 0b0100u);
  EXPECT_EQ(f.index_flag(), 2u);
}

TEST(LwtFlags, Figure5Walkthrough) {
  // The exact scenario of Figure 5: W1 in sub-interval #2, then three
  // scrubs none of which rewrites, with read R1 in sub-interval 2.
  LwtFlags f(4);
  f.on_write(2);
  EXPECT_EQ(f.vector_flag(), 0b0100u);
  EXPECT_EQ(f.index_flag(), 2u);

  // scrub1: clears bits [0, ind-1] = bits 0 and 1; ind := 0.
  f.on_scrub(false);
  EXPECT_EQ(f.vector_flag(), 0b0100u);  // W1's bit survives
  EXPECT_EQ(f.index_flag(), 0u);

  // Read R1 in sub-interval 2: case (iii) — discard [1, 2], vector
  // becomes zero, switch to M-sensing (paper's example).
  EXPECT_FALSE(f.tracked_for_read(2));
  // A read in sub-interval 0 still sees the bit (within 640 s).
  EXPECT_TRUE(f.tracked_for_read(0));
  EXPECT_TRUE(f.tracked_for_read(1));

  // scrub2 (ind == 0): clears everything.
  f.on_scrub(false);
  EXPECT_EQ(f.vector_flag(), 0u);
  // scrub3: still nothing.
  f.on_scrub(false);
  EXPECT_EQ(f.vector_flag(), 0u);
  EXPECT_FALSE(f.tracked_for_read(0));
}

TEST(LwtFlags, CaseI_WriteThisCycleAllowsRSensing) {
  LwtFlags f(4);
  f.on_scrub(false);
  f.on_write(1);
  for (unsigned s = 1; s < 4; ++s) {
    EXPECT_TRUE(f.tracked_for_read(s)) << s;
  }
}

TEST(LwtFlags, CaseII_EmptyVectorForcesMSensing) {
  LwtFlags f(4);
  for (unsigned s = 0; s < 4; ++s) {
    EXPECT_FALSE(f.tracked_for_read(s)) << s;
  }
}

TEST(LwtFlags, CaseIII_StaleBitsDiscardedByLabel) {
  // Write at label 3, then scrub: the bit survives but reads later in the
  // new cycle must treat labels [1, s] as stale.
  LwtFlags f(4);
  f.on_write(3);
  f.on_scrub(false);
  EXPECT_EQ(f.vector_flag(), 0b1000u);
  EXPECT_EQ(f.index_flag(), 0u);
  // Bit 3 is in (s, k-1] for reads at s < 3: previous-cycle write still
  // within 640 s.
  EXPECT_TRUE(f.tracked_for_read(0));
  EXPECT_TRUE(f.tracked_for_read(1));
  EXPECT_TRUE(f.tracked_for_read(2));
  // At s = 3 the bit falls inside [1, 3]: it is now ~640 s old — stale.
  EXPECT_FALSE(f.tracked_for_read(3));
}

TEST(LwtFlags, ScrubRewriteTracksAsBitZero) {
  LwtFlags f(4);
  f.on_scrub(true);
  EXPECT_EQ(f.vector_flag(), 0b0001u);
  EXPECT_EQ(f.index_flag(), 0u);
  // Bit 0 is never discarded by case (iii) ([1, s] excludes 0).
  for (unsigned s = 0; s < 4; ++s) {
    EXPECT_TRUE(f.tracked_for_read(s)) << s;
  }
  // The next scrub without rewrite retires it.
  f.on_scrub(false);
  EXPECT_EQ(f.vector_flag(), 0u);
}

TEST(LwtFlags, WriteAtLabelZeroTracked) {
  LwtFlags f(4);
  f.on_scrub(false);
  f.on_write(0);
  EXPECT_EQ(f.index_flag(), 0u);
  EXPECT_EQ(f.vector_flag(), 0b0001u);
  EXPECT_TRUE(f.tracked_for_read(2));  // bit 0 survives [1, s] discard
}

TEST(LwtFlags, LaterWriteRetiresGapBits) {
  // Writes at labels 1 then 3: the (1, 3) gap label 2, if set from an
  // older cycle, must be cleared.
  LwtFlags f(4);
  f.on_write(1);
  f.on_write(2);
  f.on_write(3);
  EXPECT_EQ(f.vector_flag(), 0b1110u);
  f.on_scrub(false);  // clears [0, 2]
  EXPECT_EQ(f.vector_flag(), 0b1000u);
  f.on_write(1);
  // (ind=0 after scrub... write at 1 sets bit 1, clears nothing in (0,1))
  EXPECT_EQ(f.vector_flag(), 0b1010u);
  EXPECT_EQ(f.index_flag(), 1u);
  f.on_write(3);
  // clears (1, 3) = bit 2 (unset anyway), sets bit 3 (already set).
  EXPECT_EQ(f.vector_flag(), 0b1010u);
  EXPECT_EQ(f.index_flag(), 3u);
}

TEST(LwtFlags, MultipleWritesSameSubInterval) {
  LwtFlags f(4);
  f.on_write(2);
  f.on_write(2);
  EXPECT_EQ(f.vector_flag(), 0b0100u);
  EXPECT_EQ(f.index_flag(), 2u);
}

TEST(LwtFlags, TwoScrubsWithoutWritesAlwaysUntrack) {
  // Property: whatever the starting state, two consecutive scrubs with no
  // rewrite and no intervening write force M-sensing.
  for (unsigned w1 = 0; w1 < 4; ++w1) {
    for (unsigned w2 = 0; w2 < 4; ++w2) {
      LwtFlags f(4);
      f.on_write(w1);
      f.on_write(w2 >= w1 ? w2 : w1);  // writes move forward in a cycle
      f.on_scrub(false);
      f.on_scrub(false);
      for (unsigned s = 0; s < 4; ++s) {
        EXPECT_FALSE(f.tracked_for_read(s))
            << "w1=" << w1 << " w2=" << w2 << " s=" << s;
      }
    }
  }
}

TEST(LwtFlags, RejectsOutOfRangeLabels) {
  LwtFlags f(4);
  EXPECT_THROW(f.on_write(4), CheckFailure);
  EXPECT_THROW((void)f.tracked_for_read(4), CheckFailure);
}

class LwtFlagsK : public ::testing::TestWithParam<unsigned> {};

TEST_P(LwtFlagsK, FreshWriteAlwaysTracked) {
  const unsigned k = GetParam();
  for (unsigned w = 0; w < k; ++w) {
    for (unsigned s = w; s < k; ++s) {
      LwtFlags f(k);
      f.on_scrub(false);
      f.on_write(w);
      EXPECT_TRUE(f.tracked_for_read(s)) << "k=" << k << " w=" << w;
    }
  }
}

TEST_P(LwtFlagsK, ConservativeNeverTracksBeyondTwoCycles) {
  // Safety property: a line with one write, after >= 2 full scrub cycles,
  // is never reported trackable (R-sensing would be unreliable).
  const unsigned k = GetParam();
  for (unsigned w = 0; w < k; ++w) {
    LwtFlags f(k);
    f.on_write(w);
    f.on_scrub(false);
    f.on_scrub(false);
    for (unsigned s = 0; s < k; ++s) {
      EXPECT_FALSE(f.tracked_for_read(s)) << "k=" << k << " w=" << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, LwtFlagsK, ::testing::Values(2u, 4u, 8u, 16u));

}  // namespace
}  // namespace rd::readduo
