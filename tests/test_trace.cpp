// Tests for the synthetic trace substrate.
#include "trace/generator.h"
#include "trace/workload.h"

#include <map>

#include <gtest/gtest.h>

#include "common/check.h"

namespace rd::trace {
namespace {

TEST(Workloads, FourteenSpecBenchmarks) {
  EXPECT_EQ(spec2006_workloads().size(), 14u);
  // The paper's running examples exist.
  EXPECT_NO_THROW(workload_by_name("mcf"));
  EXPECT_NO_THROW(workload_by_name("sphinx3"));
  EXPECT_NO_THROW(workload_by_name("bzip2"));
  EXPECT_THROW(workload_by_name("doom"), CheckFailure);
}

TEST(Workloads, ParametersSane) {
  for (const Workload& w : spec2006_workloads()) {
    EXPECT_GT(w.rpki, 0.0) << w.name;
    EXPECT_GE(w.wpki, 0.0) << w.name;
    EXPECT_GT(w.footprint_lines, 0u) << w.name;
    EXPECT_GT(w.archive_lines, 0u) << w.name;
    EXPECT_GE(w.archive_read_fraction, 0.0) << w.name;
    EXPECT_LT(w.archive_read_fraction, 1.0) << w.name;
    EXPECT_LT(w.zipf_s, 1.0) << w.name;  // rank-age model needs s < 1
  }
}

TEST(Workloads, SphinxIsTheArchiveScanCase) {
  const Workload& s = workload_by_name("sphinx3");
  EXPECT_TRUE(s.archive_scan);
  EXPECT_GT(s.archive_read_fraction, 0.5);
  EXPECT_GT(s.rpki / s.wpki, 10.0);  // read-mostly
}

TEST(TraceGen, Deterministic) {
  const Workload& w = workload_by_name("mcf");
  TraceGen a(w, 0, 42), b(w, 0, 42);
  for (int i = 0; i < 1000; ++i) {
    const MemOp x = a.next(), y = b.next();
    EXPECT_EQ(x.line, y.line);
    EXPECT_EQ(x.is_write, y.is_write);
    EXPECT_EQ(x.gap_instructions, y.gap_instructions);
  }
}

TEST(TraceGen, CoresUseDisjointSlices) {
  const Workload& w = workload_by_name("bzip2");
  TraceGen g0(w, 0, 1), g1(w, 1, 1);
  const std::uint64_t slice = w.footprint_lines + w.archive_lines;
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(g0.next().line, slice);
    const MemOp op = g1.next();
    EXPECT_GE(op.line, slice);
    EXPECT_LT(op.line, 2 * slice);
  }
}

TEST(TraceGen, WriteFractionMatchesWpki) {
  const Workload& w = workload_by_name("lbm");
  TraceGen g(w, 0, 3);
  int writes = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) writes += g.next().is_write ? 1 : 0;
  const double expect = w.wpki / (w.rpki + w.wpki);
  EXPECT_NEAR(static_cast<double>(writes) / n, expect, 0.01);
}

TEST(TraceGen, GapMatchesOpsPerKiloInstruction) {
  const Workload& w = workload_by_name("mcf");
  TraceGen g(w, 0, 4);
  double gaps = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    gaps += static_cast<double>(g.next().gap_instructions);
  }
  const double mean_gap = gaps / n;
  const double expect = 1000.0 / (w.rpki + w.wpki);
  EXPECT_NEAR(mean_gap / expect, 1.0, 0.05);
}

TEST(TraceGen, ArchiveFractionOfReads) {
  const Workload& w = workload_by_name("sphinx3");
  TraceGen g(w, 0, 5);
  int reads = 0, archive = 0;
  for (int i = 0; i < 200000; ++i) {
    const MemOp op = g.next();
    if (!op.is_write) {
      ++reads;
      archive += op.archive ? 1 : 0;
    }
  }
  EXPECT_NEAR(static_cast<double>(archive) / reads,
              w.archive_read_fraction, 0.02);
}

TEST(TraceGen, ArchiveIsNeverWritten) {
  const Workload& w = workload_by_name("mcf");
  TraceGen g(w, 0, 6);
  for (int i = 0; i < 100000; ++i) {
    const MemOp op = g.next();
    if (op.is_write) {
      EXPECT_LT(op.line, w.footprint_lines);
      EXPECT_FALSE(op.archive);
    }
    if (op.archive) EXPECT_GE(op.line, w.footprint_lines);
  }
}

TEST(TraceGen, ZipfLocalityHotterLowRanks) {
  const Workload& w = workload_by_name("gcc");  // zipf 0.9
  TraceGen g(w, 0, 7);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 200000; ++i) ++counts[g.next().line % w.footprint_lines];
  // Rank 0 much hotter than rank 1000.
  EXPECT_GT(counts[0], 50);
  EXPECT_GT(counts[0], counts[1000] * 5);
}

TEST(TraceGen, ScanArchiveIsCyclicSequential) {
  const Workload& w = workload_by_name("sphinx3");
  TraceGen g(w, 0, 8);
  std::uint64_t prev = 0;
  bool have_prev = false;
  int checked = 0;
  for (int i = 0; i < 300000 && checked < 5000; ++i) {
    const MemOp op = g.next();
    if (!op.archive) continue;
    const std::uint64_t pos = op.line - g.archive_base();
    if (have_prev) {
      EXPECT_EQ(pos, (prev + 1) % w.archive_lines);
      ++checked;
    }
    prev = pos;
    have_prev = true;
  }
  EXPECT_GE(checked, 5000);
}

}  // namespace
}  // namespace rd::trace
