// Tests for the observability layer: latency histograms, bank gauges, the
// event-trace ring, strict env parsing, and the versioned bench-cache
// entry format.
#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <vector>

#include "common/env.h"
#include "harness.h"
#include "stats/metrics.h"
#include "stats/trace_ring.h"

namespace rd {
namespace {

using stats::BankGauge;
using stats::LatencyHistogram;
using stats::SimMetrics;

// ------------------------------------------------------ bucket layout ---

TEST(Histogram, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_lo(v), v);
  }
  EXPECT_EQ(LatencyHistogram::bucket_hi(3), 4u);
}

TEST(Histogram, BucketIndexIsMonotoneAndSelfConsistent) {
  std::size_t prev = 0;
  for (std::uint64_t v : std::vector<std::uint64_t>{
           0, 1, 3, 4, 5, 7, 8, 15, 16, 150, 450, 600, 1023, 1024, 1u << 20,
           (1ull << 40) + 7, ~0ull}) {
    const std::size_t i = LatencyHistogram::bucket_index(v);
    EXPECT_GE(i, prev) << "v=" << v;
    prev = i;
    ASSERT_LT(i, LatencyHistogram::kNumBuckets);
    // v lies inside its own bucket's [lo, hi) range; the last bucket is
    // closed because its hi saturates at UINT64_MAX.
    EXPECT_GE(v, LatencyHistogram::bucket_lo(i)) << "v=" << v;
    if (i + 1 < LatencyHistogram::kNumBuckets) {
      EXPECT_LT(v, LatencyHistogram::bucket_hi(i)) << "v=" << v;
    } else {
      EXPECT_LE(v, LatencyHistogram::bucket_hi(i)) << "v=" << v;
    }
  }
}

TEST(Histogram, BucketBoundariesTile) {
  // Every bucket's hi is the next bucket's lo: no gaps, no overlaps.
  for (std::size_t i = 0; i + 1 < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_EQ(LatencyHistogram::bucket_hi(i),
              LatencyHistogram::bucket_lo(i + 1))
        << "bucket " << i;
  }
}

TEST(Histogram, LogSpacedResolutionBound) {
  // Relative bucket width (hi-lo)/lo is at most 25% from 4 ns up.
  for (std::size_t i = LatencyHistogram::bucket_index(4);
       i + 1 < LatencyHistogram::kNumBuckets; ++i) {
    const double lo = static_cast<double>(LatencyHistogram::bucket_lo(i));
    const double hi = static_cast<double>(LatencyHistogram::bucket_hi(i));
    EXPECT_LE((hi - lo) / lo, 0.25 + 1e-12) << "bucket " << i;
  }
}

// ------------------------------------------------- recording and stats ---

TEST(Histogram, CountSumMaxMean) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  h.record(Ns{100});
  h.record(Ns{200});
  h.record(Ns{300});
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 600);
  EXPECT_EQ(h.max(), 300);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(Histogram, NegativeValuesClampToZero) {
  LatencyHistogram h;
  h.record(Ns{-5});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, PercentilesAreOrderedAndBracketedByData) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(Ns{i});
  const double p50 = h.p50();
  const double p95 = h.p95();
  const double p99 = h.p99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, static_cast<double>(h.max()));
  // Within one bucket's resolution (<= 25%) of the exact quantiles.
  EXPECT_NEAR(p50, 500.0, 0.25 * 500.0);
  EXPECT_NEAR(p95, 950.0, 0.25 * 950.0);
  EXPECT_NEAR(p99, 990.0, 0.25 * 990.0);
}

TEST(Histogram, SingleValuePercentilesCollapse) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.record(Ns{155});
  // All mass in one bucket whose top is clamped to the exact max.
  EXPECT_LE(h.p50(), 155.0);
  EXPECT_GE(h.p50(), static_cast<double>(LatencyHistogram::bucket_lo(
                         LatencyHistogram::bucket_index(155))));
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 155.0);
}

TEST(Histogram, PercentileInterpolatesWithinBucket) {
  // Two values in well-separated buckets: the median walks from the low
  // bucket to the high one as p crosses the mass boundary.
  LatencyHistogram h;
  h.record(Ns{100});
  h.record(Ns{10000});
  EXPECT_LT(h.percentile(0.25), 150.0);
  EXPECT_GT(h.percentile(0.95), 5000.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 10000.0);
}

// ---------------------------------------------------------------- merge ---

TEST(Histogram, MergeOfShardsEqualsSingleHistogram) {
  std::mt19937_64 rng(7);
  LatencyHistogram whole;
  std::vector<LatencyHistogram> shards(4);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v =
        static_cast<std::int64_t>(rng() % 1'000'000);
    whole.record(Ns{v});
    shards[static_cast<std::size_t>(i) % 4].record(Ns{v});
  }
  LatencyHistogram merged;
  for (const auto& s : shards) merged.merge(s);
  EXPECT_TRUE(merged == whole);
  EXPECT_DOUBLE_EQ(merged.p99(), whole.p99());
}

TEST(Histogram, MergeOrderIrrelevant) {
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.record(Ns{10 * i});
  for (int i = 0; i < 50; ++i) b.record(Ns{100'000 + i});
  LatencyHistogram ab = a;
  ab.merge(b);
  LatencyHistogram ba = b;
  ba.merge(a);
  EXPECT_TRUE(ab == ba);
}

TEST(Histogram, RestoreRoundTrips) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.record(Ns{i * 37});
  LatencyHistogram r;
  r.restore(h.buckets(), h.sum(), h.max());
  EXPECT_TRUE(r == h);
  EXPECT_EQ(r.count(), h.count());
}

// --------------------------------------------------------------- gauges ---

TEST(BankGaugeTest, MergeAccumulates) {
  BankGauge a{100, 2, 6, 4};
  BankGauge b{50, 1, 10, 10};
  a.merge(b);
  EXPECT_EQ(a.busy_ns, 150);
  EXPECT_EQ(a.depth_samples, 3u);
  EXPECT_EQ(a.depth_sum, 16u);
  EXPECT_EQ(a.depth_max, 10u);
  EXPECT_DOUBLE_EQ(a.avg_depth(), 16.0 / 3.0);
}

TEST(SimMetricsTest, MergeAlignsBanksByIndex) {
  SimMetrics a, b;
  a.banks.resize(2);
  b.banks.resize(4);
  b.banks[3].busy_ns = 7;
  b.lat(stats::ReqClass::kRRead).record(Ns{100});
  a.merge(b);
  ASSERT_EQ(a.banks.size(), 4u);
  EXPECT_EQ(a.banks[3].busy_ns, 7);
  EXPECT_EQ(a.lat(stats::ReqClass::kRRead).count(), 1u);
  EXPECT_EQ(a.demand_reads().count(), 1u);
}

// ----------------------------------------------------------- event ring ---

TEST(EventRing, KeepsLastNOldestFirst) {
  stats::EventRing ring(3);
  for (int i = 0; i < 5; ++i) {
    ring.push(stats::TraceEvent{i, 'R', 0, 0, static_cast<std::uint64_t>(i),
                                100});
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.total_pushed(), 5u);
  std::ostringstream os;
  ring.dump(os, "test");
  const std::string s = os.str();
  // Events 2, 3, 4 retained; 0 and 1 overwritten.
  EXPECT_EQ(s.find("t=0ns"), std::string::npos);
  EXPECT_EQ(s.find("t=1ns"), std::string::npos);
  EXPECT_NE(s.find("t=2ns"), std::string::npos);
  EXPECT_NE(s.find("t=4ns"), std::string::npos);
  EXPECT_LT(s.find("t=2ns"), s.find("t=3ns"));
  EXPECT_LT(s.find("t=3ns"), s.find("t=4ns"));
  EXPECT_NE(s.find("3 of 5 events retained"), std::string::npos);
  EXPECT_NE(s.find("test"), std::string::npos);
}

// ------------------------------------------------------------ env parse ---

TEST(EnvParse, AcceptsPlainIntegers) {
  EXPECT_EQ(parse_env_u64("X", "0"), 0u);
  EXPECT_EQ(parse_env_u64("X", "6000000"), 6'000'000u);
}

TEST(EnvParse, RejectsEverythingElse) {
  EXPECT_THROW(parse_env_u64("X", ""), CheckFailure);
  EXPECT_THROW(parse_env_u64("X", "abc"), CheckFailure);
  EXPECT_THROW(parse_env_u64("X", "6e6"), CheckFailure);
  EXPECT_THROW(parse_env_u64("X", "-1"), CheckFailure);
  EXPECT_THROW(parse_env_u64("X", "+1"), CheckFailure);
  EXPECT_THROW(parse_env_u64("X", " 5"), CheckFailure);
  EXPECT_THROW(parse_env_u64("X", "5 "), CheckFailure);
  EXPECT_THROW(parse_env_u64("X", "0x10"), CheckFailure);
  // Out of range for 64 bits.
  EXPECT_THROW(parse_env_u64("X", "99999999999999999999999"), CheckFailure);
}

// ---------------------------------------------------- cache entry schema ---

bench::RunResult sample_result() {
  bench::RunResult r;
  r.summary.scheme = "LWT-4";
  r.summary.exec_time = Ns{123456789};
  r.summary.dynamic_energy_pj = 1.25e9;
  r.summary.static_watts = 0.7301;
  r.summary.cells_per_line = 301.5;
  r.summary.cell_writes = 42000.0;
  r.counters.r_reads = 1000;
  r.counters.m_reads = 200;
  r.counters.rm_reads = 30;
  r.counters.detected_uncorrectable = 2;
  r.counters.read_energy_pj = 0.125;
  r.sim.exec_time = Ns{123456789};
  r.sim.reads_serviced = 1230;
  r.sim.read_latency_sum_ns = 555555;
  r.sim.scrub_rewrites_dropped = 3;
  r.sim.row_hits = 17;
  r.sim.metrics.banks.resize(16);
  r.sim.metrics.banks[0].busy_ns = 999;
  r.sim.metrics.banks[15].depth_max = 12;
  r.sim.metrics.banks[15].depth_samples = 5;
  r.sim.metrics.banks[15].depth_sum = 20;
  for (int i = 0; i < 1230; ++i) {
    r.sim.metrics.lat(stats::ReqClass::kRRead).record(Ns{150 + i % 700});
  }
  r.sim.metrics.lat(stats::ReqClass::kScrubRewrite).record(Ns{9001});
  return r;
}

TEST(CacheEntry, RoundTripsEveryField) {
  const bench::RunResult r = sample_result();
  std::stringstream ss;
  bench::detail::write_cache_entry(ss, r);
  bench::RunResult out;
  ASSERT_TRUE(bench::detail::parse_cache_entry(ss, out));
  EXPECT_EQ(out.summary.scheme, r.summary.scheme);
  EXPECT_EQ(out.summary.exec_time.v, r.summary.exec_time.v);
  EXPECT_DOUBLE_EQ(out.summary.static_watts, r.summary.static_watts);
  EXPECT_EQ(out.counters.r_reads, r.counters.r_reads);
  EXPECT_EQ(out.counters.detected_uncorrectable,
            r.counters.detected_uncorrectable);
  EXPECT_DOUBLE_EQ(out.counters.read_energy_pj, r.counters.read_energy_pj);
  EXPECT_EQ(out.sim.reads_serviced, r.sim.reads_serviced);
  EXPECT_EQ(out.sim.scrub_rewrites_dropped, r.sim.scrub_rewrites_dropped);
  EXPECT_EQ(out.sim.row_hits, r.sim.row_hits);
  // The whole metrics block survives bit-identically.
  EXPECT_TRUE(out.sim.metrics == r.sim.metrics);
  EXPECT_DOUBLE_EQ(out.sim.metrics.demand_reads().p99(),
                   r.sim.metrics.demand_reads().p99());
}

TEST(CacheEntry, RejectsStaleSchemaVersion) {
  // A v1-era entry (no version tag, fields start with the scheme name):
  // must be a miss, not a misparse.
  std::stringstream v1("LWT-4 123 4.5 0.7 301 42 1 2 3 4 5 6 7 8 9 10 11 "
                       "12 13 0.1 0.2 0.3 14 15 16 17 18 19 20 21\n");
  bench::RunResult out;
  EXPECT_FALSE(bench::detail::parse_cache_entry(v1, out));

  // An explicit older/newer version tag is rejected too.
  std::stringstream ss;
  bench::detail::write_cache_entry(ss, sample_result());
  std::string body = ss.str();
  body.replace(0, 2, "v1");
  std::stringstream stale(body);
  EXPECT_FALSE(bench::detail::parse_cache_entry(stale, out));
  body.replace(0, 2, "v9");
  std::stringstream future(body);
  EXPECT_FALSE(bench::detail::parse_cache_entry(future, out));
}

TEST(CacheEntry, RejectsTrailingTokens) {
  std::stringstream ss;
  bench::detail::write_cache_entry(ss, sample_result());
  std::stringstream extra(ss.str() + " 777\n");
  bench::RunResult out;
  EXPECT_FALSE(bench::detail::parse_cache_entry(extra, out));
}

TEST(CacheEntry, RejectsTruncatedEntry) {
  std::stringstream ss;
  bench::detail::write_cache_entry(ss, sample_result());
  const std::string body = ss.str();
  std::stringstream cut(body.substr(0, body.size() / 2));
  bench::RunResult out;
  EXPECT_FALSE(bench::detail::parse_cache_entry(cut, out));
}

TEST(CacheEntry, RejectsCorruptMetricsBlock) {
  std::stringstream ss;
  bench::detail::write_cache_entry(ss, sample_result());
  std::string body = ss.str();
  // Claim a different bucket count than the binary was built with.
  const std::string tag = "M 6 " +
                          std::to_string(stats::LatencyHistogram::kNumBuckets);
  const std::size_t pos = body.find(tag);
  ASSERT_NE(pos, std::string::npos);
  body.replace(pos, tag.size(), "M 6 64");
  std::stringstream bad(body);
  bench::RunResult out;
  EXPECT_FALSE(bench::detail::parse_cache_entry(bad, out));
}

}  // namespace
}  // namespace rd
