// Tests for the event-driven memory-system simulator.
#include "memsim/simulator.h"

#include <gtest/gtest.h>

#include "memsim/env.h"
#include "readduo/schemes.h"
#include "trace/workload.h"

namespace rd::memsim {
namespace {

SimConfig small_config(std::uint64_t budget = 200'000) {
  SimConfig cfg;
  cfg.instructions_per_core = budget;
  cfg.seed = 11;
  return cfg;
}

SimResult run(readduo::SchemeKind kind, const trace::Workload& w,
              SimConfig cfg, readduo::Scheme** out_scheme = nullptr,
              const readduo::ReadDuoOptions& opts = {}) {
  static std::unique_ptr<readduo::Scheme> holder;
  readduo::SchemeEnv env = make_scheme_env(w, cfg.cpu, cfg.seed);
  holder = readduo::make_scheme(kind, env, opts);
  if (out_scheme) *out_scheme = holder.get();
  Simulator sim(cfg, *holder, w);
  return sim.run();
}

TEST(Simulator, CompletesAndRetiresBudget) {
  const auto& w = trace::workload_by_name("bzip2");
  const SimConfig cfg = small_config();
  const SimResult r = run(readduo::SchemeKind::kIdeal, w, cfg);
  EXPECT_EQ(r.instructions, 4 * cfg.instructions_per_core);
  EXPECT_GT(r.exec_time.v, 0);
  EXPECT_GT(r.reads_serviced, 0u);
  EXPECT_GT(r.writes_serviced, 0u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const auto& w = trace::workload_by_name("mcf");
  const SimConfig cfg = small_config();
  const SimResult a = run(readduo::SchemeKind::kHybrid, w, cfg);
  const SimResult b = run(readduo::SchemeKind::kHybrid, w, cfg);
  EXPECT_EQ(a.exec_time.v, b.exec_time.v);
  EXPECT_EQ(a.reads_serviced, b.reads_serviced);
  EXPECT_EQ(a.read_latency_sum_ns, b.read_latency_sum_ns);
  EXPECT_EQ(a.write_cancellations, b.write_cancellations);
}

TEST(Simulator, DifferentSeedsDiffer) {
  const auto& w = trace::workload_by_name("mcf");
  SimConfig cfg = small_config();
  const SimResult a = run(readduo::SchemeKind::kIdeal, w, cfg);
  cfg.seed = 12;
  const SimResult b = run(readduo::SchemeKind::kIdeal, w, cfg);
  EXPECT_NE(a.exec_time.v, b.exec_time.v);
}

TEST(Simulator, ReadLatencyAtLeastDeviceLatency) {
  const auto& w = trace::workload_by_name("astar");
  const SimResult r = run(readduo::SchemeKind::kIdeal, w, small_config());
  // 150 ns sense + 5 ns bus, plus queueing.
  EXPECT_GE(r.avg_read_latency_ns(), 155.0);
  EXPECT_LT(r.avg_read_latency_ns(), 5000.0);
}

TEST(Simulator, MMetricSlowerThanIdeal) {
  const auto& w = trace::workload_by_name("mcf");
  const SimConfig cfg = small_config();
  const SimResult ideal = run(readduo::SchemeKind::kIdeal, w, cfg);
  const SimResult m = run(readduo::SchemeKind::kMMetric, w, cfg);
  EXPECT_GT(m.exec_time.v, ideal.exec_time.v);
  EXPECT_GT(m.avg_read_latency_ns(), ideal.avg_read_latency_ns() + 200.0);
}

TEST(Simulator, WriteCancellationTriggersUnderLoad) {
  const auto& w = trace::workload_by_name("lbm");  // write-heavy
  const SimResult r = run(readduo::SchemeKind::kIdeal, w, small_config());
  EXPECT_GT(r.write_cancellations, 0u);
}

TEST(Simulator, DisablingWriteCancellationHurtsReadLatency) {
  const auto& w = trace::workload_by_name("lbm");
  SimConfig cfg = small_config();
  const SimResult with = run(readduo::SchemeKind::kIdeal, w, cfg);
  cfg.write_cancellation = false;
  const SimResult without = run(readduo::SchemeKind::kIdeal, w, cfg);
  EXPECT_EQ(without.write_cancellations, 0u);
  EXPECT_GT(without.avg_read_latency_ns(), with.avg_read_latency_ns());
}

TEST(Simulator, ScrubEngineRunsAtConfiguredRate) {
  const auto& w = trace::workload_by_name("bzip2");
  const SimConfig cfg = small_config(500'000);
  readduo::Scheme* scheme = nullptr;
  const SimResult r = run(readduo::SchemeKind::kScrubbing, w, cfg, &scheme);
  // Expected scrub senses: banks * exec_time / period, period = S * rows /
  // lines_per_bank ... = S * lines_per_scrub / lines_per_bank.
  const double rows_per_bank =
      static_cast<double>(cfg.org.lines_per_bank()) / cfg.org.lines_per_scrub;
  const double period_ns = 8.0 * 1e9 / rows_per_bank;
  const double expected = static_cast<double>(cfg.org.num_banks) *
                          static_cast<double>(r.exec_time.v) / period_ns;
  EXPECT_GT(static_cast<double>(r.scrubs_serviced), 0.8 * expected);
  EXPECT_LT(static_cast<double>(r.scrubs_serviced), 1.2 * expected + 10.0);
}

TEST(Simulator, IdealHasNoScrubs) {
  const auto& w = trace::workload_by_name("bzip2");
  const SimResult r = run(readduo::SchemeKind::kIdeal, w, small_config());
  EXPECT_EQ(r.scrubs_serviced, 0u);
}

TEST(Simulator, FewerBanksIncreaseContention) {
  const auto& w = trace::workload_by_name("mcf");
  SimConfig cfg = small_config();
  const SimResult eight = run(readduo::SchemeKind::kIdeal, w, cfg);
  cfg.org.num_banks = 1;
  const SimResult one = run(readduo::SchemeKind::kIdeal, w, cfg);
  EXPECT_GT(one.exec_time.v, eight.exec_time.v);
  EXPECT_GT(one.avg_read_latency_ns(), eight.avg_read_latency_ns());
}

TEST(Simulator, HigherStallFractionSlowsExecution) {
  const auto& w = trace::workload_by_name("mcf");
  SimConfig cfg = small_config();
  cfg.cpu.read_stall_fraction = 0.1;
  const SimResult fast = run(readduo::SchemeKind::kIdeal, w, cfg);
  cfg.cpu.read_stall_fraction = 1.0;
  const SimResult slow = run(readduo::SchemeKind::kIdeal, w, cfg);
  EXPECT_GT(slow.exec_time.v, fast.exec_time.v);
}

TEST(Simulator, BankUtilizationWithinBounds) {
  const auto& w = trace::workload_by_name("mcf");
  SimConfig cfg = small_config();
  const SimResult r = run(readduo::SchemeKind::kIdeal, w, cfg);
  const double util =
      static_cast<double>(r.bank_busy_ns) /
      (static_cast<double>(r.exec_time.v) * cfg.org.num_banks);
  EXPECT_GT(util, 0.0);
  EXPECT_LE(util, 1.0 + 1e-9);
}

TEST(Simulator, SchemeCountersMatchSimCounts) {
  const auto& w = trace::workload_by_name("bzip2");
  readduo::Scheme* scheme = nullptr;
  const SimResult r =
      run(readduo::SchemeKind::kMMetric, w, small_config(), &scheme);
  const auto& c = scheme->counters();
  // Reads are planned at dispatch; the handful still in flight when the
  // last core retires are planned but never counted as serviced.
  EXPECT_GE(c.total_reads(), r.reads_serviced);
  EXPECT_LE(c.total_reads(), r.reads_serviced + 64);
  // Every serviced write was planned by the scheme (cancelled writes are
  // re-serviced without re-planning).
  EXPECT_GE(c.total_demand_writes() + c.scrub_rewrites +
                c.conversion_writes,
            r.writes_serviced);
}

TEST(Simulator, ConversionWritesFlowThroughBank) {
  const auto& w = trace::workload_by_name("sphinx3");
  SimConfig cfg = small_config(400'000);
  readduo::ReadDuoOptions opts;
  opts.controller.initial_t = 100;
  readduo::Scheme* scheme = nullptr;
  run(readduo::SchemeKind::kLwt, w, cfg, &scheme, opts);
  EXPECT_GT(scheme->counters().conversion_writes, 0u);
}

TEST(Simulator, WritePausingBeatsCancellationOnWriteThroughput) {
  // Pausing resumes writes with their remaining latency; under heavy
  // read-induced preemption that strictly reduces wasted bank time.
  const auto& w = trace::workload_by_name("lbm");
  SimConfig cfg = small_config(300'000);
  cfg.max_write_cancellations = 8;
  const SimResult cancel = run(readduo::SchemeKind::kIdeal, w, cfg);
  cfg.write_preemption = WritePreemption::kPause;
  const SimResult pause = run(readduo::SchemeKind::kIdeal, w, cfg);
  ASSERT_GT(cancel.write_cancellations, 0u);
  // Same preemption opportunities, strictly less redone work.
  EXPECT_LT(pause.bank_busy_ns, cancel.bank_busy_ns);
  EXPECT_LE(pause.exec_time.v, cancel.exec_time.v * 102 / 100);
}

TEST(Simulator, ZeroScrubIntervalDisablesScrubTicks) {
  const auto& w = trace::workload_by_name("astar");
  const SimResult r = run(readduo::SchemeKind::kTlc, w, small_config());
  EXPECT_EQ(r.scrubs_serviced, 0u);
  EXPECT_EQ(r.scrub_backlog_end, 0u);
}

// ----------------------------------------------- bugfix regressions ---

TEST(Simulator, ExactBudgetIssuesEveryRetiredOp) {
  // rpki=1000, wpki=0: one read per instruction (the geometric gap with
  // p=1 is always 0), so every op costs exactly gap+1 = 1 instruction and
  // each core's budget is exhausted by exactly the +1 of its final op.
  // read_stall_fraction=1 makes every read blocking, so a core only
  // finishes after its last read completes.
  trace::Workload w;
  w.name = "exact-budget";
  w.rpki = 1000.0;
  w.wpki = 0.0;
  w.footprint_lines = 4096;
  w.zipf_s = 0.0;
  w.archive_read_fraction = 0.0;
  w.archive_age_scale = 1.0;
  w.archive_lines = 64;
  SimConfig cfg = small_config(2'000);
  cfg.cpu.read_stall_fraction = 1.0;
  const SimResult r = run(readduo::SchemeKind::kIdeal, w, cfg);
  EXPECT_EQ(r.instructions, 4 * cfg.instructions_per_core);
  // Regression: the final op used to be counted as retired but dropped
  // without issuing, losing one read per core.
  EXPECT_EQ(r.reads_serviced + r.writes_serviced,
            4 * cfg.instructions_per_core);
}

TEST(Simulator, ScrubRewriteLinesWalkTheBankRange) {
  const auto& w = trace::workload_by_name("bzip2");
  SimConfig cfg = small_config(500'000);
  cfg.trace_events = 1u << 20;
  readduo::SchemeEnv env = make_scheme_env(w, cfg.cpu, cfg.seed);
  auto scheme =
      readduo::make_scheme(readduo::SchemeKind::kScrubbing, env, {});
  Simulator sim(cfg, *scheme, w);
  sim.run();
  const stats::EventRing* ring = sim.trace_ring();
  ASSERT_NE(ring, nullptr);
  ASSERT_EQ(ring->total_pushed(), ring->size());  // nothing evicted
  std::vector<std::vector<std::uint64_t>> lines(cfg.org.num_banks);
  for (std::size_t i = 0; i < ring->size(); ++i) {
    const stats::TraceEvent& e = ring->event(i);
    if (e.kind != 'W' ||
        e.cls != static_cast<std::uint8_t>(stats::ReqClass::kScrubRewrite)) {
      continue;
    }
    lines[e.bank].push_back(e.line);
  }
  std::size_t rewrites = 0;
  std::size_t beyond_first_stripe = 0;
  for (unsigned b = 0; b < cfg.org.num_banks; ++b) {
    std::uint64_t prev = 0;
    bool first = true;
    for (std::uint64_t ln : lines[b]) {
      ++rewrites;
      // The rewrite register stays inside bank b's own line range...
      EXPECT_EQ(ln % cfg.org.num_banks, b);
      // ...moving forward (a cancelled rewrite re-serves the same line;
      // a dropped one skips a cursor position).
      if (!first) EXPECT_GE(ln, prev);
      first = false;
      prev = ln;
      if (ln >= cfg.org.num_banks) ++beyond_first_stripe;
    }
  }
  ASSERT_GT(rewrites, 0u);
  // Regression: rewrites used to alias demand line `b` (the bank index
  // reused as a line address), pinning every rewrite into the first
  // num_banks lines of the address space.
  EXPECT_GT(beyond_first_stripe, 0u);
}

TEST(Simulator, RowHitRequiresLatencyReduction) {
  const auto& w = trace::workload_by_name("bzip2");
  SimConfig cfg = small_config();
  cfg.row_buffer.enabled = true;
  // Row-interleave keeps a row's lines on one bank so locality can hit.
  cfg.address_map = AddressMap::kRowInterleave;
  // Positive control: a genuinely faster latched row registers hits.
  cfg.row_buffer.hit_latency = Ns{60};
  const SimResult fast = run(readduo::SchemeKind::kMMetric, w, cfg);
  EXPECT_GT(fast.row_hits, 0u);
  // Regression: a hit latency at or above every sensing latency never
  // clamps, so no access is served faster and none may count as a hit
  // (row_hits used to increment on every open-row match).
  cfg.row_buffer.hit_latency = Ns{100'000};
  const SimResult never = run(readduo::SchemeKind::kMMetric, w, cfg);
  EXPECT_EQ(never.row_hits, 0u);
}

// ------------------------------------------------- service-seam tests ---

TEST(Simulator, ExternalModeDrainsAfterStopScrub) {
  // Open-system driving: external requests at virtual times with the
  // background scrub engine ticking between them; after stop_scrub() the
  // event queue must drain to empty (in-flight senses/rewrites included)
  // and every submitted request must have completed exactly once.
  const auto& w = trace::workload_by_name("bzip2");
  SimConfig cfg = small_config();
  cfg.cpu.num_cores = 0;
  readduo::SchemeEnv env = make_scheme_env(w, cfg.cpu, cfg.seed);
  auto scheme =
      readduo::make_scheme(readduo::SchemeKind::kScrubbing, env, {});
  Simulator sim(cfg, *scheme, w);
  ASSERT_TRUE(sim.externally_driven());
  std::uint64_t id = 0;
  Ns t{0};
  for (int i = 0; i < 200; ++i) {
    t += Ns{2'000};
    sim.external_read(++id, static_cast<std::uint64_t>(i) * 37, false, t);
    while (!sim.external_write(++id, static_cast<std::uint64_t>(i) * 11,
                               t)) {
      sim.step_one();
    }
    sim.step(t);
  }
  sim.stop_scrub();
  while (sim.step_one()) {
  }
  // Scrub ran in the background (period ~3.8 us, horizon 400 us)...
  EXPECT_GT(sim.result().scrubs_serviced, 0u);
  // ...and the drain completed every external request.
  const auto done = sim.take_completions();
  EXPECT_EQ(done.size(), static_cast<std::size_t>(id));
  std::vector<bool> seen(id + 1, false);
  for (const auto& c : done) {
    ASSERT_GE(c.id, 1u);
    ASSERT_LE(c.id, id);
    EXPECT_FALSE(seen[c.id]) << "request completed twice: " << c.id;
    seen[c.id] = true;
    EXPECT_GE(c.latency().v, 0);
  }
  EXPECT_EQ(sim.result().reads_serviced, 200u);
  EXPECT_EQ(sim.result().metrics.lat(stats::ReqClass::kDemandWrite).count(),
            200u);
  // The clock never runs backwards and covers the full drain.
  EXPECT_GE(sim.current_time().v, t.v);
}

TEST(Simulator, WriteCancellationKeepsBoundedQueueLive) {
  // Tiny write queue + write-heavy trace: cancellations re-queue writes
  // at the front of an already-full queue, and cores stall on admission.
  // The run must still retire the full budget (no deadlock), plan each
  // demand write exactly once, and stay deterministic.
  const auto& w = trace::workload_by_name("lbm");
  SimConfig cfg = small_config(100'000);
  cfg.write_queue_depth = 2;
  cfg.max_write_cancellations = 8;
  readduo::Scheme* scheme = nullptr;
  const SimResult r = run(readduo::SchemeKind::kIdeal, w, cfg, &scheme);
  EXPECT_GT(r.write_cancellations, 0u);
  EXPECT_EQ(r.instructions, 4 * cfg.instructions_per_core);
  // Cancelled writes are re-serviced without re-planning: the demand
  // writes serviced can never exceed the admissions the scheme planned.
  EXPECT_LE(r.metrics.lat(stats::ReqClass::kDemandWrite).count(),
            scheme->counters().total_demand_writes());
  const SimResult again = run(readduo::SchemeKind::kIdeal, w, cfg);
  EXPECT_TRUE(r.metrics == again.metrics);
  EXPECT_EQ(r.write_cancellations, again.write_cancellations);
}

// ----------------------------------------------------------- metrics ---

TEST(SimulatorMetrics, ReadHistogramMatchesServicedPopulation) {
  const auto& w = trace::workload_by_name("mcf");
  const SimResult r = run(readduo::SchemeKind::kHybrid, w, small_config());
  const stats::LatencyHistogram reads = r.metrics.demand_reads();
  // Every serviced read was recorded into exactly one read-class bucket.
  EXPECT_EQ(reads.count(), r.reads_serviced);
  // The histogram's sum is the exact latency sum the mean is derived from.
  EXPECT_EQ(reads.sum(), r.read_latency_sum_ns);
}

TEST(SimulatorMetrics, TailOrderingOnMixedReadWriteTrace) {
  // The PR 2 acceptance shape: p99 >= avg >= p50 on a mixed trace whose
  // read population spans R- and M-sensing plus queueing delays.
  const auto& w = trace::workload_by_name("mcf");
  const SimResult r = run(readduo::SchemeKind::kHybrid, w, small_config());
  const stats::LatencyHistogram reads = r.metrics.demand_reads();
  ASSERT_GT(reads.count(), 1000u);
  const double avg = r.avg_read_latency_ns();
  EXPECT_GE(reads.p99(), avg);
  EXPECT_GE(avg, reads.p50());
  EXPECT_GE(reads.p99(), reads.p95());
  EXPECT_GE(reads.p95(), reads.p50());
  EXPECT_LE(reads.p99(), static_cast<double>(reads.max()));
  // Device floor: no demand read completes faster than R-sense + bus.
  EXPECT_GE(reads.percentile(0.0), 100.0);
}

TEST(SimulatorMetrics, PerClassHistogramsSplitByMode) {
  // sphinx3 reads mostly archive data, which LWT's flag window does not
  // track — those reads abort R-sensing and get serviced as R-M-reads,
  // so both read classes (and conversion writes) are populated.
  const auto& w = trace::workload_by_name("sphinx3");
  readduo::Scheme* scheme = nullptr;
  const SimResult r =
      run(readduo::SchemeKind::kLwt, w, small_config(), &scheme);
  const auto& m = r.metrics;
  const auto& c = scheme->counters();
  // Per-class counts can't exceed what the scheme planned (the final
  // read can still be in flight when the last core retires).
  EXPECT_GT(m.lat(stats::ReqClass::kRRead).count(), 0u);
  EXPECT_GT(m.lat(stats::ReqClass::kRMRead).count(), 0u);
  EXPECT_LE(m.lat(stats::ReqClass::kRRead).count(), c.r_reads);
  EXPECT_LE(m.lat(stats::ReqClass::kRMRead).count(), c.rm_reads);
  // Pure M-reads belong to the M-metric scheme only.
  EXPECT_EQ(m.lat(stats::ReqClass::kMRead).count(), 0u);
  // Flag-miss conversions surface as their own write class.
  EXPECT_GT(m.lat(stats::ReqClass::kConversionWrite).count(), 0u);
  // Demand writes flow into their own class.
  EXPECT_GT(m.lat(stats::ReqClass::kDemandWrite).count(), 0u);
  EXPECT_EQ(m.lat(stats::ReqClass::kDemandWrite).count() +
                m.lat(stats::ReqClass::kConversionWrite).count() +
                m.lat(stats::ReqClass::kScrubRewrite).count(),
            r.writes_serviced);
}

TEST(SimulatorMetrics, ScrubRewritesGetTheirOwnClass) {
  const auto& w = trace::workload_by_name("bzip2");
  const SimResult r =
      run(readduo::SchemeKind::kScrubbing, w, small_config(500'000));
  EXPECT_GT(r.metrics.lat(stats::ReqClass::kScrubRewrite).count(), 0u);
}

TEST(SimulatorMetrics, BankGaugesConsistentWithAggregates) {
  const auto& w = trace::workload_by_name("mcf");
  SimConfig cfg = small_config();
  const SimResult r = run(readduo::SchemeKind::kIdeal, w, cfg);
  ASSERT_EQ(r.metrics.banks.size(), cfg.org.num_banks);
  std::int64_t busy = 0;
  std::uint64_t samples = 0;
  for (const stats::BankGauge& g : r.metrics.banks) {
    busy += g.busy_ns;
    samples += g.depth_samples;
    // busy_ns can exceed exec_time: banks drain queued writes and scrub
    // rewrites after the last core retires its budget.
    EXPECT_GE(g.busy_ns, 0);
    EXPECT_GE(g.depth_max, 0u);
  }
  // Per-bank busy time decomposes the aggregate exactly.
  EXPECT_EQ(busy, r.bank_busy_ns);
  // One depth sample per service start: reads + writes + scrubs, minus
  // nothing (cancelled writes are re-serviced, hence re-sampled).
  EXPECT_GE(samples, r.reads_serviced + r.writes_serviced);
}

TEST(SimulatorMetrics, DeterministicAcrossIdenticalRuns) {
  const auto& w = trace::workload_by_name("lbm");
  const SimConfig cfg = small_config();
  const SimResult a = run(readduo::SchemeKind::kScrubbing, w, cfg);
  const SimResult b = run(readduo::SchemeKind::kScrubbing, w, cfg);
  EXPECT_TRUE(a.metrics == b.metrics);
}

}  // namespace
}  // namespace rd::memsim
