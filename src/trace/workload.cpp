#include "trace/workload.h"

#include "common/check.h"

namespace rd::trace {

const std::vector<Workload>& spec2006_workloads() {
  // RPKI/WPKI approximate post-LLC (memory-traffic) rates reported for
  // SPEC CPU2006 behind a multi-MB last-level cache. archive_read_fraction is high for benchmarks that stream reads
  // over data produced long before (sphinx3, mcf pointer chasing over a
  // pre-built graph), near zero for write-heavy kernels (lbm, bzip2).
  static const std::vector<Workload> kWorkloads = {
      //        name        rpki   wpki  footprint  zipf  arch%   age(s)  archlines
      Workload{"astar",      0.50, 0.21,  1u << 20, 0.60, 0.03, 20000.0, 1u << 17},
      Workload{"bwaves",     1.90, 0.28,  1u << 21, 0.20, 0.03, 20000.0, 1u << 18},
      Workload{"bzip2",      0.60, 0.35,  1u << 20, 0.80, 0.02, 20000.0, 1u << 17},
      Workload{"gcc",        0.80, 0.56,  1u << 20, 0.90, 0.03, 20000.0, 1u << 17},
      Workload{"GemsFDTD",   2.60, 0.63,  1u << 21, 0.15, 0.04, 20000.0, 1u << 18},
      Workload{"lbm",        3.20, 2.10,  1u << 21, 0.10, 0.01, 20000.0, 1u << 18},
      Workload{"leslie3d",   2.30, 0.63,  1u << 21, 0.20, 0.03, 20000.0, 1u << 18},
      Workload{"libquantum", 4.50, 0.98,  1u << 20, 0.05, 0.02, 20000.0, 1u << 17},
      Workload{"mcf",        9.50, 2.50,  1u << 22, 0.40, 0.06, 50000.0, 1u << 18},
      Workload{"milc",       2.70, 1.12,  1u << 21, 0.25, 0.03, 20000.0, 1u << 18},
      Workload{"omnetpp",    1.80, 1.12,  1u << 20, 0.70, 0.04, 20000.0, 1u << 16},
      Workload{"soplex",     3.70, 1.19,  1u << 21, 0.45, 0.05, 30000.0, 1u << 18},
      Workload{"sphinx3",    2.00, 0.14,  1u << 20, 0.50, 0.60, 80000.0, 1u << 9, true},
      Workload{"xalancbmk",  1.40, 0.49,  1u << 20, 0.65, 0.04, 20000.0, 1u << 16},
  };
  return kWorkloads;
}

const Workload& workload_by_name(const std::string& name) {
  for (const Workload& w : spec2006_workloads()) {
    if (w.name == name) return w;
  }
  RD_CHECK_MSG(false, "unknown workload: " << name);
  // Unreachable; RD_CHECK_MSG throws.
  return spec2006_workloads().front();
}

}  // namespace rd::trace
