#include "trace/generator.h"

#include "common/check.h"

namespace rd::trace {

TraceGen::TraceGen(const Workload& w, unsigned core, std::uint64_t seed)
    : workload_(w), rng_(seed * 0x9e3779b97f4a7c15ull + core + 1) {
  RD_CHECK(w.rpki > 0.0);
  RD_CHECK(w.wpki >= 0.0);
  RD_CHECK(w.footprint_lines > 0);
  RD_CHECK(w.archive_lines > 0);
  // Each core owns a disjoint slice of the address space: its writable
  // working set followed by its archive region.
  const std::uint64_t slice = w.footprint_lines + w.archive_lines;
  working_base_ = static_cast<std::uint64_t>(core) * slice;
  archive_base_ = working_base_ + w.footprint_lines;
  ops_per_instruction_ = (w.rpki + w.wpki) / 1000.0;
  write_fraction_ = w.wpki / (w.rpki + w.wpki);
}

MemOp TraceGen::next() {
  MemOp op;
  // Geometric gap with mean 1/ops_per_instruction.
  op.gap_instructions = rng_.geometric(ops_per_instruction_);
  op.is_write = rng_.bernoulli(write_fraction_);
  if (!op.is_write && rng_.bernoulli(workload_.archive_read_fraction)) {
    // Archive reads have the workload's own locality (a hot query set
    // over old data); the archive is never written.
    op.archive = true;
    if (workload_.archive_scan) {
      op.line = archive_base_ + scan_cursor_;
      scan_cursor_ = (scan_cursor_ + 1) % workload_.archive_lines;
    } else {
      op.line = archive_base_ +
                rng_.zipf(workload_.archive_lines, workload_.zipf_s);
    }
  } else {
    op.line = working_base_ +
              rng_.zipf(workload_.footprint_lines, workload_.zipf_s);
  }
  return op;
}

}  // namespace rd::trace
