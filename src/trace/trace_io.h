// Trace recording, replay, and characterization.
//
// The paper drives its simulator from Pin-recorded traces; this module
// gives the library the same workflow: record any TraceGen stream (or an
// external tool's output) to a file, replay it through the simulator, and
// characterize it (the RPKI/WPKI/footprint numbers of Table X).
//
// Format: line-oriented text, one op per line —
//     <gap_instructions> R|W <line> [A]
// with '#' comments. Trailing 'A' marks archive (old-data) accesses.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/generator.h"

namespace rd::trace {

/// Write `n` operations of `gen` to a stream. Returns ops written.
std::size_t record_trace(TraceGen& gen, std::size_t n, std::ostream& out);

/// Parse a trace stream. Throws CheckFailure on malformed input (with
/// the offending line number).
std::vector<MemOp> load_trace(std::istream& in);

/// Outcome of a fault-tolerant trace-file load.
struct TraceFileResult {
  std::vector<MemOp> ops;  ///< complete parsed trace; empty unless ok
  bool ok = false;
  unsigned attempts = 0;   ///< read attempts consumed (>= 1)
  std::string message;     ///< failure report, or recovered-after-retry note
};

/// Load a trace file, absorbing transient short reads: a parse failure
/// (truncated or torn file — including cuts injected by the READDUO_FAULTS
/// trace class) triggers a bounded re-read. After `max_attempts` failures
/// the load is skipped with a stderr report (ok=false, empty ops) instead
/// of aborting the caller. A missing file fails immediately — retrying
/// cannot help.
TraceFileResult load_trace_file(const std::string& path,
                                unsigned max_attempts = 3);

/// A TraceGen-compatible replayer over a recorded op vector; wraps around
/// at the end (the simulator needs an infinite stream).
class TraceReplayer {
 public:
  explicit TraceReplayer(std::vector<MemOp> ops);

  MemOp next();
  std::size_t size() const { return ops_.size(); }
  /// True once the stream has wrapped at least once.
  bool wrapped() const { return wrapped_; }

 private:
  std::vector<MemOp> ops_;
  std::size_t pos_ = 0;
  bool wrapped_ = false;
};

/// Aggregate characterization of a trace (Table X's columns).
struct TraceStats {
  std::size_t ops = 0;
  std::size_t reads = 0;
  std::size_t writes = 0;
  std::size_t archive_reads = 0;
  std::uint64_t instructions = 0;
  std::uint64_t distinct_lines = 0;

  double rpki() const {
    return instructions ? 1000.0 * static_cast<double>(reads) /
                              static_cast<double>(instructions)
                        : 0.0;
  }
  double wpki() const {
    return instructions ? 1000.0 * static_cast<double>(writes) /
                              static_cast<double>(instructions)
                        : 0.0;
  }
  double footprint_mb() const {
    return static_cast<double>(distinct_lines) * 64.0 / 1048576.0;
  }
};

/// Characterize a recorded trace.
TraceStats characterize(const std::vector<MemOp>& ops);

}  // namespace rd::trace
