#include "trace/trace_io.h"

#include <istream>
#include <ostream>
#include <set>
#include <sstream>

#include "common/check.h"

namespace rd::trace {

std::size_t record_trace(TraceGen& gen, std::size_t n, std::ostream& out) {
  out << "# readduo trace v1: <gap_instructions> R|W <line> [A]\n";
  for (std::size_t i = 0; i < n; ++i) {
    const MemOp op = gen.next();
    out << op.gap_instructions << ' ' << (op.is_write ? 'W' : 'R') << ' '
        << op.line;
    if (op.archive) out << " A";
    out << '\n';
  }
  return n;
}

std::vector<MemOp> load_trace(std::istream& in) {
  std::vector<MemOp> ops;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and blank lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::uint64_t gap = 0;
    if (!(ls >> gap)) continue;  // blank after comment strip
    char kind = 0;
    std::uint64_t addr = 0;
    RD_CHECK_MSG(static_cast<bool>(ls >> kind >> addr),
                 "malformed trace line " << lineno << ": '" << line << "'");
    RD_CHECK_MSG(kind == 'R' || kind == 'W',
                 "trace line " << lineno << ": op must be R or W");
    MemOp op;
    op.gap_instructions = gap;
    op.is_write = kind == 'W';
    op.line = addr;
    std::string flag;
    if (ls >> flag) {
      RD_CHECK_MSG(flag == "A",
                   "trace line " << lineno << ": unknown flag '" << flag
                                 << "'");
      RD_CHECK_MSG(!op.is_write,
                   "trace line " << lineno << ": archive lines are never "
                                              "written");
      op.archive = true;
    }
    // The grammar ends here: anything after the optional flag is a
    // malformed line, not ignorable noise.
    std::string extra;
    RD_CHECK_MSG(!(ls >> extra),
                 "trace line " << lineno << ": trailing garbage '" << extra
                               << "'");
    ops.push_back(op);
  }
  return ops;
}

TraceReplayer::TraceReplayer(std::vector<MemOp> ops) : ops_(std::move(ops)) {
  RD_CHECK_MSG(!ops_.empty(), "cannot replay an empty trace");
}

MemOp TraceReplayer::next() {
  const MemOp op = ops_[pos_];
  if (++pos_ == ops_.size()) {
    pos_ = 0;
    wrapped_ = true;
  }
  return op;
}

TraceStats characterize(const std::vector<MemOp>& ops) {
  TraceStats st;
  std::set<std::uint64_t> lines;
  for (const MemOp& op : ops) {
    ++st.ops;
    st.instructions += op.gap_instructions + 1;
    if (op.is_write) {
      ++st.writes;
    } else {
      ++st.reads;
      if (op.archive) ++st.archive_reads;
    }
    lines.insert(op.line);
  }
  st.distinct_lines = lines.size();
  return st;
}

}  // namespace rd::trace
