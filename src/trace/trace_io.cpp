#include "trace/trace_io.h"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>

#include "common/check.h"
#include "faults/injector.h"

namespace rd::trace {

std::size_t record_trace(TraceGen& gen, std::size_t n, std::ostream& out) {
  out << "# readduo trace v1: <gap_instructions> R|W <line> [A]\n";
  for (std::size_t i = 0; i < n; ++i) {
    const MemOp op = gen.next();
    out << op.gap_instructions << ' ' << (op.is_write ? 'W' : 'R') << ' '
        << op.line;
    if (op.archive) out << " A";
    out << '\n';
  }
  return n;
}

std::vector<MemOp> load_trace(std::istream& in) {
  std::vector<MemOp> ops;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and blank lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::uint64_t gap = 0;
    if (!(ls >> gap)) continue;  // blank after comment strip
    char kind = 0;
    std::uint64_t addr = 0;
    RD_CHECK_MSG(static_cast<bool>(ls >> kind >> addr),
                 "malformed trace line " << lineno << ": '" << line << "'");
    RD_CHECK_MSG(kind == 'R' || kind == 'W',
                 "trace line " << lineno << ": op must be R or W");
    MemOp op;
    op.gap_instructions = gap;
    op.is_write = kind == 'W';
    op.line = addr;
    std::string flag;
    if (ls >> flag) {
      RD_CHECK_MSG(flag == "A",
                   "trace line " << lineno << ": unknown flag '" << flag
                                 << "'");
      RD_CHECK_MSG(!op.is_write,
                   "trace line " << lineno << ": archive lines are never "
                                              "written");
      op.archive = true;
    }
    // The grammar ends here: anything after the optional flag is a
    // malformed line, not ignorable noise.
    std::string extra;
    RD_CHECK_MSG(!(ls >> extra),
                 "trace line " << lineno << ": trailing garbage '" << extra
                               << "'");
    ops.push_back(op);
  }
  return ops;
}

TraceFileResult load_trace_file(const std::string& path,
                                unsigned max_attempts) {
  RD_CHECK(max_attempts >= 1);
  TraceFileResult result;
  const faults::FaultEngine* fe = faults::engine();
  for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
    result.attempts = attempt + 1;
    std::ifstream in(path);
    if (!in) {
      result.message = "cannot open trace file '" + path + "'";
      break;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    if (fe != nullptr) fe->trace_short_read(path, attempt, bytes);
    std::istringstream stream(bytes);
    try {
      result.ops = load_trace(stream);
      result.ok = true;
      if (attempt > 0) {
        result.message = "trace '" + path + "' recovered on attempt " +
                         std::to_string(result.attempts);
      }
      return result;
    } catch (const CheckFailure& e) {
      result.message = e.what();
    }
  }
  result.ops.clear();
  std::fprintf(stderr,
               "readduo: warning: skipping trace '%s' after %u read "
               "attempt(s): %s\n",
               path.c_str(), result.attempts, result.message.c_str());
  return result;
}

TraceReplayer::TraceReplayer(std::vector<MemOp> ops) : ops_(std::move(ops)) {
  RD_CHECK_MSG(!ops_.empty(), "cannot replay an empty trace");
}

MemOp TraceReplayer::next() {
  const MemOp op = ops_[pos_];
  if (++pos_ == ops_.size()) {
    pos_ = 0;
    wrapped_ = true;
  }
  return op;
}

TraceStats characterize(const std::vector<MemOp>& ops) {
  TraceStats st;
  std::set<std::uint64_t> lines;
  for (const MemOp& op : ops) {
    ++st.ops;
    st.instructions += op.gap_instructions + 1;
    if (op.is_write) {
      ++st.writes;
    } else {
      ++st.reads;
      if (op.archive) ++st.archive_reads;
    }
    lines.insert(op.line);
  }
  st.distinct_lines = lines.size();
  return st;
}

}  // namespace rd::trace
