// Workload definitions standing in for the paper's Pin-generated SPEC2006
// traces (Table X).
//
// The paper drives its simulator with memory-access traces of 14 SPEC2006
// benchmarks characterized by RPKI/WPKI (reads/writes per kilo-instruction).
// Those traces are not available, so each workload here is a parameterized
// synthetic generator: RPKI/WPKI values follow published PCM-paper
// characterizations, plus locality and data-age parameters that control the
// behaviours the ReadDuo mechanisms react to (see DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rd::trace {

/// Parameters of one synthetic workload.
struct Workload {
  std::string name;
  double rpki;  ///< post-LLC reads per 1000 instructions
  double wpki;  ///< post-LLC writes per 1000 instructions
  /// Working-set size in 64 B lines (footprint the trace touches).
  std::uint64_t footprint_lines;
  /// Zipf exponent of line popularity (0 = uniform scan-like).
  double zipf_s;
  /// Fraction of reads that target the archive region: data written long
  /// before the simulated window (e.g. a database built earlier and then
  /// queried, Section III-C). These reads are the R-M-read population.
  double archive_read_fraction;
  /// Scale (seconds) of the archive age distribution (exponential).
  double archive_age_scale;
  /// Size of the archive region in lines. Smaller than the footprint for
  /// benchmarks that re-read a compact old data set (sphinx3's acoustic
  /// model), which is what makes R-M-read conversion pay off.
  std::uint64_t archive_lines;
  /// Archive access pattern: cyclic sequential scan (sphinx3 streaming
  /// its model tables) instead of Zipf draws.
  bool archive_scan = false;
};

/// The 14 SPEC2006 workloads of Table X. RPKI/WPKI approximate published
/// characterizations; archive parameters encode each benchmark's
/// read-after-long-idle behaviour (sphinx3 is the paper's example of a
/// read-mostly workload over old data).
const std::vector<Workload>& spec2006_workloads();

/// Look up a workload by name. Throws CheckFailure if unknown.
const Workload& workload_by_name(const std::string& name);

}  // namespace rd::trace
