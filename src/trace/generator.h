// Synthetic memory-access trace generator.
//
// Produces a deterministic per-core stream of post-LLC memory operations
// from a Workload: geometric instruction gaps matching RPKI + WPKI, Zipf
// line popularity over the working set, and a separate archive region for
// reads of long-idle data.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.h"
#include "trace/workload.h"

namespace rd::trace {

/// One post-LLC memory operation.
struct MemOp {
  /// Instructions executed by the core since the previous operation.
  std::uint64_t gap_instructions = 0;
  bool is_write = false;
  /// 64 B line id within the workload's address space.
  std::uint64_t line = 0;
  /// True when the line belongs to the archive region (written long
  /// before the simulated window and never written during it).
  bool archive = false;
};

/// Deterministic trace stream for one core.
class TraceGen {
 public:
  /// `core` perturbs the seed and offsets the address space so the four
  /// cores do not collide on the same lines.
  TraceGen(const Workload& w, unsigned core, std::uint64_t seed);

  /// Next operation in the stream (infinite stream).
  MemOp next();

  const Workload& workload() const { return workload_; }

  /// Base line id of this core's archive region (disjoint from the
  /// writable working set).
  std::uint64_t archive_base() const { return archive_base_; }

 private:
  Workload workload_;
  std::uint64_t working_base_;
  std::uint64_t archive_base_;
  double ops_per_instruction_;
  double write_fraction_;
  std::uint64_t scan_cursor_ = 0;
  Rng rng_;
};

}  // namespace rd::trace
