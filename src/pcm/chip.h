// Functional MLC PCM chip model — the Figure 7 architecture end to end.
//
// Where memsim::Simulator models *timing* statistically, MlcChip models
// *function*: it stores real bytes in Monte-Carlo cells, encodes every
// line with the real BCH-8 codec, reads back through the ReadDuo hybrid
// readout (R-sense, BCH decode, M-sense fallback), patches stuck cells
// with ECP, and runs the periodic scrub engine against its own clock.
// Use it to watch actual data survive drift; use memsim for performance.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/kernels.h"
#include "common/rng.h"
#include "drift/metric.h"
#include "ecc/bch.h"
#include "pcm/ecp.h"
#include "pcm/line.h"

namespace rd::faults {
class FaultEngine;
}  // namespace rd::faults

namespace rd::pcm {

/// How the chip senses reads.
enum class ReadoutPolicy {
  kRSense,  ///< current sensing only (fast, drift-fragile)
  kMSense,  ///< voltage sensing only (slow, drift-resilient)
  kHybrid,  ///< ReadDuo: R first, M retry when BCH detects > t errors
};

/// Chip configuration.
struct ChipConfig {
  std::size_t num_lines = 256;
  unsigned data_bytes = 64;       ///< payload per line
  unsigned bch_t = 8;             ///< BCH correction strength
  ReadoutPolicy readout = ReadoutPolicy::kHybrid;
  /// Scrub interval in seconds; 0 disables scrubbing.
  double scrub_interval_s = 640.0;
  /// Rewrite threshold: rewrite a scrubbed line when it shows >= W errors
  /// (0 = always rewrite).
  unsigned scrub_w = 1;
  /// Sense the scrub with the M-metric (ReadDuo) or the R-metric.
  bool scrub_with_m = true;
  unsigned ecp_pointers = 6;
  std::uint64_t seed = 1;
  /// Fault injector; nullptr defers to the process-wide faults::engine().
  const faults::FaultEngine* faults = nullptr;
  /// Kernel implementation for the chip's BCH codec and line sensing
  /// (kAuto: READDUO_KERNELS). Reads are bit-identical across modes.
  KernelMode kernels = KernelMode::kAuto;
};

/// Outcome of a functional read.
struct ChipReadResult {
  std::vector<std::uint8_t> data;  ///< recovered payload (data_bytes)
  bool used_m_sense = false;       ///< hybrid fell back to voltage sensing
  bool corrected = false;          ///< BCH produced a valid codeword
  unsigned errors_corrected = 0;   ///< bit flips the decoder fixed
};

/// Chip lifetime statistics.
struct ChipStats {
  std::uint64_t reads = 0;
  std::uint64_t m_fallbacks = 0;
  std::uint64_t writes = 0;
  std::uint64_t scrub_passes = 0;
  std::uint64_t scrub_rewrites = 0;
  std::uint64_t cells_retired = 0;  ///< stuck cells patched by ECP
  std::uint64_t uncorrectable = 0;
  std::uint64_t injected_faults = 0;  ///< READDUO_FAULTS events absorbed
};

/// A functional MLC PCM chip with ReadDuo readout.
class MlcChip {
 public:
  explicit MlcChip(ChipConfig cfg);

  const ChipConfig& config() const { return cfg_; }
  const ChipStats& stats() const { return stats_; }
  double now() const { return now_s_; }

  /// Advance the chip clock; scrub sweeps due in the interval run in
  /// order. Requires seconds >= 0.
  void advance_time(double seconds);

  /// Write a payload of exactly data_bytes to `line` at the current time.
  /// Verify-after-write retires any stuck cells into the line's ECP.
  void write(std::size_t line, const std::vector<std::uint8_t>& data);

  /// Read `line` at the current time through the configured readout.
  ChipReadResult read(std::size_t line);

  /// Fault injection: pin a cell of a line at a level (endurance wear).
  void inject_stuck_cell(std::size_t line, unsigned cell, unsigned level);

  /// Seconds since the line was last (re)written. Requires it was written.
  double line_age(std::size_t line) const;

 private:
  struct LineSlot {
    MlcLine cells;
    EcpLine ecp;
    double last_write_s = 0.0;
    bool written = false;

    LineSlot(std::size_t bits, unsigned cells_n, unsigned ecp_n)
        : cells(bits), ecp(cells_n, ecp_n) {}
  };

  BitVec encode(const std::vector<std::uint8_t>& data) const;
  std::vector<std::uint8_t> extract(const BitVec& codeword) const;
  /// Sense + ECP patch under `cfg` at the current time. `r_path` marks a
  /// current-sense (R) readout: injected sensing transients model noise in
  /// that fast path only — voltage (M) sensing is the robust reference and
  /// stays clean, mirroring the scheme layer's sample_r_errors seam.
  /// `line` keys the transients; non-const because each sense advances the
  /// fault serial (the chip is strictly serial, so this stays
  /// deterministic).
  BitVec sense(const LineSlot& slot, const drift::MetricConfig& cfg,
               std::size_t line, bool r_path);
  /// Program the codeword; verify and retire stuck cells.
  void program(LineSlot& slot, const BitVec& codeword);
  void run_scrub_pass();

  ChipConfig cfg_;
  /// cfg_.kernels with kAuto resolved at construction.
  KernelMode mode_;
  drift::MetricConfig r_cfg_;
  drift::MetricConfig m_cfg_;
  ecc::BchCode bch_;
  Rng rng_;
  /// cfg_.faults, or the process engine; resolved once at construction.
  const faults::FaultEngine* faults_;
  double now_s_ = 0.0;
  double next_scrub_s_ = 0.0;
  /// Serials keying per-sense / per-R-read fault decisions.
  std::uint64_t sense_serial_ = 0;
  std::uint64_t r_read_serial_ = 0;
  std::vector<LineSlot> lines_;
  ChipStats stats_;
};

}  // namespace rd::pcm
