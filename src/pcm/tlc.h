// Tri-Level-Cell (TLC) baseline [26].
//
// TLC removes the most drift-prone middle state of the 4-level MLC,
// keeping full-SET, one intermediate, and full-RESET. Three levels per
// cell encode 3 bits in 2 cells (9 >= 8 combinations); with a (72,64)
// SECDED per 64-bit word, a 64 B line costs 576 bits -> 384 cells.
// The surviving intermediate state has a full decade of drift margin, so
// TLC reads never see drift errors at DRAM-comparable rates — the paper
// treats TLC as drift-free but paying a storage-density penalty.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "common/check.h"

namespace rd::pcm {

/// Density constants of the TLC baseline for a 64 B line.
struct TlcGeometry {
  unsigned data_bits = 512;
  unsigned secded_words = 8;      ///< (72,64) per 64-bit word
  unsigned coded_bits() const { return data_bits + 8 * secded_words; }
  /// Two tri-level cells hold 3 bits.
  unsigned cells_per_line() const { return (coded_bits() + 2) / 3 * 2; }
};

/// Pack 3 bits into a pair of tri-level digits (and back). Pure encoding
/// helpers for the TLC line model.
struct TlcPair {
  std::uint8_t hi;  ///< tri-level digit in [0, 3)
  std::uint8_t lo;
};

/// Encode a 3-bit value v (0..7) into two tri-level digits.
inline TlcPair tlc_encode(std::uint8_t v) {
  RD_CHECK(v < 8);
  return TlcPair{static_cast<std::uint8_t>(v / 3),
                 static_cast<std::uint8_t>(v % 3)};
}

/// Decode two tri-level digits back into the 3-bit value. The unused 9th
/// combination (2,2) decodes to 7 by saturation.
inline std::uint8_t tlc_decode(TlcPair p) {
  RD_CHECK(p.hi < 3 && p.lo < 3);
  const unsigned v = p.hi * 3u + p.lo;
  return static_cast<std::uint8_t>(v > 7 ? 7 : v);
}

/// A TLC-coded line: stores bits as tri-level digit pairs. Drift-free by
/// construction (see header comment); exists so the examples and density
/// math exercise a real codec rather than a constant.
class TlcLine {
 public:
  explicit TlcLine(std::size_t nbits);

  std::size_t num_bits() const { return nbits_; }
  std::size_t num_cells() const { return digits_.size(); }

  void write(const BitVec& bits);
  BitVec read() const;

 private:
  std::size_t nbits_;
  std::vector<std::uint8_t> digits_;
};

}  // namespace rd::pcm
