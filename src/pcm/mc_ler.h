// Empirical (Monte-Carlo) line-error-rate estimation.
//
// The analytic LerCalculator reaches probabilities (1e-12 and below) no
// simulation can sample; this harness validates it in the measurable
// regime: simulate whole populations of 296-cell lines through the device
// model and count how many exceed E errors at age S. Used by tests to
// cross-check Tables III/IV at relaxed (E, S) points, and available to
// users who extend the drift model and want to re-validate.
#pragma once

#include <cstdint>

#include "common/kernels.h"
#include "drift/error_model.h"
#include "pcm/cell.h"

namespace rd::pcm {

/// Result of an empirical LER measurement.
struct McLerResult {
  std::uint64_t lines = 0;
  std::uint64_t failures = 0;  ///< lines with more than E errors

  double ler() const {
    return lines ? static_cast<double>(failures) /
                       static_cast<double>(lines)
                 : 0.0;
  }
  /// One-sigma sampling error of ler().
  double stderr_() const;
};

/// Simulate `lines` fresh lines of `geometry` cells under `config`,
/// age them to t_seconds, and count lines with more than `e` drift
/// errors. The population is sharded over the READDUO_THREADS pool in
/// fixed-size blocks with per-shard Rng(seed, shard) streams and an
/// ordered reduction, so the result is a pure function of the arguments:
/// bit-identical for every thread count (enforced by test_parallel) and
/// for every kernel mode (`mode` kAuto: READDUO_KERNELS; the optimized
/// kernel hoists the shared log10(t / t0) out of the cell loop —
/// enforced by test_kernels).
McLerResult mc_ler(const drift::MetricConfig& config,
                   const drift::LineGeometry& geometry,
                   unsigned e, double t_seconds, std::uint64_t lines,
                   std::uint64_t seed, KernelMode mode = KernelMode::kAuto);

}  // namespace rd::pcm
