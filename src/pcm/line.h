// MLC PCM memory-line model: 296 two-bit cells holding a 592-bit BCH
// codeword (512 data + 80 parity), with full and differential writes and
// metric-based readout. This is the device-level ground truth the
// Monte-Carlo reliability experiments run on.
//
// Performance note (DESIGN.md §10): whole-line readout is a hot kernel
// (every chip read, scrub pass, and Figure 6 sweep senses all 296 cells at
// one instant). The batched read_levels path computes log10(age / t0)
// once per distinct write time instead of once per cell — after a full
// write that is one log10 for the whole line; after differential writes,
// one per run of same-age cells. Selectable vs the straight per-cell
// reference via KernelMode; outputs are bit-identical (the batch calls the
// same Cell arithmetic with the hoisted operand).
//
// The vectorized tier (DESIGN.md §10.5) adds a lazily built
// structure-of-arrays mirror of the cells — parallel arrays of programmed
// level, percentiles, write time and stuck state — so the whole-line
// drift-metric evaluation runs as SIMD lanes (drift_levels_avx2/sse42)
// with a stuck-cell fixup afterwards. The cache is invalidated by every
// mutator (writes, refresh, cell_at) and rebuilt on the next vectorized
// read; it makes the const read paths internally caching, which is safe
// here because a line is only ever read from the thread that owns it
// (shards own disjoint chips/lines — see common/parallel.h users).
// Level decisions are bit-identical to the scalar tiers: the lanes run
// the same unfused expression tree (kernels.h FP contract).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "common/kernels.h"
#include "common/rng.h"
#include "pcm/cell.h"

namespace rd::pcm {

/// Map a 2-bit Gray value to its storage level (inverse of kLevelData).
std::size_t data_to_level(std::uint8_t two_bits);

/// An array of MLC cells holding one memory line (codeword).
///
/// Bit i of the codeword lives in cell i/2; even bits are the high bit of
/// the cell's Gray pair. The line remembers which metric configuration it
/// was programmed against for R readout; M readout maps the same cells
/// through the M-metric config (see Cell).
class MlcLine {
 public:
  /// A line holding `nbits` bits (must be even).
  explicit MlcLine(std::size_t nbits);

  std::size_t num_bits() const { return 2 * cells_.size(); }
  std::size_t num_cells() const { return cells_.size(); }
  const std::vector<Cell>& cells() const { return cells_; }
  /// Mutable access for fault injection (stuck-at cells).
  Cell& cell_at(std::size_t i);

  /// Program every cell with the given codeword at time t (seconds).
  void write_full(const BitVec& bits, double t_seconds, Rng& rng,
                  const drift::MetricConfig& cfg);

  /// Program only the cells whose stored level differs from the target.
  /// Untouched cells keep their old write time and keep drifting — the
  /// hazard of naive differential write shown in Figure 6. Returns the
  /// number of cells programmed.
  std::size_t write_differential(const BitVec& bits, double t_seconds,
                                 Rng& rng, const drift::MetricConfig& cfg);

  /// Reprogram (to their stored level) exactly the cells that currently
  /// misread at time t — the naive differential scrub of Figure 6, which
  /// fixes today's drift errors but leaves the near-boundary survivor
  /// population in place. Returns the number of cells reprogrammed.
  std::size_t refresh_drifted(double t_seconds, Rng& rng,
                              const drift::MetricConfig& cfg);

  /// Sense all cells at time t under `cfg` and return the bit image.
  /// `mode` selects the batched or per-cell kernel (kAuto:
  /// READDUO_KERNELS); the image is bit-identical either way.
  BitVec read(double t_seconds, const drift::MetricConfig& cfg,
              KernelMode mode = KernelMode::kAuto) const;

  /// Sense all cells at time t under `cfg` into `out_levels` (size
  /// num_cells). `offsets`, when non-null, applies per-cell additive
  /// metric disturbances (the READDUO_FAULTS "sense" seam; stuck cells
  /// ignore theirs). This is the batched kernel behind read() and the
  /// chip's sense path: one log10 per distinct cell age, not per cell.
  /// `mode` kVectorized additionally routes the metric evaluation through
  /// the SIMD lane kernels when the host supports them (identical levels);
  /// kReference and kOptimized both run the scalar batched loop here —
  /// the per-cell reference split lives in read()/count_drift_errors().
  void read_levels(double t_seconds, const drift::MetricConfig& cfg,
                   const double* offsets, std::uint8_t* out_levels,
                   KernelMode mode = KernelMode::kAuto) const;

  /// Number of cells that would be misread at time t under `cfg`.
  /// Dispatches like read().
  std::size_t count_drift_errors(double t_seconds,
                                 const drift::MetricConfig& cfg,
                                 KernelMode mode = KernelMode::kAuto) const;

  /// The codeword most recently programmed (for test oracles).
  const BitVec& programmed_bits() const { return programmed_; }

 private:
  std::size_t target_level(const BitVec& bits, std::size_t cell) const;

  /// Rebuild the SoA mirror from cells_ if a mutator invalidated it.
  void ensure_soa() const;
  /// The SIMD lane read path; falls back to the scalar batched loop when
  /// the host is scalar-only or the boundaries are not monotone.
  void read_levels_vectorized(double t_seconds,
                              const drift::MetricConfig& cfg,
                              const double* offsets,
                              std::uint8_t* out_levels) const;
  void read_levels_batched(double t_seconds, const drift::MetricConfig& cfg,
                           const double* offsets,
                           std::uint8_t* out_levels) const;

  std::vector<Cell> cells_;
  BitVec programmed_;

  /// Structure-of-arrays mirror of cells_ for the vectorized read path,
  /// plus per-call scratch. Lazily built under const reads (hence
  /// mutable); invalidated by every mutator. num_stuck lets the common
  /// no-stuck case skip the fixup scan entirely.
  struct SoaCache {
    bool valid = false;
    std::vector<std::int32_t> level;
    std::vector<double> z_program;
    std::vector<double> z_alpha;
    std::vector<double> t_write;
    std::vector<std::uint8_t> stuck;
    std::vector<std::uint8_t> stuck_level;
    std::size_t num_stuck = 0;
    std::vector<double> log_t;            ///< scratch: per-cell log10(age/t0)
    std::vector<std::uint8_t> levels_tmp; ///< scratch: read()/count buffers
  };
  mutable SoaCache soa_;
};

}  // namespace rd::pcm
