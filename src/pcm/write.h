// Iterative program-and-verify (P&V) write model.
//
// MLC PCM writes RESET the cell to full amorphous and then apply SET pulses
// until the verify read lands inside the target sub-range (Section II-A).
// The architecture simulator uses the fixed 1000 ns average latency from
// the paper; this model supplies per-cell iteration counts for the energy
// refinement and the device-level benches.
#pragma once

#include <cstddef>

#include "common/rng.h"

namespace rd::pcm {

/// P&V behaviour per target level.
struct PnvParams {
  /// Mean number of SET iterations per level (after the initial RESET).
  /// Extreme levels land in one pulse; middle levels need several because
  /// their target range is narrow.
  double mean_iterations[4] = {1.0, 4.0, 3.0, 0.0};
  /// Hard cap enforced by the write circuit.
  unsigned max_iterations = 8;
};

/// Number of programming pulses (1 RESET + SET iterations) used to write a
/// cell to `level`. Geometric spread around the per-level mean, capped.
unsigned write_pulses(std::size_t level, const PnvParams& p, Rng& rng);

/// Average pulses over the four levels under uniform data, for closed-form
/// energy estimates.
double average_write_pulses(const PnvParams& p);

}  // namespace rd::pcm
