// Device and system parameters (Tables VIII and IX of the paper).
//
// Timing constants come straight from the paper (Section IV): 150 ns
// R-read, 450 ns M-read, 600 ns R-M-read, 1000 ns iterative MLC write.
// The paper's Table IX energy values are garbled in the available text;
// the numbers here are literature-typical MLC PCM energies chosen so the
// paper's *relative* energy results hold (see DESIGN.md, substitutions).
#pragma once

#include <cstdint>

#include "common/units.h"

namespace rd::pcm {

/// Read/write timing (Table VIII / Section IV).
struct TimingParams {
  Ns r_read{150};       ///< current-mode (R-metric) line read
  Ns m_read{450};       ///< voltage-mode (M-metric) line read
  Ns rm_read{600};      ///< failed R-read followed by M-read
  Ns write{1000};       ///< iterative P&V MLC line write
  Ns bus_transfer{5};   ///< 64B line on the channel
};

/// Dynamic energy (substitute for Table IX), per line operation.
struct EnergyParams {
  Pj r_read{1000.0};     ///< 64B R-sensing read (~2 pJ/bit)
  Pj m_read{1500.0};     ///< 64B M-sensing read (longer integration)
  Pj cell_write{135.0};  ///< average P&V energy per MLC cell written
  /// Scrub senses are internal row reads (no decode/IO/bus): this fraction
  /// of a demand read's energy per line sensed.
  double internal_sense_scale = 0.5;
  /// Tri-level cells program with fewer, coarser P&V iterations (their
  /// target ranges are a full decade wide): per-cell write energy scale
  /// of the TLC baseline relative to 4-level MLC.
  double tlc_write_scale = 0.8;
  /// Static/background power of the memory subsystem in watts, used only
  /// for the "Product-S" (system energy) EDAP variant.
  double static_watts = 0.35;
};

/// Memory organization (Table VIII baseline; follows [26]): one rank of
/// eight 2 GB banks (Section III-E's "each 2GB memory bank").
struct MemoryOrg {
  std::uint64_t capacity_bytes = 16ull << 30;  ///< 8 banks x 2 GB
  unsigned num_banks = 8;
  unsigned line_bytes = 64;
  unsigned cells_per_line = 296;  ///< 256 data + 40 BCH-8 parity cells
  /// Lines sensed per scrub operation: the scrub engine works at row
  /// granularity (one activation senses a whole row) [2].
  unsigned lines_per_scrub = 16;

  std::uint64_t total_lines() const { return capacity_bytes / line_bytes; }
  std::uint64_t lines_per_bank() const { return total_lines() / num_banks; }
};

/// CPU front-end configuration (Table VIII: 4-core in-order).
struct CpuParams {
  unsigned num_cores = 4;
  double clock_ghz = 2.0;  ///< 1 IPC when not stalled on memory
  /// Fraction of post-LLC reads the in-order core actually blocks on;
  /// the rest are overlapped by hit-under-miss / prefetching before the
  /// dependent use. Calibrated so the M-metric scheme lands near the
  /// paper's +25% average slowdown (Section V-A).
  double read_stall_fraction = 0.30;

  /// Time to execute n instructions with no memory stall, rounded to ns.
  Ns compute_time(std::uint64_t n_instructions) const {
    return Ns{static_cast<std::int64_t>(
        static_cast<double>(n_instructions) / clock_ghz + 0.5)};
  }
};

}  // namespace rd::pcm
