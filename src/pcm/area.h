// NVSim-style subarray area model (Section III-E, Table VII).
//
// ReadDuo adds a voltage-mode sense path next to the traditional
// current-mode one. The current-mode path needs an I-V converter per sense
// amplifier and is therefore much larger; the added voltage-mode amplifier
// costs ~0.27% of subarray area overall — the number NVSim gave the
// authors and which this model reproduces from feature-size constants.
#pragma once

#include <cstddef>

namespace rd::pcm {

/// Area constants in units of F^2 (F = feature size); only ratios matter.
struct AreaParams {
  double cell_f2 = 9.6;            ///< MLC PCM cell with access device
  double current_sa_f2 = 3000.0;   ///< current-mode SA incl. I-V converter
  double voltage_sa_f2 = 800.0;    ///< voltage-mode SA (no converter)
  double row_decoder_f2 = 120.0;   ///< per row
  double column_mux_f2 = 60.0;     ///< per column
  double precharge_f2 = 40.0;      ///< per column

  /// Subarray geometry: the paper's 2 GB bank has 32 mats of 16 subarrays;
  /// one subarray is 4096 x 4096 cells with an 8:1 column mux.
  std::size_t rows = 4096;
  std::size_t cols = 4096;
  std::size_t column_mux_ratio = 8;

  std::size_t num_sense_amps() const { return cols / column_mux_ratio; }
};

/// Area breakdown of one subarray, in F^2.
struct SubarrayArea {
  double data_array = 0.0;
  double row_decoder = 0.0;
  double column_periphery = 0.0;  ///< mux + precharge
  double current_sense = 0.0;
  double voltage_sense = 0.0;     ///< zero for a conventional subarray

  double control_logic() const {
    return row_decoder + column_periphery + current_sense + voltage_sense;
  }
  double total() const { return data_array + control_logic(); }
};

/// Compute the subarray breakdown; with_readduo adds the voltage-mode
/// sense path (hybrid S/A of Figure 8).
SubarrayArea subarray_area(const AreaParams& p, bool with_readduo);

/// Fractional area increase of the ReadDuo subarray over the conventional
/// one (the paper reports 0.27%).
double readduo_area_increase(const AreaParams& p = {});

}  // namespace rd::pcm
