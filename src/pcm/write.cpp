#include "pcm/write.h"

#include <algorithm>

#include "common/check.h"

namespace rd::pcm {

unsigned write_pulses(std::size_t level, const PnvParams& p, Rng& rng) {
  RD_CHECK(level < 4);
  const double mean = p.mean_iterations[level];
  unsigned set_pulses = 0;
  if (mean > 0.0) {
    if (mean <= 1.0) {
      set_pulses = 1;
    } else {
      // Geometric number of retries around the mean: 1 + G(1/mean).
      set_pulses = 1 + static_cast<unsigned>(std::min<std::uint64_t>(
                           rng.geometric(1.0 / mean), p.max_iterations - 1));
    }
  }
  const unsigned total = 1 + set_pulses;  // RESET + SETs
  return std::min(total, p.max_iterations);
}

double average_write_pulses(const PnvParams& p) {
  double sum = 0.0;
  for (double m : p.mean_iterations) sum += 1.0 + m;  // RESET + mean SETs
  return sum / 4.0;
}

}  // namespace rd::pcm
