#include "pcm/tlc.h"

namespace rd::pcm {

TlcLine::TlcLine(std::size_t nbits) : nbits_(nbits) {
  const std::size_t groups = (nbits + 2) / 3;
  digits_.assign(groups * 2, 0);
}

void TlcLine::write(const BitVec& bits) {
  RD_CHECK(bits.size() == nbits_);
  const std::size_t groups = digits_.size() / 2;
  for (std::size_t g = 0; g < groups; ++g) {
    std::uint8_t v = 0;
    for (std::size_t b = 0; b < 3; ++b) {
      const std::size_t i = g * 3 + b;
      if (i < nbits_ && bits.get(i)) v |= static_cast<std::uint8_t>(1u << b);
    }
    const TlcPair p = tlc_encode(v);
    digits_[2 * g] = p.hi;
    digits_[2 * g + 1] = p.lo;
  }
}

BitVec TlcLine::read() const {
  BitVec out(nbits_);
  const std::size_t groups = digits_.size() / 2;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::uint8_t v =
        tlc_decode(TlcPair{digits_[2 * g], digits_[2 * g + 1]});
    for (std::size_t b = 0; b < 3; ++b) {
      const std::size_t i = g * 3 + b;
      if (i < nbits_) out.set(i, (v >> b) & 1);
    }
  }
  return out;
}

}  // namespace rd::pcm
