#include "pcm/mc_ler.h"

#include <cmath>
#include <vector>

#include "common/kernels.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd_kernels.h"


namespace rd::pcm {

namespace {

// Lines per shard. Fixed (never derived from the thread count) so the
// shard decomposition — and with it every Rng(seed, shard) stream — is
// identical no matter how many threads execute it.
constexpr std::uint64_t kShardLines = 8192;

}  // namespace

double McLerResult::stderr_() const {
  if (lines == 0) return 0.0;
  const double p = ler();
  return std::sqrt(p * (1.0 - p) / static_cast<double>(lines));
}

McLerResult mc_ler(const drift::MetricConfig& config,
                   const drift::LineGeometry& geometry,
                   unsigned e, double t_seconds, std::uint64_t lines,
                   std::uint64_t seed, KernelMode mode) {
  McLerResult result;
  result.lines = lines;
  if (lines == 0) return result;
  const unsigned cells = geometry.total_cells();
  const std::uint64_t shards = (lines + kShardLines - 1) / kShardLines;
  std::vector<std::uint64_t> shard_failures(shards, 0);
  // Every sampled cell is written at t = 0 and read at the same
  // t_seconds, so the drift law's log10(t / t0) is one value for the
  // whole population: the optimized kernel hoists it out of the
  // cells-per-line loop (the RNG draw sequence is untouched, so the
  // count is bit-identical to the per-cell reference path — enforced by
  // tests/test_kernels.cpp and the THREADS sweep).
  const KernelMode m = resolve_kernel_mode(mode);
  const bool optimized = m != KernelMode::kReference;
  const bool drifted = t_seconds > config.t0_seconds;
  const double log_t_ratio =
      drifted ? std::log10(t_seconds / config.t0_seconds) : 0.0;
  // The vectorized tier evaluates a whole line's drift metrics as SIMD
  // lanes. The subtlety is the reference loop's early exit: it stops
  // *drawing* cells once errors exceed e, so the RNG stream position —
  // and every subsequent line's sample — depends on where the (e+1)-th
  // error landed. The lane path draws the whole line up front, and on a
  // failing line restores an RNG snapshot and replays exactly the draws
  // the reference path would have made (cells 0..k, k the (e+1)-th error
  // cell). Failing lines are the rare case by construction (LER is the
  // quantity being estimated), so the replay cost is negligible and the
  // failure count plus the RNG stream stay bit-identical across tiers.
  const double b0 = config.upper_boundary(0);
  const double b1 = config.upper_boundary(1);
  const double b2 = config.upper_boundary(2);
  const bool vectorized = m == KernelMode::kVectorized &&
                          simd_level() != SimdLevel::kScalar &&
                          b0 <= b1 && b1 <= b2;
  double params[19];
  if (vectorized) {
    for (std::size_t i = 0; i < drift::kNumStates; ++i) {
      params[i] = config.states[i].mu;
      params[4 + i] = config.states[i].sigma;
      params[8 + i] = config.states[i].mu_alpha;
      params[12 + i] = config.states[i].sigma_alpha;
    }
    params[16] = b0;
    params[17] = b1;
    params[18] = b2;
  }
  parallel_for_shards(shards, [&](std::size_t shard) {
    Rng rng(seed, shard);
    const std::uint64_t begin = static_cast<std::uint64_t>(shard) * kShardLines;
    const std::uint64_t end = std::min(lines, begin + kShardLines);
    std::uint64_t failures = 0;
    if (vectorized) {
      std::vector<std::int32_t> lvl(cells);
      std::vector<double> zp(cells), za(cells);
      std::vector<double> logt(cells, log_t_ratio);
      std::vector<std::uint8_t> out(cells);
      for (std::uint64_t l = begin; l < end; ++l) {
        const Rng snapshot = rng;  // trivially copyable xoshiro state
        for (unsigned c = 0; c < cells; ++c) {
          // Same draws in the same order as the scalar loop below (the
          // Cell carries the draw logic so it cannot diverge from it).
          Cell cell;
          cell.program(rng.uniform_below(drift::kNumStates), 0.0, rng,
                       config);
          lvl[c] = static_cast<std::int32_t>(cell.programmed_level());
          zp[c] = cell.z_program();
          za[c] = cell.z_alpha();
        }
        if (simd_level() == SimdLevel::kAvx2) {
          simd::drift_levels_avx2(cells, lvl.data(), zp.data(), za.data(),
                                  logt.data(), nullptr, params, out.data());
        } else {
          simd::drift_levels_sse42(cells, lvl.data(), zp.data(), za.data(),
                                   logt.data(), nullptr, params, out.data());
        }
        unsigned errors = 0;
        unsigned stop = cells;
        for (unsigned c = 0; c < cells; ++c) {
          if (out[c] != lvl[c] && ++errors > e) {
            stop = c;
            break;
          }
        }
        if (errors > e) {
          ++failures;
          // Leave the stream where the early-exiting loop would have.
          rng = snapshot;
          for (unsigned c = 0; c <= stop; ++c) {
            Cell cell;
            cell.program(rng.uniform_below(drift::kNumStates), 0.0, rng,
                         config);
          }
        }
      }
      shard_failures[shard] = failures;
      return;
    }
    for (std::uint64_t l = begin; l < end; ++l) {
      unsigned errors = 0;
      for (unsigned c = 0; c < cells && errors <= e; ++c) {
        Cell cell;
        cell.program(rng.uniform_below(drift::kNumStates), 0.0, rng, config);
        const bool err =
            optimized
                ? cell.read_level_logt(drifted, log_t_ratio, config, 0.0) !=
                      cell.programmed_level()
                : cell.drift_error(t_seconds, config);
        errors += err ? 1 : 0;
      }
      if (errors > e) ++failures;
    }
    shard_failures[shard] = failures;
  });
  // Ordered reduction (uint64 addition is associative anyway, but keeping
  // the shard order makes the contract obvious and extension-proof).
  for (std::uint64_t f : shard_failures) result.failures += f;
  return result;
}

}  // namespace rd::pcm
