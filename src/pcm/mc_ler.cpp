#include "pcm/mc_ler.h"

#include <cmath>

#include "common/rng.h"


namespace rd::pcm {

double McLerResult::stderr_() const {
  if (lines == 0) return 0.0;
  const double p = ler();
  return std::sqrt(p * (1.0 - p) / static_cast<double>(lines));
}

McLerResult mc_ler(const drift::MetricConfig& config,
                   const drift::LineGeometry& geometry,
                   unsigned e, double t_seconds, std::uint64_t lines,
                   std::uint64_t seed) {
  Rng rng(seed);
  McLerResult result;
  result.lines = lines;
  const unsigned cells = geometry.total_cells();
  for (std::uint64_t l = 0; l < lines; ++l) {
    unsigned errors = 0;
    for (unsigned c = 0; c < cells && errors <= e; ++c) {
      Cell cell;
      cell.program(rng.uniform_below(drift::kNumStates), 0.0, rng, config);
      errors += cell.drift_error(t_seconds, config) ? 1 : 0;
    }
    if (errors > e) ++result.failures;
  }
  return result;
}

}  // namespace rd::pcm
