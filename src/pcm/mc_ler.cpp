#include "pcm/mc_ler.h"

#include <cmath>
#include <vector>

#include "common/kernels.h"
#include "common/parallel.h"
#include "common/rng.h"


namespace rd::pcm {

namespace {

// Lines per shard. Fixed (never derived from the thread count) so the
// shard decomposition — and with it every Rng(seed, shard) stream — is
// identical no matter how many threads execute it.
constexpr std::uint64_t kShardLines = 8192;

}  // namespace

double McLerResult::stderr_() const {
  if (lines == 0) return 0.0;
  const double p = ler();
  return std::sqrt(p * (1.0 - p) / static_cast<double>(lines));
}

McLerResult mc_ler(const drift::MetricConfig& config,
                   const drift::LineGeometry& geometry,
                   unsigned e, double t_seconds, std::uint64_t lines,
                   std::uint64_t seed, KernelMode mode) {
  McLerResult result;
  result.lines = lines;
  if (lines == 0) return result;
  const unsigned cells = geometry.total_cells();
  const std::uint64_t shards = (lines + kShardLines - 1) / kShardLines;
  std::vector<std::uint64_t> shard_failures(shards, 0);
  // Every sampled cell is written at t = 0 and read at the same
  // t_seconds, so the drift law's log10(t / t0) is one value for the
  // whole population: the optimized kernel hoists it out of the
  // cells-per-line loop (the RNG draw sequence is untouched, so the
  // count is bit-identical to the per-cell reference path — enforced by
  // tests/test_kernels.cpp and the THREADS sweep).
  const bool optimized = resolve_kernel_mode(mode) != KernelMode::kReference;
  const bool drifted = t_seconds > config.t0_seconds;
  const double log_t_ratio =
      drifted ? std::log10(t_seconds / config.t0_seconds) : 0.0;
  parallel_for_shards(shards, [&](std::size_t shard) {
    Rng rng(seed, shard);
    const std::uint64_t begin = static_cast<std::uint64_t>(shard) * kShardLines;
    const std::uint64_t end = std::min(lines, begin + kShardLines);
    std::uint64_t failures = 0;
    for (std::uint64_t l = begin; l < end; ++l) {
      unsigned errors = 0;
      for (unsigned c = 0; c < cells && errors <= e; ++c) {
        Cell cell;
        cell.program(rng.uniform_below(drift::kNumStates), 0.0, rng, config);
        const bool err =
            optimized
                ? cell.read_level_logt(drifted, log_t_ratio, config, 0.0) !=
                      cell.programmed_level()
                : cell.drift_error(t_seconds, config);
        errors += err ? 1 : 0;
      }
      if (errors > e) ++failures;
    }
    shard_failures[shard] = failures;
  });
  // Ordered reduction (uint64 addition is associative anyway, but keeping
  // the shard order makes the contract obvious and extension-proof).
  for (std::uint64_t f : shard_failures) result.failures += f;
  return result;
}

}  // namespace rd::pcm
