#include "pcm/line.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/simd_kernels.h"

namespace rd::pcm {

std::size_t data_to_level(std::uint8_t two_bits) {
  for (std::size_t level = 0; level < drift::kNumStates; ++level) {
    if (drift::kLevelData[level] == (two_bits & 0b11)) return level;
  }
  RD_CHECK_MSG(false, "unreachable: all 2-bit values are mapped");
  return 0;
}

MlcLine::MlcLine(std::size_t nbits) : programmed_(nbits) {
  RD_CHECK_MSG(nbits % 2 == 0, "MLC line needs an even bit count");
  cells_.resize(nbits / 2);
}

Cell& MlcLine::cell_at(std::size_t i) {
  RD_CHECK(i < cells_.size());
  // Mutable handle: the caller may set_stuck / reprogram through it, so
  // the SoA mirror can no longer be trusted.
  soa_.valid = false;
  return cells_[i];
}

std::size_t MlcLine::target_level(const BitVec& bits, std::size_t cell) const {
  const std::uint8_t hi = bits.get(2 * cell) ? 1 : 0;
  const std::uint8_t lo = bits.get(2 * cell + 1) ? 1 : 0;
  return data_to_level(static_cast<std::uint8_t>((hi << 1) | lo));
}

void MlcLine::write_full(const BitVec& bits, double t_seconds, Rng& rng,
                         const drift::MetricConfig& cfg) {
  RD_CHECK(bits.size() == num_bits());
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    cells_[c].program(target_level(bits, c), t_seconds, rng, cfg);
  }
  programmed_ = bits;
  soa_.valid = false;
}

std::size_t MlcLine::write_differential(const BitVec& bits, double t_seconds,
                                        Rng& rng,
                                        const drift::MetricConfig& cfg) {
  RD_CHECK(bits.size() == num_bits());
  std::size_t written = 0;
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    const std::size_t want = target_level(bits, c);
    if (cells_[c].programmed_level() != want) {
      cells_[c].program(want, t_seconds, rng, cfg);
      ++written;
    }
  }
  programmed_ = bits;
  soa_.valid = false;
  return written;
}

std::size_t MlcLine::refresh_drifted(double t_seconds, Rng& rng,
                                     const drift::MetricConfig& cfg) {
  std::size_t refreshed = 0;
  for (Cell& c : cells_) {
    if (c.drift_error(t_seconds, cfg)) {
      c.program(c.programmed_level(), t_seconds, rng, cfg);
      ++refreshed;
    }
  }
  if (refreshed != 0) soa_.valid = false;
  return refreshed;
}

void MlcLine::read_levels_batched(double t_seconds,
                                  const drift::MetricConfig& cfg,
                                  const double* offsets,
                                  std::uint8_t* out_levels) const {
  // Hoist the drift law's log10: cells programmed at the same instant (a
  // full write, or each run of a differential write) share one
  // log10(age / t0). The cached value is exactly what the scalar path
  // would compute, so levels are bit-identical to per-cell read_level.
  bool have_cached = false;
  double cached_tw = 0.0;
  bool cached_drifted = false;
  double cached_logt = 0.0;
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    const Cell& cell = cells_[c];
    const double tw = cell.write_time();
    if (!have_cached || tw != cached_tw) {
      const double age = t_seconds - tw;
      cached_drifted = age > cfg.t0_seconds;
      cached_logt =
          cached_drifted ? std::log10(age / cfg.t0_seconds) : 0.0;
      cached_tw = tw;
      have_cached = true;
    }
    out_levels[c] = static_cast<std::uint8_t>(cell.read_level_logt(
        cached_drifted, cached_logt, cfg, offsets != nullptr ? offsets[c] : 0.0));
  }
}

void MlcLine::ensure_soa() const {
  if (soa_.valid) return;
  const std::size_t n = cells_.size();
  soa_.level.resize(n);
  soa_.z_program.resize(n);
  soa_.z_alpha.resize(n);
  soa_.t_write.resize(n);
  soa_.stuck.resize(n);
  soa_.stuck_level.resize(n);
  soa_.num_stuck = 0;
  for (std::size_t c = 0; c < n; ++c) {
    const Cell& cell = cells_[c];
    soa_.level[c] = static_cast<std::int32_t>(cell.programmed_level());
    soa_.z_program[c] = cell.z_program();
    soa_.z_alpha[c] = cell.z_alpha();
    soa_.t_write[c] = cell.write_time();
    soa_.stuck[c] = cell.is_stuck() ? 1 : 0;
    soa_.stuck_level[c] = static_cast<std::uint8_t>(cell.stuck_level());
    soa_.num_stuck += soa_.stuck[c];
  }
  soa_.valid = true;
}

void MlcLine::read_levels_vectorized(double t_seconds,
                                     const drift::MetricConfig& cfg,
                                     const double* offsets,
                                     std::uint8_t* out_levels) const {
  const SimdLevel level = simd_level();
  const double b0 = cfg.upper_boundary(0);
  const double b1 = cfg.upper_boundary(1);
  const double b2 = cfg.upper_boundary(2);
  // The lane kernel counts boundary exceedances, which equals
  // level_from_metric only for monotone boundaries — true of any sane
  // MetricConfig, but a pathological one must still read correctly.
  if (level == SimdLevel::kScalar || !(b0 <= b1 && b1 <= b2)) {
    read_levels_batched(t_seconds, cfg, offsets, out_levels);
    return;
  }
  ensure_soa();
  const std::size_t n = cells_.size();
  // Per-call log_t fill with the same run caching as the batched loop:
  // one log10 per run of equal write times, 0.0 for undrifted cells.
  soa_.log_t.resize(n);
  bool have_cached = false;
  double cached_tw = 0.0;
  double cached_logt = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    const double tw = soa_.t_write[c];
    if (!have_cached || tw != cached_tw) {
      const double age = t_seconds - tw;
      cached_logt = age > cfg.t0_seconds ? std::log10(age / cfg.t0_seconds)
                                         : 0.0;
      cached_tw = tw;
      have_cached = true;
    }
    soa_.log_t[c] = cached_logt;
  }
  double params[19];
  for (std::size_t i = 0; i < drift::kNumStates; ++i) {
    params[i] = cfg.states[i].mu;
    params[4 + i] = cfg.states[i].sigma;
    params[8 + i] = cfg.states[i].mu_alpha;
    params[12 + i] = cfg.states[i].sigma_alpha;
  }
  params[16] = b0;
  params[17] = b1;
  params[18] = b2;
  if (level == SimdLevel::kAvx2) {
    simd::drift_levels_avx2(n, soa_.level.data(), soa_.z_program.data(),
                            soa_.z_alpha.data(), soa_.log_t.data(), offsets,
                            params, out_levels);
  } else {
    simd::drift_levels_sse42(n, soa_.level.data(), soa_.z_program.data(),
                             soa_.z_alpha.data(), soa_.log_t.data(), offsets,
                             params, out_levels);
  }
  // Stuck cells ignore metric and offset alike: overwrite after the fact.
  if (soa_.num_stuck != 0) {
    for (std::size_t c = 0; c < n; ++c) {
      if (soa_.stuck[c] != 0) out_levels[c] = soa_.stuck_level[c];
    }
  }
}

void MlcLine::read_levels(double t_seconds, const drift::MetricConfig& cfg,
                          const double* offsets, std::uint8_t* out_levels,
                          KernelMode mode) const {
  if (resolve_kernel_mode(mode) == KernelMode::kVectorized) {
    read_levels_vectorized(t_seconds, cfg, offsets, out_levels);
  } else {
    read_levels_batched(t_seconds, cfg, offsets, out_levels);
  }
}

BitVec MlcLine::read(double t_seconds, const drift::MetricConfig& cfg,
                     KernelMode mode) const {
  BitVec out(num_bits());
  const KernelMode m = resolve_kernel_mode(mode);
  if (m == KernelMode::kReference) {
    for (std::size_t c = 0; c < cells_.size(); ++c) {
      const std::size_t level = cells_[c].read_level(t_seconds, cfg);
      const std::uint8_t data = drift::kLevelData[level];
      out.set(2 * c, (data >> 1) & 1);
      out.set(2 * c + 1, data & 1);
    }
    return out;
  }
  soa_.levels_tmp.resize(cells_.size());
  std::uint8_t* levels = soa_.levels_tmp.data();
  read_levels(t_seconds, cfg, nullptr, levels, m);
  if (m == KernelMode::kVectorized) {
    // Fast packing: each cell contributes two adjacent bits — bit 2c is
    // the Gray pair's high bit, bit 2c+1 the low — so 32 cells fill one
    // 64-bit word. Precompute each level's 2-bit pattern in word order.
    std::uint64_t pat[drift::kNumStates];
    for (std::size_t l = 0; l < drift::kNumStates; ++l) {
      const std::uint8_t data = drift::kLevelData[l];
      pat[l] = static_cast<std::uint64_t>(((data >> 1) & 1) |
                                          ((data & 1) << 1));
    }
    const std::size_t nwords = (num_bits() + 63) / 64;
    for (std::size_t wi = 0; wi < nwords; ++wi) {
      std::uint64_t w = 0;
      const std::size_t c0 = wi * 32;
      const std::size_t c1 = std::min(c0 + 32, cells_.size());
      for (std::size_t c = c0; c < c1; ++c) {
        w |= pat[levels[c]] << (2 * (c - c0));
      }
      out.set_word(wi, w);
    }
    return out;
  }
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    const std::uint8_t data = drift::kLevelData[levels[c]];
    out.set(2 * c, (data >> 1) & 1);
    out.set(2 * c + 1, data & 1);
  }
  return out;
}

std::size_t MlcLine::count_drift_errors(double t_seconds,
                                        const drift::MetricConfig& cfg,
                                        KernelMode mode) const {
  const KernelMode m = resolve_kernel_mode(mode);
  if (m == KernelMode::kReference) {
    std::size_t n = 0;
    for (const Cell& c : cells_) n += c.drift_error(t_seconds, cfg) ? 1 : 0;
    return n;
  }
  soa_.levels_tmp.resize(cells_.size());
  std::uint8_t* levels = soa_.levels_tmp.data();
  read_levels(t_seconds, cfg, nullptr, levels, m);
  std::size_t n = 0;
  if (m == KernelMode::kVectorized && soa_.valid) {
    // Compare against the SoA mirror: 4-byte sequential loads instead of
    // striding through the (much larger) Cell objects.
    for (std::size_t c = 0; c < cells_.size(); ++c) {
      n += levels[c] != soa_.level[c] ? 1 : 0;
    }
    return n;
  }
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    n += levels[c] != cells_[c].programmed_level() ? 1 : 0;
  }
  return n;
}

}  // namespace rd::pcm
