#include "pcm/line.h"

#include <cmath>

#include "common/check.h"

namespace rd::pcm {

std::size_t data_to_level(std::uint8_t two_bits) {
  for (std::size_t level = 0; level < drift::kNumStates; ++level) {
    if (drift::kLevelData[level] == (two_bits & 0b11)) return level;
  }
  RD_CHECK_MSG(false, "unreachable: all 2-bit values are mapped");
  return 0;
}

MlcLine::MlcLine(std::size_t nbits) : programmed_(nbits) {
  RD_CHECK_MSG(nbits % 2 == 0, "MLC line needs an even bit count");
  cells_.resize(nbits / 2);
}

Cell& MlcLine::cell_at(std::size_t i) {
  RD_CHECK(i < cells_.size());
  return cells_[i];
}

std::size_t MlcLine::target_level(const BitVec& bits, std::size_t cell) const {
  const std::uint8_t hi = bits.get(2 * cell) ? 1 : 0;
  const std::uint8_t lo = bits.get(2 * cell + 1) ? 1 : 0;
  return data_to_level(static_cast<std::uint8_t>((hi << 1) | lo));
}

void MlcLine::write_full(const BitVec& bits, double t_seconds, Rng& rng,
                         const drift::MetricConfig& cfg) {
  RD_CHECK(bits.size() == num_bits());
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    cells_[c].program(target_level(bits, c), t_seconds, rng, cfg);
  }
  programmed_ = bits;
}

std::size_t MlcLine::write_differential(const BitVec& bits, double t_seconds,
                                        Rng& rng,
                                        const drift::MetricConfig& cfg) {
  RD_CHECK(bits.size() == num_bits());
  std::size_t written = 0;
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    const std::size_t want = target_level(bits, c);
    if (cells_[c].programmed_level() != want) {
      cells_[c].program(want, t_seconds, rng, cfg);
      ++written;
    }
  }
  programmed_ = bits;
  return written;
}

std::size_t MlcLine::refresh_drifted(double t_seconds, Rng& rng,
                                     const drift::MetricConfig& cfg) {
  std::size_t refreshed = 0;
  for (Cell& c : cells_) {
    if (c.drift_error(t_seconds, cfg)) {
      c.program(c.programmed_level(), t_seconds, rng, cfg);
      ++refreshed;
    }
  }
  return refreshed;
}

void MlcLine::read_levels(double t_seconds, const drift::MetricConfig& cfg,
                          const double* offsets,
                          std::uint8_t* out_levels) const {
  // Hoist the drift law's log10: cells programmed at the same instant (a
  // full write, or each run of a differential write) share one
  // log10(age / t0). The cached value is exactly what the scalar path
  // would compute, so levels are bit-identical to per-cell read_level.
  bool have_cached = false;
  double cached_tw = 0.0;
  bool cached_drifted = false;
  double cached_logt = 0.0;
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    const Cell& cell = cells_[c];
    const double tw = cell.write_time();
    if (!have_cached || tw != cached_tw) {
      const double age = t_seconds - tw;
      cached_drifted = age > cfg.t0_seconds;
      cached_logt =
          cached_drifted ? std::log10(age / cfg.t0_seconds) : 0.0;
      cached_tw = tw;
      have_cached = true;
    }
    out_levels[c] = static_cast<std::uint8_t>(cell.read_level_logt(
        cached_drifted, cached_logt, cfg, offsets != nullptr ? offsets[c] : 0.0));
  }
}

BitVec MlcLine::read(double t_seconds, const drift::MetricConfig& cfg,
                     KernelMode mode) const {
  BitVec out(num_bits());
  if (resolve_kernel_mode(mode) == KernelMode::kReference) {
    for (std::size_t c = 0; c < cells_.size(); ++c) {
      const std::size_t level = cells_[c].read_level(t_seconds, cfg);
      const std::uint8_t data = drift::kLevelData[level];
      out.set(2 * c, (data >> 1) & 1);
      out.set(2 * c + 1, data & 1);
    }
    return out;
  }
  std::vector<std::uint8_t> levels(cells_.size());
  read_levels(t_seconds, cfg, nullptr, levels.data());
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    const std::uint8_t data = drift::kLevelData[levels[c]];
    out.set(2 * c, (data >> 1) & 1);
    out.set(2 * c + 1, data & 1);
  }
  return out;
}

std::size_t MlcLine::count_drift_errors(double t_seconds,
                                        const drift::MetricConfig& cfg,
                                        KernelMode mode) const {
  if (resolve_kernel_mode(mode) == KernelMode::kReference) {
    std::size_t n = 0;
    for (const Cell& c : cells_) n += c.drift_error(t_seconds, cfg) ? 1 : 0;
    return n;
  }
  std::vector<std::uint8_t> levels(cells_.size());
  read_levels(t_seconds, cfg, nullptr, levels.data());
  std::size_t n = 0;
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    n += levels[c] != cells_[c].programmed_level() ? 1 : 0;
  }
  return n;
}

}  // namespace rd::pcm
