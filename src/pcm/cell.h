// Monte-Carlo MLC PCM cell model.
//
// A cell's physical configuration (amorphous thickness u_a) determines both
// its R-metric and M-metric. We model this by drawing a single programming
// percentile and a single drift-activation percentile per cell and mapping
// them through both metric configurations, so the two readouts of one cell
// are consistent: a cell whose R drifts hard also sits high in the (much
// slower) M drift distribution.
//
// Performance note (DESIGN.md §10): evaluating the drift law
// R(t) = R0 * (t / t0)^alpha costs one log10 per readout in log space, and
// that log10 depends only on the cell's age — which whole-line reads and
// Monte-Carlo sweeps share across hundreds of cells. The *_logt entry
// points below take the precomputed log10(age / t0) so batched callers
// (MlcLine::read_levels, pcm::mc_ler) hoist it; they are the same
// arithmetic as metric_at / read_level, so the results are bit-identical
// (the scalar paths are implemented on top of them).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "drift/metric.h"

namespace rd::pcm {

/// One programmed MLC cell. Value-type; the line owns an array of these.
class Cell {
 public:
  /// Program the cell to `level` at absolute time t_write (seconds). Draws
  /// a fresh programming percentile (truncated normal); the cell's drift
  /// percentile is process variation — drawn once on the first program and
  /// persistent across reprograms (a fast-drifting cell stays fast).
  /// Advances `rng` by the same number of draws regardless of level.
  void program(std::size_t level, double t_write_seconds, Rng& rng,
               const drift::MetricConfig& cfg);

  /// The level most recently programmed (not affected by set_stuck).
  std::size_t programmed_level() const { return level_; }
  /// Absolute time of the last program, seconds.
  double write_time() const { return t_write_; }

  /// The metric value (log10 units) at absolute time t under `cfg`.
  /// Before t_write + t0 the drift term is zero (the drift law starts at
  /// t0 after programming).
  double metric_at(double t_seconds, const drift::MetricConfig& cfg) const;

  /// The metric value given log_t_ratio = log10(age / t0) precomputed by a
  /// batched caller. Requires age > t0 (callers use metric_programmed()
  /// otherwise). metric_at(t, cfg) == metric_at_logt(log10((t - t_write)
  /// / t0), cfg) exactly — same arithmetic, hoisted log10.
  double metric_at_logt(double log_t_ratio,
                        const drift::MetricConfig& cfg) const;

  /// The metric value with no drift term (age <= t0): the as-programmed
  /// log10 metric.
  double metric_programmed(const drift::MetricConfig& cfg) const;

  /// Read out the level at time t by comparing against the reference
  /// boundaries of `cfg` (three references, Section II-A). Drift only
  /// increases the metric, so a misread returns a higher level.
  std::size_t read_level(double t_seconds,
                         const drift::MetricConfig& cfg) const;

  /// read_level with an additive metric disturbance (log10 units) applied
  /// before the reference comparison — the seam for injected sensing
  /// transients (READDUO_FAULTS "sense"). A stuck cell ignores the offset.
  std::size_t read_level(double t_seconds, const drift::MetricConfig& cfg,
                         double metric_offset) const;

  /// Batched read_level: `drifted` says whether age > t0 and, when true,
  /// `log_t_ratio` carries the caller's precomputed log10(age / t0).
  /// Bit-identical to read_level(t, cfg, metric_offset) for matching
  /// arguments; stuck cells return their pinned level regardless.
  std::size_t read_level_logt(bool drifted, double log_t_ratio,
                              const drift::MetricConfig& cfg,
                              double metric_offset) const;

  /// True if reading at time t under cfg would return the wrong level.
  bool drift_error(double t_seconds, const drift::MetricConfig& cfg) const {
    return read_level(t_seconds, cfg) != level_;
  }

  /// Endurance wear-out: pin the cell to a fixed level. Programming no
  /// longer changes what it reads (a hard error for ECP to patch).
  void set_stuck(std::size_t level);
  /// True once set_stuck has pinned this cell.
  bool is_stuck() const { return stuck_; }
  /// The level set_stuck pinned (meaningful only when is_stuck()).
  std::size_t stuck_level() const { return stuck_level_; }

  /// The cell's raw percentiles, for structure-of-arrays gathers
  /// (MlcLine's vectorized read path, DESIGN.md §10.5). Together with
  /// programmed_level() and write_time() they determine every metric this
  /// cell can produce: x = (mu + z_program * sigma) + (mu_alpha +
  /// z_alpha * sigma_alpha) * log10(age / t0).
  double z_program() const { return z_program_; }
  double z_alpha() const { return z_alpha_; }

 private:
  /// Locate metric value x among the three upper boundaries of `cfg` —
  /// the two-round reference comparison shared by every read path.
  static std::size_t level_from_metric(double x,
                                       const drift::MetricConfig& cfg);

  std::size_t level_ = 0;
  double t_write_ = 0.0;
  double z_program_ = 0.0;  ///< programming percentile, truncated normal
  double z_alpha_ = 0.0;    ///< drift-coefficient percentile, standard normal
  bool has_identity_ = false;
  bool stuck_ = false;
  std::size_t stuck_level_ = 0;
};

}  // namespace rd::pcm
