#include "pcm/area.h"

namespace rd::pcm {

SubarrayArea subarray_area(const AreaParams& p, bool with_readduo) {
  SubarrayArea a;
  a.data_array = p.cell_f2 * static_cast<double>(p.rows) *
                 static_cast<double>(p.cols);
  a.row_decoder = p.row_decoder_f2 * static_cast<double>(p.rows);
  a.column_periphery = (p.column_mux_f2 + p.precharge_f2) *
                       static_cast<double>(p.cols);
  a.current_sense =
      p.current_sa_f2 * static_cast<double>(p.num_sense_amps());
  a.voltage_sense =
      with_readduo ? p.voltage_sa_f2 * static_cast<double>(p.num_sense_amps())
                   : 0.0;
  return a;
}

double readduo_area_increase(const AreaParams& p) {
  const double base = subarray_area(p, false).total();
  const double enhanced = subarray_area(p, true).total();
  return (enhanced - base) / base;
}

}  // namespace rd::pcm
