// Start-Gap wear leveling [Qureshi et al., MICRO'09] — the address
// remapping substrate the paper's related work assumes under every PCM
// main memory (Section VI). Algebraic, table-free: one spare line (the
// gap) rotates through the region every `gap_write_interval` writes,
// shifting the logical-to-physical mapping by one line per full rotation.
//
// ReadDuo's endurance results (Figure 15) report relative cell-write
// counts; Start-Gap is what turns those into uniform wear across lines —
// bench_wear shows hot-line write concentration flattening.
#pragma once

#include <cstdint>

#include "common/check.h"

namespace rd::pcm {

/// Start-Gap remapper over a region of `lines` logical lines backed by
/// `lines + 1` physical lines.
class StartGap {
 public:
  /// @param lines               logical lines in the region
  /// @param gap_write_interval  writes between gap movements (the paper's
  ///                            psi; 100 gives ~1% write overhead)
  StartGap(std::uint64_t lines, std::uint64_t gap_write_interval = 100);

  std::uint64_t lines() const { return lines_; }
  /// Physical lines backing the region (logical lines + 1 spare).
  std::uint64_t physical_lines() const { return lines_ + 1; }

  /// Translate a logical line to its current physical line.
  std::uint64_t to_physical(std::uint64_t logical) const;

  /// Record a write to the region. Every `gap_write_interval` writes the
  /// gap moves one slot (one line is copied in hardware); returns true
  /// when this write triggered a gap movement, so callers can charge the
  /// extra line write.
  bool on_write();

  /// Diagnostics: current gap slot and completed full rotations.
  std::uint64_t gap_position() const { return gap_; }
  std::uint64_t rotations() const { return start_; }

 private:
  std::uint64_t lines_;
  std::uint64_t interval_;
  std::uint64_t writes_since_move_ = 0;
  /// Gap slot in [0, lines]; slot `gap_` holds no logical line.
  std::uint64_t gap_;
  /// Number of completed gap rotations == current start offset.
  std::uint64_t start_ = 0;
};

}  // namespace rd::pcm
