#include "pcm/cell.h"

#include <cmath>

#include "common/check.h"

namespace rd::pcm {

void Cell::program(std::size_t level, double t_write_seconds, Rng& rng,
                   const drift::MetricConfig& cfg) {
  RD_CHECK(level < drift::kNumStates);
  level_ = level;
  t_write_ = t_write_seconds;
  // The programming percentile is write noise: redrawn per program. The
  // drift percentile is cell-intrinsic process variation: drawn once and
  // kept, so a fast-drifting cell drifts fast after every rewrite. Both
  // map through either metric config, keeping R and M readouts of the
  // same cell physically consistent.
  z_program_ = rng.truncated_normal(0.0, 1.0, cfg.program_halfwidth);
  if (!has_identity_) {
    z_alpha_ = rng.normal();
    has_identity_ = true;
  }
}

double Cell::metric_at_logt(double log_t_ratio,
                            const drift::MetricConfig& cfg) const {
  const drift::StateParams& sp = cfg.states[level_];
  const double x0 = sp.mu + z_program_ * sp.sigma;
  const double alpha = sp.mu_alpha + z_alpha_ * sp.sigma_alpha;
  return x0 + alpha * log_t_ratio;
}

double Cell::metric_programmed(const drift::MetricConfig& cfg) const {
  const drift::StateParams& sp = cfg.states[level_];
  return sp.mu + z_program_ * sp.sigma;
}

double Cell::metric_at(double t_seconds,
                       const drift::MetricConfig& cfg) const {
  const double age = t_seconds - t_write_;
  if (age <= cfg.t0_seconds) return metric_programmed(cfg);
  return metric_at_logt(std::log10(age / cfg.t0_seconds), cfg);
}

void Cell::set_stuck(std::size_t level) {
  RD_CHECK(level < drift::kNumStates);
  stuck_ = true;
  stuck_level_ = level;
}

std::size_t Cell::level_from_metric(double x,
                                    const drift::MetricConfig& cfg) {
  // Two-round reference comparison (Ref2 then Ref1/Ref3); equivalent to
  // locating x among the three upper boundaries.
  std::size_t level = drift::kNumStates - 1;
  for (std::size_t i = 0; i + 1 < drift::kNumStates; ++i) {
    if (x <= cfg.upper_boundary(i)) {
      level = i;
      break;
    }
  }
  return level;
}

std::size_t Cell::read_level(double t_seconds,
                             const drift::MetricConfig& cfg) const {
  return read_level(t_seconds, cfg, 0.0);
}

std::size_t Cell::read_level(double t_seconds,
                             const drift::MetricConfig& cfg,
                             double metric_offset) const {
  if (stuck_) return stuck_level_;
  const double x = metric_at(t_seconds, cfg) + metric_offset;
  return level_from_metric(x, cfg);
}

std::size_t Cell::read_level_logt(bool drifted, double log_t_ratio,
                                  const drift::MetricConfig& cfg,
                                  double metric_offset) const {
  if (stuck_) return stuck_level_;
  const double x =
      (drifted ? metric_at_logt(log_t_ratio, cfg) : metric_programmed(cfg)) +
      metric_offset;
  return level_from_metric(x, cfg);
}

}  // namespace rd::pcm
