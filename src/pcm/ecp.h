// ECP — Error-Correcting Pointers [Schechter et al., ISCA'10] for PCM
// hard errors (stuck-at cells from endurance wear-out).
//
// The paper's architecture (Section III-E) notes hard-error mitigation is
// orthogonal to drift and can live in the ECC chip; a production MLC PCM
// rank ships with it. ECP-n stores n (pointer, replacement) pairs per
// line: a pointer names a stuck cell, the replacement cell supplies its
// value. Unlike ECC, correction capacity never degrades with the number
// of reads — stuck cells are permanently patched.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.h"

namespace rd::pcm {

/// ECP-n corrector for a line of `cells` MLC cells (2 bits each).
class EcpLine {
 public:
  /// @param cells  cells per line (296 in the paper's geometry)
  /// @param n      number of correction pointers (ECP-6 is typical)
  explicit EcpLine(unsigned cells, unsigned n = 6);

  unsigned capacity() const { return static_cast<unsigned>(entries_.size()); }
  unsigned used() const { return used_; }
  bool exhausted() const { return used_ == capacity(); }

  /// Record a newly discovered stuck cell; its stored value will be
  /// supplied by a replacement cell from now on. Returns false when all
  /// pointers are spent (the line must be decommissioned / remapped).
  bool retire_cell(unsigned cell);

  /// Is this cell patched by a pointer?
  bool is_retired(unsigned cell) const;

  /// Apply the patches: given the raw 2-bit readouts of the line, replace
  /// retired cells' values with their replacement-cell values.
  void patch(std::vector<std::uint8_t>& cell_values) const;

  /// Write path: store the correct value for every retired cell into its
  /// replacement cell.
  void store(const std::vector<std::uint8_t>& cell_values);

  /// Storage overhead in bits: n * (ceil(log2 cells) pointer + 2 value)
  /// + n valid bits.
  unsigned overhead_bits() const;

 private:
  struct Entry {
    unsigned cell = 0;
    std::uint8_t value = 0;
    bool valid = false;
  };
  unsigned cells_;
  unsigned pointer_bits_;
  unsigned used_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace rd::pcm
