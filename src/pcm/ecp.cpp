#include "pcm/ecp.h"

namespace rd::pcm {

EcpLine::EcpLine(unsigned cells, unsigned n) : cells_(cells) {
  RD_CHECK(cells >= 1);
  RD_CHECK(n >= 1);
  entries_.resize(n);
  pointer_bits_ = 1;
  while ((1u << pointer_bits_) < cells_) ++pointer_bits_;
}

bool EcpLine::retire_cell(unsigned cell) {
  RD_CHECK(cell < cells_);
  if (is_retired(cell)) return true;  // idempotent
  if (exhausted()) return false;
  entries_[used_].cell = cell;
  entries_[used_].valid = true;
  ++used_;
  return true;
}

bool EcpLine::is_retired(unsigned cell) const {
  for (const Entry& e : entries_) {
    if (e.valid && e.cell == cell) return true;
  }
  return false;
}

void EcpLine::patch(std::vector<std::uint8_t>& cell_values) const {
  RD_CHECK(cell_values.size() == cells_);
  // Later pointers override earlier ones (an ECP entry can itself go bad
  // and be re-pointed; scanning in order preserves that semantic).
  for (const Entry& e : entries_) {
    if (e.valid) cell_values[e.cell] = e.value;
  }
}

void EcpLine::store(const std::vector<std::uint8_t>& cell_values) {
  RD_CHECK(cell_values.size() == cells_);
  for (Entry& e : entries_) {
    if (e.valid) e.value = cell_values[e.cell] & 0b11;
  }
}

unsigned EcpLine::overhead_bits() const {
  return capacity() * (pointer_bits_ + 2 + 1);
}

}  // namespace rd::pcm
