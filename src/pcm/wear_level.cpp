#include "pcm/wear_level.h"

namespace rd::pcm {

StartGap::StartGap(std::uint64_t lines, std::uint64_t gap_write_interval)
    : lines_(lines), interval_(gap_write_interval), gap_(lines) {
  RD_CHECK(lines >= 1);
  RD_CHECK(gap_write_interval >= 1);
}

std::uint64_t StartGap::to_physical(std::uint64_t logical) const {
  RD_CHECK(logical < lines_);
  // Rotate by the start offset over the logical space, then skip the gap
  // slot: slots at or after the gap shift up by one. The result lands in
  // [0, lines] and never on the gap — a bijection into the spare-backed
  // physical region.
  const std::uint64_t rotated = (logical + start_) % lines_;
  return rotated >= gap_ ? rotated + 1 : rotated;
}

bool StartGap::on_write() {
  if (++writes_since_move_ < interval_) return false;
  writes_since_move_ = 0;
  // Move the gap down one slot (the hardware copies the displaced line
  // into the old gap). After a full sweep the mapping start advances.
  if (gap_ == 0) {
    gap_ = lines_;  // wrap: gap returns to the top...
    ++start_;       // ...and every logical line has shifted by one.
  } else {
    --gap_;
  }
  return true;
}

}  // namespace rd::pcm
