#include "pcm/chip.h"

#include "common/check.h"
#include "common/kernels.h"
#include "config/loader.h"
#include "faults/injector.h"

namespace rd::pcm {

MlcChip::MlcChip(ChipConfig cfg)
    : cfg_(cfg),
      mode_(resolve_kernel_mode(cfg.kernels)),
      // The process-wide device (READDUO_DEVICE / --device) supplies the
      // metric configurations; the builtin device is bit-identical to
      // the old hard-coded drift::r_metric()/m_metric() calls.
      r_cfg_(config::active_device().r_metric),
      m_cfg_(config::active_device().m_metric),
      bch_(/*m=*/10, cfg.bch_t, cfg.data_bytes * 8, mode_),
      rng_(cfg.seed),
      faults_(cfg.faults != nullptr ? cfg.faults : faults::engine()),
      next_scrub_s_(cfg.scrub_interval_s) {
  RD_CHECK(cfg.num_lines >= 1);
  RD_CHECK(cfg.data_bytes >= 1);
  const std::size_t bits = bch_.codeword_bits() + (bch_.codeword_bits() & 1);
  const unsigned cells = static_cast<unsigned>(bits / 2);
  lines_.reserve(cfg.num_lines);
  for (std::size_t i = 0; i < cfg.num_lines; ++i) {
    lines_.emplace_back(bits, cells, cfg.ecp_pointers);
  }
  // Manufacturing-time / endurance wear faults: pin the planned stuck
  // cells before any data lands, exactly as inject_stuck_cell would.
  if (faults_ != nullptr) {
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      for (unsigned c = 0; c < cells; ++c) {
        if (auto level = faults_->stuck_level(i, c)) {
          lines_[i].cells.cell_at(c).set_stuck(*level);
          ++stats_.injected_faults;
        }
      }
    }
  }
}

BitVec MlcChip::encode(const std::vector<std::uint8_t>& data) const {
  RD_CHECK_MSG(data.size() == cfg_.data_bytes,
               "payload must be exactly " << cfg_.data_bytes << " bytes");
  BitVec payload(cfg_.data_bytes * 8);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload.set(i, (data[i / 8] >> (i % 8)) & 1);
  }
  const BitVec cw = bch_.encode(payload);
  // Pad to an even bit count (cells hold 2 bits).
  BitVec padded(cw.size() + (cw.size() & 1));
  for (std::size_t i = 0; i < cw.size(); ++i) padded.set(i, cw.get(i));
  return padded;
}

std::vector<std::uint8_t> MlcChip::extract(const BitVec& codeword) const {
  std::vector<std::uint8_t> data(cfg_.data_bytes, 0);
  for (std::size_t i = 0; i < cfg_.data_bytes * 8; ++i) {
    if (codeword.get(i)) {
      data[i / 8] = static_cast<std::uint8_t>(data[i / 8] | (1u << (i % 8)));
    }
  }
  return data;
}

BitVec MlcChip::sense(const LineSlot& slot, const drift::MetricConfig& cfg,
                      std::size_t line, bool r_path) {
  const std::uint64_t serial = sense_serial_++;
  // Raw cell readout: injected transients are gathered per cell (the
  // fault serial advances identically in every kernel mode), then the
  // whole line is sensed through the batched kernel — cell by cell on the
  // reference path, SIMD lanes when mode_ is kVectorized (read_levels
  // dispatches on the mode we pass). Levels are bit-identical throughout.
  std::vector<std::uint8_t> values(slot.cells.num_cells());
  std::vector<double> offsets;
  if (faults_ != nullptr && r_path) {
    offsets.resize(values.size(), 0.0);
    for (std::size_t c = 0; c < values.size(); ++c) {
      offsets[c] = faults_->sense_offset(line, c, serial);
      if (offsets[c] != 0.0) ++stats_.injected_faults;
    }
  }
  if (mode_ == KernelMode::kReference) {
    for (std::size_t c = 0; c < values.size(); ++c) {
      values[c] = drift::kLevelData[slot.cells.cells()[c].read_level(
          now_s_, cfg, offsets.empty() ? 0.0 : offsets[c])];
    }
  } else {
    slot.cells.read_levels(now_s_, cfg,
                           offsets.empty() ? nullptr : offsets.data(),
                           values.data(), mode_);
    for (std::size_t c = 0; c < values.size(); ++c) {
      values[c] = drift::kLevelData[values[c]];
    }
  }
  // ...with ECP supplying retired cells' true values.
  slot.ecp.patch(values);
  BitVec bits(slot.cells.num_bits());
  for (std::size_t c = 0; c < values.size(); ++c) {
    bits.set(2 * c, (values[c] >> 1) & 1);
    bits.set(2 * c + 1, values[c] & 1);
  }
  return bits;
}

void MlcChip::program(LineSlot& slot, const BitVec& codeword) {
  slot.cells.write_full(codeword, now_s_, rng_, r_cfg_);
  slot.last_write_s = now_s_;
  slot.written = true;
  ++stats_.writes;

  // Verify-after-write: a cell that fails to take its value is stuck;
  // retire it into ECP and remember its intended value.
  std::vector<std::uint8_t> want(slot.cells.num_cells());
  for (std::size_t c = 0; c < want.size(); ++c) {
    const std::uint8_t hi = codeword.get(2 * c) ? 1 : 0;
    const std::uint8_t lo = codeword.get(2 * c + 1) ? 1 : 0;
    want[c] = static_cast<std::uint8_t>((hi << 1) | lo);
    const Cell& cell = slot.cells.cells()[c];
    if (cell.is_stuck() &&
        drift::kLevelData[cell.read_level(now_s_, r_cfg_)] != want[c] &&
        !slot.ecp.is_retired(static_cast<unsigned>(c))) {
      RD_CHECK_MSG(slot.ecp.retire_cell(static_cast<unsigned>(c)),
                   "line out of ECP pointers: decommission required");
      ++stats_.cells_retired;
    }
  }
  // lint: allow(atomic-order) ErrorPointers::store is not a std::atomic
  slot.ecp.store(want);
}

void MlcChip::write(std::size_t line, const std::vector<std::uint8_t>& data) {
  RD_CHECK(line < lines_.size());
  program(lines_[line], encode(data));
}

ChipReadResult MlcChip::read(std::size_t line) {
  RD_CHECK(line < lines_.size());
  LineSlot& slot = lines_[line];
  RD_CHECK_MSG(slot.written, "reading a never-written line");
  ++stats_.reads;

  ChipReadResult result;
  const bool try_r = cfg_.readout != ReadoutPolicy::kMSense;
  if (try_r) {
    BitVec image = sense(slot, r_cfg_, line, /*r_path=*/true);
    BitVec cw(bch_.codeword_bits());
    for (std::size_t i = 0; i < cw.size(); ++i) cw.set(i, image.get(i));
    // Adversarial burst at the detection boundary (READDUO_FAULTS "bch"):
    // flip 9..17 bits of the sensed word before decoding. The decoder
    // must report detected-uncorrectable (falling back to M-sense), never
    // miscorrect — hence decode_verified when faults are live.
    if (faults_ != nullptr) {
      const std::vector<unsigned> burst = faults_->bch_error_positions(
          line, r_read_serial_++, bch_.codeword_bits());
      if (!burst.empty()) ++stats_.injected_faults;
      for (unsigned p : burst) cw.set(p, !cw.get(p));
    }
    const ecc::BchDecodeResult dec =
        faults_ != nullptr ? bch_.decode_verified(cw) : bch_.decode(cw);
    if (dec.corrected) {
      result.data = extract(cw);
      result.corrected = true;
      result.errors_corrected = dec.num_corrected;
      return result;
    }
    if (cfg_.readout == ReadoutPolicy::kRSense) {
      // No fallback: return the raw (uncorrected) data.
      ++stats_.uncorrectable;
      result.data = extract(cw);
      return result;
    }
  }

  // M-sense path (primary for kMSense, fallback for kHybrid).
  result.used_m_sense = true;
  if (cfg_.readout == ReadoutPolicy::kHybrid) ++stats_.m_fallbacks;
  BitVec image = sense(slot, m_cfg_, line, /*r_path=*/false);
  BitVec cw(bch_.codeword_bits());
  for (std::size_t i = 0; i < cw.size(); ++i) cw.set(i, image.get(i));
  const ecc::BchDecodeResult dec = bch_.decode(cw);
  result.data = extract(cw);
  result.corrected = dec.corrected;
  result.errors_corrected = dec.num_corrected;
  if (!dec.corrected) ++stats_.uncorrectable;
  return result;
}

void MlcChip::inject_stuck_cell(std::size_t line, unsigned cell,
                                unsigned level) {
  RD_CHECK(line < lines_.size());
  RD_CHECK(cell < lines_[line].cells.num_cells());
  lines_[line].cells.cell_at(cell).set_stuck(level);
}

double MlcChip::line_age(std::size_t line) const {
  RD_CHECK(line < lines_.size());
  RD_CHECK(lines_[line].written);
  return now_s_ - lines_[line].last_write_s;
}

void MlcChip::advance_time(double seconds) {
  RD_CHECK(seconds >= 0.0);
  const double target = now_s_ + seconds;
  if (cfg_.scrub_interval_s > 0.0) {
    while (next_scrub_s_ <= target) {
      now_s_ = next_scrub_s_;
      run_scrub_pass();
      next_scrub_s_ += cfg_.scrub_interval_s;
    }
  }
  now_s_ = target;
}

void MlcChip::run_scrub_pass() {
  ++stats_.scrub_passes;
  const drift::MetricConfig& cfg = cfg_.scrub_with_m ? m_cfg_ : r_cfg_;
  for (std::size_t li = 0; li < lines_.size(); ++li) {
    LineSlot& slot = lines_[li];
    if (!slot.written) continue;
    BitVec image = sense(slot, cfg, li, /*r_path=*/!cfg_.scrub_with_m);
    BitVec cw(bch_.codeword_bits());
    for (std::size_t i = 0; i < cw.size(); ++i) cw.set(i, image.get(i));
    const ecc::BchDecodeResult dec = bch_.decode(cw);
    if (!dec.corrected) {
      // More errors than the code can fix even on the scrub metric.
      ++stats_.uncorrectable;
      continue;
    }
    const bool rewrite =
        cfg_.scrub_w == 0 || dec.num_corrected >= cfg_.scrub_w;
    if (rewrite) {
      ++stats_.scrub_rewrites;
      BitVec padded(slot.cells.num_bits());
      for (std::size_t i = 0; i < cw.size(); ++i) padded.set(i, cw.get(i));
      program(slot, padded);
      --stats_.writes;  // scrub rewrites are accounted separately
    }
  }
}

}  // namespace rd::pcm
