// The drift-mitigation scheme interface.
//
// A Scheme is the policy plugged into the memory-system simulator: it
// decides how each read is sensed (R / M / R-M), what a write costs, and
// what the scrub engine does — and it accounts latency, energy, endurance
// and reliability events. The six schemes of Section IV are implemented in
// schemes.h.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/units.h"
#include "stats/counters.h"

namespace rd::readduo {

/// How a read request was serviced.
enum class ReadMode {
  kRRead,   ///< fast current sensing, 150 ns
  kMRead,   ///< drift-resilient voltage sensing, 450 ns
  kRMRead,  ///< R-sensing failed / un-tracked, M retry, 600 ns
};

/// Result of a demand read as planned by the scheme.
struct ReadOutcome {
  ReadMode mode = ReadMode::kRRead;
  Ns latency{0};
  /// Request a redundant write-back of this line after the read (LWT
  /// R-M-read conversion). The simulator issues it as a low-priority
  /// write.
  bool convert_to_write = false;
};

/// Result of a write (demand, scrub rewrite, or conversion).
struct WriteOutcome {
  Ns latency{0};
  /// Number of cells actually programmed (full line or differential).
  unsigned cells_written = 0;
  bool full_line = true;
};

/// What the scrub engine must do for the row under its register.
struct ScrubOutcome {
  Ns sense_latency{0};
  /// How many of the row's lines need a rewrite (each is a write op).
  unsigned rewrites = 0;
};

/// Policy + bookkeeping for one drift-mitigation scheme.
class Scheme {
 public:
  virtual ~Scheme() = default;

  virtual const std::string& name() const = 0;

  /// Cells needed to store one 64 B line, including ECC and (SLC) flag
  /// bits — the density input of the EDAP metric (Figure 11).
  virtual double cells_per_line() const = 0;

  /// Scrub interval S in seconds (how often each line is scrubbed);
  /// 0 disables scrubbing (Ideal).
  virtual double scrub_interval_seconds() const = 0;

  /// Plan a demand read of `line` at simulated time `now`. `archive` marks
  /// lines written long before the simulated window.
  virtual ReadOutcome on_read(std::uint64_t line, Ns now, bool archive) = 0;

  /// Plan a demand write.
  virtual WriteOutcome on_write(std::uint64_t line, Ns now) = 0;

  /// Plan the redundant write of a converted R-M-read (always full-line).
  virtual WriteOutcome on_converted_write(std::uint64_t line, Ns now) = 0;

  /// The scrub engine reached some row of the bank (statistically
  /// representative, not necessarily in the touched set). `lines` is the
  /// row size in lines.
  virtual ScrubOutcome on_scrub(Ns now, unsigned lines) = 0;

  /// Plan the rewrite that follows a scrub sense with rewrite == true.
  virtual WriteOutcome on_scrub_rewrite(Ns now) = 0;

  stats::Counters& counters() { return counters_; }
  const stats::Counters& counters() const { return counters_; }

 protected:
  stats::Counters counters_;
};

}  // namespace rd::readduo
