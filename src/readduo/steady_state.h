// Steady-state age distribution of scrubbed memory lines.
//
// The simulated window (milliseconds) is far shorter than the drift and
// scrub timescales (seconds to hours), so the age a line had accumulated
// *before* the window is sampled from the renewal steady state of the
// scrub process: a line is re-written at its j-th scrub after the last
// write with probability P(errors >= nu at age j*S) (or always, for
// W = 0), and an observation instant falls into an interval with
// length-biased renewal probability.
#pragma once

#include <vector>

#include "common/rng.h"
#include "drift/error_model.h"

namespace rd::readduo {

/// Samples "seconds since this line was last fully written" for a line
/// whose only writer is the scrub engine.
class ScrubAgeSampler {
 public:
  /// @param model     drift model of the metric the scrub senses with
  /// @param cells     cells per line (error count is Binomial(cells, p))
  /// @param interval  scrub interval S in seconds
  /// @param nu        rewrite threshold (W): rewrite when errors >= nu;
  ///                  nu == 0 means rewrite at every scrub
  /// @param max_age   cap on the modelled age (renewal tail truncation)
  ScrubAgeSampler(const drift::ErrorModel& model, unsigned cells,
                  double interval, unsigned nu, double max_age = 1.0e6);

  /// Sample an age (seconds) at a uniformly random observation instant.
  double sample(Rng& rng) const;

  /// P(a line sensed at its scrub needs a rewrite), marginalized over the
  /// steady-state age distribution. Drives the scrub engine's rewrite rate.
  double rewrite_probability() const { return rewrite_prob_; }

  /// Mean time between scrub-induced rewrites of a line (seconds).
  double mean_rewrite_interval() const { return mean_interval_; }

 private:
  double interval_;
  /// cumulative[j] = P(age >= j * S) weights, normalized as a sampling CDF.
  std::vector<double> cdf_;
  double rewrite_prob_ = 1.0;
  double mean_interval_ = 0.0;
};

}  // namespace rd::readduo
