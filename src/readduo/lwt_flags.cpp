#include "readduo/lwt_flags.h"

namespace rd::readduo {

LwtFlags::LwtFlags(unsigned k) : k_(k) {
  RD_CHECK_MSG(k >= 2 && k <= 32 && (k & (k - 1)) == 0,
               "LWT-k requires k a power of two in [2, 32]");
  log2k_ = 0;
  for (unsigned v = k; v > 1; v >>= 1) ++log2k_;
}

void LwtFlags::clear_between(unsigned from, unsigned to) {
  // Cyclic open range (from, to): labels strictly after `from` and
  // strictly before `to` in cyclic order. Empty when to == from + 1 (mod
  // k) or to == from.
  if (from == to) return;
  for (unsigned x = (from + 1) % k_; x != to; x = (x + 1) % k_) {
    vec_ &= ~(1u << x);
  }
}

void LwtFlags::on_write(unsigned s) {
  RD_CHECK(s < k_);
  // Bits between the previous last write and this one are stale leftovers
  // from the previous cycle; retire them before recording the new write.
  clear_between(ind_, s);
  vec_ |= 1u << s;
  ind_ = s;
}

void LwtFlags::on_scrub(bool rewrote) {
  // Clear the vector bits "before the last write": labels [0, ind - 1].
  // If ind == 0 (no write since the previous scrub), clear everything.
  if (ind_ == 0) {
    vec_ = 0;
  } else {
    for (unsigned x = 0; x < ind_; ++x) vec_ &= ~(1u << x);
  }
  // Bit 0 records whether this scrub refreshed the line; a new scrub cycle
  // starts, so the index resets.
  if (rewrote) {
    vec_ |= 1u;
  } else {
    vec_ &= ~1u;
  }
  ind_ = 0;
}

void LwtFlags::corrupt_vector_bit(unsigned bit) {
  RD_CHECK(bit < k_);
  vec_ ^= 1u << bit;
}

void LwtFlags::corrupt_index(unsigned index) {
  RD_CHECK(index < k_);
  ind_ = index;
}

bool LwtFlags::tracked_for_read(unsigned s) const {
  RD_CHECK(s < k_);
  if (vec_ == 0) return false;  // case (ii): nothing written within S
  if (ind_ != 0) return true;   // case (i): a write this scrub cycle
  // Case (iii): no write since the scrub (ind == 0). Bits with labels in
  // [1, s] can only come from the previous cycle, i.e. they are more than
  // S seconds old; discard them before deciding.
  std::uint32_t effective = vec_;
  for (unsigned x = 1; x <= s; ++x) effective &= ~(1u << x);
  return effective != 0;
}

}  // namespace rd::readduo
