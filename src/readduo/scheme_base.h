// Shared machinery for the concrete schemes: per-line state, initial-age
// sampling, drift-error sampling, and energy accounting.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "common/rng.h"
#include "drift/error_model.h"
#include "pcm/params.h"
#include "readduo/lwt_flags.h"
#include "readduo/scheme.h"
#include "readduo/steady_state.h"

namespace rd::faults {
class FaultEngine;
}  // namespace rd::faults

namespace rd::readduo {

/// Environment every scheme shares: device parameters plus the workload's
/// data-age behaviour (see DESIGN.md on initial-age modelling).
struct SchemeEnv {
  pcm::TimingParams timing;
  pcm::EnergyParams energy;
  drift::LineGeometry geometry;
  /// Workload geometry for rank-dependent write recency: each core's
  /// address slice is [base, base + footprint) working set followed by
  /// [base + footprint, base + footprint + archive_lines) archive.
  /// footprint_lines == 0 disables the rank model (mean_working_age_s is
  /// used instead).
  std::uint64_t footprint_lines = 0;
  std::uint64_t archive_lines = 0;
  /// Zipf exponent of line popularity (must be < 1; matches the trace).
  double zipf_s = 0.0;
  /// Total write rate of one core over its working set, writes/second.
  double per_core_write_rate = 0.0;
  /// Fallback mean age (seconds) of a working-set line's last write when
  /// footprint_lines == 0 (exponentially distributed).
  double mean_working_age_s = 0.05;
  /// Scale (seconds) of archive-line ages (exponential).
  double archive_age_scale_s = 20000.0;
  /// First-touched-by-a-write lines sample their age log-uniformly over
  /// [write_age_min_s, write_age_max_s]: write instants sample the line
  /// population by write renewal, which is much heavier-tailed than the
  /// read-activity bias (see DESIGN.md on initial-age modelling). This is
  /// what sets ReadDuo-Select's full-vs-differential write mix.
  double write_age_min_s = 1e-3;
  double write_age_max_s = 1e6;
  /// Cap on sampled pre-window ages (seconds).
  double max_age_s = 1.0e6;
  std::uint64_t seed = 1;
  /// Fault injector for this run; nullptr defers to the process-wide
  /// faults::engine() (which is itself nullptr when READDUO_FAULTS is
  /// off — the common, zero-overhead case).
  const faults::FaultEngine* faults = nullptr;
};

/// How a line is first touched; selects the initial-age population.
enum class FirstTouch { kRead, kWrite };

/// Per-line simulator-side state.
struct LineState {
  /// Absolute time (seconds, may be negative = before the window) of the
  /// last write of any kind.
  double last_write_s = 0.0;
  /// Last *full-line* write; differs from last_write_s only under
  /// ReadDuo-Select. Drift-error sampling keys off this one: differential
  /// writes leave unmodified cells drifting from the older time.
  double last_full_write_s = 0.0;
  /// LWT flag bits (only meaningful for LWT/Select schemes).
  LwtFlags flags{4};
  /// Set when the line was written back by R-M-read conversion; tracked
  /// reads hitting such lines are the controller's benefit signal.
  bool converted = false;
};

/// Base class implementing state management and stochastic drift
/// sampling; concrete schemes supply the policy.
class SchemeBase : public Scheme {
 public:
  SchemeBase(std::string name, SchemeEnv env);

  const std::string& name() const override { return name_; }

  /// Default full-line demand write used by most schemes.
  WriteOutcome on_write(std::uint64_t line, Ns now) override;
  WriteOutcome on_converted_write(std::uint64_t line, Ns now) override;

 protected:
  /// Fetch (creating and steady-state-initializing on first touch) the
  /// state of `line`. `archive` and `touch` select the initial-age
  /// population.
  LineState& state_of(std::uint64_t line, Ns now, bool archive,
                      FirstTouch touch = FirstTouch::kRead);

  /// Sample the number of R-metric drift errors a read of `line` at `now`
  /// sees, given the line's last full write — plus any injected sensing
  /// transients (READDUO_FAULTS "sense"; R-sensing only, M is the robust
  /// path by construction).
  unsigned sample_r_errors(std::uint64_t line, const LineState& st, Ns now);
  /// Same under the M-metric (never fault-injected).
  unsigned sample_m_errors(const LineState& st, Ns now);

  /// Record a full-line write of `line` (demand / conversion / rewrite).
  WriteOutcome full_write(LineState& st, Ns now);

  /// Initial age of a never-before-seen line; concrete schemes override to
  /// reflect their scrub hygiene (W = 0 bounds ages by S, etc.).
  virtual double sample_initial_age(std::uint64_t line, bool archive,
                                    FirstTouch touch, Rng& rng) = 0;

  /// Hook: initialize flags or other per-line metadata after the age was
  /// sampled (LWT replays the flag protocol).
  virtual void init_line(LineState& st, std::uint64_t line, Ns now,
                         bool archive);

  /// Workload-recency component of the initial age: exponential with a
  /// per-line rate from the line's Zipf popularity rank, so hot lines are
  /// recently written and the tail is old (see DESIGN.md).
  double sample_workload_age(std::uint64_t line, bool archive,
                             FirstTouch touch, Rng& rng) const;

  Rng& rng() { return rng_; }
  const SchemeEnv& env() const { return env_; }
  /// The resolved fault injector (nullptr when faults are off).
  const faults::FaultEngine* faults() const { return faults_; }

 public:
  /// Shared per-process singletons: the error tables and models are pure
  /// functions of the (fixed) metric configurations and cost ~1 s to
  /// build, so every scheme instance reuses them.
  static const drift::CellErrorTable& r_table();
  static const drift::CellErrorTable& m_table();
  static const drift::ErrorModel& r_model();
  static const drift::ErrorModel& m_model();

 protected:

  /// Account read energy by mode.
  void add_read_energy(ReadMode mode);

 private:
  std::string name_;
  SchemeEnv env_;
  /// env_.faults, or the process engine when that is null; resolved once
  /// at construction so the hot path is a plain pointer test.
  const faults::FaultEngine* faults_;
  Rng rng_;
  /// Ordered by line address: lookups are keyed, but an ordered map keeps
  /// any future iteration (dumps, scrubs walking the population)
  /// deterministic by construction.
  std::map<std::uint64_t, LineState> lines_;
};

}  // namespace rd::readduo
