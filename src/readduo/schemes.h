// The drift-mitigation schemes compared in the paper (Section IV):
//
//   Ideal      — hypothetical drift-free MLC; fast R-reads, no scrubbing.
//   Tlc        — Tri-Level-Cell baseline [26]: drift-free by construction,
//                no scrubbing, but 384 cells per line instead of 296.
//   Scrubbing  — efficient scrubbing [2] with R-sensing, (BCH8, S=8, W=1).
//   MMetric    — M-sensing only, (BCH8, S=640, W=1).
//   Hybrid     — ReadDuo-Hybrid: R-read first, M retry on 9..17 errors,
//                (BCH8, S=640, W=0) M-metric scrubbing.
//   Lwt        — ReadDuo-LWT-k: Hybrid + last-writes tracking, W=1
//                scrubbing, adaptive R-M-read conversion.
//   Select     — ReadDuo-Select-(k:s): Lwt + selective differential write.
#pragma once

#include <memory>

#include "readduo/conversion.h"
#include "readduo/scheme_base.h"

namespace rd::readduo {

/// Which scheme to instantiate.
enum class SchemeKind {
  kIdeal,
  kTlc,
  kScrubbing,
  /// Scrubbing with W=0 (rewrite every line at every 8 s scrub): the
  /// setting R-sensing actually needs for DRAM reliability. The paper
  /// reports it costs 2-3x execution time (Section V-A).
  kScrubbingW0,
  /// Scrubbing upgraded to BCH-10: per Table V the stronger code makes
  /// W=1 safe, trading 20 extra parity bits (10 cells) per line. The
  /// other reliable R-only alternative the paper names.
  kScrubbingBch10,
  kMMetric,
  kHybrid,
  kLwt,
  kSelect,
};

/// Tunables of the ReadDuo family.
struct ReadDuoOptions {
  unsigned k = 4;        ///< LWT sub-intervals per scrub interval
  unsigned select_s = 2; ///< SDW window: one full write per s sub-intervals
  bool conversion = true;///< enable R-M-read -> write conversion
  ConversionController::Config controller = {};
  /// Fraction of cells a demand write modifies (differential-write cost).
  /// The paper cites ~20% of bits changing per write; with 2 bits/cell and
  /// independent changes that is 1 - 0.8^2 = 36% of cells.
  double changed_cell_fraction = 0.36;
};

/// Scrub settings shared by the paper's configurations.
struct ScrubSettings {
  double r_interval_s = 8.0;    ///< (BCH8, S=8) for R-metric scrubbing
  double m_interval_s = 640.0;  ///< (BCH8, S=640) for M-metric scrubbing
};

/// Instantiate a scheme. `opts` only affects the ReadDuo family.
std::unique_ptr<Scheme> make_scheme(SchemeKind kind, const SchemeEnv& env,
                                    const ReadDuoOptions& opts = {},
                                    const ScrubSettings& scrub = {});

/// Human-readable scheme name ("LWT-4", "Select-4:2", ...).
std::string scheme_name(SchemeKind kind, const ReadDuoOptions& opts = {});

}  // namespace rd::readduo
