#include "readduo/steady_state.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math.h"

namespace rd::readduo {

ScrubAgeSampler::ScrubAgeSampler(const drift::ErrorModel& model,
                                 unsigned cells, double interval, unsigned nu,
                                 double max_age)
    : interval_(interval) {
  RD_CHECK(interval > 0.0);
  RD_CHECK(cells > 0);

  // q[j] = P(rewrite at the j-th scrub | survived so far), j = 1, 2, ...
  // With W = 0 (nu == 0) the first scrub always rewrites.
  const std::size_t max_j = std::max<std::size_t>(
      1, static_cast<std::size_t>(max_age / interval));
  std::vector<double> survival;  // survival[j] = P(not rewritten by scrub j)
  survival.push_back(1.0);
  double renewal_mass = 0.0;   // sum over j of P(interval = j*S)
  double mean = 0.0;
  double prev_p = 0.0;  // per-cell error probability at the previous scrub
  for (std::size_t j = 1; j <= max_j; ++j) {
    double q;
    if (nu == 0) {
      q = 1.0;
    } else {
      // Conditional hazard: surviving scrub j-1 certifies the line clean
      // at age (j-1)*S, so only errors accumulating in ((j-1)S, jS]
      // count. Cell drift is monotone: that increment has probability
      // p(jS) - p((j-1)S) per cell (rescaled by the clean condition).
      const double age = static_cast<double>(j) * interval;
      const double p_now = std::exp(
          std::min(model.log_avg_cell_error_prob(age), 0.0));
      const double dp =
          std::max(0.0, (p_now - prev_p) / std::max(1.0 - prev_p, 1e-12));
      prev_p = p_now;
      const double log_tail =
          dp > 0.0 ? log_binomial_tail_gt(cells, nu - 1, std::log(dp))
                   : rd::kNegInf;
      q = log_tail <= rd::kNegInf ? 0.0 : std::exp(log_tail);
    }
    const double p_interval = survival.back() * q;
    renewal_mass += p_interval;
    mean += p_interval * static_cast<double>(j) * interval;
    survival.push_back(survival.back() * (1.0 - q));
    // lint: allow(unit-conv) survival-mass convergence epsilon, not a time conversion
    if (survival.back() < 1e-9) break;
  }
  // Tail truncation. After the loop, survival.size() == last_j + 1 where
  // last_j is the final scrub the loop modelled (max_j, or earlier when
  // the survival mass fell below 1e-9 and the loop broke). The residual
  // mass survival.back() = P(not rewritten by scrub last_j) cannot renew
  // before the *next* scrub, at age (last_j + 1) * S == survival.size() *
  // S — so crediting it there is not an off-by-one relative to the
  // max_j * S cap: the cap bounds the modelled hazard, and survivors of
  // the last modelled scrub renew one interval later at the earliest.
  // Using that earliest time truncates conservatively: it can only
  // under-estimate mean_interval_ and hence over-estimate rewrite_prob_.
  // It also matches sample(), whose oldest age bucket is
  // [last_j * S, survival.size() * S).
  const double residual = survival.back();
  renewal_mass += residual;
  mean += residual * static_cast<double>(survival.size()) * interval;
  mean_interval_ = mean / renewal_mass;

  // Steady-state age: P(age in [j*S, (j+1)*S)) is proportional to
  // survival[j] (renewal-theoretic age distribution, discretized).
  double total = 0.0;
  for (double s : survival) total += s;
  cdf_.resize(survival.size());
  double acc = 0.0;
  for (std::size_t j = 0; j < survival.size(); ++j) {
    acc += survival[j] / total;
    cdf_[j] = acc;
  }
  cdf_.back() = 1.0;

  // Rewrite probability at an arbitrary scrub: one rewrite per renewal
  // interval, one scrub per S.
  rewrite_prob_ = std::min(1.0, interval / mean_interval_);
}

double ScrubAgeSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const std::size_t j = static_cast<std::size_t>(it - cdf_.begin());
  return (static_cast<double>(j) + rng.uniform()) * interval_;
}

}  // namespace rd::readduo
