// Adaptive R-M-read -> write conversion controller (Section III-C).
//
// ReadDuo-LWT can convert an R-M-read of an un-tracked line into a
// redundant write so the next reads of that line enjoy fast R-sensing.
// Blind conversion wastes endurance, so the controller adjusts the
// conversion percentage T in [0, 100] at steps of 10 per epoch, from two
// signals (the paper's own wording is partially garbled; this is our
// documented interpretation, ablated in bench_fig14):
//   * P — the fraction of reads falling on un-tracked lines. If P exceeds
//     85% despite conversion, converted data is not being re-read and the
//     writes are wasted: decrease T (the paper's explicit 85% rule).
//   * benefit — the fraction of tracked reads that hit previously
//     converted lines. High benefit means conversions are paying off
//     (each converted line serves multiple fast R-reads): increase T;
//     near-zero benefit with active conversion: decrease T.
#pragma once

#include <cstdint>

namespace rd::readduo {

/// Epoch-based controller for the conversion percentage T.
class ConversionController {
 public:
  struct Config {
    bool enabled = true;
    unsigned initial_t = 50;          ///< starting percentage
    std::uint64_t epoch_reads = 4096; ///< reads per adjustment epoch
    double high_watermark = 0.85;     ///< P above this decreases T
    /// benefit/conversion ratio above which T increases ...
    double benefit_high = 0.5;
    /// ... and below which T decreases (when conversions happened).
    double benefit_low = 0.05;
    /// T never drops below this probing floor while enabled: a trickle of
    /// conversions keeps measuring benefit, so workloads whose re-reads
    /// arrive later than one epoch (cyclic scans) can still ramp up.
    unsigned floor_t = 10;
  };

  ConversionController() : ConversionController(Config{}) {}
  explicit ConversionController(Config cfg);

  /// Record one read. `untracked` marks a read that needed M-sensing
  /// because the line had no tracked write; `hit_converted` marks a
  /// tracked read that was fast only thanks to an earlier conversion.
  /// Adjusts T at epoch boundaries.
  void record_read(bool untracked, bool hit_converted);

  /// Record that a conversion was issued (pairs with should_convert).
  void record_conversion() { ++epoch_conversions_; }

  /// Should this un-tracked R-M-read be converted to a write? Samples the
  /// current percentage deterministically via a rotating counter, so
  /// exactly T% of candidates convert.
  bool should_convert();

  unsigned t_percent() const { return t_; }
  bool enabled() const { return cfg_.enabled; }

 private:
  Config cfg_;
  unsigned t_;
  std::uint64_t epoch_total_ = 0;
  std::uint64_t epoch_untracked_ = 0;
  std::uint64_t epoch_benefit_ = 0;
  std::uint64_t epoch_conversions_ = 0;
  std::uint64_t convert_counter_ = 0;
};

}  // namespace rd::readduo
