#include "readduo/schemes.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <tuple>

#include "common/check.h"
#include "common/thread_annotations.h"
#include "faults/injector.h"

namespace rd::readduo {

namespace {

/// Shared steady-state samplers: pure functions of (metric, interval, nu)
/// and ~0.5 s to build, so scheme instances share them per process.
/// Mutex-guarded: concurrent bench runs (bench::run_schemes) construct
/// schemes from pool threads. Entries are never erased and the map keeps
/// node addresses stable, so the returned reference outlives the lock.
Mutex g_sampler_mu;
std::map<std::tuple<bool, unsigned, double, unsigned>,
         std::unique_ptr<ScrubAgeSampler>>
    g_sampler_cache RD_GUARDED_BY(g_sampler_mu);

const ScrubAgeSampler& shared_sampler(bool m_metric, unsigned cells,
                                      double interval, unsigned nu) {
  const auto key = std::make_tuple(m_metric, cells, interval, nu);
  MutexLock lock(g_sampler_mu);
  auto& cache = g_sampler_cache;
  auto it = cache.find(key);
  if (it == cache.end()) {
    const drift::ErrorModel& model =
        m_metric ? SchemeBase::m_model() : SchemeBase::r_model();
    it = cache
             .emplace(key, std::make_unique<ScrubAgeSampler>(model, cells,
                                                             interval, nu))
             .first;
  }
  return *it->second;
}

/// BCH-8 correction/detection thresholds with decoupled detect/correct
/// (Section III-B): correct up to 8, detect up to 17, silent beyond.
constexpr unsigned kCorrectable = 8;
constexpr unsigned kDetectable = 17;

/// MLC cells per 64 B line with BCH-8 (512 data + 80 parity bits).
constexpr double kMlcCells = 296.0;
/// Tri-level cells per 64 B line with (72,64) SECDED.
constexpr double kTlcCells = 384.0;

// ---------------------------------------------------------------- Ideal --

class IdealScheme : public SchemeBase {
 public:
  explicit IdealScheme(const SchemeEnv& env) : SchemeBase("Ideal", env) {}

  double cells_per_line() const override { return kMlcCells; }
  double scrub_interval_seconds() const override { return 0.0; }

  ReadOutcome on_read(std::uint64_t, Ns, bool) override {
    ++counters_.r_reads;
    add_read_energy(ReadMode::kRRead);
    return ReadOutcome{ReadMode::kRRead, env().timing.r_read, false};
  }

  ScrubOutcome on_scrub(Ns, unsigned) override { return {}; }
  WriteOutcome on_scrub_rewrite(Ns) override { return {}; }

 protected:
  double sample_initial_age(std::uint64_t, bool, FirstTouch,
                            Rng&) override {
    return 0.0;
  }
};

// ------------------------------------------------------------------ TLC --

class TlcScheme : public SchemeBase {
 public:
  explicit TlcScheme(const SchemeEnv& env) : SchemeBase("TLC", env) {}

  double cells_per_line() const override { return kTlcCells; }
  double scrub_interval_seconds() const override { return 0.0; }

  ReadOutcome on_read(std::uint64_t, Ns, bool) override {
    ++counters_.r_reads;
    add_read_energy(ReadMode::kRRead);
    return ReadOutcome{ReadMode::kRRead, env().timing.r_read, false};
  }

  WriteOutcome on_write(std::uint64_t line, Ns now) override {
    // A TLC line programs 384 tri-level cells; each costs tlc_write_scale
    // of an MLC cell write (coarser P&V against decade-wide targets).
    WriteOutcome w = SchemeBase::on_write(line, now);
    // Rebase the energy SchemeBase charged for 296 full-rate MLC cells.
    counters_.write_energy_pj -=
        env().energy.cell_write.v * static_cast<double>(w.cells_written);
    const unsigned extra =
        static_cast<unsigned>(kTlcCells) - w.cells_written;
    counters_.cell_writes += extra;
    counters_.write_energy_pj += env().energy.cell_write.v *
                                 env().energy.tlc_write_scale * kTlcCells;
    w.cells_written = static_cast<unsigned>(kTlcCells);
    return w;
  }

  ScrubOutcome on_scrub(Ns, unsigned) override { return {}; }
  WriteOutcome on_scrub_rewrite(Ns) override { return {}; }

 protected:
  double sample_initial_age(std::uint64_t, bool, FirstTouch,
                            Rng&) override {
    return 0.0;
  }
};

// ------------------------------------------------------ Scrubbing (R) ----

class ScrubbingScheme : public SchemeBase {
 public:
  ScrubbingScheme(const SchemeEnv& env, double interval_s, unsigned nu,
                  std::string name, double cells_per_line = kMlcCells)
      : SchemeBase(std::move(name), env),
        interval_s_(interval_s),
        nu_(nu),
        cells_per_line_(cells_per_line),
        age_sampler_(shared_sampler(false, env.geometry.total_cells(),
                                    interval_s, nu)) {}

  double cells_per_line() const override { return cells_per_line_; }
  double scrub_interval_seconds() const override { return interval_s_; }

  ReadOutcome on_read(std::uint64_t line, Ns now, bool archive) override {
    LineState& st = state_of(line, now, archive);
    const unsigned errors = sample_r_errors(line, st, now);
    if (errors > kDetectable) {
      ++counters_.silent_corruptions;
    } else if (errors > kCorrectable) {
      ++counters_.detected_uncorrectable;
    }
    ++counters_.r_reads;
    add_read_energy(ReadMode::kRRead);
    return ReadOutcome{ReadMode::kRRead, env().timing.r_read, false};
  }

  ScrubOutcome on_scrub(Ns, unsigned lines) override {
    ++counters_.scrub_senses;
    // One row activation senses `lines` lines worth of bits, internally.
    counters_.scrub_energy_pj += env().energy.r_read.v *
                                 env().energy.internal_sense_scale *
                                 static_cast<double>(lines);
    ScrubOutcome s;
    s.sense_latency = env().timing.r_read;
    s.rewrites =
        nu_ == 0
            ? lines
            : rng().binomial(lines, age_sampler_.rewrite_probability());
    return s;
  }

  WriteOutcome on_scrub_rewrite(Ns) override {
    ++counters_.scrub_rewrites;
    WriteOutcome w;
    w.latency = env().timing.write;
    w.cells_written = env().geometry.total_cells();
    counters_.cell_writes += w.cells_written;
    counters_.scrub_energy_pj +=
        env().energy.cell_write.v * static_cast<double>(w.cells_written);
    return w;
  }

 protected:
  double sample_initial_age(std::uint64_t line, bool archive,
                            FirstTouch touch, Rng& r) override {
    return std::min(sample_workload_age(line, archive, touch, r),
                    age_sampler_.sample(r));
  }

 private:
  double interval_s_;
  unsigned nu_;
  double cells_per_line_;
  const ScrubAgeSampler& age_sampler_;
};

// --------------------------------------------------------- M-metric ------

class MMetricScheme : public SchemeBase {
 public:
  MMetricScheme(const SchemeEnv& env, double interval_s)
      : SchemeBase("M-metric", env),
        interval_s_(interval_s),
        age_sampler_(shared_sampler(true, env.geometry.total_cells(),
                                    interval_s, /*nu=*/1)) {}

  double cells_per_line() const override { return kMlcCells; }
  double scrub_interval_seconds() const override { return interval_s_; }

  ReadOutcome on_read(std::uint64_t line, Ns now, bool archive) override {
    LineState& st = state_of(line, now, archive);
    const unsigned errors = sample_m_errors(st, now);
    if (errors > kCorrectable) ++counters_.detected_uncorrectable;
    ++counters_.m_reads;
    add_read_energy(ReadMode::kMRead);
    return ReadOutcome{ReadMode::kMRead, env().timing.m_read, false};
  }

  ScrubOutcome on_scrub(Ns, unsigned lines) override {
    ++counters_.scrub_senses;
    counters_.scrub_energy_pj += env().energy.m_read.v *
                                 env().energy.internal_sense_scale *
                                 static_cast<double>(lines);
    ScrubOutcome s;
    s.sense_latency = env().timing.m_read;
    s.rewrites = rng().binomial(lines, age_sampler_.rewrite_probability());
    return s;
  }

  WriteOutcome on_scrub_rewrite(Ns) override {
    ++counters_.scrub_rewrites;
    WriteOutcome w;
    w.latency = env().timing.write;
    w.cells_written = env().geometry.total_cells();
    counters_.cell_writes += w.cells_written;
    counters_.scrub_energy_pj +=
        env().energy.cell_write.v * static_cast<double>(w.cells_written);
    return w;
  }

 protected:
  double sample_initial_age(std::uint64_t line, bool archive,
                            FirstTouch touch, Rng& r) override {
    return std::min(sample_workload_age(line, archive, touch, r),
                    age_sampler_.sample(r));
  }

 private:
  double interval_s_;
  const ScrubAgeSampler& age_sampler_;
};

// ----------------------------------------------------------- Hybrid ------

class HybridScheme : public SchemeBase {
 public:
  HybridScheme(const SchemeEnv& env, double interval_s)
      : SchemeBase("Hybrid", env), interval_s_(interval_s) {}

  double cells_per_line() const override { return kMlcCells; }
  double scrub_interval_seconds() const override { return interval_s_; }

  ReadOutcome on_read(std::uint64_t line, Ns now, bool archive) override {
    LineState& st = state_of(line, now, archive);
    const unsigned errors = sample_r_errors(line, st, now);
    if (errors <= kCorrectable) {
      ++counters_.r_reads;
      add_read_energy(ReadMode::kRRead);
      return ReadOutcome{ReadMode::kRRead, env().timing.r_read, false};
    }
    if (errors <= kDetectable) {
      ++counters_.rm_reads;
      add_read_energy(ReadMode::kRMRead);
      return ReadOutcome{ReadMode::kRMRead, env().timing.rm_read, false};
    }
    // More than 17 errors cannot be told apart from clean data: silent.
    ++counters_.silent_corruptions;
    ++counters_.r_reads;
    add_read_energy(ReadMode::kRRead);
    return ReadOutcome{ReadMode::kRRead, env().timing.r_read, false};
  }

  ScrubOutcome on_scrub(Ns, unsigned lines) override {
    // (BCH8, S=640, W=0): sense with M, rewrite every line of the row.
    ++counters_.scrub_senses;
    counters_.scrub_energy_pj += env().energy.m_read.v *
                                 env().energy.internal_sense_scale *
                                 static_cast<double>(lines);
    ScrubOutcome s;
    s.sense_latency = env().timing.m_read;
    s.rewrites = lines;
    return s;
  }

  WriteOutcome on_scrub_rewrite(Ns) override {
    ++counters_.scrub_rewrites;
    WriteOutcome w;
    w.latency = env().timing.write;
    w.cells_written = env().geometry.total_cells();
    counters_.cell_writes += w.cells_written;
    counters_.scrub_energy_pj +=
        env().energy.cell_write.v * static_cast<double>(w.cells_written);
    return w;
  }

 protected:
  double sample_initial_age(std::uint64_t line, bool archive,
                            FirstTouch touch, Rng& r) override {
    // W = 0 rewrites every line each scrub: age is uniform in [0, S),
    // further bounded by the workload's own write recency.
    return std::min(sample_workload_age(line, archive, touch, r),
                    r.uniform() * interval_s_);
  }

 private:
  double interval_s_;
};

// -------------------------------------------------------------- LWT ------

class LwtScheme : public SchemeBase {
 public:
  LwtScheme(const SchemeEnv& env, const ReadDuoOptions& opts,
            double interval_s, std::string name)
      : SchemeBase(std::move(name), env),
        opts_(opts),
        interval_s_(interval_s),
        sub_interval_s_(interval_s / opts.k),
        age_sampler_(shared_sampler(true, env.geometry.total_cells(),
                                    interval_s, /*nu=*/1)),
        controller_([&] {
          ConversionController::Config c = opts.controller;
          c.enabled = opts.conversion;
          return c;
        }()) {}

  double cells_per_line() const override {
    // 296 MLC cells + (k + log2 k) SLC flag bits, one SLC cell each.
    return kMlcCells + static_cast<double>(LwtFlags(opts_.k).flag_bits());
  }
  double scrub_interval_seconds() const override { return interval_s_; }

  ReadOutcome on_read(std::uint64_t line, Ns now, bool archive) override {
    LineState& st = state_of(line, now, archive);
    const unsigned s = label_of(line, now.seconds());
    // Flag-corruption faults strike the SLC flag cells *before* the
    // controller consults them — the protocol's stale-bit hygiene is what
    // keeps a flipped bit from green-lighting an unsafe R-sense.
    if (const faults::FaultEngine* fe = faults()) {
      if (auto bit = fe->lwt_vector_flip(line, now, opts_.k)) {
        st.flags.corrupt_vector_bit(*bit);
        ++counters_.injected_faults;
      }
      if (auto idx = fe->lwt_index_overwrite(line, now, opts_.k)) {
        st.flags.corrupt_index(*idx);
        ++counters_.injected_faults;
      }
    }
    const bool tracked = st.flags.tracked_for_read(s);
    controller_.record_read(!tracked, tracked && st.converted);

    if (tracked) {
      const unsigned errors = sample_r_errors(line, st, now);
      if (errors <= kCorrectable) {
        ++counters_.r_reads;
        add_read_energy(ReadMode::kRRead);
        return ReadOutcome{ReadMode::kRRead, env().timing.r_read, false};
      }
      if (errors <= kDetectable) {
        ++counters_.rm_reads;
        add_read_energy(ReadMode::kRMRead);
        return ReadOutcome{ReadMode::kRMRead, env().timing.rm_read, false};
      }
      ++counters_.silent_corruptions;
      ++counters_.r_reads;
      add_read_energy(ReadMode::kRRead);
      return ReadOutcome{ReadMode::kRRead, env().timing.r_read, false};
    }

    // Un-tracked: R-sensing unsafe; flag check aborts it and the M retry
    // services the read (R-M-read, 600 ns).
    ++counters_.untracked_reads;
    ++counters_.rm_reads;
    add_read_energy(ReadMode::kRMRead);
    ReadOutcome out{ReadMode::kRMRead, env().timing.rm_read, false};
    if (controller_.should_convert()) {
      ++counters_.converted_reads;
      controller_.record_conversion();
      out.convert_to_write = true;
    }
    return out;
  }

  WriteOutcome on_write(std::uint64_t line, Ns now) override {
    WriteOutcome w = SchemeBase::on_write(line, now);
    track_full_write(line, now);
    return w;
  }

  WriteOutcome on_converted_write(std::uint64_t line, Ns now) override {
    WriteOutcome w = SchemeBase::on_converted_write(line, now);
    track_full_write(line, now);
    state_of(line, now, false).converted = true;
    return w;
  }

  ScrubOutcome on_scrub(Ns, unsigned lines) override {
    ++counters_.scrub_senses;
    counters_.scrub_energy_pj += env().energy.m_read.v *
                                 env().energy.internal_sense_scale *
                                 static_cast<double>(lines);
    ScrubOutcome s;
    s.sense_latency = env().timing.m_read;
    s.rewrites = rng().binomial(lines, age_sampler_.rewrite_probability());
    return s;
  }

  WriteOutcome on_scrub_rewrite(Ns) override {
    ++counters_.scrub_rewrites;
    WriteOutcome w;
    w.latency = env().timing.write;
    w.cells_written = env().geometry.total_cells();
    counters_.cell_writes += w.cells_written;
    counters_.scrub_energy_pj +=
        env().energy.cell_write.v * static_cast<double>(w.cells_written);
    return w;
  }

  unsigned t_percent() const { return controller_.t_percent(); }

 protected:
  double sample_initial_age(std::uint64_t line, bool archive,
                            FirstTouch touch, Rng& r) override {
    // W = 1 M-metric scrubbing almost never rewrites: ages are bounded by
    // the workload's write recency (archive lines stay old — the LWT
    // mechanism exists precisely for them).
    return std::min(sample_workload_age(line, archive, touch, r),
                    age_sampler_.sample(r));
  }

  void init_line(LineState& st, std::uint64_t line, Ns now, bool) override {
    st.flags = LwtFlags(opts_.k);
    replay_flags(st, line, now.seconds());
  }

  /// The line's scrub phase in [0, S): scrubs fire when
  /// (t - phase) mod S == 0, and label 0 starts at each scrub.
  double phase_of(std::uint64_t line) const {
    // splitmix64 hash for a deterministic, well-spread phase.
    std::uint64_t z = line + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<double>(z % 1000000ull) * 1e-6 * interval_s_;
  }

  /// Sub-interval label of time t for this line (relative to its cycle).
  unsigned label_of(std::uint64_t line, double t_s) const {
    double rel = std::fmod(t_s - phase_of(line), interval_s_);
    if (rel < 0) rel += interval_s_;
    unsigned label = static_cast<unsigned>(rel / sub_interval_s_);
    return std::min(label, opts_.k - 1);
  }

  /// Reconstruct the flag state by replaying the protocol: the last full
  /// write at st.last_full_write_s, then every scrub between it and now.
  void replay_flags(LineState& st, std::uint64_t line, double now_s) {
    const double tw = st.last_full_write_s;
    const double phase = phase_of(line);
    const auto cycles_before = [&](double t) {
      return static_cast<long long>(std::floor((t - phase) / interval_s_));
    };
    const long long n_scrubs =
        std::max(0ll, cycles_before(now_s) - cycles_before(tw));
    st.flags.on_write(label_of(line, tw));
    // Two scrubs with no intervening write zero the vector flag; replaying
    // more changes nothing.
    for (long long i = 0; i < std::min(n_scrubs, 2ll); ++i) {
      st.flags.on_scrub(/*rewrote=*/false);
    }
  }

  void track_full_write(std::uint64_t line, Ns now) {
    LineState& st = state_of(line, now, false);
    st.flags.on_write(label_of(line, now.seconds()));
  }

  const ReadDuoOptions opts_;
  const double interval_s_;
  const double sub_interval_s_;
  const ScrubAgeSampler& age_sampler_;
  ConversionController controller_;
};

// ------------------------------------------------------------ Select -----

class SelectScheme : public LwtScheme {
 public:
  SelectScheme(const SchemeEnv& env, const ReadDuoOptions& opts,
               double interval_s, std::string name)
      : LwtScheme(env, opts, interval_s, std::move(name)) {}

  WriteOutcome on_write(std::uint64_t line, Ns now) override {
    LineState& st = state_of(line, now, false, FirstTouch::kWrite);
    const double window =
        static_cast<double>(opts_.select_s) * sub_interval_s_;
    const double since_full = now.seconds() - st.last_full_write_s;
    if (since_full >= 0.0 && since_full < window) {
      // Differential write: program only modified cells plus the drifted
      // cells found by the pre-write read. The full-write clock (and the
      // LWT flags) deliberately stay put: R-sensing reliability is
      // measured from the last full write (Section III-D).
      const unsigned n = env().geometry.total_cells();
      unsigned cells = rng().binomial(n, opts_.changed_cell_fraction) +
                       sample_r_errors(line, st, now);
      cells = std::min(cells, n);
      st.last_write_s = now.seconds();
      ++counters_.demand_diff_writes;
      counters_.cell_writes += cells;
      counters_.write_energy_pj +=
          env().energy.cell_write.v * static_cast<double>(cells);
      WriteOutcome w;
      w.latency = env().timing.write;
      w.cells_written = cells;
      w.full_line = false;
      return w;
    }
    return LwtScheme::on_write(line, now);
  }
};

}  // namespace

std::string scheme_name(SchemeKind kind, const ReadDuoOptions& opts) {
  switch (kind) {
    case SchemeKind::kIdeal: return "Ideal";
    case SchemeKind::kTlc: return "TLC";
    case SchemeKind::kScrubbing: return "Scrubbing";
    case SchemeKind::kScrubbingW0: return "Scrubbing-W0";
    case SchemeKind::kScrubbingBch10: return "Scrubbing-BCH10";
    case SchemeKind::kMMetric: return "M-metric";
    case SchemeKind::kHybrid: return "Hybrid";
    case SchemeKind::kLwt: return "LWT-" + std::to_string(opts.k);
    case SchemeKind::kSelect:
      return "Select-" + std::to_string(opts.k) + ":" +
             std::to_string(opts.select_s);
  }
  RD_CHECK_MSG(false, "unknown scheme kind");
  return {};
}

std::unique_ptr<Scheme> make_scheme(SchemeKind kind, const SchemeEnv& env,
                                    const ReadDuoOptions& opts,
                                    const ScrubSettings& scrub) {
  switch (kind) {
    case SchemeKind::kIdeal:
      return std::make_unique<IdealScheme>(env);
    case SchemeKind::kTlc:
      return std::make_unique<TlcScheme>(env);
    case SchemeKind::kScrubbing:
      return std::make_unique<ScrubbingScheme>(env, scrub.r_interval_s,
                                               /*nu=*/1, "Scrubbing");
    case SchemeKind::kScrubbingW0:
      return std::make_unique<ScrubbingScheme>(env, scrub.r_interval_s,
                                               /*nu=*/0, "Scrubbing-W0");
    case SchemeKind::kScrubbingBch10:
      // 512 data + 100 parity bits = 306 cells; W=1 is reliable with the
      // stronger code (Table V).
      return std::make_unique<ScrubbingScheme>(env, scrub.r_interval_s,
                                               /*nu=*/1, "Scrubbing-BCH10",
                                               306.0);
    case SchemeKind::kMMetric:
      return std::make_unique<MMetricScheme>(env, scrub.m_interval_s);
    case SchemeKind::kHybrid:
      return std::make_unique<HybridScheme>(env, scrub.m_interval_s);
    case SchemeKind::kLwt:
      return std::make_unique<LwtScheme>(env, opts, scrub.m_interval_s,
                                         scheme_name(kind, opts));
    case SchemeKind::kSelect:
      return std::make_unique<SelectScheme>(env, opts, scrub.m_interval_s,
                                            scheme_name(kind, opts));
  }
  RD_CHECK_MSG(false, "unknown scheme kind");
  return nullptr;
}

}  // namespace rd::readduo
