// Last-Writes-Tracking flag protocol (Section III-C, Figure 5).
//
// Each memory line carries a k-bit vector-flag and a log2(k)-bit
// index-flag, stored as drift-free SLC in the ECC chip. Time is divided
// into sub-intervals of length S/k labelled 0..k-1 relative to the line's
// own scrub cycle (the line is scrubbed at the start of its label-0
// sub-interval). The protocol guarantees: tracked_for_read() returns true
// only if the line was written (or scrub-rewritten) within the last
// scrubbing interval S — the window in which R-sensing is reliable.
#pragma once

#include <cstdint>

#include "common/check.h"

namespace rd::readduo {

/// Flag state of one line under ReadDuo-LWT-k.
class LwtFlags {
 public:
  /// Requires k a power of two in [2, 32] (log2 k index bits).
  explicit LwtFlags(unsigned k = 4);

  unsigned k() const { return k_; }
  std::uint32_t vector_flag() const { return vec_; }
  unsigned index_flag() const { return ind_; }

  /// A (full-line) write in the sub-interval labelled s.
  void on_write(unsigned s);

  /// The line's periodic scrub, which by construction happens at the start
  /// of sub-interval 0. `rewrote` says whether the scrub re-wrote the line.
  void on_scrub(bool rewrote);

  /// Decide the readout mode for a read in sub-interval s: true means
  /// R-sensing is safe (a write within the last S seconds is tracked);
  /// false means the controller must use M-sensing.
  bool tracked_for_read(unsigned s) const;

  /// Storage cost in SLC bits: k vector bits + log2(k) index bits.
  unsigned flag_bits() const { return k_ + log2k_; }

  /// Fault-injection seams (READDUO_FAULTS lwt-vec / lwt-ind): flip one
  /// vector bit / overwrite the index flag, as a disturbed SLC flag cell
  /// would. The protocol's worst case is a spuriously *set* stale bit —
  /// tracked_for_read()'s case (iii) discard logic is what keeps a
  /// corrupted flag from green-lighting an unsafe R-sense.
  void corrupt_vector_bit(unsigned bit);
  void corrupt_index(unsigned index);

 private:
  /// Clear vector bits with labels in the cyclic open range (from, to).
  void clear_between(unsigned from, unsigned to);

  unsigned k_;
  unsigned log2k_;
  std::uint32_t vec_ = 0;
  unsigned ind_ = 0;
};

}  // namespace rd::readduo
