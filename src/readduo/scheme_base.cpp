#include "readduo/scheme_base.h"

#include <cmath>

#include "common/check.h"
#include "config/loader.h"
#include "faults/injector.h"

namespace rd::readduo {

SchemeBase::SchemeBase(std::string name, SchemeEnv env)
    : name_(std::move(name)),
      env_(env),
      faults_(env.faults != nullptr ? env.faults : faults::engine()),
      rng_(env.seed) {}

// The shared models latch the process-wide device (READDUO_DEVICE /
// --device) on first use; under the builtin device the configurations are
// bit-identical to the old hard-coded drift::r_metric()/m_metric().
const drift::ErrorModel& SchemeBase::r_model() {
  static const drift::ErrorModel model(config::active_device().r_metric);
  return model;
}

const drift::ErrorModel& SchemeBase::m_model() {
  static const drift::ErrorModel model(config::active_device().m_metric);
  return model;
}

const drift::CellErrorTable& SchemeBase::r_table() {
  static const drift::CellErrorTable table(r_model());
  return table;
}

const drift::CellErrorTable& SchemeBase::m_table() {
  static const drift::CellErrorTable table(m_model());
  return table;
}

double SchemeBase::sample_workload_age(std::uint64_t line, bool archive,
                                       FirstTouch touch, Rng& rng) const {
  double u = rng.uniform();
  while (u <= 0.0) u = rng.uniform();
  if (archive) {
    return std::min(-env_.archive_age_scale_s * std::log(u), env_.max_age_s);
  }

  if (touch == FirstTouch::kWrite) {
    // Write instants sample lines by write renewal: log-uniform ages over
    // many decades (streaming writes, cold allocations, periodic sweeps).
    const double lo = std::log(env_.write_age_min_s);
    const double hi = std::log(env_.write_age_max_s);
    return std::exp(lo + rng.uniform() * (hi - lo));
  }

  double mean = env_.mean_working_age_s;
  if (env_.footprint_lines > 0 && env_.per_core_write_rate > 0.0) {
    // Read instants are biased toward currently-active data: exponential
    // age with the per-line write rate from the line's Zipf popularity
    // rank (continuous approximation; requires zipf_s < 1).
    const double f = static_cast<double>(env_.footprint_lines);
    const std::uint64_t slice = env_.footprint_lines + env_.archive_lines;
    const double rank = static_cast<double>(line % slice) + 1.0;
    const double s = env_.zipf_s;
    const double weight =
        s > 0.0 ? (1.0 - s) * std::pow(rank, -s) / std::pow(f, 1.0 - s)
                : 1.0 / f;
    const double rate = env_.per_core_write_rate * weight;
    mean = rate > 0.0 ? 1.0 / rate : env_.max_age_s;
  }
  return std::min(-mean * std::log(u), env_.max_age_s);
}

void SchemeBase::init_line(LineState&, std::uint64_t, Ns, bool) {}

LineState& SchemeBase::state_of(std::uint64_t line, Ns now, bool archive,
                                FirstTouch touch) {
  auto it = lines_.find(line);
  if (it == lines_.end()) {
    LineState st;
    const double age = sample_initial_age(line, archive, touch, rng_);
    st.last_write_s = now.seconds() - age;
    st.last_full_write_s = st.last_write_s;
    it = lines_.emplace(line, st).first;
    init_line(it->second, line, now, archive);
  }
  return it->second;
}

unsigned SchemeBase::sample_r_errors(std::uint64_t line,
                                     const LineState& st, Ns now) {
  const double age = now.seconds() - st.last_full_write_s;
  const double p = r_table().prob(age);
  unsigned errors = rng_.binomial(env_.geometry.total_cells(), p);
  if (faults_ != nullptr) {
    const unsigned extra =
        faults_->extra_r_errors(line, now, env_.geometry.total_cells());
    if (extra > 0) {
      counters_.injected_faults += extra;
      errors = std::min(errors + extra, env_.geometry.total_cells());
    }
  }
  return errors;
}

unsigned SchemeBase::sample_m_errors(const LineState& st, Ns now) {
  const double age = now.seconds() - st.last_full_write_s;
  const double p = m_table().prob(age);
  return rng_.binomial(env_.geometry.total_cells(), p);
}

WriteOutcome SchemeBase::full_write(LineState& st, Ns now) {
  st.last_write_s = now.seconds();
  st.last_full_write_s = now.seconds();
  WriteOutcome w;
  w.latency = env_.timing.write;
  w.cells_written = env_.geometry.total_cells();
  w.full_line = true;
  counters_.cell_writes += w.cells_written;
  return w;
}

WriteOutcome SchemeBase::on_write(std::uint64_t line, Ns now) {
  LineState& st = state_of(line, now, /*archive=*/false, FirstTouch::kWrite);
  WriteOutcome w = full_write(st, now);
  ++counters_.demand_full_writes;
  counters_.write_energy_pj +=
      env_.energy.cell_write.v * static_cast<double>(w.cells_written);
  return w;
}

WriteOutcome SchemeBase::on_converted_write(std::uint64_t line, Ns now) {
  LineState& st = state_of(line, now, /*archive=*/false);
  WriteOutcome w = full_write(st, now);
  ++counters_.conversion_writes;
  counters_.write_energy_pj +=
      env_.energy.cell_write.v * static_cast<double>(w.cells_written);
  return w;
}

void SchemeBase::add_read_energy(ReadMode mode) {
  switch (mode) {
    case ReadMode::kRRead:
      counters_.read_energy_pj += env_.energy.r_read.v;
      break;
    case ReadMode::kMRead:
      counters_.read_energy_pj += env_.energy.m_read.v;
      break;
    case ReadMode::kRMRead:
      counters_.read_energy_pj +=
          env_.energy.r_read.v + env_.energy.m_read.v;
      break;
  }
}

}  // namespace rd::readduo
