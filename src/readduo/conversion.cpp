#include "readduo/conversion.h"

#include <algorithm>

namespace rd::readduo {

ConversionController::ConversionController(Config cfg)
    : cfg_(cfg), t_(cfg.enabled ? cfg.initial_t : 0) {}

void ConversionController::record_read(bool untracked, bool hit_converted) {
  if (!cfg_.enabled) return;
  ++epoch_total_;
  if (untracked) ++epoch_untracked_;
  if (hit_converted) ++epoch_benefit_;
  if (epoch_total_ < cfg_.epoch_reads) return;

  const double p = static_cast<double>(epoch_untracked_) /
                   static_cast<double>(epoch_total_);
  const unsigned floor = std::min(cfg_.floor_t, 100u);
  if (p > cfg_.high_watermark) {
    // Converted data is not becoming tracked-and-read: back off.
    t_ = t_ >= floor + 10 ? t_ - 10 : floor;
  } else if (epoch_conversions_ > 0) {
    const double benefit = static_cast<double>(epoch_benefit_) /
                           static_cast<double>(epoch_conversions_);
    if (benefit >= cfg_.benefit_high) {
      t_ = std::min(t_ + 10, 100u);
    } else if (benefit < cfg_.benefit_low) {
      t_ = t_ >= floor + 10 ? t_ - 10 : floor;
    }
  }
  epoch_total_ = 0;
  epoch_untracked_ = 0;
  epoch_benefit_ = 0;
  epoch_conversions_ = 0;
}

bool ConversionController::should_convert() {
  if (!cfg_.enabled || t_ == 0) return false;
  // Rotating decile counter: of every 10 candidates, the first T/10
  // convert. Deterministic and exact at the step-10 granularity.
  const std::uint64_t slot = convert_counter_++ % 10;
  return slot < t_ / 10;
}

}  // namespace rd::readduo
