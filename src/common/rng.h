// Deterministic pseudo-random number generation.
//
// All stochastic components of the simulator draw from rd::Rng, a
// xoshiro256** generator with explicit seeding, so every experiment is
// reproducible bit-for-bit from its seed. Distribution helpers cover the
// needs of the device model and trace generators.
#pragma once

#include <cstdint>
#include <limits>

namespace rd {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
///
/// Satisfies UniformRandomBitGenerator, so it also composes with <random>
/// distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Stream constructor: a decorrelated generator for sub-stream `stream`
  /// of `seed`. Used by parallel Monte-Carlo shards — Rng(seed, shard)
  /// depends only on (seed, shard), never on thread count or execution
  /// order, which is what makes sharded sampling bit-reproducible.
  /// Note Rng(seed, 0) is a different stream than Rng(seed).
  Rng(std::uint64_t seed, std::uint64_t stream) { reseed(seed, stream); }

  /// Re-initialize the state from a 64-bit seed (splitmix64 expansion).
  void reseed(std::uint64_t seed);

  /// Re-initialize from a (seed, stream) pair; see the stream constructor.
  void reseed(std::uint64_t seed, std::uint64_t stream);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  std::uint64_t operator()() { return next(); }
  std::uint64_t next();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_below(std::uint64_t n);

  /// Standard normal via Box–Muller (stateless variant; no cached spare so
  /// the stream position is call-count deterministic).
  double normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mu, double sigma);

  /// Normal truncated to [mu - c*sigma, mu + c*sigma] via rejection.
  /// Requires c > 0; for the c ~ 2.7 used by the device model the rejection
  /// rate is < 1%.
  double truncated_normal(double mu, double sigma, double c);

  /// Bernoulli(p).
  bool bernoulli(double p) { return uniform() < p; }

  /// Binomial(n, p). Exact inversion for small n*p, normal approximation
  /// with continuity correction beyond (n*p > 50), suitable for sampling
  /// drift-error counts where p is tiny and n is a few hundred.
  std::uint32_t binomial(std::uint32_t n, double p);

  /// Geometric: number of failures before first success, P(success) = p.
  /// Requires p in (0, 1].
  std::uint64_t geometric(double p);

  /// Sample from Zipf distribution over {0, .., n-1} with exponent s >= 0
  /// (s = 0 degenerates to uniform). Uses rejection-inversion (Hörmann),
  /// O(1) per draw.
  std::uint64_t zipf(std::uint64_t n, double s);

 private:
  std::uint64_t s_[4];
};

}  // namespace rd
