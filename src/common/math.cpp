#include "common/math.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <mutex>

#include "common/check.h"

namespace rd {

double log_add(double a, double b) {
  if (a <= kNegInf) return b;
  if (b <= kNegInf) return a;
  if (a < b) std::swap(a, b);
  return a + std::log1p(std::exp(b - a));
}

double log_choose(std::uint64_t n, std::uint64_t k) {
  RD_CHECK(k <= n);
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x * M_SQRT1_2); }

double normal_sf(double x) { return 0.5 * std::erfc(x * M_SQRT1_2); }

double log_normal_sf(double x) {
  if (x < 30.0) {
    const double sf = normal_sf(x);
    if (sf > 0.0) return std::log(sf);
  }
  // Asymptotic expansion: Q(x) ~ phi(x)/x * (1 - 1/x^2 + 3/x^4 - 15/x^6).
  const double x2 = x * x;
  const double series = 1.0 - 1.0 / x2 + 3.0 / (x2 * x2) - 15.0 / (x2 * x2 * x2);
  return -0.5 * x2 - 0.5 * std::log(2.0 * M_PI) - std::log(x) +
         std::log(series);
}

double truncated_normal_tail(double mu, double sigma, double c, double t) {
  RD_CHECK(sigma > 0.0);
  RD_CHECK(c > 0.0);
  const double z = (t - mu) / sigma;
  if (z >= c) return 0.0;
  if (z <= -c) return 1.0;
  // Difference of survival functions: erfc keeps good relative accuracy for
  // large positive arguments, which matters in the guard-band sliver where
  // z is close to c.
  const double mass = 1.0 - 2.0 * normal_sf(c);
  const double tail = normal_sf(z) - normal_sf(c);
  const double p = tail / mass;
  return std::clamp(p, 0.0, 1.0);
}

double log_binomial_pmf(std::uint64_t n, std::uint64_t k, double log_p) {
  RD_CHECK(k <= n);
  if (log_p <= kNegInf) return k == 0 ? 0.0 : kNegInf;
  const double p = std::exp(log_p);
  RD_CHECK(p <= 1.0);
  // log(1-p) computed stably even when p is tiny.
  const double log_1mp = (p < 1.0) ? std::log1p(-p) : kNegInf;
  if (p >= 1.0) return k == n ? 0.0 : kNegInf;
  return log_choose(n, k) + static_cast<double>(k) * log_p +
         static_cast<double>(n - k) * log_1mp;
}

double log_binomial_tail_gt(std::uint64_t n, std::uint64_t k, double log_p) {
  if (k >= n) return kNegInf;  // P(X > n) = 0
  if (log_p <= kNegInf) return kNegInf;
  double acc = kNegInf;
  for (std::uint64_t j = k + 1; j <= n; ++j) {
    const double term = log_binomial_pmf(n, j, log_p);
    acc = log_add(acc, term);
    // Terms decay geometrically once past the mode; stop when negligible.
    if (term < acc - 60.0 && j > k + 4) break;
  }
  return std::min(acc, 0.0);
}

namespace {

QuadratureRule make_gauss_legendre(std::size_t n) {
  // Newton iteration on Legendre polynomials; standard Golub-free approach,
  // adequate for the modest orders used here.
  QuadratureRule rule;
  rule.nodes.resize(n);
  rule.weights.resize(n);
  const std::size_t m = (n + 1) / 2;
  for (std::size_t i = 0; i < m; ++i) {
    // Initial guess: Chebyshev-like.
    double x = std::cos(M_PI * (static_cast<double>(i) + 0.75) /
                        (static_cast<double>(n) + 0.5));
    double pp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // Evaluate P_n(x) and derivative by recurrence.
      double p0 = 1.0, p1 = x;
      for (std::size_t j = 2; j <= n; ++j) {
        const double p2 = ((2.0 * static_cast<double>(j) - 1.0) * x * p1 -
                           (static_cast<double>(j) - 1.0) * p0) /
                          static_cast<double>(j);
        p0 = p1;
        p1 = p2;
      }
      pp = static_cast<double>(n) * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / pp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    rule.nodes[i] = -x;
    rule.nodes[n - 1 - i] = x;
    const double w = 2.0 / ((1.0 - x * x) * pp * pp);
    rule.weights[i] = w;
    rule.weights[n - 1 - i] = w;
  }
  return rule;
}

}  // namespace

const QuadratureRule& gauss_legendre(std::size_t n) {
  constexpr std::size_t kMaxOrder = 256;
  RD_CHECK(n >= 2 && n <= kMaxOrder);
  // One once_flag per order: after initialization every call is a plain
  // read with no lock, so concurrent integrations (parallel bench sweeps,
  // sharded Monte-Carlo) never contend here.
  static std::array<std::once_flag, kMaxOrder + 1> flags;
  static std::array<QuadratureRule, kMaxOrder + 1> rules;
  std::call_once(flags[n], [n] { rules[n] = make_gauss_legendre(n); });
  return rules[n];
}

}  // namespace rd
