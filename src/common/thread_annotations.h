// Thread-safety annotations and the audited locking primitives.
//
// The repo's headline concurrency guarantee — bit-identical readout
// decisions and metrics across READDUO_THREADS — is carried by a small
// set of locking disciplines (per-shard q_mu/sim_mu in src/service/, the
// pool mutex in common/parallel.cpp, the memo caches). This header makes
// those disciplines *compiler-checked*: under Clang the RD_* macros
// expand to the thread-safety-analysis attributes, and
// run_static_analysis.sh builds the tree with
// `-Wthread-safety -Werror=thread-safety`, so touching a guarded field
// outside its lock is a build break, not a TSan roll of the dice. Under
// GCC (and any compiler without the capability analysis) every macro
// expands to nothing and rd::Mutex degrades to a plain std::mutex
// wrapper — zero overhead, identical behavior.
//
// Discipline (enforced by readduo_lint's `no-bare-mutex` rule): outside
// this header, code takes rd::Mutex / rd::MutexLock / rd::CondVar, never
// raw std::mutex / std::lock_guard / std::condition_variable — otherwise
// the annotations cannot see the lock and the analysis is blind.
// `std::atomic` stays allowed everywhere, but every load/store/RMW must
// name an explicit std::memory_order (`atomic-order` rule): seq-cst by
// default hides the author's intent and costs fences on weaker ISAs.
//
// The annotation map — which field is guarded by which capability — is
// documented in DESIGN.md §8.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define RD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RD_THREAD_ANNOTATION(x)  // no-op: GCC has no capability analysis
#endif

/// Declares a type to be a capability ("mutex") the analysis can track.
#define RD_CAPABILITY(x) RD_THREAD_ANNOTATION(capability(x))

/// RAII types that acquire a capability in their constructor and release
/// it in their destructor.
#define RD_SCOPED_CAPABILITY RD_THREAD_ANNOTATION(scoped_lockable)

/// Data members: reads and writes require holding `x`.
#define RD_GUARDED_BY(x) RD_THREAD_ANNOTATION(guarded_by(x))

/// Pointer members: dereferencing requires holding `x` (the pointer
/// itself may be read freely, e.g. a unique_ptr set once at startup).
#define RD_PT_GUARDED_BY(x) RD_THREAD_ANNOTATION(pt_guarded_by(x))

/// Functions: the caller must hold the capability (it is not acquired).
#define RD_REQUIRES(...) \
  RD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Functions that acquire / release a capability themselves.
#define RD_ACQUIRE(...) RD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RD_RELEASE(...) RD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RD_TRY_ACQUIRE(...) \
  RD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Functions: the caller must NOT hold the capability (deadlock guard for
/// functions that acquire it internally).
#define RD_EXCLUDES(...) RD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch for functions whose locking is deliberately outside the
/// analysis (must carry a comment saying why).
#define RD_NO_THREAD_SAFETY_ANALYSIS \
  RD_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace rd {

/// The repo's mutex: std::mutex carrying the `capability` attribute so
/// RD_GUARDED_BY(my_mu) participates in the analysis. Same size, same
/// cost — the attribute is compile-time only.
class RD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RD_ACQUIRE() { mu_.lock(); }
  void unlock() RD_RELEASE() { mu_.unlock(); }
  bool try_lock() RD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for rd::Mutex (the std::scoped_lock of this codebase). A
/// scoped capability: the analysis knows the capability is held between
/// construction and destruction.
class RD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RD_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RD_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over rd::Mutex. Built on condition_variable_any so
/// waits keep the capability type the analysis understands; wait() is
/// annotated RD_REQUIRES(mu), so waiting without the lock is a compile
/// error under Clang. Callers open-code their predicate loops
/// (`while (!pred) cv.wait(mu);`) — a predicate lambda would be analyzed
/// as an unannotated function and falsely flagged for reading guarded
/// state.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  /// Atomically release `mu`, sleep, and reacquire before returning.
  void wait(Mutex& mu) RD_REQUIRES(mu) { cv_.wait(mu); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace rd
