// SIMD lane kernels behind KernelMode::kVectorized (DESIGN.md §10.5).
//
// Dependency-free raw-pointer kernels so the ECC, drift and PCM layers can
// share one pair of ISA translation units. Each kernel exists per ISA in
// its own TU (simd_avx2.cpp / simd_sse42.cpp) compiled with that ISA's
// flags and -ffp-contract=off — the rest of the build never sees
// -mavx2/-msse4.2, so baseline code cannot silently pick up illegal
// instructions, and no FMA contraction can change FP results. On a
// toolchain where CMake's flag probe fails (non-x86 cross builds), the
// TUs compile to RD_CHECK stubs and have_*_kernels() returns false, so
// dispatch (common/kernels.h simd_level()) never reaches them.
//
// Contracts:
//   * integer kernels (syndrome XOR accumulation, Chien stepping) are
//     exactly the optimized kernels' arithmetic — XOR and modular adds
//     are order-insensitive, so outputs are bit-identical;
//   * the drift-metric kernel executes the same unfused a*b+c expression
//     tree as Cell::metric_at_logt / Cell::level_from_metric; lane
//     doubles match the scalar path to the bit except that an undrifted
//     cell evaluates x0 + alpha*0.0 (which may turn -0.0 into +0.0) —
//     level decisions are bit-identical either way.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rd::simd {

/// True when this binary carries the AVX2 / SSE4.2 kernel bodies
/// (i.e. CMake found the compiler flags). Host support is checked
/// separately at runtime by rd::simd_level().
bool have_avx2_kernels();
bool have_sse42_kernels();

// --- batched GF(2^m) syndrome accumulation --------------------------------
//
// XOR-accumulate the position-major syndrome table rows of every set bit
// of a codeword into `acc`. `words` is the codeword's packed 64-bit words
// (nbits valid bits); bit -> polynomial position follows the shortened
// systematic layout: bit < data_bits is data (pos = parity_bits + bit),
// else parity (pos = bit - data_bits). `table` holds `stride` lanes per
// position (odd syndromes first, zero-padded); stride must be a multiple
// of 8 and `acc` must hold `stride` lanes.

void bch_syndrome_acc_avx2(const std::uint64_t* words, std::size_t nbits,
                           unsigned data_bits, unsigned parity_bits,
                           const std::uint32_t* table, std::size_t stride,
                           std::uint32_t* acc);
void bch_syndrome_acc_sse42(const std::uint64_t* words, std::size_t nbits,
                            unsigned data_bits, unsigned parity_bits,
                            const std::uint32_t* table, std::size_t stride,
                            std::uint32_t* acc);

// --- lane-parallel Chien stepping -----------------------------------------
//
// Scan positions [0, scan) of the error locator, 8 positions per step:
// term i contributes exp_table[(expo[i] + p * step[i]) mod n] at position
// p, terms XOR together, and p is a root when the lane XOR is zero. Roots
// are appended to out_positions in increasing order, stopping after
// `limit` roots; returns the number found. Exactly the optimized
// incremental Chien arithmetic, eight lanes at a time. AVX2 only (needs
// gather); SSE4.2 hosts run the scalar optimized Chien instead.

std::size_t bch_chien_scan_avx2(const std::uint32_t* exp_table,
                                std::uint32_t n, const std::uint32_t* step,
                                const std::uint32_t* expo, std::size_t terms,
                                std::uint32_t scan, std::size_t limit,
                                std::size_t* out_positions);

// --- vectorized drift-metric evaluation -----------------------------------
//
// SoA inputs, one entry per cell: programmed level (int32, < 4), the
// programming percentile z_program, the drift percentile z_alpha, and the
// per-cell log10(age / t0) (0.0 for undrifted cells). `params` packs the
// per-level drift law and the read boundaries:
//   params[0..3]   mu[level]          params[4..7]   sigma[level]
//   params[8..11]  mu_alpha[level]    params[12..15] sigma_alpha[level]
//   params[16..18] upper boundaries b0 <= b1 <= b2 (monotonicity is the
//                  caller's contract; pcm::LevelParams verifies it)
// `offsets` (nullable) adds a per-cell sensing disturbance before the
// boundary compare. out_levels[i] = #{j : x_i > b_j} — identical to
// Cell::level_from_metric for monotone boundaries. Stuck cells are the
// caller's fixup (the kernel does not know about them).

void drift_levels_avx2(std::size_t n, const std::int32_t* level,
                       const double* z_program, const double* z_alpha,
                       const double* log_t, const double* offsets,
                       const double* params, std::uint8_t* out_levels);
void drift_levels_sse42(std::size_t n, const std::int32_t* level,
                        const double* z_program, const double* z_alpha,
                        const double* log_t, const double* offsets,
                        const double* params, std::uint8_t* out_levels);

}  // namespace rd::simd
