// Strict environment-variable parsing.
//
// Every READDUO_* integer knob goes through parse_env_u64 so a typo like
// READDUO_INSTR=6e6 fails loudly instead of silently running the default
// configuration (and mislabelling the resulting numbers).
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace rd {

/// The single audited gateway to the process environment. Every READDUO_*
/// read goes through here (readduo_lint bans raw getenv elsewhere), so the
/// full set of knobs a build responds to is grep-able from one choke point.
inline const char* env_cstr(const char* name) { return std::getenv(name); }

/// Parse `value` (the content of env var `name`) as a base-10 unsigned
/// integer. The whole string must be digits — no sign, whitespace,
/// exponent, or trailing garbage. Throws CheckFailure otherwise.
inline std::uint64_t parse_env_u64(const char* name, const char* value) {
  RD_CHECK_MSG(value != nullptr && *value != '\0',
               "env " << name << " is set but empty");
  for (const char* p = value; *p; ++p) {
    RD_CHECK_MSG(*p >= '0' && *p <= '9',
                 "env " << name << "='" << value
                        << "' is not a plain base-10 integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  RD_CHECK_MSG(errno == 0 && end == value + std::strlen(value),
               "env " << name << "='" << value << "' is out of range");
  return v;
}

}  // namespace rd
