// Lightweight precondition / invariant checking.
//
// RD_CHECK is active in all build types: a violated check is a programming
// error and throws rd::CheckFailure with file/line context so tests can
// assert on misuse of the public API.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rd {

/// Thrown when an RD_CHECK precondition is violated.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace rd

#define RD_CHECK(expr)                                                \
  do {                                                                \
    if (!(expr))                                                      \
      ::rd::detail::check_failed(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define RD_CHECK_MSG(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream rd_check_os_;                                \
      rd_check_os_ << msg;                                            \
      ::rd::detail::check_failed(#expr, __FILE__, __LINE__,           \
                                 rd_check_os_.str());                 \
    }                                                                 \
  } while (0)
