#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace rd {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
  // Guard against the all-zero state, which xoshiro cannot leave.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

void Rng::reseed(std::uint64_t seed, std::uint64_t stream) {
  // Full-avalanche mix of the stream index folded into the seed, so
  // neighbouring (seed, stream) pairs expand to decorrelated states.
  std::uint64_t t = stream;
  reseed(seed ^ splitmix64(t));
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_below(std::uint64_t n) {
  RD_CHECK(n > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  // Box–Muller, discarding the second variate to keep the stream position
  // a pure function of call count.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return r * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mu, double sigma) {
  RD_CHECK(sigma >= 0.0);
  return mu + sigma * normal();
}

double Rng::truncated_normal(double mu, double sigma, double c) {
  RD_CHECK(c > 0.0);
  if (sigma == 0.0) return mu;
  for (;;) {
    const double z = normal();
    if (z >= -c && z <= c) return mu + sigma * z;
  }
}

std::uint32_t Rng::binomial(std::uint32_t n, double p) {
  RD_CHECK(p >= 0.0 && p <= 1.0);
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;

  const double np = static_cast<double>(n) * p;
  if (np > 50.0 && static_cast<double>(n) * (1.0 - p) > 50.0) {
    // Normal approximation with continuity correction.
    const double sd = std::sqrt(np * (1.0 - p));
    double x = std::round(normal(np, sd));
    if (x < 0.0) x = 0.0;
    if (x > static_cast<double>(n)) x = static_cast<double>(n);
    return static_cast<std::uint32_t>(x);
  }

  if (np < 10.0 && p <= 0.5) {
    // Inversion by geometric skips (Devroye): O(np) expected time, exact.
    const double log_q = std::log1p(-p);
    std::uint32_t count = 0;
    double i = -1.0;
    for (;;) {
      double u = uniform();
      while (u <= 0.0) u = uniform();
      i += 1.0 + std::floor(std::log(u) / log_q);
      if (i >= static_cast<double>(n)) return count;
      ++count;
      if (count == n) return n;
    }
  }

  // Moderate np: plain Bernoulli loop (n is at most a few hundred in all
  // call sites that reach this branch).
  std::uint32_t count = 0;
  for (std::uint32_t i = 0; i < n; ++i) count += bernoulli(p) ? 1u : 0u;
  return count;
}

std::uint64_t Rng::geometric(double p) {
  RD_CHECK(p > 0.0 && p <= 1.0);
  if (p == 1.0) return 0;
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  RD_CHECK(n > 0);
  RD_CHECK(s >= 0.0);
  if (n == 1) return 0;
  if (s == 0.0) return uniform_below(n);

  // Hörmann rejection-inversion over ranks 1..n; returns rank-1.
  // H(x) = integral of x^-s; handle s == 1 separately.
  const double nd = static_cast<double>(n);
  auto H = [s](double x) {
    if (s == 1.0) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto H_inv = [s](double u) {
    if (s == 1.0) return std::exp(u);
    return std::pow(1.0 + u * (1.0 - s), 1.0 / (1.0 - s));
  };

  const double h_x1 = H(1.5) - 1.0;       // H(1.5) - f(1)
  const double h_n = H(nd + 0.5);
  for (;;) {
    const double u = h_x1 + uniform() * (h_n - h_x1);
    const double x = H_inv(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > nd) k = nd;
    // Accept if u >= H(k + 0.5) - k^-s.
    if (u >= H(k + 0.5) - std::pow(k, -s)) {
      return static_cast<std::uint64_t>(k) - 1;
    }
  }
}

}  // namespace rd
