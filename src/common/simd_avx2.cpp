// AVX2 bodies of the kVectorized lane kernels (see simd_kernels.h).
//
// This is the only TU compiled with -mavx2 (plus -ffp-contract=off), so
// AVX2 encodings cannot leak into code that runs before the runtime
// dispatch check. When the toolchain cannot compile AVX2 (CMake's flag
// probe failed, non-x86 target), the bodies below become RD_CHECK stubs
// and have_avx2_kernels() reports false, so simd_level() never routes
// here.
#include "common/simd_kernels.h"

#include <bit>

#include "common/check.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace rd::simd {

#if defined(__AVX2__)

bool have_avx2_kernels() { return true; }

namespace {
/// Accumulator / term caps keep the hot state in registers; generous next
/// to the paper's BCH-8 (stride 8, <= 9 locator terms).
constexpr std::size_t kMaxChunks = 4;   // stride <= 32 syndrome lanes
constexpr std::size_t kMaxTerms = 33;   // locator degree <= t <= 32
}  // namespace

void bch_syndrome_acc_avx2(const std::uint64_t* words, std::size_t nbits,
                           unsigned data_bits, unsigned parity_bits,
                           const std::uint32_t* table, std::size_t stride,
                           std::uint32_t* acc) {
  RD_CHECK(stride % 8 == 0 && stride / 8 <= kMaxChunks);
  const std::size_t chunks = stride / 8;
  __m256i accv[kMaxChunks];
  for (std::size_t k = 0; k < chunks; ++k) accv[k] = _mm256_setzero_si256();
  const std::size_t nwords = (nbits + 63) / 64;
  for (std::size_t wi = 0; wi < nwords; ++wi) {
    std::uint64_t w = words[wi];
    while (w != 0) {
      const std::size_t bit =
          wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
      w &= w - 1;
      const std::size_t pos =
          bit < data_bits ? parity_bits + bit : bit - data_bits;
      const std::uint32_t* row = table + pos * stride;
      for (std::size_t k = 0; k < chunks; ++k) {
        accv[k] = _mm256_xor_si256(
            accv[k], _mm256_loadu_si256(
                         reinterpret_cast<const __m256i*>(row + 8 * k)));
      }
    }
  }
  for (std::size_t k = 0; k < chunks; ++k) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + 8 * k), accv[k]);
  }
}

std::size_t bch_chien_scan_avx2(const std::uint32_t* exp_table,
                                std::uint32_t n, const std::uint32_t* step,
                                const std::uint32_t* expo, std::size_t terms,
                                std::uint32_t scan, std::size_t limit,
                                std::size_t* out_positions) {
  RD_CHECK(terms <= kMaxTerms);
  // Lane j of term i holds the reduced exponent of position p + j; one
  // block advances every lane by 8 positions (exponent += 8 * step mod n).
  __m256i expv[kMaxTerms];
  __m256i stepv[kMaxTerms];
  for (std::size_t i = 0; i < terms; ++i) {
    alignas(32) std::uint32_t lanes[8];
    std::uint64_t e = expo[i];
    for (int j = 0; j < 8; ++j) {
      lanes[j] = static_cast<std::uint32_t>(e);
      e += step[i];
      if (e >= n) e -= n;
    }
    expv[i] = _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
    const std::uint32_t step8 =
        static_cast<std::uint32_t>((8ull * step[i]) % n);
    stepv[i] = _mm256_set1_epi32(static_cast<int>(step8));
  }
  const __m256i nv = _mm256_set1_epi32(static_cast<int>(n));
  const __m256i n_minus_1 = _mm256_set1_epi32(static_cast<int>(n) - 1);
  const __m256i zero = _mm256_setzero_si256();
  std::size_t found = 0;
  for (std::uint32_t p = 0; p < scan; p += 8) {
    __m256i acc = zero;
    for (std::size_t i = 0; i < terms; ++i) {
      // Masked all-lanes gather: the plain variant starts from an
      // _mm256_undefined_si256 source, which -Wmaybe-uninitialized flags.
      acc = _mm256_xor_si256(
          acc, _mm256_mask_i32gather_epi32(
                   zero, reinterpret_cast<const int*>(exp_table), expv[i],
                   _mm256_set1_epi32(-1), 4));
      // Step to the next block's exponents: e + step8, one conditional
      // subtract keeps e in [0, n) (exponents stay below 2n).
      __m256i e = _mm256_add_epi32(expv[i], stepv[i]);
      const __m256i wrap = _mm256_cmpgt_epi32(e, n_minus_1);
      expv[i] = _mm256_sub_epi32(e, _mm256_and_si256(wrap, nv));
    }
    int zmask =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(acc, zero)));
    while (zmask != 0) {
      const int j = std::countr_zero(static_cast<unsigned>(zmask));
      zmask &= zmask - 1;
      const std::uint32_t root = p + static_cast<std::uint32_t>(j);
      if (root >= scan) break;  // tail lanes past the shortened region
      out_positions[found++] = root;
      if (found == limit) return found;
    }
  }
  return found;
}

void drift_levels_avx2(std::size_t n, const std::int32_t* level,
                       const double* z_program, const double* z_alpha,
                       const double* log_t, const double* offsets,
                       const double* params, std::uint8_t* out_levels) {
  const double* mu = params;
  const double* sigma = params + 4;
  const double* mu_alpha = params + 8;
  const double* sigma_alpha = params + 12;
  const __m256d b0 = _mm256_set1_pd(params[16]);
  const __m256d b1 = _mm256_set1_pd(params[17]);
  const __m256d b2 = _mm256_set1_pd(params[18]);
  const __m256d dzero = _mm256_setzero_pd();
  const __m256d dmask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1));  // gather all lanes
  std::size_t c = 0;
  for (; c + 4 <= n; c += 4) {
    const __m128i lvl =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(level + c));
    // Masked all-lanes gathers: the plain variant starts from an
    // _mm256_undefined_pd source, which -Wmaybe-uninitialized flags.
    const __m256d vmu = _mm256_mask_i32gather_pd(dzero, mu, lvl, dmask, 8);
    const __m256d vsg = _mm256_mask_i32gather_pd(dzero, sigma, lvl, dmask, 8);
    const __m256d vma =
        _mm256_mask_i32gather_pd(dzero, mu_alpha, lvl, dmask, 8);
    const __m256d vsa =
        _mm256_mask_i32gather_pd(dzero, sigma_alpha, lvl, dmask, 8);
    const __m256d zp = _mm256_loadu_pd(z_program + c);
    const __m256d za = _mm256_loadu_pd(z_alpha + c);
    const __m256d lt = _mm256_loadu_pd(log_t + c);
    // Same unfused expression tree as Cell::metric_at_logt:
    //   x = (mu + zp * sigma) + (mu_alpha + za * sigma_alpha) * log_t
    const __m256d x0 = _mm256_add_pd(vmu, _mm256_mul_pd(zp, vsg));
    const __m256d alpha = _mm256_add_pd(vma, _mm256_mul_pd(za, vsa));
    __m256d x = _mm256_add_pd(x0, _mm256_mul_pd(alpha, lt));
    if (offsets != nullptr) {
      x = _mm256_add_pd(x, _mm256_loadu_pd(offsets + c));
    }
    // level = #{j : x > b_j}; each GT mask is integer -1, so summing the
    // three masks and negating yields 0..3 (boundaries are monotone).
    const __m256i m0 = _mm256_castpd_si256(_mm256_cmp_pd(x, b0, _CMP_GT_OQ));
    const __m256i m1 = _mm256_castpd_si256(_mm256_cmp_pd(x, b1, _CMP_GT_OQ));
    const __m256i m2 = _mm256_castpd_si256(_mm256_cmp_pd(x, b2, _CMP_GT_OQ));
    const __m256i sum =
        _mm256_add_epi64(m0, _mm256_add_epi64(m1, m2));
    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), sum);
    out_levels[c + 0] = static_cast<std::uint8_t>(-lanes[0]);
    out_levels[c + 1] = static_cast<std::uint8_t>(-lanes[1]);
    out_levels[c + 2] = static_cast<std::uint8_t>(-lanes[2]);
    out_levels[c + 3] = static_cast<std::uint8_t>(-lanes[3]);
  }
  for (; c < n; ++c) {  // scalar tail, identical expression tree
    const std::int32_t l = level[c];
    const double x0 = mu[l] + z_program[c] * sigma[l];
    const double alpha = mu_alpha[l] + z_alpha[c] * sigma_alpha[l];
    double x = x0 + alpha * log_t[c];
    if (offsets != nullptr) x += offsets[c];
    out_levels[c] = static_cast<std::uint8_t>(
        (x > params[16] ? 1 : 0) + (x > params[17] ? 1 : 0) +
        (x > params[18] ? 1 : 0));
  }
}

#else  // !defined(__AVX2__): toolchain cannot emit AVX2 — stubs only.

bool have_avx2_kernels() { return false; }

void bch_syndrome_acc_avx2(const std::uint64_t*, std::size_t, unsigned,
                           unsigned, const std::uint32_t*, std::size_t,
                           std::uint32_t*) {
  RD_CHECK_MSG(false, "AVX2 kernels not compiled into this binary");
}

std::size_t bch_chien_scan_avx2(const std::uint32_t*, std::uint32_t,
                                const std::uint32_t*, const std::uint32_t*,
                                std::size_t, std::uint32_t, std::size_t,
                                std::size_t*) {
  RD_CHECK_MSG(false, "AVX2 kernels not compiled into this binary");
  return 0;
}

void drift_levels_avx2(std::size_t, const std::int32_t*, const double*,
                       const double*, const double*, const double*,
                       const double*, std::uint8_t*) {
  RD_CHECK_MSG(false, "AVX2 kernels not compiled into this binary");
}

#endif  // __AVX2__

}  // namespace rd::simd
