#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.h"

namespace rd {

namespace {

// True on pool worker threads, and on a caller thread while it participates
// in a shard loop. Nested parallel_for calls from inside a shard run
// inline instead of deadlocking on the (busy) pool.
thread_local bool t_in_parallel_region = false;

struct RegionGuard {
  bool prev;
  RegionGuard() : prev(t_in_parallel_region) { t_in_parallel_region = true; }
  ~RegionGuard() { t_in_parallel_region = prev; }
};

}  // namespace

unsigned parallel_thread_count() {
  if (const char* e = env_cstr("READDUO_THREADS")) {
    // Strict parse: a typo like READDUO_THREADS=banana must not silently
    // run at hardware concurrency and mislabel the measurement.
    const std::uint64_t v = parse_env_u64("READDUO_THREADS", e);
    RD_CHECK_MSG(v >= 1, "READDUO_THREADS must be >= 1, got '" << e << "'");
    return static_cast<unsigned>(v > 512 ? 512 : v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  // One job at a time; callers queue on job_mu.
  std::mutex job_mu;

  // Current job, guarded by mu except `next` (claimed lock-free).
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::size_t active = 0;  // workers currently inside run_shards
  std::uint64_t generation = 0;
  bool stop = false;
  std::exception_ptr error;

  std::vector<std::thread> workers;

  // Claim and execute shards until the job is exhausted. Called without mu.
  void run_shards() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> g(mu);
        if (!error) error = std::current_exception();
        // Abandon the remaining shards; in-flight ones finish.
        next.store(n, std::memory_order_relaxed);
      }
    }
  }

  void worker_loop() {
    t_in_parallel_region = true;
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      cv_work.wait(lk, [&] { return stop || generation != seen; });
      if (stop) return;
      seen = generation;
      ++active;
      lk.unlock();
      run_shards();
      lk.lock();
      --active;
      if (active == 0) cv_done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(unsigned threads)
    : impl_(std::make_unique<Impl>()), threads_(threads == 0 ? 1 : threads) {
  impl_->workers.reserve(threads_ - 1);
  for (unsigned i = 0; i + 1 < threads_; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> g(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (auto& w : impl_->workers) w.join();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ <= 1 || n == 1 || t_in_parallel_region) {
    // Legacy serial path: in index order, on the calling thread.
    RegionGuard guard;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Impl& im = *impl_;
  std::lock_guard<std::mutex> job(im.job_mu);
  {
    std::lock_guard<std::mutex> g(im.mu);
    im.fn = &fn;
    im.n = n;
    im.next.store(0, std::memory_order_relaxed);
    im.error = nullptr;
    ++im.generation;
  }
  im.cv_work.notify_all();
  {
    RegionGuard guard;
    im.run_shards();
  }
  std::unique_lock<std::mutex> lk(im.mu);
  im.cv_done.wait(lk, [&] {
    return im.active == 0 && im.next.load(std::memory_order_relaxed) >= im.n;
  });
  if (im.error) {
    std::exception_ptr e = im.error;
    im.error = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

void parallel_for_shards(std::size_t n,
                         const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const unsigned want = parallel_thread_count();
  if (want <= 1 || n == 1 || t_in_parallel_region) {
    RegionGuard guard;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Process-wide pool, rebuilt when READDUO_THREADS changes. A shared_ptr
  // copy keeps a pool alive for callers still running on it after a swap.
  static std::mutex mu;
  static std::shared_ptr<ThreadPool> pool;
  std::shared_ptr<ThreadPool> local;
  {
    std::lock_guard<std::mutex> g(mu);
    if (!pool || pool->size() != want) {
      pool = std::make_shared<ThreadPool>(want);
    }
    local = pool;
  }
  local->parallel_for(n, fn);
}

}  // namespace rd
