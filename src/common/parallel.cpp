#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/thread_annotations.h"

namespace rd {

namespace {

// True on pool worker threads, and on a caller thread while it participates
// in a shard loop. Nested parallel_for calls from inside a shard run
// inline instead of deadlocking on the (busy) pool.
thread_local bool t_in_parallel_region = false;

struct RegionGuard {
  bool prev;
  RegionGuard() : prev(t_in_parallel_region) { t_in_parallel_region = true; }
  ~RegionGuard() { t_in_parallel_region = prev; }
};

}  // namespace

unsigned parallel_thread_count() {
  if (const char* e = env_cstr("READDUO_THREADS")) {
    // Strict parse: a typo like READDUO_THREADS=banana must not silently
    // run at hardware concurrency and mislabel the measurement.
    const std::uint64_t v = parse_env_u64("READDUO_THREADS", e);
    RD_CHECK_MSG(v >= 1, "READDUO_THREADS must be >= 1, got '" << e << "'");
    return static_cast<unsigned>(v > 512 ? 512 : v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

struct ThreadPool::Impl {
  Mutex mu;  ///< the pool capability: job hand-off and completion state
  CondVar cv_work;
  CondVar cv_done;
  // One job at a time; callers queue on job_mu. Held for a whole
  // parallel_for, so it guards no fields — it *is* the job pipeline.
  // lint: allow(guarded-field) job-pipeline mutex: serializes parallel_for calls, guards no fields
  Mutex job_mu;

  // Current job. fn/n are published under mu (before the generation
  // bump) and re-read under mu by each waking worker; `next` is claimed
  // lock-free.
  const std::function<void(std::size_t)>* fn RD_GUARDED_BY(mu) = nullptr;
  std::size_t n RD_GUARDED_BY(mu) = 0;
  std::atomic<std::size_t> next{0};
  std::size_t active RD_GUARDED_BY(mu) = 0;  ///< workers inside run_shards
  std::uint64_t generation RD_GUARDED_BY(mu) = 0;
  bool stop RD_GUARDED_BY(mu) = false;
  std::exception_ptr error RD_GUARDED_BY(mu);

  std::vector<std::thread> workers;

  /// Claim and execute shards of the job `(f, count)` until it is
  /// exhausted. Called without mu; the job is passed by value-of-snapshot
  /// (taken under mu) so no guarded field is touched here.
  void run_shards(const std::function<void(std::size_t)>& f,
                  std::size_t count) RD_EXCLUDES(mu) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        f(i);
      } catch (...) {
        MutexLock g(mu);
        if (!error) error = std::current_exception();
        // Abandon the remaining shards; in-flight ones finish.
        next.store(count, std::memory_order_relaxed);
      }
    }
  }

  void worker_loop() RD_EXCLUDES(mu) {
    t_in_parallel_region = true;
    std::uint64_t seen = 0;
    mu.lock();
    for (;;) {
      while (!stop && generation == seen) cv_work.wait(mu);
      if (stop) {
        mu.unlock();
        return;
      }
      seen = generation;
      // Snapshot the job under mu; run it unlocked.
      const std::function<void(std::size_t)>* f = fn;
      const std::size_t count = n;
      ++active;
      mu.unlock();
      run_shards(*f, count);
      mu.lock();
      --active;
      if (active == 0) cv_done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(unsigned threads)
    : impl_(std::make_unique<Impl>()), threads_(threads == 0 ? 1 : threads) {
  impl_->workers.reserve(threads_ - 1);
  for (unsigned i = 0; i + 1 < threads_; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock g(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (auto& w : impl_->workers) w.join();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ <= 1 || n == 1 || t_in_parallel_region) {
    // Legacy serial path: in index order, on the calling thread.
    RegionGuard guard;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Impl& im = *impl_;
  MutexLock job(im.job_mu);
  {
    MutexLock g(im.mu);
    im.fn = &fn;
    im.n = n;
    im.next.store(0, std::memory_order_relaxed);
    im.error = nullptr;
    ++im.generation;
  }
  im.cv_work.notify_all();
  {
    RegionGuard guard;
    im.run_shards(fn, n);
  }
  std::exception_ptr e;
  {
    MutexLock lk(im.mu);
    while (im.active != 0 ||
           im.next.load(std::memory_order_relaxed) < im.n) {
      im.cv_done.wait(im.mu);
    }
    e = im.error;
    im.error = nullptr;
  }
  if (e) std::rethrow_exception(e);
}

void parallel_for_shards(std::size_t n,
                         const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const unsigned want = parallel_thread_count();
  if (want <= 1 || n == 1 || t_in_parallel_region) {
    RegionGuard guard;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Process-wide pool, rebuilt when READDUO_THREADS changes. A shared_ptr
  // copy keeps a pool alive for callers still running on it after a swap.
  static Mutex mu;
  static std::shared_ptr<ThreadPool> pool;
  std::shared_ptr<ThreadPool> local;
  {
    MutexLock g(mu);
    if (!pool || pool->size() != want) {
      pool = std::make_shared<ThreadPool>(want);
    }
    local = pool;
  }
  local->parallel_for(n, fn);
}

}  // namespace rd
