// Numerical substrate for the analytic drift-reliability model.
//
// The paper's Tables III-V involve binomial tail probabilities down to
// ~1e-18 with per-cell error probabilities down to ~1e-21; everything here
// therefore works in log space where it matters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rd {

/// Natural log of values that may underflow; exp/log-space helpers.
inline constexpr double kNegInf = -1.0e308;

/// log(exp(a) + exp(b)) without overflow; treats kNegInf as log(0).
double log_add(double a, double b);

/// log(n choose k) via lgamma. Requires 0 <= k <= n.
double log_choose(std::uint64_t n, std::uint64_t k);

/// Standard normal CDF Phi(x).
double normal_cdf(double x);

/// Standard normal survival function 1 - Phi(x), accurate for large x.
double normal_sf(double x);

/// log of the standard normal survival function, accurate far into the tail
/// (uses the asymptotic expansion when erfc underflows).
double log_normal_sf(double x);

/// P(X > t) for X ~ Normal(mu, sigma^2) truncated to [mu - c*sigma,
/// mu + c*sigma]. Requires sigma > 0, c > 0. Returns a probability in [0,1].
double truncated_normal_tail(double mu, double sigma, double c, double t);

/// log P(Binomial(n, p) > k), where log_p = log(p) may be very negative.
/// Exact summation in log space over the upper tail.
double log_binomial_tail_gt(std::uint64_t n, std::uint64_t k, double log_p);

/// log P(Binomial(n, p) == k).
double log_binomial_pmf(std::uint64_t n, std::uint64_t k, double log_p);

/// Gauss–Legendre quadrature rule on [-1, 1] with n points.
/// Nodes/weights are computed once per order (std::call_once) and cached;
/// safe to call from any number of threads concurrently.
struct QuadratureRule {
  std::vector<double> nodes;
  std::vector<double> weights;
};

/// Returns the cached n-point Gauss–Legendre rule. Requires n in [2, 256].
const QuadratureRule& gauss_legendre(std::size_t n);

/// Integrate f over [a, b] with an n-point Gauss–Legendre rule.
template <typename F>
double integrate(F&& f, double a, double b, std::size_t n = 64) {
  const QuadratureRule& rule = gauss_legendre(n);
  const double half = 0.5 * (b - a);
  const double mid = 0.5 * (a + b);
  double sum = 0.0;
  for (std::size_t i = 0; i < rule.nodes.size(); ++i) {
    sum += rule.weights[i] * f(mid + half * rule.nodes[i]);
  }
  return half * sum;
}

}  // namespace rd
