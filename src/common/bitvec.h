// Fixed-size dynamic bit vector used for memory-line payloads and codewords.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace rd {

/// A vector of bits with word-level XOR and popcount. Size is fixed at
/// construction (memory lines / codewords never resize).
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  std::size_t size() const { return nbits_; }

  bool get(std::size_t i) const {
    RD_CHECK(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::size_t i, bool v) {
    RD_CHECK(i < nbits_);
    const std::uint64_t mask = 1ull << (i & 63);
    if (v) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  void flip(std::size_t i) {
    RD_CHECK(i < nbits_);
    words_[i >> 6] ^= 1ull << (i & 63);
  }

  /// XOR with another vector of identical size.
  BitVec& operator^=(const BitVec& o) {
    RD_CHECK(nbits_ == o.nbits_);
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= o.words_[w];
    return *this;
  }

  friend BitVec operator^(BitVec a, const BitVec& b) {
    a ^= b;
    return a;
  }

  /// Number of set bits.
  std::size_t popcount() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  bool any() const {
    for (std::uint64_t w : words_) if (w != 0) return true;
    return false;
  }

  friend bool operator==(const BitVec& a, const BitVec& b) {
    return a.nbits_ == b.nbits_ && a.words_ == b.words_;
  }

  const std::vector<std::uint64_t>& words() const { return words_; }

  /// Overwrite 64-bit word `w` (bits [64w, 64w + 64)) wholesale — the
  /// fast-packing counterpart of 64 set() calls for batched producers
  /// (MlcLine's vectorized read). Bits past size() in the last word are
  /// masked off, preserving the all-zero-tail invariant popcount() and
  /// operator== rely on.
  void set_word(std::size_t w, std::uint64_t v) {
    RD_CHECK(w < words_.size());
    if (w == words_.size() - 1 && (nbits_ & 63) != 0) {
      v &= (1ull << (nbits_ & 63)) - 1;
    }
    words_[w] = v;
  }

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace rd
