#include "common/config.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace rd {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

Config Config::parse(std::istream& in) {
  Config cfg;
  std::string line;
  std::string section;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t comment = line.find_first_of("#;");
    if (comment != std::string::npos) line.resize(comment);
    const std::string t = trim(line);
    if (t.empty()) continue;
    if (t.front() == '[') {
      RD_CHECK_MSG(t.back() == ']',
                   "config line " << lineno << ": unterminated section");
      section = trim(t.substr(1, t.size() - 2));
      RD_CHECK_MSG(!section.empty(),
                   "config line " << lineno << ": empty section name");
      continue;
    }
    const std::size_t eq = t.find('=');
    RD_CHECK_MSG(eq != std::string::npos,
                 "config line " << lineno << ": expected key = value");
    const std::string key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    RD_CHECK_MSG(!key.empty(), "config line " << lineno << ": empty key");
    const std::string full = section.empty() ? key : section + "." + key;
    cfg.values_[full] = value;
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  RD_CHECK_MSG(static_cast<bool>(in), "cannot open config file: " << path);
  return parse(in);
}

bool Config::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Config::get_string(const std::string& key,
                               const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::size_t pos = 0;
  std::int64_t v = 0;
  try {
    v = std::stoll(it->second, &pos, 0);
  } catch (const std::exception&) {
    RD_CHECK_MSG(false, "config key " << key << ": not an integer: '"
                                      << it->second << "'");
  }
  RD_CHECK_MSG(pos == it->second.size(),
               "config key " << key << ": trailing junk in '" << it->second
                             << "'");
  return v;
}

double Config::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(it->second, &pos);
  } catch (const std::exception&) {
    RD_CHECK_MSG(false, "config key " << key << ": not a number: '"
                                      << it->second << "'");
  }
  RD_CHECK_MSG(pos == it->second.size(),
               "config key " << key << ": trailing junk in '" << it->second
                             << "'");
  return v;
}

bool Config::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  RD_CHECK_MSG(false, "config key " << key << ": not a boolean: '"
                                    << it->second << "'");
  return def;
}

}  // namespace rd
