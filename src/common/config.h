// Minimal INI-style configuration loader, so benches/examples/tools can be
// parameterized without recompiling (the role NVMain/gem5 config files
// play in the paper's methodology).
//
// Grammar: `[section]` headers, `key = value` pairs, `#` or `;` comments,
// blank lines ignored. Keys are addressed as "section.key"; pairs before
// any section header live in the "" section and are addressed by key
// alone.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>

namespace rd {

/// Parsed configuration: flat map of "section.key" -> raw string value.
class Config {
 public:
  Config() = default;

  /// Parse from a stream. Throws CheckFailure on malformed lines.
  static Config parse(std::istream& in);
  /// Parse from a file. Throws CheckFailure if unreadable.
  static Config load(const std::string& path);

  bool has(const std::string& key) const;

  /// Typed getters: return the default when the key is absent; throw
  /// CheckFailure when present but unparseable.
  std::string get_string(const std::string& key,
                         const std::string& def = "") const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// All keys, for diagnostics.
  const std::map<std::string, std::string>& entries() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace rd
