// Shared parallel-execution substrate.
//
// Everything embarrassingly parallel in the repository — Monte-Carlo
// populations, (scheme x workload) bench sweeps, analytic (E, S) grids —
// funnels through parallel_for_shards(n, fn): run fn(i) for every shard
// index i in [0, n) on a process-wide thread pool. The pool is sized by
// READDUO_THREADS (default: std::thread::hardware_concurrency), and
// READDUO_THREADS=1 forces the legacy serial path: shards run inline on
// the calling thread, in index order, with no pool involvement.
//
// Determinism contract: callers that need bit-identical results across
// thread counts must make each shard self-contained — derive per-shard RNG
// streams as Rng(seed, shard_index) and keep the shard decomposition
// independent of the thread count (fixed shard *size*, not shards ==
// threads) — and reduce the per-shard outputs in shard order after the
// loop. parallel_for_shards guarantees every shard runs exactly once, but
// not on which thread or in which order.
//
// The pool's internal locking follows the repo's annotated discipline
// (common/thread_annotations.h): the job state lives behind an rd::Mutex
// capability in the implementation, checked under Clang's
// -Wthread-safety by run_static_analysis.sh (DESIGN.md §8).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace rd {

/// Worker parallelism for parallel_for_shards: READDUO_THREADS if set to a
/// positive integer (clamped to [1, 512]), else hardware_concurrency (or 1
/// if unknown). Re-read from the environment on every call, so tests can
/// vary it within one process.
unsigned parallel_thread_count();

/// A fixed-size pool of worker threads executing shard loops.
///
/// `threads` is the total concurrency including the calling thread: a pool
/// of size T spawns T - 1 workers and the caller participates in every
/// parallel_for, so ThreadPool(1) owns no threads at all.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + caller).
  unsigned size() const { return threads_; }

  /// Run fn(i) for every i in [0, n), blocking until all shards finish.
  /// Shards are claimed dynamically (good load balance for uneven shard
  /// costs). The first exception thrown by any shard is rethrown here
  /// after remaining shards are abandoned. Serial pools (size() == 1),
  /// n <= 1, and nested calls from inside a shard all run inline on the
  /// calling thread in index order.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  unsigned threads_;
};

/// Run fn over [0, n) on the process-wide shared pool, sized by
/// parallel_thread_count() (the pool is rebuilt if READDUO_THREADS changed
/// since the last call). Safe to call concurrently from multiple threads;
/// jobs are serialized onto the pool. See the ThreadPool::parallel_for
/// contract for ordering/exception semantics.
void parallel_for_shards(std::size_t n,
                         const std::function<void(std::size_t)>& fn);

}  // namespace rd
