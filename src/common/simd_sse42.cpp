// SSE4.2 bodies of the kVectorized lane kernels (see simd_kernels.h).
//
// 128-bit counterpart of simd_avx2.cpp for hosts with SSE4.2 but no AVX2:
// 4-lane GF XOR accumulation and a 2-wide drift-metric kernel. There is
// no SSE gather, so the Chien scan has no SSE variant — kVectorized
// BchCode runs the scalar optimized Chien at this level. Same build
// discipline as the AVX2 TU: the only TU compiled with -msse4.2 (plus
// -ffp-contract=off); stubs when the toolchain cannot target it.
#include "common/simd_kernels.h"

#include <bit>

#include "common/check.h"

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace rd::simd {

#if defined(__SSE4_2__)

bool have_sse42_kernels() { return true; }

namespace {
constexpr std::size_t kMaxChunks = 8;  // stride <= 32 syndrome lanes
}  // namespace

void bch_syndrome_acc_sse42(const std::uint64_t* words, std::size_t nbits,
                            unsigned data_bits, unsigned parity_bits,
                            const std::uint32_t* table, std::size_t stride,
                            std::uint32_t* acc) {
  RD_CHECK(stride % 8 == 0 && stride / 4 <= kMaxChunks);
  const std::size_t chunks = stride / 4;
  __m128i accv[kMaxChunks];
  for (std::size_t k = 0; k < chunks; ++k) accv[k] = _mm_setzero_si128();
  const std::size_t nwords = (nbits + 63) / 64;
  for (std::size_t wi = 0; wi < nwords; ++wi) {
    std::uint64_t w = words[wi];
    while (w != 0) {
      const std::size_t bit =
          wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
      w &= w - 1;
      const std::size_t pos =
          bit < data_bits ? parity_bits + bit : bit - data_bits;
      const std::uint32_t* row = table + pos * stride;
      for (std::size_t k = 0; k < chunks; ++k) {
        accv[k] = _mm_xor_si128(
            accv[k], _mm_loadu_si128(
                         reinterpret_cast<const __m128i*>(row + 4 * k)));
      }
    }
  }
  for (std::size_t k = 0; k < chunks; ++k) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + 4 * k), accv[k]);
  }
}

void drift_levels_sse42(std::size_t n, const std::int32_t* level,
                        const double* z_program, const double* z_alpha,
                        const double* log_t, const double* offsets,
                        const double* params, std::uint8_t* out_levels) {
  const double* mu = params;
  const double* sigma = params + 4;
  const double* mu_alpha = params + 8;
  const double* sigma_alpha = params + 12;
  const __m128d b0 = _mm_set1_pd(params[16]);
  const __m128d b1 = _mm_set1_pd(params[17]);
  const __m128d b2 = _mm_set1_pd(params[18]);
  std::size_t c = 0;
  for (; c + 2 <= n; c += 2) {
    const std::int32_t l0 = level[c], l1 = level[c + 1];
    // No gather below AVX2: two scalar indexed loads per parameter.
    const __m128d vmu = _mm_set_pd(mu[l1], mu[l0]);
    const __m128d vsg = _mm_set_pd(sigma[l1], sigma[l0]);
    const __m128d vma = _mm_set_pd(mu_alpha[l1], mu_alpha[l0]);
    const __m128d vsa = _mm_set_pd(sigma_alpha[l1], sigma_alpha[l0]);
    const __m128d zp = _mm_loadu_pd(z_program + c);
    const __m128d za = _mm_loadu_pd(z_alpha + c);
    const __m128d lt = _mm_loadu_pd(log_t + c);
    // Same unfused expression tree as Cell::metric_at_logt.
    const __m128d x0 = _mm_add_pd(vmu, _mm_mul_pd(zp, vsg));
    const __m128d alpha = _mm_add_pd(vma, _mm_mul_pd(za, vsa));
    __m128d x = _mm_add_pd(x0, _mm_mul_pd(alpha, lt));
    if (offsets != nullptr) {
      x = _mm_add_pd(x, _mm_loadu_pd(offsets + c));
    }
    const __m128i m0 = _mm_castpd_si128(_mm_cmpgt_pd(x, b0));
    const __m128i m1 = _mm_castpd_si128(_mm_cmpgt_pd(x, b1));
    const __m128i m2 = _mm_castpd_si128(_mm_cmpgt_pd(x, b2));
    const __m128i sum = _mm_add_epi64(m0, _mm_add_epi64(m1, m2));
    alignas(16) std::int64_t lanes[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), sum);
    out_levels[c + 0] = static_cast<std::uint8_t>(-lanes[0]);
    out_levels[c + 1] = static_cast<std::uint8_t>(-lanes[1]);
  }
  for (; c < n; ++c) {  // scalar tail, identical expression tree
    const std::int32_t l = level[c];
    const double x0 = mu[l] + z_program[c] * sigma[l];
    const double alpha = mu_alpha[l] + z_alpha[c] * sigma_alpha[l];
    double x = x0 + alpha * log_t[c];
    if (offsets != nullptr) x += offsets[c];
    out_levels[c] = static_cast<std::uint8_t>(
        (x > params[16] ? 1 : 0) + (x > params[17] ? 1 : 0) +
        (x > params[18] ? 1 : 0));
  }
}

#else  // !defined(__SSE4_2__): toolchain cannot emit SSE4.2 — stubs only.

bool have_sse42_kernels() { return false; }

void bch_syndrome_acc_sse42(const std::uint64_t*, std::size_t, unsigned,
                            unsigned, const std::uint32_t*, std::size_t,
                            std::uint32_t*) {
  RD_CHECK_MSG(false, "SSE4.2 kernels not compiled into this binary");
}

void drift_levels_sse42(std::size_t, const std::int32_t*, const double*,
                        const double*, const double*, const double*,
                        const double*, std::uint8_t*) {
  RD_CHECK_MSG(false, "SSE4.2 kernels not compiled into this binary");
}

#endif  // __SSE4_2__

}  // namespace rd::simd
