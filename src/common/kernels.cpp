#include "common/kernels.h"

#include <cstring>
#include <mutex>

#include "common/check.h"
#include "common/env.h"

namespace rd {

KernelMode kernels_mode() {
  static std::once_flag once;
  static KernelMode mode = KernelMode::kOptimized;
  std::call_once(once, [] {
    const char* e = env_cstr("READDUO_KERNELS");
    if (e == nullptr) return;
    if (std::strcmp(e, "reference") == 0) {
      mode = KernelMode::kReference;
    } else if (std::strcmp(e, "optimized") == 0) {
      mode = KernelMode::kOptimized;
    } else {
      // Strict parse: a typo must not silently benchmark the wrong path.
      RD_CHECK_MSG(false, "READDUO_KERNELS must be 'reference' or "
                          "'optimized', got '" << e << "'");
    }
  });
  return mode;
}

}  // namespace rd
