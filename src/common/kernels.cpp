#include "common/kernels.h"

#include <atomic>
#include <cstring>
#include <mutex>

#include "common/check.h"
#include "common/env.h"
#include "common/simd_kernels.h"

namespace rd {

KernelMode kernels_mode() {
  static std::once_flag once;
  static KernelMode mode = KernelMode::kOptimized;
  std::call_once(once, [] {
    const char* e = env_cstr("READDUO_KERNELS");
    if (e == nullptr) return;
    if (std::strcmp(e, "reference") == 0) {
      mode = KernelMode::kReference;
    } else if (std::strcmp(e, "optimized") == 0) {
      mode = KernelMode::kOptimized;
    } else if (std::strcmp(e, "vector") == 0) {
      mode = KernelMode::kVectorized;
    } else {
      // Strict parse: a typo must not silently benchmark the wrong path.
      RD_CHECK_MSG(false, "READDUO_KERNELS must be 'reference', "
                          "'optimized' or 'vector', got '" << e << "'");
    }
  });
  return mode;
}

namespace {

/// What the host CPU supports, capped by what this binary compiled in.
SimdLevel detect_simd_level() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  if (simd::have_avx2_kernels() && __builtin_cpu_supports("avx2")) {
    return SimdLevel::kAvx2;
  }
  if (simd::have_sse42_kernels() && __builtin_cpu_supports("sse4.2")) {
    return SimdLevel::kSse42;
  }
#endif
  return SimdLevel::kScalar;
}

SimdLevel parse_simd_override(const char* e, SimdLevel detected) {
  SimdLevel want = detected;
  if (std::strcmp(e, "auto") == 0) {
    return detected;
  } else if (std::strcmp(e, "scalar") == 0) {
    want = SimdLevel::kScalar;
  } else if (std::strcmp(e, "sse42") == 0) {
    want = SimdLevel::kSse42;
  } else if (std::strcmp(e, "avx2") == 0) {
    want = SimdLevel::kAvx2;
  } else {
    RD_CHECK_MSG(false, "READDUO_SIMD must be 'auto', 'scalar', 'sse42' "
                        "or 'avx2', got '" << e << "'");
  }
  // Strict: pinning a level the build/host cannot run must fail loudly,
  // not silently benchmark the scalar fallback under an avx2 label.
  RD_CHECK_MSG(want <= detected,
               "READDUO_SIMD='" << e << "' but this build/host supports at "
               "most '" << simd_level_name(detected) << "'");
  return want;
}

/// The resolved level, stored relaxed-atomically so the test override can
/// swap it after detection without a data race.
std::atomic<SimdLevel>& simd_level_storage() {
  static std::once_flag once;
  static std::atomic<SimdLevel> level{SimdLevel::kScalar};
  std::call_once(once, [] {
    const SimdLevel detected = detect_simd_level();
    const char* e = env_cstr("READDUO_SIMD");
    level.store(e == nullptr ? detected : parse_simd_override(e, detected),
                std::memory_order_relaxed);
  });
  return level;
}

}  // namespace

SimdLevel simd_level() {
  return simd_level_storage().load(std::memory_order_relaxed);
}

void set_simd_level_for_testing(SimdLevel level) {
  // Touch the storage first so detection has run and the cap is real.
  const SimdLevel detected = detect_simd_level();
  RD_CHECK_MSG(level <= detected,
               "cannot force a SIMD level above what this build/host "
               "supports ('" << simd_level_name(detected) << "')");
  simd_level_storage().store(level, std::memory_order_relaxed);
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kSse42: return "sse42";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "scalar";
}

}  // namespace rd
