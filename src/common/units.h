// Strong unit types used across the simulator.
//
// Simulated time is kept in integral nanoseconds (no floating-point clock
// skew); energies are double picojoules. Seconds enter only at the analytic
// drift layer, which is pure math.
#pragma once

#include <cstdint>
#include <compare>

namespace rd {

/// Simulated time in integral nanoseconds.
struct Ns {
  std::int64_t v = 0;

  constexpr Ns() = default;
  constexpr explicit Ns(std::int64_t ns) : v(ns) {}

  friend constexpr Ns operator+(Ns a, Ns b) { return Ns{a.v + b.v}; }
  friend constexpr Ns operator-(Ns a, Ns b) { return Ns{a.v - b.v}; }
  constexpr Ns& operator+=(Ns o) { v += o.v; return *this; }
  constexpr Ns& operator-=(Ns o) { v -= o.v; return *this; }
  friend constexpr Ns operator*(Ns a, std::int64_t k) { return Ns{a.v * k}; }
  friend constexpr Ns operator*(std::int64_t k, Ns a) { return Ns{a.v * k}; }
  friend constexpr auto operator<=>(Ns a, Ns b) = default;

  /// Convert to seconds (for the drift model, which works in seconds).
  constexpr double seconds() const { return static_cast<double>(v) * 1e-9; }
};

constexpr Ns from_seconds(double s) {
  return Ns{static_cast<std::int64_t>(s * 1e9)};
}

/// Dynamic energy in picojoules.
struct Pj {
  double v = 0.0;

  constexpr Pj() = default;
  constexpr explicit Pj(double pj) : v(pj) {}

  friend constexpr Pj operator+(Pj a, Pj b) { return Pj{a.v + b.v}; }
  constexpr Pj& operator+=(Pj o) { v += o.v; return *this; }
  friend constexpr Pj operator*(Pj a, double k) { return Pj{a.v * k}; }
  friend constexpr Pj operator*(double k, Pj a) { return Pj{a.v * k}; }
  friend constexpr auto operator<=>(Pj a, Pj b) = default;

  constexpr double joules() const { return v * 1e-12; }
};

}  // namespace rd
