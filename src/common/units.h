// Strong unit types used across the simulator.
//
// Simulated time is kept in integral nanoseconds (no floating-point clock
// skew); energies are double picojoules. Seconds enter only at the analytic
// drift layer, which is pure math.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>

#include "common/check.h"

namespace rd {

/// Simulated time in integral nanoseconds.
struct Ns {
  std::int64_t v = 0;

  constexpr Ns() = default;
  constexpr explicit Ns(std::int64_t ns) : v(ns) {}

  friend constexpr Ns operator+(Ns a, Ns b) { return Ns{a.v + b.v}; }
  friend constexpr Ns operator-(Ns a, Ns b) { return Ns{a.v - b.v}; }
  constexpr Ns& operator+=(Ns o) { v += o.v; return *this; }
  constexpr Ns& operator-=(Ns o) { v -= o.v; return *this; }
  friend constexpr Ns operator*(Ns a, std::int64_t k) { return Ns{a.v * k}; }
  friend constexpr Ns operator*(std::int64_t k, Ns a) { return Ns{a.v * k}; }
  friend constexpr auto operator<=>(Ns a, Ns b) = default;

  /// Convert to seconds (for the drift model, which works in seconds).
  constexpr double seconds() const { return static_cast<double>(v) * 1e-9; }
};

/// Convert seconds to the integral-nanosecond clock, rounding to nearest
/// (a plain cast truncates toward zero, so e.g. 0.1 s — not exactly
/// representable in binary — would silently lose a nanosecond). Values
/// whose nanosecond count cannot fit in int64 are a programming error.
inline Ns from_seconds(double s) {
  const double ns = s * 1e9;
  // 2^63 = 9223372036854775808; the largest int64-representable double
  // below it is 2^63 - 1024.
  RD_CHECK_MSG(std::isfinite(ns) && ns >= -9223372036854774784.0 &&
                   ns <= 9223372036854774784.0,
               "from_seconds(" << s << "): overflows the int64 ns clock");
  return Ns{std::llround(ns)};
}

/// Dynamic energy in picojoules.
struct Pj {
  double v = 0.0;

  constexpr Pj() = default;
  constexpr explicit Pj(double pj) : v(pj) {}

  friend constexpr Pj operator+(Pj a, Pj b) { return Pj{a.v + b.v}; }
  constexpr Pj& operator+=(Pj o) { v += o.v; return *this; }
  friend constexpr Pj operator*(Pj a, double k) { return Pj{a.v * k}; }
  friend constexpr Pj operator*(double k, Pj a) { return Pj{a.v * k}; }
  friend constexpr auto operator<=>(Pj a, Pj b) = default;

  constexpr double joules() const { return v * 1e-12; }
};

}  // namespace rd
