// Kernel implementation selection: optimized vs straight-line reference.
//
// Every hot-path kernel rewritten for speed (BCH syndromes/Chien, drift
// error-model memoization, batched MLC line reads) keeps its original
// straight-line implementation compiled in and selectable, so the test
// suite — and any suspicious user — can run the whole system on the
// reference path and demand bit-identical outputs. Selection happens at
// two levels:
//
//   * process-wide: READDUO_KERNELS=reference|optimized (default
//     optimized), read once through the audited env gateway;
//   * per-object: constructors and batch entry points take an explicit
//     KernelMode, where kAuto defers to the process-wide setting.
//
// The contract is strict value equality, not approximate agreement: an
// optimized kernel must produce bit-identical doubles and identical
// integer/bit outputs for every input (enforced by tests/test_kernels.cpp
// and the golden files under tests/golden/, which the reference-kernel
// lane of run_test_sweep.sh replays).
#pragma once

namespace rd {

/// Which implementation of a rewritten kernel to run.
enum class KernelMode {
  kAuto,       ///< defer to READDUO_KERNELS (default: optimized)
  kReference,  ///< original straight-line implementation
  kOptimized,  ///< table-driven / memoized / batched implementation
};

/// The process-wide kernel mode from READDUO_KERNELS ("reference" or
/// "optimized"; unset means optimized). Read once per process (thread-safe);
/// a set-but-unrecognized value throws instead of silently running the
/// default. Never returns kAuto.
KernelMode kernels_mode();

/// Collapse kAuto to the process-wide mode; returns `mode` otherwise.
inline KernelMode resolve_kernel_mode(KernelMode mode) {
  return mode == KernelMode::kAuto ? kernels_mode() : mode;
}

}  // namespace rd
