// Kernel implementation selection: vectorized vs optimized vs reference.
//
// Every hot-path kernel rewritten for speed (BCH syndromes/Chien, drift
// error-model memoization, batched MLC line reads) keeps its original
// straight-line implementation compiled in and selectable, so the test
// suite — and any suspicious user — can run the whole system on the
// reference path and demand bit-identical outputs. Selection happens at
// two levels:
//
//   * process-wide: READDUO_KERNELS=reference|optimized|vector (default
//     optimized), read once through the audited env gateway;
//   * per-object: constructors and batch entry points take an explicit
//     KernelMode, where kAuto defers to the process-wide setting.
//
// The contract for integer/bit outputs is strict value equality across
// all three tiers: identical syndromes, decode flags, corrected words,
// levels, and counts for every input (enforced by tests/test_kernels.cpp
// and the golden files under tests/golden/, which the reference-kernel
// lane of run_test_sweep.sh replays). The FP internals of the vectorized
// drift scan carry a documented tolerance lane instead (DESIGN.md §10.5):
// the SIMD lanes execute the same unfused multiply/add expression tree as
// the scalar helpers, so intermediate doubles agree to the bit except
// that an undrifted cell's `x0 + alpha * 0.0` may normalize `-0.0` to
// `+0.0` — every *decision* derived from them (levels, error counts,
// decode flags) is still bit-identical, and that is what the tests pin.
//
// The vectorized tier additionally dispatches on the host CPU at runtime
// (AVX2, then SSE4.2, then scalar). The scalar fallback routes through
// the existing optimized helpers, so kVectorized is always safe to
// request: on a non-x86 or pre-SSE4.2 host it degrades to kOptimized
// behavior, never to wrong answers. READDUO_SIMD=scalar|sse42|avx2
// pins the dispatch for differential testing.
#pragma once

namespace rd {

/// Which implementation of a rewritten kernel to run.
enum class KernelMode {
  kAuto,        ///< defer to READDUO_KERNELS (default: optimized)
  kReference,   ///< original straight-line implementation
  kOptimized,   ///< table-driven / memoized / batched implementation
  kVectorized,  ///< SoA + SIMD lanes; scalar hosts fall back to kOptimized
};

/// The process-wide kernel mode from READDUO_KERNELS ("reference",
/// "optimized" or "vector"; unset means optimized). Read once per process
/// (thread-safe); a set-but-unrecognized value throws instead of silently
/// running the default. Never returns kAuto.
KernelMode kernels_mode();

/// Collapse kAuto to the process-wide mode; returns `mode` otherwise.
inline KernelMode resolve_kernel_mode(KernelMode mode) {
  return mode == KernelMode::kAuto ? kernels_mode() : mode;
}

/// Host SIMD capability tiers the vectorized kernels dispatch over.
/// Ordered: a level implies every lower one.
enum class SimdLevel {
  kScalar,  ///< no SIMD kernels — kVectorized routes to optimized helpers
  kSse42,   ///< 128-bit lanes (batched GF XOR, 2-wide drift metric)
  kAvx2,    ///< 256-bit lanes (8-wide GF XOR, 4-wide drift, gather Chien)
};

/// The SIMD level the vectorized kernels run at: the minimum of what this
/// binary compiled in (CMake probes -msse4.2/-mavx2), what the host CPU
/// reports, and the READDUO_SIMD override ("auto" default, or "scalar" /
/// "sse42" / "avx2"; a strict parse — requesting a level the build or
/// host cannot honor throws rather than silently degrading). Detected
/// once per process; thread-safe.
SimdLevel simd_level();

/// Test seam: force simd_level() to return `level` from now on, bypassing
/// detection. Only levels at or below the detected one are honored
/// (RD_CHECK otherwise) — the point is forcing the *scalar fallback* in
/// one process and diffing it against native dispatch, not pretending to
/// have wider registers. Not thread-safe; call from single-threaded test
/// setup only.
void set_simd_level_for_testing(SimdLevel level);

/// Human-readable name of a SIMD level ("scalar" / "sse42" / "avx2").
const char* simd_level_name(SimdLevel level);

}  // namespace rd
