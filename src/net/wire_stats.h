// Serialization of a ServiceStats snapshot for the kStats reply.
//
// The blob carries the full per-class latency histograms (bucket arrays,
// not just percentiles), so a distributed client can merge and
// cross-check them bit-exactly against its own completion-derived
// histograms — the wire determinism contract is checked on integers,
// never on floating-point summaries.
//
// Layout (all little-endian, via the frame payload primitives):
//   u8   blob version (kStatsBlobVersion)
//   u64  shards, queue, batch, threads      (server config echo)
//   u64  submitted, rejected, admitted, completed, scrubs,
//        write_cancellations, scrub_rewrites_dropped, seq_held
//   i64  virtual_time
//   6 ×  histogram: i64 sum, i64 max, u32 nbuckets, nbuckets × u64
//   u32  nbanks, then per bank: i64 busy_ns, u64 depth_samples,
//        u64 depth_sum, u64 depth_max
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "service/memory_service.h"

namespace rd::net {

inline constexpr std::uint8_t kStatsBlobVersion = 1;

/// Server configuration echoed alongside the stats so a remote load
/// generator can report the run's true shape.
struct WireServiceInfo {
  std::uint64_t shards = 0;
  std::uint64_t queue = 0;
  std::uint64_t batch = 0;
  std::uint64_t threads = 0;
};

std::string encode_stats(const service::ServiceStats& st,
                         const WireServiceInfo& info);

/// False when the payload is not exactly one well-formed blob.
bool decode_stats(std::string_view payload, service::ServiceStats& st,
                  WireServiceInfo& info);

}  // namespace rd::net
