#include "net/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "net/socket.h"

namespace rd::net {

Client::Client(Client&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)), rbuf_(std::move(o.rbuf_)) {}

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
    rbuf_ = std::move(o.rbuf_);
  }
  return *this;
}

Client Client::connect_to(const std::string& addr) {
  return Client(rd::net::connect_to(addr));
}

void Client::send_frame(Op op, std::uint64_t id, std::string_view payload) {
  std::string out;
  encode_frame(op, id, payload, out);
  send_raw(out);
}

void Client::send_frame(Status st, std::uint64_t id,
                        std::string_view payload) {
  std::string out;
  encode_frame(st, id, payload, out);
  send_raw(out);
}

void Client::send_raw(std::string_view bytes) {
  RD_CHECK(connected());
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    RD_CHECK_MSG(n > 0, "send: " << std::strerror(errno));
    off += static_cast<std::size_t>(n);
  }
}

bool Client::pump(bool block) {
  char tmp[65536];
  for (;;) {
    const ssize_t n =
        ::recv(fd_, tmp, sizeof tmp, block ? 0 : MSG_DONTWAIT);
    if (n > 0) {
      rbuf_.append(tmp, static_cast<std::size_t>(n));
      return true;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    if (!block && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    // A server that sheds or tears down a connection with unread client
    // bytes in flight surfaces as RST, not FIN; both mean "peer gone".
    if (errno == ECONNRESET) return false;
    RD_CHECK_MSG(false, "recv: " << std::strerror(errno));
  }
}

std::optional<Frame> Client::recv_opt() {
  RD_CHECK(connected());
  for (;;) {
    Frame f;
    const DecodeStatus st = decode_frame(rbuf_, kDefaultMaxPayload, f);
    if (st == DecodeStatus::kFrame) return f;
    RD_CHECK_MSG(st == DecodeStatus::kNeedMore,
                 "unframeable server stream: " << decode_status_name(st));
    if (!pump(/*block=*/true)) {
      RD_CHECK_MSG(rbuf_.empty(),
                   "server closed mid-frame (" << rbuf_.size()
                                               << " dangling bytes)");
      return std::nullopt;
    }
  }
}

Frame Client::recv_frame() {
  std::optional<Frame> f = recv_opt();
  RD_CHECK_MSG(f.has_value(), "server closed the connection");
  return *std::move(f);
}

bool Client::try_recv(Frame& out) {
  RD_CHECK(connected());
  for (;;) {
    const DecodeStatus st = decode_frame(rbuf_, kDefaultMaxPayload, out);
    if (st == DecodeStatus::kFrame) return true;
    RD_CHECK_MSG(st == DecodeStatus::kNeedMore,
                 "unframeable server stream: " << decode_status_name(st));
    const std::size_t before = rbuf_.size();
    if (!pump(/*block=*/false)) return false;  // EOF: no frame
    if (rbuf_.size() == before) return false;  // nothing available yet
  }
}

void Client::shutdown_write() {
  RD_CHECK(connected());
  ::shutdown(fd_, SHUT_WR);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace rd::net
