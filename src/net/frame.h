// Wire framing for the memory service (DESIGN.md §12).
//
// Every message on a readduo_serve connection — request or response — is
// one frame: a fixed 24-byte little-endian header followed by an opaque
// payload whose integrity is pinned by a CRC32.
//
//   offset  size  field
//        0     2  magic 0x5244 ("RD" little-endian)
//        2     1  protocol version (kVersion)
//        3     1  type: an Op (requests, < 0x80) or Status (responses)
//        4     4  payload length (bounded by the decoder's max_payload)
//        8     8  request id, echoed verbatim in every response
//       16     4  CRC32 (IEEE, reflected) of the payload bytes
//       20     4  reserved, must be zero
//       24     …  payload
//
// The decoder is a strict incremental parser over a byte buffer: it
// either produces a frame, asks for more bytes, or reports *why* the
// prefix can never become a frame. The failure taxonomy matters for
// robustness (tests/test_wire.cpp): a CRC mismatch still has a trustable
// length field, so the connection can consume the frame, answer
// kBadFrame and carry on; every other failure means the stream is
// unframeable and the only safe move is an error reply and a close —
// there is no resync heuristic, by design.
//
// All multi-byte fields are little-endian and written byte by byte, so
// the codec is identical on any host (no struct punning, no UB — the
// codec corpus runs under the UBSan gate).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/units.h"

namespace rd::net {

inline constexpr std::uint16_t kMagic = 0x5244;  // "RD"
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderSize = 24;
/// Default payload bound (READDUO_SERVE_MAX_FRAME overrides server-side).
inline constexpr std::size_t kDefaultMaxPayload = 1u << 20;

/// Request opcodes (client -> server). Values < 0x80.
enum class Op : std::uint8_t {
  kHello = 1,  ///< payload: u64 client id (nonzero); must be first.
               ///< Optionally followed by u32 length + that many bytes
               ///< naming the client's device config; the server rejects
               ///< a mismatch (kBadState) and its kOk ack carries the
               ///< server's device name. A bare 8-byte hello skips the
               ///< check (pre-device-zoo clients).
  kRead = 2,   ///< payload: u64 seq, u64 line, i64 arrival (virtual ns)
  kWrite = 3,  ///< payload: as kRead
  kScrub = 4,  ///< payload: as kRead; an archive-mode (M-sense) read
  kStats = 5,  ///< payload: empty; allowed any time after kHello
  kDrain = 6,  ///< payload: u64 final seq (0 = none submitted). The ack
               ///< waits until every seq through final is accepted
               ///< (retries may still be in flight when kDrain arrives)
               ///< and every completion has been sent.
  kBye = 7,    ///< payload: empty; acked, then the server closes
};

/// Response statuses (server -> client). Values >= 0x80.
enum class Status : std::uint8_t {
  kOk = 0x80,        ///< kHello / kDrain / kBye acknowledgement
  kDone = 0x81,      ///< completion: u8 class, i64 enqueue, i64 complete
  kStats = 0x82,     ///< payload: stats blob (wire_stats.h)
  kRetry = 0x83,     ///< not admitted (queue full / seq gap) — resend seq
  kBadFrame = 0x84,  ///< frame rejected (CRC / structure); payload: reason
  kBadSeq = 0x85,    ///< sequence rule violated; connection will close
  kBadState = 0x86,  ///< op illegal in this connection state
  kError = 0x87,     ///< catch-all server error; payload: reason
};

inline std::uint8_t type_of(Op op) { return static_cast<std::uint8_t>(op); }
inline std::uint8_t type_of(Status st) {
  return static_cast<std::uint8_t>(st);
}
inline bool is_response(std::uint8_t type) { return (type & 0x80u) != 0; }

/// CRC32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) — the zlib
/// polynomial, implemented locally so the codec stays dependency-free.
/// crc32("123456789") == 0xCBF43926 (pinned in test_wire.cpp).
std::uint32_t crc32(std::string_view data);

/// One decoded frame. `type` is an Op or Status raw value.
struct Frame {
  std::uint8_t type = 0;
  std::uint64_t id = 0;
  std::string payload;
};

enum class DecodeStatus {
  kFrame,        ///< one frame decoded and consumed from the buffer
  kNeedMore,     ///< the buffer holds a valid proper prefix; read more
  kBadMagic,     ///< first bytes are not a frame header (fatal)
  kBadVersion,   ///< peer speaks another protocol version (fatal)
  kBadReserved,  ///< reserved header field nonzero (fatal)
  kOversize,     ///< length field exceeds max_payload (fatal)
  kBadCrc,       ///< structure fine, payload corrupt — frame consumed
};

const char* decode_status_name(DecodeStatus s);

/// True when the stream cannot be re-framed after this status: the length
/// field is untrustworthy, so the connection must close. kBadCrc is NOT
/// fatal — the frame was consumed and the next one can parse cleanly.
inline bool decode_is_fatal(DecodeStatus s) {
  return s == DecodeStatus::kBadMagic || s == DecodeStatus::kBadVersion ||
         s == DecodeStatus::kBadReserved || s == DecodeStatus::kOversize;
}

/// Append one encoded frame to `out`.
void encode_frame(std::uint8_t type, std::uint64_t id,
                  std::string_view payload, std::string& out);
inline void encode_frame(Op op, std::uint64_t id, std::string_view payload,
                         std::string& out) {
  encode_frame(type_of(op), id, payload, out);
}
inline void encode_frame(Status st, std::uint64_t id,
                         std::string_view payload, std::string& out) {
  encode_frame(type_of(st), id, payload, out);
}

/// Try to decode one frame from the front of `buf`.
///   kFrame     — `out` filled, frame bytes erased from `buf`.
///   kNeedMore  — `buf` untouched.
///   kBadCrc    — `out.type`/`out.id` filled (payload empty), frame bytes
///                erased; the caller should answer Status::kBadFrame.
///   fatal      — `buf` untouched; reply and close.
DecodeStatus decode_frame(std::string& buf, std::size_t max_payload,
                          Frame& out);

/// Header-only pre-scan: total byte extent of the frame at the front of
/// `buf` (header + payload), without touching the CRC. Returns the same
/// taxonomy as decode_frame except kBadCrc. This is the server's wire
/// fault-injection seam: the extent is computed first, the (possibly
/// corrupted) bytes are then decoded for real.
DecodeStatus frame_extent(const std::string& buf, std::size_t max_payload,
                          std::size_t& total);

// ---------------------------------------------------------------------
// Payload primitives: fixed-width little-endian numbers appended to /
// read from std::string payloads.

void put_u8(std::string& s, std::uint8_t v);
void put_u32(std::string& s, std::uint32_t v);
void put_u64(std::string& s, std::uint64_t v);
void put_i64(std::string& s, std::int64_t v);

/// Sequential payload reader. Reads past the end set `ok()` false and
/// return zeros; callers check `ok() && done()` once at the end instead
/// of length-checking every field.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view s) : s_(s) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  /// Next `n` raw bytes (length-prefixed strings); empty view on a short
  /// payload, with ok() false.
  std::string_view str(std::size_t n);

  bool ok() const { return ok_; }
  /// True when every byte was consumed (trailing garbage is a protocol
  /// error, same as a short payload).
  bool done() const { return ok_ && off_ == s_.size(); }

 private:
  const unsigned char* take(std::size_t n);

  std::string_view s_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------
// Request/response payload shapes used by both peers.

/// Body of kRead / kWrite / kScrub.
struct RequestBody {
  std::uint64_t seq = 0;
  std::uint64_t line = 0;
  Ns arrival{0};
};

std::string encode_request_body(const RequestBody& b);
/// False when the payload is not exactly a RequestBody.
bool decode_request_body(std::string_view payload, RequestBody& b);

/// Body of a Status::kDone completion.
struct CompletionBody {
  std::uint8_t cls = 0;  ///< stats::ReqClass raw value
  Ns enqueue{0};
  Ns complete{0};
};

std::string encode_completion_body(const CompletionBody& b);
bool decode_completion_body(std::string_view payload, CompletionBody& b);

}  // namespace rd::net
