// Blocking client side of the wire protocol: a thin framed pipe used by
// readduo_load --connect and the loopback tests.
//
// One Client owns one connected socket. Sending appends frames (or raw
// bytes, for malformed-input tests) and writes them out fully; receiving
// incrementally decodes from an internal buffer. The client trusts the
// server's framing — a malformed inbound frame is an RD_CHECK failure,
// not a recoverable condition — but an orderly server close is a normal
// outcome (recv_opt returns nullopt), because the protocol's answer to
// several client errors *is* an error reply followed by a close.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/frame.h"

namespace rd::net {

class Client {
 public:
  Client() = default;
  /// Adopt an already-connected fd (tests).
  explicit Client(int fd) : fd_(fd) {}
  ~Client() { close(); }

  Client(Client&& o) noexcept;
  Client& operator=(Client&& o) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Blocking connect to "unix:<path>" / "tcp:<host>:<port>".
  static Client connect_to(const std::string& addr);

  bool connected() const { return fd_ >= 0; }

  void send_frame(Op op, std::uint64_t id, std::string_view payload);
  void send_frame(Status st, std::uint64_t id, std::string_view payload);
  /// Arbitrary bytes, for protocol-robustness tests (half frames,
  /// garbage, foreign magic).
  void send_raw(std::string_view bytes);

  /// Blocking receive of the next frame; nullopt on orderly EOF.
  /// RD_CHECK-fails on an unframeable stream (the server is trusted).
  std::optional<Frame> recv_opt();
  /// recv_opt() that RD_CHECK-fails on EOF too.
  Frame recv_frame();
  /// Nonblocking: true when a complete frame was available.
  bool try_recv(Frame& out);

  /// Half-close the write side (tests: EOF mid-conversation).
  void shutdown_write();
  void close();

 private:
  /// Read once into rbuf_. False on EOF.
  bool pump(bool block);

  int fd_ = -1;
  std::string rbuf_;
};

}  // namespace rd::net
