#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"

namespace rd::net {

namespace {

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  RD_CHECK_MSG(path.size() < sizeof(sa.sun_path),
               "unix socket path too long: " << path);
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
  return sa;
}

sockaddr_in make_tcp_addr(const ParsedAddr& a) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(a.port);
  RD_CHECK_MSG(inet_pton(AF_INET, a.host.c_str(), &sa.sin_addr) == 1,
               "tcp host must be a dotted-quad address: " << a.host);
  return sa;
}

}  // namespace

ParsedAddr parse_addr(const std::string& addr) {
  ParsedAddr out;
  if (addr.rfind("unix:", 0) == 0) {
    out.is_unix = true;
    out.path = addr.substr(5);
    RD_CHECK_MSG(!out.path.empty(), "unix address needs a path: " << addr);
    return out;
  }
  if (addr.rfind("tcp:", 0) == 0) {
    out.is_unix = false;
    const std::string rest = addr.substr(4);
    const std::size_t colon = rest.rfind(':');
    RD_CHECK_MSG(colon != std::string::npos && colon > 0 &&
                     colon + 1 < rest.size(),
                 "tcp address must be tcp:<host>:<port>: " << addr);
    out.host = rest.substr(0, colon);
    const std::string port = rest.substr(colon + 1);
    std::uint32_t p = 0;
    for (char c : port) {
      RD_CHECK_MSG(c >= '0' && c <= '9' && (p = p * 10 + (c - '0')) <= 65535,
                   "bad tcp port: " << addr);
    }
    out.port = static_cast<std::uint16_t>(p);
    return out;
  }
  RD_CHECK_MSG(false, "address must be unix:<path> or tcp:<host>:<port>: "
                          << addr);
  return out;
}

int listen_on(const ParsedAddr& addr, std::string& bound) {
  int fd = -1;
  if (addr.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    RD_CHECK_MSG(fd >= 0, "socket(AF_UNIX): " << std::strerror(errno));
    ::unlink(addr.path.c_str());  // stale socket from a dead server
    const sockaddr_un sa = make_unix_addr(addr.path);
    RD_CHECK_MSG(::bind(fd, reinterpret_cast<const sockaddr*>(&sa),
                        sizeof(sa)) == 0,
                 "bind(" << addr.path << "): " << std::strerror(errno));
    bound = "unix:" + addr.path;
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    RD_CHECK_MSG(fd >= 0, "socket(AF_INET): " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa = make_tcp_addr(addr);
    RD_CHECK_MSG(::bind(fd, reinterpret_cast<const sockaddr*>(&sa),
                        sizeof(sa)) == 0,
                 "bind(tcp:" << addr.host << ":" << addr.port
                             << "): " << std::strerror(errno));
    socklen_t len = sizeof(sa);
    RD_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) == 0);
    bound = "tcp:" + addr.host + ":" + std::to_string(ntohs(sa.sin_port));
  }
  RD_CHECK_MSG(::listen(fd, 64) == 0, "listen: " << std::strerror(errno));
  set_nonblocking(fd);
  return fd;
}

int connect_to(const std::string& addr) {
  const ParsedAddr a = parse_addr(addr);
  int fd = -1;
  if (a.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    RD_CHECK_MSG(fd >= 0, "socket(AF_UNIX): " << std::strerror(errno));
    const sockaddr_un sa = make_unix_addr(a.path);
    RD_CHECK_MSG(::connect(fd, reinterpret_cast<const sockaddr*>(&sa),
                           sizeof(sa)) == 0,
                 "connect(" << addr << "): " << std::strerror(errno));
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    RD_CHECK_MSG(fd >= 0, "socket(AF_INET): " << std::strerror(errno));
    const sockaddr_in sa = make_tcp_addr(a);
    RD_CHECK_MSG(::connect(fd, reinterpret_cast<const sockaddr*>(&sa),
                           sizeof(sa)) == 0,
                 "connect(" << addr << "): " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  RD_CHECK(flags >= 0);
  RD_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

}  // namespace rd::net
