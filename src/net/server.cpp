#include "net/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <set>
#include <vector>

#include "common/check.h"
#include "common/env.h"
#include "config/loader.h"
#include "faults/injector.h"
#include "net/socket.h"
#include "net/wire_stats.h"

namespace rd::net {

void apply_server_env(ServerConfig& cfg) {
  if (const char* e = env_cstr("READDUO_SERVE_MAX_FRAME")) {
    cfg.max_payload = static_cast<std::size_t>(
        parse_env_u64("READDUO_SERVE_MAX_FRAME", e));
  }
  if (const char* e = env_cstr("READDUO_SERVE_WBUF")) {
    cfg.write_buf_limit =
        static_cast<std::size_t>(parse_env_u64("READDUO_SERVE_WBUF", e));
  }
  if (const char* e = env_cstr("READDUO_SERVE_CONNS")) {
    cfg.max_conns =
        static_cast<std::size_t>(parse_env_u64("READDUO_SERVE_CONNS", e));
  }
}

Server::Server(const ServerConfig& cfg) : cfg_(cfg) {
  RD_CHECK(cfg_.max_payload >= 64);  // room for every fixed body
  RD_CHECK(cfg_.write_buf_limit >= kHeaderSize);
  RD_CHECK(cfg_.max_conns >= 1);
  int p[2];
  RD_CHECK_MSG(::pipe(p) == 0, "pipe: wake channel");
  wake_r_ = p[0];
  wake_w_ = p[1];
  set_nonblocking(wake_r_);
  set_nonblocking(wake_w_);
  // The wake pipe must outlive the service workers (the hook writes to
  // it), so it is created first and closed last (see ~Server).
  service::ServiceConfig sc = cfg_.service;
  sc.retain_completions = true;
  sc.completion_hook = [this] { wake(); };
  svc_ = std::make_unique<service::MemoryService>(sc);
}

Server::~Server() {
  for (auto& [serial, c] : conns_) {
    (void)serial;
    ::close(c.fd);
  }
  conns_.clear();
  // Stop the workers before the wake pipe goes away: the completion hook
  // must never write to a closed (possibly reused) descriptor.
  svc_->stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
  ::close(wake_r_);
  ::close(wake_w_);
}

void Server::start() {
  RD_CHECK_MSG(listen_fd_ < 0, "start() called twice");
  const ParsedAddr addr = parse_addr(cfg_.listen);
  listen_fd_ = listen_on(addr, bound_);
  if (addr.is_unix) unlink_path_ = addr.path;
}

void Server::stop() {
  stop_.store(true, std::memory_order_release);
  wake();
}

void Server::wake() {
  const char b = 1;
  // A full pipe already holds a pending wakeup; EBADF cannot happen (the
  // service stops before the pipe closes).
  (void)!::write(wake_w_, &b, 1);
}

ServerCounters Server::counters() const {
  ServerCounters ct;
  ct.conns_accepted = conns_accepted_.load(std::memory_order_relaxed);
  ct.conns_shed = conns_shed_.load(std::memory_order_relaxed);
  ct.frames_rx = frames_rx_.load(std::memory_order_relaxed);
  ct.frames_bad = frames_bad_.load(std::memory_order_relaxed);
  ct.crc_errors = crc_errors_.load(std::memory_order_relaxed);
  ct.wire_faults = wire_faults_.load(std::memory_order_relaxed);
  ct.retries_sent = retries_sent_.load(std::memory_order_relaxed);
  return ct;
}

void Server::accept_new() {
  while (conns_.size() < cfg_.max_conns) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept error: poll again
    }
    set_nonblocking(fd);
    if (cfg_.sock_sndbuf > 0) {
      const int v = static_cast<int>(cfg_.sock_sndbuf);
      (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &v, sizeof v);
    }
    Conn c;
    c.fd = fd;
    c.serial = next_conn_serial_++;
    conns_.emplace(c.serial, std::move(c));
    conns_accepted_.fetch_add(1, std::memory_order_relaxed);
    saw_conn_ = true;
  }
}

bool Server::fill(Conn& c) {
  char tmp[65536];
  const ssize_t n = ::recv(c.fd, tmp, sizeof tmp, 0);
  if (n > 0) {
    c.rbuf.append(tmp, static_cast<std::size_t>(n));
    return true;
  }
  if (n == 0) return false;  // orderly EOF
  return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
}

void Server::reply(Conn& c, Status st, std::uint64_t id,
                   std::string_view payload) {
  encode_frame(st, id, payload, c.wbuf);
}

void Server::protocol_error(Conn& c, Status st, std::uint64_t id,
                            std::string_view reason) {
  frames_bad_.fetch_add(1, std::memory_order_relaxed);
  reply(c, st, id, reason);
  c.close_after_flush = true;
  c.input_dead = true;
}

void Server::process_rbuf(Conn& c) {
  while (!c.input_dead) {
    std::size_t total = 0;
    const DecodeStatus ext = frame_extent(c.rbuf, cfg_.max_payload, total);
    if (ext == DecodeStatus::kNeedMore) return;
    if (decode_is_fatal(ext)) {
      // The stream is unframeable (trailing garbage, foreign protocol,
      // oversize length): answer once and close — no resync heuristic.
      protocol_error(c, Status::kBadFrame, 0, decode_status_name(ext));
      return;
    }
    // One frame's bytes are fully present. Wire fault-injection seam:
    // corruption lands on the payload region only, so the CRC check
    // below — not a framing failure — is what catches it.
    ++c.frames_rx;
    if (total > kHeaderSize) {
      if (const faults::FaultEngine* fe = faults::engine()) {
        if (fe->wire_corrupt(&c.rbuf[kHeaderSize], total - kHeaderSize,
                             c.frames_rx)) {
          wire_faults_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    Frame f;
    const DecodeStatus st = decode_frame(c.rbuf, cfg_.max_payload, f);
    if (st == DecodeStatus::kBadCrc) {
      frames_bad_.fetch_add(1, std::memory_order_relaxed);
      crc_errors_.fetch_add(1, std::memory_order_relaxed);
      // Recoverable: the frame was consumed; the client resends this seq.
      reply(c, Status::kBadFrame, f.id, "bad-crc");
      continue;
    }
    RD_CHECK(st == DecodeStatus::kFrame);
    frames_rx_.fetch_add(1, std::memory_order_relaxed);
    handle_frame(c, f);
  }
}

void Server::handle_frame(Conn& c, const Frame& f) {
  if (is_response(f.type)) {
    protocol_error(c, Status::kBadState, f.id, "response type from client");
    return;
  }
  const Op op = static_cast<Op>(f.type);
  switch (op) {
    case Op::kHello: {
      PayloadReader r(f.payload);
      const std::uint64_t id = r.u64();
      // Optional device echo (u32 length + bytes): reject a client built
      // against a different device config, so a distributed run can
      // never silently mix devices. A bare 8-byte hello skips the check.
      std::string client_dev;
      if (r.ok() && !r.done()) {
        const std::uint32_t n = r.u32();
        client_dev = std::string(r.str(n));
      }
      if (!r.done() || id == 0) {
        protocol_error(c, Status::kBadFrame, f.id, "bad hello body");
        return;
      }
      const std::string& server_dev = config::active_device().name;
      if (!client_dev.empty() && client_dev != server_dev) {
        protocol_error(c, Status::kBadState, f.id,
                       "device mismatch: server runs " + server_dev);
        return;
      }
      if (c.helloed || !svc_->register_client(id)) {
        protocol_error(c, Status::kBadState, f.id, "hello rejected");
        return;
      }
      c.helloed = true;
      c.client_id = id;
      // The ack names the server's device so clients can report it.
      reply(c, Status::kOk, f.id, server_dev);
      return;
    }
    case Op::kRead:
    case Op::kWrite:
    case Op::kScrub: {
      RequestBody b;
      if (!decode_request_body(f.payload, b)) {
        protocol_error(c, Status::kBadFrame, f.id, "bad request body");
        return;
      }
      if (!c.helloed || c.finished) {
        protocol_error(c, Status::kBadState, f.id, "hello/drain state");
        return;
      }
      if (c.drain_pending && b.seq > c.drain_final_seq) {
        protocol_error(c, Status::kBadState, f.id, "submit past drain");
        return;
      }
      service::Request req;
      req.id = next_svc_id_++;
      req.line = b.line;
      req.arrival = b.arrival;
      req.is_write = op == Op::kWrite;
      req.archive = op == Op::kScrub;
      switch (svc_->submit_sequenced(c.client_id, b.seq, req)) {
        case service::SubmitStatus::kAccepted:
          inflight_.emplace(req.id, InFlight{c.serial, f.id});
          ++c.outstanding;
          c.seq_accepted = b.seq;  // accepted seqs are dense: last + 1
          if (c.drain_pending) maybe_finish_drain(c);
          return;
        case service::SubmitStatus::kQueueFull:
        case service::SubmitStatus::kOutOfOrder:
          retries_sent_.fetch_add(1, std::memory_order_relaxed);
          reply(c, Status::kRetry, f.id, "");
          return;
        case service::SubmitStatus::kBadSeq:
          protocol_error(c, Status::kBadSeq, f.id, "sequence violation");
          return;
      }
      return;
    }
    case Op::kStats: {
      if (!f.payload.empty()) {
        protocol_error(c, Status::kBadFrame, f.id, "stats takes no payload");
        return;
      }
      if (!c.helloed) {
        protocol_error(c, Status::kBadState, f.id, "stats before hello");
        return;
      }
      WireServiceInfo info;
      info.shards = svc_->num_shards();
      info.queue = cfg_.service.queue_capacity;
      info.batch = cfg_.service.batch_size;
      info.threads = svc_->worker_threads();
      reply(c, Status::kStats, f.id, encode_stats(svc_->stats(), info));
      return;
    }
    case Op::kDrain: {
      PayloadReader r(f.payload);
      const std::uint64_t final_seq = r.u64();
      if (!r.done()) {
        protocol_error(c, Status::kBadFrame, f.id, "bad drain body");
        return;
      }
      if (!c.helloed || c.finished || c.drain_pending ||
          final_seq < c.seq_accepted) {
        protocol_error(c, Status::kBadState, f.id, "drain state");
        return;
      }
      c.drain_pending = true;
      c.drain_reply_id = f.id;
      c.drain_final_seq = final_seq;
      maybe_finish_drain(c);
      return;
    }
    case Op::kBye: {
      if (!f.payload.empty()) {
        protocol_error(c, Status::kBadFrame, f.id, "bye takes no payload");
        return;
      }
      if (c.helloed && !c.finished) svc_->client_done(c.client_id);
      c.finished = true;
      reply(c, Status::kOk, f.id, "");
      c.close_after_flush = true;
      c.input_dead = true;
      return;
    }
  }
  protocol_error(c, Status::kError, f.id, "unknown opcode");
}

void Server::maybe_finish_drain(Conn& c) {
  if (!c.drain_pending) return;
  if (!c.finished) {
    // Retried seqs may still be arriving; only a dense prefix through
    // final_seq closes the client's admission stream.
    if (c.seq_accepted != c.drain_final_seq) return;
    svc_->client_done(c.client_id);
    c.finished = true;
  }
  if (c.outstanding == 0) {
    c.drain_pending = false;
    reply(c, Status::kOk, c.drain_reply_id, "");
  }
}

void Server::pump_completions() {
  for (const service::MemoryService::Completion& done :
       svc_->take_completions()) {
    const auto it = inflight_.find(done.id);
    if (it == inflight_.end()) continue;  // foreign (in-process) submitter
    const InFlight flight = it->second;
    inflight_.erase(it);
    const auto cit = conns_.find(flight.conn_serial);
    if (cit == conns_.end()) continue;  // client disconnected mid-request
    Conn& c = cit->second;
    RD_CHECK(c.outstanding > 0);
    --c.outstanding;
    CompletionBody body;
    body.cls = static_cast<std::uint8_t>(done.cls);
    body.enqueue = done.enqueue_time;
    body.complete = done.complete_time;
    reply(c, Status::kDone, flight.wire_id, encode_completion_body(body));
    if (c.drain_pending) maybe_finish_drain(c);
  }
}

bool Server::flush(Conn& c) {
  while (!c.wbuf.empty()) {
    const ssize_t n =
        ::send(c.fd, c.wbuf.data(), c.wbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      c.wbuf.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void Server::close_conn(std::uint64_t serial) {
  const auto it = conns_.find(serial);
  if (it == conns_.end()) return;
  // Unstick the sequence merge: a vanished client must not gate other
  // clients' admissions forever.
  if (it->second.helloed) svc_->client_done(it->second.client_id);
  ::close(it->second.fd);
  conns_.erase(it);
}

void Server::run(bool oneshot) {
  RD_CHECK_MSG(listen_fd_ >= 0, "Server::run before start()");
  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> order;
  while (!stop_.load(std::memory_order_acquire)) {
    pfds.clear();
    order.clear();
    pfds.push_back(pollfd{wake_r_, POLLIN, 0});
    const bool can_accept = conns_.size() < cfg_.max_conns;
    if (can_accept) pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const auto& [serial, c] : conns_) {
      short events = 0;
      if (!c.input_dead) events |= POLLIN;
      if (!c.wbuf.empty()) events |= POLLOUT;
      pfds.push_back(pollfd{c.fd, events, 0});
      order.push_back(serial);
    }
    const int rc =
        ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), -1);
    if (rc < 0) {
      RD_CHECK_MSG(errno == EINTR, "poll: " << errno);
      continue;
    }
    if (pfds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wake_r_, buf, sizeof buf) > 0) {
      }
    }
    if (can_accept && (pfds[1].revents & POLLIN)) accept_new();

    const std::size_t base = can_accept ? 2 : 1;
    std::set<std::uint64_t> dead;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const short rev = pfds[base + i].revents;
      if (rev == 0) continue;
      Conn& c = conns_.at(order[i]);
      if (rev & (POLLERR | POLLNVAL)) {
        dead.insert(order[i]);
        continue;
      }
      // POLLHUP can still carry buffered bytes; read them out — fill()
      // reports the EOF once the kernel buffer is empty.
      if (rev & (POLLIN | POLLHUP)) {
        if (!fill(c)) {
          dead.insert(order[i]);
          continue;
        }
        process_rbuf(c);
      }
    }

    pump_completions();

    for (auto& [serial, c] : conns_) {
      if (dead.count(serial)) continue;
      if (c.wbuf.size() > cfg_.write_buf_limit) {
        // Slow reader: its backlog, its problem. Shedding (not blocking)
        // keeps every other client's completions flowing.
        conns_shed_.fetch_add(1, std::memory_order_relaxed);
        dead.insert(serial);
        continue;
      }
      if (!flush(c)) {
        dead.insert(serial);
        continue;
      }
      if (c.close_after_flush && c.wbuf.empty()) dead.insert(serial);
    }
    for (const std::uint64_t serial : dead) close_conn(serial);

    if (oneshot && saw_conn_ && conns_.empty()) return;
  }
}

}  // namespace rd::net
