#include "net/frame.h"

#include <array>

namespace rd::net {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

std::uint16_t get_u16le(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64le(const unsigned char* p) {
  return static_cast<std::uint64_t>(get_u32le(p)) |
         (static_cast<std::uint64_t>(get_u32le(p + 4)) << 32);
}

void put_u16(std::string& s, std::uint16_t v) {
  s.push_back(static_cast<char>(v & 0xFF));
  s.push_back(static_cast<char>((v >> 8) & 0xFF));
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (char ch : data) {
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

const char* decode_status_name(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kFrame: return "frame";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadReserved: return "bad-reserved";
    case DecodeStatus::kOversize: return "oversize";
    case DecodeStatus::kBadCrc: return "bad-crc";
  }
  return "?";
}

void encode_frame(std::uint8_t type, std::uint64_t id,
                  std::string_view payload, std::string& out) {
  out.reserve(out.size() + kHeaderSize + payload.size());
  put_u16(out, kMagic);
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u64(out, id);
  put_u32(out, crc32(payload));
  put_u32(out, 0);  // reserved
  out.append(payload);
}

DecodeStatus frame_extent(const std::string& buf, std::size_t max_payload,
                          std::size_t& total) {
  if (buf.size() < kHeaderSize) {
    // A short buffer can still be rejected early: the magic (and version)
    // are wrong as soon as their bytes are present.
    const auto* p = reinterpret_cast<const unsigned char*>(buf.data());
    if (buf.size() >= 2 && get_u16le(p) != kMagic) {
      return DecodeStatus::kBadMagic;
    }
    if (buf.size() >= 3 && p[2] != kVersion) {
      return DecodeStatus::kBadVersion;
    }
    return DecodeStatus::kNeedMore;
  }
  const auto* p = reinterpret_cast<const unsigned char*>(buf.data());
  if (get_u16le(p) != kMagic) return DecodeStatus::kBadMagic;
  if (p[2] != kVersion) return DecodeStatus::kBadVersion;
  const std::uint32_t len = get_u32le(p + 4);
  if (len > max_payload) return DecodeStatus::kOversize;
  if (get_u32le(p + 20) != 0) return DecodeStatus::kBadReserved;
  total = kHeaderSize + len;
  if (buf.size() < total) return DecodeStatus::kNeedMore;
  return DecodeStatus::kFrame;
}

DecodeStatus decode_frame(std::string& buf, std::size_t max_payload,
                          Frame& out) {
  std::size_t total = 0;
  const DecodeStatus st = frame_extent(buf, max_payload, total);
  if (st != DecodeStatus::kFrame) return st;
  const auto* p = reinterpret_cast<const unsigned char*>(buf.data());
  out.type = p[3];
  out.id = get_u64le(p + 8);
  const std::uint32_t want_crc = get_u32le(p + 16);
  const std::string_view payload(buf.data() + kHeaderSize,
                                 total - kHeaderSize);
  if (crc32(payload) != want_crc) {
    out.payload.clear();
    buf.erase(0, total);
    return DecodeStatus::kBadCrc;
  }
  out.payload.assign(payload);
  buf.erase(0, total);
  return DecodeStatus::kFrame;
}

void put_u8(std::string& s, std::uint8_t v) {
  s.push_back(static_cast<char>(v));
}

void put_u32(std::string& s, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    s.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& s, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    s.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_i64(std::string& s, std::int64_t v) {
  put_u64(s, static_cast<std::uint64_t>(v));
}

const unsigned char* PayloadReader::take(std::size_t n) {
  if (!ok_ || s_.size() - off_ < n) {
    ok_ = false;
    return nullptr;
  }
  const auto* p =
      reinterpret_cast<const unsigned char*>(s_.data()) + off_;
  off_ += n;
  return p;
}

std::uint8_t PayloadReader::u8() {
  const unsigned char* p = take(1);
  return p ? *p : 0;
}

std::uint32_t PayloadReader::u32() {
  const unsigned char* p = take(4);
  return p ? get_u32le(p) : 0;
}

std::uint64_t PayloadReader::u64() {
  const unsigned char* p = take(8);
  return p ? get_u64le(p) : 0;
}

std::int64_t PayloadReader::i64() {
  return static_cast<std::int64_t>(u64());
}

std::string_view PayloadReader::str(std::size_t n) {
  const unsigned char* p = take(n);
  return p ? std::string_view(reinterpret_cast<const char*>(p), n)
           : std::string_view();
}

std::string encode_request_body(const RequestBody& b) {
  std::string s;
  put_u64(s, b.seq);
  put_u64(s, b.line);
  put_i64(s, b.arrival.v);
  return s;
}

bool decode_request_body(std::string_view payload, RequestBody& b) {
  PayloadReader r(payload);
  b.seq = r.u64();
  b.line = r.u64();
  b.arrival = Ns{r.i64()};
  return r.done();
}

std::string encode_completion_body(const CompletionBody& b) {
  std::string s;
  put_u8(s, b.cls);
  put_i64(s, b.enqueue.v);
  put_i64(s, b.complete.v);
  return s;
}

bool decode_completion_body(std::string_view payload, CompletionBody& b) {
  PayloadReader r(payload);
  b.cls = r.u8();
  b.enqueue = Ns{r.i64()};
  b.complete = Ns{r.i64()};
  return r.done();
}

}  // namespace rd::net
