// The readduo_serve event loop: a poll-driven socket front end over one
// MemoryService (DESIGN.md §12).
//
// Single-threaded by construction: one thread owns run(), every
// connection's buffers, and the frame dispatch; the MemoryService's own
// worker pool does the simulation work. The loop never blocks on a
// client — reads and writes are nonblocking against per-connection
// bounded buffers, a slow reader that exceeds the write-buffer bound is
// shed (its connection closed) rather than allowed to stall the loop,
// and admission-queue backpressure surfaces as an explicit kRetry reply.
// Completions harvested by service workers wake the loop through a
// self-pipe (ServiceConfig::completion_hook), so poll() sleeps with no
// timeout and no busy-wait — and, per the no-wallclock rule, the server
// never reads a host clock: all timing in the system stays virtual.
//
// stop() is async-signal-safe (an atomic store plus a pipe write), so
// tools can call it from SIGINT/SIGTERM handlers.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "net/frame.h"
#include "service/memory_service.h"

namespace rd::net {

/// Server knobs. READDUO_SERVE_MAX_FRAME / _WBUF / _CONNS override the
/// wire bounds (see apply_server_env).
struct ServerConfig {
  service::ServiceConfig service;
  /// "unix:<path>" or "tcp:<host>:<port>" (socket.h).
  std::string listen = "unix:/tmp/readduo_serve.sock";
  /// Largest accepted frame payload; larger length fields are a fatal
  /// framing error (READDUO_SERVE_MAX_FRAME).
  std::size_t max_payload = kDefaultMaxPayload;
  /// Per-connection write-buffer bound; a reader slower than this sheds
  /// (READDUO_SERVE_WBUF).
  std::size_t write_buf_limit = 4u << 20;
  /// Accepted-connection cap; excess connects wait in the listen backlog
  /// (READDUO_SERVE_CONNS).
  std::size_t max_conns = 64;
  /// SO_SNDBUF for accepted connections; 0 keeps the OS default. Tests
  /// shrink it so a slow reader backs up into write_buf_limit quickly.
  std::size_t sock_sndbuf = 0;
};

/// Overlay READDUO_SERVE_MAX_FRAME / _WBUF / _CONNS onto `cfg`.
void apply_server_env(ServerConfig& cfg);

/// Monotonic wire counters (relaxed atomics: written by the run()
/// thread, readable from anywhere).
struct ServerCounters {
  std::uint64_t conns_accepted = 0;
  std::uint64_t conns_shed = 0;     ///< closed for write-buffer overflow
  std::uint64_t frames_rx = 0;      ///< well-formed frames dispatched
  std::uint64_t frames_bad = 0;     ///< rejected (framing, CRC, body)
  std::uint64_t crc_errors = 0;     ///< subset of frames_bad
  std::uint64_t wire_faults = 0;    ///< injected by the wire fault clause
  std::uint64_t retries_sent = 0;   ///< kRetry backpressure replies
};

class Server {
 public:
  explicit Server(const ServerConfig& cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen. Throws rd::CheckFailure on failure.
  void start();

  /// Resolved listen address (tcp port filled in). Valid after start().
  const std::string& address() const { return bound_; }

  /// The poll loop; returns after stop(), or — with `oneshot` — once at
  /// least one connection was accepted and all of them have gone.
  void run(bool oneshot = false);

  /// Ask run() to return. Callable from any thread or a signal handler.
  void stop();

  service::MemoryService& service() { return *svc_; }
  ServerCounters counters() const;

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t serial = 0;  ///< key in conns_
    std::string rbuf;
    std::string wbuf;
    bool helloed = false;
    std::uint64_t client_id = 0;
    bool finished = false;       ///< client_done sent; data ops rejected
    bool drain_pending = false;  ///< kDrain seen, ack not yet sent
    std::uint64_t drain_reply_id = 0;
    std::uint64_t drain_final_seq = 0;  ///< from the kDrain payload
    std::uint64_t seq_accepted = 0;     ///< highest kAccepted seq (dense)
    bool close_after_flush = false;
    bool input_dead = false;  ///< fatal framing error; stop parsing
    std::uint64_t outstanding = 0;  ///< accepted, completion not yet sent
    std::uint64_t frames_rx = 0;    ///< wire fault-injection serial
  };

  /// A request admitted into the service, waiting for its completion.
  struct InFlight {
    std::uint64_t conn_serial = 0;
    std::uint64_t wire_id = 0;
  };

  void wake();
  void accept_new();
  /// Drain readable bytes into rbuf; false on EOF / hard error.
  bool fill(Conn& c);
  void process_rbuf(Conn& c);
  void handle_frame(Conn& c, const Frame& f);
  void reply(Conn& c, Status st, std::uint64_t id, std::string_view payload);
  /// Reply and mark the connection for a clean close.
  void protocol_error(Conn& c, Status st, std::uint64_t id,
                      std::string_view reason);
  /// Once every seq through drain_final_seq is accepted, declare the
  /// client done to the service; ack the drain when the last completion
  /// has also been queued for sending.
  void maybe_finish_drain(Conn& c);
  /// Route retained completions to their connections' write buffers.
  void pump_completions();
  /// False on hard send error (peer gone).
  bool flush(Conn& c);
  void close_conn(std::uint64_t serial);

  ServerConfig cfg_;
  std::unique_ptr<service::MemoryService> svc_;
  std::string bound_;
  std::string unlink_path_;  ///< unix socket file to remove on teardown
  int listen_fd_ = -1;
  int wake_r_ = -1;
  int wake_w_ = -1;
  bool saw_conn_ = false;  ///< oneshot latch (run() thread only)

  std::uint64_t next_conn_serial_ = 1;
  std::uint64_t next_svc_id_ = 1;
  std::map<std::uint64_t, Conn> conns_;
  std::map<std::uint64_t, InFlight> inflight_;  ///< by service request id

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> conns_accepted_{0};
  std::atomic<std::uint64_t> conns_shed_{0};
  std::atomic<std::uint64_t> frames_rx_{0};
  std::atomic<std::uint64_t> frames_bad_{0};
  std::atomic<std::uint64_t> crc_errors_{0};
  std::atomic<std::uint64_t> wire_faults_{0};
  std::atomic<std::uint64_t> retries_sent_{0};
};

}  // namespace rd::net
