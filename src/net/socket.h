// Address parsing and socket plumbing for the wire front end.
//
// Addresses are strings of two forms:
//   "unix:<path>"       — a Unix-domain stream socket at <path>
//   "tcp:<host>:<port>" — TCP over loopback or a real interface;
//                         port 0 asks the kernel for a free port, and
//                         listen_on reports the resolved address back
//                         (tests use "tcp:127.0.0.1:0").
//
// These helpers throw rd::CheckFailure on malformed addresses or socket
// errors — tools turn that into a clean fatal diagnostic.
#pragma once

#include <cstdint>
#include <string>

namespace rd::net {

struct ParsedAddr {
  bool is_unix = true;
  std::string path;  ///< unix: socket path
  std::string host;  ///< tcp: numeric or resolvable host
  std::uint16_t port = 0;
};

/// Parse "unix:<path>" / "tcp:<host>:<port>". Throws on anything else.
ParsedAddr parse_addr(const std::string& addr);

/// Bind + listen. For unix addresses a stale socket file is unlinked
/// first. Returns the listening fd (nonblocking) and writes the resolved
/// address (tcp port filled in) to `bound`.
int listen_on(const ParsedAddr& addr, std::string& bound);

/// Blocking connect to an address string. Returns a connected fd.
int connect_to(const std::string& addr);

void set_nonblocking(int fd);

}  // namespace rd::net
