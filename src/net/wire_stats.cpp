#include "net/wire_stats.h"

#include <array>

#include "net/frame.h"
#include "stats/histogram.h"
#include "stats/metrics.h"

namespace rd::net {

namespace {

void put_hist(std::string& s, const stats::LatencyHistogram& h) {
  put_i64(s, h.sum());
  put_i64(s, h.max());
  put_u32(s, static_cast<std::uint32_t>(stats::LatencyHistogram::kNumBuckets));
  for (std::uint64_t b : h.buckets()) put_u64(s, b);
}

bool get_hist(PayloadReader& r, stats::LatencyHistogram& h) {
  const std::int64_t sum = r.i64();
  const std::int64_t max = r.i64();
  if (r.u32() != stats::LatencyHistogram::kNumBuckets) return false;
  std::array<std::uint64_t, stats::LatencyHistogram::kNumBuckets> buckets{};
  for (std::uint64_t& b : buckets) b = r.u64();
  if (!r.ok()) return false;
  h.restore(buckets, sum, max);
  return true;
}

}  // namespace

std::string encode_stats(const service::ServiceStats& st,
                         const WireServiceInfo& info) {
  std::string s;
  put_u8(s, kStatsBlobVersion);
  put_u64(s, info.shards);
  put_u64(s, info.queue);
  put_u64(s, info.batch);
  put_u64(s, info.threads);
  put_u64(s, st.submitted);
  put_u64(s, st.rejected);
  put_u64(s, st.admitted);
  put_u64(s, st.completed);
  put_u64(s, st.scrubs);
  put_u64(s, st.write_cancellations);
  put_u64(s, st.scrub_rewrites_dropped);
  put_u64(s, st.seq_held);
  put_i64(s, st.virtual_time.v);
  for (const stats::LatencyHistogram& h : st.metrics.latency) put_hist(s, h);
  put_u32(s, static_cast<std::uint32_t>(st.metrics.banks.size()));
  for (const stats::BankGauge& b : st.metrics.banks) {
    put_i64(s, b.busy_ns);
    put_u64(s, b.depth_samples);
    put_u64(s, b.depth_sum);
    put_u64(s, b.depth_max);
  }
  return s;
}

bool decode_stats(std::string_view payload, service::ServiceStats& st,
                  WireServiceInfo& info) {
  PayloadReader r(payload);
  if (r.u8() != kStatsBlobVersion) return false;
  info.shards = r.u64();
  info.queue = r.u64();
  info.batch = r.u64();
  info.threads = r.u64();
  st.submitted = r.u64();
  st.rejected = r.u64();
  st.admitted = r.u64();
  st.completed = r.u64();
  st.scrubs = r.u64();
  st.write_cancellations = r.u64();
  st.scrub_rewrites_dropped = r.u64();
  st.seq_held = r.u64();
  st.virtual_time = Ns{r.i64()};
  for (stats::LatencyHistogram& h : st.metrics.latency) {
    if (!get_hist(r, h)) return false;
  }
  const std::uint32_t nbanks = r.u32();
  if (!r.ok() || nbanks > (1u << 20)) return false;
  st.metrics.banks.assign(nbanks, stats::BankGauge{});
  for (stats::BankGauge& b : st.metrics.banks) {
    b.busy_ns = r.i64();
    b.depth_samples = r.u64();
    b.depth_sum = r.u64();
    b.depth_max = r.u64();
  }
  return r.done();
}

}  // namespace rd::net
