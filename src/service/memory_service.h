// Memory-service front end: the chip as a server.
//
// A MemoryService owns N independent shards, each a full open-system
// memsim::Simulator (banks, queues, scheme policy, background scrub
// engine) driven incrementally via step(). Clients submit requests
// carrying a *virtual* arrival time into bounded per-shard MPSC queues;
// worker threads (READDUO_THREADS, capped at the shard count) pop
// batches and admit them into their shards' bank queues, stepping each
// simulator across the arrival gaps so scrub keeps ticking between
// batches.
//
// Determinism contract (same rule as PR 1's mc_ler): a shard's final
// state is a pure function of (its seed, its admitted request sequence).
// Requests are admitted in per-shard FIFO order at their virtual arrival
// times, and worker threads never share a shard, so per-shard results
// are bit-identical across thread counts, batch sizes, and wall-clock
// scheduling; with a single submitting client the whole service is
// bit-identical across repeats.
//
// Multi-client admission (the wire front end, DESIGN.md §12): each
// client labels its requests with a monotonically increasing sequence
// number and a nondecreasing virtual arrival time. submit_sequenced()
// buffers requests in a merge buffer ordered by the total order
// (arrival, client id, seq) and releases a buffered request only once
// every active client's watermark has passed it — at which point no
// client can ever submit a request that sorts earlier, so the admission
// order is a pure function of the *set* of (client, seq, request)
// tuples, never of socket arrival interleaving.
//
// Locking discipline (compiler-checked via common/thread_annotations.h;
// the field->capability map is in DESIGN.md §8): each shard carries two
// capabilities — q_mu over the submission queue, sim_mu over the
// simulator and its admission counters — plus a lock-free pending count
// for quiescence checks. Lock order: seq_mu_ -> shard q_mu (the merge
// buffer releases into shard queues while holding seq_mu_, which is what
// makes the release order deterministic); otherwise strictly
// one-at-a-time — no code path holds two shard mutexes, or a shard
// mutex and state_mu_, simultaneously. comp_mu_ is a leaf.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "common/units.h"
#include "memsim/simulator.h"
#include "readduo/schemes.h"
#include "stats/metrics.h"
#include "trace/workload.h"

namespace rd::service {

/// Service knobs. READDUO_SERVICE_SHARDS / _QUEUE / _BATCH override the
/// first three (see apply_service_env).
struct ServiceConfig {
  /// Independent chips; requests are routed by line.
  unsigned num_shards = 4;
  /// Bound of each shard's submission queue (admission backpressure).
  std::size_t queue_capacity = 4096;
  /// Max requests a worker admits per shard visit.
  std::size_t batch_size = 256;
  /// Worker threads; 0 = parallel_thread_count(). Capped at num_shards.
  unsigned worker_threads = 0;
  /// Per-shard simulator configuration. cpu.num_cores is forced to 0
  /// (the service is the request source); seed is decorrelated per shard.
  memsim::SimConfig sim;
  readduo::SchemeKind scheme = readduo::SchemeKind::kHybrid;
  readduo::ReadDuoOptions scheme_opts;
  /// Supplies the scheme-environment parameters (drift-age model, write
  /// rate); the trace generators themselves are unused.
  trace::Workload workload;
  /// Keep harvested completions for take_completions() instead of
  /// dropping them after counting (the wire server needs them).
  bool retain_completions = false;
  /// Invoked (on a worker thread, no service locks held) after a batch
  /// of completions is harvested; the wire server uses it to wake its
  /// poll loop. Must be async-signal-ish cheap and must not call back
  /// into the service.
  std::function<void()> completion_hook;
};

/// Overlay READDUO_SERVICE_SHARDS / _QUEUE / _BATCH (strictly parsed)
/// onto `cfg`.
void apply_service_env(ServiceConfig& cfg);

/// One client request. `arrival` is virtual time: the service's clock,
/// not the host's. `id` must be nonzero and unique among in-flight
/// requests of the same shard.
struct Request {
  std::uint64_t id = 0;
  std::uint64_t line = 0;
  bool is_write = false;
  bool archive = false;
  Ns arrival{0};
};

/// Live service-wide snapshot (shards merged).
struct ServiceStats {
  std::uint64_t submitted = 0;  ///< accepted into a submission queue
  std::uint64_t rejected = 0;   ///< bounced off a full queue
  std::uint64_t admitted = 0;   ///< handed to a simulator's bank queues
  std::uint64_t completed = 0;  ///< completions harvested
  std::uint64_t scrubs = 0;
  std::uint64_t write_cancellations = 0;
  std::uint64_t scrub_rewrites_dropped = 0;
  std::uint64_t seq_held = 0;  ///< buffered in the sequence-merge buffer
  Ns virtual_time{0};          ///< max shard clock
  stats::SimMetrics metrics;
};

/// Outcome of submit_sequenced().
enum class SubmitStatus {
  kAccepted,    ///< buffered or admitted; will complete
  kQueueFull,   ///< client already holds queue_capacity buffered requests
  kOutOfOrder,  ///< seq skips ahead (a predecessor was lost — e.g. to a
                ///< CRC reject); resend from the gap, order recovers
  kBadSeq,      ///< seq replayed, arrival went backwards, or client done
};

class MemoryService {
 public:
  explicit MemoryService(const ServiceConfig& cfg);
  ~MemoryService();

  MemoryService(const MemoryService&) = delete;
  MemoryService& operator=(const MemoryService&) = delete;

  unsigned num_shards() const { return static_cast<unsigned>(shards_.size()); }
  unsigned worker_threads() const { return worker_count_; }
  unsigned shard_of(std::uint64_t line) const {
    return static_cast<unsigned>(line % shards_.size());
  }

  using Completion = memsim::Simulator::Completion;

  /// Enqueue a request; returns false when the target shard's bounded
  /// queue is full (client backpressure — retry after completions drain).
  bool submit(const Request& req);

  /// Register a sequenced client. False when the id is zero or already
  /// registered (ids are single-use, even after client_done).
  bool register_client(std::uint64_t client);

  /// Sequenced multi-client submission (see the file comment). `seq`
  /// must be exactly the client's previous seq + 1 (starting at 1) and
  /// `req.arrival` must be nondecreasing per client. A seq that skips
  /// ahead returns kOutOfOrder and changes nothing (the pipelined wire
  /// path recovers by resending from the gap); a replayed seq, a
  /// backwards arrival, or a finished client is kBadSeq. Rejections
  /// never advance state, so a retry resends the same seq.
  /// Backpressure is per client: at most queue_capacity requests
  /// buffered per client (the shard-queue bound does not apply to
  /// merge-buffer releases — the per-client bound is what keeps the
  /// buffer finite without cross-client deadlock).
  SubmitStatus submit_sequenced(std::uint64_t client, std::uint64_t seq,
                                const Request& req);

  /// Declare a sequenced client finished: its watermark stops gating the
  /// merge buffer. Idempotent. Every registered client must eventually
  /// call this or the buffer can stall behind its watermark.
  void client_done(std::uint64_t client);

  /// Harvested completions since the last call (requires
  /// cfg.retain_completions). Order within a shard is deterministic;
  /// interleaving across shards is not.
  std::vector<Completion> take_completions();

  /// Block until everything submitted so far is admitted and completed.
  /// The background scrub engines keep running.
  void drain();

  /// Drain, stop the scrub engines, and join the workers. Idempotent;
  /// also called by the destructor.
  void stop();

  /// Live merged snapshot (locks each shard briefly; safe while workers
  /// run).
  ServiceStats stats() const;

  /// One shard's simulator result. Only meaningful when quiesced (after
  /// drain()/stop()); takes the shard's sim_mu so the read is safe (and
  /// annotation-clean) even if called early.
  const memsim::SimResult& shard_result(unsigned shard) const;

 private:
  struct Shard {
    /// Set once in the MemoryService constructor, before any worker
    /// exists; immutable afterwards — no capability needed.
    std::unique_ptr<readduo::Scheme> scheme;

    Mutex q_mu;  ///< submission-side capability
    std::deque<Request> q RD_GUARDED_BY(q_mu);
    std::uint64_t submitted RD_GUARDED_BY(q_mu) = 0;

    Mutex sim_mu;  ///< simulation-side capability
    /// The pointer is set once in the constructor; the pointee (the
    /// incrementally-stepped simulator) is sim_mu's to guard.
    std::unique_ptr<memsim::Simulator> sim RD_PT_GUARDED_BY(sim_mu);
    std::uint64_t admitted RD_GUARDED_BY(sim_mu) = 0;
    std::uint64_t completed RD_GUARDED_BY(sim_mu) = 0;

    /// submitted - completed, maintained lock-free so quiescence checks
    /// (cv predicates) never touch the shard mutexes. Lock order is
    /// strictly shard mutex -> nothing; state_mu_ -> nothing.
    std::atomic<std::uint64_t> pending{0};
  };

  /// Total admission order of the sequence merge: lexicographic
  /// (arrival, client, seq). Per client, arrivals are nondecreasing and
  /// seqs strictly increase, so every future request from client c sorts
  /// strictly after c's watermark (the key of its latest submission).
  struct SeqKey {
    Ns arrival{0};
    std::uint64_t client = 0;
    std::uint64_t seq = 0;
    friend bool operator<(const SeqKey& a, const SeqKey& b) {
      if (a.arrival.v != b.arrival.v) return a.arrival.v < b.arrival.v;
      if (a.client != b.client) return a.client < b.client;
      return a.seq < b.seq;
    }
  };

  struct ClientState {
    std::uint64_t last_seq = 0;  ///< 0 = nothing submitted yet
    Ns last_arrival{0};
    std::size_t held = 0;  ///< requests buffered in merge_buf_
    bool done = false;
  };

  /// Release every merge-buffer entry at or before the minimum active
  /// watermark into the shard queues (bypassing the shard-queue bound),
  /// in key order, under seq_mu_ — concurrent callers therefore push in
  /// a single global order. Also refreshes seq_quiesce_. Returns the
  /// number released.
  std::size_t release_ready() RD_REQUIRES(seq_mu_);

  void worker_main(unsigned worker);
  /// Admit one batch / step one drain chunk; true if progress was made.
  bool service_shard(Shard& sh) RD_EXCLUDES(sh.q_mu, sh.sim_mu);
  std::uint64_t owned_pending(unsigned worker) const;
  std::uint64_t total_pending() const;
  /// Bump the work epoch and wake sleepers; the empty critical section
  /// closes the lost-wakeup window against cv predicate evaluation.
  void signal() RD_EXCLUDES(state_mu_);

  ServiceConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
  unsigned worker_count_ = 1;
  std::vector<std::thread> workers_;

  /// Condition-protocol mutex: it orders sleep/wake against the atomic
  /// flags below (see signal()) and guards no plain fields, so nothing
  /// carries RD_GUARDED_BY(state_mu_).
  // lint: allow(guarded-field) condition-protocol mutex; every flag it orders is an annotated atomic
  mutable Mutex state_mu_;
  mutable CondVar state_cv_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<bool> draining_{false};
  /// True while every registered sequenced client is done: no further
  /// sequenced submission can arrive, so workers may step in-flight
  /// requests to completion exactly as during drain() (the wire tail —
  /// nothing else would ever advance virtual time past the last
  /// arrival). Cleared when a new client registers.
  std::atomic<bool> seq_quiesce_{false};
  std::atomic<bool> stop_{false};
  bool stopped_ = false;  ///< workers joined (control-plane thread only)

  /// Sequence-merge capability. Lock order: seq_mu_ -> shard q_mu.
  mutable Mutex seq_mu_;
  std::map<std::uint64_t, ClientState> clients_ RD_GUARDED_BY(seq_mu_);
  std::map<SeqKey, Request> merge_buf_ RD_GUARDED_BY(seq_mu_);

  /// Retained-completion capability (leaf; only with retain_completions).
  mutable Mutex comp_mu_;
  std::vector<Completion> completions_ RD_GUARDED_BY(comp_mu_);
};

}  // namespace rd::service
