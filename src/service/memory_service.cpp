#include "service/memory_service.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/env.h"
#include "common/parallel.h"
#include "memsim/env.h"

namespace rd::service {

void apply_service_env(ServiceConfig& cfg) {
  if (const char* e = env_cstr("READDUO_SERVICE_SHARDS")) {
    cfg.num_shards = static_cast<unsigned>(
        parse_env_u64("READDUO_SERVICE_SHARDS", e));
  }
  if (const char* e = env_cstr("READDUO_SERVICE_QUEUE")) {
    cfg.queue_capacity = static_cast<std::size_t>(
        parse_env_u64("READDUO_SERVICE_QUEUE", e));
  }
  if (const char* e = env_cstr("READDUO_SERVICE_BATCH")) {
    cfg.batch_size = static_cast<std::size_t>(
        parse_env_u64("READDUO_SERVICE_BATCH", e));
  }
}

MemoryService::MemoryService(const ServiceConfig& cfg) : cfg_(cfg) {
  RD_CHECK(cfg_.num_shards >= 1);
  RD_CHECK(cfg_.queue_capacity >= 1);
  RD_CHECK(cfg_.batch_size >= 1);
  cfg_.sim.cpu.num_cores = 0;  // the service is the request source
  for (unsigned s = 0; s < cfg_.num_shards; ++s) {
    auto sh = std::make_unique<Shard>();
    // Decorrelated per-shard seed streams (the PR 1 mc_ler pattern):
    // shard results differ across shards but stay a pure function of
    // (base seed, shard index) — never of the worker that ran them.
    memsim::SimConfig sim_cfg = cfg_.sim;
    sim_cfg.seed = cfg_.sim.seed + 0x9e3779b97f4a7c15ull * (s + 1);
    readduo::SchemeEnv env =
        memsim::make_scheme_env(cfg_.workload, sim_cfg.cpu, sim_cfg.seed);
    sh->scheme = readduo::make_scheme(cfg_.scheme, env, cfg_.scheme_opts);
    // Single-threaded here (workers not spawned yet), but the lock keeps
    // the capability bookkeeping honest — and it is uncontended.
    MutexLock g(sh->sim_mu);
    sh->sim = std::make_unique<memsim::Simulator>(sim_cfg, *sh->scheme,
                                                  cfg_.workload);
    shards_.push_back(std::move(sh));
  }
  const unsigned requested =
      cfg_.worker_threads ? cfg_.worker_threads : parallel_thread_count();
  worker_count_ =
      std::min<unsigned>(std::max(1u, requested), cfg_.num_shards);
  workers_.reserve(worker_count_);
  for (unsigned w = 0; w < worker_count_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

MemoryService::~MemoryService() { stop(); }

void MemoryService::signal() {
  epoch_.fetch_add(1, std::memory_order_release);
  { MutexLock g(state_mu_); }
  state_cv_.notify_all();
}

bool MemoryService::submit(const Request& req) {
  RD_CHECK(req.id != 0);
  Shard& sh = *shards_[shard_of(req.line)];
  {
    MutexLock g(sh.q_mu);
    if (sh.q.size() >= cfg_.queue_capacity) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    sh.q.push_back(req);
    ++sh.submitted;
    sh.pending.fetch_add(1, std::memory_order_relaxed);
  }
  signal();
  return true;
}

bool MemoryService::register_client(std::uint64_t client) {
  if (client == 0) return false;
  MutexLock g(seq_mu_);
  const bool fresh = clients_.emplace(client, ClientState{}).second;
  if (fresh) seq_quiesce_.store(false, std::memory_order_relaxed);
  return fresh;
}

std::size_t MemoryService::release_ready() {
  // The gate: nothing past the minimum active watermark may move. A
  // registered client that has not submitted yet has watermark -inf
  // (anything it sends later could sort anywhere), so it blocks all
  // releases until it speaks or finishes.
  bool have_floor = false;
  SeqKey floor{};
  for (const auto& [id, cs] : clients_) {
    if (cs.done) continue;
    if (cs.last_seq == 0) return 0;
    const SeqKey wm{cs.last_arrival, id, cs.last_seq};
    if (!have_floor || wm < floor) {
      floor = wm;
      have_floor = true;
    }
  }
  // No active client left: sequenced admission is closed, so workers may
  // step the in-flight tail to completion (see seq_quiesce_).
  seq_quiesce_.store(!clients_.empty() && !have_floor,
                     std::memory_order_relaxed);
  std::size_t released = 0;
  while (!merge_buf_.empty()) {
    const auto it = merge_buf_.begin();
    if (have_floor && floor < it->first) break;
    const Request& r = it->second;
    Shard& sh = *shards_[shard_of(r.line)];
    {
      // seq_mu_ -> q_mu: pushing while holding seq_mu_ serializes
      // concurrent releasers, so the per-shard FIFO order equals the
      // merge order. Releases bypass the shard-queue capacity — the
      // per-client held bound is the backpressure.
      MutexLock g(sh.q_mu);
      sh.q.push_back(r);
      ++sh.submitted;
    }
    --clients_.at(it->first.client).held;
    merge_buf_.erase(it);
    ++released;
  }
  return released;
}

SubmitStatus MemoryService::submit_sequenced(std::uint64_t client,
                                             std::uint64_t seq,
                                             const Request& req) {
  RD_CHECK(req.id != 0);
  std::size_t released = 0;
  {
    MutexLock g(seq_mu_);
    const auto it = clients_.find(client);
    RD_CHECK_MSG(it != clients_.end(), "submit_sequenced: unknown client");
    ClientState& cs = it->second;
    if (cs.done || seq <= cs.last_seq ||
        (seq == cs.last_seq + 1 && req.arrival.v < cs.last_arrival.v)) {
      return SubmitStatus::kBadSeq;
    }
    if (seq > cs.last_seq + 1) return SubmitStatus::kOutOfOrder;
    if (cs.held >= cfg_.queue_capacity) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return SubmitStatus::kQueueFull;
    }
    cs.last_seq = seq;
    cs.last_arrival = req.arrival;
    ++cs.held;
    merge_buf_.emplace(SeqKey{req.arrival, client, seq}, req);
    // Count toward quiescence from acceptance: drain() must cover
    // requests still held in the merge buffer.
    shards_[shard_of(req.line)]->pending.fetch_add(
        1, std::memory_order_relaxed);
    released = release_ready();
  }
  if (released > 0) signal();
  return SubmitStatus::kAccepted;
}

void MemoryService::client_done(std::uint64_t client) {
  {
    MutexLock g(seq_mu_);
    const auto it = clients_.find(client);
    RD_CHECK_MSG(it != clients_.end(), "client_done: unknown client");
    if (it->second.done) return;
    it->second.done = true;
    release_ready();
  }
  // Unconditional: even with nothing released, the last client_done may
  // have flipped seq_quiesce_, and parked workers must see it.
  signal();
}

std::vector<MemoryService::Completion> MemoryService::take_completions() {
  MutexLock g(comp_mu_);
  return std::exchange(completions_, {});
}

bool MemoryService::service_shard(Shard& sh) {
  // Pop one batch. Each shard has exactly one servicing worker, so the
  // submission queue is MPSC: producers contend on q_mu, this is the
  // only consumer.
  std::vector<Request> batch;
  {
    MutexLock g(sh.q_mu);
    const std::size_t n = std::min(cfg_.batch_size, sh.q.size());
    batch.assign(sh.q.begin(),
                 sh.q.begin() + static_cast<std::ptrdiff_t>(n));
    sh.q.erase(sh.q.begin(),
               sh.q.begin() + static_cast<std::ptrdiff_t>(n));
  }

  bool progressed = false;
  std::size_t harvested = 0;
  std::vector<memsim::Simulator::Completion> done;
  {
    MutexLock g(sh.sim_mu);
    memsim::Simulator& sim = *sh.sim;
    for (const Request& r : batch) {
      // external_* steps the simulator across the arrival gap first, so
      // the background scrub engine ticks between batches for free.
      if (r.is_write) {
        while (!sim.external_write(r.id, r.line, r.arrival)) {
          // Bounded bank write queue: make progress and retry. This
          // terminates — no new work enters the shard meanwhile, so
          // the bank queues must drain.
          sim.step_one();
        }
      } else {
        sim.external_read(r.id, r.line, r.archive, r.arrival);
      }
      ++sh.admitted;
    }
    if (batch.empty() && sh.completed < sh.admitted &&
        (draining_.load(std::memory_order_relaxed) ||
         stop_.load(std::memory_order_relaxed) ||
         seq_quiesce_.load(std::memory_order_relaxed))) {
      // Quiescing with requests still in flight: run the event loop a
      // bounded chunk at a time. In-flight scrub senses and rewrites
      // complete along the way; future scrub ticks are processed as
      // virtual time passes them, never waited for.
      for (int i = 0; i < 4096 && sim.step_one(); ++i) {
      }
      progressed = true;
    }
    done = sim.take_completions();
    harvested = done.size();
    sh.completed += harvested;
    progressed = progressed || !batch.empty() || harvested > 0;
  }
  if (harvested > 0) {
    if (cfg_.retain_completions) {
      MutexLock g(comp_mu_);
      completions_.insert(completions_.end(), done.begin(), done.end());
    }
    sh.pending.fetch_sub(harvested, std::memory_order_relaxed);
  }
  if (progressed) signal();
  // After signal(), with no service locks held: the hook may poke file
  // descriptors or condition variables of its own.
  if (harvested > 0 && cfg_.completion_hook) cfg_.completion_hook();
  return progressed;
}

std::uint64_t MemoryService::owned_pending(unsigned worker) const {
  std::uint64_t n = 0;
  for (unsigned s = worker; s < shards_.size(); s += worker_count_) {
    n += shards_[s]->pending.load(std::memory_order_relaxed);
  }
  return n;
}

std::uint64_t MemoryService::total_pending() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) {
    n += sh->pending.load(std::memory_order_relaxed);
  }
  return n;
}

void MemoryService::worker_main(unsigned worker) {
  for (;;) {
    const std::uint64_t seen = epoch_.load(std::memory_order_acquire);
    bool progressed = false;
    for (unsigned s = worker; s < shards_.size(); s += worker_count_) {
      progressed = service_shard(*shards_[s]) || progressed;
    }
    if (progressed) continue;
    if (stop_.load(std::memory_order_relaxed) && owned_pending(worker) == 0) {
      return;
    }
    {
      MutexLock lk(state_mu_);
      // While quiescing, a worker with in-flight requests keeps stepping
      // (the drain-chunk branch in service_shard counts as progress), so
      // this wait only parks workers with genuinely nothing to do. The
      // predicate is open-coded: every term is an atomic, and a lambda
      // would be analyzed as an unannotated function (see CondVar).
      while (!(stop_.load(std::memory_order_relaxed) ||
               epoch_.load(std::memory_order_acquire) != seen ||
               ((draining_.load(std::memory_order_relaxed) ||
                 seq_quiesce_.load(std::memory_order_relaxed)) &&
                owned_pending(worker) > 0))) {
        state_cv_.wait(state_mu_);
      }
    }
    if (stop_.load(std::memory_order_relaxed) && owned_pending(worker) == 0) {
      return;
    }
  }
}

void MemoryService::drain() {
  draining_.store(true, std::memory_order_relaxed);
  signal();
  {
    MutexLock lk(state_mu_);
    while (total_pending() != 0) state_cv_.wait(state_mu_);
  }
  draining_.store(false, std::memory_order_relaxed);
}

void MemoryService::stop() {
  if (stopped_) return;
  {
    // No further sequenced submissions can arrive once we stop; flush
    // the merge buffer in key order (still deterministic — it is the
    // final set) so drain() cannot stall behind an abandoned client.
    MutexLock g(seq_mu_);
    for (auto& [id, cs] : clients_) {
      (void)id;
      cs.done = true;
    }
    release_ready();
  }
  drain();
  stop_.store(true, std::memory_order_relaxed);
  signal();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  stopped_ = true;
  for (auto& shp : shards_) {
    // Workers are joined; the lock is uncontended but keeps the
    // sim-capability bookkeeping checkable.
    MutexLock g(shp->sim_mu);
    shp->sim->stop_scrub();
  }
}

ServiceStats MemoryService::stats() const {
  ServiceStats st;
  st.rejected = rejected_.load(std::memory_order_relaxed);
  {
    MutexLock g(seq_mu_);
    st.seq_held = merge_buf_.size();
  }
  for (const auto& shp : shards_) {
    Shard& sh = *shp;
    {
      MutexLock g(sh.q_mu);
      st.submitted += sh.submitted;
    }
    MutexLock g(sh.sim_mu);
    st.admitted += sh.admitted;
    st.completed += sh.completed;
    const memsim::SimResult& r = sh.sim->result();
    st.scrubs += r.scrubs_serviced;
    st.write_cancellations += r.write_cancellations;
    st.scrub_rewrites_dropped += r.scrub_rewrites_dropped;
    st.virtual_time = std::max(st.virtual_time, sh.sim->current_time());
    st.metrics.merge(r.metrics);
  }
  return st;
}

const memsim::SimResult& MemoryService::shard_result(unsigned shard) const {
  Shard& sh = *shards_[shard];
  MutexLock g(sh.sim_mu);
  return sh.sim->result();
}

}  // namespace rd::service
