#include "ecc/bch.h"

#include <algorithm>
#include <bit>

#include "common/check.h"
#include "common/simd_kernels.h"

namespace rd::ecc {

using gf::Elem;
using gf::Field;
using gf::Poly;

BchCode::BchCode(unsigned m, unsigned t, unsigned data_bits, KernelMode mode)
    : field_(m),
      t_(t),
      data_bits_(data_bits),
      mode_(resolve_kernel_mode(mode)) {
  RD_CHECK(t >= 1);
  // g(x) = lcm of minimal polynomials of alpha^1 .. alpha^2t. Since minimal
  // polynomials are either identical (same cyclotomic coset) or coprime,
  // the lcm is the product over distinct cosets.
  std::vector<std::uint32_t> seen_cosets;
  Poly g = Poly::constant(1);
  for (std::uint32_t s = 1; s <= 2 * t; ++s) {
    auto coset = cyclotomic_coset(field_, s);
    const std::uint32_t rep = *std::min_element(coset.begin(), coset.end());
    if (std::find(seen_cosets.begin(), seen_cosets.end(), rep) !=
        seen_cosets.end()) {
      continue;
    }
    seen_cosets.push_back(rep);
    g = Poly::mul(field_, g, minimal_polynomial(field_, s));
  }
  gen_ = g;
  parity_bits_ = static_cast<unsigned>(g.degree());
  RD_CHECK_MSG(data_bits_ + parity_bits_ <= field_.order(),
               "payload too large for GF(2^" << m << ") BCH");
  gen_bits_.resize(parity_bits_ + 1);
  for (unsigned i = 0; i <= parity_bits_; ++i) {
    const Elem c = gen_.coeff(i);
    RD_CHECK(c == 0 || c == 1);
    gen_bits_[i] = static_cast<std::uint8_t>(c);
  }

  if (mode_ != KernelMode::kReference) {
    // alpha^(pos * k) for every position and every odd k in [1, 2t); the
    // even syndromes follow from S_2k = S_k^2. Built incrementally with
    // reduced exponents, so construction is one table lookup per entry.
    // Vectorized mode builds it too: it is the scalar-dispatch fallback.
    const std::uint32_t n = field_.order();
    syn_pow_.resize(static_cast<std::size_t>(t_) * n);
    for (unsigned r = 0; r < t_; ++r) {
      const std::uint32_t k = 2 * r + 1;
      Elem* row = syn_pow_.data() + static_cast<std::size_t>(r) * n;
      std::uint32_t e = 0;  // pos * k mod n
      for (std::uint32_t pos = 0; pos < n; ++pos) {
        row[pos] = field_.alpha_pow_reduced(e);
        e += k;
        if (e >= n) e -= n;
      }
    }
  }
  if (mode_ == KernelMode::kVectorized && t_ <= 32) {
    // Position-major lane table for the SIMD syndrome kernel: row `pos`
    // holds the t_ odd-syndrome contributions of that position, padded to
    // a multiple of 8 lanes with zeros (XOR identity). Only the shortened
    // positions [0, codeword_bits) exist as rows — a received bit maps to
    // pos = parity + bit (data) or bit - data (parity), both < codeword
    // length. t_ > 32 would exceed the lane kernels' register-resident
    // accumulator cap, so no table is built and the vectorized syndrome
    // path falls back to the optimized kernel.
    syn_stride_ = (static_cast<std::size_t>(t_) + 7) / 8 * 8;
    syn_pos_.assign(static_cast<std::size_t>(codeword_bits()) * syn_stride_,
                    0);
    const std::uint32_t n = field_.order();
    std::vector<std::uint32_t> e(t_, 0);  // e[r] = pos * (2r + 1) mod n
    for (std::uint32_t pos = 0; pos < codeword_bits(); ++pos) {
      Elem* row = syn_pos_.data() + pos * syn_stride_;
      for (unsigned r = 0; r < t_; ++r) {
        row[r] = field_.alpha_pow_reduced(e[r]);
        e[r] += 2 * r + 1;
        if (e[r] >= n) e[r] -= n;
      }
    }
  }
}

BitVec BchCode::parity(const BitVec& data) const {
  RD_CHECK(data.size() == data_bits_);
  // LFSR division of x^parity * d(x) by g(x). Feed data bits from the
  // highest power down (data bit j corresponds to x^(parity + j)).
  std::vector<std::uint8_t> reg(parity_bits_, 0);
  for (std::size_t j = data_bits_; j-- > 0;) {
    const std::uint8_t feedback =
        static_cast<std::uint8_t>(data.get(j)) ^ reg[parity_bits_ - 1];
    for (std::size_t i = parity_bits_ - 1; i > 0; --i) {
      reg[i] = reg[i - 1] ^ (feedback & gen_bits_[i]);
    }
    reg[0] = feedback & gen_bits_[0];
  }
  BitVec out(parity_bits_);
  for (unsigned i = 0; i < parity_bits_; ++i) out.set(i, reg[i] != 0);
  return out;
}

BitVec BchCode::encode(const BitVec& data) const {
  const BitVec p = parity(data);
  BitVec cw(codeword_bits());
  for (unsigned i = 0; i < data_bits_; ++i) cw.set(i, data.get(i));
  for (unsigned i = 0; i < parity_bits_; ++i) cw.set(data_bits_ + i, p.get(i));
  return cw;
}

bool BchCode::syndromes_reference(const BitVec& word,
                                  std::vector<Elem>& s) const {
  s.assign(2 * t_ + 1, 0);  // s[1..2t]; s[0] unused
  bool all_zero = true;
  // Polynomial position of bit: parity bit i -> x^i, data bit j ->
  // x^(parity + j).
  for (std::size_t bit = 0; bit < word.size(); ++bit) {
    if (!word.get(bit)) continue;
    const std::size_t pos =
        bit < data_bits_ ? parity_bits_ + bit : bit - data_bits_;
    for (unsigned k = 1; k <= 2 * t_; ++k) {
      s[k] ^= field_.alpha_pow(static_cast<std::int64_t>(pos) * k);
    }
  }
  for (unsigned k = 1; k <= 2 * t_; ++k) {
    if (s[k] != 0) {
      all_zero = false;
      break;
    }
  }
  return all_zero;
}

bool BchCode::syndromes_optimized(const BitVec& word,
                                  std::vector<Elem>& s) const {
  s.assign(2 * t_ + 1, 0);  // s[1..2t]; s[0] unused
  const std::uint32_t n = field_.order();
  // Odd syndromes: word-parallel scan of set bits (skip zero words whole),
  // one table lookup per (set bit, odd k).
  const std::vector<std::uint64_t>& words = word.words();
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    std::uint64_t w = words[wi];
    while (w != 0) {
      const std::size_t bit =
          wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
      w &= w - 1;
      const std::size_t pos =
          bit < data_bits_ ? parity_bits_ + bit : bit - data_bits_;
      const Elem* col = syn_pow_.data() + pos;
      for (unsigned r = 0; r < t_; ++r) {
        s[2 * r + 1] ^= col[static_cast<std::size_t>(r) * n];
      }
    }
  }
  // Even syndromes from the Frobenius identity S_2k = S_k^2 (binary BCH);
  // increasing k keeps every dependency already filled.
  for (unsigned k = 2; k <= 2 * t_; k += 2) s[k] = field_.sqr(s[k / 2]);
  for (unsigned k = 1; k <= 2 * t_; ++k) {
    if (s[k] != 0) return false;
  }
  return true;
}

bool BchCode::syndromes_vectorized(const BitVec& word,
                                   std::vector<Elem>& s) const {
  const SimdLevel level = simd_level();
  if (level == SimdLevel::kScalar || syn_pos_.empty()) {
    return syndromes_optimized(word, s);
  }
  // One XOR-accumulation pass over the set bits fills all odd syndromes
  // at once from the position-major table; evens follow by Frobenius.
  alignas(32) std::uint32_t acc[32] = {};
  if (level == SimdLevel::kAvx2) {
    simd::bch_syndrome_acc_avx2(word.words().data(), word.size(), data_bits_,
                                parity_bits_, syn_pos_.data(), syn_stride_,
                                acc);
  } else {
    simd::bch_syndrome_acc_sse42(word.words().data(), word.size(), data_bits_,
                                 parity_bits_, syn_pos_.data(), syn_stride_,
                                 acc);
  }
  s.assign(2 * t_ + 1, 0);  // s[1..2t]; s[0] unused
  for (unsigned r = 0; r < t_; ++r) s[2 * r + 1] = acc[r];
  for (unsigned k = 2; k <= 2 * t_; k += 2) s[k] = field_.sqr(s[k / 2]);
  for (unsigned k = 1; k <= 2 * t_; ++k) {
    if (s[k] != 0) return false;
  }
  return true;
}

bool BchCode::syndromes(const BitVec& word, std::vector<Elem>& s) const {
  RD_CHECK(word.size() == codeword_bits());
  switch (mode_) {
    case KernelMode::kReference: return syndromes_reference(word, s);
    case KernelMode::kVectorized: return syndromes_vectorized(word, s);
    default: return syndromes_optimized(word, s);
  }
}

std::vector<Elem> BchCode::compute_syndromes(const BitVec& word) const {
  std::vector<Elem> s;
  syndromes(word, s);
  return s;
}

bool BchCode::is_codeword(const BitVec& codeword) const {
  std::vector<Elem> s;
  return syndromes(codeword, s);
}

BchDecodeResult BchCode::decode_verified(BitVec& codeword) const {
  BchDecodeResult result = decode(codeword);
  if (result.corrected && result.num_corrected > 0 &&
      !is_codeword(codeword)) {
    result.corrected = false;
    result.num_corrected = 0;
    result.detected_uncorrectable = true;
  }
  return result;
}

std::vector<std::size_t> BchCode::chien_reference(const std::vector<Elem>& C,
                                                  unsigned limit) const {
  // Error at polynomial position p iff C(alpha^-p) == 0; full-period scan
  // with per-term alpha_pow evaluation.
  std::vector<std::size_t> error_positions;
  const std::uint32_t n_full = field_.order();
  for (std::uint32_t p = 0; p < n_full; ++p) {
    Elem acc = 0;
    for (std::size_t i = 0; i < C.size(); ++i) {
      acc ^= field_.mul(
          C[i], field_.alpha_pow(-static_cast<std::int64_t>(p) *
                                 static_cast<std::int64_t>(i)));
    }
    if (acc == 0) {
      error_positions.push_back(p);
      if (error_positions.size() > limit) break;
    }
  }
  return error_positions;
}

std::vector<std::size_t> BchCode::chien_optimized(const std::vector<Elem>& C,
                                                  unsigned limit) const {
  // Incremental Chien: term i of C(alpha^-p) is alpha^(log C_i - p*i).
  // Keep each term's exponent reduced in [0, n) and step it by (n - i) per
  // position — one table lookup and one add per (term, position), no
  // multiplies. Roots at p >= codeword_bits() land in the shortened
  // (implicitly zero) region, where decode() fails regardless of which
  // roots it saw, so the scan stops at the codeword length; finding fewer
  // than `limit` roots there signals the same failure. A degree-L locator
  // has at most L = limit roots, so the scan also stops once all are found.
  std::vector<std::size_t> error_positions;
  const std::uint32_t n = field_.order();
  const std::size_t terms = C.size();
  // Parallel arrays of the nonzero terms' (step, exponent).
  std::vector<std::uint32_t> step(terms), expo(terms);
  std::size_t live = 0;
  for (std::size_t i = 0; i < terms; ++i) {
    if (C[i] == 0) continue;
    step[live] = n - static_cast<std::uint32_t>(i % n);
    expo[live] = field_.log(C[i]);
    ++live;
  }
  const std::uint32_t scan = static_cast<std::uint32_t>(codeword_bits());
  for (std::uint32_t p = 0; p < scan; ++p) {
    Elem acc = 0;
    for (std::size_t i = 0; i < live; ++i) {
      acc ^= field_.alpha_pow_reduced(expo[i]);
      std::uint32_t e = expo[i] + step[i];
      if (e >= n) e -= n;
      expo[i] = e;
    }
    if (acc == 0) {
      error_positions.push_back(p);
      if (error_positions.size() == limit) break;
    }
  }
  return error_positions;
}

std::vector<std::size_t> BchCode::chien_vectorized(const std::vector<Elem>& C,
                                                   unsigned limit) const {
  // Same incremental arithmetic as chien_optimized, 8 positions per step
  // via AVX2 gathers (see bch_chien_scan_avx2). SSE4.2 has no gather, so
  // anything below AVX2 runs the scalar optimized scan; ditto a locator
  // too large for the kernel's register-resident term cap.
  if (simd_level() != SimdLevel::kAvx2) return chien_optimized(C, limit);
  const std::uint32_t n = field_.order();
  const std::size_t terms = C.size();
  std::vector<std::uint32_t> step(terms), expo(terms);
  std::size_t live = 0;
  for (std::size_t i = 0; i < terms; ++i) {
    if (C[i] == 0) continue;
    step[live] = n - static_cast<std::uint32_t>(i % n);
    expo[live] = field_.log(C[i]);
    ++live;
  }
  if (live > 33 || limit == 0) return chien_optimized(C, limit);
  std::vector<std::size_t> error_positions(limit);
  const std::size_t found = simd::bch_chien_scan_avx2(
      field_.exp_table(), n, step.data(), expo.data(), live,
      static_cast<std::uint32_t>(codeword_bits()), limit,
      error_positions.data());
  error_positions.resize(found);
  return error_positions;
}

BchDecodeResult BchCode::decode(BitVec& codeword) const {
  BchDecodeResult result;
  std::vector<Elem> s;
  if (syndromes(codeword, s)) {
    result.corrected = true;
    result.num_corrected = 0;
    return result;
  }

  // Berlekamp–Massey over GF(2^m): find the minimal LFSR C(x) generating
  // the syndrome sequence.
  std::vector<Elem> C = {1};
  std::vector<Elem> B = {1};
  unsigned L = 0;
  unsigned shift = 1;
  Elem b = 1;
  auto coeff = [](const std::vector<Elem>& p, std::size_t i) -> Elem {
    return i < p.size() ? p[i] : 0;
  };
  for (unsigned n = 0; n < 2 * t_; ++n) {
    Elem d = s[n + 1];
    for (unsigned i = 1; i <= L; ++i) {
      d ^= field_.mul(coeff(C, i), s[n + 1 - i]);
    }
    if (d == 0) {
      ++shift;
    } else if (2 * L <= n) {
      std::vector<Elem> T = C;
      const Elem factor = field_.div(d, b);
      if (C.size() < B.size() + shift) C.resize(B.size() + shift, 0);
      for (std::size_t i = 0; i < B.size(); ++i) {
        C[i + shift] ^= field_.mul(factor, B[i]);
      }
      L = n + 1 - L;
      B = std::move(T);
      b = d;
      shift = 1;
    } else {
      const Elem factor = field_.div(d, b);
      if (C.size() < B.size() + shift) C.resize(B.size() + shift, 0);
      for (std::size_t i = 0; i < B.size(); ++i) {
        C[i + shift] ^= field_.mul(factor, B[i]);
      }
      ++shift;
    }
  }
  while (!C.empty() && C.back() == 0) C.pop_back();
  const unsigned locator_degree = static_cast<unsigned>(C.size()) - 1;

  if (L > t_ || locator_degree != L) {
    result.detected_uncorrectable = true;
    return result;
  }

  const std::vector<std::size_t> error_positions =
      mode_ == KernelMode::kReference
          ? chien_reference(C, L)
          : (mode_ == KernelMode::kVectorized ? chien_vectorized(C, L)
                                              : chien_optimized(C, L));

  if (error_positions.size() != L) {
    result.detected_uncorrectable = true;
    return result;
  }

  // Map polynomial positions back to codeword bit indices; a position in
  // the shortened (implicitly zero) region means decode failure. (The
  // optimized Chien never reports such positions; the reference scan can.)
  for (std::size_t pos : error_positions) {
    if (pos >= codeword_bits()) {
      result.detected_uncorrectable = true;
      return result;
    }
    const std::size_t bit =
        pos < parity_bits_ ? data_bits_ + pos : pos - parity_bits_;
    codeword.flip(bit);
  }
  result.corrected = true;
  result.num_corrected = L;
  return result;
}

}  // namespace rd::ecc
