#include "ecc/bch.h"

#include <algorithm>

#include "common/check.h"

namespace rd::ecc {

using gf::Elem;
using gf::Field;
using gf::Poly;

BchCode::BchCode(unsigned m, unsigned t, unsigned data_bits)
    : field_(m), t_(t), data_bits_(data_bits) {
  RD_CHECK(t >= 1);
  // g(x) = lcm of minimal polynomials of alpha^1 .. alpha^2t. Since minimal
  // polynomials are either identical (same cyclotomic coset) or coprime,
  // the lcm is the product over distinct cosets.
  std::vector<std::uint32_t> seen_cosets;
  Poly g = Poly::constant(1);
  for (std::uint32_t s = 1; s <= 2 * t; ++s) {
    auto coset = cyclotomic_coset(field_, s);
    const std::uint32_t rep = *std::min_element(coset.begin(), coset.end());
    if (std::find(seen_cosets.begin(), seen_cosets.end(), rep) !=
        seen_cosets.end()) {
      continue;
    }
    seen_cosets.push_back(rep);
    g = Poly::mul(field_, g, minimal_polynomial(field_, s));
  }
  gen_ = g;
  parity_bits_ = static_cast<unsigned>(g.degree());
  RD_CHECK_MSG(data_bits_ + parity_bits_ <= field_.order(),
               "payload too large for GF(2^" << m << ") BCH");
  gen_bits_.resize(parity_bits_ + 1);
  for (unsigned i = 0; i <= parity_bits_; ++i) {
    const Elem c = gen_.coeff(i);
    RD_CHECK(c == 0 || c == 1);
    gen_bits_[i] = static_cast<std::uint8_t>(c);
  }
}

BitVec BchCode::parity(const BitVec& data) const {
  RD_CHECK(data.size() == data_bits_);
  // LFSR division of x^parity * d(x) by g(x). Feed data bits from the
  // highest power down (data bit j corresponds to x^(parity + j)).
  std::vector<std::uint8_t> reg(parity_bits_, 0);
  for (std::size_t j = data_bits_; j-- > 0;) {
    const std::uint8_t feedback =
        static_cast<std::uint8_t>(data.get(j)) ^ reg[parity_bits_ - 1];
    for (std::size_t i = parity_bits_ - 1; i > 0; --i) {
      reg[i] = reg[i - 1] ^ (feedback & gen_bits_[i]);
    }
    reg[0] = feedback & gen_bits_[0];
  }
  BitVec out(parity_bits_);
  for (unsigned i = 0; i < parity_bits_; ++i) out.set(i, reg[i] != 0);
  return out;
}

BitVec BchCode::encode(const BitVec& data) const {
  const BitVec p = parity(data);
  BitVec cw(codeword_bits());
  for (unsigned i = 0; i < data_bits_; ++i) cw.set(i, data.get(i));
  for (unsigned i = 0; i < parity_bits_; ++i) cw.set(data_bits_ + i, p.get(i));
  return cw;
}

bool BchCode::syndromes(const BitVec& word, std::vector<Elem>& s) const {
  RD_CHECK(word.size() == codeword_bits());
  s.assign(2 * t_ + 1, 0);  // s[1..2t]; s[0] unused
  bool all_zero = true;
  // Polynomial position of bit: parity bit i -> x^i, data bit j ->
  // x^(parity + j).
  for (std::size_t bit = 0; bit < word.size(); ++bit) {
    if (!word.get(bit)) continue;
    const std::size_t pos =
        bit < data_bits_ ? parity_bits_ + bit : bit - data_bits_;
    for (unsigned k = 1; k <= 2 * t_; ++k) {
      s[k] ^= field_.alpha_pow(static_cast<std::int64_t>(pos) * k);
    }
  }
  for (unsigned k = 1; k <= 2 * t_; ++k) {
    if (s[k] != 0) {
      all_zero = false;
      break;
    }
  }
  return all_zero;
}

bool BchCode::is_codeword(const BitVec& codeword) const {
  std::vector<Elem> s;
  return syndromes(codeword, s);
}

BchDecodeResult BchCode::decode_verified(BitVec& codeword) const {
  BchDecodeResult result = decode(codeword);
  if (result.corrected && result.num_corrected > 0 &&
      !is_codeword(codeword)) {
    result.corrected = false;
    result.num_corrected = 0;
    result.detected_uncorrectable = true;
  }
  return result;
}

BchDecodeResult BchCode::decode(BitVec& codeword) const {
  BchDecodeResult result;
  std::vector<Elem> s;
  if (syndromes(codeword, s)) {
    result.corrected = true;
    result.num_corrected = 0;
    return result;
  }

  // Berlekamp–Massey over GF(2^m): find the minimal LFSR C(x) generating
  // the syndrome sequence.
  std::vector<Elem> C = {1};
  std::vector<Elem> B = {1};
  unsigned L = 0;
  unsigned shift = 1;
  Elem b = 1;
  auto coeff = [](const std::vector<Elem>& p, std::size_t i) -> Elem {
    return i < p.size() ? p[i] : 0;
  };
  for (unsigned n = 0; n < 2 * t_; ++n) {
    Elem d = s[n + 1];
    for (unsigned i = 1; i <= L; ++i) {
      d ^= field_.mul(coeff(C, i), s[n + 1 - i]);
    }
    if (d == 0) {
      ++shift;
    } else if (2 * L <= n) {
      std::vector<Elem> T = C;
      const Elem factor = field_.div(d, b);
      if (C.size() < B.size() + shift) C.resize(B.size() + shift, 0);
      for (std::size_t i = 0; i < B.size(); ++i) {
        C[i + shift] ^= field_.mul(factor, B[i]);
      }
      L = n + 1 - L;
      B = std::move(T);
      b = d;
      shift = 1;
    } else {
      const Elem factor = field_.div(d, b);
      if (C.size() < B.size() + shift) C.resize(B.size() + shift, 0);
      for (std::size_t i = 0; i < B.size(); ++i) {
        C[i + shift] ^= field_.mul(factor, B[i]);
      }
      ++shift;
    }
  }
  while (!C.empty() && C.back() == 0) C.pop_back();
  const unsigned locator_degree = static_cast<unsigned>(C.size()) - 1;

  if (L > t_ || locator_degree != L) {
    result.detected_uncorrectable = true;
    return result;
  }

  // Chien search: error at polynomial position p iff C(alpha^-p) == 0.
  std::vector<std::size_t> error_positions;
  const std::uint32_t n_full = field_.order();
  for (std::uint32_t p = 0; p < n_full; ++p) {
    Elem acc = 0;
    for (std::size_t i = 0; i < C.size(); ++i) {
      acc ^= field_.mul(
          C[i], field_.alpha_pow(-static_cast<std::int64_t>(p) *
                                 static_cast<std::int64_t>(i)));
    }
    if (acc == 0) {
      error_positions.push_back(p);
      if (error_positions.size() > L) break;
    }
  }

  if (error_positions.size() != L) {
    result.detected_uncorrectable = true;
    return result;
  }

  // Map polynomial positions back to codeword bit indices; a position in
  // the shortened (implicitly zero) region means decode failure.
  for (std::size_t pos : error_positions) {
    if (pos >= codeword_bits()) {
      result.detected_uncorrectable = true;
      return result;
    }
    const std::size_t bit =
        pos < parity_bits_ ? data_bits_ + pos : pos - parity_bits_;
    codeword.flip(bit);
  }
  result.corrected = true;
  result.num_corrected = L;
  return result;
}

}  // namespace rd::ecc
