#include "ecc/secded.h"

namespace rd::ecc {

namespace {

// Codeword layout: Hamming positions 1..71 with the 7 check bits at the
// power-of-two positions and data bits filling the rest; one overall
// (even) parity bit covers the entire codeword.

// Map data bit i (0..63) to its 1-based Hamming position (skipping powers
// of two). Computed once.
struct Layout {
  unsigned data_pos[64];
  Layout() {
    unsigned next = 3;  // first non-power-of-two position
    for (unsigned i = 0; i < 64; ++i) {
      while ((next & (next - 1)) == 0) ++next;  // skip powers of two
      data_pos[i] = next++;
    }
  }
};
const Layout kLayout;

unsigned parity_of(unsigned x) {
  return static_cast<unsigned>(__builtin_popcount(x)) & 1u;
}

unsigned parity64(std::uint64_t x) {
  return static_cast<unsigned>(__builtin_popcountll(x)) & 1u;
}

/// XOR of the Hamming positions of all set data bits.
unsigned hamming_syndrome_base(std::uint64_t data) {
  unsigned h = 0;
  for (unsigned i = 0; i < 64; ++i) {
    if ((data >> i) & 1u) h ^= kLayout.data_pos[i];
  }
  return h & 0x7Fu;
}

}  // namespace

std::uint8_t Secded7264::encode_checks(std::uint64_t data) {
  const unsigned h = hamming_syndrome_base(data);
  // Even parity over the whole codeword: data bits + stored check bits.
  const unsigned parity = parity64(data) ^ parity_of(h);
  return static_cast<std::uint8_t>(h | (parity << 7));
}

SecdedResult Secded7264::decode(std::uint64_t& data, std::uint8_t& checks) {
  SecdedResult r;
  const unsigned stored_h = checks & 0x7Fu;
  const unsigned stored_p = (checks >> 7) & 1u;
  const unsigned syndrome = hamming_syndrome_base(data) ^ stored_h;
  // Even parity: XOR of every received bit (data, check, parity) is 0 for
  // a clean or double-error word, 1 for any odd number of flips.
  const unsigned whole_parity =
      parity64(data) ^ parity_of(stored_h) ^ stored_p;

  if (syndrome == 0 && whole_parity == 0) {
    r.ok = true;
    return r;
  }
  if (whole_parity == 1) {
    // Odd number of flips: assume a single error; the syndrome locates it.
    if (syndrome == 0) {
      // The overall parity bit itself flipped.
      checks ^= 0x80u;
      r.ok = true;
      r.num_corrected = 1;
      return r;
    }
    if ((syndrome & (syndrome - 1)) == 0) {
      // Power-of-two position: a stored Hamming check bit flipped.
      checks = static_cast<std::uint8_t>(checks ^ syndrome);
      r.ok = true;
      r.num_corrected = 1;
      return r;
    }
    for (unsigned i = 0; i < 64; ++i) {
      if (kLayout.data_pos[i] == syndrome) {
        data ^= 1ull << i;
        r.ok = true;
        r.num_corrected = 1;
        return r;
      }
    }
    // Syndrome points outside the codeword: at least three flips.
    r.double_error = true;
    return r;
  }
  // Even number of flips with a nonzero syndrome: double error.
  r.double_error = true;
  return r;
}

}  // namespace rd::ecc
