// Binary BCH encoder/decoder.
//
// The paper attaches a BCH-8 code over GF(2^10) to each 512-bit MLC line:
// 80 parity bits, correcting any 8 bit errors and (with detection decoupled
// from correction, Section III-B) detecting up to 17. This is a complete
// hard-decision implementation: systematic LFSR encoding, syndrome
// computation, Berlekamp–Massey, and Chien search.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitvec.h"
#include "gf/gf2m.h"
#include "gf/poly.h"

namespace rd::ecc {

/// Outcome of a BCH decode attempt.
struct BchDecodeResult {
  /// True when the decoder produced a codeword (zero syndromes after fix).
  bool corrected = false;
  /// Number of bit positions flipped when corrected == true.
  unsigned num_corrected = 0;
  /// True when errors were detected but exceeded the correction power.
  bool detected_uncorrectable = false;
};

/// A systematic, shortened binary BCH code.
///
/// Codewords are laid out data-first: bits [0, data_bits) carry the payload
/// and bits [data_bits, data_bits + parity_bits) the parity. Shortening
/// from n = 2^m - 1 is implicit (leading zero message bits).
class BchCode {
 public:
  /// Build a t-error-correcting code over GF(2^m) for the given payload
  /// size. Requires data_bits + parity <= 2^m - 1.
  BchCode(unsigned m, unsigned t, unsigned data_bits);

  unsigned t() const { return t_; }
  unsigned data_bits() const { return data_bits_; }
  unsigned parity_bits() const { return parity_bits_; }
  unsigned codeword_bits() const { return data_bits_ + parity_bits_; }
  /// Design distance 2t + 1.
  unsigned design_distance() const { return 2 * t_ + 1; }

  /// Encode payload (size data_bits) into a codeword (size codeword_bits).
  BitVec encode(const BitVec& data) const;

  /// Append parity in place: returns the parity bits for the payload.
  BitVec parity(const BitVec& data) const;

  /// Decode in place. Returns the decode outcome; when corrected, the
  /// codeword argument holds the fixed codeword.
  BchDecodeResult decode(BitVec& codeword) const;

  /// decode() plus a post-fix syndrome recheck: a "corrected" outcome
  /// whose fixed word is not actually a codeword is downgraded to
  /// detected_uncorrectable. Belt-and-braces for adversarial patterns at
  /// the 9..17-error detection boundary (READDUO_FAULTS "bch" class),
  /// where a decoder bug could otherwise surface as silent corruption.
  BchDecodeResult decode_verified(BitVec& codeword) const;

  /// Syndrome-only check: true iff the word is a codeword (no errors
  /// detected). Cheaper than a full decode.
  bool is_codeword(const BitVec& codeword) const;

  /// The generator polynomial over GF(2) (bits are 0/1 coefficients).
  const gf::Poly& generator() const { return gen_; }

  const gf::Field& field() const { return field_; }

 private:
  /// Syndromes S_1 .. S_2t of the received word; returns true if all zero.
  bool syndromes(const BitVec& word, std::vector<gf::Elem>& s) const;

  gf::Field field_;
  unsigned t_;
  unsigned data_bits_;
  unsigned parity_bits_;
  gf::Poly gen_;
  /// gen_ coefficients as a packed bitmask for the LFSR encoder.
  std::vector<std::uint8_t> gen_bits_;
};

}  // namespace rd::ecc
