// Binary BCH encoder/decoder.
//
// The paper attaches a BCH-8 code over GF(2^10) to each 512-bit MLC line:
// 80 parity bits, correcting any 8 bit errors and (with detection decoupled
// from correction, Section III-B) detecting up to 17. This is a complete
// hard-decision implementation: systematic LFSR encoding, syndrome
// computation, Berlekamp–Massey, and Chien search.
//
// Syndrome computation and the Chien search are the decode hot path (every
// R-read and every scrub pays them), so both exist in two selectable
// implementations (DESIGN.md §10):
//
//   * reference — per-bit polynomial evaluation via Field::alpha_pow and a
//     full-period Chien scan, exactly the original straight-line code;
//   * optimized — word-parallel scan of the received word's set bits
//     against precomputed alpha^(pos * k) tables for the odd k only (the
//     even syndromes follow from S_2k = S_k^2 in characteristic 2), and an
//     incremental log-stepped Chien search over the shortened positions
//     with an early exit once all roots are found;
//   * vectorized — the optimized arithmetic in SIMD lanes (DESIGN.md
//     §10.5): a position-major syndrome table XOR-accumulated 8 (AVX2) or
//     4 (SSE4.2) odd syndromes at a time per set bit, and a gather-based
//     Chien scan evaluating 8 positions per step (AVX2 only). Dispatch is
//     per call on rd::simd_level(); scalar hosts route to the optimized
//     kernels, so kVectorized never changes results, only speed.
//
// All tiers produce identical syndromes, identical decode outcomes, and
// identical corrected words for every input — these are pure GF(2^m)
// integer kernels, so the equality is exact, not approximate
// (tests/test_kernels.cpp cross-checks them exhaustively per weight; the
// golden lane replays the whole system on the reference path).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitvec.h"
#include "common/kernels.h"
#include "gf/gf2m.h"
#include "gf/poly.h"

namespace rd::ecc {

/// Outcome of a BCH decode attempt.
struct BchDecodeResult {
  /// True when the decoder produced a codeword (zero syndromes after fix).
  bool corrected = false;
  /// Number of bit positions flipped when corrected == true.
  unsigned num_corrected = 0;
  /// True when errors were detected but exceeded the correction power.
  bool detected_uncorrectable = false;
};

/// A systematic, shortened binary BCH code.
///
/// Codewords are laid out data-first: bits [0, data_bits) carry the payload
/// and bits [data_bits, data_bits + parity_bits) the parity. Shortening
/// from n = 2^m - 1 is implicit (leading zero message bits).
class BchCode {
 public:
  /// Build a t-error-correcting code over GF(2^m) for the given payload
  /// size. Requires data_bits + parity <= 2^m - 1. `mode` selects the
  /// syndrome/Chien kernels (kAuto: READDUO_KERNELS, default optimized);
  /// decode results are bit-identical either way. A constructed code is
  /// immutable and safe to share across threads.
  BchCode(unsigned m, unsigned t, unsigned data_bits,
          KernelMode mode = KernelMode::kAuto);

  /// Correction power t (design distance 2t + 1).
  unsigned t() const { return t_; }
  /// Payload size in bits.
  unsigned data_bits() const { return data_bits_; }
  /// Parity size in bits (degree of the generator polynomial).
  unsigned parity_bits() const { return parity_bits_; }
  /// Total codeword size data_bits + parity_bits.
  unsigned codeword_bits() const { return data_bits_ + parity_bits_; }
  /// Design distance 2t + 1.
  unsigned design_distance() const { return 2 * t_ + 1; }
  /// The kernel implementation this instance runs (never kAuto).
  KernelMode kernel_mode() const { return mode_; }

  /// Encode payload (size data_bits) into a codeword (size codeword_bits).
  BitVec encode(const BitVec& data) const;

  /// Append parity in place: returns the parity bits for the payload.
  BitVec parity(const BitVec& data) const;

  /// Decode in place. Returns the decode outcome; when corrected, the
  /// codeword argument holds the fixed codeword.
  BchDecodeResult decode(BitVec& codeword) const;

  /// decode() plus a post-fix syndrome recheck: a "corrected" outcome
  /// whose fixed word is not actually a codeword is downgraded to
  /// detected_uncorrectable. Belt-and-braces for adversarial patterns at
  /// the 9..17-error detection boundary (READDUO_FAULTS "bch" class),
  /// where a decoder bug could otherwise surface as silent corruption.
  BchDecodeResult decode_verified(BitVec& codeword) const;

  /// Syndrome-only check: true iff the word is a codeword (no errors
  /// detected). Cheaper than a full decode.
  bool is_codeword(const BitVec& codeword) const;

  /// Syndromes S_1 .. S_2t of the received word, as a vector indexed
  /// [0, 2t] with slot 0 unused (zero). Exposed so the kernel-equivalence
  /// tests and micro-benchmarks can compare implementations element by
  /// element; decode() consumes the same values internally.
  std::vector<gf::Elem> compute_syndromes(const BitVec& word) const;

  /// The generator polynomial over GF(2) (bits are 0/1 coefficients).
  const gf::Poly& generator() const { return gen_; }

  /// The underlying GF(2^m) field.
  const gf::Field& field() const { return field_; }

 private:
  /// Syndromes S_1 .. S_2t of the received word; returns true if all zero.
  /// Dispatches on mode_.
  bool syndromes(const BitVec& word, std::vector<gf::Elem>& s) const;
  bool syndromes_reference(const BitVec& word, std::vector<gf::Elem>& s) const;
  bool syndromes_optimized(const BitVec& word, std::vector<gf::Elem>& s) const;
  bool syndromes_vectorized(const BitVec& word, std::vector<gf::Elem>& s) const;

  /// Chien search: collect the polynomial positions p with C(alpha^-p) == 0.
  /// `limit` bounds how many roots the caller can use (locator degree L);
  /// all implementations return the same positions in increasing order.
  std::vector<std::size_t> chien_reference(const std::vector<gf::Elem>& C,
                                           unsigned limit) const;
  std::vector<std::size_t> chien_optimized(const std::vector<gf::Elem>& C,
                                           unsigned limit) const;
  std::vector<std::size_t> chien_vectorized(const std::vector<gf::Elem>& C,
                                            unsigned limit) const;

  gf::Field field_;
  unsigned t_;
  unsigned data_bits_;
  unsigned parity_bits_;
  KernelMode mode_;
  gf::Poly gen_;
  /// gen_ coefficients as a packed bitmask for the LFSR encoder.
  std::vector<std::uint8_t> gen_bits_;
  /// Optimized-syndrome tables: for each odd k in [1, 2t], alpha^(pos * k)
  /// for every polynomial position pos in [0, n). Row r covers k = 2r + 1;
  /// even syndromes are derived by squaring. ~t * n * 4 bytes (32 KiB for
  /// the paper's BCH-8 over GF(2^10)). Empty in reference mode.
  std::vector<gf::Elem> syn_pow_;
  /// Vectorized-syndrome table: the same entries laid out position-major —
  /// syn_pos_[pos * syn_stride_ + r] = alpha^(pos * (2r + 1)), with the
  /// stride rounded up to 8 lanes (zero padded) so one set bit is a single
  /// 256-bit XOR at t = 8. Positions only span the shortened codeword
  /// [0, codeword_bits), not all of [0, n): a received bit can never map
  /// beyond that. Built only in vectorized mode with t <= 32 (the lane
  /// kernels' register cap); empty otherwise, and syndromes_vectorized
  /// falls back to the optimized kernel.
  std::vector<gf::Elem> syn_pos_;
  std::size_t syn_stride_ = 0;
};

}  // namespace rd::ecc
