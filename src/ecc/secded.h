// (72, 64) Hamming SECDED — the ECC the TLC baseline attaches per 64-bit
// word (Section V-C of the paper).
#pragma once

#include <cstdint>

namespace rd::ecc {

/// Outcome of a SECDED decode.
struct SecdedResult {
  /// True unless a double error was detected.
  bool ok = false;
  /// 0 or 1 corrections applied when ok.
  unsigned num_corrected = 0;
  /// True when a (detectable, uncorrectable) double error was seen.
  bool double_error = false;
};

/// (72, 64) extended Hamming code: 64 data bits, 7 Hamming check bits and
/// one overall parity bit. Corrects single errors, detects double errors.
class Secded7264 {
 public:
  static constexpr unsigned kDataBits = 64;
  static constexpr unsigned kCodeBits = 72;

  /// Compute the 8 check bits for a 64-bit payload (low 8 bits of return).
  static std::uint8_t encode_checks(std::uint64_t data);

  /// Decode a received (data, checks) pair in place.
  static SecdedResult decode(std::uint64_t& data, std::uint8_t& checks);
};

}  // namespace rd::ecc
