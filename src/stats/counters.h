// Event counters and energy accounting shared by all schemes.
#pragma once

#include <cstdint>

namespace rd::stats {

/// Raw counts and energies accumulated during one simulation run.
/// Everything downstream (Figures 9-15) is derived from these.
struct Counters {
  // Reads by service mode.
  std::uint64_t r_reads = 0;
  std::uint64_t m_reads = 0;
  std::uint64_t rm_reads = 0;

  // LWT bookkeeping.
  std::uint64_t untracked_reads = 0;   ///< reads beyond 640 s of last write
  std::uint64_t converted_reads = 0;   ///< R-M-reads converted to writes

  // Writes by origin.
  std::uint64_t demand_full_writes = 0;
  std::uint64_t demand_diff_writes = 0;
  std::uint64_t conversion_writes = 0;
  std::uint64_t scrub_senses = 0;
  std::uint64_t scrub_rewrites = 0;

  // Reliability events observed during the run.
  std::uint64_t detected_uncorrectable = 0;  ///< 9..17 errors, R-only scheme
  std::uint64_t silent_corruptions = 0;      ///< > 17 errors under R-sensing

  // Endurance: total cells programmed (lifetime is inversely proportional).
  std::uint64_t cell_writes = 0;

  /// Fault events this scheme absorbed from READDUO_FAULTS (extra sense
  /// errors, LWT flag corruptions). Always 0 when faults are off. Not
  /// serialized into bench_cache entries: fault-perturbed runs are never
  /// cached (the harness disables the cache for them), so the v2 schema
  /// is unchanged.
  std::uint64_t injected_faults = 0;

  // Dynamic energy (pJ) by category.
  double read_energy_pj = 0.0;
  double write_energy_pj = 0.0;
  double scrub_energy_pj = 0.0;

  std::uint64_t total_reads() const { return r_reads + m_reads + rm_reads; }
  std::uint64_t total_demand_writes() const {
    return demand_full_writes + demand_diff_writes;
  }
  double dynamic_energy_pj() const {
    return read_energy_pj + write_energy_pj + scrub_energy_pj;
  }
};

}  // namespace rd::stats
