// Fixed-bucket log-spaced latency histogram (HdrHistogram-style).
//
// Buckets are defined by pure integer arithmetic — a power-of-two octave
// split into 4 linear sub-buckets — so recording is O(1), merge is a
// bucket-wise sum, and the whole state is deterministic: the same multiset
// of samples yields bit-identical histograms regardless of arrival order
// or thread count. Resolution is <= 25% relative error per bucket, which
// is plenty for p50/p95/p99 of memory latencies spanning 1 ns .. seconds.
//
// Concurrency contract: a LatencyHistogram is a plain value type with no
// internal locking. Each instance is owned by exactly one simulator (or
// one shard) and mutated only by its owner; cross-thread visibility goes
// through the owner's capability — in the service that is
// Shard::sim_mu, under which stats() merges per-shard copies (see the
// annotation map, DESIGN.md §8). Do not share one instance between
// recorders.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstddef>
#include <limits>

#include "common/units.h"

namespace rd::stats {

/// Histogram over non-negative nanosecond values. Values 0..3 get exact
/// buckets; larger values land in bucket (octave, sub) with
/// sub = the two bits below the leading bit (4 sub-buckets per octave).
class LatencyHistogram {
 public:
  /// 4 exact small-value buckets + 4 sub-buckets for each octave 2..63.
  static constexpr std::size_t kNumBuckets = 4 + 62 * 4;

  /// Bucket that value `v` falls into. Monotone nondecreasing in v.
  static std::size_t bucket_index(std::uint64_t v) {
    if (v < 4) return static_cast<std::size_t>(v);
    const unsigned o = static_cast<unsigned>(std::bit_width(v)) - 1;
    return 4 + (o - 2) * 4 + static_cast<std::size_t>((v >> (o - 2)) & 3);
  }

  /// Inclusive lower bound of bucket `i`.
  static std::uint64_t bucket_lo(std::size_t i) {
    if (i < 4) return i;
    const unsigned o = 2 + static_cast<unsigned>(i - 4) / 4;
    const std::uint64_t sub = (i - 4) % 4;
    return (4 + sub) << (o - 2);
  }

  /// Exclusive upper bound of bucket `i`.
  static std::uint64_t bucket_hi(std::size_t i) {
    return i + 1 < kNumBuckets ? bucket_lo(i + 1)
                               : std::numeric_limits<std::uint64_t>::max();
  }

  /// Record one sample; negative values clamp to 0. Taking rd::Ns (not a
  /// raw integer) keeps callers from passing a value in the wrong unit.
  void record(Ns ns) {
    const std::uint64_t v =
        ns.v < 0 ? 0 : static_cast<std::uint64_t>(ns.v);
    ++buckets_[bucket_index(v)];
    ++count_;
    sum_ += static_cast<std::int64_t>(v);
    max_ = std::max(max_, static_cast<std::int64_t>(v));
  }

  /// Bucket-wise sum; merging shard histograms in any order is identical
  /// to recording every sample into one histogram.
  void merge(const LatencyHistogram& o) {
    for (std::size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += o.buckets_[i];
    count_ += o.count_;
    sum_ += o.sum_;
    max_ = std::max(max_, o.max_);
  }

  std::uint64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  /// Largest recorded value (exact, not bucketed); 0 when empty.
  std::int64_t max() const { return count_ ? max_ : 0; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Value at quantile p in [0, 1], linearly interpolated within the
  /// containing bucket and clamped to the exact max. 0 when empty.
  double percentile(double p) const {
    if (count_ == 0) return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * static_cast<double>(count_);
    std::uint64_t cum = 0;
    std::size_t last = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      if (buckets_[i] == 0) continue;
      last = i;
      const double next = static_cast<double>(cum + buckets_[i]);
      if (target <= next) {
        return interpolate(i, target - static_cast<double>(cum));
      }
      cum += buckets_[i];
    }
    // p == 1 (or rounding): the top of the last occupied bucket.
    return interpolate(last, static_cast<double>(buckets_[last]));
  }

  double p50() const { return percentile(0.50); }
  double p95() const { return percentile(0.95); }
  double p99() const { return percentile(0.99); }

  /// Point-in-time summary for live reporting: the service front end and
  /// load generator publish these between batches while the underlying
  /// histograms keep recording.
  struct Snapshot {
    std::uint64_t count = 0;
    std::int64_t max_ns = 0;
    double mean_ns = 0.0;
    double p50_ns = 0.0;
    double p95_ns = 0.0;
    double p99_ns = 0.0;
  };
  Snapshot snapshot() const {
    return Snapshot{count_, max(), mean(), p50(), p95(), p99()};
  }

  const std::array<std::uint64_t, kNumBuckets>& buckets() const {
    return buckets_;
  }

  /// Rebuild from serialized state (cache round-trip). `count` is implied
  /// by the bucket totals.
  void restore(const std::array<std::uint64_t, kNumBuckets>& buckets,
               std::int64_t sum, std::int64_t max) {
    buckets_ = buckets;
    count_ = 0;
    for (std::uint64_t b : buckets_) count_ += b;
    sum_ = sum;
    max_ = max;
  }

  bool operator==(const LatencyHistogram& o) const {
    return buckets_ == o.buckets_ && count_ == o.count_ && sum_ == o.sum_ &&
           max() == o.max();
  }

 private:
  double interpolate(std::size_t bucket, double into_bucket) const {
    const double lo = static_cast<double>(bucket_lo(bucket));
    const double hi =
        std::min(static_cast<double>(bucket_hi(bucket)),
                 static_cast<double>(max()));
    const double frac =
        std::clamp(into_bucket / static_cast<double>(buckets_[bucket]), 0.0,
                   1.0);
    return std::min(lo + frac * (hi - lo), static_cast<double>(max()));
  }

  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace rd::stats
