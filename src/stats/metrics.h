// Per-run observability: latency histograms per request class and
// queue/utilization gauges per bank. Filled by memsim::Simulator at its
// service points; everything is plain integer state, so two runs of the
// same configuration produce bit-identical metrics no matter how the
// surrounding sweep is threaded.
//
// Concurrency contract: SimMetrics carries no locks of its own. It lives
// inside memsim::Simulator state; in the service every simulator (and so
// its metrics) is guarded by its shard's sim_mu capability, and merged
// snapshots are taken under that lock (memory_service.cpp::stats). See
// the annotation map in DESIGN.md §8.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstddef>
#include <vector>

#include "stats/histogram.h"

namespace rd::stats {

/// Service classes whose end-to-end latency is tracked separately.
enum class ReqClass : unsigned {
  kRRead = 0,        ///< fast current-sense demand read
  kMRead,            ///< drift-resilient voltage-sense demand read
  kRMRead,           ///< R-sense failed, M retry
  kDemandWrite,      ///< program-order demand write
  kConversionWrite,  ///< redundant write-back of a converted R-M-read
  kScrubRewrite,     ///< rewrite issued by the scrub engine
};
inline constexpr std::size_t kNumReqClasses = 6;

inline const char* req_class_name(ReqClass c) {
  switch (c) {
    case ReqClass::kRRead: return "r_read";
    case ReqClass::kMRead: return "m_read";
    case ReqClass::kRMRead: return "rm_read";
    case ReqClass::kDemandWrite: return "demand_write";
    case ReqClass::kConversionWrite: return "conversion_write";
    case ReqClass::kScrubRewrite: return "scrub_rewrite";
  }
  return "unknown";
}

/// Queue pressure and busy time of one bank, sampled whenever the bank
/// starts servicing an operation.
struct BankGauge {
  std::int64_t busy_ns = 0;          ///< total time in service
  std::uint64_t depth_samples = 0;   ///< service points sampled
  std::uint64_t depth_sum = 0;       ///< sum of read_q + write_q depths
  std::uint64_t depth_max = 0;

  double avg_depth() const {
    return depth_samples ? static_cast<double>(depth_sum) /
                               static_cast<double>(depth_samples)
                         : 0.0;
  }
  void merge(const BankGauge& o) {
    busy_ns += o.busy_ns;
    depth_samples += o.depth_samples;
    depth_sum += o.depth_sum;
    depth_max = std::max(depth_max, o.depth_max);
  }
  bool operator==(const BankGauge& o) const {
    return busy_ns == o.busy_ns && depth_samples == o.depth_samples &&
           depth_sum == o.depth_sum && depth_max == o.depth_max;
  }
};

/// Everything one simulation run measured about itself.
struct SimMetrics {
  std::array<LatencyHistogram, kNumReqClasses> latency;
  std::vector<BankGauge> banks;

  LatencyHistogram& lat(ReqClass c) {
    return latency[static_cast<std::size_t>(c)];
  }
  const LatencyHistogram& lat(ReqClass c) const {
    return latency[static_cast<std::size_t>(c)];
  }

  /// All demand-read classes combined (the population behind
  /// SimResult::avg_read_latency_ns).
  LatencyHistogram demand_reads() const {
    LatencyHistogram h = lat(ReqClass::kRRead);
    h.merge(lat(ReqClass::kMRead));
    h.merge(lat(ReqClass::kRMRead));
    return h;
  }

  /// Combine another run's metrics (e.g. per-shard or per-workload
  /// aggregation). Bank lists of different lengths align by index.
  void merge(const SimMetrics& o) {
    for (std::size_t i = 0; i < kNumReqClasses; ++i) {
      latency[i].merge(o.latency[i]);
    }
    if (banks.size() < o.banks.size()) banks.resize(o.banks.size());
    for (std::size_t b = 0; b < o.banks.size(); ++b) {
      banks[b].merge(o.banks[b]);
    }
  }

  bool operator==(const SimMetrics& o) const {
    return latency == o.latency && banks == o.banks;
  }
};

}  // namespace rd::stats
