// Lightweight event-trace ring buffer (flight recorder).
//
// READDUO_TRACE=N keeps the last N simulator events (service starts and
// write cancellations) in a fixed ring; when a reliability event fires
// (detected_uncorrectable / silent_corruptions), the ring is dumped so the
// bare counter comes with the operation history that led up to it.
// Recording is two stores and an increment — cheap enough to leave on for
// whole sweeps.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/thread_annotations.h"

namespace rd::stats {

/// One simulator event. `kind` is a single-letter tag:
///   'R' read service start, 'W' write service start,
///   'S' scrub sense start,  'C' write cancellation,
///   'F' injected-fault burst (READDUO_FAULTS; latency field = count).
struct TraceEvent {
  std::int64_t time_ns = 0;
  char kind = '?';
  std::uint8_t cls = 0;  ///< ReqClass of the op, where applicable
  std::uint32_t bank = 0;
  std::uint64_t line = 0;
  std::int64_t latency_ns = 0;  ///< planned service latency
};

/// Fixed-capacity ring of the most recent events.
class EventRing {
 public:
  explicit EventRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    buf_.reserve(capacity_);
  }

  void push(const TraceEvent& e) {
    if (buf_.size() < capacity_) {
      buf_.push_back(e);
    } else {
      buf_[head_] = e;
      head_ = (head_ + 1) % capacity_;
    }
    ++total_;
  }

  std::size_t size() const { return buf_.size(); }
  std::uint64_t total_pushed() const { return total_; }

  /// Retained event `i`, oldest-first (i < size()). Lets tests pin exact
  /// operation sequences without going through a stderr dump.
  const TraceEvent& event(std::size_t i) const {
    return buf_[(head_ + i) % buf_.size()];
  }

  /// Dump the retained events oldest-first. The whole dump is rendered
  /// into one buffer and written in a single call under a global mutex, so
  /// dumps from concurrent simulations do not interleave line-by-line.
  void dump(std::ostream& os, const std::string& reason) const {
    std::string out;
    out += "=== event trace dump: " + reason + " (" +
           std::to_string(buf_.size()) + " of " + std::to_string(total_) +
           " events retained)\n";
    char linebuf[160];
    for (std::size_t i = 0; i < buf_.size(); ++i) {
      const TraceEvent& e = buf_[(head_ + i) % buf_.size()];
      std::snprintf(linebuf, sizeof linebuf,
                    "  t=%lldns %c cls=%u bank=%u line=%llu lat=%lldns\n",
                    static_cast<long long>(e.time_ns), e.kind,
                    static_cast<unsigned>(e.cls), e.bank,
                    static_cast<unsigned long long>(e.line),
                    static_cast<long long>(e.latency_ns));
      out += linebuf;
    }
    out += "=== end event trace dump\n";
    // Process-wide dump gate: the ring itself is single-writer (owned by
    // one simulator), only the *stream* is shared across simulations.
    static Mutex mu;
    MutexLock g(mu);
    os << out;
    os.flush();
  }

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> buf_;
  std::size_t head_ = 0;        ///< index of the oldest retained event
  std::uint64_t total_ = 0;
};

/// Ring capacity requested via READDUO_TRACE (strictly parsed); 0 = off.
inline std::size_t trace_ring_capacity_from_env() {
  const char* e = env_cstr("READDUO_TRACE");
  if (e == nullptr) return 0;
  return static_cast<std::size_t>(parse_env_u64("READDUO_TRACE", e));
}

}  // namespace rd::stats
