// Minimal fixed-width table printer used by the bench harnesses to emit
// paper-style rows.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace rd::stats {

/// Accumulates rows of strings and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::FILE* out = stdout) const {
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < width.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string();
        std::fprintf(out, "%-*s  ", static_cast<int>(width[i]),
                     cell.c_str());
      }
      std::fprintf(out, "\n");
    };
    print_row(header_);
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting into std::string.
inline std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

}  // namespace rd::stats
