// Tiny JSON writer for machine-readable simulation reports (the gem5
// stats-dump role). Writes one flat object; values are numbers or strings.
#pragma once

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <tuple>
#include <string>
#include <vector>

namespace rd::stats {

/// Accumulates key/value pairs and renders a JSON object. Insertion order
/// is preserved; keys are not deduplicated (callers own uniqueness).
class JsonWriter {
 public:
  JsonWriter& add(const std::string& key, double v) {
    std::ostringstream os;
    os << v;
    items_.emplace_back(key, os.str(), /*quoted=*/false);
    return *this;
  }
  JsonWriter& add(const std::string& key, std::uint64_t v) {
    items_.emplace_back(key, std::to_string(v), false);
    return *this;
  }
  JsonWriter& add(const std::string& key, std::int64_t v) {
    items_.emplace_back(key, std::to_string(v), false);
    return *this;
  }
  JsonWriter& add(const std::string& key, const std::string& v) {
    items_.emplace_back(key, escape(v), true);
    return *this;
  }
  /// Insert a pre-rendered JSON value (object, array, …) verbatim. The
  /// caller owns its validity; this is how nested structures are built
  /// from flat writers.
  JsonWriter& add_raw(const std::string& key, const std::string& json) {
    items_.emplace_back(key, json, /*quoted=*/false);
    return *this;
  }

  /// Render as a JSON object, one key per line.
  std::string str() const {
    std::ostringstream os;
    os << "{\n";
    for (std::size_t i = 0; i < items_.size(); ++i) {
      const auto& [k, v, quoted] = items_[i];
      os << "  \"" << escape(k) << "\": ";
      if (quoted) os << '"' << v << '"'; else os << v;
      if (i + 1 < items_.size()) os << ',';
      os << '\n';
    }
    os << "}\n";
    return os.str();
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  std::vector<std::tuple<std::string, std::string, bool>> items_;
};

}  // namespace rd::stats
