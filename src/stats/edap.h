// EDAP — the Energy-Delay-Area-Product metric of Section V-C.
//
// The paper evaluates each scheme by the product of (normalized) energy,
// execution time, and effective cell-array area for the same stored
// information, normalized to the TLC baseline. Product-D uses dynamic
// energy; Product-S adds static (background) energy over the run.
#pragma once

#include <string>

#include "common/units.h"

namespace rd::stats {

/// One scheme's aggregate run outcome, the inputs of EDAP.
struct RunSummary {
  std::string scheme;
  Ns exec_time{0};
  double dynamic_energy_pj = 0.0;
  /// Static power of the memory subsystem (W); system energy =
  /// dynamic + static * exec_time.
  double static_watts = 0.0;
  /// Cells used to store one 64 B line (density input; Figure 11).
  double cells_per_line = 0.0;
  /// Total cells programmed (endurance input; Figure 15).
  double cell_writes = 0.0;

  double system_energy_pj() const {
    // watts * ns = 1e-9 J = 1e3 pJ.
    return dynamic_energy_pj +
           static_watts * static_cast<double>(exec_time.v) * 1e3;
  }
};

/// EDAP of `run` normalized to `base` (typically the TLC baseline), using
/// dynamic energy. Lower is better.
inline double edap_dynamic(const RunSummary& run, const RunSummary& base) {
  return (run.dynamic_energy_pj / base.dynamic_energy_pj) *
         (static_cast<double>(run.exec_time.v) /
          static_cast<double>(base.exec_time.v)) *
         (run.cells_per_line / base.cells_per_line);
}

/// EDAP with system energy (Product-S of Figure 11).
inline double edap_system(const RunSummary& run, const RunSummary& base) {
  return (run.system_energy_pj() / base.system_energy_pj()) *
         (static_cast<double>(run.exec_time.v) /
          static_cast<double>(base.exec_time.v)) *
         (run.cells_per_line / base.cells_per_line);
}

/// Relative lifetime vs a baseline: lifetime is inversely proportional to
/// the cell-write rate over the same wall time (Figure 15).
inline double relative_lifetime(const RunSummary& run,
                                const RunSummary& base) {
  if (run.cell_writes <= 0.0) return 1.0;
  // Normalize write counts to the same amount of retired work: both runs
  // execute the same instruction budget, so total cell writes compare
  // directly.
  return base.cell_writes / run.cell_writes;
}

}  // namespace rd::stats
