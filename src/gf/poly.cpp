#include "gf/poly.h"

#include <algorithm>

#include "common/check.h"

namespace rd::gf {

Poly::Poly(std::vector<Elem> coeffs) : coeffs_(std::move(coeffs)) { trim(); }

Poly Poly::constant(Elem c) {
  Poly p;
  if (c != 0) p.coeffs_ = {c};
  return p;
}

Poly Poly::monomial(Elem c, std::size_t k) {
  Poly p;
  if (c != 0) {
    p.coeffs_.assign(k + 1, 0);
    p.coeffs_[k] = c;
  }
  return p;
}

void Poly::trim() {
  while (!coeffs_.empty() && coeffs_.back() == 0) coeffs_.pop_back();
}

Elem Poly::eval(const Field& f, Elem x) const {
  Elem acc = 0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = Field::add(f.mul(acc, x), coeffs_[i]);
  }
  return acc;
}

Poly Poly::derivative() const {
  if (coeffs_.size() <= 1) return {};
  std::vector<Elem> d(coeffs_.size() - 1, 0);
  for (std::size_t i = 1; i < coeffs_.size(); ++i) {
    // d/dx x^i = i * x^(i-1); in char 2, i is taken mod 2.
    if (i & 1) d[i - 1] = coeffs_[i];
  }
  return Poly(std::move(d));
}

Poly Poly::add(const Poly& a, const Poly& b) {
  std::vector<Elem> out(std::max(a.coeffs_.size(), b.coeffs_.size()), 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = a.coeff(i) ^ b.coeff(i);
  }
  return Poly(std::move(out));
}

Poly Poly::mul(const Field& f, const Poly& a, const Poly& b) {
  if (a.is_zero() || b.is_zero()) return {};
  std::vector<Elem> out(a.coeffs_.size() + b.coeffs_.size() - 1, 0);
  for (std::size_t i = 0; i < a.coeffs_.size(); ++i) {
    if (a.coeffs_[i] == 0) continue;
    for (std::size_t j = 0; j < b.coeffs_.size(); ++j) {
      out[i + j] ^= f.mul(a.coeffs_[i], b.coeffs_[j]);
    }
  }
  return Poly(std::move(out));
}

Poly Poly::mod(const Field& f, const Poly& a, const Poly& b) {
  RD_CHECK(!b.is_zero());
  std::vector<Elem> rem = a.coeffs_;
  const int db = b.degree();
  const Elem lead_inv = f.inv(b.coeffs_.back());
  for (int i = static_cast<int>(rem.size()) - 1; i >= db; --i) {
    if (rem[static_cast<std::size_t>(i)] == 0) continue;
    const Elem q = f.mul(rem[static_cast<std::size_t>(i)], lead_inv);
    for (int j = 0; j <= db; ++j) {
      rem[static_cast<std::size_t>(i - db + j)] ^=
          f.mul(q, b.coeffs_[static_cast<std::size_t>(j)]);
    }
  }
  rem.resize(static_cast<std::size_t>(std::max(db, 0)));
  return Poly(std::move(rem));
}

Poly Poly::scale(const Field& f, const Poly& a, Elem c) {
  RD_CHECK(c != 0);
  std::vector<Elem> out = a.coeffs_;
  for (auto& e : out) e = f.mul(e, c);
  return Poly(std::move(out));
}

std::vector<std::uint32_t> cyclotomic_coset(const Field& f, std::uint32_t s) {
  const std::uint32_t n = f.order();
  std::vector<std::uint32_t> coset;
  std::uint32_t x = s % n;
  do {
    coset.push_back(x);
    x = static_cast<std::uint32_t>((2ull * x) % n);
  } while (x != s % n);
  return coset;
}

Poly minimal_polynomial(const Field& f, std::uint32_t s) {
  Poly m = Poly::constant(1);
  for (std::uint32_t j : cyclotomic_coset(f, s)) {
    // (x + alpha^j); addition is subtraction in char 2.
    Poly factor(std::vector<Elem>{f.alpha_pow(j), 1});
    m = Poly::mul(f, m, factor);
  }
  // Minimal polynomials over GF(2) must have 0/1 coefficients.
  for (Elem c : m.coeffs()) RD_CHECK(c == 0 || c == 1);
  return m;
}

}  // namespace rd::gf
