// Polynomials over GF(2^m) and GF(2).
//
// Used to build BCH generator polynomials (cyclotomic cosets, minimal
// polynomials) and to run the decoder (error locator / Chien search).
#pragma once

#include <cstdint>
#include <vector>

#include "gf/gf2m.h"

namespace rd::gf {

/// Dense polynomial over GF(2^m); coeffs_[i] is the coefficient of x^i.
/// The zero polynomial has an empty coefficient vector and degree -1.
class Poly {
 public:
  Poly() = default;
  explicit Poly(std::vector<Elem> coeffs);

  /// The constant polynomial c (zero polynomial if c == 0).
  static Poly constant(Elem c);
  /// The monomial c * x^k.
  static Poly monomial(Elem c, std::size_t k);

  /// Degree; -1 for the zero polynomial.
  int degree() const { return static_cast<int>(coeffs_.size()) - 1; }
  bool is_zero() const { return coeffs_.empty(); }

  /// Coefficient of x^i (0 beyond the degree).
  Elem coeff(std::size_t i) const {
    return i < coeffs_.size() ? coeffs_[i] : 0;
  }
  const std::vector<Elem>& coeffs() const { return coeffs_; }

  /// Evaluate at x (Horner).
  Elem eval(const Field& f, Elem x) const;

  /// Formal derivative (char 2: even-power terms vanish).
  Poly derivative() const;

  static Poly add(const Poly& a, const Poly& b);
  static Poly mul(const Field& f, const Poly& a, const Poly& b);
  /// Remainder of a mod b. Requires b != 0.
  static Poly mod(const Field& f, const Poly& a, const Poly& b);
  /// Scale by a nonzero constant.
  static Poly scale(const Field& f, const Poly& a, Elem c);

  friend bool operator==(const Poly& a, const Poly& b) {
    return a.coeffs_ == b.coeffs_;
  }

 private:
  void trim();
  std::vector<Elem> coeffs_;
};

/// The cyclotomic coset of s modulo 2^m - 1: {s, 2s, 4s, ...}.
std::vector<std::uint32_t> cyclotomic_coset(const Field& f, std::uint32_t s);

/// Minimal polynomial over GF(2) of alpha^s in GF(2^m): the product of
/// (x - alpha^j) over the cyclotomic coset of s. All coefficients are 0/1.
Poly minimal_polynomial(const Field& f, std::uint32_t s);

}  // namespace rd::gf
