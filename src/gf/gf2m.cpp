#include "gf/gf2m.h"

#include "common/check.h"

namespace rd::gf {

namespace {

// Standard primitive polynomials over GF(2), indexed by m.
constexpr std::uint32_t kPrimitive[] = {
    0,      0,      0,
    0xB,    // m=3:  x^3 + x + 1
    0x13,   // m=4:  x^4 + x + 1
    0x25,   // m=5:  x^5 + x^2 + 1
    0x43,   // m=6:  x^6 + x + 1
    0x89,   // m=7:  x^7 + x^3 + 1
    0x11D,  // m=8:  x^8 + x^4 + x^3 + x^2 + 1
    0x211,  // m=9:  x^9 + x^4 + 1
    0x409,  // m=10: x^10 + x^3 + 1
    0x805,  // m=11: x^11 + x^2 + 1
    0x1053, // m=12: x^12 + x^6 + x^4 + x + 1
    0x201B, // m=13: x^13 + x^4 + x^3 + x + 1
    0x4443, // m=14: x^14 + x^10 + x^6 + x + 1
};

}  // namespace

Field::Field(unsigned m) : m_(m) {
  RD_CHECK_MSG(m >= 3 && m <= 14, "GF(2^m) supported for m in [3,14]");
  size_ = 1u << m;
  prim_ = kPrimitive[m];
  exp_.resize(2 * order());
  log_.assign(size_, 0);

  Elem x = 1;
  for (std::uint32_t i = 0; i < order(); ++i) {
    exp_[i] = x;
    log_[x] = i;
    x <<= 1;
    if (x & size_) x ^= prim_;
  }
  // Duplicate the table: any exponent in [0, 2*order) resolves with a
  // plain lookup, so mul/div/inv/sqr never pay a modulo.
  for (std::uint32_t i = 0; i < order(); ++i) exp_[order() + i] = exp_[i];
}

Elem Field::div(Elem a, Elem b) const {
  RD_CHECK(b != 0);
  if (a == 0) return 0;
  // log_[a] + order - log_[b] is in [1, 2*order - 1): inside the doubled
  // exp table.
  return exp_[log_[a] + order() - log_[b]];
}

Elem Field::inv(Elem a) const {
  RD_CHECK(a != 0);
  // order - log_[a] is in [1, order]: inside the doubled exp table (the
  // a == 1 case lands on exp_[order] == exp_[0] == 1).
  return exp_[order() - log_[a]];
}

Elem Field::pow(Elem a, std::int64_t k) const {
  if (k == 0) return 1;
  RD_CHECK(a != 0);
  const std::int64_t n = order();
  std::int64_t e = ((log_[a] * (k % n)) % n + n) % n;
  return exp_[e];
}

Elem Field::alpha_pow(std::int64_t k) const {
  const std::int64_t n = order();
  return exp_[((k % n) + n) % n];
}

std::uint32_t Field::log(Elem a) const {
  RD_CHECK(a != 0);
  RD_CHECK(a < size_);
  return log_[a];
}

}  // namespace rd::gf
