// GF(2^m) arithmetic via exp/log tables.
//
// Substrate for the BCH codec: the 512-bit MLC PCM line uses a BCH code over
// GF(2^10) (n = 1023 shortened to 592). Fields for m in [3, 14] are
// supported with standard primitive polynomials.
//
// Performance note (DESIGN.md §10): the exp table is stored doubled
// (length 2 * order), so mul / div / inv / sqr are a table add plus one
// lookup with no modulo — the BCH syndrome and Chien kernels lean on this.
// All operations are pure functions of their arguments and the field size:
// deterministic, thread-safe after construction, and identical across
// kernel modes (the Field itself has no reference/optimized split).
#pragma once

#include <cstdint>
#include <vector>

namespace rd::gf {

/// An element of GF(2^m), represented by its polynomial bits.
using Elem = std::uint32_t;

/// GF(2^m) with tables for O(1) multiply/divide/inverse.
///
/// Elements are in [0, 2^m - 1]; 0 is the additive identity, 1 the
/// multiplicative identity, and `alpha()` a primitive element.
class Field {
 public:
  /// Construct GF(2^m). Requires 3 <= m <= 14. O(2^m) table build; a
  /// constructed Field is immutable and safe to share across threads.
  explicit Field(unsigned m);

  /// Field degree m (elements are m-bit polynomials).
  unsigned m() const { return m_; }
  /// Field size 2^m.
  std::uint32_t size() const { return size_; }
  /// Multiplicative group order 2^m - 1.
  std::uint32_t order() const { return size_ - 1; }
  /// The primitive element alpha (= x, i.e. 2).
  Elem alpha() const { return 2; }

  /// Addition == subtraction == XOR in characteristic 2.
  static Elem add(Elem a, Elem b) { return a ^ b; }

  /// a * b. The log sum is at most 2 * order - 2, inside the doubled exp
  /// table, so no reduction is needed.
  Elem mul(Elem a, Elem b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[log_[a] + log_[b]];
  }

  /// a^2. Exact (the Frobenius map); one lookup, no branch on a != 0
  /// beyond the zero guard. sqr(a) == mul(a, a) for every a.
  Elem sqr(Elem a) const {
    if (a == 0) return 0;
    return exp_[2 * log_[a]];
  }

  /// a / b. Requires b != 0.
  Elem div(Elem a, Elem b) const;

  /// Multiplicative inverse. Requires a != 0.
  Elem inv(Elem a) const;

  /// a^k for any integer k (negative exponents via inverse). a != 0 unless
  /// k > 0.
  Elem pow(Elem a, std::int64_t k) const;

  /// alpha^k (k taken mod the group order; negative allowed).
  Elem alpha_pow(std::int64_t k) const;

  /// alpha^k for k already reduced to [0, 2 * order): a single table
  /// lookup with no modulo. The fast-path sibling of alpha_pow for kernels
  /// that maintain reduced exponents themselves (BCH syndrome tables,
  /// incremental Chien search).
  Elem alpha_pow_reduced(std::uint32_t k) const { return exp_[k]; }

  /// Discrete log base alpha. Requires a != 0. Inverse of alpha_pow on
  /// [0, order).
  std::uint32_t log(Elem a) const;

  /// Raw pointer to the doubled exp table (exp_table()[k] ==
  /// alpha_pow_reduced(k), k in [0, 2 * order)). For the vectorized BCH
  /// kernels, whose gather instructions need a flat base address; the
  /// table lives as long as the Field.
  const Elem* exp_table() const { return exp_.data(); }

  /// The primitive polynomial used for this m (bits, degree m term
  /// included), e.g. 0x409 = x^10 + x^3 + 1 for m = 10.
  std::uint32_t primitive_poly() const { return prim_; }

 private:
  unsigned m_;
  std::uint32_t size_;
  std::uint32_t prim_;
  std::vector<Elem> exp_;          // exp_[i] = alpha^i, i in [0, 2*order)
  std::vector<std::uint32_t> log_; // log_[a] for a in [1, size)
};

}  // namespace rd::gf
