// Deterministic fault injection: the decision engine behind READDUO_FAULTS.
//
// Every decision is a pure function of (plan.seed, a per-class salt, the
// stable identifiers of the decision point) — a line address, a cell index,
// a read serial, a cache key — hashed into an Rng stream that is drawn
// exactly once per decision. Nothing depends on thread count, scheduling
// order, or wall clock, so a FaultPlan + seed reproduces the same faults
// bit-for-bit under READDUO_THREADS=1 and =N (test-enforced; see
// DESIGN.md §9 for the determinism contract).
//
// The injection seams are pull-based: chip / scheme / harness code holds a
// `const FaultEngine*` (null when faults are off) and asks it at each
// seam. The off path is a single pointer test — zero overhead, enforced by
// the golden tests' bit-identity with pre-fault outputs.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "faults/fault_plan.h"

namespace rd::faults {

/// Decision engine for one FaultPlan. Decision methods are const and
/// thread-safe; the per-class hit counters are atomic.
class FaultEngine {
 public:
  explicit FaultEngine(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  // ----------------------------------------------------- decisions ---

  /// Stuck level of functional-chip cell (line, cell), if faulted:
  /// explicit addresses first, then the probabilistic draw.
  std::optional<unsigned> stuck_level(std::uint64_t line,
                                      std::uint64_t cell) const;

  /// Additive metric offset (log10 units) for one cell sense of the
  /// functional chip; 0 when clean. `serial` is the chip's sense serial,
  /// so repeated reads of the same cell draw independent transients.
  double sense_offset(std::uint64_t line, std::uint64_t cell,
                      std::uint64_t serial) const;

  /// Extra R-metric errors the statistical model's read of `line` at
  /// `now` sees on top of the drift sample: binomial(ncells, sense_p).
  unsigned extra_r_errors(std::uint64_t line, Ns now, unsigned ncells) const;

  /// Vector-flag bit to flip (in [0, k)) for the LWT read of `line` at
  /// `now`, or nullopt when clean.
  std::optional<unsigned> lwt_vector_flip(std::uint64_t line, Ns now,
                                          unsigned k) const;

  /// Index-flag value (in [0, k)) to overwrite with, or nullopt.
  std::optional<unsigned> lwt_index_overwrite(std::uint64_t line, Ns now,
                                              unsigned k) const;

  /// Adversarial error burst for R-sense `serial` of `line`: plan.bch_e
  /// distinct bit positions in [0, codeword_bits), or empty when clean.
  /// Requires codeword_bits >= plan.bch_e when it fires.
  std::vector<unsigned> bch_error_positions(std::uint64_t line,
                                            std::uint64_t serial,
                                            unsigned codeword_bits) const;

  /// Corrupt a serialized bench_cache entry (keyed by its cache key);
  /// true when the bytes were modified. Corruption lands strictly after
  /// the schema tag, exercising the warn-and-recompute loader path.
  bool corrupt_cache_entry(const std::string& key, std::string& bytes) const;

  /// Short-read `bytes` of trace file `path` on load attempt `attempt`
  /// (0-based); true when the bytes were truncated. Keyed per attempt, so
  /// a bounded retry can succeed when the plan is probabilistic.
  bool trace_short_read(const std::string& path, unsigned attempt,
                        std::string& bytes) const;

  /// Corrupt `n` payload bytes of an inbound frame at the readduo_serve
  /// boundary; true when a byte was flipped. The decision is keyed by
  /// (payload content hash, per-connection frame serial) — stable
  /// identifiers, so a plan reproduces the same corruptions regardless
  /// of connection accept order or thread scheduling. Only payload bytes
  /// are touched (the header stays trustable), so every hit lands on the
  /// CRC-reject path: the server answers kBadFrame and the connection —
  /// and the run's virtual-time results — survive unchanged.
  bool wire_corrupt(char* bytes, std::size_t n, std::uint64_t serial) const;

  // ------------------------------------------------------ counters ---

  /// Faults of class `c` injected so far through this engine.
  std::uint64_t count(FaultClass c) const;
  /// Sum over all classes.
  std::uint64_t total() const;

 private:
  /// The decision stream for (salt; k1, k2, k3): one Rng per decision,
  /// never shared, never advanced across decisions.
  Rng stream(std::uint64_t salt, std::uint64_t k1, std::uint64_t k2 = 0,
             std::uint64_t k3 = 0) const;
  void bump(FaultClass c, std::uint64_t n = 1) const;

  FaultPlan plan_;
  mutable std::array<std::atomic<std::uint64_t>, kNumFaultClasses> counts_{};
};

/// The process-wide engine parsed from READDUO_FAULTS on first use
/// (nullptr when the knob is unset or names an all-zero plan). When the
/// value names an existing file, the spec is read from it.
const FaultEngine* engine();

/// Test seam: replace the process engine (nullptr = faults off). Not
/// thread-safe; call only between runs. Tests should restore nullptr.
void set_engine_for_test(std::unique_ptr<FaultEngine> e);

}  // namespace rd::faults
