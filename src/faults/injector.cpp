#include "faults/injector.h"

#include <fstream>
#include <mutex>
#include <sstream>

#include "common/check.h"
#include "common/env.h"

namespace rd::faults {

namespace {

// Per-class decision salts: distinct constants so the classes' streams
// are decorrelated even at identical keys.
constexpr std::uint64_t kSaltStuck = 0x5a5a0001d00dfeedull;
constexpr std::uint64_t kSaltSense = 0x5a5a0002d00dfeedull;
constexpr std::uint64_t kSaltExtraErr = 0x5a5a0003d00dfeedull;
constexpr std::uint64_t kSaltLwtVec = 0x5a5a0004d00dfeedull;
constexpr std::uint64_t kSaltLwtInd = 0x5a5a0005d00dfeedull;
constexpr std::uint64_t kSaltBch = 0x5a5a0006d00dfeedull;
constexpr std::uint64_t kSaltCache = 0x5a5a0007d00dfeedull;
constexpr std::uint64_t kSaltTrace = 0x5a5a0008d00dfeedull;
constexpr std::uint64_t kSaltWire = 0x5a5a0009d00dfeedull;

/// splitmix64 finalizer: the avalanche step used throughout the repo for
/// stable hashing of addresses.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t mix(std::uint64_t k1, std::uint64_t k2, std::uint64_t k3) {
  std::uint64_t h = mix64(k1);
  h = mix64(h ^ k2);
  return mix64(h ^ k3);
}

/// FNV-1a for raw bytes (frame payloads) and string keys (cache keys,
/// trace paths).
std::uint64_t fnv1a(const char* p, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(p[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a(const std::string& s) { return fnv1a(s.data(), s.size()); }

}  // namespace

FaultEngine::FaultEngine(FaultPlan plan) : plan_(std::move(plan)) {}

Rng FaultEngine::stream(std::uint64_t salt, std::uint64_t k1,
                        std::uint64_t k2, std::uint64_t k3) const {
  return Rng(plan_.seed ^ salt, mix(k1, k2, k3));
}

void FaultEngine::bump(FaultClass c, std::uint64_t n) const {
  counts_[static_cast<unsigned>(c)].fetch_add(n,
                                              std::memory_order_relaxed);
}

std::uint64_t FaultEngine::count(FaultClass c) const {
  return counts_[static_cast<unsigned>(c)].load(std::memory_order_relaxed);
}

std::uint64_t FaultEngine::total() const {
  std::uint64_t sum = 0;
  for (const auto& c : counts_) sum += c.load(std::memory_order_relaxed);
  return sum;
}

std::optional<unsigned> FaultEngine::stuck_level(std::uint64_t line,
                                                 std::uint64_t cell) const {
  for (const StuckAddress& a : plan_.stuck_cells) {
    if (a.line == line && a.cell == cell) {
      bump(FaultClass::kStuckCell);
      return a.level;
    }
  }
  if (plan_.stuck_p > 0.0) {
    Rng s = stream(kSaltStuck, line, cell);
    if (s.bernoulli(plan_.stuck_p)) {
      bump(FaultClass::kStuckCell);
      return plan_.stuck_level;
    }
  }
  return std::nullopt;
}

double FaultEngine::sense_offset(std::uint64_t line, std::uint64_t cell,
                                 std::uint64_t serial) const {
  if (plan_.sense_p <= 0.0) return 0.0;
  Rng s = stream(kSaltSense, line, cell, serial);
  if (!s.bernoulli(plan_.sense_p)) return 0.0;
  bump(FaultClass::kSenseOffset);
  // Drift only pushes the metric up, and so does the injected transient:
  // a positive offset is the hostile direction for level readout.
  return plan_.sense_mag;
}

unsigned FaultEngine::extra_r_errors(std::uint64_t line, Ns now,
                                     unsigned ncells) const {
  if (plan_.sense_p <= 0.0) return 0;
  Rng s = stream(kSaltExtraErr, line, static_cast<std::uint64_t>(now.v));
  const unsigned n = s.binomial(ncells, plan_.sense_p);
  if (n > 0) bump(FaultClass::kSenseOffset, n);
  return n;
}

std::optional<unsigned> FaultEngine::lwt_vector_flip(std::uint64_t line,
                                                     Ns now,
                                                     unsigned k) const {
  RD_CHECK(k > 0);
  if (plan_.lwt_vec_p <= 0.0) return std::nullopt;
  Rng s = stream(kSaltLwtVec, line, static_cast<std::uint64_t>(now.v));
  if (!s.bernoulli(plan_.lwt_vec_p)) return std::nullopt;
  bump(FaultClass::kLwtVector);
  return static_cast<unsigned>(s.uniform_below(k));
}

std::optional<unsigned> FaultEngine::lwt_index_overwrite(std::uint64_t line,
                                                         Ns now,
                                                         unsigned k) const {
  RD_CHECK(k > 0);
  if (plan_.lwt_ind_p <= 0.0) return std::nullopt;
  Rng s = stream(kSaltLwtInd, line, static_cast<std::uint64_t>(now.v));
  if (!s.bernoulli(plan_.lwt_ind_p)) return std::nullopt;
  bump(FaultClass::kLwtIndex);
  return static_cast<unsigned>(s.uniform_below(k));
}

std::vector<unsigned> FaultEngine::bch_error_positions(
    std::uint64_t line, std::uint64_t serial,
    unsigned codeword_bits) const {
  if (plan_.bch_p <= 0.0) return {};
  Rng s = stream(kSaltBch, line, serial);
  if (!s.bernoulli(plan_.bch_p)) return {};
  RD_CHECK(codeword_bits >= plan_.bch_e);
  std::vector<unsigned> positions;
  positions.reserve(plan_.bch_e);
  while (positions.size() < plan_.bch_e) {
    const unsigned p =
        static_cast<unsigned>(s.uniform_below(codeword_bits));
    bool dup = false;
    for (unsigned q : positions) dup = dup || q == p;
    if (!dup) positions.push_back(p);
  }
  bump(FaultClass::kBchError);
  return positions;
}

bool FaultEngine::corrupt_cache_entry(const std::string& key,
                                      std::string& bytes) const {
  if (plan_.cache_p <= 0.0) return false;
  Rng s = stream(kSaltCache, fnv1a(key));
  if (!s.bernoulli(plan_.cache_p)) return false;
  // Corrupt strictly after the schema tag line: a wrong tag is a silent
  // (expected) cache miss, while damage behind a valid tag is what the
  // loader's warn-and-recompute path must absorb.
  std::size_t body = bytes.find('\n');
  body = body == std::string::npos ? 0 : body + 1;
  if (body >= bytes.size()) return false;  // no body to damage
  bump(FaultClass::kCacheCorrupt);
  if (plan_.cache_truncate) {
    bytes.resize(body + (bytes.size() - body) / 2);
    return true;
  }
  // Garble a few characters a third of the way into the body — far past
  // the scheme-name token, so the damage always hits a numeric field and
  // can never re-parse cleanly.
  const std::size_t at = body + (bytes.size() - body) / 3;
  for (std::size_t i = at; i < bytes.size() && i < at + 4; ++i) {
    bytes[i] = '?';
  }
  return true;
}

bool FaultEngine::trace_short_read(const std::string& path, unsigned attempt,
                                   std::string& bytes) const {
  bool fire = attempt < plan_.trace_fail_reads;
  if (!fire && plan_.trace_p > 0.0) {
    Rng s = stream(kSaltTrace, fnv1a(path), attempt);
    fire = s.bernoulli(plan_.trace_p);
  }
  if (!fire || bytes.empty()) return false;
  bump(FaultClass::kTraceShortRead);
  // Model a short read: keep a prefix, cutting just after the last op
  // kind before the 2/3 mark so the final line is mid-token (a trace
  // parser must reject it rather than silently return fewer ops).
  std::size_t cut = bytes.size() * 2 / 3;
  for (std::size_t i = cut; i > 1; --i) {
    const char c = bytes[i - 1];
    if ((c == 'R' || c == 'W') && bytes[i - 2] == ' ') {
      cut = i;
      break;
    }
  }
  bytes.resize(cut);
  return true;
}

bool FaultEngine::wire_corrupt(char* bytes, std::size_t n,
                               std::uint64_t serial) const {
  if (plan_.wire_p <= 0.0 || n == 0) return false;
  Rng s = stream(kSaltWire, fnv1a(bytes, n), serial);
  if (!s.bernoulli(plan_.wire_p)) return false;
  bump(FaultClass::kWireCorrupt);
  // XOR with a nonzero mask: the payload always changes, so the CRC
  // always catches it — the fault never silently passes through.
  const std::size_t at = static_cast<std::size_t>(s.uniform_below(n));
  bytes[at] = static_cast<char>(
      bytes[at] ^ static_cast<char>(1 + s.uniform_below(255)));
  return true;
}

// ---------------------------------------------------- process engine ---

namespace {

std::unique_ptr<FaultEngine>& engine_slot() {
  static std::unique_ptr<FaultEngine> slot;
  return slot;
}

std::once_flag& engine_once() {
  static std::once_flag once;
  return once;
}

void init_engine_from_env() {
  const char* e = env_cstr("READDUO_FAULTS");
  if (e == nullptr || *e == '\0') return;
  std::string spec(e);
  // File form: when the value names a readable file, the spec lives there.
  if (std::ifstream f(spec); f) {
    std::ostringstream buf;
    buf << f.rdbuf();
    spec = buf.str();
  }
  FaultPlan plan = FaultPlan::parse(spec);
  if (plan.any()) {
    engine_slot() = std::make_unique<FaultEngine>(std::move(plan));
  }
}

}  // namespace

const FaultEngine* engine() {
  std::call_once(engine_once(), init_engine_from_env);
  return engine_slot().get();
}

void set_engine_for_test(std::unique_ptr<FaultEngine> e) {
  // Consume the one-time env parse first so it can never overwrite the
  // test's engine afterwards.
  std::call_once(engine_once(), init_engine_from_env);
  engine_slot() = std::move(e);
}

}  // namespace rd::faults
