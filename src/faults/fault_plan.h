// Deterministic fault-injection plans (the READDUO_FAULTS knob).
//
// A FaultPlan is the parsed, validated description of which fault classes
// a run injects and how hard. It is pure data: the decisions themselves
// (which cell, which read, which cache entry) live in FaultEngine and are
// keyed hashes of (plan seed, stable identifiers), so a plan reproduces
// bit-identically across thread counts and process runs.
//
// Spec grammar (strict; any malformed token throws rd::CheckFailure):
//
//   spec    := clause (';' clause)*         empty clauses are skipped
//   clause  := 'seed=' <uint> | class (':' kv (',' kv)*)?
//   class   := 'stuck' | 'sense' | 'lwt-vec' | 'lwt-ind'
//            | 'bch' | 'cache' | 'trace' | 'wire'
//   kv      := key '=' value
//
// When the READDUO_FAULTS value names an existing file, the spec is read
// from it instead ('#' starts a comment, newlines act as ';').
//
// Per-class keys (all probabilities in [0, 1]):
//   stuck   p=<prob> level=<0..3>      probabilistic stuck-at cells, or
//           line=<n>,cell=<n>,level=<l> one explicitly addressed cell
//   sense   p=<prob> mag=<log10 units> per-cell-read transient offset
//   lwt-vec p=<prob>                   vector-flag bit flip per read
//   lwt-ind p=<prob>                   index-flag overwrite per read
//   bch     p=<prob> e=<9..17>         adversarial error burst per R-sense
//   cache   p=<prob> mode=garble|truncate   bench_cache entry corruption
//   trace   p=<prob> n=<attempts>      trace-file short reads (n > 0:
//                                      deterministically fail the first n
//                                      load attempts instead of drawing p)
//   wire    p=<prob>                   frame-payload corruption at the
//                                      readduo_serve socket boundary (the
//                                      CRC catches it; the client retries)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rd::faults {

/// Fault classes, in canonical (spec keyword) order. Each gets its own
/// decision salt and per-class counter in FaultEngine.
enum class FaultClass : unsigned {
  kStuckCell = 0,   ///< "stuck": cells pinned at a level (endurance wear)
  kSenseOffset,     ///< "sense": transient per-read metric disturbance
  kLwtVector,       ///< "lwt-vec": LWT vector-flag bit flips
  kLwtIndex,        ///< "lwt-ind": LWT index-flag overwrites
  kBchError,        ///< "bch": 9..17-bit bursts at the detection boundary
  kCacheCorrupt,    ///< "cache": garbled/truncated bench_cache entries
  kTraceShortRead,  ///< "trace": trace-file short reads
  kWireCorrupt,     ///< "wire": inbound frame-payload corruption
};

inline constexpr std::size_t kNumFaultClasses = 8;

/// The spec keyword of a class ("stuck", "sense", ...).
const char* fault_class_name(FaultClass c);

/// One explicitly addressed stuck cell.
struct StuckAddress {
  std::uint64_t line = 0;
  std::uint64_t cell = 0;
  unsigned level = 3;  ///< RESET by default (the common wear failure)

  friend bool operator==(const StuckAddress& a, const StuckAddress& b) {
    return a.line == b.line && a.cell == b.cell && a.level == b.level;
  }
};

/// Parsed, validated fault configuration. Value type; compare with ==.
struct FaultPlan {
  std::uint64_t seed = 1;  ///< decision seed, independent of the sim seed

  // stuck
  double stuck_p = 0.0;
  unsigned stuck_level = 3;
  std::vector<StuckAddress> stuck_cells;

  // sense
  double sense_p = 0.0;
  double sense_mag = 0.5;  ///< additive metric offset, log10 units

  // lwt-vec / lwt-ind
  double lwt_vec_p = 0.0;
  double lwt_ind_p = 0.0;

  // bch
  double bch_p = 0.0;
  unsigned bch_e = 12;  ///< injected burst weight, 9..17

  // cache
  double cache_p = 0.0;
  bool cache_truncate = false;  ///< truncate instead of garbling bytes

  // trace
  double trace_p = 0.0;
  unsigned trace_fail_reads = 0;  ///< fail the first n attempts outright

  // wire
  double wire_p = 0.0;

  /// True when any injector can perturb simulation results (stuck, sense,
  /// lwt-*, bch). Harness-only faults (cache, trace, wire) never change
  /// what a run computes, only how the harness gets there — a corrupted
  /// frame is caught by the CRC and resent, so the admitted request
  /// sequence (and every virtual-time metric) is unchanged.
  bool affects_simulation() const;

  /// True when any class can fire at all.
  bool any() const;

  /// Parse the spec grammar above. Throws rd::CheckFailure naming the
  /// offending token on any malformed or out-of-range input.
  static FaultPlan parse(const std::string& spec);

  /// Canonical spec string. Round-trips: parse(p.canonical()) == p, up to
  /// normalizing away zero-probability clauses (whose other parameters are
  /// inert anyway).
  std::string canonical() const;

  friend bool operator==(const FaultPlan& a, const FaultPlan& b);
};

}  // namespace rd::faults
