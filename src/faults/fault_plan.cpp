#include "faults/fault_plan.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace rd::faults {

namespace {

/// Trim ASCII spaces and tabs from both ends.
std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::uint64_t parse_uint(const std::string& clause, const std::string& v) {
  RD_CHECK_MSG(!v.empty(), "READDUO_FAULTS clause '" << clause
                                                     << "': empty integer");
  for (char c : v) {
    RD_CHECK_MSG(c >= '0' && c <= '9',
                 "READDUO_FAULTS clause '" << clause << "': '" << v
                                           << "' is not a plain integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
  RD_CHECK_MSG(errno == 0 && end == v.c_str() + v.size(),
               "READDUO_FAULTS clause '" << clause << "': '" << v
                                         << "' is out of range");
  return x;
}

double parse_real(const std::string& clause, const std::string& v) {
  RD_CHECK_MSG(!v.empty(), "READDUO_FAULTS clause '" << clause
                                                     << "': empty number");
  errno = 0;
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  RD_CHECK_MSG(errno == 0 && end == v.c_str() + v.size(),
               "READDUO_FAULTS clause '" << clause << "': '" << v
                                         << "' is not a number");
  RD_CHECK_MSG(x == x && x <= std::numeric_limits<double>::max() &&
                   x >= -std::numeric_limits<double>::max(),
               "READDUO_FAULTS clause '" << clause << "': '" << v
                                         << "' is not finite");
  return x;
}

double parse_prob(const std::string& clause, const std::string& v) {
  const double p = parse_real(clause, v);
  RD_CHECK_MSG(p >= 0.0 && p <= 1.0, "READDUO_FAULTS clause '"
                                         << clause << "': probability " << v
                                         << " outside [0, 1]");
  return p;
}

/// One clause's key=value pairs, order preserved, duplicates rejected.
struct KvList {
  std::vector<std::string> keys;
  std::vector<std::string> vals;

  bool has(const std::string& k) const {
    for (const std::string& key : keys) {
      if (key == k) return true;
    }
    return false;
  }
  const std::string& get(const std::string& k) const {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == k) return vals[i];
    }
    RD_CHECK_MSG(false, "missing key '" << k << "'");
    static const std::string kEmpty;
    return kEmpty;  // unreachable
  }
};

KvList parse_kvs(const std::string& clause, const std::string& body,
                 const std::vector<std::string>& allowed) {
  KvList kvs;
  if (trim(body).empty()) return kvs;
  for (const std::string& raw : split(body, ',')) {
    const std::string kv = trim(raw);
    const std::size_t eq = kv.find('=');
    RD_CHECK_MSG(eq != std::string::npos && eq > 0 && eq + 1 <= kv.size(),
                 "READDUO_FAULTS clause '" << clause << "': '" << kv
                                           << "' is not key=value");
    const std::string k = trim(kv.substr(0, eq));
    const std::string v = trim(kv.substr(eq + 1));
    bool known = false;
    for (const std::string& a : allowed) known = known || a == k;
    RD_CHECK_MSG(known, "READDUO_FAULTS clause '" << clause
                                                  << "': unknown key '" << k
                                                  << "'");
    RD_CHECK_MSG(!kvs.has(k), "READDUO_FAULTS clause '"
                                  << clause << "': duplicate key '" << k
                                  << "'");
    kvs.keys.push_back(k);
    kvs.vals.push_back(v);
  }
  return kvs;
}

std::string render_real(double x) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << x;
  return os.str();
}

}  // namespace

const char* fault_class_name(FaultClass c) {
  switch (c) {
    case FaultClass::kStuckCell: return "stuck";
    case FaultClass::kSenseOffset: return "sense";
    case FaultClass::kLwtVector: return "lwt-vec";
    case FaultClass::kLwtIndex: return "lwt-ind";
    case FaultClass::kBchError: return "bch";
    case FaultClass::kCacheCorrupt: return "cache";
    case FaultClass::kTraceShortRead: return "trace";
    case FaultClass::kWireCorrupt: return "wire";
  }
  return "?";
}

bool FaultPlan::affects_simulation() const {
  return stuck_p > 0.0 || !stuck_cells.empty() || sense_p > 0.0 ||
         lwt_vec_p > 0.0 || lwt_ind_p > 0.0 || bch_p > 0.0;
}

bool FaultPlan::any() const {
  return affects_simulation() || cache_p > 0.0 || trace_p > 0.0 ||
         trace_fail_reads > 0 || wire_p > 0.0;
}

bool operator==(const FaultPlan& a, const FaultPlan& b) {
  return a.seed == b.seed && a.stuck_p == b.stuck_p &&
         a.stuck_level == b.stuck_level && a.stuck_cells == b.stuck_cells &&
         a.sense_p == b.sense_p && a.sense_mag == b.sense_mag &&
         a.lwt_vec_p == b.lwt_vec_p && a.lwt_ind_p == b.lwt_ind_p &&
         a.bch_p == b.bch_p && a.bch_e == b.bch_e &&
         a.cache_p == b.cache_p && a.cache_truncate == b.cache_truncate &&
         a.trace_p == b.trace_p &&
         a.trace_fail_reads == b.trace_fail_reads && a.wire_p == b.wire_p;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  // Newlines act as clause separators (the file form); '#' starts a
  // comment running to end of line.
  std::string flat;
  bool in_comment = false;
  for (char c : spec) {
    if (c == '#') in_comment = true;
    if (c == '\n' || c == '\r') {
      flat += ';';
      in_comment = false;
      continue;
    }
    if (!in_comment) flat += c;
  }

  bool saw_probabilistic_stuck = false;
  std::vector<bool> saw(kNumFaultClasses, false);
  bool saw_seed = false;

  for (const std::string& raw : split(flat, ';')) {
    const std::string clause = trim(raw);
    if (clause.empty()) continue;

    if (clause.rfind("seed=", 0) == 0) {
      RD_CHECK_MSG(!saw_seed, "READDUO_FAULTS: duplicate seed clause");
      saw_seed = true;
      plan.seed = parse_uint(clause, trim(clause.substr(5)));
      continue;
    }

    const std::size_t colon = clause.find(':');
    const std::string name = trim(clause.substr(0, colon));
    const std::string body =
        colon == std::string::npos ? "" : clause.substr(colon + 1);

    if (name == "stuck") {
      const KvList kvs =
          parse_kvs(clause, body, {"p", "level", "line", "cell"});
      unsigned level = 3;
      if (kvs.has("level")) {
        const std::uint64_t l = parse_uint(clause, kvs.get("level"));
        RD_CHECK_MSG(l <= 3, "READDUO_FAULTS clause '"
                                 << clause << "': level must be 0..3");
        level = static_cast<unsigned>(l);
      }
      if (kvs.has("line") || kvs.has("cell")) {
        RD_CHECK_MSG(kvs.has("line") && kvs.has("cell") && !kvs.has("p"),
                     "READDUO_FAULTS clause '"
                         << clause
                         << "': an explicit stuck cell needs line= and "
                            "cell= (and no p=)");
        plan.stuck_cells.push_back(
            StuckAddress{parse_uint(clause, kvs.get("line")),
                         parse_uint(clause, kvs.get("cell")), level});
      } else {
        RD_CHECK_MSG(kvs.has("p"), "READDUO_FAULTS clause '"
                                       << clause
                                       << "': stuck needs p= or line=/cell=");
        RD_CHECK_MSG(!saw_probabilistic_stuck,
                     "READDUO_FAULTS: duplicate probabilistic stuck clause");
        saw_probabilistic_stuck = true;
        plan.stuck_p = parse_prob(clause, kvs.get("p"));
        plan.stuck_level = level;
      }
      continue;
    }

    FaultClass cls{};
    if (name == "sense") {
      cls = FaultClass::kSenseOffset;
    } else if (name == "lwt-vec") {
      cls = FaultClass::kLwtVector;
    } else if (name == "lwt-ind") {
      cls = FaultClass::kLwtIndex;
    } else if (name == "bch") {
      cls = FaultClass::kBchError;
    } else if (name == "cache") {
      cls = FaultClass::kCacheCorrupt;
    } else if (name == "trace") {
      cls = FaultClass::kTraceShortRead;
    } else if (name == "wire") {
      cls = FaultClass::kWireCorrupt;
    } else {
      RD_CHECK_MSG(false, "READDUO_FAULTS: unknown clause '" << clause
                                                             << "'");
    }
    RD_CHECK_MSG(!saw[static_cast<unsigned>(cls)],
                 "READDUO_FAULTS: duplicate '" << name << "' clause");
    saw[static_cast<unsigned>(cls)] = true;

    switch (cls) {
      case FaultClass::kSenseOffset: {
        const KvList kvs = parse_kvs(clause, body, {"p", "mag"});
        RD_CHECK_MSG(kvs.has("p"),
                     "READDUO_FAULTS clause '" << clause << "': needs p=");
        plan.sense_p = parse_prob(clause, kvs.get("p"));
        if (kvs.has("mag")) {
          plan.sense_mag = parse_real(clause, kvs.get("mag"));
          RD_CHECK_MSG(plan.sense_mag > 0.0,
                       "READDUO_FAULTS clause '" << clause
                                                 << "': mag must be > 0");
        }
        break;
      }
      case FaultClass::kLwtVector: {
        const KvList kvs = parse_kvs(clause, body, {"p"});
        RD_CHECK_MSG(kvs.has("p"),
                     "READDUO_FAULTS clause '" << clause << "': needs p=");
        plan.lwt_vec_p = parse_prob(clause, kvs.get("p"));
        break;
      }
      case FaultClass::kLwtIndex: {
        const KvList kvs = parse_kvs(clause, body, {"p"});
        RD_CHECK_MSG(kvs.has("p"),
                     "READDUO_FAULTS clause '" << clause << "': needs p=");
        plan.lwt_ind_p = parse_prob(clause, kvs.get("p"));
        break;
      }
      case FaultClass::kBchError: {
        const KvList kvs = parse_kvs(clause, body, {"p", "e"});
        RD_CHECK_MSG(kvs.has("p"),
                     "READDUO_FAULTS clause '" << clause << "': needs p=");
        plan.bch_p = parse_prob(clause, kvs.get("p"));
        if (kvs.has("e")) {
          const std::uint64_t e = parse_uint(clause, kvs.get("e"));
          // The interesting band: beyond correction (t = 8), within the
          // design-distance detection guarantee.
          RD_CHECK_MSG(e >= 9 && e <= 17,
                       "READDUO_FAULTS clause '" << clause
                                                 << "': e must be 9..17");
          plan.bch_e = static_cast<unsigned>(e);
        }
        break;
      }
      case FaultClass::kCacheCorrupt: {
        const KvList kvs = parse_kvs(clause, body, {"p", "mode"});
        RD_CHECK_MSG(kvs.has("p"),
                     "READDUO_FAULTS clause '" << clause << "': needs p=");
        plan.cache_p = parse_prob(clause, kvs.get("p"));
        if (kvs.has("mode")) {
          const std::string m = kvs.get("mode");
          RD_CHECK_MSG(m == "garble" || m == "truncate",
                       "READDUO_FAULTS clause '"
                           << clause << "': mode must be garble|truncate");
          plan.cache_truncate = m == "truncate";
        }
        break;
      }
      case FaultClass::kTraceShortRead: {
        const KvList kvs = parse_kvs(clause, body, {"p", "n"});
        RD_CHECK_MSG(kvs.has("p") || kvs.has("n"),
                     "READDUO_FAULTS clause '" << clause
                                               << "': needs p= or n=");
        if (kvs.has("p")) plan.trace_p = parse_prob(clause, kvs.get("p"));
        if (kvs.has("n")) {
          plan.trace_fail_reads =
              static_cast<unsigned>(parse_uint(clause, kvs.get("n")));
        }
        break;
      }
      case FaultClass::kWireCorrupt: {
        const KvList kvs = parse_kvs(clause, body, {"p"});
        RD_CHECK_MSG(kvs.has("p"),
                     "READDUO_FAULTS clause '" << clause << "': needs p=");
        plan.wire_p = parse_prob(clause, kvs.get("p"));
        break;
      }
      case FaultClass::kStuckCell:
        break;  // handled above
    }
  }
  return plan;
}

std::string FaultPlan::canonical() const {
  std::ostringstream os;
  os << "seed=" << seed;
  if (stuck_p > 0.0) {
    os << ";stuck:p=" << render_real(stuck_p) << ",level=" << stuck_level;
  }
  for (const StuckAddress& a : stuck_cells) {
    os << ";stuck:line=" << a.line << ",cell=" << a.cell
       << ",level=" << a.level;
  }
  if (sense_p > 0.0) {
    os << ";sense:p=" << render_real(sense_p)
       << ",mag=" << render_real(sense_mag);
  }
  if (lwt_vec_p > 0.0) os << ";lwt-vec:p=" << render_real(lwt_vec_p);
  if (lwt_ind_p > 0.0) os << ";lwt-ind:p=" << render_real(lwt_ind_p);
  if (bch_p > 0.0) {
    os << ";bch:p=" << render_real(bch_p) << ",e=" << bch_e;
  }
  if (cache_p > 0.0) {
    os << ";cache:p=" << render_real(cache_p)
       << ",mode=" << (cache_truncate ? "truncate" : "garble");
  }
  if (trace_p > 0.0 || trace_fail_reads > 0) {
    os << ";trace:";
    if (trace_p > 0.0) os << "p=" << render_real(trace_p);
    if (trace_fail_reads > 0) {
      if (trace_p > 0.0) os << ",";
      os << "n=" << trace_fail_reads;
    }
  }
  if (wire_p > 0.0) os << ";wire:p=" << render_real(wire_p);
  return os.str();
}

}  // namespace rd::faults
