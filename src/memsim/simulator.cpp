#include "memsim/simulator.h"

#include <algorithm>
#include <iostream>
#include <utility>

#include "common/check.h"

namespace rd::memsim {

namespace {

stats::ReqClass class_of(readduo::ReadMode mode) {
  switch (mode) {
    case readduo::ReadMode::kRRead: return stats::ReqClass::kRRead;
    case readduo::ReadMode::kMRead: return stats::ReqClass::kMRead;
    case readduo::ReadMode::kRMRead: return stats::ReqClass::kRMRead;
  }
  return stats::ReqClass::kRRead;
}

}  // namespace

Simulator::Simulator(const SimConfig& cfg, readduo::Scheme& scheme,
                     const trace::Workload& workload)
    : cfg_(cfg), scheme_(scheme), rng_(cfg.seed ^ 0xabcdef12345ull) {
  RD_CHECK(cfg.org.num_banks >= 1);
  for (unsigned c = 0; c < cfg.cpu.num_cores; ++c) {
    gens_.emplace_back(workload, c, cfg.seed);
    Core core;
    core.budget = cfg.instructions_per_core;
    cores_.push_back(core);
  }
  banks_.resize(cfg.org.num_banks);
  bank_op_.assign(cfg.org.num_banks, BankOp::kNone);
  bank_read_.resize(cfg.org.num_banks);
  bank_scrub_rewrites_.assign(cfg.org.num_banks, 0);
  result_.metrics.banks.resize(cfg.org.num_banks);
  if (cfg.trace_events > 0) {
    ring_ = std::make_unique<stats::EventRing>(cfg.trace_events);
  }
  reliab_seen_ = scheme.counters().detected_uncorrectable +
                 scheme.counters().silent_corruptions;
  faults_seen_ = scheme.counters().injected_faults;

  // Scrub period per bank: every line of the bank each S seconds, sensed
  // one row (lines_per_scrub lines) per operation.
  const double s = scheme_.scrub_interval_seconds();
  if (s > 0.0) {
    const double rows = static_cast<double>(cfg.org.lines_per_bank()) /
                        static_cast<double>(cfg.org.lines_per_scrub);
    const double period_ns = static_cast<double>(from_seconds(s).v) / rows;
    scrub_period_ = Ns{std::max<std::int64_t>(
        1, static_cast<std::int64_t>(period_ns + 0.5))};
  }
}

void Simulator::schedule(Ns t, EventKind kind, unsigned index,
                         std::uint64_t tag) {
  events_.push(Event{t, seq_++, kind, index, tag});
}

void Simulator::ensure_primed() {
  if (primed_) return;
  primed_ = true;
  for (unsigned c = 0; c < cores_.size(); ++c) advance_core(c, Ns{0});
  if (scrub_period_.v > 0) {
    for (unsigned b = 0; b < banks_.size(); ++b) {
      // Stagger the scrub registers across banks.
      banks_[b].next_scrub =
          Ns{static_cast<std::int64_t>(b) * scrub_period_.v /
             static_cast<std::int64_t>(banks_.size())};
      schedule(banks_[b].next_scrub, EventKind::kScrubTick, b);
    }
  }
}

bool Simulator::all_cores_done() const {
  for (const Core& c : cores_) {
    if (!c.done) return false;
  }
  return true;
}

void Simulator::process(const Event& ev) {
  now_ = std::max(now_, ev.time);
  switch (ev.kind) {
    case EventKind::kCoreIssue:
      core_issue(ev.index, ev.time);
      break;
    case EventKind::kBankDone:
      bank_done(ev.index, ev.time, ev.tag);
      break;
    case EventKind::kScrubTick:
      scrub_tick(ev.index, ev.time);
      break;
  }
}

SimResult Simulator::run() {
  RD_CHECK_MSG(!externally_driven(),
               "run() needs cores; drive an open system with step()");
  ensure_primed();
  while (!events_.empty()) {
    const Event ev = events_.top();
    events_.pop();
    process(ev);
    // Stop once every core retired its budget; in-flight scrub ticks
    // would otherwise keep the queue alive forever.
    if (all_cores_done()) break;
  }

  Ns finish{0};
  std::uint64_t instructions = 0;
  for (const Core& c : cores_) {
    finish = std::max(finish, c.finish_time);
    instructions += cfg_.instructions_per_core - c.budget;
  }
  result_.exec_time = finish;
  result_.instructions = instructions;
  for (const Bank& b : banks_) result_.scrub_backlog_end += b.scrub_backlog;
  return result_;
}

std::size_t Simulator::step(Ns until) {
  ensure_primed();
  std::size_t n = 0;
  while (!events_.empty() && events_.top().time <= until) {
    const Event ev = events_.top();
    events_.pop();
    process(ev);
    ++n;
  }
  now_ = std::max(now_, until);
  return n;
}

bool Simulator::step_one() {
  ensure_primed();
  if (events_.empty()) return false;
  const Event ev = events_.top();
  events_.pop();
  process(ev);
  return true;
}

void Simulator::external_read(std::uint64_t id, std::uint64_t line,
                              bool archive, Ns now) {
  RD_CHECK_MSG(externally_driven(),
               "external requests need a 0-core simulator");
  RD_CHECK(id != 0);
  // Catch the simulator up to the arrival time first: a request must
  // never be dispatched by a pending event earlier than its admission.
  step(now);
  trace::MemOp op;
  op.line = line;
  op.archive = archive;
  enqueue_read(/*core=*/0, op, now, /*blocking=*/false, id);
}

bool Simulator::external_write(std::uint64_t id, std::uint64_t line, Ns now) {
  RD_CHECK_MSG(externally_driven(),
               "external requests need a 0-core simulator");
  RD_CHECK(id != 0);
  step(now);  // see external_read: no pending event may predate admission
  return enqueue_write(line, WriteKind::kDemand, now, id);
}

std::vector<Simulator::Completion> Simulator::take_completions() {
  return std::exchange(completions_, {});
}

// Advance a core past its current operation: charge the instruction gap
// and schedule the issue of the next memory operation.
void Simulator::advance_core(unsigned core_id, Ns now) {
  Core& core = cores_[core_id];
  if (core.done) return;
  if (!core.has_pending) {
    core.pending = gens_[core_id].next();
    core.has_pending = true;
    // Charge the compute gap (+1 for the memory instruction itself).
    const std::uint64_t cost = core.pending.gap_instructions + 1;
    const std::uint64_t instrs = std::min<std::uint64_t>(cost, core.budget);
    core.budget -= instrs;
    if (instrs < cost) {
      // Budget exhausted inside the compute gap: the memory instruction
      // itself did not fit, so the core finishes after the remaining
      // compute without issuing the pending op. (When the +1 fits
      // exactly, the op is a retired instruction and must still issue.)
      core.done = true;
      core.finish_time = now + cfg_.cpu.compute_time(instrs);
      return;
    }
    schedule(now + cfg_.cpu.compute_time(instrs), EventKind::kCoreIssue,
             core_id);
  }
}

void Simulator::core_issue(unsigned core_id, Ns now) {
  Core& core = cores_[core_id];
  if (core.done) return;
  if (!core.has_pending) {
    // Resumed after a read completion: fetch and schedule the next op.
    advance_core(core_id, now);
    return;
  }
  const trace::MemOp op = core.pending;

  if (op.is_write) {
    if (!enqueue_write(op.line, WriteKind::kDemand, now)) {
      // Write queue full: in-order core stalls; retried when the bank
      // drains a write.
      core.blocked_on_write_q = true;
      return;
    }
    core.has_pending = false;
    advance_core(core_id, now);
  } else if (rng_.bernoulli(cfg_.cpu.read_stall_fraction)) {
    core.blocked_on_read = true;
    enqueue_read(core_id, op, now, /*blocking=*/true);
  } else {
    // Overlapped read: occupies the memory system but the core continues.
    enqueue_read(core_id, op, now, /*blocking=*/false);
    core.has_pending = false;
    advance_core(core_id, now);
  }
}

void Simulator::enqueue_read(unsigned core, const trace::MemOp& op, Ns now,
                             bool blocking, std::uint64_t svc_id) {
  const unsigned b = bank_of(op.line);
  Bank& bank = banks_[b];
  bank.read_q.push_back(
      ReadReq{core, op.line, op.archive, blocking, now,
              readduo::ReadMode::kRRead, svc_id});

  // Write cancellation: a read arriving at a bank busy with a cancellable
  // write preempts it; the write restarts later from scratch.
  if (cfg_.write_cancellation && bank.busy && bank.write_in_service &&
      bank.in_service.cancellations < cfg_.max_write_cancellations) {
    ++result_.write_cancellations;
    WriteReq aborted = bank.in_service;
    ++aborted.cancellations;
    if (cfg_.write_preemption == WritePreemption::kPause) {
      // Pausing keeps the completed P&V iterations: only the remaining
      // latency is owed when the write resumes.
      aborted.latency = bank.busy_until - now;
    }
    bank.write_q.push_front(aborted);
    trace_event(now, 'C', stats::ReqClass::kDemandWrite, b, aborted.line,
                bank.busy_until - now);
    // The bank becomes free now; the queued read dispatches immediately.
    result_.bank_busy_ns -= (bank.busy_until - now).v;
    result_.metrics.banks[b].busy_ns -= (bank.busy_until - now).v;
    bank.busy = false;
    bank.write_in_service = false;
    bank_op_[b] = BankOp::kNone;
    dispatch(b, now);
  } else if (!bank.busy) {
    dispatch(b, now);
  }
}

bool Simulator::enqueue_write(std::uint64_t line, WriteKind kind, Ns now,
                              std::uint64_t svc_id) {
  const unsigned b = bank_of(line);
  Bank& bank = banks_[b];
  if (kind == WriteKind::kDemand &&
      bank.write_q.size() >= cfg_.write_queue_depth) {
    return false;
  }
  if (kind == WriteKind::kScrubRewrite &&
      bank.write_q.size() >= cfg_.write_queue_depth) {
    // Backpressure: the scrub engine paces its rewrites so background
    // maintenance can never starve demand traffic out of the queue.
    ++result_.scrub_rewrites_dropped;
    return true;
  }
  // Plan the write now so the scheme's line state reflects program order.
  readduo::WriteOutcome out;
  switch (kind) {
    case WriteKind::kDemand:
      out = scheme_.on_write(line, now);
      break;
    case WriteKind::kConversion:
      out = scheme_.on_converted_write(line, now);
      break;
    case WriteKind::kScrubRewrite:
      out = scheme_.on_scrub_rewrite(now);
      break;
  }
  note_reliability(now);
  bank.write_q.push_back(WriteReq{line, kind, out.latency, now, 0, svc_id});
  if (!bank.busy) dispatch(b, now);
  return true;
}

std::uint64_t Simulator::next_scrub_line(unsigned b) {
  // The scrub register walks the bank's own line range; using the bank
  // index as a line address would alias demand line `b` (of bank
  // b % num_banks == b) and pollute its scheme state and open row.
  Bank& bank = banks_[b];
  const std::uint64_t idx = bank.scrub_cursor;
  bank.scrub_cursor = (bank.scrub_cursor + 1) % cfg_.org.lines_per_bank();
  if (cfg_.address_map == AddressMap::kRowInterleave) {
    const std::uint64_t lpr = cfg_.row_buffer.lines_per_row;
    const std::uint64_t row = idx / lpr;
    return (row * cfg_.org.num_banks + b) * lpr + idx % lpr;
  }
  return idx * cfg_.org.num_banks + b;
}

void Simulator::sample_queue_gauge(unsigned b) {
  const Bank& bank = banks_[b];
  stats::BankGauge& g = result_.metrics.banks[b];
  const std::uint64_t depth = bank.read_q.size() + bank.write_q.size();
  ++g.depth_samples;
  g.depth_sum += depth;
  g.depth_max = std::max(g.depth_max, depth);
}

void Simulator::trace_event(Ns now, char kind, stats::ReqClass cls,
                            unsigned bank, std::uint64_t line, Ns latency) {
  if (!ring_) return;
  ring_->push(stats::TraceEvent{now.v, kind,
                                static_cast<std::uint8_t>(cls), bank, line,
                                latency.v});
}

void Simulator::note_reliability(Ns now) {
  const stats::Counters& c = scheme_.counters();
  if (c.injected_faults != faults_seen_) {
    // Record the fault burst in the ring ('F', latency field = how many)
    // so a later reliability dump shows what was injected leading up to
    // it; injection alone does not trigger a dump.
    trace_event(now, 'F', stats::ReqClass::kRRead, /*bank=*/0, /*line=*/0,
                Ns{static_cast<std::int64_t>(c.injected_faults -
                                             faults_seen_)});
    faults_seen_ = c.injected_faults;
  }
  const std::uint64_t seen =
      c.detected_uncorrectable + c.silent_corruptions;
  if (seen == reliab_seen_) return;
  if (ring_) {
    ring_->dump(std::cerr,
                "reliability event at t=" + std::to_string(now.v) +
                    "ns (detected_uncorrectable=" +
                    std::to_string(c.detected_uncorrectable) +
                    ", silent_corruptions=" +
                    std::to_string(c.silent_corruptions) + ")");
  }
  reliab_seen_ = seen;
}

void Simulator::dispatch(unsigned b, Ns now) {
  Bank& bank = banks_[b];
  RD_CHECK(!bank.busy);

  const bool scrub_urgent =
      bank.scrub_backlog > cfg_.scrub_priority_backlog;

  if (!bank.read_q.empty()) {
    // Reads first, FCFS.
    sample_queue_gauge(b);
    ReadReq req = bank.read_q.front();
    bank.read_q.pop_front();
    const readduo::ReadOutcome out =
        scheme_.on_read(req.line, now, req.archive);
    note_reliability(now);
    req.mode = out.mode;
    Ns latency = out.latency;
    if (cfg_.row_buffer.enabled) {
      const std::uint64_t row = req.line / cfg_.row_buffer.lines_per_row;
      // A hit is only a hit when the latched row actually shortens the
      // access; a hit_latency at or above the scheme's sense latency
      // leaves the clamp a no-op and must not count.
      if (bank.open_row == row && cfg_.row_buffer.hit_latency < latency) {
        latency = cfg_.row_buffer.hit_latency;
        ++result_.row_hits;
      }
      bank.open_row = row;
    }
    bank.busy = true;
    bank.busy_until = now + latency;
    bank_op_[b] = BankOp::kRead;
    bank_read_[b] = req;
    result_.bank_busy_ns += latency.v;
    result_.metrics.banks[b].busy_ns += latency.v;
    trace_event(now, 'R', class_of(req.mode), b, req.line, latency);
    // A converted R-M-read writes the line back as a low-priority write.
    if (out.convert_to_write) {
      enqueue_write(req.line, WriteKind::kConversion, now);
    }
    schedule(bank.busy_until, EventKind::kBankDone, b, ++bank.op_tag);
    return;
  }

  const auto start_scrub = [&] {
    // The scrub register points at an unrelated row: it evicts whatever
    // demand row was latched.
    if (cfg_.row_buffer.enabled) bank.open_row = ~0ull;
    sample_queue_gauge(b);
    const readduo::ScrubOutcome s =
        scheme_.on_scrub(now, cfg_.org.lines_per_scrub);
    note_reliability(now);
    --bank.scrub_backlog;
    bank.busy = true;
    bank.busy_until = now + s.sense_latency;
    bank_op_[b] = BankOp::kScrubSense;
    bank_scrub_rewrites_[b] = s.rewrites;
    result_.bank_busy_ns += s.sense_latency.v;
    result_.metrics.banks[b].busy_ns += s.sense_latency.v;
    trace_event(now, 'S', stats::ReqClass::kScrubRewrite, b, /*line=*/0,
                s.sense_latency);
    schedule(bank.busy_until, EventKind::kBankDone, b, ++bank.op_tag);
  };

  if (scrub_urgent && bank.scrub_backlog > 0) {
    start_scrub();
    return;
  }

  if (!bank.write_q.empty()) {
    sample_queue_gauge(b);
    const WriteReq req = bank.write_q.front();
    bank.write_q.pop_front();
    if (cfg_.row_buffer.enabled) {
      // Writes update the latched row (write-through to the array; the
      // P&V latency itself is unaffected).
      bank.open_row = req.line / cfg_.row_buffer.lines_per_row;
    }
    bank.busy = true;
    bank.busy_until = now + req.latency;
    bank.write_in_service = true;
    bank.in_service = req;
    bank_op_[b] = BankOp::kWrite;
    result_.bank_busy_ns += req.latency.v;
    result_.metrics.banks[b].busy_ns += req.latency.v;
    trace_event(now, 'W', write_class(req.kind), b, req.line, req.latency);
    schedule(bank.busy_until, EventKind::kBankDone, b, ++bank.op_tag);
    // A write-queue slot freed: unblock stalled cores.
    for (unsigned c = 0; c < cores_.size(); ++c) {
      if (cores_[c].blocked_on_write_q) {
        cores_[c].blocked_on_write_q = false;
        schedule(now, EventKind::kCoreIssue, c);
      }
    }
    return;
  }

  if (bank.scrub_backlog > 0) start_scrub();
}

stats::ReqClass Simulator::write_class(WriteKind kind) {
  switch (kind) {
    case WriteKind::kDemand: return stats::ReqClass::kDemandWrite;
    case WriteKind::kConversion: return stats::ReqClass::kConversionWrite;
    case WriteKind::kScrubRewrite: return stats::ReqClass::kScrubRewrite;
  }
  return stats::ReqClass::kDemandWrite;
}

void Simulator::bank_done(unsigned b, Ns now, std::uint64_t tag) {
  Bank& bank = banks_[b];
  if (!bank.busy || tag != bank.op_tag) {
    // Stale completion from a cancelled write.
    return;
  }
  const BankOp op = bank_op_[b];
  const WriteReq done_write = bank.in_service;
  bank.busy = false;
  bank.write_in_service = false;
  bank_op_[b] = BankOp::kNone;

  switch (op) {
    case BankOp::kRead: {
      const ReadReq req = bank_read_[b];
      // Serialize the 64 B transfer on the shared channel.
      const Ns bus_start = std::max(now, bus_busy_until_);
      bus_busy_until_ = bus_start + cfg_.timing.bus_transfer;
      const Ns complete = bus_busy_until_;
      ++result_.reads_serviced;
      result_.read_latency_sum_ns += (complete - req.enqueue_time).v;
      result_.metrics.lat(class_of(req.mode))
          .record(complete - req.enqueue_time);
      if (req.svc_id != 0) {
        completions_.push_back(
            Completion{req.svc_id, class_of(req.mode), req.enqueue_time,
                       complete});
      }
      if (req.blocking) {
        Core& core = cores_[req.core];
        RD_CHECK(core.blocked_on_read);
        core.blocked_on_read = false;
        core.has_pending = false;
        // Resume execution once the data arrives.
        schedule(complete, EventKind::kCoreIssue, req.core);
      }
      break;
    }
    case BankOp::kWrite:
      ++result_.writes_serviced;
      // End-to-end latency: queueing (including cancellation restarts,
      // since enqueue_time survives re-queueing) plus service.
      result_.metrics.lat(write_class(done_write.kind))
          .record(now - done_write.enqueue_time);
      if (done_write.svc_id != 0) {
        completions_.push_back(
            Completion{done_write.svc_id, write_class(done_write.kind),
                       done_write.enqueue_time, now});
      }
      break;
    case BankOp::kScrubSense:
      ++result_.scrubs_serviced;
      for (unsigned i = 0; i < bank_scrub_rewrites_[b]; ++i) {
        enqueue_write(next_scrub_line(b), WriteKind::kScrubRewrite, now);
      }
      break;
    case BankOp::kNone:
      RD_CHECK_MSG(false, "bank completion with no op in service");
  }
  if (!bank.busy) dispatch(b, now);
}

void Simulator::scrub_tick(unsigned b, Ns now) {
  Bank& bank = banks_[b];
  ++bank.scrub_backlog;
  bank.next_scrub += scrub_period_;
  // Closed system: keep ticking only while some core still executes,
  // otherwise the event queue would never drain. Open system: tick until
  // the driver calls stop_scrub().
  const bool keep =
      externally_driven() ? !scrub_stopped_ : !all_cores_done();
  if (keep) schedule(bank.next_scrub, EventKind::kScrubTick, b);
  if (!bank.busy) dispatch(b, now);
}

}  // namespace rd::memsim
