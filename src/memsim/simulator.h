// Event-driven memory-system simulator (Section IV methodology).
//
// Models a 4-core in-order CPU fed by per-core synthetic traces, a memory
// controller with per-bank read/write queues, read-priority scheduling
// with write cancellation [18], a shared data bus, and a per-bank scrub
// engine walking the scrub register at the scheme's interval. All policy
// decisions (sensing mode, rewrite-or-not, differential writes) are
// delegated to the readduo::Scheme.
//
// Two driving modes share one event loop:
//   - run(): the classic closed system — per-core trace generators retire
//     an instruction budget and the run ends when every core is done.
//   - step()/external_read()/external_write(): an open system driven
//     incrementally by an outside request source (the service front end,
//     src/service/). Construct with cfg.cpu.num_cores == 0; completions
//     of externally submitted requests are harvested via
//     take_completions(), and the background scrub engine keeps ticking
//     between batches until stop_scrub().
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "pcm/params.h"
#include "readduo/scheme.h"
#include "stats/metrics.h"
#include "stats/trace_ring.h"
#include "trace/generator.h"

namespace rd::memsim {

/// Optional open-page row-buffer model (extension; the paper's baseline
/// is closed-page). A hit means the target row is already latched in the
/// bank's sense amplifiers, so the access skips the cell sensing phase.
struct RowBufferParams {
  bool enabled = false;
  /// Consecutive lines latched per activation.
  unsigned lines_per_row = 16;
  /// Latency of an access served from the latched row (replaces the
  /// sensing part of the scheme's latency; never increases it).
  Ns hit_latency{60};
};

/// How line addresses map to banks.
enum class AddressMap {
  /// Consecutive lines round-robin across banks (maximum bank-level
  /// parallelism; the closed-page baseline).
  kLineInterleave,
  /// Consecutive lines fill a row before switching banks (pairs with the
  /// open-page row buffer: sequential streams hit the latched row).
  kRowInterleave,
};

/// What happens to an in-flight write preempted by a read.
enum class WritePreemption {
  /// Write cancellation [18]: the write restarts from scratch later (the
  /// paper's baseline).
  kCancel,
  /// Write pausing [11-style]: the write resumes with only its remaining
  /// P&V iterations.
  kPause,
};

/// Simulator knobs (Table VIII baseline).
struct SimConfig {
  pcm::CpuParams cpu;
  pcm::MemoryOrg org;
  pcm::TimingParams timing;
  RowBufferParams row_buffer;
  AddressMap address_map = AddressMap::kLineInterleave;
  WritePreemption write_preemption = WritePreemption::kCancel;
  /// Per-core instruction budget; the run ends when every core retires it.
  std::uint64_t instructions_per_core = 10'000'000;
  std::uint64_t seed = 1;
  unsigned write_queue_depth = 32;
  bool write_cancellation = true;
  /// A write cancelled this many times becomes non-cancellable (forward
  /// progress guarantee).
  unsigned max_write_cancellations = 4;
  /// Scrub backlog (in scrub periods) beyond which scrubs outrank writes.
  unsigned scrub_priority_backlog = 8;
  /// Capacity of the flight-recorder event ring (READDUO_TRACE); 0 = off.
  /// The retained events are dumped to stderr whenever the scheme reports
  /// a detected_uncorrectable or silent_corruption.
  std::size_t trace_events = 0;
};

/// Aggregate outcome of one run; per-event detail lives in the scheme's
/// Counters.
struct SimResult {
  Ns exec_time{0};
  std::uint64_t instructions = 0;
  std::uint64_t reads_serviced = 0;
  std::uint64_t writes_serviced = 0;
  std::uint64_t scrubs_serviced = 0;
  std::uint64_t write_cancellations = 0;
  /// Sum of (completion - issue) over demand reads, for average latency.
  std::int64_t read_latency_sum_ns = 0;
  /// Sum of bank busy time over all banks, for utilization.
  std::int64_t bank_busy_ns = 0;
  /// Scrub ticks that were still pending when the run ended.
  std::uint64_t scrub_backlog_end = 0;
  /// Scrub rewrites the engine had to skip because the bank's write queue
  /// was full (backpressure pacing; the line is caught on a later pass).
  std::uint64_t scrub_rewrites_dropped = 0;
  /// Row-buffer hits among demand reads (0 unless row_buffer.enabled).
  std::uint64_t row_hits = 0;
  /// Distributional observability: per-class end-to-end latency
  /// histograms and per-bank queue/utilization gauges. Deterministic —
  /// a function of (config, scheme, workload) only.
  stats::SimMetrics metrics;

  double avg_read_latency_ns() const {
    return reads_serviced
               ? static_cast<double>(read_latency_sum_ns) /
                     static_cast<double>(reads_serviced)
               : 0.0;
  }
  double ipc(const pcm::CpuParams& cpu) const {
    const double cycles =
        static_cast<double>(exec_time.v) * cpu.clock_ghz;
    return cycles > 0 ? static_cast<double>(instructions) / cycles : 0.0;
  }
};

/// One simulation: a workload run under a scheme.
class Simulator {
 public:
  /// `cfg.cpu.num_cores == 0` builds an externally driven (open-system)
  /// simulator: no trace generators, requests arrive via external_read /
  /// external_write, and `workload` is unused.
  Simulator(const SimConfig& cfg, readduo::Scheme& scheme,
            const trace::Workload& workload);

  /// Run to completion and return the aggregate result. Single use;
  /// closed-system (num_cores >= 1) driving only.
  SimResult run();

  // --- incremental driving (service front end) --------------------------

  /// Process every pending event with time <= `until` and advance the
  /// simulated clock to at least `until`. Returns the number of events
  /// processed. Usable in both driving modes (the service steps between
  /// request admissions; tests can single-step a closed system).
  std::size_t step(Ns until);

  /// Process the single earliest pending event regardless of its time.
  /// Returns false when the event queue is empty.
  bool step_one();

  /// The simulated clock: max of the last processed event time and the
  /// last step() horizon. Nondecreasing.
  Ns current_time() const { return now_; }

  /// True when built with cfg.cpu.num_cores == 0 (open system).
  bool externally_driven() const { return cores_.empty(); }

  /// Completion record of an externally submitted request.
  struct Completion {
    std::uint64_t id = 0;       ///< caller's request id (nonzero)
    stats::ReqClass cls{};      ///< service class it completed as
    Ns enqueue_time{0};         ///< admission time (virtual)
    Ns complete_time{0};        ///< data-on-bus / write-retired time
    Ns latency() const { return complete_time - enqueue_time; }
  };

  /// Submit an external demand read arriving at `now`. Internally steps
  /// the simulator to `now` first, so no pending event predates the
  /// admission. `id` must be nonzero; the completion is reported via
  /// take_completions(). Externally driven mode only.
  void external_read(std::uint64_t id, std::uint64_t line, bool archive,
                     Ns now);

  /// Submit an external demand write. Returns false when the target
  /// bank's bounded write queue is full — the caller should step the
  /// simulator (step_one()) to drain and retry. Externally driven only.
  bool external_write(std::uint64_t id, std::uint64_t line, Ns now);

  /// Completions recorded since the last call, in completion order.
  std::vector<Completion> take_completions();

  /// Stop scheduling further scrub ticks, so the event queue can drain to
  /// empty (pending senses/rewrites still complete).
  void stop_scrub() { scrub_stopped_ = true; }

  /// Live view of the aggregate result (histograms fill as events
  /// complete). exec_time/instructions are only final after run().
  const SimResult& result() const { return result_; }

  /// Flight-recorder ring (null unless cfg.trace_events > 0).
  const stats::EventRing* trace_ring() const { return ring_.get(); }

 private:
  struct ReadReq {
    unsigned core;
    std::uint64_t line;
    bool archive;
    /// True when the issuing core blocks until the data returns; false for
    /// reads overlapped by hit-under-miss / prefetch (they still consume
    /// bank and bus bandwidth).
    bool blocking;
    Ns enqueue_time;
    /// Sensing mode chosen by the scheme at dispatch; classifies the
    /// completion into the right latency histogram.
    readduo::ReadMode mode = readduo::ReadMode::kRRead;
    /// Nonzero for externally submitted requests (service front end).
    std::uint64_t svc_id = 0;
  };
  enum class WriteKind { kDemand, kConversion, kScrubRewrite };
  struct WriteReq {
    std::uint64_t line;
    WriteKind kind;
    Ns latency;       ///< planned by the scheme at enqueue time
    Ns enqueue_time{0};
    unsigned cancellations = 0;
    /// Nonzero for externally submitted requests (service front end).
    std::uint64_t svc_id = 0;
  };

  struct Bank {
    std::deque<ReadReq> read_q;
    std::deque<WriteReq> write_q;
    bool busy = false;
    Ns busy_until{0};
    /// Set while a cancellable write occupies the bank.
    bool write_in_service = false;
    WriteReq in_service{};
    std::uint64_t scrub_backlog = 0;
    Ns next_scrub{0};
    /// Serial of the op currently in service (see Event::tag).
    std::uint64_t op_tag = 0;
    /// Currently latched row (open-page model); ~0 = none.
    std::uint64_t open_row = ~0ull;
    /// Scrub-register position: index into this bank's own line range,
    /// advanced per rewrite so rewrites never alias demand lines of other
    /// banks (see next_scrub_line()).
    std::uint64_t scrub_cursor = 0;
  };

  struct Core {
    std::uint64_t budget = 0;     ///< instructions left to retire
    bool blocked_on_read = false;
    bool blocked_on_write_q = false;
    bool done = false;
    Ns finish_time{0};
    trace::MemOp pending{};
    bool has_pending = false;
  };

  // Event machinery: (time, seq) ordered min-heap.
  enum class EventKind { kCoreIssue, kBankDone, kScrubTick };
  struct Event {
    Ns time;
    std::uint64_t seq;
    EventKind kind;
    unsigned index;  ///< core or bank id
    /// For kBankDone: the dispatch serial this completion belongs to, so
    /// completions of cancelled writes are recognized as stale.
    std::uint64_t tag = 0;
    bool operator>(const Event& o) const {
      return time.v != o.time.v ? time.v > o.time.v : seq > o.seq;
    }
  };

  unsigned bank_of(std::uint64_t line) const {
    if (cfg_.address_map == AddressMap::kRowInterleave) {
      return static_cast<unsigned>((line / cfg_.row_buffer.lines_per_row) %
                                   cfg_.org.num_banks);
    }
    return static_cast<unsigned>(line % cfg_.org.num_banks);
  }

  /// Prime the cores and stagger the per-bank scrub registers; idempotent
  /// (run(), step() and the external seam all call it first).
  void ensure_primed();
  bool all_cores_done() const;
  /// Dispatch one popped event and advance the clock.
  void process(const Event& ev);
  void schedule(Ns t, EventKind kind, unsigned index,
                std::uint64_t tag = 0);
  void core_issue(unsigned core, Ns now);
  void advance_core(unsigned core, Ns now);
  void bank_done(unsigned bank, Ns now, std::uint64_t tag);
  void scrub_tick(unsigned bank, Ns now);
  /// Start the next piece of work on an idle bank, if any.
  void dispatch(unsigned bank, Ns now);
  void enqueue_read(unsigned core, const trace::MemOp& op, Ns now,
                    bool blocking, std::uint64_t svc_id = 0);
  /// Returns false when the write queue is full (core must block).
  bool enqueue_write(std::uint64_t line, WriteKind kind, Ns now,
                     std::uint64_t svc_id = 0);
  /// The line the scrub register of bank `b` currently points at;
  /// advances the per-bank cursor over the bank's own line range.
  std::uint64_t next_scrub_line(unsigned b);
  /// Sample bank `b`'s queue depth at a service point.
  void sample_queue_gauge(unsigned b);
  static stats::ReqClass write_class(WriteKind kind);
  /// Dump the event ring if the scheme just reported a reliability event.
  void note_reliability(Ns now);
  void trace_event(Ns now, char kind, stats::ReqClass cls, unsigned bank,
                   std::uint64_t line, Ns latency);

  SimConfig cfg_;
  readduo::Scheme& scheme_;
  Rng rng_;
  std::vector<trace::TraceGen> gens_;
  std::vector<Core> cores_;
  std::vector<Bank> banks_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t seq_ = 0;
  Ns bus_busy_until_{0};
  Ns scrub_period_{0};
  Ns now_{0};
  bool primed_ = false;
  bool scrub_stopped_ = false;
  SimResult result_;
  std::vector<Completion> completions_;
  /// Flight recorder (null unless cfg.trace_events > 0).
  std::unique_ptr<stats::EventRing> ring_;
  /// detected_uncorrectable + silent_corruptions last observed, to detect
  /// new reliability events after each scheme policy call.
  std::uint64_t reliab_seen_ = 0;
  /// counters().injected_faults last observed; deltas become 'F' events in
  /// the flight-recorder ring (logged, never dumped — an injected fault is
  /// expected noise, not a reliability incident by itself).
  std::uint64_t faults_seen_ = 0;

  // What the bank is currently doing, to route the completion.
  enum class BankOp { kNone, kRead, kWrite, kScrubSense };
  std::vector<BankOp> bank_op_;
  std::vector<ReadReq> bank_read_;   ///< in-service read per bank
  std::vector<unsigned> bank_scrub_rewrites_;
};

}  // namespace rd::memsim
