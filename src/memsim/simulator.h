// Event-driven memory-system simulator (Section IV methodology).
//
// Models a 4-core in-order CPU fed by per-core synthetic traces, a memory
// controller with per-bank read/write queues, read-priority scheduling
// with write cancellation [18], a shared data bus, and a per-bank scrub
// engine walking the scrub register at the scheme's interval. All policy
// decisions (sensing mode, rewrite-or-not, differential writes) are
// delegated to the readduo::Scheme.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "pcm/params.h"
#include "readduo/scheme.h"
#include "stats/metrics.h"
#include "stats/trace_ring.h"
#include "trace/generator.h"

namespace rd::memsim {

/// Optional open-page row-buffer model (extension; the paper's baseline
/// is closed-page). A hit means the target row is already latched in the
/// bank's sense amplifiers, so the access skips the cell sensing phase.
struct RowBufferParams {
  bool enabled = false;
  /// Consecutive lines latched per activation.
  unsigned lines_per_row = 16;
  /// Latency of an access served from the latched row (replaces the
  /// sensing part of the scheme's latency; never increases it).
  Ns hit_latency{60};
};

/// How line addresses map to banks.
enum class AddressMap {
  /// Consecutive lines round-robin across banks (maximum bank-level
  /// parallelism; the closed-page baseline).
  kLineInterleave,
  /// Consecutive lines fill a row before switching banks (pairs with the
  /// open-page row buffer: sequential streams hit the latched row).
  kRowInterleave,
};

/// What happens to an in-flight write preempted by a read.
enum class WritePreemption {
  /// Write cancellation [18]: the write restarts from scratch later (the
  /// paper's baseline).
  kCancel,
  /// Write pausing [11-style]: the write resumes with only its remaining
  /// P&V iterations.
  kPause,
};

/// Simulator knobs (Table VIII baseline).
struct SimConfig {
  pcm::CpuParams cpu;
  pcm::MemoryOrg org;
  pcm::TimingParams timing;
  RowBufferParams row_buffer;
  AddressMap address_map = AddressMap::kLineInterleave;
  WritePreemption write_preemption = WritePreemption::kCancel;
  /// Per-core instruction budget; the run ends when every core retires it.
  std::uint64_t instructions_per_core = 10'000'000;
  std::uint64_t seed = 1;
  unsigned write_queue_depth = 32;
  bool write_cancellation = true;
  /// A write cancelled this many times becomes non-cancellable (forward
  /// progress guarantee).
  unsigned max_write_cancellations = 4;
  /// Scrub backlog (in scrub periods) beyond which scrubs outrank writes.
  unsigned scrub_priority_backlog = 8;
  /// Capacity of the flight-recorder event ring (READDUO_TRACE); 0 = off.
  /// The retained events are dumped to stderr whenever the scheme reports
  /// a detected_uncorrectable or silent_corruption.
  std::size_t trace_events = 0;
};

/// Aggregate outcome of one run; per-event detail lives in the scheme's
/// Counters.
struct SimResult {
  Ns exec_time{0};
  std::uint64_t instructions = 0;
  std::uint64_t reads_serviced = 0;
  std::uint64_t writes_serviced = 0;
  std::uint64_t scrubs_serviced = 0;
  std::uint64_t write_cancellations = 0;
  /// Sum of (completion - issue) over demand reads, for average latency.
  std::int64_t read_latency_sum_ns = 0;
  /// Sum of bank busy time over all banks, for utilization.
  std::int64_t bank_busy_ns = 0;
  /// Scrub ticks that were still pending when the run ended.
  std::uint64_t scrub_backlog_end = 0;
  /// Scrub rewrites the engine had to skip because the bank's write queue
  /// was full (backpressure pacing; the line is caught on a later pass).
  std::uint64_t scrub_rewrites_dropped = 0;
  /// Row-buffer hits among demand reads (0 unless row_buffer.enabled).
  std::uint64_t row_hits = 0;
  /// Distributional observability: per-class end-to-end latency
  /// histograms and per-bank queue/utilization gauges. Deterministic —
  /// a function of (config, scheme, workload) only.
  stats::SimMetrics metrics;

  double avg_read_latency_ns() const {
    return reads_serviced
               ? static_cast<double>(read_latency_sum_ns) /
                     static_cast<double>(reads_serviced)
               : 0.0;
  }
  double ipc(const pcm::CpuParams& cpu) const {
    const double cycles =
        static_cast<double>(exec_time.v) * cpu.clock_ghz;
    return cycles > 0 ? static_cast<double>(instructions) / cycles : 0.0;
  }
};

/// One simulation: a workload run under a scheme.
class Simulator {
 public:
  Simulator(const SimConfig& cfg, readduo::Scheme& scheme,
            const trace::Workload& workload);

  /// Run to completion and return the aggregate result. Single use.
  SimResult run();

 private:
  struct ReadReq {
    unsigned core;
    std::uint64_t line;
    bool archive;
    /// True when the issuing core blocks until the data returns; false for
    /// reads overlapped by hit-under-miss / prefetch (they still consume
    /// bank and bus bandwidth).
    bool blocking;
    Ns enqueue_time;
    /// Sensing mode chosen by the scheme at dispatch; classifies the
    /// completion into the right latency histogram.
    readduo::ReadMode mode = readduo::ReadMode::kRRead;
  };
  enum class WriteKind { kDemand, kConversion, kScrubRewrite };
  struct WriteReq {
    std::uint64_t line;
    WriteKind kind;
    Ns latency;       ///< planned by the scheme at enqueue time
    Ns enqueue_time{0};
    unsigned cancellations = 0;
  };

  struct Bank {
    std::deque<ReadReq> read_q;
    std::deque<WriteReq> write_q;
    bool busy = false;
    Ns busy_until{0};
    /// Set while a cancellable write occupies the bank.
    bool write_in_service = false;
    WriteReq in_service{};
    std::uint64_t scrub_backlog = 0;
    Ns next_scrub{0};
    /// Serial of the op currently in service (see Event::tag).
    std::uint64_t op_tag = 0;
    /// Currently latched row (open-page model); ~0 = none.
    std::uint64_t open_row = ~0ull;
  };

  struct Core {
    std::uint64_t budget = 0;     ///< instructions left to retire
    bool blocked_on_read = false;
    bool blocked_on_write_q = false;
    bool done = false;
    Ns finish_time{0};
    trace::MemOp pending{};
    bool has_pending = false;
  };

  // Event machinery: (time, seq) ordered min-heap.
  enum class EventKind { kCoreIssue, kBankDone, kScrubTick };
  struct Event {
    Ns time;
    std::uint64_t seq;
    EventKind kind;
    unsigned index;  ///< core or bank id
    /// For kBankDone: the dispatch serial this completion belongs to, so
    /// completions of cancelled writes are recognized as stale.
    std::uint64_t tag = 0;
    bool operator>(const Event& o) const {
      return time.v != o.time.v ? time.v > o.time.v : seq > o.seq;
    }
  };

  unsigned bank_of(std::uint64_t line) const {
    if (cfg_.address_map == AddressMap::kRowInterleave) {
      return static_cast<unsigned>((line / cfg_.row_buffer.lines_per_row) %
                                   cfg_.org.num_banks);
    }
    return static_cast<unsigned>(line % cfg_.org.num_banks);
  }

  void schedule(Ns t, EventKind kind, unsigned index,
                std::uint64_t tag = 0);
  void core_issue(unsigned core, Ns now);
  void advance_core(unsigned core, Ns now);
  void bank_done(unsigned bank, Ns now, std::uint64_t tag);
  void scrub_tick(unsigned bank, Ns now);
  /// Start the next piece of work on an idle bank, if any.
  void dispatch(unsigned bank, Ns now);
  void enqueue_read(unsigned core, const trace::MemOp& op, Ns now,
                    bool blocking);
  /// Returns false when the write queue is full (core must block).
  bool enqueue_write(std::uint64_t line, WriteKind kind, Ns now);
  /// Sample bank `b`'s queue depth at a service point.
  void sample_queue_gauge(unsigned b);
  static stats::ReqClass write_class(WriteKind kind);
  /// Dump the event ring if the scheme just reported a reliability event.
  void note_reliability(Ns now);
  void trace_event(Ns now, char kind, stats::ReqClass cls, unsigned bank,
                   std::uint64_t line, Ns latency);

  SimConfig cfg_;
  readduo::Scheme& scheme_;
  Rng rng_;
  std::vector<trace::TraceGen> gens_;
  std::vector<Core> cores_;
  std::vector<Bank> banks_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t seq_ = 0;
  Ns bus_busy_until_{0};
  Ns scrub_period_{0};
  SimResult result_;
  /// Flight recorder (null unless cfg.trace_events > 0).
  std::unique_ptr<stats::EventRing> ring_;
  /// detected_uncorrectable + silent_corruptions last observed, to detect
  /// new reliability events after each scheme policy call.
  std::uint64_t reliab_seen_ = 0;
  /// counters().injected_faults last observed; deltas become 'F' events in
  /// the flight-recorder ring (logged, never dumped — an injected fault is
  /// expected noise, not a reliability incident by itself).
  std::uint64_t faults_seen_ = 0;

  // What the bank is currently doing, to route the completion.
  enum class BankOp { kNone, kRead, kWrite, kScrubSense };
  std::vector<BankOp> bank_op_;
  std::vector<ReadReq> bank_read_;   ///< in-service read per bank
  std::vector<unsigned> bank_scrub_rewrites_;
};

}  // namespace rd::memsim
