// Glue: derive the SchemeEnv a scheme needs from a workload + system
// configuration, so every bench/example builds it the same way.
#pragma once

#include "config/loader.h"
#include "pcm/params.h"
#include "readduo/scheme_base.h"
#include "trace/workload.h"

namespace rd::memsim {

/// Build the scheme environment for running `w` on a system with the given
/// CPU parameters. The per-core write rate assumes IPC 1 when unstalled —
/// a deliberate slight over-estimate that errs toward younger lines.
inline readduo::SchemeEnv make_scheme_env(const trace::Workload& w,
                                          const pcm::CpuParams& cpu,
                                          std::uint64_t seed) {
  readduo::SchemeEnv env;
  // Device-owned parameters come from the process-wide device selection
  // (READDUO_DEVICE / --device); the builtin device reproduces the old
  // default-constructed values bit-for-bit.
  const config::DeviceConfig& dev = config::active_device();
  env.timing = dev.timing;
  env.energy = dev.energy;
  env.geometry = dev.geometry;
  env.footprint_lines = w.footprint_lines;
  env.zipf_s = w.zipf_s;
  // lint: allow(unit-conv) GHz -> cycles/second, not a ns<->s conversion
  env.per_core_write_rate = cpu.clock_ghz * 1e9 * w.wpki / 1000.0;
  env.archive_age_scale_s = w.archive_age_scale;
  env.seed = seed;
  return env;
}

}  // namespace rd::memsim
