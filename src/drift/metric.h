// Readout-metric configurations (Tables I and II of the paper).
//
// Both the R-metric (current sensing) and M-metric (voltage sensing) follow
// the empirical power-law drift model
//     X(t) = X0 * (t / t0) ^ alpha
// in log10 space: log10 X(t) = log10 X0 + alpha * log10(t / t0), with
// log10 X0 drawn from a (truncated) normal per programmed state and alpha
// normal with sigma_alpha = 0.4 * mu_alpha.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace rd::drift {

/// Number of storage levels in a 2-bit MLC cell.
inline constexpr std::size_t kNumStates = 4;

/// Gray-coded data values per storage level (Table I): level 0..3 store
/// '01', '11', '10', '00'. Adjacent levels differ in exactly one bit, so one
/// drift error corrupts exactly one bit of the line.
inline constexpr std::array<std::uint8_t, kNumStates> kLevelData = {0b01, 0b11,
                                                                    0b10, 0b00};

/// Per-state drift parameters in log10 units.
struct StateParams {
  double mu;           ///< mean of log10(metric) as programmed
  double sigma;        ///< std-dev of log10(metric)
  double mu_alpha;     ///< mean drift coefficient
  double sigma_alpha;  ///< std-dev of drift coefficient
};

/// Full metric configuration: four states plus the programming geometry.
struct MetricConfig {
  std::string name;
  std::array<StateParams, kNumStates> states;
  /// Reference time t0 of the drift law, seconds.
  double t0_seconds = 1.0;
  /// Programmed range half-width, in sigmas (cells are written inside
  /// mu +/- program_halfwidth * sigma).
  double program_halfwidth = 2.746;
  /// Read boundary half-width, in sigmas (a cell is misread once its
  /// metric exceeds mu + boundary_halfwidth * sigma).
  double boundary_halfwidth = 3.0;

  /// Upper read boundary of state i (log10 units).
  double upper_boundary(std::size_t i) const {
    return states[i].mu + boundary_halfwidth * states[i].sigma;
  }
};

/// Table I: R-metric (current sensing). States one decade apart starting at
/// 1 kOhm; drift coefficients 0.001 / 0.02 / 0.06 / 0.10; sigma chosen so
/// +/-3 sigma meets the inter-state midpoint (1/6 decade).
MetricConfig r_metric();

/// Table II: M-metric (voltage sensing). Same geometry 4 decades lower;
/// drift coefficients 1/7 of the R-metric per [Sebastian et al.].
MetricConfig m_metric();

/// Extension: temperature-accelerated drift. The drift coefficient of GST
/// grows roughly linearly with temperature over the operating range
/// (~ +0.9%/K around 300 K in published measurements); this scales every
/// state's mu_alpha/sigma_alpha accordingly. The configs above are at the
/// reference 300 K (27 C).
MetricConfig at_temperature(const MetricConfig& base, double celsius,
                            double alpha_per_kelvin = 0.009);

}  // namespace rd::drift
