#include "drift/metric.h"

namespace rd::drift {

namespace {

constexpr double kSigma = 1.0 / 6.0;

MetricConfig make(std::string name, double mu0, double alpha_scale) {
  MetricConfig c;
  c.name = std::move(name);
  // Calibrated read-boundary geometry: with 3.08 the model reproduces the
  // paper's back-solved per-cell error probabilities within 1% for
  // t >= 512 s and its pivotal threshold LER(E=17, t=640s) ~ 1.5e-12
  // (Table III); the nominal 3.0 of Section II overshoots late-time
  // probabilities by ~20%, flipping that marginal decision.
  c.boundary_halfwidth = 3.08;
  const std::array<double, kNumStates> mu_alpha_r = {0.001, 0.02, 0.06, 0.10};
  for (std::size_t i = 0; i < kNumStates; ++i) {
    const double ma = mu_alpha_r[i] * alpha_scale;
    c.states[i] = StateParams{
        .mu = mu0 + static_cast<double>(i),
        .sigma = kSigma,
        .mu_alpha = ma,
        .sigma_alpha = 0.4 * ma,
    };
  }
  return c;
}

}  // namespace

MetricConfig r_metric() { return make("R-metric", 3.0, 1.0); }

MetricConfig m_metric() { return make("M-metric", -1.0, 1.0 / 7.0); }

MetricConfig at_temperature(const MetricConfig& base, double celsius,
                            double alpha_per_kelvin) {
  MetricConfig c = base;
  const double kelvin = celsius + 273.15;
  const double scale = 1.0 + alpha_per_kelvin * (kelvin - 300.0);
  // Clamp: drift cannot reverse within the model's validity range.
  const double s = scale < 0.1 ? 0.1 : scale;
  c.name = base.name + "@" + std::to_string(static_cast<int>(celsius)) + "C";
  for (auto& st : c.states) {
    st.mu_alpha *= s;
    st.sigma_alpha *= s;
  }
  return c;
}

}  // namespace rd::drift
