#include "drift/error_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math.h"

namespace rd::drift {

ErrorModel::ErrorModel(MetricConfig config, KernelMode mode)
    : config_(std::move(config)),
      mode_(resolve_kernel_mode(mode)),
      // Any non-reference tier memoizes — kVectorized inherits the cache
      // (this model has no SIMD lanes of its own; vectorized is "at least
      // as fast as optimized" here, not a third evaluation path).
      memo_(mode_ != KernelMode::kReference ? std::make_shared<Memo>()
                                            : nullptr) {
  for (const auto& s : config_.states) {
    RD_CHECK(s.sigma > 0.0);
    RD_CHECK(s.sigma_alpha >= 0.0);
  }
  RD_CHECK(config_.boundary_halfwidth > config_.program_halfwidth);
}

double ErrorModel::cell_error_prob(std::size_t state, double t_seconds) const {
  const double lp = log_cell_error_prob(state, t_seconds);
  return lp <= kNegInf ? 0.0 : std::exp(lp);
}

double ErrorModel::log_cell_error_prob(std::size_t state,
                                       double t_seconds) const {
  if (memo_ == nullptr) return log_cell_error_prob_direct(state, t_seconds);
  const std::pair<std::size_t, double> key{state, t_seconds};
  {
    MutexLock g(memo_->memo_mu);
    auto it = memo_->values.find(key);
    if (it != memo_->values.end()) return it->second;
  }
  // Evaluate outside the lock: grid workers computing different points
  // must not serialize on each other's quadrature. Two threads racing on
  // the same point store the same double (the evaluation is pure).
  const double lp = log_cell_error_prob_direct(state, t_seconds);
  {
    MutexLock g(memo_->memo_mu);
    if (memo_->values.size() < Memo::kMaxEntries) {
      memo_->values.emplace(key, lp);
    }
  }
  return lp;
}

double ErrorModel::log_cell_error_prob_direct(std::size_t state,
                                              double t_seconds) const {
  RD_CHECK(state < kNumStates);
  // The top state has no higher state to drift into.
  if (state == kNumStates - 1) return kNegInf;
  const StateParams& sp = config_.states[state];
  if (t_seconds <= config_.t0_seconds) return kNegInf;
  const double big_l = std::log10(t_seconds / config_.t0_seconds);
  const double boundary = config_.upper_boundary(state);
  const double c = config_.program_halfwidth;

  // A drift error needs alpha * L to bridge at least the guard band
  // (boundary - program-range top). Below alpha0 the tail is exactly zero.
  const double guard = (config_.boundary_halfwidth - c) * sp.sigma;
  const double alpha0 = guard / big_l;

  if (sp.sigma_alpha == 0.0) {
    const double tail = truncated_normal_tail(
        sp.mu, sp.sigma, c, boundary - sp.mu_alpha * big_l);
    return tail > 0.0 ? std::log(tail) : kNegInf;
  }

  // Integrate P(error | alpha) over the alpha distribution, starting at the
  // first alpha that can produce an error. In units of z = (alpha -
  // mu_alpha)/sigma_alpha; the integrand decays at least as fast as the
  // normal pdf, so [z_start, z_start + 45] covers everything above 1e-300.
  const double z_start =
      std::max((alpha0 - sp.mu_alpha) / sp.sigma_alpha, -12.0);
  if (z_start > 40.0) return kNegInf;

  auto integrand = [&](double z) {
    const double alpha = sp.mu_alpha + z * sp.sigma_alpha;
    const double tail =
        truncated_normal_tail(sp.mu, sp.sigma, c, boundary - alpha * big_l);
    const double pdf = std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
    return pdf * tail;
  };

  // Piecewise Gauss-Legendre: fine panels near z_start (where the tail
  // turns on), coarser beyond.
  double p = 0.0;
  const double panel_edges[] = {0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 45.0};
  for (std::size_t i = 0; i + 1 < std::size(panel_edges); ++i) {
    p += integrate(integrand, z_start + panel_edges[i],
                   z_start + panel_edges[i + 1], 64);
  }
  if (!(p > 0.0)) return kNegInf;
  return std::log(std::min(p, 1.0));
}

double ErrorModel::log_avg_cell_error_prob(double t_seconds) const {
  double acc = kNegInf;
  for (std::size_t s = 0; s < kNumStates; ++s) {
    acc = log_add(acc, log_cell_error_prob(s, t_seconds));
  }
  return acc <= kNegInf ? kNegInf : acc - std::log(4.0);
}

double ErrorModel::avg_cell_error_prob(double t_seconds) const {
  const double lp = log_avg_cell_error_prob(t_seconds);
  return lp <= kNegInf ? 0.0 : std::exp(lp);
}

LerCalculator::LerCalculator(ErrorModel model, LineGeometry geometry)
    : model_(std::move(model)), geometry_(geometry) {
  RD_CHECK(geometry_.total_cells() > 0);
}

double LerCalculator::log_ler(unsigned e, double t_seconds) const {
  const double log_p = model_.log_avg_cell_error_prob(t_seconds);
  return log_binomial_tail_gt(geometry_.total_cells(), e, log_p);
}

double LerCalculator::ler(unsigned e, double t_seconds) const {
  const double l = log_ler(e, t_seconds);
  return l <= kNegInf ? 0.0 : std::exp(l);
}

double LerCalculator::log_prob_window(unsigned e, unsigned w, double t_clean,
                                      double t_end) const {
  RD_CHECK(t_end > t_clean);
  RD_CHECK(w >= 1);
  RD_CHECK(e + 1 >= w);
  const unsigned n = geometry_.total_cells();
  const double p1 = model_.avg_cell_error_prob(t_clean);
  const double p2 = model_.avg_cell_error_prob(t_end);
  const double q = std::max(p2 - p1, 0.0);  // errs in (t_clean, t_end]
  if (q <= 0.0) return kNegInf;
  const double log_p1 = p1 > 0.0 ? std::log(p1) : kNegInf;
  const double log_q = std::log(q);
  const double log_1mp2 = std::log1p(-p2);

  // P(N1 = w', N2 = j) with N1 ~ errors by t_clean, N2 ~ errors in the
  // window; multinomial over (p1, q, 1 - p2). Sum over w' < w, j > e - w.
  double acc = kNegInf;
  for (unsigned wp = 0; wp < w; ++wp) {
    if (wp > 0 && log_p1 <= kNegInf) break;
    const double log_head =
        log_choose(n, wp) + static_cast<double>(wp) * (wp ? log_p1 : 0.0);
    for (unsigned j = e - w + 2; j <= n - wp; ++j) {
      const double term =
          log_head + log_choose(n - wp, j) + static_cast<double>(j) * log_q +
          static_cast<double>(n - wp - j) * log_1mp2;
      acc = log_add(acc, term);
      if (term < acc - 60.0 && j > e - w + 5) break;
    }
  }
  return std::min(acc, 0.0);
}

double LerCalculator::log_prob_second_interval(unsigned e, unsigned w,
                                               double s) const {
  return log_prob_window(e, w, s, 2.0 * s);
}

double LerCalculator::log_prob_third_interval(unsigned e, unsigned w,
                                              double s) const {
  return log_prob_window(e, w, 2.0 * s, 3.0 * s);
}

namespace {

/// log P(Binomial(n, p) < w) for small w.
double log_binomial_lt(unsigned n, unsigned w, double log_p) {
  double acc = kNegInf;
  for (unsigned j = 0; j < w; ++j) {
    acc = log_add(acc, log_binomial_pmf(n, j, log_p));
  }
  return acc;
}

}  // namespace

double LerCalculator::log_prob_second_interval_indep(unsigned e, unsigned w,
                                                     double s) const {
  const unsigned n = geometry_.total_cells();
  const double log_p1 = model_.log_avg_cell_error_prob(s);
  const double log_p2 = model_.log_avg_cell_error_prob(2.0 * s);
  return log_binomial_lt(n, w, log_p1) +
         log_binomial_tail_gt(n, e - w, log_p2);
}

double LerCalculator::log_prob_third_interval_indep(unsigned e, unsigned w,
                                                    double s) const {
  const unsigned n = geometry_.total_cells();
  const double log_p2 = model_.log_avg_cell_error_prob(2.0 * s);
  const double log_p3 = model_.log_avg_cell_error_prob(3.0 * s);
  return log_binomial_lt(n, w, log_p2) +
         log_binomial_tail_gt(n, e - w, log_p3);
}

CellErrorTable::CellErrorTable(const ErrorModel& model, double t_min,
                               double t_max, std::size_t points) {
  RD_CHECK(t_min > 0.0 && t_max > t_min);
  RD_CHECK(points >= 2);
  log_t_min_ = std::log10(t_min);
  log_t_max_ = std::log10(t_max);
  step_ = (log_t_max_ - log_t_min_) / static_cast<double>(points - 1);
  probs_.resize(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = std::pow(10.0, log_t_min_ + step_ * static_cast<double>(i));
    probs_[i] = model.avg_cell_error_prob(t);
  }
}

double CellErrorTable::prob(double t_seconds) const {
  if (t_seconds <= 0.0) return 0.0;
  const double lt = std::log10(t_seconds);
  if (lt <= log_t_min_) return probs_.front();
  if (lt >= log_t_max_) return probs_.back();
  const double pos = (lt - log_t_min_) / step_;
  const std::size_t i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  const double a = probs_[i], b = probs_[i + 1];
  // Probabilities span many orders of magnitude near the drift onset:
  // interpolate geometrically when both endpoints are positive.
  if (a > 0.0 && b > 0.0) {
    return std::exp(std::log(a) * (1.0 - frac) + std::log(b) * frac);
  }
  return a * (1.0 - frac) + b * frac;
}

}  // namespace rd::drift
