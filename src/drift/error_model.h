// Analytic drift-error probabilities and line error rates.
//
// This module reproduces the reliability analysis behind Tables III, IV and
// V: per-cell drift-error probability as a function of time since write,
// and binomial line-error-rate tails for an (E, S, W) efficient-scrubbing
// configuration.
//
// Performance note (DESIGN.md §10): a single log_cell_error_prob
// evaluation integrates a truncated-normal tail over the alpha
// distribution (7 Gauss-Legendre panels x 64 points), and the Table III-V
// grids, the scrub-age samplers, and the CellErrorTable all re-evaluate
// the same (state, t) points many times over. The optimized kernel
// therefore memoizes log_cell_error_prob keyed by (state, t_seconds) — the
// remaining model inputs (mu, sigma, mu_alpha, sigma_alpha, boundaries)
// are fixed per ErrorModel instance, so the key is complete. The memo is
// value-transparent: it stores exactly the double the direct evaluation
// produced, so results are bit-identical with the memo on or off
// (cross-checked by tests/test_kernels.cpp). A mutex guards the map; the
// model stays safe to share across the READDUO_THREADS grid workers.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/kernels.h"
#include "common/thread_annotations.h"
#include "drift/metric.h"

namespace rd::drift {

/// DRAM reliability target: 25 FIT per Mbit translated to a 512-bit line
/// (Section III-A): 3.56e-15 failures per line-second.
inline constexpr double kLerDramPerLineSecond = 3.56e-15;

/// Line geometry: 64 B data = 256 MLC cells, plus 40 cells holding the
/// 80-bit BCH-8 parity. Every cell can take a drift error.
struct LineGeometry {
  unsigned data_cells = 256;
  unsigned ecc_cells = 40;
  unsigned total_cells() const { return data_cells + ecc_cells; }
};

/// Analytic drift-error model for one readout metric.
///
/// Copies of a model share one memo cache (they share the config that keys
/// it), so passing models by value stays cheap and warm.
class ErrorModel {
 public:
  /// Build the model for `config`. `mode` selects the evaluation kernel
  /// (kAuto: READDUO_KERNELS): kReference evaluates every probability
  /// directly; kOptimized and kVectorized both memoize per (state, t) —
  /// this model is closed-form, so the vectorized tier has no SIMD lanes
  /// here and simply keeps the memo. Identical values in every mode.
  explicit ErrorModel(MetricConfig config, KernelMode mode = KernelMode::kAuto);

  /// The metric configuration this model evaluates.
  const MetricConfig& config() const { return config_; }

  /// The kernel implementation this instance runs (never kAuto).
  KernelMode kernel_mode() const { return mode_; }

  /// P(a cell programmed to state `state` at time 0 has drifted past its
  /// upper read boundary by time t). Monotone nondecreasing in t. The top
  /// state cannot drift into error (drift only increases the metric).
  /// Deterministic: a pure function of (config, state, t).
  double cell_error_prob(std::size_t state, double t_seconds) const;

  /// log of cell_error_prob, accurate for probabilities down to ~1e-200.
  /// Thread-safe; memoized per (state, t) in the optimized kernel.
  double log_cell_error_prob(std::size_t state, double t_seconds) const;

  /// Average over states under uniform data (log space).
  double log_avg_cell_error_prob(double t_seconds) const;
  /// exp of log_avg_cell_error_prob (0 when the log underflows).
  double avg_cell_error_prob(double t_seconds) const;

 private:
  /// The straight-line evaluation (panelled quadrature over the alpha
  /// distribution); the memo stores exactly its results.
  double log_cell_error_prob_direct(std::size_t state, double t_seconds) const;

  /// Memo shared by all copies of a model. Bounded: past kMaxEntries the
  /// cache stops growing and further misses evaluate directly (the paper
  /// grids need a few thousand entries at most).
  struct Memo {
    static constexpr std::size_t kMaxEntries = 1u << 15;
    Mutex memo_mu;
    std::map<std::pair<std::size_t, double>, double> values
        RD_GUARDED_BY(memo_mu);
  };

  MetricConfig config_;
  KernelMode mode_;
  std::shared_ptr<Memo> memo_;
};

/// Line-error-rate calculator for an (E, S) efficient-scrubbing setting.
class LerCalculator {
 public:
  LerCalculator(ErrorModel model, LineGeometry geometry = {});

  const ErrorModel& model() const { return model_; }
  const LineGeometry& geometry() const { return geometry_; }

  /// log P(line accumulates more than E drift errors within t seconds of
  /// its write) — condition (i) of the efficient-scrubbing definition.
  double log_ler(unsigned e, double t_seconds) const;
  double ler(unsigned e, double t_seconds) const;

  /// Condition (ii): P(fewer than W errors in the first S-second interval
  /// AND more than E - W errors in the second interval). Uses drift
  /// monotonicity: a cell erring in (S, 2S] has probability p(2S) - p(S).
  double log_prob_second_interval(unsigned e, unsigned w, double s) const;

  /// Condition (iii): same with the first two intervals clean and the
  /// overflow in the third.
  double log_prob_third_interval(unsigned e, unsigned w, double s) const;

  /// The paper's Table V uses an independence approximation: it multiplies
  /// P(clean through the first interval(s)) by P(more than E - W errors by
  /// the END of the window) without subtracting the error mass already
  /// excluded by the clean condition. More pessimistic than the exact
  /// computation; reproduced here because the paper's W=0 design decision
  /// for ReadDuo-Hybrid follows from these numbers.
  double log_prob_second_interval_indep(unsigned e, unsigned w,
                                        double s) const;
  double log_prob_third_interval_indep(unsigned e, unsigned w,
                                       double s) const;

  /// The DRAM-equivalent target for an interval of t seconds.
  static double ler_dram_target(double t_seconds) {
    return kLerDramPerLineSecond * t_seconds;
  }

 private:
  /// Shared kernel for (ii)/(iii): clean through t_clean, overflow in
  /// (t_clean, t_end].
  double log_prob_window(unsigned e, unsigned w, double t_clean,
                         double t_end) const;

  ErrorModel model_;
  LineGeometry geometry_;
};

/// Precomputed log-time interpolation of the average cell error
/// probability, for the simulator's per-read sampling (O(1) per lookup).
class CellErrorTable {
 public:
  /// Tabulates p(t) for t in [t_min, t_max] seconds on a log grid.
  CellErrorTable(const ErrorModel& model, double t_min = 1e-3,
                 double t_max = 1e9, std::size_t points = 2048);

  /// Interpolated average per-cell error probability at age t.
  double prob(double t_seconds) const;

 private:
  double log_t_min_, log_t_max_, step_;
  std::vector<double> probs_;  // linear-space probabilities on the grid
};

}  // namespace rd::drift
