// Schema registry for device config files.
//
// Every key a device .cfg may contain is described here: its type, unit
// family, whether it is required, its valid range, and a one-line doc
// string naming the paper table or equation it reproduces. The loader
// validates files against this registry (unknown keys and unit/range
// violations are file:line diagnostics), and docs/DEVICE_CONFIGS.md is
// test-enforced to document every registered key (tests/test_config.cpp,
// SchemaDocumentation) — the schema cannot silently outgrow its manual.
#pragma once

#include <string>
#include <vector>

namespace rd::config {

/// Value type of a schema key.
enum class ValueType {
  kString,
  kBool,    ///< true/false, yes/no, on/off, 1/0
  kInt,     ///< integer (unit-scaled values must stay integral)
  kDouble,
};

/// Unit family of a numeric key. The base unit is what the loader stores;
/// the listed suffixes are accepted in config files and converted.
enum class Unit {
  kNone,         ///< dimensionless — a unit suffix is an error
  kSeconds,      ///< base s; accepts s, ms, min, h
  kNanoseconds,  ///< base ns; accepts ns, us, ms, s
  kPicojoules,   ///< base pJ; accepts pJ, nJ, uJ
  kBytes,        ///< base B; accepts B, KB, MB, GB (binary powers)
  kWatts,        ///< base W; accepts W, mW
};

/// Human-readable unit-family name plus its accepted suffixes, for
/// diagnostics ("expected a time in ns/us/ms/s").
std::string unit_family_name(Unit u);

/// One registered config key.
struct KeySpec {
  std::string key;   ///< full "section.key" name
  ValueType type = ValueType::kDouble;
  Unit unit = Unit::kNone;
  bool required = true;
  /// Inclusive numeric range (kInt/kDouble only, in base units).
  double min = 0.0;
  double max = 0.0;
  /// What the key means, its base unit, and its paper provenance.
  std::string doc;
};

/// The full device schema, ordered by section then key. Stable: the
/// docs/DEVICE_CONFIGS.md reference tables mirror this list.
const std::vector<KeySpec>& device_schema();

/// Lookup by full "section.key" name; nullptr when unregistered.
const KeySpec* find_key(const std::string& key);

/// True when `section` is one of the schema's sections (used to split
/// "unknown section" from "unknown key in a known section" diagnostics).
bool known_section(const std::string& section);

}  // namespace rd::config
