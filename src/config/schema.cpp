#include "config/schema.h"

#include <map>
#include <set>

namespace rd::config {

namespace {

/// The drift-metric sections share one key set; `metric` is "r_metric" or
/// "m_metric" and `table` names the paper table the section reproduces.
void add_metric_keys(std::vector<KeySpec>& out, const std::string& metric,
                     const std::string& table) {
  const std::string p = metric + ".";
  out.push_back({p + "name", ValueType::kString, Unit::kNone, false, 0, 0,
                 "Display name of the readout metric (default derived from "
                 "the section: R-metric / M-metric)."});
  out.push_back({p + "t0", ValueType::kDouble, Unit::kSeconds, true, 1e-12,
                 1e6,
                 "Reference time t0 of the drift law X(t) = X0 (t/t0)^alpha, "
                 "seconds (" + table + "; 1 s for the paper PCM)."});
  out.push_back({p + "program_halfwidth", ValueType::kDouble, Unit::kNone,
                 true, 0.1, 10.0,
                 "Programmed-range half-width in sigmas: cells are written "
                 "inside mu +/- this*sigma (Section II-A; 2.746 reproduces "
                 "the paper's 99.4% P&V yield)."});
  out.push_back({p + "boundary_halfwidth", ValueType::kDouble, Unit::kNone,
                 true, 0.1, 10.0,
                 "Read-boundary half-width in sigmas: a cell misreads once "
                 "its metric exceeds mu + this*sigma (Section II-A; 3.08 "
                 "calibrated, see DESIGN.md substitutions)."});
  for (int i = 0; i < 4; ++i) {
    const std::string s = p + "state" + std::to_string(i) + ".";
    const std::string st = "state " + std::to_string(i);
    out.push_back({s + "mu", ValueType::kDouble, Unit::kNone, true, -20.0,
                   20.0,
                   "Mean log10(metric) of " + st + " as programmed (" +
                       table + ")."});
    out.push_back({s + "sigma", ValueType::kDouble, Unit::kNone, true, 1e-6,
                   5.0,
                   "Std-dev of log10(metric) of " + st + " (" + table +
                       "; 1/6 decade for the paper PCM)."});
    out.push_back({s + "mu_alpha", ValueType::kDouble, Unit::kNone, true,
                   0.0, 1.0,
                   "Mean drift coefficient alpha of " + st + " (" + table +
                       ")."});
    out.push_back({s + "sigma_alpha", ValueType::kDouble, Unit::kNone, true,
                   0.0, 1.0,
                   "Std-dev of alpha of " + st + " (" + table +
                       "; 0.4*mu_alpha for the paper PCM)."});
  }
}

std::vector<KeySpec> build_schema() {
  // Range bounds, not time conversions: a latency key accepts up to one
  // second expressed in its base nanoseconds, a period key up to ~31
  // years in seconds.
  // lint: allow(unit-conv) range bound in base units
  constexpr double kMaxLatencyNs = 1e9;
  // lint: allow(unit-conv) range bound in base units
  constexpr double kMaxPeriodS = 1e9;
  std::vector<KeySpec> s;

  // --- [device] ---------------------------------------------------------
  s.push_back({"device.name", ValueType::kString, Unit::kNone, true, 0, 0,
               "Stable device identifier, carried into the metrics JSON "
               "'device' field, bench-cache keys, and the wire hello."});
  s.push_back({"device.kind", ValueType::kString, Unit::kNone, true, 0, 0,
               "Technology family: pcm, rram, or nand."});
  s.push_back({"device.levels", ValueType::kInt, Unit::kNone, true, 2, 16,
               "Storage levels per cell; must equal 4 (the 2-bit MLC cell "
               "model, drift::kNumStates)."});
  s.push_back({"device.description", ValueType::kString, Unit::kNone, false,
               0, 0,
               "Free-form provenance note (paper, table, measurement "
               "conditions)."});

  // --- [geometry] -------------------------------------------------------
  s.push_back({"geometry.data_cells", ValueType::kInt, Unit::kNone, true, 1,
               65536,
               "Data cells per line (256 for 64 B at 2 bits/cell; "
               "Section III-A). Must equal 4 * memory.line_bytes."});
  s.push_back({"geometry.ecc_cells", ValueType::kInt, Unit::kNone, true, 0,
               65536,
               "Parity cells per line (40 holds the 80-bit BCH-8 code; "
               "Section III-A)."});

  // --- [memory] ---------------------------------------------------------
  s.push_back({"memory.capacity", ValueType::kInt, Unit::kBytes, true, 1,
               1e15,
               "Total capacity in bytes (Table VIII: 16 GB = 8 banks x "
               "2 GB). Must divide evenly into banks and lines."});
  s.push_back({"memory.banks", ValueType::kInt, Unit::kNone, true, 1, 1024,
               "Independent banks (Table VIII: 8)."});
  s.push_back({"memory.line_bytes", ValueType::kInt, Unit::kBytes, true, 8,
               4096, "Data payload per line in bytes (64)."});
  s.push_back({"memory.lines_per_scrub", ValueType::kInt, Unit::kNone, true,
               1, 4096,
               "Lines sensed per scrub operation (row granularity, 16; "
               "[2])."});

  // --- [timing] ---------------------------------------------------------
  s.push_back({"timing.r_read", ValueType::kInt, Unit::kNanoseconds, true, 1,
               kMaxLatencyNs,
               "Current-mode (R-metric) line read latency, ns (Section IV: "
               "150 ns)."});
  s.push_back({"timing.m_read", ValueType::kInt, Unit::kNanoseconds, true, 1,
               kMaxLatencyNs,
               "Voltage-mode (M-metric) line read latency, ns (Section IV: "
               "450 ns)."});
  s.push_back({"timing.rm_read", ValueType::kInt, Unit::kNanoseconds, true,
               1, kMaxLatencyNs,
               "Failed R-read followed by M-read, ns (Section IV: 600 ns)."});
  s.push_back({"timing.write", ValueType::kInt, Unit::kNanoseconds, true, 1,
               kMaxLatencyNs,
               "Iterative P&V MLC line write latency, ns (Section IV: "
               "1000 ns)."});
  s.push_back({"timing.bus_transfer", ValueType::kInt, Unit::kNanoseconds,
               true, 0, kMaxLatencyNs,
               "64 B line transfer on the channel, ns (5 ns)."});

  // --- [energy] ---------------------------------------------------------
  s.push_back({"energy.r_read", ValueType::kDouble, Unit::kPicojoules, true,
               0, 1e12,
               "Per-line R-sensing read energy, pJ (Table IX substitute: "
               "1000 pJ ~ 2 pJ/bit; see DESIGN.md substitutions)."});
  s.push_back({"energy.m_read", ValueType::kDouble, Unit::kPicojoules, true,
               0, 1e12,
               "Per-line M-sensing read energy, pJ (1500 pJ: longer "
               "integration)."});
  s.push_back({"energy.cell_write", ValueType::kDouble, Unit::kPicojoules,
               true, 0, 1e12,
               "Average P&V energy per MLC cell written, pJ (135 pJ)."});
  s.push_back({"energy.internal_sense_scale", ValueType::kDouble, Unit::kNone,
               true, 0.0, 1.0,
               "Scrub senses cost this fraction of a demand read's energy "
               "(internal row read, no decode/IO/bus: 0.5)."});
  s.push_back({"energy.tlc_write_scale", ValueType::kDouble, Unit::kNone,
               true, 0.0, 10.0,
               "Per-cell write-energy scale of the TLC baseline relative "
               "to 4-level MLC (0.8; [26])."});
  s.push_back({"energy.static_power", ValueType::kDouble, Unit::kWatts, true,
               0.0, 1e4,
               "Static/background power of the memory subsystem, W (0.35; "
               "used only by the Product-S EDAP variant)."});

  // --- [ecc] ------------------------------------------------------------
  s.push_back({"ecc.bch_t", ValueType::kInt, Unit::kNone, true, 1, 32,
               "BCH correction strength t, errors per line (8; "
               "Section III-A)."});
  s.push_back({"ecc.ecp_pointers", ValueType::kInt, Unit::kNone, true, 0, 64,
               "Error-correcting-pointer entries per line for stuck cells "
               "(6; [30])."});

  // --- [scrub] ----------------------------------------------------------
  s.push_back({"scrub.interval", ValueType::kDouble, Unit::kSeconds, true,
               0.0, kMaxPeriodS,
               "Scrub period S in seconds (640 s; Table V operating "
               "point). 0 disables scrubbing."});
  s.push_back({"scrub.w", ValueType::kInt, Unit::kNone, true, 0, 64,
               "Rewrite threshold W: rewrite a scrubbed line showing >= W "
               "errors (1; 0 = always rewrite)."});
  s.push_back({"scrub.use_m_sense", ValueType::kBool, Unit::kNone, true, 0,
               0,
               "Scrub senses with the M-metric (true, ReadDuo) or the "
               "R-metric (false)."});

  // --- [r_metric] / [m_metric] -----------------------------------------
  add_metric_keys(s, "r_metric", "Table I");
  add_metric_keys(s, "m_metric", "Table II");
  return s;
}

}  // namespace

const std::vector<KeySpec>& device_schema() {
  static const std::vector<KeySpec> kSchema = build_schema();
  return kSchema;
}

const KeySpec* find_key(const std::string& key) {
  static const std::map<std::string, const KeySpec*> kIndex = [] {
    std::map<std::string, const KeySpec*> m;
    for (const KeySpec& k : device_schema()) m[k.key] = &k;
    return m;
  }();
  const auto it = kIndex.find(key);
  return it == kIndex.end() ? nullptr : it->second;
}

bool known_section(const std::string& section) {
  static const std::set<std::string> kSections = [] {
    std::set<std::string> out;
    for (const KeySpec& k : device_schema()) {
      out.insert(k.key.substr(0, k.key.find('.')));
    }
    return out;
  }();
  return kSections.count(section) != 0;
}

std::string unit_family_name(Unit u) {
  switch (u) {
    case Unit::kNone:
      return "a dimensionless number (no unit suffix)";
    case Unit::kSeconds:
      return "a time in s/ms/min/h (base: seconds)";
    case Unit::kNanoseconds:
      return "a time in ns/us/ms/s (base: nanoseconds)";
    case Unit::kPicojoules:
      return "an energy in pJ/nJ/uJ (base: picojoules)";
    case Unit::kBytes:
      return "a size in B/KB/MB/GB (base: bytes)";
    case Unit::kWatts:
      return "a power in W/mW (base: watts)";
  }
  return "?";
}

}  // namespace rd::config
