#include "config/loader.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <sstream>
#include <vector>

#include "common/env.h"
#include "config/schema.h"

namespace rd::config {

namespace {

[[noreturn]] void fail_at(const RawConfig& raw, const RawEntry& e,
                          const std::string& msg) {
  std::ostringstream os;
  os << raw.source() << ":" << e.line << ": " << msg;
  throw ConfigError(os.str());
}

[[noreturn]] void fail_file(const RawConfig& raw, const std::string& msg) {
  throw ConfigError(raw.source() + ": " + msg);
}

/// Conversion factor of `suffix` within unit family `u`, or nullopt.
/// Factors are exact powers (1, 1e3, 2^10...) so base-unit values — the
/// only form the golden configs use — survive bit-for-bit.
std::optional<double> unit_factor(Unit u, const std::string& suffix) {
  struct Entry {
    const char* suffix;
    double factor;
  };
  auto look = [&suffix](std::initializer_list<Entry> table)
      -> std::optional<double> {
    for (const Entry& e : table) {
      if (suffix == e.suffix) return e.factor;
    }
    return std::nullopt;
  };
  switch (u) {
    case Unit::kNone:
      return std::nullopt;
    case Unit::kSeconds:
      return look({{"s", 1.0}, {"ms", 1e-3}, {"min", 60.0}, {"h", 3600.0}});
    case Unit::kNanoseconds:
      // lint: allow(unit-conv) the unit-suffix table itself
      return look({{"ns", 1.0}, {"us", 1e3}, {"ms", 1e6}, {"s", 1e9}});
    case Unit::kPicojoules:
      return look({{"pJ", 1.0}, {"nJ", 1e3}, {"uJ", 1e6}});
    case Unit::kBytes:
      return look({{"B", 1.0},
                   {"KB", 1024.0},
                   {"MB", 1024.0 * 1024.0},
                   {"GB", 1024.0 * 1024.0 * 1024.0}});
    case Unit::kWatts:
      return look({{"W", 1.0}, {"mW", 1e-3}});
  }
  return std::nullopt;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Parse a numeric value with an optional unit suffix, converted to the
/// spec's base unit. Base-unit values are returned exactly (factor 1).
double numeric_value(const RawConfig& raw, const KeySpec& spec,
                     const RawEntry& e) {
  const char* begin = e.value.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) {
    fail_at(raw, e,
            "key '" + spec.key + "': expected a number, got '" + e.value +
                "'");
  }
  const std::string suffix = trim(std::string(end));
  double factor = 1.0;
  if (!suffix.empty()) {
    const std::optional<double> f = unit_factor(spec.unit, suffix);
    if (!f.has_value()) {
      fail_at(raw, e,
              "key '" + spec.key + "': unknown unit suffix '" + suffix +
                  "' — expected " + unit_family_name(spec.unit));
    }
    factor = *f;
  }
  const double scaled = factor == 1.0 ? v : v * factor;
  if (!std::isfinite(scaled)) {
    fail_at(raw, e, "key '" + spec.key + "': non-finite value");
  }
  if (scaled < spec.min || scaled > spec.max) {
    std::ostringstream os;
    os << "key '" << spec.key << "': value " << scaled
       << " out of range [" << spec.min << ", " << spec.max << "]";
    fail_at(raw, e, os.str());
  }
  if (spec.type == ValueType::kInt && scaled != std::floor(scaled)) {
    fail_at(raw, e,
            "key '" + spec.key + "': expected an integral value (in base "
            "units), got '" + e.value + "'");
  }
  return scaled;
}

double get_double(const RawConfig& raw, const std::string& key) {
  return numeric_value(raw, *find_key(key), raw.at(key));
}

std::int64_t get_int(const RawConfig& raw, const std::string& key) {
  return std::llround(get_double(raw, key));
}

std::string get_string(const RawConfig& raw, const std::string& key) {
  return raw.at(key).value;
}

bool get_bool(const RawConfig& raw, const std::string& key) {
  const RawEntry& e = raw.at(key);
  std::string v = e.value;
  for (char& c : v) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  fail_at(raw, e, "key '" + key + "': not a boolean: '" + e.value + "'");
}

drift::MetricConfig metric_from_raw(const RawConfig& raw,
                                    const std::string& section,
                                    const std::string& default_name) {
  drift::MetricConfig c;
  const std::string p = section + ".";
  c.name = raw.has(p + "name") ? get_string(raw, p + "name") : default_name;
  c.t0_seconds = get_double(raw, p + "t0");
  c.program_halfwidth = get_double(raw, p + "program_halfwidth");
  c.boundary_halfwidth = get_double(raw, p + "boundary_halfwidth");
  for (std::size_t i = 0; i < drift::kNumStates; ++i) {
    const std::string s = p + "state" + std::to_string(i) + ".";
    c.states[i].mu = get_double(raw, s + "mu");
    c.states[i].sigma = get_double(raw, s + "sigma");
    c.states[i].mu_alpha = get_double(raw, s + "mu_alpha");
    c.states[i].sigma_alpha = get_double(raw, s + "sigma_alpha");
  }
  // Drift can only increase the metric, so states must be ordered: an
  // inverted pair would make the read-boundary walk meaningless.
  for (std::size_t i = 1; i < drift::kNumStates; ++i) {
    if (c.states[i].mu <= c.states[i - 1].mu) {
      fail_at(raw, raw.at(p + "state" + std::to_string(i) + ".mu"),
              "key '" + p + "state" + std::to_string(i) +
                  ".mu': state means must be strictly increasing");
    }
  }
  return c;
}

}  // namespace

DeviceConfig device_from_raw(const RawConfig& raw) {
  // Pass 1: no stray content. Unknown sections and unknown keys in known
  // sections are distinct diagnostics, both with file:line.
  for (const auto& [key, entry] : raw.entries()) {
    if (find_key(key) != nullptr) continue;
    const std::string section = key.substr(0, key.find('.'));
    if (!known_section(section)) {
      fail_at(raw, entry,
              "unknown section [" + section +
                  "] (see docs/DEVICE_CONFIGS.md for the schema)");
    }
    fail_at(raw, entry,
            "unknown key '" + key +
                "' (see docs/DEVICE_CONFIGS.md for the [" + section +
                "] section)");
  }
  // Pass 2: every required key present — all absences reported at once,
  // and never silently defaulted.
  std::vector<std::string> missing;
  for (const KeySpec& spec : device_schema()) {
    if (spec.required && !raw.has(spec.key)) missing.push_back(spec.key);
  }
  if (!missing.empty()) {
    std::string msg = "missing required key(s):";
    for (const std::string& k : missing) msg += " " + k;
    fail_file(raw, msg);
  }

  // Pass 3: typed, unit-checked, range-checked construction.
  DeviceConfig d;
  d.name = get_string(raw, "device.name");
  d.kind = get_string(raw, "device.kind");
  if (d.kind != "pcm" && d.kind != "rram" && d.kind != "nand") {
    fail_at(raw, raw.at("device.kind"),
            "key 'device.kind': expected pcm, rram, or nand, got '" +
                d.kind + "'");
  }
  if (raw.has("device.description")) {
    d.description = get_string(raw, "device.description");
  }
  const std::int64_t levels = get_int(raw, "device.levels");
  if (levels != static_cast<std::int64_t>(drift::kNumStates)) {
    fail_at(raw, raw.at("device.levels"),
            "key 'device.levels': this build models " +
                std::to_string(drift::kNumStates) +
                "-level cells; map other technologies onto " +
                std::to_string(drift::kNumStates) +
                " states (see docs/DEVICE_CONFIGS.md)");
  }

  d.geometry.data_cells =
      static_cast<unsigned>(get_int(raw, "geometry.data_cells"));
  d.geometry.ecc_cells =
      static_cast<unsigned>(get_int(raw, "geometry.ecc_cells"));

  d.org.capacity_bytes =
      static_cast<std::uint64_t>(get_int(raw, "memory.capacity"));
  d.org.num_banks = static_cast<unsigned>(get_int(raw, "memory.banks"));
  d.org.line_bytes =
      static_cast<unsigned>(get_int(raw, "memory.line_bytes"));
  d.org.lines_per_scrub =
      static_cast<unsigned>(get_int(raw, "memory.lines_per_scrub"));
  // Derived, not configurable: cells per line follow from the geometry
  // (2 bits/cell), so the two sections cannot drift apart.
  d.org.cells_per_line = d.geometry.total_cells();
  if (d.geometry.data_cells != d.org.line_bytes * 4) {
    fail_at(raw, raw.at("geometry.data_cells"),
            "key 'geometry.data_cells': must equal 4 * memory.line_bytes "
            "(2-bit cells), got " + std::to_string(d.geometry.data_cells) +
                " for " + std::to_string(d.org.line_bytes) + "-byte lines");
  }
  if (d.org.capacity_bytes % d.org.line_bytes != 0 ||
      d.org.total_lines() % d.org.num_banks != 0) {
    fail_at(raw, raw.at("memory.capacity"),
            "key 'memory.capacity': must divide evenly into "
            "memory.banks banks of memory.line_bytes lines");
  }

  d.timing.r_read = Ns{get_int(raw, "timing.r_read")};
  d.timing.m_read = Ns{get_int(raw, "timing.m_read")};
  d.timing.rm_read = Ns{get_int(raw, "timing.rm_read")};
  d.timing.write = Ns{get_int(raw, "timing.write")};
  d.timing.bus_transfer = Ns{get_int(raw, "timing.bus_transfer")};

  d.energy.r_read = Pj{get_double(raw, "energy.r_read")};
  d.energy.m_read = Pj{get_double(raw, "energy.m_read")};
  d.energy.cell_write = Pj{get_double(raw, "energy.cell_write")};
  d.energy.internal_sense_scale =
      get_double(raw, "energy.internal_sense_scale");
  d.energy.tlc_write_scale = get_double(raw, "energy.tlc_write_scale");
  d.energy.static_watts = get_double(raw, "energy.static_power");

  d.ecc.bch_t = static_cast<unsigned>(get_int(raw, "ecc.bch_t"));
  d.ecc.ecp_pointers =
      static_cast<unsigned>(get_int(raw, "ecc.ecp_pointers"));

  d.scrub.interval_s = get_double(raw, "scrub.interval");
  d.scrub.w = static_cast<unsigned>(get_int(raw, "scrub.w"));
  d.scrub.use_m_sense = get_bool(raw, "scrub.use_m_sense");

  d.r_metric = metric_from_raw(raw, "r_metric", "R-metric");
  d.m_metric = metric_from_raw(raw, "m_metric", "M-metric");
  return d;
}

DeviceConfig parse_device(std::istream& in, const std::string& source) {
  return device_from_raw(RawConfig::parse(in, source));
}

DeviceConfig load_device(const std::string& path) {
  return device_from_raw(RawConfig::load(path));
}

// ------------------------------------------------ active device slot ---

namespace {

struct ActiveSlot {
  std::once_flag once;
  DeviceConfig dev;
  std::string source = "builtin";
  bool resolved = false;
  bool pinned = false;  ///< set_active_device ran
};

ActiveSlot& slot() {
  static ActiveSlot s;
  return s;
}

void resolve_from_env() {
  ActiveSlot& s = slot();
  if (s.pinned) {
    s.resolved = true;
    return;
  }
  if (const char* path = env_cstr("READDUO_DEVICE")) {
    if (*path != '\0') {
      s.dev = load_device(path);
      s.source = path;
      s.resolved = true;
      return;
    }
  }
  s.dev = builtin_device();
  s.resolved = true;
}

}  // namespace

const DeviceConfig& active_device() {
  ActiveSlot& s = slot();
  std::call_once(s.once, resolve_from_env);
  return s.dev;
}

const std::string& active_device_source() {
  active_device();  // force resolution
  return slot().source;
}

void set_active_device(DeviceConfig dev, const std::string& source) {
  ActiveSlot& s = slot();
  if (s.resolved) {
    throw ConfigError(
        "set_active_device(" + source +
        "): the active device was already resolved (from " + s.source +
        ") — select the device before any simulation object is built");
  }
  s.dev = std::move(dev);
  s.source = source;
  s.pinned = true;
}

}  // namespace rd::config
