// Header-only adapters from a DeviceConfig to the consumer-side structs.
// Lives apart from the rd_config library so rd_config never links the
// higher layers it feeds (pcm, memsim) — the including target links both.
#pragma once

#include "config/device_config.h"
#include "memsim/simulator.h"
#include "pcm/chip.h"

namespace rd::config {

/// ChipConfig defaults for device `d` (line payload, BCH strength, ECP
/// pointers, scrub policy). num_lines/seed/readout stay the caller's
/// choice; the chip's metric configs come from active_device() at
/// construction (pcm/chip.cpp).
inline pcm::ChipConfig make_chip_config(const DeviceConfig& d) {
  pcm::ChipConfig c;
  c.data_bytes = d.org.line_bytes;
  c.bch_t = d.ecc.bch_t;
  c.ecp_pointers = d.ecc.ecp_pointers;
  c.scrub_interval_s = d.scrub.interval_s;
  c.scrub_w = d.scrub.w;
  c.scrub_with_m = d.scrub.use_m_sense;
  return c;
}

/// Overlay the device-owned parts of a SimConfig (organization and
/// timing). CPU, row-buffer, and queue policy knobs are system
/// configuration, not device physics, and are left untouched.
inline void apply_device(const DeviceConfig& d, memsim::SimConfig& cfg) {
  cfg.org = d.org;
  cfg.timing = d.timing;
}

}  // namespace rd::config
